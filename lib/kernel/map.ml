type t = { tbl : (int64, int64) Hashtbl.t; max_entries : int }

let create ~max_entries = { tbl = Hashtbl.create max_entries; max_entries }
let lookup t k = Hashtbl.find_opt t.tbl k

let update t k v =
  if Hashtbl.mem t.tbl k then begin
    Hashtbl.replace t.tbl k v;
    true
  end
  else if Hashtbl.length t.tbl >= t.max_entries then false
  else begin
    Hashtbl.replace t.tbl k v;
    true
  end

let delete t k =
  if Hashtbl.mem t.tbl k then begin
    Hashtbl.remove t.tbl k;
    true
  end
  else false

let entries t = Hashtbl.length t.tbl
let max_entries t = t.max_entries

type registry = { mutable next : int64; maps : (int64, t) Hashtbl.t }

let registry () = { next = 3L; maps = Hashtbl.create 8 }

let register r m =
  let fd = r.next in
  r.next <- Int64.add r.next 1L;
  Hashtbl.replace r.maps fd m;
  fd

let find r fd = Hashtbl.find_opt r.maps fd
