(* The map-kind hierarchy (§2.2 and the shared-state extension).

   Array and Hash are private per-instance stores, exactly the seed's
   semantics.  The three shared-capable kinds mirror the production eBPF
   spectrum:

   - Percpu: one bank per CPU.  The owning CPU's operations touch only its
     bank (a per-bank mutex makes the threaded engine safe without ever
     contending on the hot path — each shard only locks its own bank);
     [merged] walks every bank and sums.
   - Spinlock: each value carries a lock word (an [Atomic] owner).  The CAS
     on acquisition and the release store on unlock provide the
     happens-before edges that make the plain [v] field race-free under the
     OCaml 5 memory model: a reader that won the CAS observes every write
     the previous holder published before its release store.
   - Rcu_shared: a purely functional map published through one [Atomic]
     root.  Readers are wait-free ([Atomic.get], no loops, no locks);
     writers serialize on a mutex, publish version v+1, and retire the old
     snapshot stamped with the current per-CPU epoch vector.  A retired
     snapshot is reclaimed once every CPU's epoch has advanced past the
     stamp — the same quiescence idea the engine already uses for chain
     snapshots, pushed down into a data structure. *)

module IM = Stdlib.Map.Make (Int64)

type kind = Array | Hash | Percpu | Spinlock | Rcu_shared

let kind_name = function
  | Array -> "array"
  | Hash -> "hash"
  | Percpu -> "percpu"
  | Spinlock -> "spinlock"
  | Rcu_shared -> "rcu_shared"

type spin_slot = {
  key : int64;
  id : int;  (** registry-stable lock id; encodes into the helper handle *)
  mutable v : int64;  (** guarded by [owner] (see module comment) *)
  owner : int Atomic.t;  (** 0 = free, cpu+1 = held by that cpu *)
  mutable dead : bool;  (** deleted while (possibly) still held *)
}

type rcu = {
  root : (int64 IM.t * int) Atomic.t;  (** (snapshot, version) *)
  wm : Mutex.t;  (** writer serialization *)
  mutable retired : (int * int64 IM.t * int array) list;
      (** (version, snapshot kept live, epoch vector at retirement) *)
  epochs : int Atomic.t array;
  mutable retired_total : int;
  mutable reclaimed_total : int;
}

type store =
  | S_hash of (int64, int64) Hashtbl.t
  | S_array of int64 array
  | S_percpu of { banks : (int64, int64) Hashtbl.t array; ms : Mutex.t array }
  | S_spin of {
      m : Mutex.t;
      slots : (int64, spin_slot) Hashtbl.t;
      by_id : (int, spin_slot) Hashtbl.t;
      mutable next_id : int;
    }
  | S_rcu of rcu

type t = { k : kind; ncpus : int; max_entries : int; store : store }

let create ?(kind = Hash) ?(cpus = 1) ~max_entries () =
  let cpus = max 1 cpus in
  let store =
    match kind with
    | Hash -> S_hash (Hashtbl.create max_entries)
    | Array -> S_array (Stdlib.Array.make max_entries 0L)
    | Percpu ->
        S_percpu
          {
            banks = Stdlib.Array.init cpus (fun _ -> Hashtbl.create max_entries);
            ms = Stdlib.Array.init cpus (fun _ -> Mutex.create ());
          }
    | Spinlock ->
        S_spin
          {
            m = Mutex.create ();
            slots = Hashtbl.create max_entries;
            by_id = Hashtbl.create max_entries;
            next_id = 1;
          }
    | Rcu_shared ->
        S_rcu
          {
            root = Atomic.make (IM.empty, 0);
            wm = Mutex.create ();
            retired = [];
            epochs = Stdlib.Array.init cpus (fun _ -> Atomic.make 0);
            retired_total = 0;
            reclaimed_total = 0;
          }
  in
  { k = kind; ncpus = cpus; max_entries; store }

let kind t = t.k
let cpus t = t.ncpus
let max_entries t = t.max_entries

let with_mutex m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Hash-table semantics shared by Hash and Percpu banks: replace if
   present, insert unless full. *)
let htbl_update tbl max k v =
  if Hashtbl.mem tbl k then begin
    Hashtbl.replace tbl k v;
    true
  end
  else if Hashtbl.length tbl >= max then false
  else begin
    Hashtbl.replace tbl k v;
    true
  end

let htbl_delete tbl k =
  if Hashtbl.mem tbl k then begin
    Hashtbl.remove tbl k;
    true
  end
  else false

let in_array t k = k >= 0L && k < Int64.of_int t.max_entries

let bank t (p : (int64, int64) Hashtbl.t array) cpu =
  p.(if cpu >= 0 && cpu < Stdlib.Array.length p then cpu else 0)

let spin_find_held s ~cpu k =
  match Hashtbl.find_opt s k with
  | Some slot when Atomic.get slot.owner = cpu + 1 -> Some slot
  | _ -> None

let lookup ?(cpu = 0) t k =
  match t.store with
  | S_hash tbl -> Hashtbl.find_opt tbl k
  | S_array a -> if in_array t k then Some a.(Int64.to_int k) else None
  | S_percpu { banks; ms } ->
      let i = if cpu >= 0 && cpu < t.ncpus then cpu else 0 in
      with_mutex ms.(i) (fun () -> Hashtbl.find_opt (bank t banks i) k)
  | S_spin { m; slots; _ } ->
      (* Runtime lock discipline: reads of a spin-locked value are only
         visible to the holder; an unlocked probe is a miss. *)
      with_mutex m (fun () ->
          match spin_find_held slots ~cpu k with
          | Some slot -> Some slot.v
          | None -> None)
  | S_rcu r ->
      let snap, _ = Atomic.get r.root in
      IM.find_opt k snap

let update ?(cpu = 0) t k v =
  match t.store with
  | S_hash tbl -> htbl_update tbl t.max_entries k v
  | S_array a ->
      if in_array t k then begin
        a.(Int64.to_int k) <- v;
        true
      end
      else false
  | S_percpu { banks; ms } ->
      let i = if cpu >= 0 && cpu < t.ncpus then cpu else 0 in
      with_mutex ms.(i) (fun () ->
          htbl_update (bank t banks i) t.max_entries k v)
  | S_spin { m; slots; _ } ->
      with_mutex m (fun () ->
          match spin_find_held slots ~cpu k with
          | Some slot ->
              slot.v <- v;
              true
          | None -> false)
  | S_rcu r ->
      with_mutex r.wm (fun () ->
          let snap, ver = Atomic.get r.root in
          if (not (IM.mem k snap)) && IM.cardinal snap >= t.max_entries then
            false
          else begin
            let snap' = IM.add k v snap in
            Atomic.set r.root (snap', ver + 1);
            let vec =
              Stdlib.Array.map (fun e -> Atomic.get e) r.epochs
            in
            r.retired <- (ver, snap, vec) :: r.retired;
            r.retired_total <- r.retired_total + 1;
            true
          end)

let delete ?(cpu = 0) t k =
  match t.store with
  | S_hash tbl -> htbl_delete tbl k
  | S_array _ -> false (* eBPF array maps have no delete *)
  | S_percpu { banks; ms } ->
      let i = if cpu >= 0 && cpu < t.ncpus then cpu else 0 in
      with_mutex ms.(i) (fun () -> htbl_delete (bank t banks i) k)
  | S_spin { m; slots; _ } ->
      with_mutex m (fun () ->
          match spin_find_held slots ~cpu k with
          | Some slot ->
              slot.dead <- true;
              Hashtbl.remove slots k;
              true
          | None -> false)
  | S_rcu r ->
      with_mutex r.wm (fun () ->
          let snap, ver = Atomic.get r.root in
          if not (IM.mem k snap) then false
          else begin
            let snap' = IM.remove k snap in
            Atomic.set r.root (snap', ver + 1);
            let vec =
              Stdlib.Array.map (fun e -> Atomic.get e) r.epochs
            in
            r.retired <- (ver, snap, vec) :: r.retired;
            r.retired_total <- r.retired_total + 1;
            true
          end)

(* Merged read: for Percpu, the sum of every bank's value (the kernel's
   per-CPU map read-from-user behaviour); for every other kind, a plain
   lookup — the helper is total over kinds so programs can be generic. *)
let merged t k =
  match t.store with
  | S_percpu { banks; ms } ->
      let hit = ref false and acc = ref 0L in
      for i = 0 to t.ncpus - 1 do
        with_mutex ms.(i) (fun () ->
            match Hashtbl.find_opt banks.(i) k with
            | Some v ->
                hit := true;
                acc := Int64.add !acc v
            | None -> ())
      done;
      if !hit then Some !acc else None
  | _ -> lookup ~cpu:0 t k

let entries t =
  match t.store with
  | S_hash tbl -> Hashtbl.length tbl
  | S_array _ -> t.max_entries
  | S_percpu { banks; ms } ->
      let n = ref 0 in
      for i = 0 to t.ncpus - 1 do
        with_mutex ms.(i) (fun () -> n := !n + Hashtbl.length banks.(i))
      done;
      !n
  | S_spin { m; slots; _ } -> with_mutex m (fun () -> Hashtbl.length slots)
  | S_rcu r ->
      let snap, _ = Atomic.get r.root in
      IM.cardinal snap

(* A stable dump for tests and the linearizability oracle: merged across
   banks for Percpu, sorted by key.  Array entries elide default-zero
   slots so dumps stay comparable with hash-backed kinds. *)
let to_list t =
  let sorted l = List.sort (fun (a, _) (b, _) -> Int64.compare a b) l in
  match t.store with
  | S_hash tbl -> sorted (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  | S_array a ->
      let acc = ref [] in
      for i = t.max_entries - 1 downto 0 do
        if a.(i) <> 0L then acc := (Int64.of_int i, a.(i)) :: !acc
      done;
      !acc
  | S_percpu { banks; ms } ->
      let acc = Hashtbl.create 16 in
      for i = 0 to t.ncpus - 1 do
        with_mutex ms.(i) (fun () ->
            Hashtbl.iter
              (fun k v ->
                let prev =
                  Option.value ~default:0L (Hashtbl.find_opt acc k)
                in
                Hashtbl.replace acc k (Int64.add prev v))
              banks.(i))
      done;
      sorted (Hashtbl.fold (fun k v l -> (k, v) :: l) acc [])
  | S_spin { m; slots; _ } ->
      with_mutex m (fun () ->
          sorted
            (Hashtbl.fold (fun k (s : spin_slot) acc -> (k, s.v) :: acc)
               slots []))
  | S_rcu r ->
      let snap, _ = Atomic.get r.root in
      IM.bindings snap

(* ---- spin-locked values ------------------------------------------------ *)

type lock_result = Acquired of int | Unavailable | Contended

let spin_attempts = 64

let try_lock ?(cpu = 0) t k =
  match t.store with
  | S_spin sp ->
      let slot =
        with_mutex sp.m (fun () ->
            match Hashtbl.find_opt sp.slots k with
            | Some s -> Some s
            | None ->
                if Hashtbl.length sp.slots >= t.max_entries then None
                else begin
                  let s =
                    {
                      key = k;
                      id = sp.next_id;
                      v = 0L;
                      owner = Atomic.make 0;
                      dead = false;
                    }
                  in
                  sp.next_id <- sp.next_id + 1;
                  Hashtbl.replace sp.slots k s;
                  Hashtbl.replace sp.by_id s.id s;
                  Some s
                end)
      in
      (match slot with
      | None -> Unavailable
      | Some s ->
          (* Bounded spin: a holder that never releases (including this
             very cpu — a self-deadlock) surfaces as Contended, which the
             helper maps to a stall and the watchdog to a cancellation. *)
          let rec go n =
            if n = 0 then Contended
            else if Atomic.compare_and_set s.owner 0 (cpu + 1) then
              Acquired s.id
            else begin
              Domain.cpu_relax ();
              go (n - 1)
            end
          in
          go spin_attempts)
  | _ -> Unavailable

let unlock_id ?(cpu = 0) t id =
  match t.store with
  | S_spin sp -> (
      let slot =
        with_mutex sp.m (fun () -> Hashtbl.find_opt sp.by_id id)
      in
      match slot with
      | None -> false
      | Some s ->
          if Atomic.get s.owner = cpu + 1 then begin
            if s.dead then
              with_mutex sp.m (fun () -> Hashtbl.remove sp.by_id id);
            Atomic.set s.owner 0;
            true
          end
          else false)
  | _ -> false

let lock_held t k =
  match t.store with
  | S_spin sp ->
      with_mutex sp.m (fun () ->
          match Hashtbl.find_opt sp.slots k with
          | Some s -> Atomic.get s.owner <> 0
          | None -> false)
  | _ -> false

(* ---- RCU epochs -------------------------------------------------------- *)

type rcu_stats = { version : int; retired : int; reclaimed : int }

let rcu_reclaim_locked r =
  let keep, gone =
    List.partition
      (fun (_, _, vec) ->
        not
          (Stdlib.Array.for_all2
             (fun (e : int Atomic.t) stamp -> Atomic.get e > stamp)
             r.epochs vec))
      r.retired
  in
  r.retired <- keep;
  r.reclaimed_total <- r.reclaimed_total + List.length gone

let rcu_quiesce t ~cpu =
  match t.store with
  | S_rcu r ->
      if cpu >= 0 && cpu < t.ncpus then
        Atomic.incr r.epochs.(cpu);
      with_mutex r.wm (fun () -> rcu_reclaim_locked r)
  | _ -> ()

let rcu_synchronize t =
  match t.store with
  | S_rcu r ->
      with_mutex r.wm (fun () ->
          (* Attach/detach-style grace period: everything retired before
             this point is reclaimable once we advance every epoch. *)
          Stdlib.Array.iter (fun e -> Atomic.incr e) r.epochs;
          let n = List.length r.retired in
          r.retired <- [];
          r.reclaimed_total <- r.reclaimed_total + n)
  | _ -> ()

let rcu_stats t =
  match t.store with
  | S_rcu r ->
      let _, version = Atomic.get r.root in
      Some
        {
          version;
          retired = with_mutex r.wm (fun () -> List.length r.retired);
          reclaimed = r.reclaimed_total;
        }
  | _ -> None

(* ---- registry ---------------------------------------------------------- *)

type registry = { mutable next : int64; maps : (int64, t) Hashtbl.t }

let registry () = { next = 3L; maps = Hashtbl.create 8 }

let register r m =
  let fd = r.next in
  (* fds are never reused: [next] is monotonic even across unregister, so
     a stale fd held by a program can only ever miss. *)
  r.next <- Int64.add r.next 1L;
  Hashtbl.replace r.maps fd m;
  fd

let find r fd = Hashtbl.find_opt r.maps fd

let unregister r fd =
  if Hashtbl.mem r.maps fd then begin
    Hashtbl.remove r.maps fd;
    true
  end
  else false
