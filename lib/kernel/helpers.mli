(** Kernel-side helper implementations.

    The kernel half of the extension interface: socket lookups (which take
    references — the canonical acquired resource of §3.3), packet accessors,
    and eBPF map operations. Each helper charges the cost model's estimate
    of its kernel work so benchmarks account for helper time. *)

type t
(** Kernel state shared by all helpers: socket table, map registry, and the
    packet currently being processed. *)

val create : unit -> t

val sockets : t -> Socket.t
val maps : t -> Map.registry

val set_packet : t -> Packet.t option -> unit
(** Install the packet for the current hook invocation. *)

val packet : t -> Packet.t option

val implementations : t -> (string * Kflex_runtime.Vm.helper) list
(** All kernel helper implementations, to pass to {!Kflex_runtime.Vm.create}:
    [bpf_sk_lookup_udp], [bpf_sk_lookup_tcp], [bpf_sk_release], [pkt_len],
    [pkt_read_u8/16/32/64], [pkt_write_u8/16/32/64], [bpf_map_lookup],
    [bpf_map_update], [bpf_map_delete]. *)
