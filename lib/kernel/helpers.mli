(** Kernel-side helper implementations.

    The kernel half of the extension interface: socket lookups (which take
    references — the canonical acquired resource of §3.3), packet accessors,
    and eBPF map operations. Each helper charges the cost model's estimate
    of its kernel work so benchmarks account for helper time. *)

type t
(** Kernel state shared by all helpers: socket table, map registry, and the
    packet currently being processed. *)

val create : unit -> t

val sockets : t -> Socket.t
val maps : t -> Map.registry

val set_packet : t -> Packet.t option -> unit
(** Install the packet for the current hook invocation. *)

val packet : t -> Packet.t option

val implementations : t -> (string * Kflex_runtime.Vm.helper) list
(** All kernel helper implementations, to pass to {!Kflex_runtime.Vm.create}:
    [bpf_sk_lookup_udp], [bpf_sk_lookup_tcp], [bpf_sk_release], [pkt_len],
    [pkt_read_u8/16/32/64], [pkt_write_u8/16/32/64], [bpf_map_lookup],
    [bpf_map_update], [bpf_map_delete], [bpf_map_lock], [bpf_map_unlock],
    [bpf_map_sum].

    Map helpers dispatch on the fd's {!Map.kind} and charge that kind's
    {!Cost.map_cost}.  [bpf_map_lock(fd, &key)] returns a NULL-able lock
    handle packing [(fd << 32) | slot_id] (acquired resource, destructor
    [bpf_map_unlock]); contention past the bounded spin stalls the helper
    so the watchdog cancels and the unwinder releases held locks.
    [bpf_map_sum(fd, &key, &out)] is the Percpu merged read (plain lookup
    on other kinds). *)

val lock_handle : fd:int64 -> id:int -> int64
val lock_handle_fd : int64 -> int64
val lock_handle_id : int64 -> int
