type kind = Xdp | Sk_skb | Lsm

let ctx_size = 64

let build_ctx (p : Packet.t) =
  let b = Bytes.make ctx_size '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int (Packet.len p));
  Bytes.set_int32_le b 4 (Int64.to_int32 (Packet.proto_code p.Packet.proto));
  Bytes.set_uint16_le b 8 p.Packet.src_port;
  Bytes.set_uint16_le b 10 p.Packet.dst_port;
  b

let xdp_aborted = 0L
let xdp_drop = 1L
let xdp_pass = 2L
let xdp_tx = 3L

let default_ret = function Xdp -> xdp_pass | Sk_skb -> 0L | Lsm -> -1L
let pass_verdict = function Xdp -> xdp_pass | Sk_skb -> 0L | Lsm -> 0L
let sleepable = function Xdp | Sk_skb -> false | Lsm -> true
