(** The kernel socket table.

    Backs [bpf_sk_lookup_udp]/[bpf_sk_lookup_tcp]: a lookup takes a
    reference on the socket (the kernel resource whose release on
    cancellation the object tables guarantee, §3.3); [bpf_sk_release] drops
    it. Handles are synthetic kernel addresses. *)

type t

val create : unit -> t

val listen : t -> proto:Packet.proto -> port:int -> unit
(** Register a listening socket. *)

val close : t -> proto:Packet.proto -> port:int -> unit

val lookup : t -> proto:Packet.proto -> port:int -> int64 option
(** Take a reference; [None] when no socket listens there. *)

val release : t -> int64 -> bool
(** Drop a reference by handle; [false] for an unknown handle. *)

val refcount : t -> proto:Packet.proto -> port:int -> int option
(** Current extra references on a socket (0 right after [listen]). *)

val total_refs : t -> int
(** Sum of outstanding lookup references — must return to 0 after every
    request, cancelled or not; tests assert this. *)
