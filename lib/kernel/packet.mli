(** Network packets of the simulated kernel.

    A deliberately small representation: the experiments in the paper are
    key-value request/response workloads over UDP (Memcached GETs) and TCP
    (Memcached SETs, all of Redis), so a packet carries its transport, ports
    and an opaque payload the extensions parse with the [pkt_read_*]
    helpers. *)

type proto = Udp | Tcp

type t = {
  proto : proto;
  src_port : int;
  dst_port : int;
  payload : Bytes.t;  (** mutable: extensions build replies in place *)
}

val make : proto:proto -> src_port:int -> dst_port:int -> Bytes.t -> t

val read : t -> width:int -> int -> int64
(** Little-endian read at a payload offset; 0 beyond the payload (the
    bounds-checked helper contract). *)

val write : t -> width:int -> int -> int64 -> unit
(** Little-endian write at a payload offset; ignored beyond the payload. *)

val len : t -> int

val proto_code : proto -> int64
(** 0 for UDP, 1 for TCP — as exposed in the hook context. *)
