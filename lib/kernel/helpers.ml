open Kflex_runtime

type t = {
  socks : Socket.t;
  map_reg : Map.registry;
  mutable pkt : Packet.t option;
}

let create () =
  { socks = Socket.create (); map_reg = Map.registry (); pkt = None }

let sockets t = t.socks
let maps t = t.map_reg
let set_packet t p = t.pkt <- p
let packet t = t.pkt

let sk_lookup t proto (c : Vm.call_ctx) =
  c.Vm.charge 50;
  (* the connection tuple sits on the extension stack: u16 port at offset 0 *)
  let port = Int64.to_int (c.Vm.mem_read ~width:2 (Vm.arg c 1)) in
  match Socket.lookup t.socks ~proto ~port with
  | Some handle ->
      Ledger.acquire c.Vm.ledger ~handle ~destructor:"bpf_sk_release";
      Vm.set_ret c handle
  | None -> Vm.set_ret c 0L

let sk_release t (c : Vm.call_ctx) =
  c.Vm.charge 30;
  ignore (Socket.release t.socks (Vm.arg c 0));
  ignore (Ledger.release c.Vm.ledger ~handle:(Vm.arg c 0));
  Vm.set_ret c 0L

(* the return slot is preset to 0L, so a missing packet needs no store *)
let with_pkt t f = match t.pkt with None -> () | Some p -> f p

let pkt_len t (c : Vm.call_ctx) =
  c.Vm.charge 2;
  with_pkt t (fun p -> Vm.set_ret c (Int64.of_int (Packet.len p)))

(* Offsets arrive as full 64-bit scalars; [Int64.to_int] silently wraps the
   high bits, which would alias huge offsets onto valid ones. Map anything
   outside the (tiny) payload to [-1], which read/write treat as a miss. *)
let pkt_off p v =
  if Int64.compare v 0L < 0
     || Int64.compare v (Int64.of_int (Packet.len p)) >= 0
  then -1
  else Int64.to_int v

let pkt_read t width (c : Vm.call_ctx) =
  c.Vm.charge 3;
  with_pkt t (fun p ->
      Vm.set_ret c (Packet.read p ~width (pkt_off p (Vm.arg c 1))))

let pkt_write t width (c : Vm.call_ctx) =
  c.Vm.charge 3;
  with_pkt t (fun p ->
      Packet.write p ~width (pkt_off p (Vm.arg c 1)) (Vm.arg c 2))

let map_of t (c : Vm.call_ctx) = Map.find t.map_reg (Vm.arg c 0)

(* Helper charges dispatch on the map kind (explicit hit/miss/update costs
   per kind — see {!Cost.map_cost}); an unknown fd charges the Hash miss,
   the probe that discovered the fd is stale. *)
let map_lookup t (c : Vm.call_ctx) =
  match map_of t c with
  | None -> c.Vm.charge (Cost.map_cost Map.Hash).Cost.lookup_miss
  | Some m -> (
      let mc = Cost.map_cost (Map.kind m) in
      let key = c.Vm.mem_read ~width:8 (Vm.arg c 1) in
      match Map.lookup ~cpu:c.Vm.cpu m key with
      | Some v ->
          c.Vm.charge mc.Cost.lookup_hit;
          c.Vm.mem_write ~width:8 (Vm.arg c 2) v;
          Vm.set_ret c 1L
      | None -> c.Vm.charge mc.Cost.lookup_miss)

let map_update t (c : Vm.call_ctx) =
  match map_of t c with
  | None -> c.Vm.charge (Cost.map_cost Map.Hash).Cost.lookup_miss
  | Some m ->
      c.Vm.charge (Cost.map_cost (Map.kind m)).Cost.update;
      let key = c.Vm.mem_read ~width:8 (Vm.arg c 1) in
      let v = c.Vm.mem_read ~width:8 (Vm.arg c 2) in
      Vm.set_ret c (if Map.update ~cpu:c.Vm.cpu m key v then 1L else 0L)

let map_delete t (c : Vm.call_ctx) =
  match map_of t c with
  | None -> c.Vm.charge (Cost.map_cost Map.Hash).Cost.lookup_miss
  | Some m ->
      c.Vm.charge (Cost.map_cost (Map.kind m)).Cost.delete;
      let key = c.Vm.mem_read ~width:8 (Vm.arg c 1) in
      Vm.set_ret c (if Map.delete ~cpu:c.Vm.cpu m key then 1L else 0L)

(* ---- spin-locked map values -------------------------------------------

   The lock handle packs (fd, slot id) into one u64 — everything the
   unwinder has when it releases through the static object table is the
   handle in the destructor's argument slot, so the handle must identify
   the map on its own. fds start at 3, ids at 1: a real handle is never
   0, which keeps the NULL-able return contract honest. *)

let lock_handle ~fd ~id =
  Int64.logor (Int64.shift_left fd 32) (Int64.of_int (id land 0xffffffff))

let lock_handle_fd h = Int64.shift_right_logical h 32
let lock_handle_id h = Int64.to_int (Int64.logand h 0xffffffffL)

let map_lock t (c : Vm.call_ctx) =
  c.Vm.charge Cost.map_lock_cost;
  match map_of t c with
  | None -> ()
  | Some m -> (
      let key = c.Vm.mem_read ~width:8 (Vm.arg c 1) in
      match Map.try_lock ~cpu:c.Vm.cpu m key with
      | Map.Acquired id ->
          let handle = lock_handle ~fd:(Vm.arg c 0) ~id in
          Ledger.acquire c.Vm.ledger ~handle ~destructor:"bpf_map_unlock";
          Vm.set_ret c handle
      | Map.Unavailable -> ()
      | Map.Contended ->
          (* Contention the bounded spin could not resolve (including a
             self-deadlock) stalls the helper; the watchdog cancels and
             the unwinder releases whatever the program already holds. *)
          raise Vm.Helper_stall)

let map_unlock t (c : Vm.call_ctx) =
  c.Vm.charge Cost.map_unlock_cost;
  let handle = Vm.arg c 0 in
  (match Map.find t.map_reg (lock_handle_fd handle) with
  | Some m -> ignore (Map.unlock_id ~cpu:c.Vm.cpu m (lock_handle_id handle))
  | None -> ());
  ignore (Ledger.release c.Vm.ledger ~handle);
  Vm.set_ret c 0L

let map_sum t (c : Vm.call_ctx) =
  match map_of t c with
  | None -> c.Vm.charge (Cost.map_cost Map.Hash).Cost.lookup_miss
  | Some m -> (
      c.Vm.charge
        (match Map.kind m with
        | Map.Percpu -> Cost.map_merge_cost ~cpus:(Map.cpus m)
        | k -> (Cost.map_cost k).Cost.lookup_hit);
      let key = c.Vm.mem_read ~width:8 (Vm.arg c 1) in
      match Map.merged m key with
      | Some v ->
          c.Vm.mem_write ~width:8 (Vm.arg c 2) v;
          Vm.set_ret c 1L
      | None -> ())

let implementations t =
  [
    ("bpf_sk_lookup_udp", sk_lookup t Packet.Udp);
    ("bpf_sk_lookup_tcp", sk_lookup t Packet.Tcp);
    ("bpf_sk_release", sk_release t);
    ("pkt_len", pkt_len t);
    ("pkt_read_u8", pkt_read t 1);
    ("pkt_read_u16", pkt_read t 2);
    ("pkt_read_u32", pkt_read t 4);
    ("pkt_read_u64", pkt_read t 8);
    ("pkt_write_u8", pkt_write t 1);
    ("pkt_write_u16", pkt_write t 2);
    ("pkt_write_u32", pkt_write t 4);
    ("pkt_write_u64", pkt_write t 8);
    ("bpf_map_lookup", map_lookup t);
    ("bpf_map_update", map_update t);
    ("bpf_map_delete", map_delete t);
    ("bpf_map_lock", map_lock t);
    ("bpf_map_unlock", map_unlock t);
    ("bpf_map_sum", map_sum t);
  ]
