(** Kernel extension hooks.

    Extensions attach to a hook and are invoked per event. We model the two
    hooks the paper's evaluation uses — XDP (raw ethernet ingress, §5.1
    Memcached) and [sk_skb] (post-transport stream, §5.1 Redis) — plus the
    hook-specific context block and default return codes that cancellation
    falls back to (network hooks pass by default, security hooks deny;
    §4.3). *)

type kind = Xdp | Sk_skb | Lsm

val ctx_size : int
(** Size in bytes of the context block (64). Layout:
    - offset 0, u32: packet payload length
    - offset 4, u32: transport (0 = UDP, 1 = TCP)
    - offset 8, u16: source port
    - offset 10, u16: destination port
    - remaining bytes reserved (zero). *)

val build_ctx : Packet.t -> Bytes.t

(** XDP return codes (the subset we use). *)

val xdp_aborted : int64
val xdp_drop : int64
val xdp_pass : int64
val xdp_tx : int64  (** transmit the (possibly rewritten) packet back *)

val default_ret : kind -> int64
(** What a cancelled extension returns: [xdp_pass] for XDP, pass (0) for
    [Sk_skb], deny (-1) for [Lsm] (§4.3). *)

val pass_verdict : kind -> int64
(** The verdict on which a hook chain falls through to the next attached
    program (tail-call composition): [xdp_pass] for XDP, pass (0) for
    [Sk_skb], allow (0) for [Lsm]. Any other verdict is terminal — first
    drop/tx/deny wins. *)

val sleepable : kind -> bool
(** Whether extensions at this hook may call sleepable helpers. *)
