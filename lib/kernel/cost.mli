(** The calibrated cost model.

    Our substrate is an interpreter, not the paper's 96-core Xeon testbed,
    so absolute numbers cannot match; what the model preserves is {e where}
    request processing time is spent, which is what produces the paper's
    shapes: an XDP extension skips the transport stack and the kernel/user
    boundary, an [sk_skb] extension skips only the boundary, and a
    user-space server pays for everything. Per-layer costs are drawn from
    the microsecond-scale-RPC literature the paper builds on ([22, 46, 63]
    in its bibliography).

    Extension compute time is {e measured}, not assumed: benchmarks execute
    the real instrumented bytecode and convert retired cost units to time
    via {!insn_ns}. *)

(** {2 Per-map-kind helper costs (VM cost units)}

    Explicit hit/miss/update/delete charges per {!Map.kind}, replacing the
    seed's flat per-helper charge.  Invariants (pinned by the kernel
    tests): per kind [lookup_miss <= lookup_hit <= update] and
    [delete <= update]; across kinds each operation is ordered
    Array <= Percpu <= Hash <= Spinlock <= Rcu_shared lookups, and the
    Rcu_shared update/delete (copy + publish + retire) dominates every
    other kind's. *)

type map_cost = {
  lookup_hit : int;
  lookup_miss : int;
  update : int;
  delete : int;
}

val map_cost : Map.kind -> map_cost

val map_lock_cost : int
(** [bpf_map_lock]: lock-word CAS on top of the slot probe. *)

val map_unlock_cost : int
(** [bpf_map_unlock]: release store. *)

val map_merge_cost : cpus:int -> int
(** [bpf_map_sum] over a Percpu map: one probe per bank. *)

val insn_ns : float
(** Nanoseconds per VM cost unit (4 ns: a few x86 instructions per eBPF
    insn at 2.3 GHz, including the eBPF ISA inefficiencies — register
    pressure, memcpy quality — that §5.2 discusses). *)

val nic_to_xdp_ns : float
(** NIC + driver work to deliver a frame to the XDP hook (~300 ns). *)

val xdp_tx_ns : float
(** Transmitting an XDP_TX reply (~300 ns). *)

val udp_stack_ns : float
(** IP + UDP receive processing past XDP (~1.7 µs). *)

val tcp_stack_ns : float
(** IP + TCP receive processing past XDP (~3.4 µs). *)

val syscall_ns : float
(** One syscall boundary crossing incl. data copy (~700 ns). *)

val wakeup_ctx_switch_ns : float
(** Blocking socket wake-up, scheduling and context switch (~2.6 µs). *)

val native_speedup : float
(** Throughput advantage of native code over interpreted eBPF for the same
    logic (register pressure, memcpy quality — §5.2 measures the kernel
    module baseline ~9% faster): multiply extension compute by this to
    estimate the native cost of the same logic. *)

(** {2 Per-deployment request service time (ns)}

    [compute_ns] is the measured application-logic time. *)

val xdp_service_ns : compute_ns:float -> reply:bool -> float
(** Full request handled at the XDP hook (KFlex-Memcached, BMC hits). *)

val skb_service_ns : proto_tcp:bool -> compute_ns:float -> float
(** Request handled at [sk_skb], after the transport stack (KFlex-Redis). *)

val user_service_ns : proto_tcp:bool -> compute_ns:float -> float
(** Request handled by a user-space server thread over kernel sockets. *)
