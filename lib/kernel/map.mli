(** eBPF maps — the kernel-provided data structures plain eBPF extensions
    are restricted to (§2.2), grown into the map-kind spectrum production
    extensions actually lean on.

    Keys and values are fixed-size byte strings in the kernel; the
    copy-through-stack helper variants used by our ISA move 8-byte handles,
    so maps here are keyed by [int64] with [int64] values (a hash of the
    full key — the same trick BMC uses to index its cache).  Capacity is
    fixed at creation: plain eBPF has no dynamic allocation.

    Kinds:
    - [Array], [Hash]: private per-instance stores (the seed semantics).
    - [Percpu]: one bank per CPU; the owner's operations are
      shard-local and uncontended, {!merged} sums across banks.
    - [Spinlock]: every value carries a lock word; {!try_lock} /
      {!unlock_id} implement [bpf_spin_lock]-style critical sections, and
      plain operations only succeed for the current holder.
    - [Rcu_shared]: a shared hash map published through one [Atomic]
      snapshot — wait-free readers, serialized writers, retired snapshots
      reclaimed on per-CPU epoch quiescence ({!rcu_quiesce},
      {!rcu_synchronize}). *)

type kind = Array | Hash | Percpu | Spinlock | Rcu_shared

val kind_name : kind -> string

type t

val create : ?kind:kind -> ?cpus:int -> max_entries:int -> unit -> t
(** [kind] defaults to [Hash] (the seed behaviour); [cpus] (default 1)
    sizes the Percpu banks and the RCU epoch vector. *)

val kind : t -> kind
val cpus : t -> int

val lookup : ?cpu:int -> t -> int64 -> int64 option
(** [cpu] selects the Percpu bank and identifies the holder for Spinlock
    maps (a non-holder's lookup is a miss); ignored by private kinds.
    Rcu_shared lookups are wait-free reads of the published snapshot. *)

val update : ?cpu:int -> t -> int64 -> int64 -> bool
(** [false] when the map is full and the key absent, when an Array key is
    out of range, or when a Spinlock value is touched without holding its
    lock.  Rcu_shared updates publish a new snapshot version. *)

val delete : ?cpu:int -> t -> int64 -> bool
(** Array maps have no delete ([false]); a Spinlock delete requires the
    lock and tolerates the later unlock of the removed slot. *)

val merged : t -> int64 -> int64 option
(** Percpu: the sum of the key's value across every bank ([None] when no
    bank has it).  Any other kind: a plain [lookup ~cpu:0]. *)

val entries : t -> int
val max_entries : t -> int

val to_list : t -> (int64 * int64) list
(** Stable dump, sorted by key: merged across Percpu banks; Array elides
    default-zero slots.  Tests and the linearizability oracle compare
    final map states with it. *)

(** {2 Spin-locked values} *)

type lock_result =
  | Acquired of int  (** the slot's stable lock id *)
  | Unavailable  (** map full (key absent) or not a Spinlock map *)
  | Contended  (** bounded spin exhausted — includes self-deadlock *)

val try_lock : ?cpu:int -> t -> int64 -> lock_result
(** Find-or-create the key's slot, then a bounded CAS spin on its lock
    word.  The acquire CAS / release store pair makes the value field
    race-free across holders (OCaml 5 memory model). *)

val unlock_id : ?cpu:int -> t -> int -> bool
(** Release by lock id; [false] unless [cpu] is the current holder. *)

val lock_held : t -> int64 -> bool
(** Observation for tests: is the key's lock word currently taken? *)

(** {2 RCU epochs} *)

type rcu_stats = {
  version : int;  (** snapshot versions published so far *)
  retired : int;  (** snapshots awaiting quiescence *)
  reclaimed : int;  (** snapshots reclaimed since creation *)
}

val rcu_quiesce : t -> cpu:int -> unit
(** Announce a quiescent state for [cpu] (the engine calls this between
    events), then reclaim every retired snapshot whose stamped epoch
    vector every CPU has advanced past.  No-op on other kinds. *)

val rcu_synchronize : t -> unit
(** A full grace period (the engine's attach/detach quiescence): advance
    every epoch and reclaim everything retired before the call. *)

val rcu_stats : t -> rcu_stats option
(** [None] unless the map is [Rcu_shared]. *)

(** {2 Registry (map file descriptors)} *)

type registry

val registry : unit -> registry

val register : registry -> t -> int64
(** Returns the fd an extension passes as the helper's first argument.
    fds start at 3 and are monotonic — never reused, even after
    {!unregister} — so a stale fd can only ever miss. *)

val find : registry -> int64 -> t option
(** [None] for never-issued and unregistered (stale) fds alike. *)

val unregister : registry -> int64 -> bool
(** Drop the fd binding (the map itself may live on elsewhere — shared
    maps are registered into several per-shard registries). [false] when
    the fd is not currently bound. *)
