(** eBPF maps — the kernel-provided data structures plain eBPF extensions
    are restricted to (§2.2).

    The BMC baseline builds its pre-allocated look-aside cache out of these.
    Keys and values are fixed-size byte strings; the copy-through-stack
    helper variants used by our ISA move 8-byte handles, so maps here are
    keyed by [int64] with [int64] values (a hash of the full key — the same
    trick BMC uses to index its cache). Capacity is fixed at creation:
    plain eBPF has no dynamic allocation (which is exactly why BMC cannot
    offload SETs). *)

type t

val create : max_entries:int -> t

val lookup : t -> int64 -> int64 option
val update : t -> int64 -> int64 -> bool
(** [false] when the map is full and the key absent. *)

val delete : t -> int64 -> bool
val entries : t -> int
val max_entries : t -> int

(** {2 Registry (map file descriptors)} *)

type registry

val registry : unit -> registry
val register : registry -> t -> int64
(** Returns the fd an extension passes as the helper's first argument. *)

val find : registry -> int64 -> t option
