let insn_ns = 4.0

(* ---- per-map-kind helper costs (VM cost units) -------------------------

   Hits pay the full probe + copy-out; misses stop at the probe, so per
   kind miss <= hit <= update and delete <= update.  Across kinds the
   ordering follows the synchronization each operation buys: Array
   (indexed load) < Percpu (own bank, uncontended) < Hash (bucket walk) <
   Spinlock (lock-word inspection rides on every touch) < Rcu_shared
   (reads pay the snapshot indirection; writes pay copy + publish +
   retire, far above every other kind). *)

type map_cost = {
  lookup_hit : int;
  lookup_miss : int;
  update : int;
  delete : int;
}

let array_cost = { lookup_hit = 25; lookup_miss = 20; update = 30; delete = 25 }
let percpu_cost = { lookup_hit = 40; lookup_miss = 30; update = 50; delete = 45 }
let hash_cost = { lookup_hit = 45; lookup_miss = 35; update = 55; delete = 50 }

let spinlock_cost =
  { lookup_hit = 50; lookup_miss = 40; update = 60; delete = 55 }

let rcu_cost = { lookup_hit = 55; lookup_miss = 45; update = 140; delete = 130 }

let map_cost = function
  | Map.Array -> array_cost
  | Map.Hash -> hash_cost
  | Map.Percpu -> percpu_cost
  | Map.Spinlock -> spinlock_cost
  | Map.Rcu_shared -> rcu_cost

let map_lock_cost = 12
let map_unlock_cost = 8

let map_merge_cost ~cpus = 30 + (12 * cpus)
let nic_to_xdp_ns = 300.
let xdp_tx_ns = 300.
let udp_stack_ns = 1700.
let tcp_stack_ns = 3400.
let syscall_ns = 700.
let wakeup_ctx_switch_ns = 2600.
let native_speedup = 1.09

let xdp_service_ns ~compute_ns ~reply =
  nic_to_xdp_ns +. compute_ns +. (if reply then xdp_tx_ns else 0.)

let skb_service_ns ~proto_tcp ~compute_ns =
  nic_to_xdp_ns
  +. (if proto_tcp then tcp_stack_ns else udp_stack_ns)
  +. compute_ns +. xdp_tx_ns

let user_service_ns ~proto_tcp ~compute_ns =
  (* rx path, wake-up, read syscall, application logic, write syscall *)
  nic_to_xdp_ns
  +. (if proto_tcp then tcp_stack_ns else udp_stack_ns)
  +. wakeup_ctx_switch_ns +. syscall_ns +. compute_ns +. syscall_ns
  +. xdp_tx_ns
