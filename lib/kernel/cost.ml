let insn_ns = 4.0
let nic_to_xdp_ns = 300.
let xdp_tx_ns = 300.
let udp_stack_ns = 1700.
let tcp_stack_ns = 3400.
let syscall_ns = 700.
let wakeup_ctx_switch_ns = 2600.
let native_speedup = 1.09

let xdp_service_ns ~compute_ns ~reply =
  nic_to_xdp_ns +. compute_ns +. (if reply then xdp_tx_ns else 0.)

let skb_service_ns ~proto_tcp ~compute_ns =
  nic_to_xdp_ns
  +. (if proto_tcp then tcp_stack_ns else udp_stack_ns)
  +. compute_ns +. xdp_tx_ns

let user_service_ns ~proto_tcp ~compute_ns =
  (* rx path, wake-up, read syscall, application logic, write syscall *)
  nic_to_xdp_ns
  +. (if proto_tcp then tcp_stack_ns else udp_stack_ns)
  +. wakeup_ctx_switch_ns +. syscall_ns +. compute_ns +. syscall_ns
  +. xdp_tx_ns
