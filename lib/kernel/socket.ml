type sock = { handle : int64; mutable refs : int }

type t = {
  by_port : (int * int, sock) Hashtbl.t;  (* (proto code, port) *)
  by_handle : (int64, sock) Hashtbl.t;
  mutable next : int64;
}

let handle_base = 0x7000_0000_0000L

let create () =
  { by_port = Hashtbl.create 16; by_handle = Hashtbl.create 16; next = 1L }

let key proto port = (Int64.to_int (Packet.proto_code proto), port)

let listen t ~proto ~port =
  if not (Hashtbl.mem t.by_port (key proto port)) then begin
    let handle = Int64.add handle_base t.next in
    t.next <- Int64.add t.next 1L;
    let s = { handle; refs = 0 } in
    Hashtbl.replace t.by_port (key proto port) s;
    Hashtbl.replace t.by_handle handle s
  end

let close t ~proto ~port =
  match Hashtbl.find_opt t.by_port (key proto port) with
  | Some s ->
      Hashtbl.remove t.by_port (key proto port);
      Hashtbl.remove t.by_handle s.handle
  | None -> ()

let lookup t ~proto ~port =
  match Hashtbl.find_opt t.by_port (key proto port) with
  | Some s ->
      s.refs <- s.refs + 1;
      Some s.handle
  | None -> None

let release t handle =
  match Hashtbl.find_opt t.by_handle handle with
  | Some s when s.refs > 0 ->
      s.refs <- s.refs - 1;
      true
  | _ -> false

let refcount t ~proto ~port =
  Option.map (fun s -> s.refs) (Hashtbl.find_opt t.by_port (key proto port))

let total_refs t = Hashtbl.fold (fun _ s acc -> acc + s.refs) t.by_handle 0
