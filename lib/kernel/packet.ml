type proto = Udp | Tcp

type t = {
  proto : proto;
  src_port : int;
  dst_port : int;
  payload : Bytes.t;
}

let make ~proto ~src_port ~dst_port payload =
  { proto; src_port; dst_port; payload }

let len t = Bytes.length t.payload

(* [off + width] can overflow for attacker-chosen offsets near [max_int];
   compare against [length - width] instead, which cannot. *)
let read t ~width off =
  if off < 0 || off > Bytes.length t.payload - width then 0L
  else
    match width with
    | 1 -> Int64.of_int (Char.code (Bytes.get t.payload off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le t.payload off)
    | 4 ->
        Int64.logand
          (Int64.of_int32 (Bytes.get_int32_le t.payload off))
          0xffff_ffffL
    | 8 -> Bytes.get_int64_le t.payload off
    | _ -> invalid_arg "Packet.read: width"

let write t ~width off v =
  if off < 0 || off > Bytes.length t.payload - width then ()
  else
    match width with
    | 1 -> Bytes.set t.payload off (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
    | 2 -> Bytes.set_uint16_le t.payload off (Int64.to_int (Int64.logand v 0xffffL))
    | 4 -> Bytes.set_int32_le t.payload off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le t.payload off v
    | _ -> invalid_arg "Packet.write: width"

let proto_code = function Udp -> 0L | Tcp -> 1L
