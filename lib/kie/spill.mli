(** The §4.3 object-table corner case and its mitigation.

    An object table must describe, for each cancellation point, {e one}
    location per held resource. When different branch sequences reach the
    same point with the resource in different registers, no single location
    is valid on all paths and the verifier rejects the program (the
    resource's last tracked copy is "lost" at the join). The paper's
    mitigation: spill each acquired resource to a {e unique stack slot} at
    its acquisition site, giving every resource a canonical location.

    [mitigate] rewrites a program by inserting, after every helper call
    whose contract acquires a resource, a store of [r0] to a fresh stack
    slot below the program's own frame usage. The loader applies it
    on-demand when verification fails with a leak.

    Divergence note: the paper's verifier is path-sensitive, so a
    conflicting program verifies and only its object tables are ambiguous;
    our verifier joins states at merge points, so the same conflict
    surfaces as a verification-time leak. The spill restores a canonical
    location (fixing the table); whether the program then verifies depends
    on whether it also {e uses} the joined copies downstream. *)

val mitigate :
  contracts:Kflex_verifier.Contract.registry ->
  Kflex_bpf.Prog.t ->
  Kflex_bpf.Prog.t option
(** [None] when the program has no acquiring calls, or when the stack has no
    room for the spill slots. *)
