open Kflex_bpf
open Kflex_verifier

let acquiring contracts name =
  match Contract.find contracts name with
  | Some c -> (
      match c.Contract.ret with
      | Contract.R_obj _ | Contract.R_obj_or_null _ -> true
      | _ -> false)
  | None -> false

(* Deepest constant r10-relative offset the program already uses. *)
let frame_floor prog =
  let floor = ref 0 in
  Array.iter
    (fun insn ->
      let touch base off =
        if Reg.equal base Reg.fp && off < !floor then floor := off
      in
      match insn with
      | Insn.Ldx (_, _, b, off) -> touch b off
      | Insn.Stx (_, b, off, _) | Insn.St (_, b, off, _) -> touch b off
      | Insn.Alu (Insn.Add, _, _) -> ()
      | _ -> ())
    (Prog.insns prog);
  (* pointer arithmetic like [r2 = r10; r2 += -16] also forms frame
     addresses: scan for the constant adds too *)
  let last_was_fp_copy = Array.make 11 false in
  Array.iter
    (fun insn ->
      match insn with
      | Insn.Mov (d, Insn.Reg s) ->
          last_was_fp_copy.(Reg.to_int d) <-
            Reg.equal s Reg.fp || last_was_fp_copy.(Reg.to_int s)
      | Insn.Alu (Insn.Add, d, Insn.Imm i) ->
          if last_was_fp_copy.(Reg.to_int d) && Int64.to_int i < !floor then
            floor := Int64.to_int i
      | Insn.Mov (d, Insn.Imm _)
      | Insn.Alu (_, d, _)
      | Insn.Neg d
      | Insn.Ldx (_, d, _, _) ->
          last_was_fp_copy.(Reg.to_int d) <- false
      | Insn.Call _ ->
          List.iter
            (fun r -> last_was_fp_copy.(Reg.to_int r) <- false)
            Reg.caller_saved
      | _ -> ())
    (Prog.insns prog);
  !floor

let mitigate ~contracts prog =
  let insns = Prog.insns prog in
  let n = Array.length insns in
  let sites = ref [] in
  Array.iteri
    (fun pc insn ->
      match insn with
      | Insn.Call name when acquiring contracts name -> sites := pc :: !sites
      | _ -> ())
    insns;
  let sites = List.rev !sites in
  if sites = [] then None
  else begin
    let floor = frame_floor prog in
    (* one 8-byte slot per site, below everything the program touches *)
    let base = floor - 8 in
    let slot_of =
      List.mapi (fun i pc -> (pc, base - (8 * i))) sites
    in
    if base - (8 * (List.length sites - 1)) < -Prog.stack_size then None
    else begin
      (* layout: each call's group is [call; spill]; jumps to an original pc
         land at its group start, so a jump to call+1 lands after the
         spill *)
      let extra = Array.make n 0 in
      List.iter (fun pc -> extra.(pc) <- 1) sites;
      let pc_map = Array.make n 0 in
      let pos = ref 0 in
      for pc = 0 to n - 1 do
        pc_map.(pc) <- !pos;
        pos := !pos + 1 + extra.(pc)
      done;
      let out = Array.make !pos Insn.Exit in
      for pc = 0 to n - 1 do
        let body =
          match insns.(pc) with
          | Insn.Ja off ->
              let t = pc + 1 + off in
              Insn.Ja (pc_map.(t) - pc_map.(pc) - 1)
          | Insn.Jcond (c, r, s, off) ->
              let t = pc + 1 + off in
              Insn.Jcond (c, r, s, pc_map.(t) - pc_map.(pc) - 1)
          | i -> i
        in
        out.(pc_map.(pc)) <- body;
        match List.assoc_opt pc slot_of with
        | Some slot ->
            out.(pc_map.(pc) + 1) <- Insn.Stx (Insn.U64, Reg.fp, slot, Reg.R0)
        | None -> ()
      done;
      Some (Prog.create ~name:(Prog.name prog ^ ".spill") out)
    end
  end
