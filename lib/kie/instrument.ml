open Kflex_bpf
open Kflex_verifier

type options = {
  performance_mode : bool;
  translate_on_store : bool;
  kmod_baseline : bool;
  no_elision : bool;
}

let default_options =
  {
    performance_mode = false;
    translate_on_store = false;
    kmod_baseline = false;
    no_elision = false;
  }

let forced_guards = { default_options with no_elision = true }

type obj_entry = { klass : string; destructor : string; loc : State.loc }

type cp_kind = C1 | C2

type cp = {
  cp_id : int;
  kind : cp_kind;
  orig_pc : int;
  new_pc : int;
  table : obj_entry list;
}

type t = {
  prog : Prog.t;
  cps : cp array;
  report : Report.t;
  pc_map : int array;
  orig_of_new : int array;
  tables : obj_entry list array;
}

let table_of_res_at (analysis : Verify.analysis) pc =
  List.map
    (fun (e : Verify.res_entry) ->
      {
        klass = e.Verify.res.State.klass;
        destructor = e.Verify.res.State.destructor;
        loc = e.Verify.loc;
      })
    analysis.Verify.res_at.(pc)

let run ?(options = default_options) (analysis : Verify.analysis) =
  let prog = analysis.Verify.prog in
  let n = Prog.length prog in
  let access_at = Hashtbl.create 64 in
  List.iter
    (fun (a : Verify.heap_access) -> Hashtbl.replace access_at a.Verify.pc a)
    analysis.Verify.heap_accesses;
  let c1_at = Hashtbl.create 8 in
  List.iter
    (fun (l : Cfg.loop) -> Hashtbl.replace c1_at l.Cfg.back_edge_pc ())
    analysis.Verify.unbounded;
  (* Pass 1: decide insertions and replacements per original pc. *)
  let counted = ref 0
  and elided = ref 0
  and emitted = ref 0
  and formation = ref 0
  and unguarded_reads = ref 0
  and checkpoints = ref 0
  and xlates = ref 0 in
  let next_cp = ref 0 in
  (* (inserted insns in order, was_checkpoint flag per insertion) *)
  let inserted = Array.make n [] in
  let replacement = Array.make n None in
  for pc = 0 to n - 1 do
    let ins = ref [] in
    if Hashtbl.mem c1_at pc && not options.kmod_baseline then begin
      let id = !next_cp in
      incr next_cp;
      incr checkpoints;
      ins := Insn.Checkpoint id :: !ins
    end;
    (match (if options.kmod_baseline then None else Hashtbl.find_opt access_at pc) with
    | None -> ()
    | Some a ->
        let writeish = a.Verify.is_store || a.Verify.is_atomic in
        if a.Verify.formation then begin
          if options.performance_mode && not writeish then
            incr unguarded_reads
          else begin
            incr formation;
            ins :=
              Insn.Guard
                ((if writeish then Insn.Gwrite else Insn.Gread), a.Verify.addr_reg)
              :: !ins
          end
        end
        else begin
          incr counted;
          if a.Verify.elidable && not options.no_elision then incr elided
          else if options.performance_mode && not writeish then
            incr unguarded_reads
          else begin
            incr emitted;
            ins :=
              Insn.Guard
                ((if writeish then Insn.Gwrite else Insn.Gread), a.Verify.addr_reg)
              :: !ins
          end
        end;
        if writeish && a.Verify.stored_ptr && options.translate_on_store then
          match Prog.get prog pc with
          | Insn.Stx (sz, d, off, s) ->
              incr xlates;
              replacement.(pc) <- Some (Insn.Xstore (sz, d, off, s))
          | _ -> ());
    inserted.(pc) <- List.rev !ins
  done;
  (* Pass 2: layout. *)
  let pc_map = Array.make n 0 in
  let pos = ref 0 in
  for pc = 0 to n - 1 do
    pc_map.(pc) <- !pos;
    pos := !pos + List.length inserted.(pc) + 1
  done;
  let total = !pos in
  let new_pos_of_orig pc = pc_map.(pc) + List.length inserted.(pc) in
  let out = Array.make total Insn.Exit in
  for pc = 0 to n - 1 do
    List.iteri (fun i insn -> out.(pc_map.(pc) + i) <- insn) inserted.(pc);
    let body =
      match replacement.(pc) with Some r -> r | None -> Prog.get prog pc
    in
    let body =
      match body with
      | Insn.Ja off ->
          let target = pc + 1 + off in
          Insn.Ja (pc_map.(target) - new_pos_of_orig pc - 1)
      | Insn.Jcond (c, r, s, off) ->
          let target = pc + 1 + off in
          Insn.Jcond (c, r, s, pc_map.(target) - new_pos_of_orig pc - 1)
      | i -> i
    in
    out.(new_pos_of_orig pc) <- body
  done;
  (* Pass 3: cancellation points. C1 = inserted checkpoints; C2 = every heap
     access (its page may be unpopulated). *)
  let cps = ref [] in
  let cp_counter = ref 0 in
  for pc = 0 to n - 1 do
    List.iteri
      (fun i insn ->
        match insn with
        | Insn.Checkpoint _ ->
            let id = !cp_counter in
            incr cp_counter;
            cps :=
              {
                cp_id = id;
                kind = C1;
                orig_pc = pc;
                new_pc = pc_map.(pc) + i;
                table = table_of_res_at analysis pc;
              }
              :: !cps
        | _ -> ())
      inserted.(pc);
    if Hashtbl.mem access_at pc then begin
      let id = !cp_counter in
      incr cp_counter;
      cps :=
        {
          cp_id = id;
          kind = C2;
          orig_pc = pc;
          new_pc = new_pos_of_orig pc;
          table = table_of_res_at analysis pc;
        }
        :: !cps
    end
  done;
  let cps =
    Array.of_list (List.sort (fun a b -> Int.compare a.cp_id b.cp_id) !cps)
  in
  (* Renumber Checkpoint instructions to their cp ids. *)
  Array.iter
    (fun cp ->
      match (cp.kind, out.(cp.new_pc)) with
      | C1, Insn.Checkpoint _ -> out.(cp.new_pc) <- Insn.Checkpoint cp.cp_id
      | C1, _ -> assert false
      | C2, _ -> ())
    cps;
  let report =
    {
      Report.counted_sites = !counted;
      elided = !elided;
      emitted = !emitted;
      formation = !formation;
      reads_unguarded = !unguarded_reads;
      checkpoints = !checkpoints;
      xlate_stores = !xlates;
    }
  in
  let prog' =
    Prog.create ~allow_instrumentation:true
      ~name:(Prog.name prog ^ ".kie")
      out
  in
  let orig_of_new = Array.make total 0 in
  for pc = 0 to n - 1 do
    let first = pc_map.(pc) in
    let last = if pc + 1 < n then pc_map.(pc + 1) - 1 else total - 1 in
    for i = first to last do
      orig_of_new.(i) <- pc
    done
  done;
  let tables = Array.init n (fun pc -> table_of_res_at analysis pc) in
  { prog = prog'; cps; report; pc_map; orig_of_new; tables }

let cp_of_pc t pc = Array.find_opt (fun cp -> cp.new_pc = pc) t.cps
