(** Kie — the KFlex instrumentation engine (§3, step 2).

    Takes a verified program together with the verifier's analysis and
    produces the instrumented program the runtime executes:

    - a {!Kflex_bpf.Insn.Guard} before every heap access whose safety the
      range analysis could not prove (reads are left unguarded in
      performance mode, §3.2/§4.2);
    - a {!Kflex_bpf.Insn.Checkpoint} — the [*terminate] heap access — before
      the back edge of every loop the verifier could not bound (C1
      cancellation points, §3.3);
    - stores of heap-pointer-typed values rewritten to
      {!Kflex_bpf.Insn.Xstore} when the heap is shared with user space
      (translate-on-store, §3.4);
    - the per-cancellation-point {e object tables}: which kernel resources
      are held at the point and where (register or stack slot), with the
      destructor the runtime must invoke to release each (§3.3/§4.3).

    Every heap access is also a C2 cancellation point (the accessed page may
    be unpopulated); [cp_of_pc] maps any faulting instrumented pc to its
    object table. *)

type options = {
  performance_mode : bool;  (** do not guard reads (§3.2) *)
  translate_on_store : bool;  (** shared heap: rewrite pointer stores (§3.4) *)
  kmod_baseline : bool;
      (** emit {e no} instrumentation at all — the "identical implementation
          written as a kernel module (i.e., unsafe kernel code)" baseline of
          §5.2. Loses every safety guarantee; benchmarks only. *)
  no_elision : bool;
      (** ablation: ignore the verifier's range analysis and guard every
          heap access, quantifying what the §5.4 co-design buys. Safe but
          slower. *)
}

val default_options : options

val forced_guards : options
(** [default_options] with [no_elision] set: every heap access guarded
    regardless of what the analysis proved. The fuzzer's elision oracle runs
    each program under both option sets and demands observationally identical
    executions. *)

type obj_entry = {
  klass : string;
  destructor : string;  (** helper to call with the object as argument *)
  loc : Kflex_verifier.State.loc;
      (** where the object lives when the cancellation point executes, in
          {e instrumented}-program coordinates *)
}

type cp_kind = C1 | C2

type cp = {
  cp_id : int;
  kind : cp_kind;
  orig_pc : int;  (** pc in the un-instrumented program *)
  new_pc : int;  (** pc of the Checkpoint / access in the output program *)
  table : obj_entry list;
}

type t = {
  prog : Kflex_bpf.Prog.t;  (** the instrumented program *)
  cps : cp array;
  report : Report.t;
  pc_map : int array;  (** original pc -> first instrumented pc of its group *)
  orig_of_new : int array;  (** instrumented pc -> original pc *)
  tables : obj_entry list array;
      (** object table per {e original} pc: resources held on entry to that
          instruction. The runtime unwinder consults
        [tables.(orig_of_new.(fault_pc))]. *)
}

val run : ?options:options -> Kflex_verifier.Verify.analysis -> t

val cp_of_pc : t -> int -> cp option
(** The cancellation point covering a faulting instrumented pc. *)
