type t = {
  counted_sites : int;
  elided : int;
  emitted : int;
  formation : int;
  reads_unguarded : int;
  checkpoints : int;
  xlate_stores : int;
}

let zero =
  {
    counted_sites = 0;
    elided = 0;
    emitted = 0;
    formation = 0;
    reads_unguarded = 0;
    checkpoints = 0;
    xlate_stores = 0;
  }

let elision_ratio t =
  if t.counted_sites = 0 then 1.0
  else float_of_int t.elided /. float_of_int t.counted_sites

let pp_lint ppf diags =
  match diags with
  | [] -> Format.fprintf ppf "lint: clean"
  | _ ->
      let count k =
        List.length
          (List.filter (fun (d : Kflex_verifier.Lint.diag) -> d.kind = k) diags)
      in
      let parts =
        List.filter_map
          (fun k ->
            match count k with
            | 0 -> None
            | n ->
                Some (Printf.sprintf "%d %s" n (Kflex_verifier.Lint.kind_name k)))
          [
            Kflex_verifier.Lint.Unreachable;
            Kflex_verifier.Lint.Dead_store;
            Kflex_verifier.Lint.Always_taken;
            Kflex_verifier.Lint.Never_taken;
            Kflex_verifier.Lint.Redundant_guard;
            Kflex_verifier.Lint.Ignored_result;
          ]
      in
      Format.fprintf ppf "@[<v>lint: %d finding%s (%s)" (List.length diags)
        (if List.length diags = 1 then "" else "s")
        (String.concat ", " parts);
      List.iter
        (fun d -> Format.fprintf ppf "@,  %a" Kflex_verifier.Lint.pp_diag d)
        diags;
      Format.fprintf ppf "@]"

let pp_lifecycle ppf findings =
  match findings with
  | [] -> Format.fprintf ppf "lifecycle: clean"
  | _ ->
      let module L = Kflex_verifier.Lifecycle in
      let count k =
        List.length (List.filter (fun (f : L.finding) -> f.L.kind = k) findings)
      in
      let parts =
        List.filter_map
          (fun k ->
            match count k with
            | 0 -> None
            | n -> Some (Printf.sprintf "%d %s" n (L.kind_name k)))
          [
            L.Leak;
            L.Double_release;
            L.Use_after_release;
            L.Null_deref;
            L.Lock_hazard;
            L.Lock_order;
            L.Chain_unreachable;
          ]
      in
      Format.fprintf ppf "@[<v>lifecycle: %d finding%s (%s)"
        (List.length findings)
        (if List.length findings = 1 then "" else "s")
        (String.concat ", " parts);
      List.iter
        (fun f -> Format.fprintf ppf "@,  %a" L.pp_finding f)
        findings;
      Format.fprintf ppf "@]"

(* --- machine-readable diagnostics (kflexc lint --json) --------------------

   Hand-rolled emitter: the schema is flat and stable, and the toolchain
   deliberately has no JSON dependency. Schema (documented in README):

   {"version":1,"program":<string>,"findings":[
     {"source":"lint","kind":<kind>,"pc":<int>,"message":<string>}
   | {"source":"lifecycle","kind":<kind>,"pc":<int>,"site":<int>,
      "witness":[<int>...],"message":<string>}
   | {"source":"lifecycle","kind":"chain-unreachable","index":<int>,...}]} *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let add_int_list b l =
  Buffer.add_char b '[';
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int n))
    l;
  Buffer.add_char b ']'

let add_lint_finding b (d : Kflex_verifier.Lint.diag) =
  Buffer.add_string b "{\"source\":\"lint\",\"kind\":";
  add_str b (Kflex_verifier.Lint.kind_name d.kind);
  Buffer.add_string b (Printf.sprintf ",\"pc\":%d,\"message\":" d.pc);
  add_str b d.msg;
  Buffer.add_char b '}'

let add_lifecycle_finding b ?index (f : Kflex_verifier.Lifecycle.finding) =
  let module L = Kflex_verifier.Lifecycle in
  Buffer.add_string b "{\"source\":\"lifecycle\",\"kind\":";
  add_str b (L.kind_name f.L.kind);
  (match index with
  | Some i -> Buffer.add_string b (Printf.sprintf ",\"index\":%d" i)
  | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"pc\":%d,\"site\":%d,\"witness\":" f.L.pc f.L.site);
  add_int_list b f.L.witness;
  Buffer.add_string b ",\"message\":";
  add_str b f.L.msg;
  Buffer.add_char b '}'

let lint_json ~program ~diags ~findings =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"version\":1,\"program\":";
  add_str b program;
  Buffer.add_string b ",\"findings\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ','
  in
  List.iter (fun d -> sep (); add_lint_finding b d) diags;
  List.iter (fun f -> sep (); add_lifecycle_finding b f) findings;
  Buffer.add_string b "]}";
  Buffer.contents b

let lint_rejected_json ~program (e : Kflex_verifier.Verify.error) =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"version\":1,\"program\":";
  add_str b program;
  Buffer.add_string b ",\"rejected\":{";
  (match e.Kflex_verifier.Verify.pc with
  | Some pc -> Buffer.add_string b (Printf.sprintf "\"pc\":%d," pc)
  | None -> ());
  Buffer.add_string b "\"kind\":";
  add_str b (Kflex_verifier.Verify.error_kind_name e.Kflex_verifier.Verify.kind);
  Buffer.add_string b ",\"message\":";
  add_str b e.Kflex_verifier.Verify.msg;
  Buffer.add_string b "}}";
  Buffer.contents b

let chain_json ~programs ~findings =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"version\":1,\"chain\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      add_str b p)
    programs;
  Buffer.add_string b "],\"findings\":[";
  List.iteri
    (fun i (cf : Kflex_verifier.Lifecycle.chain_finding) ->
      if i > 0 then Buffer.add_char b ',';
      add_lifecycle_finding b ~index:cf.Kflex_verifier.Lifecycle.index
        cf.Kflex_verifier.Lifecycle.finding)
    findings;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf
    "guards: %d sites, %d elided (%.0f%%), %d emitted, %d formation, %d \
     perf-mode reads unguarded; %d checkpoints; %d translated stores"
    t.counted_sites t.elided
    (100. *. elision_ratio t)
    t.emitted t.formation t.reads_unguarded t.checkpoints t.xlate_stores
