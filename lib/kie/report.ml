type t = {
  counted_sites : int;
  elided : int;
  emitted : int;
  formation : int;
  reads_unguarded : int;
  checkpoints : int;
  xlate_stores : int;
}

let zero =
  {
    counted_sites = 0;
    elided = 0;
    emitted = 0;
    formation = 0;
    reads_unguarded = 0;
    checkpoints = 0;
    xlate_stores = 0;
  }

let elision_ratio t =
  if t.counted_sites = 0 then 1.0
  else float_of_int t.elided /. float_of_int t.counted_sites

let pp_lint ppf diags =
  match diags with
  | [] -> Format.fprintf ppf "lint: clean"
  | _ ->
      let count k =
        List.length
          (List.filter (fun (d : Kflex_verifier.Lint.diag) -> d.kind = k) diags)
      in
      let parts =
        List.filter_map
          (fun k ->
            match count k with
            | 0 -> None
            | n ->
                Some (Printf.sprintf "%d %s" n (Kflex_verifier.Lint.kind_name k)))
          [
            Kflex_verifier.Lint.Unreachable;
            Kflex_verifier.Lint.Dead_store;
            Kflex_verifier.Lint.Always_taken;
            Kflex_verifier.Lint.Never_taken;
            Kflex_verifier.Lint.Redundant_guard;
            Kflex_verifier.Lint.Ignored_result;
          ]
      in
      Format.fprintf ppf "@[<v>lint: %d finding%s (%s)" (List.length diags)
        (if List.length diags = 1 then "" else "s")
        (String.concat ", " parts);
      List.iter
        (fun d -> Format.fprintf ppf "@,  %a" Kflex_verifier.Lint.pp_diag d)
        diags;
      Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf
    "guards: %d sites, %d elided (%.0f%%), %d emitted, %d formation, %d \
     perf-mode reads unguarded; %d checkpoints; %d translated stores"
    t.counted_sites t.elided
    (100. *. elision_ratio t)
    t.emitted t.formation t.reads_unguarded t.checkpoints t.xlate_stores
