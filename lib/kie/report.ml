type t = {
  counted_sites : int;
  elided : int;
  emitted : int;
  formation : int;
  reads_unguarded : int;
  checkpoints : int;
  xlate_stores : int;
}

let zero =
  {
    counted_sites = 0;
    elided = 0;
    emitted = 0;
    formation = 0;
    reads_unguarded = 0;
    checkpoints = 0;
    xlate_stores = 0;
  }

let elision_ratio t =
  if t.counted_sites = 0 then 1.0
  else float_of_int t.elided /. float_of_int t.counted_sites

let pp ppf t =
  Format.fprintf ppf
    "guards: %d sites, %d elided (%.0f%%), %d emitted, %d formation, %d \
     perf-mode reads unguarded; %d checkpoints; %d translated stores"
    t.counted_sites t.elided
    (100. *. elision_ratio t)
    t.emitted t.formation t.reads_unguarded t.checkpoints t.xlate_stores
