(** Instrumentation accounting — the data behind Table 3 of the paper.

    Counts SFI guards by category. Following §5.4, guards emitted on
    {e forming} a new heap pointer (sanitising an untrusted word before its
    first use as an address) are kept separate from guards on manipulated
    heap pointers, because formation guards must never be optimised away;
    the elision statistics are computed over the latter only. *)

type t = {
  counted_sites : int;
      (** heap accesses through manipulated heap pointers ("total number of
          guard insns." in Table 3) *)
  elided : int;  (** of [counted_sites], proven safe by range analysis *)
  emitted : int;  (** counted guards actually emitted = counted - elided *)
  formation : int;  (** formation guards emitted (excluded from Table 3) *)
  reads_unguarded : int;
      (** guards dropped because of performance mode (§3.2) *)
  checkpoints : int;  (** C1 cancellation points inserted at back edges *)
  xlate_stores : int;  (** stores rewritten for pointer translation (§3.4) *)
}

val zero : t

val elision_ratio : t -> float
(** [elided / counted_sites]; 1.0 when there are no counted sites. *)

val pp : Format.formatter -> t -> unit

val pp_lint : Format.formatter -> Kflex_verifier.Lint.diag list -> unit
(** Summary line plus one indented line per diagnostic — the [kflexc lint]
    and [kflexc report] rendering of {!Kflex_verifier.Lint.run} output.
    Prints ["lint: clean"] for an empty list. *)

val pp_lifecycle :
  Format.formatter -> Kflex_verifier.Lifecycle.finding list -> unit
(** Same shape as {!pp_lint} for the path-sensitive lifecycle pass:
    summary line with per-kind counts, then one indented line per finding
    (with its pc-trace witness). Prints ["lifecycle: clean"] for []. *)

val lint_json :
  program:string ->
  diags:Kflex_verifier.Lint.diag list ->
  findings:Kflex_verifier.Lifecycle.finding list ->
  string
(** One JSON object (no trailing newline) with the stable machine-readable
    diagnostics schema used by [kflexc lint --json]:

    {v
    {"version":1,"program":<string>,"findings":[
      {"source":"lint","kind":<kind>,"pc":<int>,"message":<string>},
      {"source":"lifecycle","kind":<kind>,"pc":<int>,"site":<int>,
       "witness":[<int>,...],"message":<string>}, ...]}
    v}

    Finding order is lint diagnostics (ascending pc) followed by lifecycle
    findings (ascending pc). [kind] strings come from
    {!Kflex_verifier.Lint.kind_name} / {!Kflex_verifier.Lifecycle.kind_name}
    and are part of the schema contract. *)

val lint_rejected_json :
  program:string -> Kflex_verifier.Verify.error -> string
(** One JSON object for a program the verifier refused — the structured
    counterpart of the ["REJECTED"] text line, so [kflexc lint --json]
    stays machine-readable when a file fails admission:

    {v
    {"version":1,"program":<string>,"rejected":{
      "pc":<int>?,"kind":<error kind>,"message":<string>}}
    v}

    [kind] strings come from {!Kflex_verifier.Verify.error_kind_name}. *)

val chain_json :
  programs:string list ->
  findings:Kflex_verifier.Lifecycle.chain_finding list ->
  string
(** JSON object for cross-program chain analysis: like {!lint_json} but
    with a ["chain"] array of program names instead of ["program"], and
    each finding carries an additional ["index"] field naming the chain
    position it applies to. *)
