(** Instrumentation accounting — the data behind Table 3 of the paper.

    Counts SFI guards by category. Following §5.4, guards emitted on
    {e forming} a new heap pointer (sanitising an untrusted word before its
    first use as an address) are kept separate from guards on manipulated
    heap pointers, because formation guards must never be optimised away;
    the elision statistics are computed over the latter only. *)

type t = {
  counted_sites : int;
      (** heap accesses through manipulated heap pointers ("total number of
          guard insns." in Table 3) *)
  elided : int;  (** of [counted_sites], proven safe by range analysis *)
  emitted : int;  (** counted guards actually emitted = counted - elided *)
  formation : int;  (** formation guards emitted (excluded from Table 3) *)
  reads_unguarded : int;
      (** guards dropped because of performance mode (§3.2) *)
  checkpoints : int;  (** C1 cancellation points inserted at back edges *)
  xlate_stores : int;  (** stores rewritten for pointer translation (§3.4) *)
}

val zero : t

val elision_ratio : t -> float
(** [elided / counted_sites]; 1.0 when there are no counted sites. *)

val pp : Format.formatter -> t -> unit

val pp_lint : Format.formatter -> Kflex_verifier.Lint.diag list -> unit
(** Summary line plus one indented line per diagnostic — the [kflexc lint]
    and [kflexc report] rendering of {!Kflex_verifier.Lint.run} output.
    Prints ["lint: clean"] for an empty list. *)
