(** The extension-defined data structures of §5.2 (Figure 5, Table 3).

    Five structures — chained hash map, doubly linked list, red-black tree,
    skiplist — plus the two network sketches (count-min, count sketch),
    each written in eclang, defined entirely inside the extension heap, and
    driven through the full verify → Kie → runtime pipeline. The red-black
    tree and skiplist demonstrate what §5.2 claims eBPF cannot host:
    rebalancing rotations, variable-level towers, and allocation in the
    operation itself. *)

type kind = Hashmap | Linked_list | Rbtree | Skiplist | Countmin | Countsketch

val all : kind list
(** In Figure 5's order. *)

val name : kind -> string

val source : kind -> string
(** The eclang program with a dispatching entry (op 0 = update, 1 = lookup,
    2 = delete; payload: u8 op @0, u64 key @1, u64 value @9). *)

val op_source : kind -> [ `Update | `Lookup | `Delete ] -> string
(** A program whose entry performs only the given operation — what Table 3
    compiles to count guards per function. *)

val chain_source : kind -> string
(** Like {!source}, but the entry returns [XDP_PASS] (2) after the
    operation, so multi-tenant chains attached to one hook fall through to
    every structure. *)

(** Instrumentation mode for an instance. *)
type mode =
  | M_kflex  (** full KFlex runtime checks *)
  | M_perf  (** performance mode: read guards dropped (§3.2) *)
  | M_kmod  (** no instrumentation — the unsafe kernel-module baseline *)
  | M_noelide  (** ablation: every heap access guarded, range analysis
          ignored (§5.4) *)

type instance

val create :
  ?mode:mode -> ?heap_bits:int -> ?backend:Kflex_runtime.Vm.backend ->
  kind -> instance
(** Compile, verify, instrument and load one structure with its own heap
    (default 16 MiB) and kernel state. The VM PRNG is reseeded so
    randomised structures build identical shapes across modes. [backend]
    selects the default execution engine (interpreter unless given).
    @raise Failure if the verifier rejects the program (a bug). *)

val op_packet : op:int -> key:int64 -> value:int64 -> Kflex_kernel.Packet.t
(** The driver packet for one operation (op 0 = update, 1 = lookup,
    2 = delete) — exposed so benchmarks can drive {!Kflex.run_packet}
    directly with explicit stats/backend. *)

val exec_op : instance -> op:int -> key:int64 -> value:int64 -> int64 * int
(** Run one operation; returns (result, VM cost units).
    @raise Failure on cancellation (operations must terminate). *)

val update : instance -> key:int64 -> value:int64 -> int64 * int
val lookup : instance -> key:int64 -> int64 * int
val delete : instance -> key:int64 -> int64 * int

val loaded : instance -> Kflex.loaded
val kind : instance -> kind
