(** KFlex-Redis (§5.1–§5.2): GET/SET over a hash table plus ZADD over
    sorted sets, attached at the [sk_skb] hook (all Redis traffic is TCP,
    so requests traverse the transport stack before the extension — the
    reason its gains are smaller than Memcached's, §5.1).

    ZADD is the flexibility showcase: the first ZADD against a key
    allocates a {e new skiplist in the fast path} — infeasible in plain
    eBPF, one [new] in eclang.

    Wire protocol (payload): u8 op @0 (0 = GET, 1 = SET, 2 = ZADD),
    32-byte key @1, value @33 / (score @33, member @41 for ZADD),
    u8 hit flag @65. *)

val source : string
(** The extension source (eclang). *)

type op = Get | Set | Zadd of int64 * int64  (** (score, member) *)

val op_packet : op:op -> rank:int -> Kflex_kernel.Packet.t
(** [rank] selects the key via {!Memcached.key_words}. *)

type t = {
  loaded : Kflex.loaded;
  compiled : Kflex_eclang.Compile.compiled;
  heap : Kflex_runtime.Heap.t;
}

val create : ?mode:Kflex_kie.Instrument.options -> ?heap_bits:int -> unit -> t

val exec : t -> Kflex_kernel.Packet.t -> int64 * int
(** One request; returns (reply hit flag, cost units).
    @raise Failure on cancellation. *)

(** The native (KeyDB-like) user-space baseline: same logic, host speed. *)
module User : sig
  type t

  val create : unit -> t
  val set : t -> rank:int -> unit
  val get : t -> rank:int -> string option
  val zadd : t -> rank:int -> score:int64 -> member:int64 -> unit

  val zcard : t -> rank:int -> int
  (** Sorted-set cardinality (differential testing against the extension's
      heap state). *)
end
