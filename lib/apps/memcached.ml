(* The three Memcached deployments of §5.1.

   Wire protocol (packet payload):
     u8  op      @0    0 = GET, 1 = SET
     u64 k0..k3  @1    32-byte key
     u64 v0..v3  @33   32-byte value (SET request / GET reply)
     u8  hit     @65   reply flag
   GETs arrive over UDP and SETs over TCP, as in Memcached (§5.1). *)

open Kflex_kernel

(* --- KFlex-Memcached: both GETs and SETs offloaded at XDP -------------- *)

let kflex_source = {|
struct entry {
  k0: u64; k1: u64; k2: u64; k3: u64;
  v0: u64; v1: u64; v2: u64; v3: u64;
  next: ptr<entry>;
}
global buckets: [ptr<entry>; 4096];
global lock: u64;

// FNV-1a over the raw key bytes, as Memcached hashes its keys
fn bytehash(c: ctx) -> u64 {
  var h: u64 = 0xcbf29ce484222325;
  var i: u64 = 0;
  while (i < 32) {
    h = (h ^ pkt_read_u8(c, 1 + i)) * 1099511628211;
    i = i + 1;
  }
  return h ^ (h >> 29);
}

fn prog(c: ctx) -> u64 {
  var op: u64 = pkt_read_u8(c, 0);
  var k0: u64 = pkt_read_u64(c, 1);
  var k1: u64 = pkt_read_u64(c, 9);
  var k2: u64 = pkt_read_u64(c, 17);
  var k3: u64 = pkt_read_u64(c, 25);
  var b: u64 = bytehash(c) & 4095;

  var h: u64 = kflex_spin_lock(&lock);
  var e: ptr<entry> = buckets[b];
  while (e != null) {
    if (e.k0 == k0 && e.k1 == k1 && e.k2 == k2 && e.k3 == k3) { break; }
    e = e.next;
  }

  if (op == 0) {          // GET
    if (e == null) {
      kflex_spin_unlock(h);
      pkt_write_u8(c, 65, 0);
      return 3;           // XDP_TX: miss reply
    }
    var v0: u64 = e.v0;
    var v1: u64 = e.v1;
    var v2: u64 = e.v2;
    var v3: u64 = e.v3;
    kflex_spin_unlock(h);
    pkt_write_u64(c, 33, v0);
    pkt_write_u64(c, 41, v1);
    pkt_write_u64(c, 49, v2);
    pkt_write_u64(c, 57, v3);
    pkt_write_u8(c, 65, 1);
    return 3;             // XDP_TX: hit reply
  }

  // SET: insert on demand — the dynamic allocation BMC cannot do (§5.1)
  if (e == null) {
    var n: ptr<entry> = new entry;
    if (n == null) {
      kflex_spin_unlock(h);
      pkt_write_u8(c, 65, 0);
      return 3;
    }
    n.k0 = k0; n.k1 = k1; n.k2 = k2; n.k3 = k3;
    n.next = buckets[b];
    buckets[b] = n;
    e = n;
  }
  e.v0 = pkt_read_u64(c, 33);
  e.v1 = pkt_read_u64(c, 41);
  e.v2 = pkt_read_u64(c, 49);
  e.v3 = pkt_read_u64(c, 57);
  kflex_spin_unlock(h);
  pkt_write_u8(c, 65, 1);
  return 3;
}
|}

(* --- BMC: plain-eBPF look-aside GET cache (no heap, no loops) ----------- *)

let bmc_source = {|
// BMC caches (key digest -> value digest) in a pre-allocated eBPF map.
// GET hit: reply from the kernel (XDP_TX). GET miss: XDP_PASS to user
// space. SET: invalidate and XDP_PASS (BMC cannot offload SETs, §5.1).
fn prog(c: ctx) -> u64 {
  var op: u64 = pkt_read_u8(c, 0);
  // FNV-1a over the raw key bytes, fully unrolled: plain eBPF rejects the
  // loop form (no statically provable bound), so BMC unrolls — exactly the
  // contortion §2.2 describes
  var h: u64 = 0xcbf29ce484222325;
  h = (h ^ pkt_read_u8(c, 1)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 2)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 3)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 4)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 5)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 6)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 7)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 8)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 9)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 10)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 11)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 12)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 13)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 14)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 15)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 16)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 17)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 18)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 19)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 20)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 21)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 22)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 23)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 24)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 25)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 26)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 27)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 28)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 29)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 30)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 31)) * 1099511628211;
  h = (h ^ pkt_read_u8(c, 32)) * 1099511628211;
  h = h ^ (h >> 29);

  var kbuf: bytes[8];
  var vbuf: bytes[8];
  st64(&kbuf, 0, h);

  if (op == 1) {
    bpf_map_delete(3, &kbuf);
    return 2;            // XDP_PASS: user space handles the SET
  }
  if (bpf_map_lookup(3, &kbuf, &vbuf) == 1) {
    pkt_write_u64(c, 33, ld64(&vbuf, 0));
    pkt_write_u8(c, 65, 1);
    return 3;            // XDP_TX: served from the kernel cache
  }
  return 2;              // XDP_PASS: miss, user space handles it
}
|}

(* --- shared key/value material ------------------------------------------ *)

let key_words rank =
  let r = Kflex_workload.Rng.create ~seed:(Int64.of_int (rank + 1)) in
  Array.init 4 (fun _ -> Kflex_workload.Rng.next r)

let value_words rank =
  let r = Kflex_workload.Rng.create ~seed:(Int64.of_int (-rank - 1)) in
  Array.init 4 (fun _ -> Kflex_workload.Rng.next r)

(* mirrors the FNV-1a hash in [bmc_source] exactly (the egress fill must
   agree with the in-kernel lookup) *)
let digest words =
  let h = ref 0xcbf29ce484222325L in
  Array.iter
    (fun w ->
      for b = 0 to 7 do
        let byte = Int64.logand (Int64.shift_right_logical w (8 * b)) 0xffL in
        h := Int64.mul (Int64.logxor !h byte) 1099511628211L
      done)
    words;
  Int64.logxor !h (Int64.shift_right_logical !h 29)

type op = Get | Set

let op_packet ~op ~rank =
  let b = Bytes.make 66 '\000' in
  Bytes.set b 0 (match op with Get -> '\000' | Set -> '\001');
  let kw = key_words rank in
  Array.iteri (fun i w -> Bytes.set_int64_le b (1 + (8 * i)) w) kw;
  (match op with
  | Set ->
      let vw = value_words rank in
      Array.iteri (fun i w -> Bytes.set_int64_le b (33 + (8 * i)) w) vw
  | Get -> ());
  let proto = match op with Get -> Packet.Udp | Set -> Packet.Tcp in
  Packet.make ~proto ~src_port:40000 ~dst_port:11211 b

(* --- user-space Memcached (the native baseline) -------------------------- *)

module User = struct
  type t = { tbl : (string, string) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 4096 }

  let key_of_rank rank =
    let b = Bytes.create 32 in
    Array.iteri (fun i w -> Bytes.set_int64_le b (8 * i) w) (key_words rank);
    Bytes.to_string b

  let set t ~rank =
    let vb = Bytes.create 32 in
    Array.iteri (fun i w -> Bytes.set_int64_le vb (8 * i) w) (value_words rank);
    Hashtbl.replace t.tbl (key_of_rank rank) (Bytes.to_string vb)

  let get t ~rank = Hashtbl.find_opt t.tbl (key_of_rank rank)
end

(* --- loaded deployments --------------------------------------------------- *)

type kflex_t = {
  loaded : Kflex.loaded;
  compiled : Kflex_eclang.Compile.compiled;
  heap : Kflex_runtime.Heap.t;
}

let create_kflex ?(mode = Kflex_kie.Instrument.default_options) ?(heap_bits = 26)
    () =
  let compiled =
    Kflex_eclang.Compile.compile_string ~name:"kflex_memcached" kflex_source
  in
  let kernel = Helpers.create () in
  Socket.listen (Helpers.sockets kernel) ~proto:Packet.Udp ~port:11211;
  Socket.listen (Helpers.sockets kernel) ~proto:Packet.Tcp ~port:11211;
  let heap = Kflex_runtime.Heap.create ~size:(Int64.shift_left 1L heap_bits) () in
  match
    Kflex.load ~options:mode ~kernel ~heap
      ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
      ~hook:Hook.Xdp compiled.Kflex_eclang.Compile.prog
  with
  | Ok loaded -> { loaded; compiled; heap }
  | Error e ->
      Format.kasprintf failwith "kflex-memcached rejected: %a"
        Kflex_verifier.Verify.pp_error e

(* Executes one request; returns (xdp action, cost units). *)
let exec_kflex t pkt =
  let stats = Kflex_runtime.Vm.fresh_stats () in
  match Kflex.run_packet t.loaded ~stats pkt with
  | Kflex_runtime.Vm.Finished v -> (v, Kflex_runtime.Vm.total_cost stats)
  | Kflex_runtime.Vm.Cancelled _ -> failwith "kflex-memcached cancelled"

type bmc_t = {
  loaded : Kflex.loaded;
  cache : Map.t;
  backing : User.t;  (** the user-space Memcached behind the cache *)
}

let create_bmc ?(cache_entries = 4096) () =
  let compiled =
    Kflex_eclang.Compile.compile_string ~name:"bmc" ~use_heap:false bmc_source
  in
  let kernel = Helpers.create () in
  let cache = Map.create ~max_entries:cache_entries () in
  let fd = Map.register (Helpers.maps kernel) cache in
  assert (fd = 3L);
  match
    Kflex.load ~mode:Kflex_verifier.Verify.Ebpf ~kernel ~hook:Hook.Xdp
      compiled.Kflex_eclang.Compile.prog
  with
  | Ok loaded -> { loaded; cache; backing = User.create () }
  | Error e ->
      Format.kasprintf failwith "bmc rejected: %a" Kflex_verifier.Verify.pp_error e

(* One BMC request: runs the eBPF cache; on PASS the user-space Memcached
   handles it (and GET misses fill the cache on the way out, as BMC does on
   the egress path). Returns (`Hit cost | `Pass cost). *)
let exec_bmc t ~op ~rank =
  let pkt = op_packet ~op ~rank in
  let stats = Kflex_runtime.Vm.fresh_stats () in
  match Kflex.run_packet t.loaded ~stats pkt with
  | Kflex_runtime.Vm.Finished v when v = Hook.xdp_tx ->
      `Hit (Kflex_runtime.Vm.total_cost stats)
  | Kflex_runtime.Vm.Finished _ ->
      (match op with
      | Set -> User.set t.backing ~rank
      | Get ->
          ignore (User.get t.backing ~rank);
          (* egress-path cache fill *)
          ignore (Map.update t.cache (digest (key_words rank)) (digest (value_words rank))));
      `Pass (Kflex_runtime.Vm.total_cost stats)
  | Kflex_runtime.Vm.Cancelled _ -> failwith "bmc cancelled"
