(* The five extension-defined data structures of §5.2 (Fig. 5, Table 3),
   written in eclang and offloaded with KFlex. Each structure exposes
   update/lookup/delete functions plus a dispatching [prog] entry; Table 3
   additionally compiles one program per operation to count its guards. *)

type kind = Hashmap | Linked_list | Rbtree | Skiplist | Countmin | Countsketch

let all = [ Hashmap; Linked_list; Rbtree; Skiplist; Countmin; Countsketch ]

let name = function
  | Hashmap -> "hashmap"
  | Linked_list -> "linked_list"
  | Rbtree -> "rbtree"
  | Skiplist -> "skiplist"
  | Countmin -> "countmin"
  | Countsketch -> "countsketch"

(* ---------------------------------------------------------------------- *)

let hashmap_body = {|
struct node { key: u64; value: u64; next: ptr<node>; }
global buckets: [ptr<node>; 1024];

fn hash(k: u64) -> u64 {
  var h: u64 = k * 0x9E3779B97F4A7C15;
  h = h ^ (h >> 29);
  h = h * 0xBF58476D1CE4E5B9;
  h = h ^ (h >> 32);
  return h & 1023;
}

fn update(k: u64, v: u64) -> u64 {
  var b: u64 = hash(k);
  var n: ptr<node> = buckets[b];
  while (n != null) {
    if (n.key == k) { n.value = v; return 1; }
    n = n.next;
  }
  var m: ptr<node> = new node;
  if (m == null) { return 0; }
  m.key = k;
  m.value = v;
  m.next = buckets[b];
  buckets[b] = m;
  return 1;
}

fn lookup(k: u64) -> u64 {
  var n: ptr<node> = buckets[hash(k)];
  while (n != null) {
    if (n.key == k) { return n.value; }
    n = n.next;
  }
  return 0;
}

fn remove(k: u64) -> u64 {
  var b: u64 = hash(k);
  var n: ptr<node> = buckets[b];
  var prev: ptr<node> = null;
  while (n != null) {
    if (n.key == k) {
      if (prev == null) { buckets[b] = n.next; }
      else { prev.next = n.next; }
      free n;
      return 1;
    }
    prev = n;
    n = n.next;
  }
  return 0;
}
|}

let linked_list_body = {|
struct node { key: u64; value: u64; next: ptr<node>; prev: ptr<node>; }
global head: ptr<node>;

// constant-time: push at head (the paper notes list update is O(1))
fn update(k: u64, v: u64) -> u64 {
  var m: ptr<node> = new node;
  if (m == null) { return 0; }
  m.key = k;
  m.value = v;
  m.prev = null;
  m.next = head;
  if (head != null) { head.prev = m; }
  head = m;
  return 1;
}

fn lookup(k: u64) -> u64 {
  var n: ptr<node> = head;
  while (n != null) {
    if (n.key == k) { return n.value; }
    n = n.next;
  }
  return 0;
}

fn remove(k: u64) -> u64 {
  var n: ptr<node> = head;
  while (n != null) {
    if (n.key == k) {
      if (n.prev != null) { n.prev.next = n.next; }
      else { head = n.next; }
      if (n.next != null) { n.next.prev = n.prev; }
      free n;
      return 1;
    }
    n = n.next;
  }
  return 0;
}
|}

let rbtree_body = {|
// Iterative red-black tree with parent pointers (no sentinel; null = leaf).
struct node {
  key: u64; value: u64;
  left: ptr<node>; right: ptr<node>; parent: ptr<node>;
  red: u64;
}
global root: ptr<node>;

fn rotate_left(x: ptr<node>) -> u64 {
  var y: ptr<node> = x.right;
  x.right = y.left;
  if (y.left != null) { y.left.parent = x; }
  y.parent = x.parent;
  if (x.parent == null) { root = y; }
  else {
    if (x == x.parent.left) { x.parent.left = y; }
    else { x.parent.right = y; }
  }
  y.left = x;
  x.parent = y;
  return 0;
}

fn rotate_right(x: ptr<node>) -> u64 {
  var y: ptr<node> = x.left;
  x.left = y.right;
  if (y.right != null) { y.right.parent = x; }
  y.parent = x.parent;
  if (x.parent == null) { root = y; }
  else {
    if (x == x.parent.right) { x.parent.right = y; }
    else { x.parent.left = y; }
  }
  y.right = x;
  x.parent = y;
  return 0;
}

fn insert_fixup(zz: ptr<node>) -> u64 {
  var z: ptr<node> = zz;
  while (z.parent != null && z.parent.red == 1) {
    var p: ptr<node> = z.parent;
    var g: ptr<node> = p.parent;
    if (p == g.left) {
      var u: ptr<node> = g.right;
      if (u != null && u.red == 1) {
        p.red = 0; u.red = 0; g.red = 1; z = g;
      } else {
        if (z == p.right) { z = p; rotate_left(z); p = z.parent; g = p.parent; }
        p.red = 0; g.red = 1; rotate_right(g);
      }
    } else {
      var u2: ptr<node> = g.left;
      if (u2 != null && u2.red == 1) {
        p.red = 0; u2.red = 0; g.red = 1; z = g;
      } else {
        if (z == p.left) { z = p; rotate_right(z); p = z.parent; g = p.parent; }
        p.red = 0; g.red = 1; rotate_left(g);
      }
    }
  }
  root.red = 0;
  return 0;
}

fn update(k: u64, v: u64) -> u64 {
  var y: ptr<node> = null;
  var x: ptr<node> = root;
  while (x != null) {
    y = x;
    if (k == x.key) { x.value = v; return 1; }
    if (k < x.key) { x = x.left; } else { x = x.right; }
  }
  var z: ptr<node> = new node;
  if (z == null) { return 0; }
  z.key = k; z.value = v; z.red = 1;
  z.left = null; z.right = null; z.parent = y;
  if (y == null) { root = z; }
  else {
    if (k < y.key) { y.left = z; } else { y.right = z; }
  }
  insert_fixup(z);
  return 1;
}

fn lookup(k: u64) -> u64 {
  var x: ptr<node> = root;
  while (x != null) {
    if (k == x.key) { return x.value; }
    if (k < x.key) { x = x.left; } else { x = x.right; }
  }
  return 0;
}

// replace subtree u (child of up) by v
fn transplant(u: ptr<node>, v: ptr<node>) -> u64 {
  if (u.parent == null) { root = v; }
  else {
    if (u == u.parent.left) { u.parent.left = v; }
    else { u.parent.right = v; }
  }
  if (v != null) { v.parent = u.parent; }
  return 0;
}

// delete fixup tracking (x, xp) since x may be null
fn delete_fixup(xx: u64, xpp: u64) -> u64 {
  var x: ptr<node> = xx;
  var xp: ptr<node> = xpp;
  while (xp != null && (x == null || x.red == 0)) {
    if (x == xp.left) {
      var w: ptr<node> = xp.right;
      if (w.red == 1) {
        w.red = 0; xp.red = 1; rotate_left(xp); w = xp.right;
      }
      if ((w.left == null || w.left.red == 0) && (w.right == null || w.right.red == 0)) {
        w.red = 1; x = xp; xp = x.parent;
      } else {
        if (w.right == null || w.right.red == 0) {
          if (w.left != null) { w.left.red = 0; }
          w.red = 1; rotate_right(w); w = xp.right;
        }
        w.red = xp.red;
        xp.red = 0;
        if (w.right != null) { w.right.red = 0; }
        rotate_left(xp);
        x = root; xp = null;
      }
    } else {
      var w2: ptr<node> = xp.left;
      if (w2.red == 1) {
        w2.red = 0; xp.red = 1; rotate_right(xp); w2 = xp.left;
      }
      if ((w2.left == null || w2.left.red == 0) && (w2.right == null || w2.right.red == 0)) {
        w2.red = 1; x = xp; xp = x.parent;
      } else {
        if (w2.left == null || w2.left.red == 0) {
          if (w2.right != null) { w2.right.red = 0; }
          w2.red = 1; rotate_left(w2); w2 = xp.left;
        }
        w2.red = xp.red;
        xp.red = 0;
        if (w2.left != null) { w2.left.red = 0; }
        rotate_right(xp);
        x = root; xp = null;
      }
    }
  }
  if (x != null) { x.red = 0; }
  return 0;
}

fn tree_min(zz: ptr<node>) -> u64 {
  var z: ptr<node> = zz;
  while (z.left != null) { z = z.left; }
  return z;
}

fn remove(k: u64) -> u64 {
  var z: ptr<node> = root;
  while (z != null && z.key != k) {
    if (k < z.key) { z = z.left; } else { z = z.right; }
  }
  if (z == null) { return 0; }
  var y: ptr<node> = z;
  var ored: u64 = y.red;
  var x: ptr<node> = null;
  var xp: ptr<node> = null;
  if (z.left == null) {
    x = z.right; xp = z.parent;
    transplant(z, z.right);
  } else {
    if (z.right == null) {
      x = z.left; xp = z.parent;
      transplant(z, z.left);
    } else {
      y = tree_min(z.right);
      ored = y.red;
      x = y.right;
      if (y.parent == z) { xp = y; }
      else {
        xp = y.parent;
        transplant(y, y.right);
        y.right = z.right;
        y.right.parent = y;
      }
      transplant(z, y);
      y.left = z.left;
      y.left.parent = y;
      y.red = z.red;
    }
  }
  free z;
  if (ored == 0) { delete_fixup(x, xp); }
  return 1;
}
|}

let skiplist_body = {|
struct node { key: u64; value: u64; level: u64; fwd: [ptr<node>; 16]; }
global shead: ptr<node>;
global slevel: u64;
global upd: [u64; 16];   // per-level predecessors (single-threaded scratch)

fn init() -> u64 {
  if (shead == null) {
    shead = new node;
    shead.level = 16;
    slevel = 1;
  }
  return 0;
}

fn randlevel() -> u64 {
  var l: u64 = 1;
  while (l < 16 && (bpf_get_prandom_u32() & 1) == 1) { l = l + 1; }
  return l;
}

fn lookup(k: u64) -> u64 {
  init();
  var x: ptr<node> = shead;
  var i: u64 = slevel;
  while (i > 0) {
    var nx: ptr<node> = x.fwd[i - 1];
    while (nx != null && nx.key < k) { x = nx; nx = x.fwd[i - 1]; }
    i = i - 1;
  }
  var c: ptr<node> = x.fwd[0];
  if (c != null && c.key == k) { return c.value; }
  return 0;
}

fn update(k: u64, v: u64) -> u64 {
  init();
  var x: ptr<node> = shead;
  var i: u64 = slevel;
  while (i > 0) {
    var nx: ptr<node> = x.fwd[i - 1];
    while (nx != null && nx.key < k) { x = nx; nx = x.fwd[i - 1]; }
    upd[i - 1] = x;
    i = i - 1;
  }
  var c: ptr<node> = x.fwd[0];
  if (c != null && c.key == k) { c.value = v; return 1; }
  var lvl: u64 = randlevel();
  if (lvl > slevel) {
    i = slevel;
    while (i < lvl) { upd[i] = shead; i = i + 1; }
    slevel = lvl;
  }
  var n: ptr<node> = new node;
  if (n == null) { return 0; }
  n.key = k; n.value = v; n.level = lvl;
  i = 0;
  while (i < lvl) {
    var p: ptr<node> = upd[i];
    n.fwd[i] = p.fwd[i];
    p.fwd[i] = n;
    i = i + 1;
  }
  return 1;
}

fn remove(k: u64) -> u64 {
  init();
  var x: ptr<node> = shead;
  var i: u64 = slevel;
  while (i > 0) {
    var nx: ptr<node> = x.fwd[i - 1];
    while (nx != null && nx.key < k) { x = nx; nx = x.fwd[i - 1]; }
    upd[i - 1] = x;
    i = i - 1;
  }
  var c: ptr<node> = x.fwd[0];
  if (c == null || c.key != k) { return 0; }
  i = 0;
  while (i < c.level) {
    var p: ptr<node> = upd[i];
    if (p.fwd[i] == c) { p.fwd[i] = c.fwd[i]; }
    i = i + 1;
  }
  while (slevel > 1 && shead.fwd[slevel - 1] == null) { slevel = slevel - 1; }
  free c;
  return 1;
}
|}

let countmin_body = {|
// Count-min sketch: 4 rows x 2048 counters.
global cm: [u64; 8192];

fn rowhash(k: u64, r: u64) -> u64 {
  var h: u64 = (k + (r + 1) * 1442695040888963407) * 6364136223846793005;
  h = h ^ (h >> 33);
  h = h * 0xFF51AFD7ED558CCD;
  h = h ^ (h >> 29);
  return (r * 2048) + (h & 2047);
}

fn update(k: u64, v: u64) -> u64 {
  var r: u64 = 0;
  while (r < 4) {
    var idx: u64 = rowhash(k, r);
    cm[idx] = cm[idx] + v;
    r = r + 1;
  }
  return 1;
}

fn lookup(k: u64) -> u64 {
  var best: u64 = 0xFFFFFFFFFFFFFFFF;
  var r: u64 = 0;
  while (r < 4) {
    var e: u64 = cm[rowhash(k, r)];
    if (e < best) { best = e; }
    r = r + 1;
  }
  return best;
}

fn remove(k: u64) -> u64 {
  return 0; // sketches do not support deletion
}
|}

let countsketch_body = {|
// Count sketch: 4 rows x 2048 signed counters, sign hash per row.
global cs: [u64; 8192];

fn rowhash(k: u64, r: u64) -> u64 {
  var h: u64 = (k + (r + 1) * 0x9E3779B97F4A7C15) * 0xC2B2AE3D27D4EB4F;
  h = h ^ (h >> 31);
  return h;
}

fn update(k: u64, v: u64) -> u64 {
  var r: u64 = 0;
  while (r < 4) {
    var h: u64 = rowhash(k, r);
    var idx: u64 = (r * 2048) + (h & 2047);
    if (((h >> 13) & 1) == 1) { cs[idx] = cs[idx] + v; }
    else { cs[idx] = cs[idx] - v; }
    r = r + 1;
  }
  return 1;
}

// median of 4 signed estimates = (sum - min - max) / 2
fn lookup(k: u64) -> u64 {
  var sum: u64 = 0;
  var mn: u64 = 0x7FFFFFFFFFFFFFFF;
  var mx: u64 = 0x8000000000000000;
  var r: u64 = 0;
  while (r < 4) {
    var h: u64 = rowhash(k, r);
    var idx: u64 = (r * 2048) + (h & 2047);
    var e: u64 = cs[idx];
    if (((h >> 13) & 1) == 0) { e = 0 - e; }
    sum = sum + e;
    if (slt(e, mn) == 1) { mn = e; }
    if (sgt(e, mx) == 1) { mx = e; }
    r = r + 1;
  }
  return (sum - mn - mx) / 2;
}

fn remove(k: u64) -> u64 {
  return 0; // sketches do not support deletion
}
|}

let body = function
  | Hashmap -> hashmap_body
  | Linked_list -> linked_list_body
  | Rbtree -> rbtree_body
  | Skiplist -> skiplist_body
  | Countmin -> countmin_body
  | Countsketch -> countsketch_body

(* Driver protocol: payload u8 op @0 (0 update / 1 lookup / 2 delete),
   u64 key @1, u64 value @9. *)
let dispatch_entry = {|
fn prog(c: ctx) -> u64 {
  var op: u64 = pkt_read_u8(c, 0);
  var key: u64 = pkt_read_u64(c, 1);
  var val: u64 = pkt_read_u64(c, 9);
  if (op == 0) { return update(key, val); }
  if (op == 1) { return lookup(key); }
  return remove(key);
}
|}

let single_entry op =
  match op with
  | `Update -> {|
fn prog(c: ctx) -> u64 {
  return update(pkt_read_u64(c, 1), pkt_read_u64(c, 9));
}
|}
  | `Lookup -> {|
fn prog(c: ctx) -> u64 {
  return lookup(pkt_read_u64(c, 1));
}
|}
  | `Delete -> {|
fn prog(c: ctx) -> u64 {
  return remove(pkt_read_u64(c, 1));
}
|}

(* Chain-friendly entry: perform the dispatched operation but always
   return XDP_PASS (2), so several structures attached to one hook each see
   every event (the engine stops a chain at the first non-pass verdict). *)
let chain_entry = {|
fn prog(c: ctx) -> u64 {
  var op: u64 = pkt_read_u8(c, 0);
  var key: u64 = pkt_read_u64(c, 1);
  var val: u64 = pkt_read_u64(c, 9);
  var r: u64 = 0;
  if (op == 0) { r = update(key, val); }
  if (op == 1) { r = lookup(key); }
  if (op == 2) { r = remove(key); }
  return 2;
}
|}

let source kind = body kind ^ dispatch_entry
let op_source kind op = body kind ^ single_entry op
let chain_source kind = body kind ^ chain_entry

(* ---------------------------------------------------------------------- *)

type mode = M_kflex | M_perf | M_kmod | M_noelide

type instance = {
  kind : kind;
  compiled : Kflex_eclang.Compile.compiled;
  loaded : Kflex.loaded;
  heap : Kflex_runtime.Heap.t;
}

let options_of_mode = function
  | M_kflex -> Kflex_kie.Instrument.default_options
  | M_perf ->
      { Kflex_kie.Instrument.default_options with
        Kflex_kie.Instrument.performance_mode = true }
  | M_kmod ->
      { Kflex_kie.Instrument.default_options with
        Kflex_kie.Instrument.kmod_baseline = true }
  | M_noelide ->
      { Kflex_kie.Instrument.default_options with
        Kflex_kie.Instrument.no_elision = true }

let create ?(mode = M_kflex) ?(heap_bits = 24) ?(backend = `Interp) kind =
  Kflex_runtime.Vm.seed_prandom 0x9E3779B97F4A7C15L;
  let compiled = Kflex_eclang.Compile.compile_string ~name:(name kind) (source kind) in
  let kernel = Kflex_kernel.Helpers.create () in
  let heap =
    Kflex_runtime.Heap.create ~size:(Int64.shift_left 1L heap_bits) ()
  in
  match
    Kflex.load ~options:(options_of_mode mode) ~kernel ~heap
      ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
      ~backend ~hook:Kflex_kernel.Hook.Xdp compiled.Kflex_eclang.Compile.prog
  with
  | Ok loaded -> { kind; compiled; loaded; heap }
  | Error e ->
      Format.kasprintf failwith "datastruct %s rejected: %a" (name kind)
        Kflex_verifier.Verify.pp_error e

let op_packet ~op ~key ~value =
  let b = Bytes.make 17 '\000' in
  Bytes.set b 0 (Char.chr op);
  Bytes.set_int64_le b 1 key;
  Bytes.set_int64_le b 9 value;
  Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp ~src_port:1
    ~dst_port:9 b

let exec_op t ~op ~key ~value =
  let stats = Kflex_runtime.Vm.fresh_stats () in
  match Kflex.run_packet t.loaded ~stats (op_packet ~op ~key ~value) with
  | Kflex_runtime.Vm.Finished v -> (v, Kflex_runtime.Vm.total_cost stats)
  | Kflex_runtime.Vm.Cancelled _ ->
      Format.kasprintf failwith "datastruct %s op cancelled" (name t.kind)

let update t ~key ~value = exec_op t ~op:0 ~key ~value
let lookup t ~key = exec_op t ~op:1 ~key ~value:0L
let delete t ~key = exec_op t ~op:2 ~key ~value:0L
let loaded t = t.loaded
let kind t = t.kind
