(* End-to-end experiment cells (§5.1, §5.2, §5.3).

   Each cell drives the RFC 2544-style closed-loop model of
   {!Kflex_sim.Closed_loop} with per-request service times obtained by
   {e actually executing} the system under test: KFlex/BMC requests run the
   real instrumented bytecode in the VM (cost units -> ns via the cost
   model); user-space baselines charge the same application logic at native
   speed plus the transport-stack/syscall/context-switch path the kernel
   offload avoids. *)

open Kflex_kernel

type row = {
  system : string;
  throughput_mops : float;
  mean_us : float;
  p99_us : float;
}

type mc_req = { op : Memcached.op; rank : int }

let default_clients = 1024 (* 64 threads x 16 clients, §5 Testbed *)

let keyspace = 16384

let gen_mc ~seed ~get_frac ~n =
  let rng = Kflex_workload.Rng.create ~seed in
  let zipf = Kflex_workload.Zipf.create ~n:keyspace () in
  Array.init n (fun _ ->
      let op =
        if Kflex_workload.Rng.float rng < get_frac then Memcached.Get
        else Memcached.Set
      in
      { op; rank = Kflex_workload.Zipf.sample zipf rng })

let run_cell ?(clients = default_clients) ~workers ~requests ~gc ~service
    gen_arr =
  Kflex_sim.Closed_loop.run
    {
      Kflex_sim.Closed_loop.clients;
      workers;
      rtt_ns = 4000.0;
      requests;
      warmup_frac = 0.1;
      gen = (fun i -> gen_arr.(i));
      service_ns = service;
      gc;
    }

let row_of ~system (r : Kflex_sim.Closed_loop.result) =
  {
    system;
    throughput_mops = r.Kflex_sim.Closed_loop.throughput_mops;
    mean_us = r.Kflex_sim.Closed_loop.mean_us;
    p99_us = r.Kflex_sim.Closed_loop.p99_us;
  }

(* ---- Memcached (Figures 2, 3, 7) ---------------------------------------- *)

let preload_kflex_mc t =
  for rank = 0 to keyspace - 1 do
    ignore (Memcached.exec_kflex t (Memcached.op_packet ~op:Memcached.Set ~rank))
  done

let mc_kflex_cell ?(gc = None) ~workers ~requests ~get_frac () =
  let t = Memcached.create_kflex () in
  preload_kflex_mc t;
  let reqs = gen_mc ~seed:7L ~get_frac ~n:requests in
  let service (r : mc_req) =
    let pkt = Memcached.op_packet ~op:r.op ~rank:r.rank in
    let _, cost = Memcached.exec_kflex t pkt in
    Cost.xdp_service_ns ~compute_ns:(float_of_int cost *. Cost.insn_ns) ~reply:true
  in
  run_cell ~workers ~requests ~gc ~service reqs

let mc_user_cell ?(gc = None) ~workers ~requests ~get_frac () =
  (* the same logic at native speed, paying the full kernel path: measure
     the application compute on the uninstrumented (kernel-module-grade)
     twin and scale by the native advantage *)
  let t =
    Memcached.create_kflex
      ~mode:{ Kflex_kie.Instrument.default_options with
              Kflex_kie.Instrument.kmod_baseline = true }
      ()
  in
  preload_kflex_mc t;
  let reqs = gen_mc ~seed:7L ~get_frac ~n:requests in
  let service (r : mc_req) =
    let pkt = Memcached.op_packet ~op:r.op ~rank:r.rank in
    let _, cost = Memcached.exec_kflex t pkt in
    let compute_ns = float_of_int cost *. Cost.insn_ns /. Cost.native_speedup in
    let proto_tcp = r.op = Memcached.Set in
    Cost.user_service_ns ~proto_tcp ~compute_ns
  in
  run_cell ~workers ~requests ~gc ~service reqs

let mc_bmc_cell ~workers ~requests ~get_frac () =
  let t = Memcached.create_bmc ~cache_entries:keyspace () in
  for rank = 0 to keyspace - 1 do
    ignore (Memcached.exec_bmc t ~op:Memcached.Set ~rank)
  done;
  (* user-space compute baseline for the PASS path *)
  let tw =
    Memcached.create_kflex
      ~mode:{ Kflex_kie.Instrument.default_options with
              Kflex_kie.Instrument.kmod_baseline = true }
      ()
  in
  preload_kflex_mc tw;
  let reqs = gen_mc ~seed:7L ~get_frac ~n:requests in
  let service (r : mc_req) =
    match Memcached.exec_bmc t ~op:r.op ~rank:r.rank with
    | `Hit cost ->
        Cost.xdp_service_ns ~compute_ns:(float_of_int cost *. Cost.insn_ns)
          ~reply:true
    | `Pass cost ->
        (* XDP work, then the full user-space path for the same request *)
        let pkt = Memcached.op_packet ~op:r.op ~rank:r.rank in
        let _, app_cost = Memcached.exec_kflex tw pkt in
        let compute_ns =
          float_of_int app_cost *. Cost.insn_ns /. Cost.native_speedup
        in
        let proto_tcp = r.op = Memcached.Set in
        (float_of_int cost *. Cost.insn_ns)
        +. Cost.user_service_ns ~proto_tcp ~compute_ns
  in
  run_cell ~workers ~requests ~gc:None ~service reqs

let fig_memcached ~workers ~requests () =
  List.map
    (fun (label, get_frac) ->
      ( label,
        [
          row_of ~system:"User space" (mc_user_cell ~workers ~requests ~get_frac ());
          row_of ~system:"BMC" (mc_bmc_cell ~workers ~requests ~get_frac ());
          row_of ~system:"KFlex" (mc_kflex_cell ~workers ~requests ~get_frac ());
        ] ))
    [ ("90:10", 0.9); ("50:50", 0.5); ("10:90", 0.1) ]

(* Figure 7: co-designed Memcached with a user-space GC thread waking
   periodically and contending on the shared hash table (§5.3). The paper's
   GC runs every 1 s of a 30 s run; our simulated runs cover tens of
   milliseconds, so the period is scaled to keep the same duty cycle. *)
let fig_codesign ~workers ~requests () =
  let gc = Some (2_000_000.0, 150_000.0) in
  List.map
    (fun (label, get_frac) ->
      ( label,
        [
          row_of ~system:"User space"
            (mc_user_cell ~gc ~workers ~requests ~get_frac ());
          row_of ~system:"KFlex" (mc_kflex_cell ~gc ~workers ~requests ~get_frac ());
        ] ))
    [ ("90:10", 0.9); ("50:50", 0.5); ("10:90", 0.1) ]

(* ---- Redis (Figures 4 and 6) -------------------------------------------- *)

type redis_req = { rop : Redis.op; rrank : int }

let gen_redis ~seed ~get_frac ~n =
  let rng = Kflex_workload.Rng.create ~seed in
  let zipf = Kflex_workload.Zipf.create ~n:keyspace () in
  Array.init n (fun _ ->
      let rop =
        if Kflex_workload.Rng.float rng < get_frac then Redis.Get else Redis.Set
      in
      { rop; rrank = Kflex_workload.Zipf.sample zipf rng })

let preload_redis t =
  for rank = 0 to keyspace - 1 do
    ignore (Redis.exec t (Redis.op_packet ~op:Redis.Set ~rank))
  done

let redis_kflex_cell ?(mode = Kflex_kie.Instrument.default_options) ~workers
    ~requests ~get_frac () =
  let t = Redis.create ~mode () in
  preload_redis t;
  let reqs = gen_redis ~seed:11L ~get_frac ~n:requests in
  let service (r : redis_req) =
    let pkt = Redis.op_packet ~op:r.rop ~rank:r.rrank in
    let _, cost = Redis.exec t pkt in
    Cost.skb_service_ns ~proto_tcp:true
      ~compute_ns:(float_of_int cost *. Cost.insn_ns)
  in
  run_cell ~workers ~requests ~gc:None ~service reqs

let redis_user_cell ~workers ~requests ~get_frac () =
  let t =
    Redis.create
      ~mode:{ Kflex_kie.Instrument.default_options with
              Kflex_kie.Instrument.kmod_baseline = true }
      ()
  in
  preload_redis t;
  let reqs = gen_redis ~seed:11L ~get_frac ~n:requests in
  let service (r : redis_req) =
    let pkt = Redis.op_packet ~op:r.rop ~rank:r.rrank in
    let _, cost = Redis.exec t pkt in
    Cost.user_service_ns ~proto_tcp:true
      ~compute_ns:(float_of_int cost *. Cost.insn_ns /. Cost.native_speedup)
  in
  run_cell ~workers ~requests ~gc:None ~service reqs

let fig_redis ~workers ~requests () =
  List.map
    (fun (label, get_frac) ->
      ( label,
        [
          row_of ~system:"User space"
            (redis_user_cell ~workers ~requests ~get_frac ());
          row_of ~system:"KFlex" (redis_kflex_cell ~workers ~requests ~get_frac ());
        ] ))
    [ ("90:10", 0.9); ("50:50", 0.5); ("10:90", 0.1) ]

(* Figure 6: ZADD only, single server thread (Redis' global-lock design). *)
let fig_zadd ~requests () =
  let zsets = 64 in
  let gen_zadd ~seed ~n =
    let rng = Kflex_workload.Rng.create ~seed in
    let zipf = Kflex_workload.Zipf.create ~n:zsets () in
    Array.init n (fun _ ->
        let rank = Kflex_workload.Zipf.sample zipf rng in
        let score = Int64.of_int (Kflex_workload.Rng.int rng 100000) in
        let member = Kflex_workload.Rng.next rng in
        { rop = Redis.Zadd (score, member); rrank = rank })
  in
  let kflex =
    let t = Redis.create () in
    let reqs = gen_zadd ~seed:13L ~n:requests in
    let service (r : redis_req) =
      let pkt = Redis.op_packet ~op:r.rop ~rank:r.rrank in
      let _, cost = Redis.exec t pkt in
      Cost.skb_service_ns ~proto_tcp:true
        ~compute_ns:(float_of_int cost *. Cost.insn_ns)
    in
    run_cell ~clients:64 ~workers:1 ~requests ~gc:None ~service reqs
  in
  let user =
    let t =
      Redis.create
        ~mode:{ Kflex_kie.Instrument.default_options with
                Kflex_kie.Instrument.kmod_baseline = true }
        ()
    in
    let reqs = gen_zadd ~seed:13L ~n:requests in
    let service (r : redis_req) =
      let pkt = Redis.op_packet ~op:r.rop ~rank:r.rrank in
      let _, cost = Redis.exec t pkt in
      Cost.user_service_ns ~proto_tcp:true
        ~compute_ns:(float_of_int cost *. Cost.insn_ns /. Cost.native_speedup)
    in
    run_cell ~clients:64 ~workers:1 ~requests ~gc:None ~service reqs
  in
  [ row_of ~system:"Redis (user space)" user; row_of ~system:"KFlex" kflex ]

let pp_rows ppf (label, rows) =
  Format.fprintf ppf "@[<v>  %s:@," label;
  List.iter
    (fun r ->
      Format.fprintf ppf "    %-22s %6.3f MOps/s   p99 %8.1f us@," r.system
        r.throughput_mops r.p99_us)
    rows;
  Format.fprintf ppf "@]"
