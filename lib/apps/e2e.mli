(** End-to-end experiment cells (§5.1–§5.3).

    Each cell drives the closed-loop testbed model with per-request service
    times obtained by {e actually executing} the system under test: KFlex
    and BMC requests run the real instrumented bytecode (cost units →
    nanoseconds through {!Kflex_kernel.Cost}); user-space baselines charge
    the same application logic at native speed plus the
    transport/wake-up/syscall path the kernel offload avoids. *)

type row = {
  system : string;
  throughput_mops : float;
  mean_us : float;
  p99_us : float;
}

val keyspace : int
(** Keys in the preloaded store (Zipf s = 0.99 over them). *)

val fig_memcached : workers:int -> requests:int -> unit -> (string * row list) list
(** Figures 2 (workers = 8) and 3 (workers = 16): one labelled cell per
    GET:SET ratio, each with user-space / BMC / KFlex rows. *)

val fig_redis : workers:int -> requests:int -> unit -> (string * row list) list
(** Figure 4. *)

val fig_zadd : requests:int -> unit -> row list
(** Figure 6: ZADD-only, one server thread. *)

val fig_codesign : workers:int -> requests:int -> unit -> (string * row list) list
(** Figure 7: Figure 2's Memcached cells with a periodic user-space GC
    contending per worker (period scaled to the simulated timescale). *)

val pp_rows : Format.formatter -> string * row list -> unit
