(* KFlex-Redis (§5.1–§5.2): GET/SET over a hash table plus ZADD over a
   hashmap-of-skiplists, attached at the sk_skb hook because all Redis
   traffic is TCP.

   ZADD is the paper's flexibility showcase: it allocates a {e new skiplist}
   in the fast path when a sorted-set key first appears — infeasible in
   plain eBPF, natural with the KFlex allocator.

   Wire protocol (payload):
     u8  op       @0    0 = GET, 1 = SET, 2 = ZADD
     u64 k0..k3   @1    32-byte key (string key / sorted-set name)
     u64 v0..v3   @33   value (SET) / reply buffer (GET)
     u64 score    @33   (ZADD)
     u64 member   @41   (ZADD)
     u8  hit      @65   reply flag *)

open Kflex_kernel

let source = {|
struct zsknode {       // skiplist node ordered by score
  score: u64; member: u64; level: u64;
  fwd: [ptr<zsknode>; 12];
}
struct zset {
  head: ptr<zsknode>;  // sentinel
  level: u64;
  len: u64;
}
struct entry {
  k0: u64; k1: u64; k2: u64; k3: u64;
  v0: u64; v1: u64; v2: u64; v3: u64;
  zs: ptr<zset>;       // non-null when this key is a sorted set
  next: ptr<entry>;
}
global buckets: [ptr<entry>; 4096];
global lock: u64;
global upd: [u64; 12];

fn hash(k0: u64, k1: u64, k2: u64, k3: u64) -> u64 {
  // byte-at-a-time, as Redis' SipHash-based dict hashing walks key bytes
  var h: u64 = 0xcbf29ce484222325;
  var i: u64 = 0;
  while (i < 8) {
    h = (h ^ ((k0 >> (i * 8)) & 255)) * 1099511628211;
    h = (h ^ ((k1 >> (i * 8)) & 255)) * 1099511628211;
    h = (h ^ ((k2 >> (i * 8)) & 255)) * 1099511628211;
    h = (h ^ ((k3 >> (i * 8)) & 255)) * 1099511628211;
    i = i + 1;
  }
  return (h ^ (h >> 29)) & 4095;
}

fn find(k0: u64, k1: u64, k2: u64, k3: u64) -> u64 {
  var e: ptr<entry> = buckets[hash(k0, k1, k2, k3)];
  while (e != null) {
    if (e.k0 == k0 && e.k1 == k1 && e.k2 == k2 && e.k3 == k3) { return e; }
    e = e.next;
  }
  return 0;
}

fn insert_entry(k0: u64, k1: u64, k2: u64, k3: u64) -> u64 {
  var b: u64 = hash(k0, k1, k2, k3);
  var n: ptr<entry> = new entry;
  if (n == null) { return 0; }
  n.k0 = k0; n.k1 = k1; n.k2 = k2; n.k3 = k3;
  n.next = buckets[b];
  buckets[b] = n;
  return n;
}

fn randlevel() -> u64 {
  var l: u64 = 1;
  while (l < 12 && (bpf_get_prandom_u32() & 3) == 0) { l = l + 1; }
  return l;
}

// add (score, member) to z; update score if the member exists (linear probe
// on equal scores, as Redis does within score ranges)
fn zadd(z: ptr<zset>, score: u64, member: u64) -> u64 {
  var x: ptr<zsknode> = z.head;
  var i: u64 = z.level;
  while (i > 0) {
    var nx: ptr<zsknode> = x.fwd[i - 1];
    while (nx != null && nx.score < score) { x = nx; nx = x.fwd[i - 1]; }
    upd[i - 1] = x;
    i = i - 1;
  }
  // check for an existing member at this score
  var c: ptr<zsknode> = x.fwd[0];
  while (c != null && c.score == score) {
    if (c.member == member) { return 1; }
    c = c.fwd[0];
  }
  var lvl: u64 = randlevel();
  if (lvl > z.level) {
    i = z.level;
    while (i < lvl) { upd[i] = z.head; i = i + 1; }
    z.level = lvl;
  }
  var n: ptr<zsknode> = new zsknode;
  if (n == null) { return 0; }
  n.score = score; n.member = member; n.level = lvl;
  i = 0;
  while (i < lvl) {
    var p: ptr<zsknode> = upd[i];
    n.fwd[i] = p.fwd[i];
    p.fwd[i] = n;
    i = i + 1;
  }
  z.len = z.len + 1;
  return 1;
}

fn prog(c: ctx) -> u64 {
  var op: u64 = pkt_read_u8(c, 0);
  var k0: u64 = pkt_read_u64(c, 1);
  var k1: u64 = pkt_read_u64(c, 9);
  var k2: u64 = pkt_read_u64(c, 17);
  var k3: u64 = pkt_read_u64(c, 25);

  var h: u64 = kflex_spin_lock(&lock);
  var e: ptr<entry> = find(k0, k1, k2, k3);

  if (op == 0) {          // GET
    if (e == null) {
      kflex_spin_unlock(h);
      pkt_write_u8(c, 65, 0);
      return 0;
    }
    var v0: u64 = e.v0; var v1: u64 = e.v1;
    var v2: u64 = e.v2; var v3: u64 = e.v3;
    kflex_spin_unlock(h);
    pkt_write_u64(c, 33, v0);
    pkt_write_u64(c, 41, v1);
    pkt_write_u64(c, 49, v2);
    pkt_write_u64(c, 57, v3);
    pkt_write_u8(c, 65, 1);
    return 0;
  }

  if (op == 1) {          // SET
    if (e == null) {
      e = insert_entry(k0, k1, k2, k3);
      if (e == null) {
        kflex_spin_unlock(h);
        pkt_write_u8(c, 65, 0);
        return 0;
      }
    }
    e.v0 = pkt_read_u64(c, 33);
    e.v1 = pkt_read_u64(c, 41);
    e.v2 = pkt_read_u64(c, 49);
    e.v3 = pkt_read_u64(c, 57);
    kflex_spin_unlock(h);
    pkt_write_u8(c, 65, 1);
    return 0;
  }

  // ZADD: allocate the sorted set on demand in the fast path
  if (e == null) {
    e = insert_entry(k0, k1, k2, k3);
    if (e == null) {
      kflex_spin_unlock(h);
      pkt_write_u8(c, 65, 0);
      return 0;
    }
  }
  if (e.zs == null) {
    var z: ptr<zset> = new zset;
    if (z == null) {
      kflex_spin_unlock(h);
      pkt_write_u8(c, 65, 0);
      return 0;
    }
    var sent: ptr<zsknode> = new zsknode;
    if (sent == null) {
      kflex_spin_unlock(h);
      pkt_write_u8(c, 65, 0);
      return 0;
    }
    sent.level = 12;
    z.head = sent;
    z.level = 1;
    e.zs = z;
  }
  var ok: u64 = zadd(e.zs, pkt_read_u64(c, 33), pkt_read_u64(c, 41));
  kflex_spin_unlock(h);
  pkt_write_u8(c, 65, ok);
  return 0;
}
|}

type op = Get | Set | Zadd of int64 * int64

let op_packet ~op ~rank =
  let b = Bytes.make 66 '\000' in
  let kw = Memcached.key_words rank in
  Array.iteri (fun i w -> Bytes.set_int64_le b (1 + (8 * i)) w) kw;
  (match op with
  | Get -> Bytes.set b 0 '\000'
  | Set ->
      Bytes.set b 0 '\001';
      Array.iteri
        (fun i w -> Bytes.set_int64_le b (33 + (8 * i)) w)
        (Memcached.value_words rank)
  | Zadd (score, member) ->
      Bytes.set b 0 '\002';
      Bytes.set_int64_le b 33 score;
      Bytes.set_int64_le b 41 member);
  Packet.make ~proto:Packet.Tcp ~src_port:40000 ~dst_port:6379 b

type t = {
  loaded : Kflex.loaded;
  compiled : Kflex_eclang.Compile.compiled;
  heap : Kflex_runtime.Heap.t;
}

let create ?(mode = Kflex_kie.Instrument.default_options) ?(heap_bits = 26) () =
  let compiled = Kflex_eclang.Compile.compile_string ~name:"kflex_redis" source in
  let kernel = Helpers.create () in
  Socket.listen (Helpers.sockets kernel) ~proto:Packet.Tcp ~port:6379;
  let heap = Kflex_runtime.Heap.create ~size:(Int64.shift_left 1L heap_bits) () in
  match
    Kflex.load ~options:mode ~kernel ~heap
      ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
      ~hook:Hook.Sk_skb compiled.Kflex_eclang.Compile.prog
  with
  | Ok loaded -> { loaded; compiled; heap }
  | Error e ->
      Format.kasprintf failwith "kflex-redis rejected: %a"
        Kflex_verifier.Verify.pp_error e

let exec t pkt =
  let stats = Kflex_runtime.Vm.fresh_stats () in
  match Kflex.run_packet t.loaded ~stats pkt with
  | Kflex_runtime.Vm.Finished _ ->
      let hit = Packet.read pkt ~width:1 65 in
      (hit, Kflex_runtime.Vm.total_cost stats)
  | Kflex_runtime.Vm.Cancelled _ -> failwith "kflex-redis cancelled"

(* User-space baseline (KeyDB-like: the same logic, native): GET/SET on a
   hash table, ZADD on a sorted-set map. *)
module User = struct
  type zset = (int64, int64 list) Hashtbl.t (* score -> members *)

  type t = {
    tbl : (string, string) Hashtbl.t;
    zsets : (string, zset) Hashtbl.t;
  }

  let create () = { tbl = Hashtbl.create 4096; zsets = Hashtbl.create 64 }

  let set t ~rank =
    Hashtbl.replace t.tbl (Memcached.User.key_of_rank rank) "v"

  let get t ~rank = Hashtbl.find_opt t.tbl (Memcached.User.key_of_rank rank)

  let zadd t ~rank ~score ~member =
    let key = Memcached.User.key_of_rank rank in
    let zs =
      match Hashtbl.find_opt t.zsets key with
      | Some z -> z
      | None ->
          let z = Hashtbl.create 64 in
          Hashtbl.replace t.zsets key z;
          z
    in
    let members =
      match Hashtbl.find_opt zs score with Some m -> m | None -> []
    in
    if not (List.mem member members) then
      Hashtbl.replace zs score (member :: members)

  let zcard t ~rank =
    match Hashtbl.find_opt t.zsets (Memcached.User.key_of_rank rank) with
    | Some z -> Hashtbl.fold (fun _ m acc -> acc + List.length m) z 0
    | None -> 0
end
