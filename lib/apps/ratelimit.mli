(** Cross-shard guard tenants over engine-shared maps.

    Two extensions meant to run ahead of a cache tenant in an engine
    chain, exercising both shared-map disciplines end to end:

    - {!bucket_source}: a token-bucket rate limiter whose buckets live as
      values in the engine-shared Spinlock map (fd 3). The whole
      read-refill-spend runs inside one [bpf_map_lock] critical section,
      so concurrent shards never lose or double-spend a token. Buckets
      refill on fixed windows of [window_ns] (the window id and the spend
      are packed into the one value word); a full bucket table fails open.
    - {!conntrack_source}: a connection tracker over the engine-shared
      Rcu_shared map (fd 4). Read-mostly by construction: a known flow
      costs one wait-free snapshot lookup, and only a flow's first packet
      publishes a write.

    Both key on the request key word at payload offset 1, where every
    wire packet encoder places the start of the key, so they compose with
    the serve front end's Memcached/Redis streams unchanged. *)

val bucket_classes : int
(** Bucket key classes (the Spinlock map needs [>= bucket_classes]
    entries). *)

val conntrack_slots : int
(** Flow slots (the Rcu_shared map needs [>= conntrack_slots] entries). *)

val bucket_source : pass:int64 -> drop:int64 -> capacity:int -> window_ns:int64 -> string
(** Eclang source for the rate limiter. [pass] must be the hook's
    fall-through verdict so admitted requests reach the tenants behind
    it; [drop] any terminal verdict. *)

val conntrack_source : pass:int64 -> drop:int64 -> string
(** Eclang source for the tracker; drops only when the flow table is
    full. *)

val make_maps : shards:int -> Kflex_kernel.Map.t * Kflex_kernel.Map.t
(** [(spinlock buckets, rcu flow table)] sized for the sources above,
    ready for [Engine.share_map] in that order (fd 3, then fd 4). *)

val guard_packet :
  ?proto:Kflex_kernel.Packet.proto ->
  ?src_port:int ->
  int64 ->
  Kflex_kernel.Packet.t
(** A minimal request packet carrying its key word at payload offset 1 —
    what the guards key on. *)

(** {2 Reference model} *)

type model
(** The bucket decision sequentially per key class — the linearizable
    behaviour the spin-locked map must reproduce under any shard count. *)

val model : unit -> model

val model_admit :
  model -> capacity:int -> window_ns:int64 -> now_ns:int64 -> int64 -> bool
(** Mirrors the extension exactly: same key classing, window packing and
    fail-open; [true] = admitted. *)
