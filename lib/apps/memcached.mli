(** The three Memcached deployments of §5.1.

    - {b KFlex-Memcached}: both GETs and SETs offloaded to a single
      extension at the XDP hook, with a hash table over the extension heap
      and allocation on demand — the full offload the paper demonstrates.
    - {b BMC}: the plain-eBPF look-aside cache baseline (GET hits answered
      from a pre-allocated map at XDP; GET misses and all SETs pass to user
      space, SETs invalidating the cache) — it cannot offload SETs because
      stock eBPF has no dynamic allocation.
    - {b User space}: a native hash-table server behind the full kernel
      receive path.

    Wire protocol (payload): u8 op @0 (0 = GET, 1 = SET), 32-byte key @1,
    32-byte value @33 (SET request / GET reply), u8 hit flag @65. GETs run
    over UDP, SETs over TCP, as in Memcached. *)

val kflex_source : string
(** The KFlex-Memcached extension (eclang), with FNV-1a byte-wise key
    hashing as Memcached does. *)

val bmc_source : string
(** The BMC extension (eclang compiled in eBPF mode: no heap, no loops —
    the key hash is fully unrolled, as BMC predates bounded loops). *)

(** {2 Key/value material} *)

val key_words : int -> int64 array
(** The 4 words of the 32-byte key for a popularity rank (deterministic). *)

val value_words : int -> int64 array

val digest : int64 array -> int64
(** The key digest used to index the BMC cache; mirrors the in-extension
    hash exactly (the egress-path fill must agree with the XDP lookup). *)

type op = Get | Set

val op_packet : op:op -> rank:int -> Kflex_kernel.Packet.t

(** {2 User-space baseline} *)

module User : sig
  type t

  val create : unit -> t
  val key_of_rank : int -> string
  val set : t -> rank:int -> unit
  val get : t -> rank:int -> string option
end

(** {2 KFlex deployment} *)

type kflex_t = {
  loaded : Kflex.loaded;
  compiled : Kflex_eclang.Compile.compiled;
  heap : Kflex_runtime.Heap.t;
}

val create_kflex :
  ?mode:Kflex_kie.Instrument.options -> ?heap_bits:int -> unit -> kflex_t

val exec_kflex : kflex_t -> Kflex_kernel.Packet.t -> int64 * int
(** One request through the extension; (XDP action, cost units).
    @raise Failure on cancellation. *)

(** {2 BMC deployment} *)

type bmc_t = {
  loaded : Kflex.loaded;
  cache : Kflex_kernel.Map.t;
  backing : User.t;
}

val create_bmc : ?cache_entries:int -> unit -> bmc_t

val exec_bmc : bmc_t -> op:op -> rank:int -> [ `Hit of int | `Pass of int ]
(** One request: [`Hit] = served at XDP; [`Pass] = fell through to the
    user-space Memcached (which also refills the cache on GET misses, as
    BMC's egress path does). The payload is the XDP cost in units. *)
