(* Cross-shard guard tenants over engine-shared maps.

   Two small extensions meant to run {e ahead} of a cache tenant in an
   engine chain, exercising both shared-map disciplines end to end:

   - a token-bucket rate limiter whose buckets are values in the shared
     Spinlock map (fd 3): the whole read-refill-spend runs inside one
     [bpf_map_lock] critical section, so concurrent shards never lose or
     double-spend a token;
   - a connection tracker over the shared Rcu_shared map (fd 4):
     read-mostly — a known flow is one wait-free snapshot lookup; only the
     first packet of a flow publishes a write.

   Both key on the request key word at payload offset 1, where every wire
   packet encoder ([Wire.packet_of_op], [Memcached.op_packet]) places the
   start of the key. *)

let bucket_classes = 64
let conntrack_slots = 4096

(* Fixed-window token bucket. The bucket value packs the refill window id
   (upper 32 bits) with the tokens spent in it (lower 32): a packet in a
   fresh window resets the spend, one past [capacity] in the same window
   drops. A full bucket table fails open — guards must not turn allocator
   pressure into an outage. *)
let bucket_source ~pass ~drop ~capacity ~window_ns =
  Printf.sprintf
    {|
fn prog(c: ctx) -> u64 {
  var kbuf: bytes[8];
  var vbuf: bytes[8];
  st64(&kbuf, 0, pkt_read_u64(c, 1) & %d);

  var h: u64 = bpf_map_lock(3, &kbuf);
  if (h == 0) { return %Ld; }

  var win: u64 = (bpf_ktime_get_ns() / %Ld) & 0xFFFFFFFF;
  var used: u64 = 0;
  if (bpf_map_lookup(3, &kbuf, &vbuf) == 1) {
    var v: u64 = ld64(&vbuf, 0);
    if ((v >> 32) == win) { used = v & 0xFFFFFFFF; }
  }

  if (used >= %d) {
    bpf_map_unlock(h);
    return %Ld;
  }

  st64(&vbuf, 0, (win << 32) | (used + 1));
  bpf_map_update(3, &kbuf, &vbuf);
  bpf_map_unlock(h);
  return %Ld;
}
|}
    (bucket_classes - 1) pass window_ns capacity drop pass

let conntrack_source ~pass ~drop =
  Printf.sprintf
    {|
fn prog(c: ctx) -> u64 {
  var kbuf: bytes[8];
  var vbuf: bytes[8];
  st64(&kbuf, 0, pkt_read_u64(c, 1) & %d);
  if (bpf_map_lookup(4, &kbuf, &vbuf) == 1) {
    return %Ld;
  }
  st64(&vbuf, 0, 1);
  if (bpf_map_update(4, &kbuf, &vbuf) == 0) { return %Ld; }
  return %Ld;
}
|}
    (conntrack_slots - 1) pass drop pass

let make_maps ~shards =
  ( Kflex_kernel.Map.create ~kind:Kflex_kernel.Map.Spinlock
      ~max_entries:bucket_classes (),
    Kflex_kernel.Map.create ~kind:Kflex_kernel.Map.Rcu_shared ~cpus:shards
      ~max_entries:conntrack_slots () )

(* request packets the guards key on: the key word at payload offset 1 *)
let guard_packet ?(proto = Kflex_kernel.Packet.Udp) ?(src_port = 40000) key =
  let b = Bytes.make 17 '\000' in
  Bytes.set_int64_le b 1 key;
  Kflex_kernel.Packet.make ~proto ~src_port ~dst_port:11211 b

(* --- reference model ------------------------------------------------------ *)

(* The bucket decision, sequentially per key class — the linearizable
   behaviour the spin-locked map must reproduce under any shard count.
   [admit] mirrors the extension: same window packing, same fail-open. *)
type model = { mutable slots : (int64 * (int64 * int)) list }

let model () = { slots = [] }

let model_admit m ~capacity ~window_ns ~now_ns key =
  let cls = Int64.logand key (Int64.of_int (bucket_classes - 1)) in
  let win = Int64.logand (Int64.div now_ns window_ns) 0xFFFFFFFFL in
  let used =
    match List.assoc_opt cls m.slots with
    | Some (w, u) when w = win -> u
    | _ -> 0
  in
  if used >= capacity then false
  else begin
    m.slots <- (cls, (win, used + 1)) :: List.remove_assoc cls m.slots;
    true
  end
