(* Co-designing extensions with user-space code (§5.3): the Memcached fast
   path runs in the kernel against a heap {e shared} with the application;
   a user-space garbage-collector thread wakes periodically and walks the
   same hash table through the user mapping — following the
   translate-on-store pointers directly, no system calls — removing expired
   entries under the shared spin lock with a time-slice extension. *)

open Kflex_runtime

type t = {
  mc : Memcached.kflex_t;
  umap : Usermap.t;
  slice : Timeslice.t;
  lock_off : int64;
  buckets_off : int64;
  entry_next_off : int;
  entry_v0_off : int;
}

let create ?(heap_bits = 26) () =
  let compiled =
    Kflex_eclang.Compile.compile_string ~name:"kflex_memcached"
      Memcached.kflex_source
  in
  let kernel = Kflex_kernel.Helpers.create () in
  Kflex_kernel.Socket.listen
    (Kflex_kernel.Helpers.sockets kernel)
    ~proto:Kflex_kernel.Packet.Udp ~port:11211;
  let heap =
    Heap.create ~shared:true ~size:(Int64.shift_left 1L heap_bits) ()
  in
  let loaded =
    match
      Kflex.load ~kernel ~heap
        ~globals_size:
          compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
        ~hook:Kflex_kernel.Hook.Xdp compiled.Kflex_eclang.Compile.prog
    with
    | Ok l -> l
    | Error e ->
        Format.kasprintf failwith "codesign rejected: %a"
          Kflex_verifier.Verify.pp_error e
  in
  let mc = { Memcached.loaded; compiled; heap } in
  let noff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"entry" "next" in
  let voff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"entry" "v0" in
  {
    mc;
    umap = Usermap.attach heap;
    slice = Timeslice.create ();
    lock_off = Kflex_eclang.Compile.global_offset compiled "lock";
    buckets_off = Kflex_eclang.Compile.global_offset compiled "buckets";
    entry_next_off = noff;
    entry_v0_off = voff;
  }

let memcached t = t.mc

let exec t pkt = Memcached.exec_kflex t.mc pkt

(* One GC pass from user space: walk every bucket chain through the shared
   mapping (following user-translated pointers), counting entries and
   reclaiming those whose [v0] matches [expired] (the expiry test stands in
   for Memcached's TTL check). Returns (entries seen, entries reclaimed).
   Runs under the shared lock with a time-slice extension. *)
let gc_pass ?(expired = fun _ -> false) t ~now =
  if not (Usermap.try_lock t.umap ~off:t.lock_off ~slice:t.slice ~now) then
    None
  else begin
    let seen = ref 0 and freed = ref 0 in
    for b = 0 to 4095 do
      let slot_off = Int64.add t.buckets_off (Int64.of_int (8 * b)) in
      let rec walk prev_off addr =
        if addr <> 0L then begin
          incr seen;
          if not (Usermap.is_heap_addr t.umap addr) then
            failwith "gc: pointer escaped the shared mapping"
          else begin
            let v0 =
              Usermap.read t.umap ~width:8
                (Int64.add addr (Int64.of_int t.entry_v0_off))
            in
            let next =
              Usermap.read t.umap ~width:8
                (Int64.add addr (Int64.of_int t.entry_next_off))
            in
            if expired v0 then begin
              (* unlink: previous link keeps the user-view form *)
              Heap.write_off (Usermap.heap t.umap) ~width:8 prev_off next;
              incr freed;
              walk prev_off next
            end
            else
              walk
                (match Heap.offset_of_addr (Usermap.heap t.umap) addr with
                | Some off -> Int64.add off (Int64.of_int t.entry_next_off)
                | None -> assert false)
                next
          end
        end
      in
      walk slot_off (Heap.read_off (Usermap.heap t.umap) ~width:8 slot_off)
    done;
    Usermap.unlock t.umap ~off:t.lock_off ~slice:t.slice;
    Some (!seen, !freed)
  end
