(** Co-designing extensions with user-space code (§3.4, §5.3).

    The Memcached fast path runs in the kernel against a heap {e shared}
    with the application; a user-space garbage collector walks the same
    hash table through the user mapping — following the translate-on-store
    pointers directly, no system calls — and unlinks expired entries under
    the shared spin lock with a time-slice extension. *)

type t

val create : ?heap_bits:int -> unit -> t
(** Load KFlex-Memcached over a {e shared} heap (translate-on-store
    enabled) and attach the user mapping. *)

val memcached : t -> Memcached.kflex_t

val exec : t -> Kflex_kernel.Packet.t -> int64 * int
(** Kernel fast path: one request through the extension. *)

val gc_pass :
  ?expired:(int64 -> bool) -> t -> now:float -> (int * int) option
(** One user-space GC cycle: takes the shared lock (extending the thread's
    time slice), walks every bucket chain through user-view pointers,
    unlinks entries whose first value word satisfies [expired] (the stand-in
    for Memcached's TTL check), releases the lock. Returns
    [(entries seen, entries reclaimed)], or [None] when the lock was busy.
    @raise Failure if a chain pointer escapes the shared mapping (heap
    corruption — never caused by the extension). *)
