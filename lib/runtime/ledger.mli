(** Dynamic ledger of kernel objects held by a running extension invocation.

    The KFlex design point is that the runtime does {e not} need such
    dynamic tracking — object tables are computed statically (§3.3). The
    ledger exists because our helpers must actually manage reference counts,
    and because tests use it as ground truth: after a cancellation unwinds
    via the static object table, the ledger must be empty, which is exactly
    the property the paper's static computation guarantees. *)

type t

val create : unit -> t

val acquire : t -> handle:int64 -> destructor:string -> unit

val release : t -> handle:int64 -> bool
(** [false] if the handle was not held. *)

val held : t -> (int64 * string) list
(** Currently held (handle, destructor) pairs. *)

val count : t -> int

val clear : t -> unit
(** Drop every held entry — used when an execution context is recycled for
    the next invocation. *)
