(** The KFlex runtime's execution engine (§3, step 3).

    Interprets an instrumented program while enforcing the two runtime
    halves of extension correctness:

    - {b memory safety}: [Guard] instructions sanitise heap addresses
      (mask + base, one unit of cost, §4.2); accesses that land in guard
      zones or on unpopulated pages raise faults;
    - {b safe termination}: when an invocation exceeds its quantum (or a
      sibling CPU already cancelled the extension), the next [Checkpoint] —
      the [*terminate] heap access — faults; the runtime catches the fault,
      walks the cancellation point's static object table, invokes each
      destructor on the value found at the recorded register/stack-slot
      location, and returns the hook's default code (§3.3, §4.3).

    Execution is cost-accounted: every instruction (including each [Guard])
    costs one unit, and helpers add their declared cost. Benchmarks convert
    units to time through the kernel cost model. *)

type fault_reason =
  | Page_fault  (** heap access to an unpopulated page (C2) *)
  | Guard_zone  (** displacement carried the access past the heap edge *)
  | Wild_access  (** unguarded address outside every region *)
  | Quantum_expired  (** watchdog-initiated cancellation at a C1 point *)
  | Lock_stall  (** spin lock unobtainable within the quantum *)
  | Ext_cancelled  (** another CPU cancelled this extension (§4.3) *)

type stats = {
  mutable insns : int;  (** instructions retired, guards included *)
  mutable guards : int;
  mutable checkpoints : int;
  mutable helper_calls : int;
  mutable helper_cost : int;  (** extra cost units charged by helpers *)
}

val fresh_stats : unit -> stats

val total_cost : stats -> int
(** [insns + helper_cost]. *)

type outcome =
  | Finished of int64
  | Cancelled of {
      orig_pc : int;  (** pre-instrumentation pc of the cancellation point *)
      reason : fault_reason;
      released : (string * string) list;  (** (class, destructor) per object
          released by object-table unwinding *)
      ret : int64;  (** the default (or callback-adjusted) return code *)
      ledger_leaked : int;  (** objects the static table failed to release —
          always 0; tests assert this invariant *)
    }

(** Environment a helper executes in. *)
type call_ctx = Machine.call_ctx = {
  args : U64.bank;
      (** six unboxed slots: 0–4 carry r1–r5, slot 5 is the return value —
          read them through {!arg} and write results through {!set_ret} *)
  mutable cpu : int;
  heap : Heap.t option;
  alloc : Alloc.t option;
  ledger : Ledger.t;
  mem_read : width:int -> int64 -> int64;  (** VM memory (stack/ctx/heap) *)
  mem_write : width:int -> int64 -> int64 -> unit;
  charge : int -> unit;  (** add helper cost units *)
}

type helper = call_ctx -> unit
(** Helpers return through the context's unboxed return slot (preset to 0L
    before every call) instead of a boxed sum — the old
    [H_ret of int64 | H_stall] result allocated on every call. *)

exception Helper_stall
(** Raised by a helper that cannot make progress (e.g. contended lock): the
    VM cancels the extension at the call site, exactly as the old [H_stall]
    arm did. *)

val arg : call_ctx -> int -> int64
(** [arg c i] reads argument register [r(i+1)], for [i] in 0–4. *)

val set_ret : call_ctx -> int64 -> unit
(** Store the helper's return value (lands in [r0]). *)

val stack_base : int64
(** Virtual base of the 512-byte extension stack window ([r10] starts at
    [stack_base + 512]). *)

val ctx_base : int64
(** Virtual base of the context window ([r1] at entry). *)

val seed_prandom : int64 -> unit
(** Reset the deterministic PRNG behind [bpf_get_prandom_u32] — benchmarks
    comparing instrumentation modes of randomised structures (skiplists)
    need identical shapes across runs. *)

val set_vtime : int64 -> unit
(** Reset the virtual clock behind [bpf_ktime_get_ns] (each call advances it
    by one tick). Differential tests aligning the facade against the
    engine's per-shard clocks reset both to the same origin. *)

val prandom_helper : U64.cell -> helper
(** A [bpf_get_prandom_u32] implementation over caller-owned state, using
    the exact global algorithm (xorshift64-star). Seed the cell with
    [Int64.logor seed 1L] to match {!seed_prandom}. The engine shadows the
    builtin with one of these per shard, so streams are per-CPU like the
    kernel's and never race across domains. The state lives in a {!U64.cell}
    rather than an [int64 ref] so advancing it never allocates. *)

val ktime_helper : U64.cell -> helper
(** Same for [bpf_ktime_get_ns]: a one-tick-per-call virtual clock over
    caller-owned state. *)

val builtin_helpers : (string * helper) list
(** Implementations of the KFlex runtime API: [kflex_malloc], [kflex_free],
    [kflex_spin_lock], [kflex_spin_unlock], [kflex_heap_base],
    [bpf_get_smp_processor_id], [bpf_ktime_get_ns], [bpf_get_prandom_u32]. *)

type ext
(** A loaded (instrumented) extension ready to run. *)

val create :
  ?heap:Heap.t ->
  ?alloc:Alloc.t ->
  ?quantum:int ->
  ?default_ret:int64 ->
  ?on_cancel:(int64 -> int64) ->
  helpers:(string * helper) list ->
  Kflex_kie.Instrument.t ->
  ext
(** [quantum] is the watchdog budget in cost units per invocation (default
    100 million ≈ seconds of real execution, §4.3). [on_cancel] is the §4.3
    user callback that may rewrite the default return code. [helpers] extend
    (and may shadow) {!builtin_helpers}. *)

val cancel : ext -> unit
(** Request cancellation (all CPUs, §4.3): every running or future
    invocation faults at its next cancellation point. *)

val cancelled : ext -> bool

val reset_cancel : ext -> unit
(** Re-arm a cancelled extension (tests only; the paper's runtime unloads the
    extension instead). *)

val kie : ext -> Kflex_kie.Instrument.t

type backend = [ `Interp | `Compiled ]
(** Execution engine selection: the classic fetch/decode interpreter, or the
    closure-compiled direct-threaded backend ({!Jit}). Both produce
    bit-identical outcomes, stats and memory effects; the compiled backend
    exists purely for speed. *)

val precompile : ?fuse:bool -> ext -> Jit.t
(** Compile the extension's instrumented program and install the result, so
    subsequent [`Compiled] executions skip lazy compilation. [fuse]
    (default [true]) enables superinstruction fusion. Returns the compiled
    form (for fusion/compile-time reporting). *)

val set_compiled : ext -> Jit.t -> unit
(** Install an externally compiled program (e.g. from the core facade's
    compiled-program cache), linking its helper table against this
    extension's helpers. *)

val has_compiled : ext -> bool
(** Whether a compiled form is already installed. *)

val exec :
  ext ->
  ctx:Bytes.t ->
  ?cpu:int ->
  ?stats:stats ->
  ?on_insn:(int -> int64 array -> unit) ->
  ?on_site:(unit -> bool) ->
  ?backend:backend ->
  unit ->
  outcome
(** Run one invocation with the given context block. [stats], when supplied,
    accumulates across invocations.

    [on_insn] observes every instruction boundary: it receives the
    instrumented pc and the live register file {e before} the instruction
    executes. Exceptions it raises propagate out of [exec] uncaught — the
    fuzzer's containment oracle uses this both to check abstract states and
    to bound runaway concrete loops.

    [on_site] is consulted at every cancellation site — each [Checkpoint]
    and each memory access whose address leaves the stack/ctx windows — in
    execution order; returning [true] injects an asynchronous cancellation
    ({!Ext_cancelled}) at that site, exercising object-table unwinding.

    [backend] selects the engine (default [`Interp]). Supplying either hook
    forces the interpreter regardless of [backend]: observation points only
    exist there. *)

(** The pre-refactor boxed reference semantics, kept as the ground truth for
    the [repr_equiv] differential oracle: a boxed [int64 array] register
    file with [Stdlib.Int64] arithmetic everywhere (including the stdlib's
    unsigned division) and the width-dispatched generic memory path. Shares
    no ALU/comparison/accessor code with the unboxed backends, so a
    representation bug there cannot also hide here. Slow by design; never
    use it outside differential testing. *)
module Ref_interp : sig
  val exec :
    ext ->
    ctx:Bytes.t ->
    ?cpu:int ->
    ?stats:stats ->
    ?on_insn:(int -> int64 array -> unit) ->
    unit ->
    outcome
  (** Same contract as {!exec} restricted to the interpreter: [on_insn]
      observes the (boxed) register file before each instruction. *)
end
