(** The KFlex memory allocator (§3.2, §4.1).

    A size-class allocator over an extension heap, mirroring the paper's
    design: per-CPU caches of free objects for each size class, refilled
    from a global pool, with physical pages populated on demand as the
    allocator hands memory out. Each block carries an 8-byte header holding
    its size class, so [free] needs only the pointer.

    The allocator owns heap offsets from [data_start] (past the reserved
    words and extension globals) to the end of the heap. *)

type t

val create : ?ncpu:int -> ?data_start:int64 -> Heap.t -> t
(** @param ncpu number of per-CPU caches (default 8).
    @param data_start first heap offset the allocator may use (default 64;
    offset 0 holds the [*terminate] word). *)

val heap : t -> Heap.t

val size_classes : int array
(** Payload sizes of the classes, ascending. *)

val alloc : t -> cpu:int -> int64 -> int64 option
(** [alloc t ~cpu size] returns the heap {e offset} of a zeroed block with at
    least [size] payload bytes, or [None] when the heap is exhausted or
    [size] exceeds the largest class. Served from the CPU's cache when
    possible; otherwise the cache is refilled from the global pool. *)

val free : t -> cpu:int -> int64 -> bool
(** [free t ~cpu off] returns a block to the CPU's cache; [false] when [off]
    is not a currently live block (double free or wild pointer — the
    extension's problem, never the kernel's; the block is ignored). *)

val live_blocks : t -> int
(** Number of allocated-and-not-freed blocks (for tests and accounting). *)

val cache_occupancy : t -> cpu:int -> int
(** Total objects cached for one CPU (tests the refill/drain behaviour). *)
