(* Unboxed 64-bit machine words.

   Without flambda, every 64-bit value that crosses a non-inlined function
   boundary or is stored in an [int64 array] materialises a 3-word heap box,
   so a boxed register file allocates on every ALU op and load. This module
   is the entire escape hatch: a flat [Bigarray] bank accessed through
   monomorphic [external] primitives (which the middle end inlines at every
   use site, letting cmmgen keep the values in machine registers), raw
   little-endian byte accessors over [Bytes.t], and primitive-only unsigned
   division. Everything here compiles to straight-line code with zero
   allocation; the allocation-regression tests in [test_runtime] pin that
   property down.

   The raw byte accessors are the native-endian [%caml_bytes_*u] primitives
   with no bounds check: callers must discharge both obligations. The VM
   uses them only where a guard has already run — window tests on the
   interpreter paths, verifier-proved constant frame offsets in the
   compiled backend — and the startup check below refuses big-endian hosts
   (the VM's memory image is little-endian everywhere). *)

type bank = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

external get : bank -> int -> int64 = "%caml_ba_unsafe_ref_1"
external set : bank -> int -> int64 -> unit = "%caml_ba_unsafe_set_1"

let create n : bank =
  let b = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
  Bigarray.Array1.fill b 0L;
  b

let fill (b : bank) v = Bigarray.Array1.fill b v
let dim (b : bank) = Bigarray.Array1.dim b

(* A single mutable unboxed word — the no-allocation replacement for
   [int64 ref] helper state ([x := v] on a ref boxes [v] every time). *)
type cell = bank

let cell v : cell =
  let c = create 1 in
  set c 0 v;
  c

external get_cell : cell -> int -> int64 = "%caml_ba_unsafe_ref_1"
external set_cell_ : cell -> int -> int64 -> unit = "%caml_ba_unsafe_set_1"

let[@inline always] cell_get (c : cell) = get_cell c 0
let[@inline always] cell_set (c : cell) v = set_cell_ c 0 v

(* Unchecked, unaligned byte accessors (native endianness — little-endian
   by the startup check below). The [16u/32u/64u] primitives perform no
   bounds check; the 8-bit pair is the plain unsafe bytes access. *)
external get8 : Bytes.t -> int -> char = "%bytes_unsafe_get"
external set8 : Bytes.t -> int -> char -> unit = "%bytes_unsafe_set"
external get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external set16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external get32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external set32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let () =
  if Sys.big_endian then
    failwith "U64: the unboxed VM hot path assumes a little-endian host"

(* Unsigned comparison via sign-bit flip: comparisons on values typed
   [int64] compile to unboxed compare instructions. *)
let[@inline always] ult (a : int64) (b : int64) =
  (Int64.logxor a Int64.min_int : int64) < Int64.logxor b Int64.min_int

let[@inline always] ule (a : int64) (b : int64) =
  (Int64.logxor a Int64.min_int : int64) <= Int64.logxor b Int64.min_int

(* Unsigned division from signed primitives (Hacker's Delight §9.3):
   [Stdlib.Int64.unsigned_div] is an ordinary function whose call boxes the
   result. The divisor must be non-zero (the VM's ALU checks first).

   - [d < 0] signed means d has the top bit set, so the unsigned quotient
     is 0 or 1, decided by an unsigned compare;
   - otherwise halve the dividend to clear its sign bit, divide signed,
     double the quotient, and correct the at-most-one-off remainder. *)
let[@inline always] udiv (n : int64) (d : int64) =
  if (d : int64) < 0L then if ult n d then 0L else 1L
  else begin
    let q = Int64.shift_left (Int64.div (Int64.shift_right_logical n 1) d) 1 in
    let r = Int64.sub n (Int64.mul q d) in
    if ule d r then Int64.add q 1L else q
  end

let[@inline always] urem (n : int64) (d : int64) =
  Int64.sub n (Int64.mul (udiv n d) d)
