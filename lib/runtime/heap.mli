(** Extension heaps (§3.2, §4.1).

    A heap is a power-of-two-sized region of the simulated kernel virtual
    address space, mapped at an address aligned to its size so that SFI
    masking can extract the offset bits, flanked by 32 KB guard zones that
    absorb the signed 16-bit displacements of memory instructions, and
    demand-paged: physical backing for a 4 KB page exists only once the
    allocator (or a user-space mapping) has populated it. Extension accesses
    to an unpopulated page fault, which the runtime turns into a cancellation
    (C2, §3.3).

    Addresses: the kernel view maps the heap at {!kbase}; a heap shared with
    user space (§3.4) is additionally visible at {!ubase}. Both bases are
    size-aligned, so the same masking recovers the offset from either view. *)

type t

exception Fault of { addr : int64; reason : string }

val page_size : int
(** 4096. *)

val guard_bytes : int
(** 32 KB on each side (2{^15}, the instruction displacement range, §4.1). *)

val create : ?shared:bool -> ?kbase:int64 -> size:int64 -> unit -> t
(** Create a heap. [size] must be a power of two between one page and 2{^40}
    bytes; physical backing is allocated lazily per page. [shared] also maps
    the heap at its user-space base. [kbase] overrides the kernel-view base
    address (default 2{^46}); it must be size-aligned, at least the default,
    and leave the user-space window (2{^47}) and its guard zones clear —
    the fuzzer randomises it to check no analysis or instrumentation baked
    in the constant.
    @raise Invalid_argument on a bad size or base. *)

val size : t -> int64
val mask : t -> int64
val kbase : t -> int64
val ubase : t -> int64 option
val is_shared : t -> bool

val sanitize : t -> int64 -> int64
(** The SFI guard function: [kbase + (addr land mask)] (§3.2). *)

val translate_user : t -> int64 -> int64
(** Translate-on-store: [ubase + (addr land mask)] (§3.4).
    @raise Invalid_argument if the heap is not shared. *)

val offset_of_addr : t -> int64 -> int64 option
(** The heap offset designated by a kernel- or user-view address within
    [heap ± guard zones]; [None] for wild addresses. The offset may be
    negative or beyond [size] when the address lands in a guard zone. *)

val populate : t -> off:int64 -> len:int64 -> unit
(** Back all pages covering [off, off+len) (allocator / mmap path). *)

val page_populated : t -> int64 -> bool
(** Whether the page containing this offset is populated (in-range only). *)

val populated_bytes : t -> int64
(** Physical memory currently backing the heap (the cgroup accounting of
    §4.1). *)

val snapshot : t -> (int64 * string) list
(** Contents of every backed page, as [(page index, 4 KB of bytes)] sorted by
    index — a deterministic digest source for differential testing. *)

(** {2 Sized accesses}

    [addr] is a virtual address (either view). Little-endian.
    @raise Fault on guard-zone hits, unpopulated pages or wild addresses. *)

val read : t -> width:int -> int64 -> int64
val write : t -> width:int -> int64 -> int64 -> unit

(** {2 Width-specialized extension accesses}

    Hot-path variants of {!read}/{!write} for the compiled backend: one
    unsigned bound check against a precomputed limit and a direct page
    access. Semantics (including fault reasons and their order) are exactly
    those of the generic pair — unusual cases fall back to it. *)

val read8 : t -> int64 -> int64
val read16 : t -> int64 -> int64
val read32 : t -> int64 -> int64
val read64 : t -> int64 -> int64
val write8 : t -> int64 -> int64 -> unit
val write16 : t -> int64 -> int64 -> unit
val write32 : t -> int64 -> int64 -> unit
val write64 : t -> int64 -> int64 -> unit

(** {2 Offset-based accesses for trusted code (runtime, user space)}

    These bypass the fault machinery for in-range, populated offsets and are
    used by the allocator and the user-space side of shared heaps. *)

val read_off : t -> width:int -> int64 -> int64
val write_off : t -> width:int -> int64 -> int64 -> unit
