type t = {
  size : int64;
  mask : int64;
  kbase : int64;
  shared : bool;
  (* lazily backed 4 KB pages, keyed by page index *)
  pages : (int64, Bytes.t) Hashtbl.t;
}

exception Fault of { addr : int64; reason : string }

let page_size = 4096
let page_size64 = 4096L
let guard_bytes = 32768
let guard64 = 32768L

(* Both views are aligned to 2^46, hence to any permitted heap size. *)
let kbase_const = 0x4000_0000_0000L
let ubase_const = 0x8000_0000_0000L

let create ?(shared = false) ?(kbase = kbase_const) ~size () =
  if
    size < page_size64
    || size > 0x100_0000_0000L (* 2^40 *)
    || Int64.logand size (Int64.sub size 1L) <> 0L
  then
    invalid_arg
      (Printf.sprintf "Heap.create: size %Ld must be a power of two in [4K, 1T]"
         size);
  (* The base must be size-aligned (masking extracts the offset), sit at or
     above the canonical kernel view, and leave the user view's window —
     guard zones included — untouched. *)
  if
    Int64.logand kbase (Int64.sub size 1L) <> 0L
    || kbase < kbase_const
    || Int64.add (Int64.add kbase size) guard64
       > Int64.sub ubase_const guard64
  then
    invalid_arg
      (Printf.sprintf "Heap.create: kbase %Lx must be size-aligned in [2^46, 2^47)"
         kbase);
  { size; mask = Int64.sub size 1L; kbase; shared; pages = Hashtbl.create 64 }

let size h = h.size
let mask h = h.mask
let kbase h = h.kbase
let ubase h = if h.shared then Some ubase_const else None
let is_shared h = h.shared

let sanitize h addr = Int64.logor h.kbase (Int64.logand addr h.mask)

let translate_user h addr =
  if not h.shared then invalid_arg "Heap.translate_user: heap is not shared"
  else Int64.logor ubase_const (Int64.logand addr h.mask)

let offset_of_addr h addr =
  let in_view base =
    addr >= Int64.sub base guard64 && addr < Int64.add (Int64.add base h.size) guard64
  in
  if in_view h.kbase then Some (Int64.sub addr h.kbase)
  else if h.shared && in_view ubase_const then Some (Int64.sub addr ubase_const)
  else None

let fault addr reason = raise (Fault { addr; reason })

let page_of h idx =
  match Hashtbl.find_opt h.pages idx with
  | Some p -> Some p
  | None -> None

let populate h ~off ~len =
  if off < 0L || len < 0L || Int64.add off len > h.size then
    invalid_arg "Heap.populate: range out of heap";
  let first = Int64.div off page_size64 in
  let last = Int64.div (Int64.add off (Int64.max 0L (Int64.sub len 1L))) page_size64 in
  let idx = ref first in
  while !idx <= last do
    if not (Hashtbl.mem h.pages !idx) then
      Hashtbl.replace h.pages !idx (Bytes.make page_size '\000');
    idx := Int64.add !idx 1L
  done

let page_populated h off = Hashtbl.mem h.pages (Int64.div off page_size64)

let populated_bytes h = Int64.of_int (Hashtbl.length h.pages * page_size)

(* Deterministic view of the backed pages: Hashtbl iteration order depends
   on insertion history, so differential comparisons must sort. *)
let snapshot h =
  Hashtbl.fold (fun idx p acc -> (idx, Bytes.to_string p) :: acc) h.pages []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

(* Trusted offset-based access; populates pages (the runtime/user side owns
   its mappings). *)
let rec read_off h ~width off =
  let page = Int64.div off page_size64 in
  let inpage = Int64.to_int (Int64.rem off page_size64) in
  if inpage + width <= page_size then begin
    if not (Hashtbl.mem h.pages page) then populate h ~off ~len:(Int64.of_int width);
    let p = Hashtbl.find h.pages page in
    match width with
    | 1 -> Int64.of_int (Char.code (Bytes.get p inpage))
    | 2 -> Int64.of_int (Bytes.get_uint16_le p inpage)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le p inpage)) 0xffff_ffffL
    | 8 -> Bytes.get_int64_le p inpage
    | _ -> invalid_arg "Heap.read_off: width"
  end
  else begin
    (* straddles a page boundary: assemble bytes *)
    let v = ref 0L in
    for i = width - 1 downto 0 do
      let b = read_off h ~width:1 (Int64.add off (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) b
    done;
    !v
  end

let rec write_off h ~width off v =
  let page = Int64.div off page_size64 in
  let inpage = Int64.to_int (Int64.rem off page_size64) in
  if inpage + width <= page_size then begin
    if not (Hashtbl.mem h.pages page) then populate h ~off ~len:(Int64.of_int width);
    let p = Hashtbl.find h.pages page in
    match width with
    | 1 -> Bytes.set p inpage (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
    | 2 -> Bytes.set_uint16_le p inpage (Int64.to_int (Int64.logand v 0xffffL))
    | 4 -> Bytes.set_int32_le p inpage (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le p inpage v
    | _ -> invalid_arg "Heap.write_off: width"
  end
  else
    for i = 0 to width - 1 do
      write_off h ~width:1
        (Int64.add off (Int64.of_int i))
        (Int64.shift_right_logical v (8 * i))
    done

(* Untrusted (extension) access: faults on guard zones and unpopulated
   pages. *)
let check_ext h addr width =
  match offset_of_addr h addr with
  | None -> fault addr "access outside any heap mapping"
  | Some off ->
      if off < 0L || Int64.add off (Int64.of_int width) > h.size then
        fault addr "guard zone access";
      let first = Int64.div off page_size64 in
      let last =
        Int64.div (Int64.add off (Int64.of_int (width - 1))) page_size64
      in
      let idx = ref first in
      while !idx <= last do
        (match page_of h !idx with
        | Some _ -> ()
        | None -> fault addr "unpopulated heap page");
        idx := Int64.add !idx 1L
      done;
      off

let read h ~width addr =
  let off = check_ext h addr width in
  read_off h ~width off

let write h ~width addr v =
  let off = check_ext h addr width in
  write_off h ~width off v
