(* Page backing: small heaps (up to [max_arr_pages] pages) use a flat
   option array so the hot extension access path costs one bounds-checked
   array load instead of hashtable probes; the 2^40-byte upper end of the
   permitted size range falls back to a hashtable keyed by page index. *)
type backing = Arr of Bytes.t option array | Tbl of (int, Bytes.t) Hashtbl.t

type t = {
  size : int64;
  mask : int64;
  kbase : int64;
  shared : bool;
  npages : int;
  (* lazily backed 4 KB pages, keyed by page index *)
  backing : backing;
  mutable npop : int;  (* populated page count *)
  (* [size - width] per access width, precomputed so the width-specialized
     accessors below do a single unsigned bound check with no allocation *)
  lim1 : int64;
  lim2 : int64;
  lim4 : int64;
  lim8 : int64;
}

exception Fault of { addr : int64; reason : string }

let page_size = 4096
let page_size64 = 4096L
let page_shift = 12
let guard_bytes = 32768
let guard64 = 32768L

(* Flat page arrays are capped at 256 MiB of heap (64 Ki pages = one 512 KB
   pointer array); anything larger — the spec allows 2^40 — stays sparse. *)
let max_arr_pages = 65536

(* Both views are aligned to 2^46, hence to any permitted heap size. *)
let kbase_const = 0x4000_0000_0000L
let ubase_const = 0x8000_0000_0000L

let create ?(shared = false) ?(kbase = kbase_const) ~size () =
  if
    size < page_size64
    || size > 0x100_0000_0000L (* 2^40 *)
    || Int64.logand size (Int64.sub size 1L) <> 0L
  then
    invalid_arg
      (Printf.sprintf "Heap.create: size %Ld must be a power of two in [4K, 1T]"
         size);
  (* The base must be size-aligned (masking extracts the offset), sit at or
     above the canonical kernel view, and leave the user view's window —
     guard zones included — untouched. *)
  if
    Int64.logand kbase (Int64.sub size 1L) <> 0L
    || kbase < kbase_const
    || Int64.add (Int64.add kbase size) guard64
       > Int64.sub ubase_const guard64
  then
    invalid_arg
      (Printf.sprintf "Heap.create: kbase %Lx must be size-aligned in [2^46, 2^47)"
         kbase);
  let npages = Int64.to_int (Int64.div size page_size64) in
  let backing =
    if npages <= max_arr_pages then Arr (Array.make npages None)
    else Tbl (Hashtbl.create 64)
  in
  {
    size;
    mask = Int64.sub size 1L;
    kbase;
    shared;
    npages;
    backing;
    npop = 0;
    lim1 = Int64.sub size 1L;
    lim2 = Int64.sub size 2L;
    lim4 = Int64.sub size 4L;
    lim8 = Int64.sub size 8L;
  }

let size h = h.size
let mask h = h.mask
let kbase h = h.kbase
let ubase h = if h.shared then Some ubase_const else None
let is_shared h = h.shared

let[@inline always] sanitize h addr = Int64.logor h.kbase (Int64.logand addr h.mask)

let translate_user h addr =
  if not h.shared then invalid_arg "Heap.translate_user: heap is not shared"
  else Int64.logor ubase_const (Int64.logand addr h.mask)

let offset_of_addr h addr =
  let in_view base =
    addr >= Int64.sub base guard64 && addr < Int64.add (Int64.add base h.size) guard64
  in
  if in_view h.kbase then Some (Int64.sub addr h.kbase)
  else if h.shared && in_view ubase_const then Some (Int64.sub addr ubase_const)
  else None

let fault addr reason = raise (Fault { addr; reason })

(* [idx] is trusted to be in [0, npages) on array-backed heaps (the callers
   below establish it from checked offsets). *)
let[@inline always] get_page h idx =
  match h.backing with
  | Arr a -> Array.get a idx
  | Tbl t -> Hashtbl.find_opt t idx

(* Unchecked variant for the width-specialized accessors below: their page
   index derives from an offset already checked against the heap limit
   ([off <= lim] implies [off < size], so [off lsr page_shift < npages]),
   making the array bounds check redundant. Every populated page is exactly
   [page_size] bytes ([set_page] only ever stores [Bytes.make page_size]),
   so their in-page byte offsets — checked against [page_size - width] —
   may use {!U64}'s raw unaligned accessors too. *)
let[@inline always] page_at h idx =
  match h.backing with
  | Arr a -> Array.unsafe_get a idx
  | Tbl t -> Hashtbl.find_opt t idx

let set_page h idx p =
  (match h.backing with
  | Arr a -> Array.set a idx (Some p)
  | Tbl t -> Hashtbl.replace t idx p);
  h.npop <- h.npop + 1

let populate h ~off ~len =
  if off < 0L || len < 0L || Int64.add off len > h.size then
    invalid_arg "Heap.populate: range out of heap";
  let first = Int64.to_int (Int64.div off page_size64) in
  let last =
    Int64.to_int
      (Int64.div (Int64.add off (Int64.max 0L (Int64.sub len 1L))) page_size64)
  in
  for idx = first to min last (h.npages - 1) do
    match get_page h idx with
    | Some _ -> ()
    | None -> set_page h idx (Bytes.make page_size '\000')
  done

let page_populated h off =
  let idx = Int64.to_int (Int64.div off page_size64) in
  idx >= 0 && idx < h.npages && get_page h idx <> None

let populated_bytes h = Int64.of_int (h.npop * page_size)

(* Deterministic view of the backed pages, sorted by index (the array walk
   is naturally ordered; the sparse table must sort). *)
let snapshot h =
  match h.backing with
  | Arr a ->
      let acc = ref [] in
      for i = Array.length a - 1 downto 0 do
        match Array.unsafe_get a i with
        | Some p -> acc := (Int64.of_int i, Bytes.to_string p) :: !acc
        | None -> ()
      done;
      !acc
  | Tbl t ->
      Hashtbl.fold
        (fun idx p acc -> (Int64.of_int idx, Bytes.to_string p) :: acc)
        t []
      |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

(* Trusted offset-based access; populates pages (the runtime/user side owns
   its mappings). *)
let rec read_off h ~width off =
  let o = Int64.to_int off in
  let inpage = o land (page_size - 1) in
  if inpage + width <= page_size then begin
    let idx = o lsr page_shift in
    let p =
      match get_page h idx with
      | Some p -> p
      | None ->
          populate h ~off ~len:(Int64.of_int width);
          (match get_page h idx with Some p -> p | None -> assert false)
    in
    match width with
    | 1 -> Int64.of_int (Char.code (Bytes.get p inpage))
    | 2 -> Int64.of_int (Bytes.get_uint16_le p inpage)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le p inpage)) 0xffff_ffffL
    | 8 -> Bytes.get_int64_le p inpage
    | _ -> invalid_arg "Heap.read_off: width"
  end
  else begin
    (* straddles a page boundary: assemble bytes *)
    let v = ref 0L in
    for i = width - 1 downto 0 do
      let b = read_off h ~width:1 (Int64.add off (Int64.of_int i)) in
      v := Int64.logor (Int64.shift_left !v 8) b
    done;
    !v
  end

let rec write_off h ~width off v =
  let o = Int64.to_int off in
  let inpage = o land (page_size - 1) in
  if inpage + width <= page_size then begin
    let idx = o lsr page_shift in
    let p =
      match get_page h idx with
      | Some p -> p
      | None ->
          populate h ~off ~len:(Int64.of_int width);
          (match get_page h idx with Some p -> p | None -> assert false)
    in
    match width with
    | 1 -> Bytes.set p inpage (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
    | 2 -> Bytes.set_uint16_le p inpage (Int64.to_int (Int64.logand v 0xffffL))
    | 4 -> Bytes.set_int32_le p inpage (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le p inpage v
    | _ -> invalid_arg "Heap.write_off: width"
  end
  else
    for i = 0 to width - 1 do
      write_off h ~width:1
        (Int64.add off (Int64.of_int i))
        (Int64.shift_right_logical v (8 * i))
    done

(* Untrusted (extension) access: faults on wild addresses, guard zones and
   unpopulated pages, in that order. The checked offset is non-negative and
   in-heap, so plain int arithmetic replaces the Int64 div/rem pair. *)
let check_ext h addr width =
  match offset_of_addr h addr with
  | None -> fault addr "access outside any heap mapping"
  | Some off ->
      if off < 0L || Int64.add off (Int64.of_int width) > h.size then
        fault addr "guard zone access";
      off

let check_pages h addr o width =
  let first = o lsr page_shift in
  let last = (o + width - 1) lsr page_shift in
  for idx = first to last do
    match get_page h idx with
    | Some _ -> ()
    | None -> fault addr "unpopulated heap page"
  done

let read h ~width addr =
  let off = check_ext h addr width in
  let o = Int64.to_int off in
  let inpage = o land (page_size - 1) in
  if inpage + width <= page_size then begin
    match get_page h (o lsr page_shift) with
    | None -> fault addr "unpopulated heap page"
    | Some p -> (
        match width with
        | 1 -> Int64.of_int (Char.code (Bytes.get p inpage))
        | 2 -> Int64.of_int (Bytes.get_uint16_le p inpage)
        | 4 ->
            Int64.logand (Int64.of_int32 (Bytes.get_int32_le p inpage))
              0xffff_ffffL
        | 8 -> Bytes.get_int64_le p inpage
        | _ -> invalid_arg "Heap.read: width")
  end
  else begin
    check_pages h addr o width;
    read_off h ~width off
  end

(* Width-specialized extension reads/writes for the compiled backend: one
   unsigned bound check against a precomputed limit, one page load, one
   unaligned access. Anything unusual — guard zones, user-view addresses,
   page-straddling accesses — falls back to the generic checked path above,
   so fault reasons and their order are identical to the interpreter's. *)

let[@inline always] read8 h addr =
  let off = Int64.sub addr h.kbase in
  if Int64.unsigned_compare off h.lim1 <= 0 then begin
    let o = Int64.to_int off in
    match page_at h (o lsr page_shift) with
    | Some p -> Int64.of_int (Char.code (U64.get8 p (o land (page_size - 1))))
    | None -> fault addr "unpopulated heap page"
  end
  else read h ~width:1 addr

let[@inline always] read16 h addr =
  let off = Int64.sub addr h.kbase in
  if Int64.unsigned_compare off h.lim2 <= 0 then begin
    let o = Int64.to_int off in
    let inpage = o land (page_size - 1) in
    if inpage <= page_size - 2 then
      match page_at h (o lsr page_shift) with
      | Some p -> Int64.of_int (U64.get16 p inpage)
      | None -> fault addr "unpopulated heap page"
    else read h ~width:2 addr
  end
  else read h ~width:2 addr

let[@inline always] read32 h addr =
  let off = Int64.sub addr h.kbase in
  if Int64.unsigned_compare off h.lim4 <= 0 then begin
    let o = Int64.to_int off in
    let inpage = o land (page_size - 1) in
    if inpage <= page_size - 4 then
      match page_at h (o lsr page_shift) with
      | Some p ->
          Int64.logand (Int64.of_int32 (U64.get32 p inpage))
            0xffff_ffffL
      | None -> fault addr "unpopulated heap page"
    else read h ~width:4 addr
  end
  else read h ~width:4 addr

let[@inline always] read64 h addr =
  let off = Int64.sub addr h.kbase in
  if Int64.unsigned_compare off h.lim8 <= 0 then begin
    let o = Int64.to_int off in
    let inpage = o land (page_size - 1) in
    if inpage <= page_size - 8 then
      match page_at h (o lsr page_shift) with
      | Some p -> U64.get64 p inpage
      | None -> fault addr "unpopulated heap page"
    else read h ~width:8 addr
  end
  else read h ~width:8 addr

let write h ~width addr v =
  let off = check_ext h addr width in
  let o = Int64.to_int off in
  let inpage = o land (page_size - 1) in
  if inpage + width <= page_size then begin
    match get_page h (o lsr page_shift) with
    | None -> fault addr "unpopulated heap page"
    | Some p -> (
        match width with
        | 1 -> Bytes.set p inpage (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
        | 2 ->
            Bytes.set_uint16_le p inpage (Int64.to_int (Int64.logand v 0xffffL))
        | 4 -> Bytes.set_int32_le p inpage (Int64.to_int32 v)
        | 8 -> Bytes.set_int64_le p inpage v
        | _ -> invalid_arg "Heap.write: width")
  end
  else begin
    check_pages h addr o width;
    write_off h ~width off v
  end

let[@inline always] write8 h addr v =
  let off = Int64.sub addr h.kbase in
  if Int64.unsigned_compare off h.lim1 <= 0 then begin
    let o = Int64.to_int off in
    match page_at h (o lsr page_shift) with
    | Some p ->
        U64.set8 p (o land (page_size - 1))
          (Char.unsafe_chr (Int64.to_int (Int64.logand v 0xffL)))
    | None -> fault addr "unpopulated heap page"
  end
  else write h ~width:1 addr v

let[@inline always] write16 h addr v =
  let off = Int64.sub addr h.kbase in
  if Int64.unsigned_compare off h.lim2 <= 0 then begin
    let o = Int64.to_int off in
    let inpage = o land (page_size - 1) in
    if inpage <= page_size - 2 then
      match page_at h (o lsr page_shift) with
      | Some p ->
          U64.set16 p inpage (Int64.to_int (Int64.logand v 0xffffL))
      | None -> fault addr "unpopulated heap page"
    else write h ~width:2 addr v
  end
  else write h ~width:2 addr v

let[@inline always] write32 h addr v =
  let off = Int64.sub addr h.kbase in
  if Int64.unsigned_compare off h.lim4 <= 0 then begin
    let o = Int64.to_int off in
    let inpage = o land (page_size - 1) in
    if inpage <= page_size - 4 then
      match page_at h (o lsr page_shift) with
      | Some p -> U64.set32 p inpage (Int64.to_int32 v)
      | None -> fault addr "unpopulated heap page"
    else write h ~width:4 addr v
  end
  else write h ~width:4 addr v

let[@inline always] write64 h addr v =
  let off = Int64.sub addr h.kbase in
  if Int64.unsigned_compare off h.lim8 <= 0 then begin
    let o = Int64.to_int off in
    let inpage = o land (page_size - 1) in
    if inpage <= page_size - 8 then
      match page_at h (o lsr page_shift) with
      | Some p -> U64.set64 p inpage v
      | None -> fault addr "unpopulated heap page"
    else write h ~width:8 addr v
  end
  else write h ~width:8 addr v
