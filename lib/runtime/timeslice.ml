type t = { mutable nesting : int; mutable deadline : float; mutable spent : bool }

let slice_ns = 50_000.0

let create () = { nesting = 0; deadline = infinity; spent = false }

let nesting t = t.nesting

let lock_acquired t ~now =
  if t.nesting = 0 && not t.spent then t.deadline <- now +. slice_ns;
  t.nesting <- t.nesting + 1

let lock_released t =
  if t.nesting > 0 then t.nesting <- t.nesting - 1;
  if t.nesting = 0 then begin
    t.deadline <- infinity;
    t.spent <- false
  end

let should_preempt t ~now = t.nesting > 0 && now > t.deadline

let force_preempt t =
  t.spent <- true;
  t.deadline <- neg_infinity;
  t
