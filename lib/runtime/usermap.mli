(** The user-space side of a shared extension heap (§3.4).

    A shared heap is mapped into the application at {!Heap.ubase}; all
    extension state is then reachable through ordinary loads and stores — no
    system calls. Pointers stored by the extension were rewritten to
    user-view addresses (translate-on-store), so user code follows them
    directly; this module is the thin application-side runtime for doing
    so, plus the user half of the spin-lock protocol with time-slice
    extensions. *)

type t

val attach : Heap.t -> t
(** @raise Invalid_argument if the heap is not shared. *)

val heap : t -> Heap.t

val read : t -> width:int -> int64 -> int64
(** Load through a user-view address (or a global's heap offset translated
    with {!addr_of_off}). *)

val write : t -> width:int -> int64 -> int64 -> unit

val addr_of_off : t -> int64 -> int64
(** The user-view address of a heap offset (e.g. of a global from the
    eclang layout). *)

val is_heap_addr : t -> int64 -> bool
(** Whether a loaded word looks like a pointer into the shared mapping
    (either view) — for walking extension data structures defensively. *)

(** {2 Locking with time-slice extensions} *)

val try_lock : t -> off:int64 -> slice:Timeslice.t -> now:float -> bool
(** User-side acquire of the spin-lock word at a heap offset: on success
    the thread's slice is extended ({!Timeslice.lock_acquired}). *)

val unlock : t -> off:int64 -> slice:Timeslice.t -> unit
