open Kflex_bpf

(* The execution-state machinery (stats, call_ctx, memory windows, the
   reusable register/stack context) lives in [Machine], shared between this
   interpreter and the compiled backend in [Jit]. The aliases below keep
   [Vm] as the single public surface. *)

type fault_reason = Machine.fault_reason =
  | Page_fault
  | Guard_zone
  | Wild_access
  | Quantum_expired
  | Lock_stall
  | Ext_cancelled

type stats = Machine.stats = {
  mutable insns : int;
  mutable guards : int;
  mutable checkpoints : int;
  mutable helper_calls : int;
  mutable helper_cost : int;
}

let fresh_stats = Machine.fresh_stats
let total_cost = Machine.total_cost

type outcome = Machine.outcome =
  | Finished of int64
  | Cancelled of {
      orig_pc : int;
      reason : fault_reason;
      released : (string * string) list;
      ret : int64;
      ledger_leaked : int;
    }

type call_ctx = Machine.call_ctx = {
  args : U64.bank;
  mutable cpu : int;
  heap : Heap.t option;
  alloc : Alloc.t option;
  ledger : Ledger.t;
  mem_read : width:int -> int64 -> int64;
  mem_write : width:int -> int64 -> int64 -> unit;
  charge : int -> unit;
}

type helper = Machine.helper

exception Helper_stall = Machine.Helper_stall

let arg = Machine.arg
let set_ret = Machine.set_ret

exception Vm_fault = Machine.Vm_fault

let stack_base = Machine.stack_base
let ctx_base = Machine.ctx_base

(* --- builtin helpers -------------------------------------------------- *)

let get_heap c = match c.heap with Some h -> h | None -> raise (Vm_fault Wild_access)
let get_alloc c = match c.alloc with Some a -> a | None -> raise (Vm_fault Wild_access)

let h_malloc c =
  let a = get_alloc c in
  c.charge 20;
  match Alloc.alloc a ~cpu:c.cpu (arg c 0) with
  | Some off -> set_ret c (Int64.add (Heap.kbase (get_heap c)) off)
  | None -> set_ret c 0L

let h_free c =
  if arg c 0 = 0L then set_ret c 0L
  else begin
    let a = get_alloc c in
    let h = get_heap c in
    c.charge 15;
    let addr = Heap.sanitize h (arg c 0) in
    let off = Int64.sub addr (Heap.kbase h) in
    ignore (Alloc.free a ~cpu:c.cpu off);
    set_ret c 0L
  end

(* Spin locks live in heap words: 0 = free, owner-tag otherwise. In the
   single-threaded VM a held lock cannot be released concurrently, so a
   contended acquire is a stall — precisely the §3.4 scenario where the
   extension eventually cancels. *)
let h_spin_lock c =
  let h = get_heap c in
  let addr = Heap.sanitize h (arg c 0) in
  c.charge 4;
  let v = Heap.read h ~width:8 addr in
  if v = 0L then begin
    Heap.write h ~width:8 addr (Int64.of_int (c.cpu + 1));
    Ledger.acquire c.ledger ~handle:addr ~destructor:"kflex_spin_unlock";
    set_ret c addr
  end
  else raise Helper_stall

let h_spin_unlock c =
  let h = get_heap c in
  let addr = Heap.sanitize h (arg c 0) in
  c.charge 4;
  Heap.write h ~width:8 addr 0L;
  ignore (Ledger.release c.ledger ~handle:addr);
  set_ret c 0L

let h_heap_base c = set_ret c (Heap.kbase (get_heap c))

(* The PRNG and virtual clock behind [bpf_get_prandom_u32] /
   [bpf_ktime_get_ns] are exposed both as process-global helpers (the
   facade's single-CPU world) and as constructors over caller-owned state:
   the engine gives every shard its own stream so shards stay deterministic
   and race-free regardless of how events interleave across domains. The
   state is a {!U64.cell}, not an [int64 ref] — updating a ref boxes the
   new value on every call, which would be the last allocation left on the
   helper-bearing hot paths. *)

let prandom_helper (state : U64.cell) : helper =
 fun c ->
  (* xorshift64*; deterministic for reproducible runs *)
  let x = U64.cell_get state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  U64.cell_set state x;
  set_ret c (Int64.logand x 0xffff_ffffL)

let prandom_state = U64.cell 0x853c49e6748fea9bL
let seed_prandom seed = U64.cell_set prandom_state (Int64.logor seed 1L)
let h_prandom = prandom_helper prandom_state

let ktime_helper (clock : U64.cell) : helper =
 fun c ->
  let t = Int64.add (U64.cell_get clock) 1L in
  U64.cell_set clock t;
  set_ret c t

let vtime = U64.cell 0L
let set_vtime v = U64.cell_set vtime v
let h_ktime = ktime_helper vtime

let h_cpu c = set_ret c (Int64.of_int c.cpu)

let builtin_helpers =
  [
    ("kflex_malloc", h_malloc);
    ("kflex_free", h_free);
    ("kflex_spin_lock", h_spin_lock);
    ("kflex_spin_unlock", h_spin_unlock);
    ("kflex_heap_base", h_heap_base);
    ("bpf_get_prandom_u32", h_prandom);
    ("bpf_ktime_get_ns", h_ktime);
    ("bpf_get_smp_processor_id", h_cpu);
  ]

(* --- extensions ------------------------------------------------------- *)

type backend = [ `Interp | `Compiled ]

type ext = {
  kie : Kflex_kie.Instrument.t;
  heap : Heap.t option;
  alloc : Alloc.t option;
  helpers : (string, helper) Hashtbl.t;
  quantum : int;
  default_ret : int64;
  on_cancel : (int64 -> int64) option;
  cancel_flag : bool ref;
  mutable exec_state : Machine.state option;
      (* the reusable execution context (satellite: hoisted allocations) *)
  mutable jit : (Jit.t * helper array) option;
      (* compiled form + helper table linked against [helpers] *)
}

let create ?heap ?alloc ?(quantum = 100_000_000) ?(default_ret = 0L) ?on_cancel
    ~helpers kie =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (n, h) -> Hashtbl.replace tbl n h) builtin_helpers;
  List.iter (fun (n, h) -> Hashtbl.replace tbl n h) helpers;
  {
    kie;
    heap;
    alloc;
    helpers = tbl;
    quantum;
    default_ret;
    on_cancel;
    cancel_flag = ref false;
    exec_state = None;
    jit = None;
  }

let cancel e = e.cancel_flag := true
let cancelled e = !(e.cancel_flag)
let reset_cancel e = e.cancel_flag := false
let kie e = e.kie

(* --- compiled backend plumbing ---------------------------------------- *)

let link_helpers e names =
  Array.map
    (fun n ->
      match Hashtbl.find_opt e.helpers n with
      | Some h -> h
      | None -> fun _ -> failwith ("Vm.exec: unknown helper " ^ n))
    names

let set_compiled e t = e.jit <- Some (t, link_helpers e (Jit.helper_names t))
let has_compiled e = match e.jit with Some _ -> true | None -> false

let precompile ?fuse e =
  let t = Jit.compile ?fuse e.kie.Kflex_kie.Instrument.prog in
  set_compiled e t;
  t

let ensure_compiled e =
  match e.jit with
  | Some p -> p
  | None ->
      ignore (precompile e);
      (match e.jit with Some p -> p | None -> assert false)

(* --- execution context reuse ------------------------------------------ *)

let acquire_state e =
  match e.exec_state with
  | Some st when not st.Machine.in_use ->
      st.Machine.in_use <- true;
      st
  | Some _ ->
      (* reentrant invocation (e.g. a helper running an extension): give it
         a throwaway context rather than corrupting the live one *)
      Machine.create_state ?heap:e.heap ?alloc:e.alloc ~quantum:e.quantum
        ~cancel:e.cancel_flag ()
  | None ->
      let st =
        Machine.create_state ?heap:e.heap ?alloc:e.alloc ~quantum:e.quantum
          ~cancel:e.cancel_flag ()
      in
      st.Machine.in_use <- true;
      e.exec_state <- Some st;
      st

(* --- helper dispatch --------------------------------------------------- *)

(* Marshal r1-r5 into the unboxed argument bank, pre-clear the return slot,
   run the helper, and hand its return slot back to r0. A [Helper_stall]
   cancels the extension at the call site (§3.4). *)
let[@inline always] call_helper e (st : Machine.state) h =
  let call_ctx = st.Machine.call_ctx in
  let regs = st.Machine.regs in
  U64.set call_ctx.args 0 (U64.get regs 1);
  U64.set call_ctx.args 1 (U64.get regs 2);
  U64.set call_ctx.args 2 (U64.get regs 3);
  U64.set call_ctx.args 3 (U64.get regs 4);
  U64.set call_ctx.args 4 (U64.get regs 5);
  U64.set call_ctx.args Machine.ret_slot 0L;
  (try h call_ctx
   with Helper_stall ->
     e.cancel_flag := true;
     raise (Vm_fault Lock_stall));
  U64.set regs 0 (U64.get call_ctx.args Machine.ret_slot)

let find_helper e name =
  match Hashtbl.find_opt e.helpers name with
  | Some h -> h
  | None -> failwith ("Vm.exec: unknown helper " ^ name)

(* --- the interpreter -------------------------------------------------- *)

(* Hot loop with the hook checks hoisted out entirely: this variant runs
   when neither [on_insn] nor [on_site] is supplied. Registers live in the
   unboxed bank; all arithmetic goes through [Machine.eval_*], which inline
   here and keep the values out of the heap. *)
let interp_fast e (st : Machine.state) =
  let insns = Prog.insns e.kie.Kflex_kie.Instrument.prog in
  let regs = st.Machine.regs in
  let stats = st.Machine.stats in
  let start_cost = st.Machine.start_cost in
  let src_val s =
    match s with Insn.Reg r -> U64.get regs (Reg.to_int r) | Insn.Imm i -> i
  in
  let pc = ref 0 in
  let running = ref true in
  let ret = ref 0L in
  (try
     while !running do
       let insn = insns.(!pc) in
       stats.insns <- stats.insns + 1;
       match insn with
       | Insn.Mov (d, s) ->
           U64.set regs (Reg.to_int d) (src_val s);
           incr pc
       | Insn.Neg d ->
           let d = Reg.to_int d in
           U64.set regs d (Int64.neg (U64.get regs d));
           incr pc
       | Insn.Alu (op, d, s) ->
           let d = Reg.to_int d in
           U64.set regs d (Machine.eval_alu op (U64.get regs d) (src_val s));
           incr pc
       | Insn.Ldx (sz, d, s, off) ->
           let addr =
             Int64.add (U64.get regs (Reg.to_int s)) (Int64.of_int off)
           in
           U64.set regs (Reg.to_int d)
             (Machine.read st ~width:(Insn.size_bytes sz) addr);
           incr pc
       | Insn.Stx (sz, d, off, s) ->
           let addr =
             Int64.add (U64.get regs (Reg.to_int d)) (Int64.of_int off)
           in
           Machine.write st ~width:(Insn.size_bytes sz) addr
             (U64.get regs (Reg.to_int s));
           incr pc
       | Insn.St (sz, d, off, imm) ->
           let addr =
             Int64.add (U64.get regs (Reg.to_int d)) (Int64.of_int off)
           in
           Machine.write st ~width:(Insn.size_bytes sz) addr imm;
           incr pc
       | Insn.Xstore (sz, d, off, s) ->
           let h =
             match st.Machine.heap with
             | Some h -> h
             | None -> raise (Vm_fault Wild_access)
           in
           let addr =
             Int64.add (U64.get regs (Reg.to_int d)) (Int64.of_int off)
           in
           let v = U64.get regs (Reg.to_int s) in
           let v = if Heap.is_shared h then Heap.translate_user h v else v in
           Machine.write st ~width:(Insn.size_bytes sz) addr v;
           incr pc
       | Insn.Guard (_, r) ->
           let h =
             match st.Machine.heap with
             | Some h -> h
             | None -> raise (Vm_fault Wild_access)
           in
           stats.guards <- stats.guards + 1;
           let r = Reg.to_int r in
           U64.set regs r (Heap.sanitize h (U64.get regs r));
           incr pc
       | Insn.Checkpoint _ ->
           (* the [*terminate] load: one unit of cost; the watchdog *)
           stats.checkpoints <- stats.checkpoints + 1;
           if !(e.cancel_flag) then raise (Vm_fault Ext_cancelled);
           if total_cost stats - start_cost > e.quantum then begin
             e.cancel_flag := true;
             raise (Vm_fault Quantum_expired)
           end;
           incr pc
       | Insn.Atomic (op, sz, d, off, s) ->
           let width = Insn.size_bytes sz in
           let addr =
             Int64.add (U64.get regs (Reg.to_int d)) (Int64.of_int off)
           in
           let old = Machine.read st ~width addr in
           let s = Reg.to_int s in
           let sv = U64.get regs s in
           (match op with
           | Insn.Atomic_add -> Machine.write st ~width addr (Int64.add old sv)
           | Insn.Atomic_or -> Machine.write st ~width addr (Int64.logor old sv)
           | Insn.Atomic_and ->
               Machine.write st ~width addr (Int64.logand old sv)
           | Insn.Atomic_xor ->
               Machine.write st ~width addr (Int64.logxor old sv)
           | Insn.Fetch_add ->
               Machine.write st ~width addr (Int64.add old sv);
               U64.set regs s old
           | Insn.Fetch_or ->
               Machine.write st ~width addr (Int64.logor old sv);
               U64.set regs s old
           | Insn.Fetch_and ->
               Machine.write st ~width addr (Int64.logand old sv);
               U64.set regs s old
           | Insn.Fetch_xor ->
               Machine.write st ~width addr (Int64.logxor old sv);
               U64.set regs s old
           | Insn.Xchg ->
               Machine.write st ~width addr sv;
               U64.set regs s old
           | Insn.Cmpxchg ->
               if old = U64.get regs 0 then Machine.write st ~width addr sv;
               U64.set regs 0 old);
           incr pc
       | Insn.Ja off -> pc := !pc + 1 + off
       | Insn.Jcond (c, a, s, off) ->
           if Machine.eval_cond c (U64.get regs (Reg.to_int a)) (src_val s)
           then pc := !pc + 1 + off
           else incr pc
       | Insn.Call name ->
           stats.helper_calls <- stats.helper_calls + 1;
           call_helper e st (find_helper e name);
           incr pc
       | Insn.Exit ->
           ret := U64.get regs 0;
           running := false
     done
   with exn ->
     st.Machine.fault_pc <- !pc;
     raise exn);
  Finished !ret

(* Instrumented loop: identical semantics plus the [on_insn] / [on_site]
   observation points. Lives separately so the fast loop never tests for
   hook presence. [on_insn] observers receive the state's boxed snapshot
   array, refreshed from the live bank before every instruction. *)
let interp_hooked e (st : Machine.state) ~on_insn ~on_site =
  let insns = Prog.insns e.kie.Kflex_kie.Instrument.prog in
  let regs = st.Machine.regs in
  let stats = st.Machine.stats in
  let start_cost = st.Machine.start_cost in
  let ctx_size = st.Machine.ctx_size in
  let src_val s =
    match s with Insn.Reg r -> U64.get regs (Reg.to_int r) | Insn.Imm i -> i
  in
  let pc = ref 0 in
  let running = ref true in
  let ret = ref 0L in
  (try
     while !running do
       let insn = insns.(!pc) in
       (match on_insn with
       | Some f ->
           Machine.sync_snap st;
           f !pc st.Machine.reg_snap
       | None -> ());
       stats.insns <- stats.insns + 1;
       (* The watchdog: quantum measured in cost units per invocation. *)
       (match insn with
       | Insn.Checkpoint _ ->
           stats.checkpoints <- stats.checkpoints + 1;
           if !(e.cancel_flag) then raise (Vm_fault Ext_cancelled);
           if total_cost stats - start_cost > e.quantum then begin
             e.cancel_flag := true;
             raise (Vm_fault Quantum_expired)
           end
       | _ -> ());
       (* Cancellation-injection sites: every Checkpoint (C1) plus every
          memory access that leaves the stack/ctx windows (a potential C2
          fault). The callback sees sites in execution order; returning
          [true] cancels as if a sibling CPU had (§4.3). *)
       (match on_site with
       | None -> ()
       | Some f ->
           let outside addr width =
             not
               (Machine.in_window stack_base Prog.stack_size addr width
               || Machine.in_window ctx_base ctx_size addr width)
           in
           let is_site =
             match insn with
             | Insn.Checkpoint _ -> true
             | Insn.Ldx (sz, _, s, off) ->
                 outside
                   (Int64.add (U64.get regs (Reg.to_int s)) (Int64.of_int off))
                   (Insn.size_bytes sz)
             | Insn.Stx (sz, d, off, _)
             | Insn.St (sz, d, off, _)
             | Insn.Xstore (sz, d, off, _)
             | Insn.Atomic (_, sz, d, off, _) ->
                 outside
                   (Int64.add (U64.get regs (Reg.to_int d)) (Int64.of_int off))
                   (Insn.size_bytes sz)
             | _ -> false
           in
           if is_site && f () then raise (Vm_fault Ext_cancelled));
       match insn with
       | Insn.Mov (d, s) ->
           U64.set regs (Reg.to_int d) (src_val s);
           incr pc
       | Insn.Neg d ->
           let d = Reg.to_int d in
           U64.set regs d (Int64.neg (U64.get regs d));
           incr pc
       | Insn.Alu (op, d, s) ->
           let d = Reg.to_int d in
           U64.set regs d (Machine.eval_alu op (U64.get regs d) (src_val s));
           incr pc
       | Insn.Ldx (sz, d, s, off) ->
           let addr =
             Int64.add (U64.get regs (Reg.to_int s)) (Int64.of_int off)
           in
           U64.set regs (Reg.to_int d)
             (Machine.read st ~width:(Insn.size_bytes sz) addr);
           incr pc
       | Insn.Stx (sz, d, off, s) ->
           let addr =
             Int64.add (U64.get regs (Reg.to_int d)) (Int64.of_int off)
           in
           Machine.write st ~width:(Insn.size_bytes sz) addr
             (U64.get regs (Reg.to_int s));
           incr pc
       | Insn.St (sz, d, off, imm) ->
           let addr =
             Int64.add (U64.get regs (Reg.to_int d)) (Int64.of_int off)
           in
           Machine.write st ~width:(Insn.size_bytes sz) addr imm;
           incr pc
       | Insn.Xstore (sz, d, off, s) ->
           let h =
             match st.Machine.heap with
             | Some h -> h
             | None -> raise (Vm_fault Wild_access)
           in
           let addr =
             Int64.add (U64.get regs (Reg.to_int d)) (Int64.of_int off)
           in
           let v = U64.get regs (Reg.to_int s) in
           let v = if Heap.is_shared h then Heap.translate_user h v else v in
           Machine.write st ~width:(Insn.size_bytes sz) addr v;
           incr pc
       | Insn.Guard (_, r) ->
           let h =
             match st.Machine.heap with
             | Some h -> h
             | None -> raise (Vm_fault Wild_access)
           in
           stats.guards <- stats.guards + 1;
           let r = Reg.to_int r in
           U64.set regs r (Heap.sanitize h (U64.get regs r));
           incr pc
       | Insn.Checkpoint _ ->
           (* cost and watchdog handled above *)
           incr pc
       | Insn.Atomic (op, sz, d, off, s) ->
           let width = Insn.size_bytes sz in
           let addr =
             Int64.add (U64.get regs (Reg.to_int d)) (Int64.of_int off)
           in
           let old = Machine.read st ~width addr in
           let s = Reg.to_int s in
           let sv = U64.get regs s in
           (match op with
           | Insn.Atomic_add -> Machine.write st ~width addr (Int64.add old sv)
           | Insn.Atomic_or -> Machine.write st ~width addr (Int64.logor old sv)
           | Insn.Atomic_and ->
               Machine.write st ~width addr (Int64.logand old sv)
           | Insn.Atomic_xor ->
               Machine.write st ~width addr (Int64.logxor old sv)
           | Insn.Fetch_add ->
               Machine.write st ~width addr (Int64.add old sv);
               U64.set regs s old
           | Insn.Fetch_or ->
               Machine.write st ~width addr (Int64.logor old sv);
               U64.set regs s old
           | Insn.Fetch_and ->
               Machine.write st ~width addr (Int64.logand old sv);
               U64.set regs s old
           | Insn.Fetch_xor ->
               Machine.write st ~width addr (Int64.logxor old sv);
               U64.set regs s old
           | Insn.Xchg ->
               Machine.write st ~width addr sv;
               U64.set regs s old
           | Insn.Cmpxchg ->
               if old = U64.get regs 0 then Machine.write st ~width addr sv;
               U64.set regs 0 old);
           incr pc
       | Insn.Ja off -> pc := !pc + 1 + off
       | Insn.Jcond (c, a, s, off) ->
           if Machine.eval_cond c (U64.get regs (Reg.to_int a)) (src_val s)
           then pc := !pc + 1 + off
           else incr pc
       | Insn.Call name ->
           stats.helper_calls <- stats.helper_calls + 1;
           call_helper e st (find_helper e name);
           incr pc
       | Insn.Exit ->
           ret := U64.get regs 0;
           running := false
     done
   with exn ->
     st.Machine.fault_pc <- !pc;
     raise exn);
  Finished !ret

(* Cancellation: unwind via the static object table of the faulting
   cancellation point (§3.3). *)
let unwind e (st : Machine.state) exn =
  let reason =
    match exn with
    | Vm_fault r -> r
    | Heap.Fault { reason; _ } ->
        if reason = "unpopulated heap page" then Page_fault
        else if reason = "guard zone access" then Guard_zone
        else Wild_access
    | _ -> assert false
  in
  let regs = st.Machine.regs in
  let stack = st.Machine.stack in
  let call_ctx = st.Machine.call_ctx in
  let orig_pc = e.kie.Kflex_kie.Instrument.orig_of_new.(st.Machine.fault_pc) in
  let table = e.kie.Kflex_kie.Instrument.tables.(orig_pc) in
  let released = ref [] in
  List.iter
    (fun (entry : Kflex_kie.Instrument.obj_entry) ->
      let v =
        match entry.Kflex_kie.Instrument.loc with
        | Kflex_verifier.State.L_reg r -> U64.get regs (Reg.to_int r)
        | Kflex_verifier.State.L_slot i -> Bytes.get_int64_le stack (i * 8)
      in
      if v <> 0L then begin
        (match
           Hashtbl.find_opt e.helpers entry.Kflex_kie.Instrument.destructor
         with
        | Some d -> (
            for i = 0 to 4 do
              U64.set call_ctx.args i 0L
            done;
            U64.set call_ctx.args 0 v;
            U64.set call_ctx.args Machine.ret_slot 0L;
            (* a stalling destructor cannot stall the unwind: the old ABI's
               [H_stall] result was ignored here, so the exception is too *)
            try d call_ctx with Helper_stall -> ())
        | None -> ());
        released :=
          (entry.Kflex_kie.Instrument.klass, entry.Kflex_kie.Instrument.destructor)
          :: !released
      end)
    table;
  let ret =
    match e.on_cancel with Some f -> f e.default_ret | None -> e.default_ret
  in
  Cancelled
    {
      orig_pc;
      reason;
      released = List.rev !released;
      ret;
      ledger_leaked = Ledger.count st.Machine.ledger;
    }

(* --- the boxed reference interpreter ----------------------------------- *)

(* The pre-refactor representation, kept alive as the differential oracle's
   ground truth: a boxed [int64 array] register file and [Stdlib.Int64]
   arithmetic everywhere — including the stdlib's unsigned division — with
   the width-dispatched generic memory path for every access. Deliberately
   shares no ALU/comparison code with [Machine]: the whole point is that an
   unboxing bug in the new representation (wrap-around, sign extension,
   shift masking, division edge cases) cannot also be present here.

   Heap, ledger, helpers, stack bytes and outcome plumbing are shared with
   the live state — the reference covers the VM's value representation, not
   the world around it — so outcomes, stats, payloads and heap snapshots
   must come out bit-identical to both unboxed backends. *)
module Ref_interp = struct
  let u_lt a b = Int64.unsigned_compare a b < 0
  let u_le a b = Int64.unsigned_compare a b <= 0

  let eval_cond c a b =
    match c with
    | Insn.Eq -> Int64.equal a b
    | Insn.Ne -> not (Int64.equal a b)
    | Insn.Lt -> u_lt a b
    | Insn.Le -> u_le a b
    | Insn.Gt -> u_lt b a
    | Insn.Ge -> u_le b a
    | Insn.Slt -> Int64.compare a b < 0
    | Insn.Sle -> Int64.compare a b <= 0
    | Insn.Sgt -> Int64.compare a b > 0
    | Insn.Sge -> Int64.compare a b >= 0
    | Insn.Set -> Int64.logand a b <> 0L

  let eval_alu op a b =
    match op with
    | Insn.Add -> Int64.add a b
    | Insn.Sub -> Int64.sub a b
    | Insn.Mul -> Int64.mul a b
    | Insn.Div -> if b = 0L then 0L else Int64.unsigned_div a b
    | Insn.Mod -> if b = 0L then a else Int64.unsigned_rem a b
    | Insn.And -> Int64.logand a b
    | Insn.Or -> Int64.logor a b
    | Insn.Xor -> Int64.logxor a b
    | Insn.Lsh -> Int64.shift_left a (Int64.to_int b land 63)
    | Insn.Rsh -> Int64.shift_right_logical a (Int64.to_int b land 63)
    | Insn.Arsh -> Int64.shift_right a (Int64.to_int b land 63)

  let exec e ~ctx ?(cpu = 0) ?stats ?on_insn () =
    let stats = match stats with Some s -> s | None -> fresh_stats () in
    let st = acquire_state e in
    Fun.protect
      ~finally:(fun () -> st.Machine.in_use <- false)
      (fun () ->
        Machine.reset_state st ~ctx ~cpu ~stats;
        let insns = Prog.insns e.kie.Kflex_kie.Instrument.prog in
        let regs = Array.make 11 0L in
        regs.(1) <- ctx_base;
        regs.(10) <- Int64.add stack_base (Int64.of_int Prog.stack_size);
        let call_ctx = st.Machine.call_ctx in
        let start_cost = st.Machine.start_cost in
        (* unwind and helpers read registers from the live bank *)
        let sync_regs () =
          for i = 0 to 10 do
            U64.set st.Machine.regs i regs.(i)
          done
        in
        let src_val = function
          | Insn.Reg r -> regs.(Reg.to_int r)
          | Insn.Imm i -> i
        in
        let pc = ref 0 in
        let running = ref true in
        let ret = ref 0L in
        try
          (try
             while !running do
               let insn = insns.(!pc) in
               (match on_insn with Some f -> f !pc regs | None -> ());
               stats.insns <- stats.insns + 1;
               match insn with
               | Insn.Mov (d, s) ->
                   regs.(Reg.to_int d) <- src_val s;
                   incr pc
               | Insn.Neg d ->
                   regs.(Reg.to_int d) <- Int64.neg regs.(Reg.to_int d);
                   incr pc
               | Insn.Alu (op, d, s) ->
                   regs.(Reg.to_int d) <-
                     eval_alu op regs.(Reg.to_int d) (src_val s);
                   incr pc
               | Insn.Ldx (sz, d, s, off) ->
                   let addr =
                     Int64.add regs.(Reg.to_int s) (Int64.of_int off)
                   in
                   regs.(Reg.to_int d) <-
                     Machine.read st ~width:(Insn.size_bytes sz) addr;
                   incr pc
               | Insn.Stx (sz, d, off, s) ->
                   let addr =
                     Int64.add regs.(Reg.to_int d) (Int64.of_int off)
                   in
                   Machine.write st ~width:(Insn.size_bytes sz) addr
                     regs.(Reg.to_int s);
                   incr pc
               | Insn.St (sz, d, off, imm) ->
                   let addr =
                     Int64.add regs.(Reg.to_int d) (Int64.of_int off)
                   in
                   Machine.write st ~width:(Insn.size_bytes sz) addr imm;
                   incr pc
               | Insn.Xstore (sz, d, off, s) ->
                   let h =
                     match st.Machine.heap with
                     | Some h -> h
                     | None -> raise (Vm_fault Wild_access)
                   in
                   let addr =
                     Int64.add regs.(Reg.to_int d) (Int64.of_int off)
                   in
                   let v = regs.(Reg.to_int s) in
                   let v =
                     if Heap.is_shared h then Heap.translate_user h v else v
                   in
                   Machine.write st ~width:(Insn.size_bytes sz) addr v;
                   incr pc
               | Insn.Guard (_, r) ->
                   let h =
                     match st.Machine.heap with
                     | Some h -> h
                     | None -> raise (Vm_fault Wild_access)
                   in
                   stats.guards <- stats.guards + 1;
                   regs.(Reg.to_int r) <-
                     Int64.logor (Heap.kbase h)
                       (Int64.logand regs.(Reg.to_int r) (Heap.mask h));
                   incr pc
               | Insn.Checkpoint _ ->
                   stats.checkpoints <- stats.checkpoints + 1;
                   if !(e.cancel_flag) then raise (Vm_fault Ext_cancelled);
                   if total_cost stats - start_cost > e.quantum then begin
                     e.cancel_flag := true;
                     raise (Vm_fault Quantum_expired)
                   end;
                   incr pc
               | Insn.Atomic (op, sz, d, off, s) ->
                   let width = Insn.size_bytes sz in
                   let addr =
                     Int64.add regs.(Reg.to_int d) (Int64.of_int off)
                   in
                   let old = Machine.read st ~width addr in
                   let sv = regs.(Reg.to_int s) in
                   (match op with
                   | Insn.Atomic_add ->
                       Machine.write st ~width addr (Int64.add old sv)
                   | Insn.Atomic_or ->
                       Machine.write st ~width addr (Int64.logor old sv)
                   | Insn.Atomic_and ->
                       Machine.write st ~width addr (Int64.logand old sv)
                   | Insn.Atomic_xor ->
                       Machine.write st ~width addr (Int64.logxor old sv)
                   | Insn.Fetch_add ->
                       Machine.write st ~width addr (Int64.add old sv);
                       regs.(Reg.to_int s) <- old
                   | Insn.Fetch_or ->
                       Machine.write st ~width addr (Int64.logor old sv);
                       regs.(Reg.to_int s) <- old
                   | Insn.Fetch_and ->
                       Machine.write st ~width addr (Int64.logand old sv);
                       regs.(Reg.to_int s) <- old
                   | Insn.Fetch_xor ->
                       Machine.write st ~width addr (Int64.logxor old sv);
                       regs.(Reg.to_int s) <- old
                   | Insn.Xchg ->
                       Machine.write st ~width addr sv;
                       regs.(Reg.to_int s) <- old
                   | Insn.Cmpxchg ->
                       if old = regs.(0) then Machine.write st ~width addr sv;
                       regs.(0) <- old);
                   incr pc
               | Insn.Ja off -> pc := !pc + 1 + off
               | Insn.Jcond (c, a, s, off) ->
                   if eval_cond c regs.(Reg.to_int a) (src_val s) then
                     pc := !pc + 1 + off
                   else incr pc
               | Insn.Call name ->
                   stats.helper_calls <- stats.helper_calls + 1;
                   let h = find_helper e name in
                   for i = 0 to 4 do
                     U64.set call_ctx.args i regs.(i + 1)
                   done;
                   U64.set call_ctx.args Machine.ret_slot 0L;
                   (try h call_ctx
                    with Helper_stall ->
                      e.cancel_flag := true;
                      raise (Vm_fault Lock_stall));
                   regs.(0) <- U64.get call_ctx.args Machine.ret_slot;
                   incr pc
               | Insn.Exit ->
                   ret := regs.(0);
                   running := false
             done
           with exn ->
             st.Machine.fault_pc <- !pc;
             raise exn);
          Finished !ret
        with
        | (Vm_fault _ | Heap.Fault _) as exn ->
            sync_regs ();
            unwind e st exn)
end

let exec e ~ctx ?(cpu = 0) ?stats ?on_insn ?on_site ?(backend = `Interp) () =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let st = acquire_state e in
  Fun.protect
    ~finally:(fun () -> st.Machine.in_use <- false)
    (fun () ->
      Machine.reset_state st ~ctx ~cpu ~stats;
      try
        match (backend, on_insn, on_site) with
        | `Compiled, None, None ->
            let t, helpers = ensure_compiled e in
            st.Machine.helpers <- helpers;
            Jit.run t st;
            Finished st.Machine.ret
        | `Interp, None, None -> interp_fast e st
        | _ ->
            (* hooks force the interpreter: observation points only exist
               there *)
            interp_hooked e st ~on_insn ~on_site
      with (Vm_fault _ | Heap.Fault _) as exn -> unwind e st exn)
