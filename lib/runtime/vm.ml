open Kflex_bpf

(* The execution-state machinery (stats, call_ctx, memory windows, the
   reusable register/stack context) lives in [Machine], shared between this
   interpreter and the compiled backend in [Jit]. The aliases below keep
   [Vm] as the single public surface. *)

type fault_reason = Machine.fault_reason =
  | Page_fault
  | Guard_zone
  | Wild_access
  | Quantum_expired
  | Lock_stall
  | Ext_cancelled

type stats = Machine.stats = {
  mutable insns : int;
  mutable guards : int;
  mutable checkpoints : int;
  mutable helper_calls : int;
  mutable helper_cost : int;
}

let fresh_stats = Machine.fresh_stats
let total_cost = Machine.total_cost

type outcome = Machine.outcome =
  | Finished of int64
  | Cancelled of {
      orig_pc : int;
      reason : fault_reason;
      released : (string * string) list;
      ret : int64;
      ledger_leaked : int;
    }

type helper_outcome = Machine.helper_outcome = H_ret of int64 | H_stall

type call_ctx = Machine.call_ctx = {
  args : int64 array;
  mutable cpu : int;
  heap : Heap.t option;
  alloc : Alloc.t option;
  ledger : Ledger.t;
  mem_read : width:int -> int64 -> int64;
  mem_write : width:int -> int64 -> int64 -> unit;
  charge : int -> unit;
}

type helper = Machine.helper

exception Vm_fault = Machine.Vm_fault

let stack_base = Machine.stack_base
let ctx_base = Machine.ctx_base

(* --- builtin helpers -------------------------------------------------- *)

let get_heap c = match c.heap with Some h -> h | None -> raise (Vm_fault Wild_access)
let get_alloc c = match c.alloc with Some a -> a | None -> raise (Vm_fault Wild_access)

let h_malloc c =
  let a = get_alloc c in
  c.charge 20;
  match Alloc.alloc a ~cpu:c.cpu c.args.(0) with
  | Some off -> H_ret (Int64.add (Heap.kbase (get_heap c)) off)
  | None -> H_ret 0L

let h_free c =
  if c.args.(0) = 0L then H_ret 0L
  else begin
    let a = get_alloc c in
    let h = get_heap c in
    c.charge 15;
    let addr = Heap.sanitize h c.args.(0) in
    let off = Int64.sub addr (Heap.kbase h) in
    ignore (Alloc.free a ~cpu:c.cpu off);
    H_ret 0L
  end

(* Spin locks live in heap words: 0 = free, owner-tag otherwise. In the
   single-threaded VM a held lock cannot be released concurrently, so a
   contended acquire is a stall — precisely the §3.4 scenario where the
   extension eventually cancels. *)
let h_spin_lock c =
  let h = get_heap c in
  let addr = Heap.sanitize h c.args.(0) in
  c.charge 4;
  let v = Heap.read h ~width:8 addr in
  if v = 0L then begin
    Heap.write h ~width:8 addr (Int64.of_int (c.cpu + 1));
    Ledger.acquire c.ledger ~handle:addr ~destructor:"kflex_spin_unlock";
    H_ret addr
  end
  else H_stall

let h_spin_unlock c =
  let h = get_heap c in
  let addr = Heap.sanitize h c.args.(0) in
  c.charge 4;
  Heap.write h ~width:8 addr 0L;
  ignore (Ledger.release c.ledger ~handle:addr);
  H_ret 0L

let h_heap_base c = H_ret (Heap.kbase (get_heap c))

(* The PRNG and virtual clock behind [bpf_get_prandom_u32] /
   [bpf_ktime_get_ns] are exposed both as process-global helpers (the
   facade's single-CPU world) and as constructors over caller-owned state:
   the engine gives every shard its own stream so shards stay deterministic
   and race-free regardless of how events interleave across domains. *)

let prandom_helper state : helper =
 fun _ ->
  (* xorshift64*; deterministic for reproducible runs *)
  let x = !state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  state := x;
  H_ret (Int64.logand x 0xffff_ffffL)

let prandom_state = ref 0x853c49e6748fea9bL
let seed_prandom seed = prandom_state := Int64.logor seed 1L
let h_prandom = prandom_helper prandom_state

let ktime_helper clock : helper =
 fun _ ->
  clock := Int64.add !clock 1L;
  H_ret !clock

let vtime = ref 0L
let set_vtime v = vtime := v
let h_ktime = ktime_helper vtime

let h_cpu c = H_ret (Int64.of_int c.cpu)

let builtin_helpers =
  [
    ("kflex_malloc", h_malloc);
    ("kflex_free", h_free);
    ("kflex_spin_lock", h_spin_lock);
    ("kflex_spin_unlock", h_spin_unlock);
    ("kflex_heap_base", h_heap_base);
    ("bpf_get_prandom_u32", h_prandom);
    ("bpf_ktime_get_ns", h_ktime);
    ("bpf_get_smp_processor_id", h_cpu);
  ]

(* --- extensions ------------------------------------------------------- *)

type backend = [ `Interp | `Compiled ]

type ext = {
  kie : Kflex_kie.Instrument.t;
  heap : Heap.t option;
  alloc : Alloc.t option;
  helpers : (string, helper) Hashtbl.t;
  quantum : int;
  default_ret : int64;
  on_cancel : (int64 -> int64) option;
  cancel_flag : bool ref;
  mutable exec_state : Machine.state option;
      (* the reusable execution context (satellite: hoisted allocations) *)
  mutable jit : (Jit.t * helper array) option;
      (* compiled form + helper table linked against [helpers] *)
}

let create ?heap ?alloc ?(quantum = 100_000_000) ?(default_ret = 0L) ?on_cancel
    ~helpers kie =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (n, h) -> Hashtbl.replace tbl n h) builtin_helpers;
  List.iter (fun (n, h) -> Hashtbl.replace tbl n h) helpers;
  {
    kie;
    heap;
    alloc;
    helpers = tbl;
    quantum;
    default_ret;
    on_cancel;
    cancel_flag = ref false;
    exec_state = None;
    jit = None;
  }

let cancel e = e.cancel_flag := true
let cancelled e = !(e.cancel_flag)
let reset_cancel e = e.cancel_flag := false
let kie e = e.kie

let eval_cond = Machine.eval_cond
let eval_alu = Machine.eval_alu

(* --- compiled backend plumbing ---------------------------------------- *)

let link_helpers e names =
  Array.map
    (fun n ->
      match Hashtbl.find_opt e.helpers n with
      | Some h -> h
      | None -> fun _ -> failwith ("Vm.exec: unknown helper " ^ n))
    names

let set_compiled e t = e.jit <- Some (t, link_helpers e (Jit.helper_names t))
let has_compiled e = match e.jit with Some _ -> true | None -> false

let precompile ?fuse e =
  let t = Jit.compile ?fuse e.kie.Kflex_kie.Instrument.prog in
  set_compiled e t;
  t

let ensure_compiled e =
  match e.jit with
  | Some p -> p
  | None ->
      ignore (precompile e);
      (match e.jit with Some p -> p | None -> assert false)

(* --- execution context reuse ------------------------------------------ *)

let acquire_state e =
  match e.exec_state with
  | Some st when not st.Machine.in_use ->
      st.Machine.in_use <- true;
      st
  | Some _ ->
      (* reentrant invocation (e.g. a helper running an extension): give it
         a throwaway context rather than corrupting the live one *)
      Machine.create_state ?heap:e.heap ?alloc:e.alloc ~quantum:e.quantum
        ~cancel:e.cancel_flag ()
  | None ->
      let st =
        Machine.create_state ?heap:e.heap ?alloc:e.alloc ~quantum:e.quantum
          ~cancel:e.cancel_flag ()
      in
      st.Machine.in_use <- true;
      e.exec_state <- Some st;
      st

(* --- the interpreter -------------------------------------------------- *)

(* Hot loop with the hook checks hoisted out entirely: this variant runs
   when neither [on_insn] nor [on_site] is supplied. *)
let interp_fast e (st : Machine.state) =
  let insns = Prog.insns e.kie.Kflex_kie.Instrument.prog in
  let regs = st.Machine.regs in
  let stats = st.Machine.stats in
  let start_cost = st.Machine.start_cost in
  let call_ctx = st.Machine.call_ctx in
  let src_val = function Insn.Reg r -> regs.(Reg.to_int r) | Insn.Imm i -> i in
  let pc = ref 0 in
  let running = ref true in
  let ret = ref 0L in
  (try
     while !running do
       let insn = insns.(!pc) in
       stats.insns <- stats.insns + 1;
       match insn with
       | Insn.Mov (d, s) ->
           regs.(Reg.to_int d) <- src_val s;
           incr pc
       | Insn.Neg d ->
           regs.(Reg.to_int d) <- Int64.neg regs.(Reg.to_int d);
           incr pc
       | Insn.Alu (op, d, s) ->
           regs.(Reg.to_int d) <- eval_alu op regs.(Reg.to_int d) (src_val s);
           incr pc
       | Insn.Ldx (sz, d, s, off) ->
           let addr = Int64.add regs.(Reg.to_int s) (Int64.of_int off) in
           regs.(Reg.to_int d) <-
             Machine.read st ~width:(Insn.size_bytes sz) addr;
           incr pc
       | Insn.Stx (sz, d, off, s) ->
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           Machine.write st ~width:(Insn.size_bytes sz) addr
             regs.(Reg.to_int s);
           incr pc
       | Insn.St (sz, d, off, imm) ->
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           Machine.write st ~width:(Insn.size_bytes sz) addr imm;
           incr pc
       | Insn.Xstore (sz, d, off, s) ->
           let h =
             match st.Machine.heap with
             | Some h -> h
             | None -> raise (Vm_fault Wild_access)
           in
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           let v = regs.(Reg.to_int s) in
           let v = if Heap.is_shared h then Heap.translate_user h v else v in
           Machine.write st ~width:(Insn.size_bytes sz) addr v;
           incr pc
       | Insn.Guard (_, r) ->
           let h =
             match st.Machine.heap with
             | Some h -> h
             | None -> raise (Vm_fault Wild_access)
           in
           stats.guards <- stats.guards + 1;
           regs.(Reg.to_int r) <- Heap.sanitize h regs.(Reg.to_int r);
           incr pc
       | Insn.Checkpoint _ ->
           (* the [*terminate] load: one unit of cost; the watchdog *)
           stats.checkpoints <- stats.checkpoints + 1;
           if !(e.cancel_flag) then raise (Vm_fault Ext_cancelled);
           if total_cost stats - start_cost > e.quantum then begin
             e.cancel_flag := true;
             raise (Vm_fault Quantum_expired)
           end;
           incr pc
       | Insn.Atomic (op, sz, d, off, s) ->
           let width = Insn.size_bytes sz in
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           let old = Machine.read st ~width addr in
           let sv = regs.(Reg.to_int s) in
           (match op with
           | Insn.Atomic_add -> Machine.write st ~width addr (Int64.add old sv)
           | Insn.Atomic_or -> Machine.write st ~width addr (Int64.logor old sv)
           | Insn.Atomic_and ->
               Machine.write st ~width addr (Int64.logand old sv)
           | Insn.Atomic_xor ->
               Machine.write st ~width addr (Int64.logxor old sv)
           | Insn.Fetch_add ->
               Machine.write st ~width addr (Int64.add old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Fetch_or ->
               Machine.write st ~width addr (Int64.logor old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Fetch_and ->
               Machine.write st ~width addr (Int64.logand old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Fetch_xor ->
               Machine.write st ~width addr (Int64.logxor old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Xchg ->
               Machine.write st ~width addr sv;
               regs.(Reg.to_int s) <- old
           | Insn.Cmpxchg ->
               if old = regs.(0) then Machine.write st ~width addr sv;
               regs.(0) <- old);
           incr pc
       | Insn.Ja off -> pc := !pc + 1 + off
       | Insn.Jcond (c, a, s, off) ->
           if eval_cond c regs.(Reg.to_int a) (src_val s) then
             pc := !pc + 1 + off
           else incr pc
       | Insn.Call name -> (
           stats.helper_calls <- stats.helper_calls + 1;
           let h =
             match Hashtbl.find_opt e.helpers name with
             | Some h -> h
             | None -> failwith ("Vm.exec: unknown helper " ^ name)
           in
           for i = 0 to 4 do
             call_ctx.args.(i) <- regs.(i + 1)
           done;
           match h call_ctx with
           | H_ret v ->
               regs.(0) <- v;
               incr pc
           | H_stall ->
               e.cancel_flag := true;
               raise (Vm_fault Lock_stall))
       | Insn.Exit ->
           ret := regs.(0);
           running := false
     done
   with exn ->
     st.Machine.fault_pc <- !pc;
     raise exn);
  Finished !ret

(* Instrumented loop: identical semantics plus the [on_insn] / [on_site]
   observation points. Lives separately so the fast loop never tests for
   hook presence. *)
let interp_hooked e (st : Machine.state) ~on_insn ~on_site =
  let insns = Prog.insns e.kie.Kflex_kie.Instrument.prog in
  let regs = st.Machine.regs in
  let stats = st.Machine.stats in
  let start_cost = st.Machine.start_cost in
  let call_ctx = st.Machine.call_ctx in
  let ctx_size = st.Machine.ctx_size in
  let src_val = function Insn.Reg r -> regs.(Reg.to_int r) | Insn.Imm i -> i in
  let pc = ref 0 in
  let running = ref true in
  let ret = ref 0L in
  (try
     while !running do
       let insn = insns.(!pc) in
       (match on_insn with Some f -> f !pc regs | None -> ());
       stats.insns <- stats.insns + 1;
       (* The watchdog: quantum measured in cost units per invocation. *)
       (match insn with
       | Insn.Checkpoint _ ->
           stats.checkpoints <- stats.checkpoints + 1;
           if !(e.cancel_flag) then raise (Vm_fault Ext_cancelled);
           if total_cost stats - start_cost > e.quantum then begin
             e.cancel_flag := true;
             raise (Vm_fault Quantum_expired)
           end
       | _ -> ());
       (* Cancellation-injection sites: every Checkpoint (C1) plus every
          memory access that leaves the stack/ctx windows (a potential C2
          fault). The callback sees sites in execution order; returning
          [true] cancels as if a sibling CPU had (§4.3). *)
       (match on_site with
       | None -> ()
       | Some f ->
           let outside addr width =
             not
               (Machine.in_window stack_base Prog.stack_size addr width
               || Machine.in_window ctx_base ctx_size addr width)
           in
           let is_site =
             match insn with
             | Insn.Checkpoint _ -> true
             | Insn.Ldx (sz, _, s, off) ->
                 outside
                   (Int64.add regs.(Reg.to_int s) (Int64.of_int off))
                   (Insn.size_bytes sz)
             | Insn.Stx (sz, d, off, _)
             | Insn.St (sz, d, off, _)
             | Insn.Xstore (sz, d, off, _)
             | Insn.Atomic (_, sz, d, off, _) ->
                 outside
                   (Int64.add regs.(Reg.to_int d) (Int64.of_int off))
                   (Insn.size_bytes sz)
             | _ -> false
           in
           if is_site && f () then raise (Vm_fault Ext_cancelled));
       match insn with
       | Insn.Mov (d, s) ->
           regs.(Reg.to_int d) <- src_val s;
           incr pc
       | Insn.Neg d ->
           regs.(Reg.to_int d) <- Int64.neg regs.(Reg.to_int d);
           incr pc
       | Insn.Alu (op, d, s) ->
           regs.(Reg.to_int d) <- eval_alu op regs.(Reg.to_int d) (src_val s);
           incr pc
       | Insn.Ldx (sz, d, s, off) ->
           let addr = Int64.add regs.(Reg.to_int s) (Int64.of_int off) in
           regs.(Reg.to_int d) <-
             Machine.read st ~width:(Insn.size_bytes sz) addr;
           incr pc
       | Insn.Stx (sz, d, off, s) ->
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           Machine.write st ~width:(Insn.size_bytes sz) addr
             regs.(Reg.to_int s);
           incr pc
       | Insn.St (sz, d, off, imm) ->
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           Machine.write st ~width:(Insn.size_bytes sz) addr imm;
           incr pc
       | Insn.Xstore (sz, d, off, s) ->
           let h =
             match st.Machine.heap with
             | Some h -> h
             | None -> raise (Vm_fault Wild_access)
           in
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           let v = regs.(Reg.to_int s) in
           let v = if Heap.is_shared h then Heap.translate_user h v else v in
           Machine.write st ~width:(Insn.size_bytes sz) addr v;
           incr pc
       | Insn.Guard (_, r) ->
           let h =
             match st.Machine.heap with
             | Some h -> h
             | None -> raise (Vm_fault Wild_access)
           in
           stats.guards <- stats.guards + 1;
           regs.(Reg.to_int r) <- Heap.sanitize h regs.(Reg.to_int r);
           incr pc
       | Insn.Checkpoint _ ->
           (* cost and watchdog handled above *)
           incr pc
       | Insn.Atomic (op, sz, d, off, s) ->
           let width = Insn.size_bytes sz in
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           let old = Machine.read st ~width addr in
           let sv = regs.(Reg.to_int s) in
           (match op with
           | Insn.Atomic_add -> Machine.write st ~width addr (Int64.add old sv)
           | Insn.Atomic_or -> Machine.write st ~width addr (Int64.logor old sv)
           | Insn.Atomic_and ->
               Machine.write st ~width addr (Int64.logand old sv)
           | Insn.Atomic_xor ->
               Machine.write st ~width addr (Int64.logxor old sv)
           | Insn.Fetch_add ->
               Machine.write st ~width addr (Int64.add old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Fetch_or ->
               Machine.write st ~width addr (Int64.logor old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Fetch_and ->
               Machine.write st ~width addr (Int64.logand old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Fetch_xor ->
               Machine.write st ~width addr (Int64.logxor old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Xchg ->
               Machine.write st ~width addr sv;
               regs.(Reg.to_int s) <- old
           | Insn.Cmpxchg ->
               if old = regs.(0) then Machine.write st ~width addr sv;
               regs.(0) <- old);
           incr pc
       | Insn.Ja off -> pc := !pc + 1 + off
       | Insn.Jcond (c, a, s, off) ->
           if eval_cond c regs.(Reg.to_int a) (src_val s) then
             pc := !pc + 1 + off
           else incr pc
       | Insn.Call name -> (
           stats.helper_calls <- stats.helper_calls + 1;
           let h =
             match Hashtbl.find_opt e.helpers name with
             | Some h -> h
             | None -> failwith ("Vm.exec: unknown helper " ^ name)
           in
           for i = 0 to 4 do
             call_ctx.args.(i) <- regs.(i + 1)
           done;
           match h call_ctx with
           | H_ret v ->
               regs.(0) <- v;
               incr pc
           | H_stall ->
               e.cancel_flag := true;
               raise (Vm_fault Lock_stall))
       | Insn.Exit ->
           ret := regs.(0);
           running := false
     done
   with exn ->
     st.Machine.fault_pc <- !pc;
     raise exn);
  Finished !ret

(* Cancellation: unwind via the static object table of the faulting
   cancellation point (§3.3). *)
let unwind e (st : Machine.state) exn =
  let reason =
    match exn with
    | Vm_fault r -> r
    | Heap.Fault { reason; _ } ->
        if reason = "unpopulated heap page" then Page_fault
        else if reason = "guard zone access" then Guard_zone
        else Wild_access
    | _ -> assert false
  in
  let regs = st.Machine.regs in
  let stack = st.Machine.stack in
  let call_ctx = st.Machine.call_ctx in
  let orig_pc = e.kie.Kflex_kie.Instrument.orig_of_new.(st.Machine.fault_pc) in
  let table = e.kie.Kflex_kie.Instrument.tables.(orig_pc) in
  let released = ref [] in
  List.iter
    (fun (entry : Kflex_kie.Instrument.obj_entry) ->
      let v =
        match entry.Kflex_kie.Instrument.loc with
        | Kflex_verifier.State.L_reg r -> regs.(Reg.to_int r)
        | Kflex_verifier.State.L_slot i -> Bytes.get_int64_le stack (i * 8)
      in
      if v <> 0L then begin
        (match
           Hashtbl.find_opt e.helpers entry.Kflex_kie.Instrument.destructor
         with
        | Some d ->
            for i = 0 to 4 do
              call_ctx.args.(i) <- 0L
            done;
            call_ctx.args.(0) <- v;
            ignore (d call_ctx)
        | None -> ());
        released :=
          (entry.Kflex_kie.Instrument.klass, entry.Kflex_kie.Instrument.destructor)
          :: !released
      end)
    table;
  let ret =
    match e.on_cancel with Some f -> f e.default_ret | None -> e.default_ret
  in
  Cancelled
    {
      orig_pc;
      reason;
      released = List.rev !released;
      ret;
      ledger_leaked = Ledger.count st.Machine.ledger;
    }

let exec e ~ctx ?(cpu = 0) ?stats ?on_insn ?on_site ?(backend = `Interp) () =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let st = acquire_state e in
  Fun.protect
    ~finally:(fun () -> st.Machine.in_use <- false)
    (fun () ->
      Machine.reset_state st ~ctx ~cpu ~stats;
      try
        match (backend, on_insn, on_site) with
        | `Compiled, None, None ->
            let t, helpers = ensure_compiled e in
            st.Machine.helpers <- helpers;
            Jit.run t st;
            Finished st.Machine.ret
        | `Interp, None, None -> interp_fast e st
        | _ ->
            (* hooks force the interpreter: observation points only exist
               there *)
            interp_hooked e st ~on_insn ~on_site
      with (Vm_fault _ | Heap.Fault _) as exn -> unwind e st exn)
