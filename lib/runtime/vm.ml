open Kflex_bpf

type fault_reason =
  | Page_fault
  | Guard_zone
  | Wild_access
  | Quantum_expired
  | Lock_stall
  | Ext_cancelled

type stats = {
  mutable insns : int;
  mutable guards : int;
  mutable checkpoints : int;
  mutable helper_calls : int;
  mutable helper_cost : int;
}

let fresh_stats () =
  { insns = 0; guards = 0; checkpoints = 0; helper_calls = 0; helper_cost = 0 }

let total_cost s = s.insns + s.helper_cost

type outcome =
  | Finished of int64
  | Cancelled of {
      orig_pc : int;
      reason : fault_reason;
      released : (string * string) list;
      ret : int64;
      ledger_leaked : int;
    }

type helper_outcome = H_ret of int64 | H_stall

type call_ctx = {
  args : int64 array;
  cpu : int;
  heap : Heap.t option;
  alloc : Alloc.t option;
  ledger : Ledger.t;
  mem_read : width:int -> int64 -> int64;
  mem_write : width:int -> int64 -> int64 -> unit;
  charge : int -> unit;
}

type helper = call_ctx -> helper_outcome

exception Vm_fault of fault_reason

let stack_base = 0x2000_0000_0000L
let ctx_base = 0x1000_0000_0000L

(* --- builtin helpers -------------------------------------------------- *)

let get_heap c = match c.heap with Some h -> h | None -> raise (Vm_fault Wild_access)
let get_alloc c = match c.alloc with Some a -> a | None -> raise (Vm_fault Wild_access)

let h_malloc c =
  let a = get_alloc c in
  c.charge 20;
  match Alloc.alloc a ~cpu:c.cpu c.args.(0) with
  | Some off -> H_ret (Int64.add (Heap.kbase (get_heap c)) off)
  | None -> H_ret 0L

let h_free c =
  if c.args.(0) = 0L then H_ret 0L
  else begin
    let a = get_alloc c in
    let h = get_heap c in
    c.charge 15;
    let addr = Heap.sanitize h c.args.(0) in
    let off = Int64.sub addr (Heap.kbase h) in
    ignore (Alloc.free a ~cpu:c.cpu off);
    H_ret 0L
  end

(* Spin locks live in heap words: 0 = free, owner-tag otherwise. In the
   single-threaded VM a held lock cannot be released concurrently, so a
   contended acquire is a stall — precisely the §3.4 scenario where the
   extension eventually cancels. *)
let h_spin_lock c =
  let h = get_heap c in
  let addr = Heap.sanitize h c.args.(0) in
  c.charge 4;
  let v = Heap.read h ~width:8 addr in
  if v = 0L then begin
    Heap.write h ~width:8 addr (Int64.of_int (c.cpu + 1));
    Ledger.acquire c.ledger ~handle:addr ~destructor:"kflex_spin_unlock";
    H_ret addr
  end
  else H_stall

let h_spin_unlock c =
  let h = get_heap c in
  let addr = Heap.sanitize h c.args.(0) in
  c.charge 4;
  Heap.write h ~width:8 addr 0L;
  ignore (Ledger.release c.ledger ~handle:addr);
  H_ret 0L

let h_heap_base c = H_ret (Heap.kbase (get_heap c))

let prandom_state = ref 0x853c49e6748fea9bL

let seed_prandom seed = prandom_state := Int64.logor seed 1L

let h_prandom _ =
  (* xorshift64*; deterministic for reproducible runs *)
  let x = !prandom_state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  prandom_state := x;
  H_ret (Int64.logand x 0xffff_ffffL)

let vtime = ref 0L

let h_ktime _ =
  vtime := Int64.add !vtime 1L;
  H_ret !vtime

let h_cpu c = H_ret (Int64.of_int c.cpu)

let builtin_helpers =
  [
    ("kflex_malloc", h_malloc);
    ("kflex_free", h_free);
    ("kflex_spin_lock", h_spin_lock);
    ("kflex_spin_unlock", h_spin_unlock);
    ("kflex_heap_base", h_heap_base);
    ("bpf_get_prandom_u32", h_prandom);
    ("bpf_ktime_get_ns", h_ktime);
    ("bpf_get_smp_processor_id", h_cpu);
  ]

(* --- the interpreter -------------------------------------------------- *)

type ext = {
  kie : Kflex_kie.Instrument.t;
  heap : Heap.t option;
  alloc : Alloc.t option;
  helpers : (string, helper) Hashtbl.t;
  quantum : int;
  default_ret : int64;
  on_cancel : (int64 -> int64) option;
  cancel_flag : bool ref;
}

let create ?heap ?alloc ?(quantum = 100_000_000) ?(default_ret = 0L) ?on_cancel
    ~helpers kie =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (n, h) -> Hashtbl.replace tbl n h) builtin_helpers;
  List.iter (fun (n, h) -> Hashtbl.replace tbl n h) helpers;
  {
    kie;
    heap;
    alloc;
    helpers = tbl;
    quantum;
    default_ret;
    on_cancel;
    cancel_flag = ref false;
  }

let cancel e = e.cancel_flag := true
let cancelled e = !(e.cancel_flag)
let reset_cancel e = e.cancel_flag := false
let kie e = e.kie

let u64_lt a b = Int64.unsigned_compare a b < 0
let u64_le a b = Int64.unsigned_compare a b <= 0

let eval_cond c a b =
  match c with
  | Insn.Eq -> Int64.equal a b
  | Insn.Ne -> not (Int64.equal a b)
  | Insn.Lt -> u64_lt a b
  | Insn.Le -> u64_le a b
  | Insn.Gt -> u64_lt b a
  | Insn.Ge -> u64_le b a
  | Insn.Slt -> Int64.compare a b < 0
  | Insn.Sle -> Int64.compare a b <= 0
  | Insn.Sgt -> Int64.compare a b > 0
  | Insn.Sge -> Int64.compare a b >= 0
  | Insn.Set -> Int64.logand a b <> 0L

let eval_alu op a b =
  match op with
  | Insn.Add -> Int64.add a b
  | Insn.Sub -> Int64.sub a b
  | Insn.Mul -> Int64.mul a b
  | Insn.Div -> if b = 0L then 0L else Int64.unsigned_div a b
  | Insn.Mod -> if b = 0L then a else Int64.unsigned_rem a b
  | Insn.And -> Int64.logand a b
  | Insn.Or -> Int64.logor a b
  | Insn.Xor -> Int64.logxor a b
  | Insn.Lsh -> Int64.shift_left a (Int64.to_int b land 63)
  | Insn.Rsh -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Insn.Arsh -> Int64.shift_right a (Int64.to_int b land 63)

let exec e ~ctx ?(cpu = 0) ?stats ?on_insn ?on_site () =
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let prog = e.kie.Kflex_kie.Instrument.prog in
  let insns = Prog.insns prog in
  let regs = Array.make 11 0L in
  let stack = Bytes.make Prog.stack_size '\000' in
  let ledger = Ledger.create () in
  regs.(1) <- ctx_base;
  regs.(10) <- Int64.add stack_base (Int64.of_int Prog.stack_size);
  let ctx_size = Bytes.length ctx in
  let start_cost = total_cost stats in
  (* Window tests compare offsets, not [addr + width]: adding the width to an
     address near [Int64.max_int] wraps negative and would misclassify a wild
     access as an in-window one. *)
  let in_window base size addr width =
    let off = Int64.sub addr base in
    Int64.compare off 0L >= 0
    && Int64.compare off (Int64.of_int (size - width)) <= 0
  in
  let mem_read ~width addr =
    if in_window stack_base Prog.stack_size addr width then begin
      let i = Int64.to_int (Int64.sub addr stack_base) in
      match width with
      | 1 -> Int64.of_int (Char.code (Bytes.get stack i))
      | 2 -> Int64.of_int (Bytes.get_uint16_le stack i)
      | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le stack i)) 0xffff_ffffL
      | 8 -> Bytes.get_int64_le stack i
      | _ -> assert false
    end
    else if in_window ctx_base ctx_size addr width then begin
      let i = Int64.to_int (Int64.sub addr ctx_base) in
      match width with
      | 1 -> Int64.of_int (Char.code (Bytes.get ctx i))
      | 2 -> Int64.of_int (Bytes.get_uint16_le ctx i)
      | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le ctx i)) 0xffff_ffffL
      | 8 -> Bytes.get_int64_le ctx i
      | _ -> assert false
    end
    else
      match e.heap with
      | Some h -> Heap.read h ~width addr
      | None -> raise (Vm_fault Wild_access)
  in
  let mem_write ~width addr v =
    if in_window stack_base Prog.stack_size addr width then begin
      let i = Int64.to_int (Int64.sub addr stack_base) in
      match width with
      | 1 -> Bytes.set stack i (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
      | 2 -> Bytes.set_uint16_le stack i (Int64.to_int (Int64.logand v 0xffffL))
      | 4 -> Bytes.set_int32_le stack i (Int64.to_int32 v)
      | 8 -> Bytes.set_int64_le stack i v
      | _ -> assert false
    end
    else if addr >= ctx_base && addr < Int64.add ctx_base (Int64.of_int ctx_size)
    then raise (Vm_fault Wild_access) (* ctx is read-only; verifier forbids *)
    else
      match e.heap with
      | Some h -> Heap.write h ~width addr v
      | None -> raise (Vm_fault Wild_access)
  in
  let call_ctx =
    {
      args = Array.make 5 0L;
      cpu;
      heap = e.heap;
      alloc = e.alloc;
      ledger;
      mem_read;
      mem_write;
      charge = (fun n -> stats.helper_cost <- stats.helper_cost + n);
    }
  in
  let src_val = function Insn.Reg r -> regs.(Reg.to_int r) | Insn.Imm i -> i in
  let pc = ref 0 in
  let result = ref None in
  (try
     while !result = None do
       let insn = insns.(!pc) in
       (match on_insn with Some f -> f !pc regs | None -> ());
       stats.insns <- stats.insns + 1;
       (* The watchdog: quantum measured in cost units per invocation. *)
       (match insn with
       | Insn.Checkpoint _ ->
           stats.checkpoints <- stats.checkpoints + 1;
           if !(e.cancel_flag) then raise (Vm_fault Ext_cancelled);
           if total_cost stats - start_cost > e.quantum then begin
             e.cancel_flag := true;
             raise (Vm_fault Quantum_expired)
           end
       | _ -> ());
       (* Cancellation-injection sites: every Checkpoint (C1) plus every
          memory access that leaves the stack/ctx windows (a potential C2
          fault). The callback sees sites in execution order; returning
          [true] cancels as if a sibling CPU had (§4.3). *)
       (match on_site with
       | None -> ()
       | Some f ->
           let outside addr width =
             not
               (in_window stack_base Prog.stack_size addr width
               || in_window ctx_base ctx_size addr width)
           in
           let is_site =
             match insn with
             | Insn.Checkpoint _ -> true
             | Insn.Ldx (sz, _, s, off) ->
                 outside
                   (Int64.add regs.(Reg.to_int s) (Int64.of_int off))
                   (Insn.size_bytes sz)
             | Insn.Stx (sz, d, off, _)
             | Insn.St (sz, d, off, _)
             | Insn.Xstore (sz, d, off, _)
             | Insn.Atomic (_, sz, d, off, _) ->
                 outside
                   (Int64.add regs.(Reg.to_int d) (Int64.of_int off))
                   (Insn.size_bytes sz)
             | _ -> false
           in
           if is_site && f () then raise (Vm_fault Ext_cancelled));
       (match insn with
       | Insn.Mov (d, s) ->
           regs.(Reg.to_int d) <- src_val s;
           incr pc
       | Insn.Neg d ->
           regs.(Reg.to_int d) <- Int64.neg regs.(Reg.to_int d);
           incr pc
       | Insn.Alu (op, d, s) ->
           regs.(Reg.to_int d) <- eval_alu op regs.(Reg.to_int d) (src_val s);
           incr pc
       | Insn.Ldx (sz, d, s, off) ->
           let addr = Int64.add regs.(Reg.to_int s) (Int64.of_int off) in
           regs.(Reg.to_int d) <- mem_read ~width:(Insn.size_bytes sz) addr;
           incr pc
       | Insn.Stx (sz, d, off, s) ->
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           mem_write ~width:(Insn.size_bytes sz) addr regs.(Reg.to_int s);
           incr pc
       | Insn.St (sz, d, off, imm) ->
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           mem_write ~width:(Insn.size_bytes sz) addr imm;
           incr pc
       | Insn.Xstore (sz, d, off, s) ->
           let h = match e.heap with Some h -> h | None -> raise (Vm_fault Wild_access) in
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           let v = regs.(Reg.to_int s) in
           let v = if Heap.is_shared h then Heap.translate_user h v else v in
           mem_write ~width:(Insn.size_bytes sz) addr v;
           incr pc
       | Insn.Guard (_, r) ->
           let h = match e.heap with Some h -> h | None -> raise (Vm_fault Wild_access) in
           stats.guards <- stats.guards + 1;
           regs.(Reg.to_int r) <- Heap.sanitize h regs.(Reg.to_int r);
           incr pc
       | Insn.Checkpoint _ ->
           (* the [*terminate] load: one unit of cost, handled above *)
           incr pc
       | Insn.Atomic (op, sz, d, off, s) ->
           let width = Insn.size_bytes sz in
           let addr = Int64.add regs.(Reg.to_int d) (Int64.of_int off) in
           let old = mem_read ~width addr in
           let sv = regs.(Reg.to_int s) in
           (match op with
           | Insn.Atomic_add -> mem_write ~width addr (Int64.add old sv)
           | Insn.Atomic_or -> mem_write ~width addr (Int64.logor old sv)
           | Insn.Atomic_and -> mem_write ~width addr (Int64.logand old sv)
           | Insn.Atomic_xor -> mem_write ~width addr (Int64.logxor old sv)
           | Insn.Fetch_add ->
               mem_write ~width addr (Int64.add old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Fetch_or ->
               mem_write ~width addr (Int64.logor old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Fetch_and ->
               mem_write ~width addr (Int64.logand old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Fetch_xor ->
               mem_write ~width addr (Int64.logxor old sv);
               regs.(Reg.to_int s) <- old
           | Insn.Xchg ->
               mem_write ~width addr sv;
               regs.(Reg.to_int s) <- old
           | Insn.Cmpxchg ->
               if old = regs.(0) then mem_write ~width addr sv;
               regs.(0) <- old);
           incr pc
       | Insn.Ja off -> pc := !pc + 1 + off
       | Insn.Jcond (c, a, s, off) ->
           if eval_cond c regs.(Reg.to_int a) (src_val s) then
             pc := !pc + 1 + off
           else incr pc
       | Insn.Call name -> (
           stats.helper_calls <- stats.helper_calls + 1;
           let h =
             match Hashtbl.find_opt e.helpers name with
             | Some h -> h
             | None -> failwith ("Vm.exec: unknown helper " ^ name)
           in
           for i = 0 to 4 do
             call_ctx.args.(i) <- regs.(i + 1)
           done;
           match h call_ctx with
           | H_ret v ->
               regs.(0) <- v;
               incr pc
           | H_stall ->
               e.cancel_flag := true;
               raise (Vm_fault Lock_stall))
       | Insn.Exit -> result := Some (Finished regs.(0)))
     done
   with
  | (Vm_fault _ | Heap.Fault _) as exn ->
    let reason =
      match exn with
      | Vm_fault r -> r
      | Heap.Fault { reason; _ } ->
          if reason = "unpopulated heap page" then Page_fault
          else if reason = "guard zone access" then Guard_zone
          else Wild_access
      | _ -> assert false
    in
    (* Cancellation: unwind via the static object table of the faulting
       cancellation point (§3.3). *)
    let orig_pc = e.kie.Kflex_kie.Instrument.orig_of_new.(!pc) in
    let table = e.kie.Kflex_kie.Instrument.tables.(orig_pc) in
    let released = ref [] in
    List.iter
      (fun (entry : Kflex_kie.Instrument.obj_entry) ->
        let v =
          match entry.Kflex_kie.Instrument.loc with
          | Kflex_verifier.State.L_reg r -> regs.(Reg.to_int r)
          | Kflex_verifier.State.L_slot i -> Bytes.get_int64_le stack (i * 8)
        in
        if v <> 0L then begin
          (match Hashtbl.find_opt e.helpers entry.Kflex_kie.Instrument.destructor with
          | Some d ->
              for i = 0 to 4 do
                call_ctx.args.(i) <- 0L
              done;
              call_ctx.args.(0) <- v;
              ignore (d call_ctx)
          | None -> ());
          released :=
            (entry.Kflex_kie.Instrument.klass, entry.Kflex_kie.Instrument.destructor)
            :: !released
        end)
      table;
    let ret =
      match e.on_cancel with Some f -> f e.default_ret | None -> e.default_ret
    in
    result :=
      Some
        (Cancelled
           {
             orig_pc;
             reason;
             released = List.rev !released;
             ret;
             ledger_leaked = Ledger.count ledger;
           }));
  match !result with Some o -> o | None -> assert false
