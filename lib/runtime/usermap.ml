type t = { heap : Heap.t; ubase : int64 }

let attach heap =
  match Heap.ubase heap with
  | Some ubase -> { heap; ubase }
  | None -> invalid_arg "Usermap.attach: heap is not shared"

let heap t = t.heap

let off_of_addr t addr =
  match Heap.offset_of_addr t.heap addr with
  | Some off when off >= 0L && off < Heap.size t.heap -> off
  | _ -> invalid_arg (Printf.sprintf "Usermap: address 0x%Lx outside the mapping" addr)

let read t ~width addr = Heap.read_off t.heap ~width (off_of_addr t addr)
let write t ~width addr v = Heap.write_off t.heap ~width (off_of_addr t addr) v
let addr_of_off t off = Int64.add t.ubase off

let is_heap_addr t addr =
  ignore t.ubase;
  match Heap.offset_of_addr t.heap addr with
  | Some off -> off >= 0L && off < Heap.size t.heap
  | None -> false

(* user-side lock word protocol: 0 free, non-zero owner tag *)
let user_tag = 0x1000L

let try_lock t ~off ~slice ~now =
  if Heap.read_off t.heap ~width:8 off = 0L then begin
    Heap.write_off t.heap ~width:8 off user_tag;
    Timeslice.lock_acquired slice ~now;
    true
  end
  else false

let unlock t ~off ~slice =
  Heap.write_off t.heap ~width:8 off 0L;
  Timeslice.lock_released slice
