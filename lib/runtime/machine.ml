open Kflex_bpf

type fault_reason =
  | Page_fault
  | Guard_zone
  | Wild_access
  | Quantum_expired
  | Lock_stall
  | Ext_cancelled

type stats = {
  mutable insns : int;
  mutable guards : int;
  mutable checkpoints : int;
  mutable helper_calls : int;
  mutable helper_cost : int;
}

let fresh_stats () =
  { insns = 0; guards = 0; checkpoints = 0; helper_calls = 0; helper_cost = 0 }

let total_cost s = s.insns + s.helper_cost

type outcome =
  | Finished of int64
  | Cancelled of {
      orig_pc : int;
      reason : fault_reason;
      released : (string * string) list;
      ret : int64;
      ledger_leaked : int;
    }

(* Helper ABI: arguments r1–r5 and the return value travel through an
   unboxed bank ([args] slots 0–4, return in slot 5) instead of a boxed
   [int64 array] and an [H_ret of int64] sum — either of which allocates on
   every call. A helper writes its result with [set_ret] (the dispatcher
   pre-clears the slot to 0); a helper that cannot make progress (contended
   lock) raises the constant [Helper_stall], which cancels the extension at
   the call site exactly as the old [H_stall] arm did. *)
type call_ctx = {
  args : U64.bank;  (* slots 0-4: r1-r5; slot 5: the return value *)
  mutable cpu : int;
  heap : Heap.t option;
  alloc : Alloc.t option;
  ledger : Ledger.t;
  mem_read : width:int -> int64 -> int64;
  mem_write : width:int -> int64 -> int64 -> unit;
  charge : int -> unit;
}

type helper = call_ctx -> unit

exception Helper_stall

let ret_slot = 5

let[@inline always] arg c i = U64.get c.args i
let[@inline always] set_ret c v = U64.set c.args ret_slot v
let[@inline always] get_ret c = U64.get c.args ret_slot

exception Vm_fault of fault_reason

let stack_base = 0x2000_0000_0000L
let ctx_base = 0x1000_0000_0000L

(* The reusable execution context: registers, stack, ledger and the helper
   call environment are allocated once per extension and recycled across
   invocations (reset below), instead of re-allocated per [Vm.exec]. Both
   the interpreter and the compiled backend run against this record. The
   register file is an unboxed [U64.bank]: register reads and writes are
   single machine loads/stores, never a heap box. *)
type state = {
  regs : U64.bank;  (* r0-r10 *)
  reg_snap : int64 array;
      (* boxed per-insn snapshot handed to [on_insn] observers (hooked
         interpreter only; the hot paths never touch it) *)
  stack : Bytes.t;  (* Prog.stack_size bytes, zeroed per invocation *)
  mutable ctx : Bytes.t;
  mutable ctx_size : int;
  mutable stats : stats;
  mutable start_cost : int;  (* total_cost at invocation entry *)
  mutable fault_pc : int;  (* instrumented pc of the faulting insn *)
  mutable ret : int64;  (* the compiled backend's Exit value *)
  mutable helpers : helper array;  (* the jit's linked helper table *)
  heap : Heap.t option;
  alloc : Alloc.t option;
  quantum : int;
  cancel : bool ref;
  ledger : Ledger.t;
  call_ctx : call_ctx;
  mutable in_use : bool;
}

(* Window tests compare offsets, not [addr + width]: adding the width to an
   address near [Int64.max_int] wraps negative and would misclassify a wild
   access as an in-window one. *)
let[@inline always] in_window base size addr width =
  let off = Int64.sub addr base in
  (off : int64) >= 0L && off <= Int64.of_int (size - width)

let read st ~width addr =
  if in_window stack_base Prog.stack_size addr width then begin
    let i = Int64.to_int (Int64.sub addr stack_base) in
    let stack = st.stack in
    match width with
    | 1 -> Int64.of_int (Char.code (Bytes.get stack i))
    | 2 -> Int64.of_int (Bytes.get_uint16_le stack i)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le stack i)) 0xffff_ffffL
    | 8 -> Bytes.get_int64_le stack i
    | _ -> assert false
  end
  else if in_window ctx_base st.ctx_size addr width then begin
    let i = Int64.to_int (Int64.sub addr ctx_base) in
    let ctx = st.ctx in
    match width with
    | 1 -> Int64.of_int (Char.code (Bytes.get ctx i))
    | 2 -> Int64.of_int (Bytes.get_uint16_le ctx i)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le ctx i)) 0xffff_ffffL
    | 8 -> Bytes.get_int64_le ctx i
    | _ -> assert false
  end
  else
    match st.heap with
    | Some h -> Heap.read h ~width addr
    | None -> raise (Vm_fault Wild_access)

let write st ~width addr v =
  if in_window stack_base Prog.stack_size addr width then begin
    let i = Int64.to_int (Int64.sub addr stack_base) in
    let stack = st.stack in
    match width with
    | 1 -> Bytes.set stack i (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
    | 2 -> Bytes.set_uint16_le stack i (Int64.to_int (Int64.logand v 0xffffL))
    | 4 -> Bytes.set_int32_le stack i (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le stack i v
    | _ -> assert false
  end
  else if
    addr >= ctx_base && addr < Int64.add ctx_base (Int64.of_int st.ctx_size)
  then raise (Vm_fault Wild_access) (* ctx is read-only; verifier forbids *)
  else
    match st.heap with
    | Some h -> Heap.write h ~width addr v
    | None -> raise (Vm_fault Wild_access)

(* Width-specialized memory paths for the compiled backend: the width is
   known at compile time, so the per-access width dispatch disappears and
   heap accesses use {!Heap}'s specialized entry points. Semantics are those
   of [read]/[write] above, width pinned. Every function here is forced
   inline into its (compiled-closure) call sites, so the window tests and
   byte accesses run on unboxed values with no call or box in between —
   the in-window loads use {!U64}'s raw accessors, their bounds discharged
   by the window test. *)

let[@inline always] read8 st addr =
  if in_window stack_base Prog.stack_size addr 1 then
    Int64.of_int
      (Char.code (U64.get8 st.stack (Int64.to_int (Int64.sub addr stack_base))))
  else if in_window ctx_base st.ctx_size addr 1 then
    Int64.of_int
      (Char.code (U64.get8 st.ctx (Int64.to_int (Int64.sub addr ctx_base))))
  else
    match st.heap with
    | Some h -> Heap.read8 h addr
    | None -> raise (Vm_fault Wild_access)

let[@inline always] read16 st addr =
  if in_window stack_base Prog.stack_size addr 2 then
    Int64.of_int
      (U64.get16 st.stack (Int64.to_int (Int64.sub addr stack_base)))
  else if in_window ctx_base st.ctx_size addr 2 then
    Int64.of_int (U64.get16 st.ctx (Int64.to_int (Int64.sub addr ctx_base)))
  else
    match st.heap with
    | Some h -> Heap.read16 h addr
    | None -> raise (Vm_fault Wild_access)

let[@inline always] read32 st addr =
  if in_window stack_base Prog.stack_size addr 4 then
    Int64.logand
      (Int64.of_int32
         (U64.get32 st.stack (Int64.to_int (Int64.sub addr stack_base))))
      0xffff_ffffL
  else if in_window ctx_base st.ctx_size addr 4 then
    Int64.logand
      (Int64.of_int32
         (U64.get32 st.ctx (Int64.to_int (Int64.sub addr ctx_base))))
      0xffff_ffffL
  else
    match st.heap with
    | Some h -> Heap.read32 h addr
    | None -> raise (Vm_fault Wild_access)

let[@inline always] read64 st addr =
  if in_window stack_base Prog.stack_size addr 8 then
    U64.get64 st.stack (Int64.to_int (Int64.sub addr stack_base))
  else if in_window ctx_base st.ctx_size addr 8 then
    U64.get64 st.ctx (Int64.to_int (Int64.sub addr ctx_base))
  else
    match st.heap with
    | Some h -> Heap.read64 h addr
    | None -> raise (Vm_fault Wild_access)

let[@inline always] heap_or_fault st =
  match st.heap with Some h -> h | None -> raise (Vm_fault Wild_access)

let[@inline always] ctx_write_check st addr =
  if addr >= ctx_base && addr < Int64.add ctx_base (Int64.of_int st.ctx_size)
  then raise (Vm_fault Wild_access)

let[@inline always] write8 st addr v =
  if in_window stack_base Prog.stack_size addr 1 then
    U64.set8 st.stack
      (Int64.to_int (Int64.sub addr stack_base))
      (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
  else begin
    ctx_write_check st addr;
    Heap.write8 (heap_or_fault st) addr v
  end

let[@inline always] write16 st addr v =
  if in_window stack_base Prog.stack_size addr 2 then
    U64.set16 st.stack
      (Int64.to_int (Int64.sub addr stack_base))
      (Int64.to_int (Int64.logand v 0xffffL))
  else begin
    ctx_write_check st addr;
    Heap.write16 (heap_or_fault st) addr v
  end

let[@inline always] write32 st addr v =
  if in_window stack_base Prog.stack_size addr 4 then
    U64.set32 st.stack
      (Int64.to_int (Int64.sub addr stack_base))
      (Int64.to_int32 v)
  else begin
    ctx_write_check st addr;
    Heap.write32 (heap_or_fault st) addr v
  end

let[@inline always] write64 st addr v =
  if in_window stack_base Prog.stack_size addr 8 then
    U64.set64 st.stack (Int64.to_int (Int64.sub addr stack_base)) v
  else begin
    ctx_write_check st addr;
    Heap.write64 (heap_or_fault st) addr v
  end

let create_state ?heap ?alloc ~quantum ~cancel () =
  let ledger = Ledger.create () in
  (* the call_ctx closures need the state record; tie the knot through a
     forward reference (helper calls are not the per-insn hot path) *)
  let self = ref None in
  let get () = match !self with Some s -> s | None -> assert false in
  let call_ctx =
    {
      args = U64.create 6;
      cpu = 0;
      heap;
      alloc;
      ledger;
      mem_read = (fun ~width addr -> read (get ()) ~width addr);
      mem_write = (fun ~width addr v -> write (get ()) ~width addr v);
      charge =
        (fun n ->
          let s = (get ()).stats in
          s.helper_cost <- s.helper_cost + n);
    }
  in
  let st =
    {
      regs = U64.create 11;
      reg_snap = Array.make 11 0L;
      stack = Bytes.make Prog.stack_size '\000';
      ctx = Bytes.empty;
      ctx_size = 0;
      stats = fresh_stats ();
      start_cost = 0;
      fault_pc = 0;
      ret = 0L;
      helpers = [||];
      heap;
      alloc;
      quantum;
      cancel;
      ledger;
      call_ctx;
      in_use = false;
    }
  in
  self := Some st;
  st

let reset_state st ~ctx ~cpu ~stats =
  U64.fill st.regs 0L;
  Bytes.fill st.stack 0 (Bytes.length st.stack) '\000';
  Ledger.clear st.ledger;
  st.ctx <- ctx;
  st.ctx_size <- Bytes.length ctx;
  st.stats <- stats;
  st.start_cost <- total_cost stats;
  st.fault_pc <- 0;
  st.ret <- 0L;
  st.call_ctx.cpu <- cpu;
  U64.set st.regs 1 ctx_base;
  U64.set st.regs 10 (Int64.add stack_base (Int64.of_int Prog.stack_size))

(* Fill the boxed observer snapshot from the live bank. *)
let sync_snap st =
  for i = 0 to 10 do
    st.reg_snap.(i) <- U64.get st.regs i
  done

let[@inline always] eval_cond c (a : int64) (b : int64) =
  match c with
  | Insn.Eq -> (a : int64) = b
  | Insn.Ne -> (a : int64) <> b
  | Insn.Lt -> U64.ult a b
  | Insn.Le -> U64.ule a b
  | Insn.Gt -> U64.ult b a
  | Insn.Ge -> U64.ule b a
  | Insn.Slt -> (a : int64) < b
  | Insn.Sle -> (a : int64) <= b
  | Insn.Sgt -> (a : int64) > b
  | Insn.Sge -> (a : int64) >= b
  | Insn.Set -> Int64.logand a b <> 0L

let[@inline always] eval_alu op (a : int64) (b : int64) =
  match op with
  | Insn.Add -> Int64.add a b
  | Insn.Sub -> Int64.sub a b
  | Insn.Mul -> Int64.mul a b
  | Insn.Div -> if b = 0L then 0L else U64.udiv a b
  | Insn.Mod -> if b = 0L then a else U64.urem a b
  | Insn.And -> Int64.logand a b
  | Insn.Or -> Int64.logor a b
  | Insn.Xor -> Int64.logxor a b
  | Insn.Lsh -> Int64.shift_left a (Int64.to_int b land 63)
  | Insn.Rsh -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Insn.Arsh -> Int64.shift_right a (Int64.to_int b land 63)
