(* Template JIT: ahead-of-time translation of an instrumented program into
   an array of OCaml closures with direct-threaded dispatch. Each closure
   performs the work of one instruction — or one superinstruction — and
   tail-calls its continuation, so a run is a chain of tail calls with no
   per-insn fetch/decode match and no hook-presence checks. Specialization
   happens at compile time: ALU operators, comparison predicates, and
   memory-access widths are each resolved into a dedicated closure body, so
   the executed code contains no per-instruction operator dispatch.

   Compilation walks the program backwards so that fall-through and
   forward-jump continuations are captured directly; backward jumps (and
   self-loops) fetch their entry at run time. The invariant throughout is
   that [entries.(q)] executes the instruction stream from [q] onward —
   which makes jumps into the middle of a superinstruction automatically
   correct: every covered instruction keeps its own standalone closure.

   Superinstruction fusion:
   - Guard+Load / Guard+Store pairs: the sanitize result is an address
     inside the heap window (kbase >= 2^46, stack/ctx windows < 2^46, and
     the ±32 KB displacement range cannot bridge the gap), so the fused
     closure skips the stack/ctx window tests and goes straight to the
     heap's width-specialized accessor. Fault reasons and order (wild
     access, guard zone, unpopulated page) are unchanged — the specialized
     accessors fall back to the generic checked path for anything unusual.
   - Regions: a maximal run of pure instructions (Mov/Alu/Neg, and frame
     accesses when r10 is provably constant — see below), optionally
     terminated by a jump, exit, or checkpoint, becomes one closure that
     charges the whole run's [insns] upfront and applies the precompiled
     effects in sequence. Pure instructions cannot fault and contain no
     observation points, so batching the charge is unobservable.
   - Terminators: the [Jcond]/[Ja]/[Exit]/[Checkpoint] ending a region is
     folded into the region closure — and a jump directly following a
     checkpoint (the shape instrumentation emits at every loop back edge)
     folds in too, so one closure carries a loop iteration's tail from the
     last pure effect through the quantum check to the branch target.
   - Frame accesses: when no instruction ever writes r10, the frame
     pointer keeps its entry value, so [Ldx]/[Stx]/[St] at [r10 + off]
     with the slot statically inside the frame resolve to constant-index
     accesses on the stack bytes. These cannot fault, making them pure
     region members; out-of-frame offsets keep the generic faulting
     closure.

   Cost accounting is bit-identical to the interpreter: guards, checkpoints
   and helper counters bump in the interpreter's order, and fused closures
   that touch memory batch their charge only across fault-free prefixes,
   so a fault observes the same counts. A jump folded in after a
   checkpoint charges after the quantum comparison, exactly where the
   interpreter would. *)

open Kflex_bpf
open Machine

type op = state -> unit

type t = {
  entries : op array;
  helper_names : string array;
      (* helper-table slots, in order of first appearance; [run] requires
         [st.helpers] linked at least this long *)
  fused : int;  (* instructions absorbed into superinstructions *)
  insns : int;
}

let helper_names t = t.helper_names
let fused_pairs t = t.fused
let insn_count t = t.insns

let dummy : op = fun _ -> failwith "Jit: fell off the end of the program"

let ri = Reg.to_int

(* Register indices come from [Reg.to_int], which is always in [0, 10], and
   [state.regs] is an 11-slot unboxed bank — unsafe accesses are in bounds
   by construction. The accessors are monomorphic externals ({!U64}), so
   there is no polymorphic-array dispatch left to miscompile: the weak-type
   [Array.unsafe_get] trap that once made these wrappers necessary (the
   generic float-dispatching accessor misreading boxed elements) cannot
   arise on a Bigarray primitive. These must stay [external] declarations:
   let-binding a primitive ([let rget = U64.get]) would demote it to an
   ordinary function whose every call boxes its [int64] result. *)
external rget : U64.bank -> int -> int64 = "%caml_ba_unsafe_ref_1"
external rset : U64.bank -> int -> int64 -> unit = "%caml_ba_unsafe_set_1"

(* The register-only effect of a pure instruction, with the operator
   resolved at compile time into a dedicated closure ([Int64] primitives
   inline; there is no inner operator-closure call at run time). *)
let eff_of insn : op option =
  match insn with
  | Insn.Mov (d, Insn.Imm i) ->
      let d = ri d in
      Some (fun st -> rset st.regs d i)
  | Insn.Mov (d, Insn.Reg r) ->
      let d = ri d and r = ri r in
      Some (fun st -> rset st.regs d (rget st.regs r))
  | Insn.Neg d ->
      let d = ri d in
      Some (fun st -> rset st.regs d (Int64.neg (rget st.regs d)))
  | Insn.Alu (op, d, Insn.Imm i) ->
      let d = ri d in
      Some
        (match op with
        | Insn.Add -> fun st -> rset st.regs d (Int64.add (rget st.regs d) i)
        | Insn.Sub -> fun st -> rset st.regs d (Int64.sub (rget st.regs d) i)
        | Insn.Mul -> fun st -> rset st.regs d (Int64.mul (rget st.regs d) i)
        | Insn.Div ->
            if i = 0L then fun st -> rset st.regs d 0L
            else fun st -> rset st.regs d (U64.udiv (rget st.regs d) i)
        | Insn.Mod ->
            if i = 0L then fun st -> rset st.regs d (rget st.regs d)
            else fun st -> rset st.regs d (U64.urem (rget st.regs d) i)
        | Insn.And -> fun st -> rset st.regs d (Int64.logand (rget st.regs d) i)
        | Insn.Or -> fun st -> rset st.regs d (Int64.logor (rget st.regs d) i)
        | Insn.Xor -> fun st -> rset st.regs d (Int64.logxor (rget st.regs d) i)
        | Insn.Lsh ->
            let sh = Int64.to_int i land 63 in
            fun st -> rset st.regs d (Int64.shift_left (rget st.regs d) sh)
        | Insn.Rsh ->
            let sh = Int64.to_int i land 63 in
            fun st -> rset st.regs d (Int64.shift_right_logical (rget st.regs d) sh)
        | Insn.Arsh ->
            let sh = Int64.to_int i land 63 in
            fun st -> rset st.regs d (Int64.shift_right (rget st.regs d) sh))
  | Insn.Alu (op, d, Insn.Reg r) ->
      let d = ri d and r = ri r in
      Some
        (match op with
        | Insn.Add ->
            fun st -> rset st.regs d (Int64.add (rget st.regs d) (rget st.regs r))
        | Insn.Sub ->
            fun st -> rset st.regs d (Int64.sub (rget st.regs d) (rget st.regs r))
        | Insn.Mul ->
            fun st -> rset st.regs d (Int64.mul (rget st.regs d) (rget st.regs r))
        | Insn.Div ->
            fun st ->
              let b = rget st.regs r in
              rset st.regs d
                (if b = 0L then 0L else U64.udiv (rget st.regs d) b)
        | Insn.Mod ->
            fun st ->
              let b = rget st.regs r in
              if b <> 0L then
                rset st.regs d (U64.urem (rget st.regs d) b)
        | Insn.And ->
            fun st -> rset st.regs d (Int64.logand (rget st.regs d) (rget st.regs r))
        | Insn.Or ->
            fun st -> rset st.regs d (Int64.logor (rget st.regs d) (rget st.regs r))
        | Insn.Xor ->
            fun st -> rset st.regs d (Int64.logxor (rget st.regs d) (rget st.regs r))
        | Insn.Lsh ->
            fun st ->
              rset st.regs d
                (Int64.shift_left (rget st.regs d)
                   (Int64.to_int (rget st.regs r) land 63))
        | Insn.Rsh ->
            fun st ->
              rset st.regs d
                (Int64.shift_right_logical (rget st.regs d)
                   (Int64.to_int (rget st.regs r) land 63))
        | Insn.Arsh ->
            fun st ->
              rset st.regs d
                (Int64.shift_right (rget st.regs d)
                   (Int64.to_int (rget st.regs r) land 63)))
  | _ -> None

(* Whether an instruction can write the given register — used to prove the
   frame pointer (r10) is never reassigned, which lets stack accesses
   resolve to constant byte indices at compile time. *)
let writes_reg r insn =
  match insn with
  | Insn.Mov (d, _) | Insn.Neg d | Insn.Alu (_, d, _) | Insn.Ldx (_, d, _, _)
  | Insn.Guard (_, d) ->
      ri d = r
  | Insn.Atomic (op, _, _, _, s) -> (
      match op with
      | Insn.Fetch_add | Insn.Fetch_or | Insn.Fetch_and | Insn.Fetch_xor
      | Insn.Xchg ->
          ri s = r
      | Insn.Cmpxchg -> r = 0
      | Insn.Atomic_add | Insn.Atomic_or | Insn.Atomic_and | Insn.Atomic_xor ->
          false)
  | Insn.Call _ -> r = 0
  | Insn.Stx _ | Insn.St _ | Insn.Xstore _ | Insn.Checkpoint _ | Insn.Ja _
  | Insn.Jcond _ | Insn.Exit ->
      false

(* The effect of a stack access at a compile-time-constant frame offset:
   valid only when r10 provably keeps its entry value (see [writes_reg]),
   the base register is r10, and the slot is statically inside the frame —
   then the access cannot fault and is as pure as a register move. The
   closures use {!U64}'s raw (unchecked) byte accessors: the bounds
   obligation is discharged here at compile time by [idx], which only
   admits slots statically inside the frame. *)
let eff_stack insn : op option =
  let idx off w =
    let i = Prog.stack_size + off in
    if i >= 0 && i + w <= Prog.stack_size then Some i else None
  in
  match insn with
  | Insn.Ldx (sz, d, s, off) when ri s = 10 -> (
      let d = ri d in
      match sz with
      | Insn.U8 ->
          Option.map
            (fun i ->
              fun st ->
               rset st.regs d (Int64.of_int (Char.code (U64.get8 st.stack i))))
            (idx off 1)
      | Insn.U16 ->
          Option.map
            (fun i ->
              fun st ->
               rset st.regs d (Int64.of_int (U64.get16 st.stack i)))
            (idx off 2)
      | Insn.U32 ->
          Option.map
            (fun i ->
              fun st ->
               rset st.regs d
                 (Int64.logand
                    (Int64.of_int32 (U64.get32 st.stack i))
                    0xffff_ffffL))
            (idx off 4)
      | Insn.U64 ->
          Option.map
            (fun i -> fun st -> rset st.regs d (U64.get64 st.stack i))
            (idx off 8))
  | Insn.Stx (sz, d, off, s) when ri d = 10 -> (
      let s = ri s in
      match sz with
      | Insn.U8 ->
          Option.map
            (fun i ->
              fun st ->
               U64.set8 st.stack i
                 (Char.chr (Int64.to_int (Int64.logand (rget st.regs s) 0xffL))))
            (idx off 1)
      | Insn.U16 ->
          Option.map
            (fun i ->
              fun st ->
               U64.set16 st.stack i
                 (Int64.to_int (Int64.logand (rget st.regs s) 0xffffL)))
            (idx off 2)
      | Insn.U32 ->
          Option.map
            (fun i ->
              fun st ->
               U64.set32 st.stack i (Int64.to_int32 (rget st.regs s)))
            (idx off 4)
      | Insn.U64 ->
          Option.map
            (fun i ->
              fun st -> U64.set64 st.stack i (rget st.regs s))
            (idx off 8))
  | Insn.St (sz, d, off, imm) when ri d = 10 -> (
      match sz with
      | Insn.U8 ->
          let c = Char.chr (Int64.to_int (Int64.logand imm 0xffL)) in
          Option.map (fun i -> fun st -> U64.set8 st.stack i c) (idx off 1)
      | Insn.U16 ->
          let v = Int64.to_int (Int64.logand imm 0xffffL) in
          Option.map
            (fun i -> fun st -> U64.set16 st.stack i v)
            (idx off 2)
      | Insn.U32 ->
          let v = Int64.to_int32 imm in
          Option.map
            (fun i -> fun st -> U64.set32 st.stack i v)
            (idx off 4)
      | Insn.U64 ->
          Option.map
            (fun i -> fun st -> U64.set64 st.stack i imm)
            (idx off 8))
  | _ -> None

(* Compile-time-specialized condition test for [Jcond]. *)
let cond_test c a s : state -> bool =
  let a = ri a in
  match s with
  | Insn.Imm i -> (
      match c with
      | Insn.Eq -> fun st -> Int64.equal (rget st.regs a) i
      | Insn.Ne -> fun st -> not (Int64.equal (rget st.regs a) i)
      | Insn.Lt -> fun st -> Int64.unsigned_compare (rget st.regs a) i < 0
      | Insn.Le -> fun st -> Int64.unsigned_compare (rget st.regs a) i <= 0
      | Insn.Gt -> fun st -> Int64.unsigned_compare (rget st.regs a) i > 0
      | Insn.Ge -> fun st -> Int64.unsigned_compare (rget st.regs a) i >= 0
      | Insn.Slt -> fun st -> Int64.compare (rget st.regs a) i < 0
      | Insn.Sle -> fun st -> Int64.compare (rget st.regs a) i <= 0
      | Insn.Sgt -> fun st -> Int64.compare (rget st.regs a) i > 0
      | Insn.Sge -> fun st -> Int64.compare (rget st.regs a) i >= 0
      | Insn.Set -> fun st -> Int64.logand (rget st.regs a) i <> 0L)
  | Insn.Reg r -> (
      let r = ri r in
      match c with
      | Insn.Eq -> fun st -> Int64.equal (rget st.regs a) (rget st.regs r)
      | Insn.Ne -> fun st -> not (Int64.equal (rget st.regs a) (rget st.regs r))
      | Insn.Lt ->
          fun st -> Int64.unsigned_compare (rget st.regs a) (rget st.regs r) < 0
      | Insn.Le ->
          fun st -> Int64.unsigned_compare (rget st.regs a) (rget st.regs r) <= 0
      | Insn.Gt ->
          fun st -> Int64.unsigned_compare (rget st.regs a) (rget st.regs r) > 0
      | Insn.Ge ->
          fun st -> Int64.unsigned_compare (rget st.regs a) (rget st.regs r) >= 0
      | Insn.Slt -> fun st -> Int64.compare (rget st.regs a) (rget st.regs r) < 0
      | Insn.Sle -> fun st -> Int64.compare (rget st.regs a) (rget st.regs r) <= 0
      | Insn.Sgt -> fun st -> Int64.compare (rget st.regs a) (rget st.regs r) > 0
      | Insn.Sge -> fun st -> Int64.compare (rget st.regs a) (rget st.regs r) >= 0
      | Insn.Set ->
          fun st -> Int64.logand (rget st.regs a) (rget st.regs r) <> 0L)

(* A complete conditional-branch closure with the comparison inlined into
   the branch body — one closure call fewer per taken branch than routing
   through a {!cond_test} closure. Charges its own instruction. *)
let jcond_op c a s (jt : op) (jf : op) : op =
  let a = ri a in
  match s with
  | Insn.Imm i -> (
      match c with
      | Insn.Eq ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.equal (rget st.regs a) i then jt st else jf st
      | Insn.Ne ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.equal (rget st.regs a) i then jf st else jt st
      | Insn.Lt ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.unsigned_compare (rget st.regs a) i < 0 then jt st
            else jf st
      | Insn.Le ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.unsigned_compare (rget st.regs a) i <= 0 then jt st
            else jf st
      | Insn.Gt ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.unsigned_compare (rget st.regs a) i > 0 then jt st
            else jf st
      | Insn.Ge ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.unsigned_compare (rget st.regs a) i >= 0 then jt st
            else jf st
      | Insn.Slt ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.compare (rget st.regs a) i < 0 then jt st else jf st
      | Insn.Sle ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.compare (rget st.regs a) i <= 0 then jt st else jf st
      | Insn.Sgt ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.compare (rget st.regs a) i > 0 then jt st else jf st
      | Insn.Sge ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.compare (rget st.regs a) i >= 0 then jt st else jf st
      | Insn.Set ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.logand (rget st.regs a) i <> 0L then jt st else jf st)
  | Insn.Reg r -> (
      let r = ri r in
      match c with
      | Insn.Eq ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.equal (rget st.regs a) (rget st.regs r) then jt st
            else jf st
      | Insn.Ne ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.equal (rget st.regs a) (rget st.regs r) then jf st
            else jt st
      | Insn.Lt ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.unsigned_compare (rget st.regs a) (rget st.regs r) < 0
            then jt st
            else jf st
      | Insn.Le ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.unsigned_compare (rget st.regs a) (rget st.regs r) <= 0
            then jt st
            else jf st
      | Insn.Gt ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.unsigned_compare (rget st.regs a) (rget st.regs r) > 0
            then jt st
            else jf st
      | Insn.Ge ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.unsigned_compare (rget st.regs a) (rget st.regs r) >= 0
            then jt st
            else jf st
      | Insn.Slt ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.compare (rget st.regs a) (rget st.regs r) < 0 then jt st
            else jf st
      | Insn.Sle ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.compare (rget st.regs a) (rget st.regs r) <= 0 then jt st
            else jf st
      | Insn.Sgt ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.compare (rget st.regs a) (rget st.regs r) > 0 then jt st
            else jf st
      | Insn.Sge ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.compare (rget st.regs a) (rget st.regs r) >= 0 then jt st
            else jf st
      | Insn.Set ->
          fun st ->
            st.stats.insns <- st.stats.insns + 1;
            if Int64.logand (rget st.regs a) (rget st.regs r) <> 0L then jt st
            else jf st)

(* One closure for a whole pure region: charge [k] insns upfront, apply the
   effects in order, finish with [fin] (a branch or the fall-through entry).
   Short regions get an unrolled body so the common case is a single frame. *)
let region k (effs : op array) (fin : op) : op =
  match effs with
  | [||] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        fin st
  | [| a |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        fin st
  | [| a; b |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        b st;
        fin st
  | [| a; b; c |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        b st;
        c st;
        fin st
  | [| a; b; c; d |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        b st;
        c st;
        d st;
        fin st
  | [| a; b; c; d; e |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        b st;
        c st;
        d st;
        e st;
        fin st
  | [| a; b; c; d; e; f |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        b st;
        c st;
        d st;
        e st;
        f st;
        fin st
  | [| a; b; c; d; e; f; g |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        b st;
        c st;
        d st;
        e st;
        f st;
        g st;
        fin st
  | [| a; b; c; d; e; f; g; h |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        b st;
        c st;
        d st;
        e st;
        f st;
        g st;
        h st;
        fin st
  | [| a; b; c; d; e; f; g; h; i |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        b st;
        c st;
        d st;
        e st;
        f st;
        g st;
        h st;
        i st;
        fin st
  | [| a; b; c; d; e; f; g; h; i; j |] ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        a st;
        b st;
        c st;
        d st;
        e st;
        f st;
        g st;
        h st;
        i st;
        j st;
        fin st
  | _ ->
      fun st ->
        st.stats.insns <- st.stats.insns + k;
        for i = 0 to Array.length effs - 1 do
          (Array.unsafe_get effs i) st
        done;
        fin st

let compile ?(fuse = true) prog =
  let insns = Prog.insns prog in
  let n = Array.length insns in
  (* r10 keeps its entry value (the frame top) iff nothing ever writes it;
     then [eff_stack] may turn frame accesses into constant-index loads. *)
  let fp_const = not (Array.exists (writes_reg 10) insns) in
  let eff_any insn =
    match eff_of insn with
    | Some _ as e -> e
    | None -> if fp_const then eff_stack insn else None
  in
  (* helper name -> slot in the per-extension linked table *)
  let hidx = Hashtbl.create 8 in
  let horder = ref [] in
  Array.iter
    (function
      | Insn.Call name when not (Hashtbl.mem hidx name) ->
          Hashtbl.add hidx name (Hashtbl.length hidx);
          horder := name :: !horder
      | _ -> ())
    insns;
  let helper_names = Array.of_list (List.rev !horder) in
  let entries = Array.make (n + 1) dummy in
  let goto pc target : op =
    if target < 0 || target > n then
      invalid_arg "Jit.compile: jump outside the program";
    if target > pc then entries.(target) (* already compiled *)
    else fun st -> (Array.unsafe_get entries target) st
    (* in bounds: target was range-checked above, and [entries] has n+1
       slots precisely so that a jump to the end resolves to [dummy] *)
  in
  (* Hand-fused effects for adjacent 64-bit frame accesses: one closure
     retires two stack-resident instructions, halving the per-effect call
     overhead in the spill/reload runs that dominate compiled extension
     code. A store-forward pair (store then reload of the same slot) skips
     the memory round-trip; distinct-slot pairs sequence both raw accesses
     in one body, which preserves ordering for any overlap. Valid only
     under [fp_const], same as {!eff_stack}. *)
  let sidx off w =
    let i = Prog.stack_size + off in
    if i >= 0 && i + w <= Prog.stack_size then Some i else None
  in
  let eff2 i1 i2 : op option =
    match (i1, i2) with
    (* d <- x op y: a move feeding an ALU op on the same register — the
       address-computation idiom compilers emit constantly. The second
       operand must not be [Reg d] (it would read the moved value); both
       operands are fetched inside one closure, and an all-immediate form
       constant-folds at compile time. Only the wrap-safe operators get
       arms; Div/Mod/shifts keep their standalone effects. *)
    | Insn.Mov (d, m), Insn.Alu (op, d2, a) when ri d = ri d2 -> (
        let d = ri d in
        match (op, m, a) with
        | _, _, Insn.Reg s when ri s = d -> None
        | Insn.Add, Insn.Reg r, Insn.Imm i ->
            let r = ri r in
            Some (fun st -> rset st.regs d (Int64.add (rget st.regs r) i))
        | Insn.Add, Insn.Reg r, Insn.Reg s ->
            let r = ri r and s = ri s in
            Some
              (fun st ->
                rset st.regs d (Int64.add (rget st.regs r) (rget st.regs s)))
        | Insn.Add, Insn.Imm i, Insn.Reg s ->
            let s = ri s in
            Some (fun st -> rset st.regs d (Int64.add i (rget st.regs s)))
        | Insn.Add, Insn.Imm i, Insn.Imm j ->
            let v = Int64.add i j in
            Some (fun st -> rset st.regs d v)
        | Insn.Sub, Insn.Reg r, Insn.Imm i ->
            let r = ri r in
            Some (fun st -> rset st.regs d (Int64.sub (rget st.regs r) i))
        | Insn.Sub, Insn.Reg r, Insn.Reg s ->
            let r = ri r and s = ri s in
            Some
              (fun st ->
                rset st.regs d (Int64.sub (rget st.regs r) (rget st.regs s)))
        | Insn.Sub, Insn.Imm i, Insn.Reg s ->
            let s = ri s in
            Some (fun st -> rset st.regs d (Int64.sub i (rget st.regs s)))
        | Insn.Sub, Insn.Imm i, Insn.Imm j ->
            let v = Int64.sub i j in
            Some (fun st -> rset st.regs d v)
        | Insn.Mul, Insn.Reg r, Insn.Imm i ->
            let r = ri r in
            Some (fun st -> rset st.regs d (Int64.mul (rget st.regs r) i))
        | Insn.Mul, Insn.Reg r, Insn.Reg s ->
            let r = ri r and s = ri s in
            Some
              (fun st ->
                rset st.regs d (Int64.mul (rget st.regs r) (rget st.regs s)))
        | Insn.Mul, Insn.Imm i, Insn.Reg s ->
            let s = ri s in
            Some (fun st -> rset st.regs d (Int64.mul i (rget st.regs s)))
        | Insn.Mul, Insn.Imm i, Insn.Imm j ->
            let v = Int64.mul i j in
            Some (fun st -> rset st.regs d v)
        | Insn.And, Insn.Reg r, Insn.Imm i ->
            let r = ri r in
            Some (fun st -> rset st.regs d (Int64.logand (rget st.regs r) i))
        | Insn.And, Insn.Reg r, Insn.Reg s ->
            let r = ri r and s = ri s in
            Some
              (fun st ->
                rset st.regs d
                  (Int64.logand (rget st.regs r) (rget st.regs s)))
        | Insn.And, Insn.Imm i, Insn.Reg s ->
            let s = ri s in
            Some (fun st -> rset st.regs d (Int64.logand i (rget st.regs s)))
        | Insn.And, Insn.Imm i, Insn.Imm j ->
            let v = Int64.logand i j in
            Some (fun st -> rset st.regs d v)
        | Insn.Or, Insn.Reg r, Insn.Imm i ->
            let r = ri r in
            Some (fun st -> rset st.regs d (Int64.logor (rget st.regs r) i))
        | Insn.Or, Insn.Reg r, Insn.Reg s ->
            let r = ri r and s = ri s in
            Some
              (fun st ->
                rset st.regs d (Int64.logor (rget st.regs r) (rget st.regs s)))
        | Insn.Or, Insn.Imm i, Insn.Reg s ->
            let s = ri s in
            Some (fun st -> rset st.regs d (Int64.logor i (rget st.regs s)))
        | Insn.Or, Insn.Imm i, Insn.Imm j ->
            let v = Int64.logor i j in
            Some (fun st -> rset st.regs d v)
        | Insn.Xor, Insn.Reg r, Insn.Imm i ->
            let r = ri r in
            Some (fun st -> rset st.regs d (Int64.logxor (rget st.regs r) i))
        | Insn.Xor, Insn.Reg r, Insn.Reg s ->
            let r = ri r and s = ri s in
            Some
              (fun st ->
                rset st.regs d
                  (Int64.logxor (rget st.regs r) (rget st.regs s)))
        | Insn.Xor, Insn.Imm i, Insn.Reg s ->
            let s = ri s in
            Some (fun st -> rset st.regs d (Int64.logxor i (rget st.regs s)))
        | Insn.Xor, Insn.Imm i, Insn.Imm j ->
            let v = Int64.logxor i j in
            Some (fun st -> rset st.regs d v)
        | _ -> None)
    | _ when not fp_const -> None
    | _ -> (
      match (i1, i2) with
      | Insn.Stx (Insn.U64, d1, o1, s1), Insn.Ldx (Insn.U64, d2, s2, o2)
        when ri d1 = 10 && ri s2 = 10 -> (
          match (sidx o1 8, sidx o2 8) with
          | Some i, Some j ->
              let s1 = ri s1 and d2 = ri d2 in
              if o1 = o2 then
                Some
                  (fun st ->
                    let v = rget st.regs s1 in
                    U64.set64 st.stack i v;
                    rset st.regs d2 v)
              else
                Some
                  (fun st ->
                    U64.set64 st.stack i (rget st.regs s1);
                    rset st.regs d2 (U64.get64 st.stack j))
          | _ -> None)
      | Insn.Ldx (Insn.U64, d1, s1, o1), Insn.Ldx (Insn.U64, d2, s2, o2)
        when ri s1 = 10 && ri s2 = 10 -> (
          match (sidx o1 8, sidx o2 8) with
          | Some i, Some j ->
              (* d1 <> r10 under [fp_const], so the second load's base is
                 unaffected by the first load's write-back *)
              let d1 = ri d1 and d2 = ri d2 in
              Some
                (fun st ->
                  rset st.regs d1 (U64.get64 st.stack i);
                  rset st.regs d2 (U64.get64 st.stack j))
          | _ -> None)
      | Insn.Stx (Insn.U64, d1, o1, s1), Insn.Stx (Insn.U64, d2, o2, s2)
        when ri d1 = 10 && ri d2 = 10 -> (
          match (sidx o1 8, sidx o2 8) with
          | Some i, Some j ->
              let s1 = ri s1 and s2 = ri s2 in
              Some
                (fun st ->
                  U64.set64 st.stack i (rget st.regs s1);
                  U64.set64 st.stack j (rget st.regs s2))
          | _ -> None)
      | _ -> None)
  in
  (* pure_run.(p): length of the maximal run of register-pure instructions
     starting at p — region-fusion candidates *)
  let pure_run = Array.make (n + 1) 0 in
  for p = n - 1 downto 0 do
    if Option.is_some (eff_any insns.(p)) then
      pure_run.(p) <- 1 + pure_run.(p + 1)
  done;
  let compile_one pc insn (next : op) : op =
    match eff_any insn with
    | Some eff ->
        fun st ->
          st.stats.insns <- st.stats.insns + 1;
          eff st;
          next st
    | None -> (
        match insn with
        | Insn.Mov _ | Insn.Neg _ | Insn.Alu _ -> assert false
        | Insn.Ldx (sz, d, s, off) -> (
            let d = ri d and s = ri s in
            let off = Int64.of_int off in
            match sz with
            | Insn.U8 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  rset st.regs d (read8 st (Int64.add (rget st.regs s) off));
                  next st
            | Insn.U16 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  rset st.regs d (read16 st (Int64.add (rget st.regs s) off));
                  next st
            | Insn.U32 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  rset st.regs d (read32 st (Int64.add (rget st.regs s) off));
                  next st
            | Insn.U64 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  rset st.regs d (read64 st (Int64.add (rget st.regs s) off));
                  next st)
        | Insn.Stx (sz, d, off, s) -> (
            let d = ri d and s = ri s in
            let off = Int64.of_int off in
            match sz with
            | Insn.U8 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  write8 st (Int64.add (rget st.regs d) off) (rget st.regs s);
                  next st
            | Insn.U16 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  write16 st (Int64.add (rget st.regs d) off) (rget st.regs s);
                  next st
            | Insn.U32 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  write32 st (Int64.add (rget st.regs d) off) (rget st.regs s);
                  next st
            | Insn.U64 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  write64 st (Int64.add (rget st.regs d) off) (rget st.regs s);
                  next st)
        | Insn.St (sz, d, off, imm) -> (
            let d = ri d in
            let off = Int64.of_int off in
            match sz with
            | Insn.U8 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  write8 st (Int64.add (rget st.regs d) off) imm;
                  next st
            | Insn.U16 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  write16 st (Int64.add (rget st.regs d) off) imm;
                  next st
            | Insn.U32 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  write32 st (Int64.add (rget st.regs d) off) imm;
                  next st
            | Insn.U64 ->
                fun st ->
                  st.stats.insns <- st.stats.insns + 1;
                  st.fault_pc <- pc;
                  write64 st (Int64.add (rget st.regs d) off) imm;
                  next st)
        | Insn.Xstore (sz, d, off, s) ->
            let w = Insn.size_bytes sz in
            let d = ri d and s = ri s in
            let off = Int64.of_int off in
            fun st ->
              st.stats.insns <- st.stats.insns + 1;
              st.fault_pc <- pc;
              let h =
                match st.heap with
                | Some h -> h
                | None -> raise (Vm_fault Wild_access)
              in
              let v = rget st.regs s in
              let v = if Heap.is_shared h then Heap.translate_user h v else v in
              write st ~width:w (Int64.add (rget st.regs d) off) v;
              next st
        | Insn.Guard (_, r) ->
            let r = ri r in
            fun st ->
              st.stats.insns <- st.stats.insns + 1;
              st.fault_pc <- pc;
              (match st.heap with
              | Some h ->
                  st.stats.guards <- st.stats.guards + 1;
                  rset st.regs r (Heap.sanitize h (rget st.regs r))
              | None -> raise (Vm_fault Wild_access));
              next st
        | Insn.Checkpoint _ ->
            fun st ->
              let s = st.stats in
              s.insns <- s.insns + 1;
              s.checkpoints <- s.checkpoints + 1;
              st.fault_pc <- pc;
              if !(st.cancel) then raise (Vm_fault Ext_cancelled);
              if total_cost s - st.start_cost > st.quantum then begin
                st.cancel := true;
                raise (Vm_fault Quantum_expired)
              end;
              next st
        | Insn.Atomic (op, sz, d, off, s) ->
            let w = Insn.size_bytes sz in
            let d = ri d and s = ri s in
            let off = Int64.of_int off in
            fun st ->
              st.stats.insns <- st.stats.insns + 1;
              st.fault_pc <- pc;
              let addr = Int64.add (rget st.regs d) off in
              let old = read st ~width:w addr in
              let sv = rget st.regs s in
              (match op with
              | Insn.Atomic_add -> write st ~width:w addr (Int64.add old sv)
              | Insn.Atomic_or -> write st ~width:w addr (Int64.logor old sv)
              | Insn.Atomic_and -> write st ~width:w addr (Int64.logand old sv)
              | Insn.Atomic_xor -> write st ~width:w addr (Int64.logxor old sv)
              | Insn.Fetch_add ->
                  write st ~width:w addr (Int64.add old sv);
                  rset st.regs s old
              | Insn.Fetch_or ->
                  write st ~width:w addr (Int64.logor old sv);
                  rset st.regs s old
              | Insn.Fetch_and ->
                  write st ~width:w addr (Int64.logand old sv);
                  rset st.regs s old
              | Insn.Fetch_xor ->
                  write st ~width:w addr (Int64.logxor old sv);
                  rset st.regs s old
              | Insn.Xchg ->
                  write st ~width:w addr sv;
                  rset st.regs s old
              | Insn.Cmpxchg ->
                  if old = rget st.regs 0 then write st ~width:w addr sv;
                  rset st.regs 0 old);
              next st
        | Insn.Ja off ->
            let k = goto pc (pc + 1 + off) in
            fun st ->
              st.stats.insns <- st.stats.insns + 1;
              k st
        | Insn.Jcond (c, a, s, off) ->
            jcond_op c a s (goto pc (pc + 1 + off)) next
        | Insn.Call name ->
            let idx = Hashtbl.find hidx name in
            fun st ->
              let s = st.stats in
              s.insns <- s.insns + 1;
              s.helper_calls <- s.helper_calls + 1;
              st.fault_pc <- pc;
              let cc = st.call_ctx in
              let regs = st.regs in
              rset cc.args 0 (rget regs 1);
              rset cc.args 1 (rget regs 2);
              rset cc.args 2 (rget regs 3);
              rset cc.args 3 (rget regs 4);
              rset cc.args 4 (rget regs 5);
              rset cc.args ret_slot 0L;
              (try (Array.unsafe_get st.helpers idx) cc
               with Helper_stall ->
                 st.cancel := true;
                 raise (Vm_fault Lock_stall));
              rset regs 0 (rget cc.args ret_slot);
              next st
        | Insn.Exit ->
            fun st ->
              st.stats.insns <- st.stats.insns + 1;
              st.ret <- rget st.regs 0)
  in
  (* Guard+access superinstructions. The fused closure must leave state and
     stats exactly as the two standalone closures would at every observation
     point. Once the heap check passes, nothing between the guard's
     bookkeeping and the access can fault (sanitize is total), so the hot
     path charges both instructions in one batch and sets [fault_pc] once,
     to the access pc — any access fault observes exactly the interpreter's
     counters. The guard-only charge survives in the cold wild-pointer
     branch. The access goes straight to the heap's width-specialized
     accessor (see the header comment). *)
  let fuse_pair pc i1 i2 : op option =
    match (i1, i2) with
    | Insn.Guard (_, g), Insn.Ldx (sz, d, s, off) when ri s = ri g ->
        let g = ri g and d = ri d in
        let off = Int64.of_int off in
        let cont = goto pc (pc + 2) in
        Some
          (match sz with
          | Insn.U8 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    rset st.regs d (Heap.read8 h (Int64.add a off))
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st
          | Insn.U16 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    rset st.regs d (Heap.read16 h (Int64.add a off))
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st
          | Insn.U32 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    rset st.regs d (Heap.read32 h (Int64.add a off))
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st
          | Insn.U64 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    rset st.regs d (Heap.read64 h (Int64.add a off))
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st)
    | Insn.Guard (_, g), Insn.Stx (sz, d, off, s) when ri d = ri g ->
        let g = ri g and s = ri s in
        let off = Int64.of_int off in
        let cont = goto pc (pc + 2) in
        (* the source register is read after sanitizing: when s = g the
           stored value is the sanitized one, as in the interpreter *)
        Some
          (match sz with
          | Insn.U8 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    Heap.write8 h (Int64.add a off) (rget st.regs s)
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st
          | Insn.U16 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    Heap.write16 h (Int64.add a off) (rget st.regs s)
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st
          | Insn.U32 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    Heap.write32 h (Int64.add a off) (rget st.regs s)
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st
          | Insn.U64 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    Heap.write64 h (Int64.add a off) (rget st.regs s)
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st)
    | Insn.Guard (_, g), Insn.St (sz, d, off, imm) when ri d = ri g ->
        let g = ri g in
        let off = Int64.of_int off in
        let cont = goto pc (pc + 2) in
        Some
          (match sz with
          | Insn.U8 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    Heap.write8 h (Int64.add a off) imm
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st
          | Insn.U16 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    Heap.write16 h (Int64.add a off) imm
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st
          | Insn.U32 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    Heap.write32 h (Int64.add a off) imm
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st
          | Insn.U64 ->
              fun st ->
                (match st.heap with
                | Some h ->
                    let stats = st.stats in
                    stats.insns <- stats.insns + 2;
                    stats.guards <- stats.guards + 1;
                    st.fault_pc <- pc + 1;
                    let a = Heap.sanitize h (rget st.regs g) in
                    rset st.regs g a;
                    Heap.write64 h (Int64.add a off) imm
                | None ->
                    st.stats.insns <- st.stats.insns + 1;
                    st.fault_pc <- pc;
                    raise (Vm_fault Wild_access));
                cont st)
    | _ -> None
  in
  (* The terminator at [t] folded into a region closure rooted at [p]:
     returns the closing op, the number of instructions it covers, and how
     many of those may be charged upfront with the region's pure run.
     [Ja]/[Exit] cannot fault and charge upfront; a [Jcond] terminator is a
     self-charging {!jcond_op}. A [Checkpoint]
     also charges upfront (only pure effects separate the batched charge
     from the check, so the quantum comparison observes exactly the
     interpreter's counters), but a jump folded in AFTER it must charge
     inside the closure, after the quantum check — the interpreter would
     not have retired that jump yet if the checkpoint cancels. *)
  let term_fin p t : (op * int * int) option =
    match insns.(t) with
    | Insn.Jcond (c, a, s, off) ->
        (* self-charging (upfront 0): the branch closure owns its +1 *)
        Some (jcond_op c a s (goto p (t + 1 + off)) (goto p (t + 1)), 1, 0)
    | Insn.Ja off -> Some (goto p (t + 1 + off), 1, 1)
    | Insn.Exit -> Some ((fun st -> st.ret <- rget st.regs 0), 1, 1)
    | Insn.Checkpoint _ ->
        let check st =
          let s = st.stats in
          s.checkpoints <- s.checkpoints + 1;
          st.fault_pc <- t;
          if !(st.cancel) then raise (Vm_fault Ext_cancelled);
          if total_cost s - st.start_cost > st.quantum then begin
            st.cancel := true;
            raise (Vm_fault Quantum_expired)
          end
        in
        if t + 1 < n then
          match insns.(t + 1) with
          | Insn.Ja off ->
              let k = goto p (t + 2 + off) in
              Some
                ( (fun st ->
                    check st;
                    st.stats.insns <- st.stats.insns + 1;
                    k st),
                  2,
                  1 )
          | Insn.Jcond (c, a, s, off) ->
              let test = cond_test c a s in
              let jt = goto p (t + 2 + off) in
              let jf = goto p (t + 2) in
              Some
                ( (fun st ->
                    check st;
                    st.stats.insns <- st.stats.insns + 1;
                    if test st then jt st else jf st),
                  2,
                  1 )
          | _ ->
              let k = goto p (t + 1) in
              Some
                ( (fun st ->
                    check st;
                    k st),
                  1,
                  1 )
        else
          let k = goto p (t + 1) in
          Some
            ( (fun st ->
                check st;
                k st),
              1,
              1 )
    | _ -> None
  in
  (* Region fusion: the run of pure instructions at [p] (length from
     [pure_run]), plus a folded terminator when one follows. Returns the
     closure and the number of instructions covered, or None when a region
     would not beat the standalone closure. *)
  let fuse_region p : (op * int) option =
    let m = pure_run.(p) in
    if m = 0 then None
    else begin
      let t = p + m in
      (* pack the run's effects, greedily pairing adjacent frame accesses
         into two-instruction closures (see [eff2]); the charge stays [m] *)
      let effs =
        let acc = ref [] in
        let i = ref p in
        while !i < t do
          match
            if !i + 1 < t then eff2 insns.(!i) insns.(!i + 1) else None
          with
          | Some e ->
              acc := e :: !acc;
              i := !i + 2
          | None ->
              (match eff_any insns.(!i) with
              | Some e -> acc := e :: !acc
              | None -> assert false);
              incr i
        done;
        Array.of_list (List.rev !acc)
      in
      if t < n then
        match term_fin p t with
        | Some (fin, covered, upfront) ->
            Some (region (m + upfront) effs fin, m + covered)
        | None ->
            if m >= 2 then Some (region m effs (goto p t), m) else None
      else if m >= 2 then Some (region m effs (goto p t), m)
      else None
    end
  in
  (* A checkpoint with a jump right behind it (every loop back edge after
     instrumentation) fuses even with no pure run in front. *)
  let fuse_cp p : (op * int) option =
    match insns.(p) with
    | Insn.Checkpoint _ -> (
        match term_fin p p with
        | Some (fin, covered, upfront) when covered >= 2 ->
            Some (region upfront [||] fin, covered)
        | _ -> None)
    | _ -> None
  in
  let fused = ref 0 in
  for p = n - 1 downto 0 do
    let body =
      if not fuse then compile_one p insns.(p) entries.(p + 1)
      else
        match
          if p + 1 < n then fuse_pair p insns.(p) insns.(p + 1) else None
        with
        | Some op ->
            incr fused;
            op
        | None -> (
            match fuse_region p with
            | Some (op, covered) ->
                fused := !fused + (covered - 1);
                op
            | None -> (
                match fuse_cp p with
                | Some (op, covered) ->
                    fused := !fused + (covered - 1);
                    op
                | None -> compile_one p insns.(p) entries.(p + 1)))
    in
    entries.(p) <- body
  done;
  { entries; helper_names; fused = !fused; insns = n }

let run t (st : state) =
  if Array.length st.helpers < Array.length t.helper_names then
    invalid_arg "Jit.run: helper table not linked";
  t.entries.(0) st
