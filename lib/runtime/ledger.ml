type t = (int64, string) Hashtbl.t

let create () = Hashtbl.create 8
let acquire t ~handle ~destructor = Hashtbl.replace t handle destructor

let release t ~handle =
  if Hashtbl.mem t handle then begin
    Hashtbl.remove t handle;
    true
  end
  else false

let held t = Hashtbl.fold (fun h d acc -> (h, d) :: acc) t []
let count t = Hashtbl.length t
let clear t = Hashtbl.reset t
