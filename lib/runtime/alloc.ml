type t = {
  heap : Heap.t;
  ncpu : int;
  (* per-CPU, per-class free lists of block offsets (header offsets) *)
  caches : int64 list array array;
  global : int64 list array;  (* per-class global pool *)
  mutable bump : int64;  (* next never-allocated offset *)
  live : (int64, int) Hashtbl.t;  (* payload offset -> class index *)
}

let size_classes =
  [| 16; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024; 2048; 4096 |]

let nclasses = Array.length size_classes
let header = 8
let cache_refill = 16

let create ?(ncpu = 8) ?(data_start = 64L) heap =
  if ncpu <= 0 then invalid_arg "Alloc.create: ncpu";
  {
    heap;
    ncpu;
    caches = Array.init ncpu (fun _ -> Array.make nclasses []);
    global = Array.make nclasses [];
    bump = data_start;
    live = Hashtbl.create 256;
  }

let heap t = t.heap

let class_of_size sz =
  let sz = Int64.to_int sz in
  let rec find i =
    if i >= nclasses then None
    else if size_classes.(i) >= sz then Some i
    else find (i + 1)
  in
  if sz < 0 then None else find 0

let block_bytes cls = Int64.of_int (header + size_classes.(cls))

(* Carve fresh blocks from the bump region into the global pool. *)
let grow t cls =
  let bytes = block_bytes cls in
  let batch = Int64.mul bytes (Int64.of_int cache_refill) in
  let avail = Int64.sub (Heap.size t.heap) t.bump in
  let take = if avail < batch then Int64.div avail bytes else Int64.of_int cache_refill in
  if take <= 0L then false
  else begin
    let blocks = ref [] in
    for i = 0 to Int64.to_int take - 1 do
      let off = Int64.add t.bump (Int64.mul bytes (Int64.of_int i)) in
      blocks := off :: !blocks
    done;
    let len = Int64.mul bytes take in
    Heap.populate t.heap ~off:t.bump ~len;
    t.bump <- Int64.add t.bump len;
    t.global.(cls) <- !blocks @ t.global.(cls);
    true
  end

let refill t ~cpu cls =
  let rec take n acc =
    if n = 0 then acc
    else
      match t.global.(cls) with
      | [] -> if grow t cls then take n acc else acc
      | b :: rest ->
          t.global.(cls) <- rest;
          take (n - 1) (b :: acc)
  in
  let got = take cache_refill [] in
  t.caches.(cpu).(cls) <- got @ t.caches.(cpu).(cls);
  got <> []

let zero_payload t off cls =
  let n = size_classes.(cls) in
  let i = ref 0 in
  while !i < n do
    Heap.write_off t.heap ~width:8 (Int64.add off (Int64.of_int !i)) 0L;
    i := !i + 8
  done

let alloc t ~cpu size =
  let cpu = cpu mod t.ncpu in
  match class_of_size size with
  | None -> None
  | Some cls -> (
      (if t.caches.(cpu).(cls) = [] then ignore (refill t ~cpu cls));
      match t.caches.(cpu).(cls) with
      | [] -> None
      | block :: rest ->
          t.caches.(cpu).(cls) <- rest;
          Heap.write_off t.heap ~width:8 block (Int64.of_int cls);
          let payload = Int64.add block (Int64.of_int header) in
          zero_payload t payload cls;
          Hashtbl.replace t.live payload cls;
          Some payload)

let free t ~cpu payload =
  let cpu = cpu mod t.ncpu in
  match Hashtbl.find_opt t.live payload with
  | None -> false
  | Some cls ->
      Hashtbl.remove t.live payload;
      let block = Int64.sub payload (Int64.of_int header) in
      t.caches.(cpu).(cls) <- block :: t.caches.(cpu).(cls);
      true

let live_blocks t = Hashtbl.length t.live

let cache_occupancy t ~cpu =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.caches.(cpu mod t.ncpu)
