(** Time-slice extensions for user-space lock holders (§3.4, §4.4).

    A user-space thread holding a spin lock that an extension may contend on
    requests a temporary scheduling extension — implemented in Linux through
    a counter in the thread's rseq region, incremented on lock acquisition
    and decremented on release so nested locks are accounted correctly. The
    extension is 50 µs; a thread still in its critical section when it
    expires is forcibly preempted, and extensions spinning on its lock are
    eventually cancelled (kernel forward progress beats repairing a faulty
    application, §4.4). *)

type t

val slice_ns : float
(** 50 µs. *)

val create : unit -> t

val nesting : t -> int
(** Current lock-nesting count (the rseq counter). *)

val lock_acquired : t -> now:float -> unit
(** Increment nesting; the first acquisition arms the slice deadline. *)

val lock_released : t -> unit
(** Decrement nesting (never below zero); reaching zero disarms. *)

val should_preempt : t -> now:float -> bool
(** Whether the scheduler must forcibly preempt this thread: it holds locks
    and its extended slice has expired. *)

val force_preempt : t -> t
(** The state after a forced preemption: nesting is kept (the lock is still
    held!) but no further extension is granted. *)
