type t = { value : int64; mask : int64 }

let ( &: ) = Int64.logand
let ( |: ) = Int64.logor
let ( ^: ) = Int64.logxor
let ( +: ) = Int64.add
let ( -: ) = Int64.sub
let lnot64 = Int64.lognot

let unknown = { value = 0L; mask = -1L }
let const v = { value = v; mask = 0L }
let make ~value ~mask = { value = value &: lnot64 mask; mask }
let is_unknown t = t.mask = -1L && t.value = 0L
let is_const t = if t.mask = 0L then Some t.value else None
let equal a b = a.value = b.value && a.mask = b.mask
let contains t w = (w ^: t.value) &: lnot64 t.mask = 0L
let umin t = t.value
let umax t = t.value |: t.mask
let within_mask t m = (t.value |: t.mask) &: lnot64 m = 0L

(* position of the highest set bit, 1-based; 0 for zero *)
let fls64 x =
  let rec go i =
    if i < 0 then 0
    else if x &: Int64.shift_left 1L i <> 0L then i + 1
    else go (i - 1)
  in
  go 63

let range lo hi =
  let chi = lo ^: hi in
  let bits = fls64 chi in
  if bits > 63 then unknown
  else
    let delta = Int64.shift_left 1L bits -: 1L in
    { value = lo &: lnot64 delta; mask = delta }

let intersect a b =
  if (a.value ^: b.value) &: lnot64 a.mask &: lnot64 b.mask <> 0L then None
  else
    let mu = a.mask &: b.mask in
    Some { value = (a.value |: b.value) &: lnot64 mu; mask = mu }

let union a b =
  let mu = a.mask |: b.mask |: (a.value ^: b.value) in
  { value = a.value &: lnot64 mu; mask = mu }

let subset a b =
  (* b's known bits must be known in a and agree *)
  a.mask &: lnot64 b.mask = 0L && (a.value ^: b.value) &: lnot64 b.mask = 0L

let add a b =
  let sm = a.mask +: b.mask in
  let sv = a.value +: b.value in
  let sigma = sm +: sv in
  let chi = sigma ^: sv in
  let mu = chi |: a.mask |: b.mask in
  { value = sv &: lnot64 mu; mask = mu }

let sub a b =
  let dv = a.value -: b.value in
  let alpha = dv +: a.mask in
  let beta = dv -: b.mask in
  let chi = alpha ^: beta in
  let mu = chi |: a.mask |: b.mask in
  { value = dv &: lnot64 mu; mask = mu }

let neg a = sub (const 0L) a

let logand a b =
  let alpha = a.value |: a.mask in
  let beta = b.value |: b.mask in
  let v = a.value &: b.value in
  { value = v; mask = alpha &: beta &: lnot64 v }

let logor a b =
  let v = a.value |: b.value in
  let mu = a.mask |: b.mask in
  { value = v; mask = mu &: lnot64 v }

let logxor a b =
  let v = a.value ^: b.value in
  let mu = a.mask |: b.mask in
  { value = v &: lnot64 mu; mask = mu }

let lshift a k =
  { value = Int64.shift_left a.value k; mask = Int64.shift_left a.mask k }

let rshift a k =
  {
    value = Int64.shift_right_logical a.value k;
    mask = Int64.shift_right_logical a.mask k;
  }

let arshift a k =
  (* an unknown sign bit replicates as unknown; the value's copy of that
     bit is 0 by invariant, so the result respects the invariant too *)
  make ~value:(Int64.shift_right a.value k) ~mask:(Int64.shift_right a.mask k)

(* tnum_mul (kernel): decompose a bit by bit; a certain 1 in [a]
   contributes a shifted copy of [b]'s uncertainty, an uncertain bit
   contributes full uncertainty over [b]'s possible bits. *)
let mul a b =
  let acc_v = Int64.mul a.value b.value in
  let rec go a b acc_m =
    if a.value = 0L && a.mask = 0L then acc_m
    else
      let acc_m =
        if a.value &: 1L <> 0L then add acc_m { value = 0L; mask = b.mask }
        else if a.mask &: 1L <> 0L then
          add acc_m { value = 0L; mask = b.value |: b.mask }
        else acc_m
      in
      go (rshift a 1) (lshift b 1) acc_m
  in
  add (const acc_v) (go a b (const 0L))

let div _ _ = unknown
let rem _ _ = unknown

let shift_by f a b =
  match is_const b with
  | Some k -> f a (Int64.to_int k land 63)
  | None -> unknown

let shl a b = shift_by lshift a b
let lshr a b = shift_by rshift a b
let ashr a b = shift_by arshift a b

let pp ppf t =
  match is_const t with
  | Some v -> Format.fprintf ppf "%Ld" v
  | None -> Format.fprintf ppf "0x%Lx/0x%Lx" t.value t.mask
