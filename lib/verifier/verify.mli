(** The KFlex verifier.

    Checks {e kernel-interface compliance} by abstract interpretation over
    the program CFG — the role the eBPF verifier plays in KFlex's design
    (§3). It enforces:

    - no use of uninitialised registers or stack;
    - context accesses within bounds, context read-only;
    - stack accesses within the 512-byte frame at known offsets;
    - helper calls matching their {!Contract.t} (argument shapes, arity);
    - reference discipline: every acquired kernel object is released on all
      paths, never leaked to extension memory, and loops converge for kernel
      resources — anything acquired in an iteration is released within it
      (§3.1);
    - in [Ebpf] mode: no extension heap and no unbounded loops (this is what
      restricts plain eBPF's flexibility, §2.2);
    - in [Kflex] mode: heap accesses are permitted unconditionally — memory
      safety for them is delegated to the SFI runtime — and unbounded loops
      are permitted and reported for C1 instrumentation.

    Alongside the safety verdict, verification produces the {!analysis} that
    Kie consumes: the classification of every heap access as guard-elidable
    or not (range analysis, §3.2/§5.4), the unbounded loops, and the held
    kernel resources at every instruction (object tables, §3.3). *)

type mode = Ebpf | Kflex

type error_kind =
  | E_uninit
  | E_bounds
  | E_type
  | E_helper
  | E_leak
  | E_loop
  | E_resource

type error = { pc : int option; kind : error_kind; msg : string }

type heap_access = {
  pc : int;
  is_store : bool;  (** stores and atomics need write guards *)
  is_atomic : bool;
  width : int;
  addr_reg : Kflex_bpf.Reg.t;
  elidable : bool;
      (** the verifier proved the unsanitised address already lies within the
          heap: a non-null heap pointer whose effective offset range fits
          [0 .. heap_size - width] *)
  formation : bool;
      (** the address is an untrusted word (loaded from the heap or a raw
          scalar) rather than a manipulated heap pointer — its guard {e
          forms} a heap pointer and can never be elided. Table 3 of the
          paper excludes these from the elision statistics. *)
  stored_ptr : bool;
      (** (stores only) the stored value is statically a heap pointer; with
          a shared heap Kie rewrites the store to translate-on-store
          ({!Kflex_bpf.Insn.Xstore}, §3.4). *)
  eff : Range.t;
      (** the effective address the access dereferences — the heap offset
          range (displacement folded in) for pointer accesses, or the raw
          scalar range for formation accesses. Carries the interval and
          known-bits evidence behind the [elidable] verdict, so reports can
          show {e why} a guard was or wasn't elided. *)
}

type branch_verdict =
  | Always_taken  (** the fall-through edge is dead *)
  | Never_taken  (** the taken edge is dead *)

type res_entry = {
  res : State.resource;
  loc : State.loc;  (** where the object lives at this point, on all paths *)
}

type analysis = {
  prog : Kflex_bpf.Prog.t;
  cfg : Kflex_bpf.Cfg.t;
  heap_accesses : heap_access list;  (** in increasing pc order *)
  unbounded : Kflex_bpf.Cfg.loop list;
  res_at : res_entry list array;  (** held resources before each pc *)
  states_at : State.t option array;
      (** final abstract pre-state per pc — the fixpoint facts the verifier
          committed to at each instruction. [None] for unreached pcs. The
          fuzzer's containment oracle checks every concrete register value
          against these ([reg_bounds_sync] for whole programs). *)
  stack_used : int;  (** bytes of stack frame touched *)
  insn_count : int;
  reached : bool array;
      (** per CFG block id: whether the abstract semantics ever delivered a
          state to it. A structurally-connected block that stays unreached
          is dead code behind contradictory branches — lint material. *)
  verdicts : (int * branch_verdict) list;
      (** conditional jumps with a provably-dead edge, by pc, ascending *)
  redundant_masks : (int * int64) list;
      (** [And] instructions (by pc, ascending, with the mask value —
          immediate or known-constant register) that provably cannot change
          their operand: all possibly-set bits already inside the mask —
          redundant hand-written sanitisation *)
}

val run :
  mode:mode ->
  contracts:Contract.registry ->
  ctx_size:int ->
  ?heap_size:int64 ->
  ?sleepable:bool ->
  Kflex_bpf.Prog.t ->
  (analysis, error) result
(** Verify a program. [heap_size] must be a power of two when given; omitting
    it (or running in [Ebpf] mode) makes any heap access an error. *)

val error_kind_name : error_kind -> string
(** Stable lower-case name (["uninit"], ["bounds"], …) — part of the
    [kflexc lint --json] schema contract. *)

val pp_error : Format.formatter -> error -> unit
