(** Abstract register values.

    Registers hold either scalars with range bounds, pointers into one of the
    verifier-known memory regions (context, stack, extension heap) with an
    offset range, references to acquired kernel objects (e.g. sockets) that
    must be released before the extension exits, or [Unknown] — an untrusted
    word loaded from the extension heap.

    [Unknown] captures KFlex's division of labour: the kernel does not care
    what extensions keep in their own memory, so a word read back from the
    heap may be used as a number {e or} as an address — any dereference of it
    is SFI-guarded and therefore safe (§3.2). Pointer and object values may
    be [nullable] until a null check dominates their use. *)

type ptr_kind =
  | Ctx  (** the hook-specific context (read-only to extensions) *)
  | Stack  (** the 512-byte extension stack, offsets relative to r10 *)
  | Heap  (** the extension heap; accesses are SFI-sanitised *)

type t =
  | Uninit  (** never written; any use is an error *)
  | Scalar of Range.t
  | Unknown  (** untrusted word from the extension heap *)
  | Ptr of { kind : ptr_kind; off : Range.t; nullable : bool }
      (** a pointer [region_base + off]; [off] may be refined by range
          analysis. A nullable pointer must be null-checked before use
          (except heap pointers in KFlex mode, where the guard makes any
          dereference safe). *)
  | Obj of { klass : string; id : int; nullable : bool }
      (** an acquired kernel object of class [klass]; [id] identifies the
          acquisition instance for reference tracking. *)

val scalar_top : t

val equal : t -> t -> bool

val join : t -> t -> t
(** Least upper bound. [Unknown] absorbs scalars and heap pointers; joining
    other incompatible shapes (e.g. a stack pointer with a scalar) yields
    [Uninit], making any subsequent use an error — the same effect as the
    eBPF verifier rejecting mixed-provenance values. Objects join only with
    the identical object. *)

val obj_id : t -> int option
(** The resource id when the value is an [Obj]. *)

val pp : Format.formatter -> t -> unit

val pp_ptr_kind : Format.formatter -> ptr_kind -> unit
