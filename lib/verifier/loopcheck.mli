(** Loop termination analysis.

    Classifies each natural loop as {e bounded} (termination statically
    guaranteed) or {e unbounded}. Bounded loops need no instrumentation;
    unbounded loops are rejected outright by plain eBPF and instrumented with
    C1 cancellation points by KFlex (§3.3).

    A loop is proven bounded when it has an exit branch comparing an
    induction register against a constant, the register is updated by exactly
    one constant-step add/subtract inside the loop, nothing else in the loop
    writes it (helper calls clobber r0–r5), and the step direction makes the
    stay-in-loop condition eventually false without wrap-around. This mirrors
    the spirit of the eBPF verifier's bounded-loop support. *)

type verdict = Bounded | Unbounded

val classify : Kflex_bpf.Prog.t -> Kflex_bpf.Cfg.t -> Kflex_bpf.Cfg.loop -> verdict

val unbounded_loops : Kflex_bpf.Prog.t -> Kflex_bpf.Cfg.t -> Kflex_bpf.Cfg.loop list
(** The loops of the program that cannot be proven bounded. *)
