(** Kernel helper contracts.

    The kernel-extension interface consists of helper functions with
    well-defined semantics (§3.3): the verifier checks every call against the
    helper's declared argument types and models its effect — in particular
    which helpers {e acquire} kernel resources (returning an object that must
    later be released) and which {e release} them. This is the information
    from which object tables for extension cancellation are derived. *)

(** Expected shape of an argument (helper args arrive in r1–r5). *)
type arg =
  | A_any  (** no constraint (still must be initialised) *)
  | A_scalar  (** a non-pointer value *)
  | A_ctx  (** the hook context pointer *)
  | A_heap_ptr  (** a (possibly unchecked) extension-heap pointer *)
  | A_heap_or_null  (** heap pointer, null permitted *)
  | A_stack_ptr of int  (** pointer to at least [n] valid stack bytes *)
  | A_obj of string  (** a held, non-null object of this class *)

(** Effect of the return value on the abstract state. *)
type ret =
  | R_scalar  (** an unconstrained scalar *)
  | R_scalar_range of int64 * int64  (** scalar within unsigned bounds *)
  | R_heap_ptr_or_null  (** e.g. [kflex_malloc]; when the first argument is a
      size whose maximum [m] is known, the verifier gives the result an
      offset range of [0 .. heap_size - m], making subsequent field accesses
      guard-elidable *)
  | R_heap_base  (** a non-null pointer to heap offset 0 (e.g.
      [kflex_heap_base], used to address globals) *)
  | R_obj_or_null of string  (** acquires an object of this class, or null *)
  | R_obj of string  (** acquires an object, never null (e.g. a lock handle) *)
  | R_unit  (** r0 is set to 0 *)

type effect_kind =
  | E_pure
  | E_acquire  (** return value is an acquired resource *)
  | E_release of int  (** releases the object passed as argument index [i] *)

type t = {
  name : string;
  args : arg list;  (** at most five *)
  ret : ret;
  eff : effect_kind;
  destructor : string option;
      (** for acquiring helpers: the helper the runtime must call to release
          the object on cancellation (e.g. [bpf_sk_release]). *)
  sleepable : bool;  (** whether the helper may block (disallowed in
          non-sleepable hooks). *)
  lock_ordinal : int option;
      (** for spin-lock acquire/release pairs: a global lock-ordering rank.
          Two locks must always be nested in increasing (ordinal, address)
          order; {!Lifecycle} uses this as the source of truth for
          order-inversion detection. *)
}

val make :
  ?eff:effect_kind ->
  ?destructor:string ->
  ?sleepable:bool ->
  ?lock_ordinal:int ->
  name:string ->
  args:arg list ->
  ret:ret ->
  unit ->
  t

type registry

val registry : t list -> registry
(** @raise Invalid_argument on duplicate helper names or arity > 5. *)

val find : registry -> string -> t option

val names : registry -> string list

val invariant_errors : registry -> string list
(** Structural invariants every registry must satisfy, as human-readable
    violations (empty list = well-formed): acquiring helpers return objects
    and name a registered destructor whose [E_release] argument matches the
    acquired class; releasing helpers point their [E_release] index at an
    [A_obj] argument within arity; lock ordinals are non-negative and agree
    between an acquirer and its destructor. Sorted for determinism. *)

val kflex_base : t list
(** Contracts for the KFlex runtime API of Table 2 ([kflex_malloc],
    [kflex_free], [kflex_spin_lock], [kflex_spin_unlock]) plus the
    [kernel]-side helpers used throughout the paper's examples
    ([bpf_sk_lookup_udp], [bpf_sk_release], map and packet accessors,
    [bpf_ktime_get_ns], [bpf_get_prandom_u32]). *)
