(** Bytecode lint: structured diagnostics from the verifier's analysis.

    Verification answers "is this extension safe to load"; lint answers
    "does this extension say what its author meant". It reuses the
    verifier's abstract-interpretation facts ({!Verify.analysis}) plus a
    conservative syntactic pass over the bytecode, and reports:

    - {e unreachable code}: blocks the abstract semantics never reaches —
      either disconnected from the entry, or guarded by a contradictory
      branch (a [refine] that proves an edge dead);
    - {e dead stores}: stack slots written and then overwritten or
      abandoned at [exit] without an intervening read;
    - {e always/never-taken branches}: conditional jumps with a provably
      dead edge;
    - {e redundant guards}: hand-written [land]-sanitisations that the
      known-bits analysis proves are no-ops — the runtime guard they
      imitate would have been elided anyway;
    - {e ignored helper results}: value-returning helper calls whose [r0]
      is clobbered before any use.

    Every diagnostic is conservative: a finding is only emitted when the
    analysis {e proves} the code is inert on all paths, so there are no
    false positives on verified programs. Dead-store and ignored-result
    tracking run as whole-program backward liveness on {!Dataflow}; a
    helper call only keeps a slot alive when its contract says it can read
    it (an [A_stack_ptr n] argument covering the slot at the abstract call
    state, or an argument shape that could hide a stack pointer). The one
    global give-up left is a stack address escaping [r10] into data flow,
    where slots can alias through any register. *)

type kind =
  | Unreachable
  | Dead_store
  | Always_taken
  | Never_taken
  | Redundant_guard
  | Ignored_result

type diag = { pc : int; kind : kind; msg : string }

val run : contracts:Contract.registry -> Verify.analysis -> diag list
(** Diagnostics in ascending pc order. [contracts] distinguishes
    value-returning helpers from unit ones for {!Ignored_result}. *)

val kind_name : kind -> string
(** Stable kebab-case identifier, e.g. ["dead-store"]. *)

val exit_code : diag list -> int
(** The [kflexc lint] exit-code contract: [0] for a clean program, [1] when
    there are findings. (Exit code [2] — compile/verify failure — is the
    CLI's, since no diagnostics exist then.) *)

val pp_diag : Format.formatter -> diag -> unit
