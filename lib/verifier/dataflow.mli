(** Generic dataflow fixpoint engine over a verified program's CFG.

    Both {!Lint} (slot/r0 liveness) and {!Lifecycle} (resource and lock
    facts) are instances of the same worklist iteration; this module factors
    it out so new analyses are a [spec] record, not a bespoke traversal.

    The engine consumes a {!Verify.analysis} rather than a bare CFG because
    the verifier's results sharpen the graph: blocks the abstract semantics
    never delivered a state to are skipped entirely, and conditional edges
    the verifier proved dead ({!Verify.branch_verdict}) are not propagated
    along — a client analysis therefore never sees facts from an infeasible
    path the verifier already ruled out. *)

type 'f spec = {
  join : 'f -> 'f -> 'f;  (** least upper bound at control-flow merges *)
  equal : 'f -> 'f -> bool;  (** convergence test *)
  transfer : int -> Kflex_bpf.Insn.t -> 'f -> 'f;
      (** [transfer pc insn fact] — the effect of one instruction. Forward:
          maps the pre-fact to the post-fact. Backward: maps the post-fact
          to the pre-fact. *)
  edge : (int -> Kflex_bpf.Insn.t -> taken:bool -> 'f -> 'f) option;
      (** forward only: refine the post-fact of a conditional jump along a
          specific outcome edge (e.g. a null check splitting a [Maybe_null]
          fact). Ignored by {!backward}. *)
}

exception Diverged
(** Raised when the iteration fails to converge within a generous budget —
    a backstop against non-monotone or infinite-lattice specs. Clients
    should degrade to "no findings". *)

val forward : Verify.analysis -> init:'f -> 'f spec -> 'f option array
(** Solve a forward problem. [init] seeds pc 0. Returns the fixpoint
    {e pre}-fact for every pc ([None] for pcs in blocks the verifier never
    reached, or structurally unreachable ones). *)

val backward : Verify.analysis -> exit_fact:'f -> 'f spec -> 'f option array
(** Solve a backward problem. [exit_fact] seeds every [Exit] instruction
    (and any block with no live successors). Returns the fixpoint
    {e post}-fact for every pc — the fact holding {e after} the instruction
    executes, before control reaches any successor. *)
