(** Value ranges for 64-bit registers.

    A simplified version of the eBPF verifier's scalar bounds tracking: each
    value carries simultaneous unsigned ([umin]/[umax]) and signed
    ([smin]/[smax]) interval bounds, kept mutually consistent. This is the
    analysis Kie queries to elide SFI guards: a heap pointer whose offset
    range provably lies within the heap needs no runtime sanitisation
    (§3.2, §5.4 of the paper). *)

type t = private { umin : int64; umax : int64; smin : int64; smax : int64 }

val top : t
(** The unconstrained 64-bit value. *)

val const : int64 -> t
(** A singleton range. *)

val make : ?umin:int64 -> ?umax:int64 -> ?smin:int64 -> ?smax:int64 -> unit -> t
(** A range with the given bounds (missing bounds unconstrained), with
    signed/unsigned consistency deduced. Empty inputs collapse to the
    nearest consistent non-empty range; use {!refine} for emptiness-aware
    intersection. *)

val unsigned : int64 -> int64 -> t
(** [unsigned lo hi] is the range of unsigned values in [lo..hi]. *)

val is_const : t -> int64 option

val equal : t -> t -> bool

val join : t -> t -> t
(** Interval union (least upper bound). *)

val subset : t -> t -> bool
(** [subset a b]: every value admitted by [a] is admitted by [b]. *)

val fits_unsigned : t -> lo:int64 -> hi:int64 -> bool
(** Whether all values in the range lie within [lo..hi] as unsigned
    integers — the guard-elision query. *)

(** Abstract transfer functions, mirroring eBPF ALU semantics (64-bit;
    unsigned division and modulo; division by zero yields 0). All are sound
    over-approximations, exact when both operands are singletons. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t
val neg : t -> t

val refine :
  Kflex_bpf.Insn.cond -> t -> t -> (t * t) option
(** [refine c x y] narrows the ranges of both operands assuming
    [x c y] holds; [None] when the assumption is contradictory (the branch
    is dead). Use with the negated condition for the fall-through edge. *)

val negate_cond : Kflex_bpf.Insn.cond -> Kflex_bpf.Insn.cond
(** The condition that holds exactly when the argument does not. *)

val pp : Format.formatter -> t -> unit
