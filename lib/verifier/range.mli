(** Value ranges for 64-bit registers.

    A simplified version of the eBPF verifier's scalar bounds tracking: each
    value carries simultaneous unsigned ([umin]/[umax]) and signed
    ([smin]/[smax]) interval bounds {e and} a known-bits view ({!Tnum.t}),
    all kept mutually consistent the way the kernel's [reg_bounds_sync]
    does: known bits narrow the unsigned interval, and the interval pins the
    common high bits back into the tnum. This is the analysis Kie queries to
    elide SFI guards: a heap pointer whose offset range provably lies within
    the heap needs no runtime sanitisation (§3.2, §5.4 of the paper), and it
    is masking/alignment arithmetic — where intervals alone are blind but
    known bits are exact — that the tnum half wins back. *)

type t = private {
  umin : int64;
  umax : int64;
  smin : int64;
  smax : int64;
  bits : Tnum.t;  (** known bits, consistent with the unsigned bounds *)
}

val top : t
(** The unconstrained 64-bit value. *)

val const : int64 -> t
(** A singleton range. *)

val make : ?umin:int64 -> ?umax:int64 -> ?smin:int64 -> ?smax:int64 -> unit -> t
(** A range with the given bounds (missing bounds unconstrained), with
    signed/unsigned/known-bits consistency deduced. Empty inputs collapse to
    the nearest consistent non-empty range; use {!refine} for emptiness-aware
    intersection. *)

val unsigned : int64 -> int64 -> t
(** [unsigned lo hi] is the range of unsigned values in [lo..hi]. *)

val top_with_bits : Tnum.t -> t
(** The widest range consistent with the given known bits — what loop
    widening degrades a changing scalar to, so alignment facts survive
    fixpoint iteration. *)

val bits : t -> Tnum.t

val is_const : t -> int64 option

val equal : t -> t -> bool

val join : t -> t -> t
(** Interval union + tnum union (least upper bound). *)

val subset : t -> t -> bool
(** [subset a b]: every value admitted by [a] is admitted by [b]. *)

val fits_unsigned : t -> lo:int64 -> hi:int64 -> bool
(** Whether all values in the range lie within [lo..hi] as unsigned
    integers — the guard-elision query. *)

val set_tnum : bool -> unit
(** Enable/disable the known-bits half of the domain (default enabled).
    Disabled, every constructed value carries [Tnum.unknown] and the
    analysis degenerates to the seed's interval-only precision — the
    ablation switch behind the bench's elision-delta column. Restore to
    [true] after measuring; the setting is global. *)

val tnum_on : unit -> bool
(** Current state of the {!set_tnum} switch. *)

(** Abstract transfer functions, mirroring eBPF ALU semantics (64-bit;
    unsigned division and modulo; division by zero yields 0). All are sound
    over-approximations, exact when both operands are singletons. Each
    computes the interval and known-bits halves independently and
    re-synchronises them. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t
val neg : t -> t

val refine :
  Kflex_bpf.Insn.cond -> t -> t -> (t * t) option
(** [refine c x y] narrows the ranges of both operands assuming
    [x c y] holds; [None] when the assumption is contradictory (the branch
    is dead). Use with the negated condition for the fall-through edge. *)

val negate_cond : Kflex_bpf.Insn.cond -> Kflex_bpf.Insn.cond
(** The condition that holds exactly when the argument does not. *)

val pp : Format.formatter -> t -> unit
(** Constants print as [{v}]; other ranges print the unsigned/signed
    intervals plus a [t:value/mask] known-bits component when it carries
    information the interval does not. *)
