type ptr_kind = Ctx | Stack | Heap

type t =
  | Uninit
  | Scalar of Range.t
  | Unknown
  | Ptr of { kind : ptr_kind; off : Range.t; nullable : bool }
  | Obj of { klass : string; id : int; nullable : bool }

let scalar_top = Scalar Range.top

let equal a b =
  match (a, b) with
  | Uninit, Uninit -> true
  | Unknown, Unknown -> true
  | Scalar x, Scalar y -> Range.equal x y
  | Ptr p, Ptr q ->
      p.kind = q.kind && Range.equal p.off q.off && p.nullable = q.nullable
  | Obj o, Obj p -> o.klass = p.klass && o.id = p.id && o.nullable = p.nullable
  | _ -> false

let join a b =
  match (a, b) with
  | Uninit, _ | _, Uninit -> Uninit
  | Scalar x, Scalar y -> Scalar (Range.join x y)
  | Unknown, (Scalar _ | Unknown | Ptr { kind = Heap; _ })
  | (Scalar _ | Ptr { kind = Heap; _ }), Unknown ->
      Unknown
  | Ptr p, Ptr q when p.kind = q.kind ->
      Ptr
        {
          kind = p.kind;
          off = Range.join p.off q.off;
          nullable = p.nullable || q.nullable;
        }
  | Ptr { kind = Heap; _ }, Scalar _ | Scalar _, Ptr { kind = Heap; _ } ->
      (* a heap address or a number: usable only through a guard *)
      Unknown
  | Obj o, Obj p when o.klass = p.klass && o.id = p.id ->
      Obj { o with nullable = o.nullable || p.nullable }
  | _ -> Uninit

let obj_id = function Obj o -> Some o.id | _ -> None

let pp_ptr_kind ppf k =
  Format.pp_print_string ppf
    (match k with Ctx -> "ctx" | Stack -> "stack" | Heap -> "heap")

let pp ppf = function
  | Uninit -> Format.pp_print_string ppf "uninit"
  | Unknown -> Format.pp_print_string ppf "unknown"
  | Scalar r -> Format.fprintf ppf "scalar%a" Range.pp r
  | Ptr p ->
      Format.fprintf ppf "%a_ptr%a%s" pp_ptr_kind p.kind Range.pp p.off
        (if p.nullable then "?" else "")
  | Obj o ->
      Format.fprintf ppf "obj<%s#%d>%s" o.klass o.id
        (if o.nullable then "?" else "")
