(** Tristate numbers: the verifier's known-bits abstract domain.

    A tnum [{value; mask}] describes the set of 64-bit words [w] such that
    [w land (lnot mask) = value] — every bit is either {e known} (the
    corresponding [mask] bit is 0 and the bit equals the one in [value]) or
    {e unknown} (the [mask] bit is 1, and then the [value] bit is 0 by
    invariant). This is the same domain the Linux eBPF verifier tracks in
    [struct tnum] ([kernel/bpf/tnum.c]) alongside interval bounds; the two
    views are synchronised in {!Range} the way [reg_bounds_sync] does it.

    It is exactly masking and alignment arithmetic — [land] with a
    size-class mask, [lor] of low flag bits, [lxor] scrambles, shifts by
    constants — where intervals lose precision and known bits retain it,
    which is why the domain sharpens guard elision (§3.2/§5.4 of the paper).

    Deviations from kernel tnum semantics (documented per the repo policy):
    - [div] and [rem] return {!unknown} for non-constant operands; the
      kernel has no tnum transfer for divisions either (it falls back to
      unknown in [scalar_min_max_div] paths), but we also make the
      constant/constant case exact at the {!Range} layer rather than here.
    - [intersect] detects contradictions (known bits that disagree) and
      returns [None]; the kernel's [tnum_intersect] assumes compatible
      inputs and silently produces garbage on conflict. We need the
      contradiction signal to prune dead branches during refinement.
    - Shifts with non-constant shift amounts return {!unknown}; the kernel
      models small ranges of shifts ([tnum_arshift] takes [min_shift]).
      Constant shifts — the only ones our compiler emits for scaling — are
      exact on known bits. *)

type t = private { value : int64; mask : int64 }
(** Invariant: [value land mask = 0]. *)

val unknown : t
(** All 64 bits unknown — the top element. *)

val const : int64 -> t
(** All bits known. *)

val make : value:int64 -> mask:int64 -> t
(** Normalises the invariant: bits of [value] under [mask] are cleared. *)

val is_unknown : t -> bool

val is_const : t -> int64 option

val equal : t -> t -> bool

val contains : t -> int64 -> bool
(** Membership: all known bits of the tnum agree with the word. *)

val umin : t -> int64
(** Smallest member as unsigned: all unknown bits 0, i.e. [value]. *)

val umax : t -> int64
(** Largest member as unsigned: all unknown bits 1, i.e. [value lor mask]. *)

val within_mask : t -> int64 -> bool
(** [within_mask t m]: every member [w] satisfies [w land m = w] — i.e. all
    possibly-set bits lie inside [m]. This is the "redundant sanitisation"
    query: an [And] with [m] cannot change such a value. *)

val range : int64 -> int64 -> t
(** [range lo hi] (unsigned [lo <= hi]): the best tnum containing the whole
    interval — the common high-bit prefix of [lo] and [hi] is known, bits
    below the highest differing bit are unknown (kernel [tnum_range]). *)

val intersect : t -> t -> t option
(** Greatest lower bound; [None] when known bits disagree (empty set). *)

val union : t -> t -> t
(** Least upper bound (kernel [tnum_union]). *)

val subset : t -> t -> bool
(** [subset a b]: every member of [a] is a member of [b]. *)

(** {1 Transfer functions}

    Sound over-approximations of 64-bit machine arithmetic, ported from
    [kernel/bpf/tnum.c]. All are exact when both operands are constants. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Always {!unknown} unless handled as constants by the caller. *)

val rem : t -> t -> t
(** Always {!unknown} unless handled as constants by the caller. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val lshift : t -> int -> t
(** Shift by a known amount in [0..63]. *)

val rshift : t -> int -> t
val arshift : t -> int -> t

val shl : t -> t -> t
(** Shift by a tnum amount: exact when the amount is constant (taken
    modulo 64, as the ISA does), otherwise {!unknown}. *)

val lshr : t -> t -> t
val ashr : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Constants print as the value; otherwise [v/m] in hex, e.g. [0x3c/0xff]
    — kernel notation: value slash mask. *)
