type arg =
  | A_any
  | A_scalar
  | A_ctx
  | A_heap_ptr
  | A_heap_or_null
  | A_stack_ptr of int
  | A_obj of string

type ret =
  | R_scalar
  | R_scalar_range of int64 * int64
  | R_heap_ptr_or_null
  | R_heap_base
  | R_obj_or_null of string
  | R_obj of string
  | R_unit

type effect_kind = E_pure | E_acquire | E_release of int

type t = {
  name : string;
  args : arg list;
  ret : ret;
  eff : effect_kind;
  destructor : string option;
  sleepable : bool;
  lock_ordinal : int option;
}

let make ?(eff = E_pure) ?destructor ?(sleepable = false) ?lock_ordinal ~name
    ~args ~ret () =
  { name; args; ret; eff; destructor; sleepable; lock_ordinal }

type registry = (string, t) Hashtbl.t

let registry contracts =
  let h = Hashtbl.create 32 in
  List.iter
    (fun c ->
      if List.length c.args > 5 then
        invalid_arg (Printf.sprintf "Contract.registry: %s has arity > 5" c.name);
      if Hashtbl.mem h c.name then
        invalid_arg (Printf.sprintf "Contract.registry: duplicate %s" c.name);
      Hashtbl.replace h c.name c)
    contracts;
  h

let find reg name = Hashtbl.find_opt reg name

let names reg =
  Hashtbl.fold (fun k _ acc -> k :: acc) reg [] |> List.sort String.compare

let invariant_errors reg =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let check c =
    let n = c.name in
    (match c.lock_ordinal with
    | Some k when k < 0 -> err "%s: negative lock ordinal %d" n k
    | _ -> ());
    (match (c.ret, c.eff) with
    | (R_obj _ | R_obj_or_null _), E_acquire -> ()
    | (R_obj _ | R_obj_or_null _), _ ->
        err "%s: returns an object but is not E_acquire" n
    | _, E_acquire -> err "%s: E_acquire but does not return an object" n
    | _ -> ());
    (match c.eff with
    | E_release i ->
        if i < 0 || i >= List.length c.args then
          err "%s: E_release %d out of argument range" n i
        else (
          (match List.nth c.args i with
          | A_obj _ -> ()
          | _ -> err "%s: E_release %d argument is not A_obj" n i);
          if c.lock_ordinal <> None then
            let paired =
              Hashtbl.fold
                (fun _ a acc -> acc || a.destructor = Some n)
                reg false
            in
            if not paired then
              err "%s: lock-ordinal release is no contract's destructor" n)
    | _ -> ());
    match (c.eff, c.destructor) with
    | E_acquire, None -> err "%s: E_acquire without a destructor" n
    | E_acquire, Some d -> (
        let klass =
          match c.ret with
          | R_obj k | R_obj_or_null k -> Some k
          | _ -> None
        in
        match Hashtbl.find_opt reg d with
        | None -> err "%s: destructor %s is not registered" n d
        | Some dc -> (
            (match dc.eff with
            | E_release i -> (
                match (List.nth_opt dc.args i, klass) with
                | Some (A_obj k'), Some k when k <> k' ->
                    err "%s: destructor %s releases class %s, acquires %s" n d
                      k' k
                | _ -> ())
            | _ -> err "%s: destructor %s has no E_release effect" n d);
            match (c.lock_ordinal, dc.lock_ordinal) with
            | Some a, Some b when a <> b ->
                err "%s: lock ordinal %d disagrees with destructor %s (%d)" n a
                  d b
            | Some _, None ->
                err "%s: has a lock ordinal but destructor %s does not" n d
            | _ -> ()))
    | _ -> ()
  in
  Hashtbl.iter (fun _ c -> check c) reg;
  List.sort String.compare !errs

let kflex_base =
  [
    (* KFlex runtime API (Table 2 of the paper). *)
    make ~name:"kflex_malloc" ~args:[ A_scalar ] ~ret:R_heap_ptr_or_null
      ~destructor:"kflex_free" ();
    make ~name:"kflex_heap_base" ~args:[] ~ret:R_heap_base ();
    make ~name:"kflex_free" ~args:[ A_heap_or_null ] ~ret:R_unit ();
    make ~name:"kflex_spin_lock" ~args:[ A_heap_ptr ] ~ret:(R_obj "kflex_lock")
      ~eff:E_acquire ~destructor:"kflex_spin_unlock" ~lock_ordinal:0 ();
    make ~name:"kflex_spin_unlock" ~args:[ A_obj "kflex_lock" ] ~ret:R_unit
      ~eff:(E_release 0) ~lock_ordinal:0 ();
    (* Kernel interface helpers used by the paper's extensions. *)
    make ~name:"bpf_sk_lookup_udp"
      ~args:[ A_ctx; A_stack_ptr 16; A_scalar; A_scalar; A_scalar ]
      ~ret:(R_obj_or_null "sock") ~eff:E_acquire ~destructor:"bpf_sk_release" ();
    make ~name:"bpf_sk_lookup_tcp"
      ~args:[ A_ctx; A_stack_ptr 16; A_scalar; A_scalar; A_scalar ]
      ~ret:(R_obj_or_null "sock") ~eff:E_acquire ~destructor:"bpf_sk_release" ();
    make ~name:"bpf_sk_release" ~args:[ A_obj "sock" ] ~ret:R_unit
      ~eff:(E_release 0) ();
    make ~name:"bpf_ktime_get_ns" ~args:[] ~ret:R_scalar ();
    make ~name:"bpf_get_prandom_u32" ~args:[]
      ~ret:(R_scalar_range (0L, 0xffff_ffffL)) ();
    make ~name:"bpf_get_smp_processor_id" ~args:[]
      ~ret:(R_scalar_range (0L, 1023L)) ();
    (* Packet accessors: bounds-checked by the kernel side, aborting the
       program on out-of-range offsets like legacy BPF_LD_ABS. *)
    make ~name:"pkt_len" ~args:[ A_ctx ] ~ret:(R_scalar_range (0L, 65535L)) ();
    make ~name:"pkt_read_u8" ~args:[ A_ctx; A_scalar ]
      ~ret:(R_scalar_range (0L, 0xffL)) ();
    make ~name:"pkt_read_u16" ~args:[ A_ctx; A_scalar ]
      ~ret:(R_scalar_range (0L, 0xffffL)) ();
    make ~name:"pkt_read_u32" ~args:[ A_ctx; A_scalar ]
      ~ret:(R_scalar_range (0L, 0xffff_ffffL)) ();
    make ~name:"pkt_read_u64" ~args:[ A_ctx; A_scalar ] ~ret:R_scalar ();
    make ~name:"pkt_write_u8" ~args:[ A_ctx; A_scalar; A_scalar ] ~ret:R_unit ();
    make ~name:"pkt_write_u16" ~args:[ A_ctx; A_scalar; A_scalar ] ~ret:R_unit ();
    make ~name:"pkt_write_u32" ~args:[ A_ctx; A_scalar; A_scalar ] ~ret:R_unit ();
    make ~name:"pkt_write_u64" ~args:[ A_ctx; A_scalar; A_scalar ] ~ret:R_unit ();
    (* eBPF map helpers (copy-through-stack variants; used by the BMC
       baseline, which runs without a KFlex heap). *)
    make ~name:"bpf_map_lookup" ~args:[ A_scalar; A_stack_ptr 8; A_stack_ptr 8 ]
      ~ret:(R_scalar_range (0L, 1L)) ();
    make ~name:"bpf_map_update" ~args:[ A_scalar; A_stack_ptr 8; A_stack_ptr 8 ]
      ~ret:(R_scalar_range (0L, 1L)) ();
    make ~name:"bpf_map_delete" ~args:[ A_scalar; A_stack_ptr 8 ]
      ~ret:(R_scalar_range (0L, 1L)) ();
    (* Shared-state map helpers. [bpf_map_lock] is an acquiring helper with
       a NULL-able handle — the verifier's null refinement forces the
       0-check before the handle is used, and the lifecycle pass enforces
       lock pairing and ordering through lock_ordinal (1: map-value locks
       nest inside the heap spin lock's ordinal 0, never the reverse). *)
    make ~name:"bpf_map_lock" ~args:[ A_scalar; A_stack_ptr 8 ]
      ~ret:(R_obj_or_null "map_lock") ~eff:E_acquire
      ~destructor:"bpf_map_unlock" ~lock_ordinal:1 ();
    make ~name:"bpf_map_unlock" ~args:[ A_obj "map_lock" ] ~ret:R_unit
      ~eff:(E_release 0) ~lock_ordinal:1 ();
    make ~name:"bpf_map_sum" ~args:[ A_scalar; A_stack_ptr 8; A_stack_ptr 8 ]
      ~ret:(R_scalar_range (0L, 1L)) ();
  ]
