open Kflex_bpf

type mode = Ebpf | Kflex

type error_kind =
  | E_uninit
  | E_bounds
  | E_type
  | E_helper
  | E_leak
  | E_loop
  | E_resource

type error = { pc : int option; kind : error_kind; msg : string }

type heap_access = {
  pc : int;
  is_store : bool;
  is_atomic : bool;
  width : int;
  addr_reg : Reg.t;
  elidable : bool;
  formation : bool;
  stored_ptr : bool;
  eff : Range.t;
}

type branch_verdict = Always_taken | Never_taken

type res_entry = { res : State.resource; loc : State.loc }

type analysis = {
  prog : Prog.t;
  cfg : Cfg.t;
  heap_accesses : heap_access list;
  unbounded : Cfg.loop list;
  res_at : res_entry list array;
  states_at : State.t option array;
  stack_used : int;
  insn_count : int;
  reached : bool array;
  verdicts : (int * branch_verdict) list;
  redundant_masks : (int * int64) list;
}

exception Err of error

let err ?pc kind fmt =
  Format.kasprintf (fun msg -> raise (Err { pc; kind; msg })) fmt

let error_kind_name = function
  | E_uninit -> "uninit"
  | E_bounds -> "bounds"
  | E_type -> "type"
  | E_helper -> "helper"
  | E_leak -> "leak"
  | E_loop -> "loop"
  | E_resource -> "resource"

let pp_error ppf e =
  let kind = error_kind_name e.kind in
  match e.pc with
  | Some pc -> Format.fprintf ppf "insn %d: [%s] %s" pc kind e.msg
  | None -> Format.fprintf ppf "[%s] %s" kind e.msg

(* ------------------------------------------------------------------ *)

type env = {
  mode : mode;
  contracts : Contract.registry;
  ctx_size : int;
  heap_size : int64 option;
  sleepable : bool;
  (* min byte index of the stack frame touched, for stack_used *)
  min_stack : int ref;
}

let use ~pc st r =
  match State.get st r with
  | Value.Uninit -> err ~pc E_uninit "use of uninitialised %a" Reg.pp r
  | v -> v

let src_value ~pc st = function
  | Insn.Reg r -> use ~pc st r
  | Insn.Imm i -> Value.Scalar (Range.const i)

let heapish = function
  | Value.Scalar _ | Value.Unknown | Value.Ptr { kind = Value.Heap; _ } -> true
  | _ -> false

let require_heap env ~pc =
  match (env.mode, env.heap_size) with
  | Kflex, Some sz -> sz
  | Kflex, None -> err ~pc E_type "extension uses its heap but none is attached"
  | Ebpf, _ ->
      err ~pc E_type
        "memory access outside ctx/stack: plain eBPF rejects extension-defined \
         memory (use KFlex mode with a heap)"

(* --- ALU transfer ------------------------------------------------- *)

let range_op (op : Insn.alu_op) =
  match op with
  | Insn.Add -> Range.add
  | Insn.Sub -> Range.sub
  | Insn.Mul -> Range.mul
  | Insn.Div -> Range.div
  | Insn.Mod -> Range.rem
  | Insn.And -> Range.logand
  | Insn.Or -> Range.logor
  | Insn.Xor -> Range.logxor
  | Insn.Lsh -> Range.shl
  | Insn.Rsh -> Range.lshr
  | Insn.Arsh -> Range.ashr

let alu_value env ~pc op va vb =
  let open Value in
  match (va, vb, op) with
  | Scalar a, Scalar b, _ -> Scalar ((range_op op) a b)
  (* heap pointer arithmetic: add/sub scalar keeps the pointer *)
  | Ptr ({ kind = Heap; _ } as p), Scalar s, Insn.Add ->
      Ptr { p with off = Range.add p.off s }
  | Ptr ({ kind = Heap; _ } as p), Scalar s, Insn.Sub ->
      Ptr { p with off = Range.sub p.off s }
  | Scalar s, Ptr ({ kind = Heap; _ } as p), Insn.Add ->
      Ptr { p with off = Range.add p.off s }
  | Ptr { kind = Heap; off = o1; _ }, Ptr { kind = Heap; off = o2; _ }, Insn.Sub
    ->
      Scalar (Range.sub o1 o2)
  (* other operations involving heap words degrade to untrusted data, which
     is fine: any dereference will be guarded *)
  | (Ptr { kind = Heap; _ } | Unknown | Scalar _),
      (Ptr { kind = Heap; _ } | Unknown | Scalar _), _ ->
      ignore (require_heap env ~pc);
      Unknown
  (* ctx/stack pointer arithmetic: constant-range add/sub only, non-null *)
  | Ptr ({ kind = (Ctx | Stack) as k; nullable = false; _ } as p), Scalar s,
      (Insn.Add | Insn.Sub) ->
      let off =
        if op = Insn.Add then Range.add p.off s else Range.sub p.off s
      in
      Ptr { kind = k; off; nullable = false }
  | Ptr { kind = Stack; off = o1; _ }, Ptr { kind = Stack; off = o2; _ },
      Insn.Sub ->
      Scalar (Range.sub o1 o2)
  | Ptr { nullable = true; kind = Ctx | Stack; _ }, _, _ ->
      err ~pc E_type "arithmetic on possibly-null pointer"
  | Obj _, _, _ | _, Obj _, _ ->
      err ~pc E_type "arithmetic on kernel object pointer"
  | _ -> err ~pc E_type "invalid pointer arithmetic"

(* --- stack access -------------------------------------------------- *)

let stack_byte ~pc off disp =
  match Range.is_const off with
  | None -> err ~pc E_bounds "stack access at variable offset"
  | Some o ->
      let byte = Int64.to_int o + disp + Prog.stack_size in
      if byte < 0 || byte + 1 > Prog.stack_size then
        err ~pc E_bounds "stack access out of frame (byte %d)" byte
      else byte

let touch_stack env byte = if byte < !(env.min_stack) then env.min_stack := byte

let stack_load env ~pc st off disp width =
  let byte = stack_byte ~pc off disp in
  if byte + width > Prog.stack_size then
    err ~pc E_bounds "stack access past frame end";
  touch_stack env byte;
  let slot = byte / 8 in
  if width = 8 && byte mod 8 = 0 then
    match st.State.stack.(slot) with
    | State.S_spill v -> v
    | State.S_misc -> Value.scalar_top
    | State.S_empty -> err ~pc E_uninit "read of uninitialised stack slot %d" slot
  else begin
    let last = (byte + width - 1) / 8 in
    for s = slot to last do
      match st.State.stack.(s) with
      | State.S_empty ->
          err ~pc E_uninit "read of uninitialised stack slot %d" s
      | State.S_spill (Value.Ptr _ | Value.Obj _) when width < 8 ->
          err ~pc E_type "partial read of spilled pointer"
      | _ -> ()
    done;
    if width = 8 then Value.scalar_top
    else
      Value.Scalar
        (Range.unsigned 0L Int64.(sub (shift_left 1L (8 * width)) 1L))
  end

let stack_store env ~pc st off disp width v =
  let byte = stack_byte ~pc off disp in
  if byte + width > Prog.stack_size then
    err ~pc E_bounds "stack access past frame end";
  touch_stack env byte;
  if width = 8 && byte mod 8 = 0 then
    State.write_slot st (byte / 8) (State.S_spill v)
  else begin
    (match v with
    | Value.Ptr _ | Value.Obj _ ->
        err ~pc E_type "partial spill of pointer to stack"
    | _ -> ());
    let st = ref st in
    for s = byte / 8 to (byte + width - 1) / 8 do
      (match !st.State.stack.(s) with
      | State.S_spill (Value.Obj _) ->
          err ~pc E_resource "overwriting spilled kernel object"
      | _ -> ());
      st := State.write_slot !st s State.S_misc
    done;
    !st
  end

(* --- memory access dispatch ---------------------------------------- *)

type mem_region =
  | M_ctx
  | M_stack
  | M_heap of { elidable : bool; formation : bool; eff : Range.t }

let classify_addr env ~pc ~width ~disp v =
  match v with
  | Value.Ptr { kind = Value.Ctx; off; nullable } ->
      if nullable then err ~pc E_type "possibly-null context pointer dereference";
      let eff = Range.add off (Range.const (Int64.of_int disp)) in
      if
        not
          (Range.fits_unsigned eff ~lo:0L
             ~hi:(Int64.of_int (env.ctx_size - width)))
      then err ~pc E_bounds "context access out of bounds (ctx size %d)" env.ctx_size;
      M_ctx
  | Value.Ptr { kind = Value.Stack; _ } -> M_stack
  | Value.Ptr { kind = Value.Heap; off; nullable } ->
      let hs = require_heap env ~pc in
      let lim = Int64.sub hs (Int64.of_int width) in
      (* The 16-bit displacement is absorbed by the guard zones (§4.1), but
         elision demands the full effective address be provably in-heap. *)
      let eff = Range.add off (Range.const (Int64.of_int disp)) in
      let elidable = (not nullable) && Range.fits_unsigned eff ~lo:0L ~hi:lim in
      M_heap { elidable; formation = false; eff }
  | Value.Scalar r ->
      ignore (require_heap env ~pc);
      M_heap
        {
          elidable = false;
          formation = true;
          eff = Range.add r (Range.const (Int64.of_int disp));
        }
  | Value.Unknown ->
      ignore (require_heap env ~pc);
      M_heap { elidable = false; formation = true; eff = Range.top }
  | Value.Obj _ ->
      err ~pc E_type
        "direct dereference of kernel object (use the helper interface)"
  | Value.Uninit -> err ~pc E_uninit "dereference of uninitialised register"

let check_storable ~pc v =
  match v with
  | Value.Uninit -> err ~pc E_uninit "store of uninitialised value"
  | Value.Obj _ ->
      err ~pc E_resource "kernel object pointer leaked to extension memory"
  | Value.Ptr { kind = Value.Ctx | Value.Stack; _ } ->
      err ~pc E_resource "kernel address leaked to extension memory"
  | _ -> ()

(* --- helper calls --------------------------------------------------- *)

let arg_regs = [| Reg.R1; Reg.R2; Reg.R3; Reg.R4; Reg.R5 |]

let check_arg env ~pc ~helper st i (shape : Contract.arg) =
  let r = arg_regs.(i) in
  let v = use ~pc st r in
  let bad expect =
    err ~pc E_helper "%s arg %d: expected %s, got %a" helper (i + 1) expect
      Value.pp v
  in
  match shape with
  | Contract.A_any -> st
  | Contract.A_scalar -> (
      match v with Value.Scalar _ | Value.Unknown -> st | _ -> bad "scalar")
  | Contract.A_ctx -> (
      match v with
      | Value.Ptr { kind = Value.Ctx; nullable = false; _ } -> st
      | _ -> bad "context pointer")
  | Contract.A_heap_ptr ->
      ignore (require_heap env ~pc);
      if heapish v then st else bad "heap pointer"
  | Contract.A_heap_or_null ->
      ignore (require_heap env ~pc);
      if heapish v then st else bad "heap pointer or null"
  | Contract.A_stack_ptr n -> (
      match v with
      | Value.Ptr { kind = Value.Stack; off; nullable = false } ->
          (* bytes [off .. off+n) must be initialised; helper may overwrite *)
          let byte = stack_byte ~pc off 0 in
          if byte + n > Prog.stack_size then
            err ~pc E_bounds "%s arg %d: stack buffer past frame end" helper
              (i + 1);
          touch_stack env byte;
          let stack = Array.copy st.State.stack in
          for s = byte / 8 to (byte + n - 1) / 8 do
            (match stack.(s) with
            | State.S_empty ->
                err ~pc E_helper "%s arg %d: uninitialised stack buffer" helper
                  (i + 1)
            | State.S_spill (Value.Obj _) ->
                err ~pc E_resource "%s arg %d: stack buffer holds kernel object"
                  helper (i + 1)
            | _ -> ());
            stack.(s) <- State.S_misc
          done;
          { st with State.stack }
      | _ -> bad "stack pointer")
  | Contract.A_obj k -> (
      match v with
      | Value.Obj { klass; nullable = false; _ } when klass = k -> st
      | Value.Obj { klass; nullable = true; _ } when klass = k ->
          err ~pc E_helper "%s arg %d: possibly-null %s (null-check it first)"
            helper (i + 1) k
      | _ -> bad (Printf.sprintf "held %s object" k))

let transfer_call env ~pc st name =
  (* Resource ids are the acquiring call's pc: deterministic across fixpoint
     iterations (states from different passes must join), and unique per
     acquisition site. At most one resource per site can be live — a second
     live acquisition from the same site is only reachable through a loop,
     which the §3.1 convergence rule already forbids. *)
  let c =
    match Contract.find env.contracts name with
    | Some c -> c
    | None -> err ~pc E_helper "unknown helper %s" name
  in
  if c.Contract.sleepable && not env.sleepable then
    err ~pc E_helper "%s may sleep but the hook is non-sleepable" name;
  (* upper bound of the first scalar argument, pre-clobber (allocator sizes) *)
  let size_max =
    match c.Contract.args with
    | first :: _ when first = Contract.A_scalar -> (
        match State.get st Reg.R1 with
        | Value.Scalar r ->
            let top = Range.top in
            if Range.equal r top then None else Some r.Range.umax
        | _ -> None)
    | _ -> None
  in
  let st =
    List.fold_left
      (fun (st, i) shape -> (check_arg env ~pc ~helper:name st i shape, i + 1))
      (st, 0) c.Contract.args
    |> fst
  in
  (* release effects act on the argument object *)
  let st =
    match c.Contract.eff with
    | Contract.E_release i -> (
        let v = State.get st arg_regs.(i) in
        match Value.obj_id v with
        | Some id ->
            if not (State.has_res st id) then
              err ~pc E_resource "%s: releasing object not held" name;
            let st = State.remove_res st id in
            State.substitute_obj st ~id Value.Uninit
        | None -> err ~pc E_helper "%s: release argument is not an object" name)
    | _ -> st
  in
  (* clobber caller-saved registers *)
  let st =
    List.fold_left (fun st r -> State.set st r Value.Uninit) st Reg.caller_saved
  in
  (* return value + acquire effects *)
  let acquire ~nullable klass =
    let destructor =
      match c.Contract.destructor with
      | Some d -> d
      | None -> err ~pc E_helper "%s acquires %s but has no destructor" name klass
    in
    let id = pc in
    if State.has_res st id then
      err ~pc E_resource
        "%s: re-acquiring while the object from this call site is still held          (release it within the loop iteration, §3.1)"
        name;
    let st = State.add_res st { State.id; klass; destructor } in
    State.set st Reg.R0 (Value.Obj { klass; id; nullable })
  in
  match c.Contract.ret with
  | Contract.R_scalar -> State.set st Reg.R0 Value.scalar_top
  | Contract.R_scalar_range (lo, hi) ->
      State.set st Reg.R0 (Value.Scalar (Range.unsigned lo hi))
  | Contract.R_unit -> State.set st Reg.R0 (Value.Scalar (Range.const 0L))
  | Contract.R_heap_ptr_or_null ->
      let hs = require_heap env ~pc in
      (* An allocator never returns a block overhanging the heap end, so a
         known allocation size bounds the result's offset — this is what
         makes field accesses on freshly allocated objects guard-elidable
         (§5.4). [size_max] is read before the clobber of r1–r5 above, so
         recompute it from the pre-call state. *)
      let off =
        match size_max with
        | Some m when Int64.unsigned_compare m hs <= 0 ->
            Range.unsigned 0L (Int64.sub hs m)
        | _ -> Range.top
      in
      State.set st Reg.R0 (Value.Ptr { kind = Value.Heap; off; nullable = true })
  | Contract.R_heap_base ->
      ignore (require_heap env ~pc);
      State.set st Reg.R0
        (Value.Ptr { kind = Value.Heap; off = Range.const 0L; nullable = false })
  | Contract.R_obj klass -> acquire ~nullable:false klass
  | Contract.R_obj_or_null klass -> acquire ~nullable:true klass

(* --- conditional refinement ----------------------------------------- *)

let refine_branch ~pc st cond a srcv taken =
  (* Returns the state for the edge where [cond] holds iff [taken]. None when
     the edge is dead. *)
  let c = if taken then cond else Range.negate_cond cond in
  let va = State.get st a in
  let vb = match srcv with `Reg (_, v) -> v | `Imm i -> Value.Scalar (Range.const i) in
  match (va, vb) with
  | Value.Scalar ra, Value.Scalar rb -> (
      match Range.refine c ra rb with
      | None -> None
      | Some (ra', rb') ->
          let st = State.refine_mirrored st a (Value.Scalar ra') in
          let st =
            match srcv with
            | `Reg (rb_reg, _) ->
                State.refine_mirrored st rb_reg (Value.Scalar rb')
            | `Imm _ -> st
          in
          Some st)
  (* null checks on nullable objects: the null edge drops the resource *)
  | Value.Obj o, Value.Scalar rz when Range.is_const rz = Some 0L -> (
      match c with
      | Insn.Eq ->
          if o.nullable then
            let st = State.remove_res st o.id in
            Some
              (State.substitute_obj st ~id:o.id
                 (Value.Scalar (Range.const 0L)))
          else None (* a held object is never null: edge dead *)
      | Insn.Ne -> Some (State.set_nonnull_obj st ~id:o.id)
      | _ -> Some st)
  (* null checks on nullable pointers *)
  | Value.Ptr p, Value.Scalar rz when Range.is_const rz = Some 0L -> (
      match c with
      | Insn.Eq ->
          if p.nullable then Some (State.set st a (Value.Scalar (Range.const 0L)))
          else if p.kind = Value.Heap then Some st
          else None
      | Insn.Ne -> Some (State.set st a (Value.Ptr { p with nullable = false }))
      | _ -> Some st)
  | (Value.Unknown | Value.Scalar _ | Value.Ptr _ | Value.Obj _), _ -> Some st
  | Value.Uninit, _ -> err ~pc E_uninit "branch on uninitialised register"

(* --- per-instruction transfer ---------------------------------------- *)

(* Result of executing one instruction: either fall-through-and/or-jump
   states, or termination. *)
type outcome =
  | Fall of State.t
  | Branch of State.t option * State.t option (* taken, fallthrough *)
  | Jump of State.t
  | Stop

let record_access accesses env ~pc ~is_store ~is_atomic ?(stored_ptr = false)
    ~width ~addr_reg region =
  match region with
  | M_heap { elidable; formation; eff } ->
      accesses :=
        {
          pc;
          is_store;
          is_atomic;
          width;
          addr_reg;
          elidable;
          formation;
          stored_ptr;
          eff;
        }
        :: !accesses
  | _ -> ignore env

let transfer env accesses ~pc st (insn : Insn.t) =
  match insn with
  | Insn.Mov (d, s) -> Fall (State.set st d (src_value ~pc st s))
  | Insn.Neg d -> (
      match use ~pc st d with
      | Value.Scalar r -> Fall (State.set st d (Value.Scalar (Range.neg r)))
      | Value.Unknown -> Fall (State.set st d Value.Unknown)
      | _ -> err ~pc E_type "negation of pointer")
  | Insn.Alu (op, d, s) ->
      let va = use ~pc st d and vb = src_value ~pc st s in
      Fall (State.set st d (alu_value env ~pc op va vb))
  | Insn.Ldx (sz, d, s, disp) -> (
      let width = Insn.size_bytes sz in
      let v = use ~pc st s in
      let region = classify_addr env ~pc ~width ~disp v in
      record_access accesses env ~pc ~is_store:false ~is_atomic:false ~width
        ~addr_reg:s region;
      match region with
      | M_ctx ->
          let bound =
            if width = 8 then Value.scalar_top
            else
              Value.Scalar
                (Range.unsigned 0L Int64.(sub (shift_left 1L (8 * width)) 1L))
          in
          Fall (State.set st d bound)
      | M_stack ->
          let off =
            match v with Value.Ptr p -> p.off | _ -> assert false
          in
          let loaded = stack_load env ~pc st off disp width in
          let byte = stack_byte ~pc off disp in
          if width = 8 && byte mod 8 = 0 then
            Fall (State.set_from_slot st d loaded (byte / 8))
          else Fall (State.set st d loaded)
      | M_heap _ ->
          let loaded =
            if width = 8 then Value.Unknown
            else
              Value.Scalar
                (Range.unsigned 0L Int64.(sub (shift_left 1L (8 * width)) 1L))
          in
          Fall (State.set st d loaded))
  | Insn.Stx (sz, d, disp, _) | Insn.St (sz, d, disp, _) -> (
      let width = Insn.size_bytes sz in
      let stored =
        match insn with
        | Insn.Stx (_, _, _, s') -> use ~pc st s'
        | Insn.St (_, _, _, imm) -> Value.Scalar (Range.const imm)
        | _ -> assert false
      in
      let v = use ~pc st d in
      let region = classify_addr env ~pc ~width ~disp v in
      let stored_ptr =
        match stored with Value.Ptr { kind = Value.Heap; _ } -> true | _ -> false
      in
      record_access accesses env ~pc ~is_store:true ~is_atomic:false ~stored_ptr
        ~width ~addr_reg:d region;
      match region with
      | M_ctx -> err ~pc E_type "store to read-only context"
      | M_stack ->
          let off = match v with Value.Ptr p -> p.off | _ -> assert false in
          Fall (stack_store env ~pc st off disp width stored)
      | M_heap _ ->
          check_storable ~pc stored;
          Fall st)
  | Insn.Atomic (op, sz, d, disp, s) -> (
      let width = Insn.size_bytes sz in
      let vd = use ~pc st d in
      let vs = use ~pc st s in
      check_storable ~pc vs;
      let region = classify_addr env ~pc ~width ~disp vd in
      (match region with
      | M_heap _ -> ()
      | _ -> err ~pc E_type "atomic access outside the extension heap");
      record_access accesses env ~pc ~is_store:true ~is_atomic:true ~width
        ~addr_reg:d region;
      match op with
      | Insn.Fetch_add | Insn.Fetch_or | Insn.Fetch_and | Insn.Fetch_xor
      | Insn.Xchg ->
          Fall (State.set st s Value.Unknown)
      | Insn.Cmpxchg ->
          ignore (use ~pc st Reg.R0);
          Fall (State.set st Reg.R0 Value.Unknown)
      | _ -> Fall st)
  | Insn.Ja _ -> Jump st
  | Insn.Jcond (cond, a, s, _) ->
      ignore (use ~pc st a);
      let srcv =
        match s with
        | Insn.Reg r -> `Reg (r, use ~pc st r)
        | Insn.Imm i -> `Imm i
      in
      let taken = refine_branch ~pc st cond a srcv true in
      let fall = refine_branch ~pc st cond a srcv false in
      Branch (taken, fall)
  | Insn.Call name -> Fall (transfer_call env ~pc st name)
  | Insn.Exit ->
      (match use ~pc st Reg.R0 with
      | Value.Scalar _ | Value.Unknown -> ()
      | v -> err ~pc E_type "exit with non-scalar r0 (%a)" Value.pp v);
      (match st.State.res with
      | [] -> ()
      | r :: _ ->
          err ~pc E_resource "exit while holding %s (acquired id %d)" r.klass
            r.id);
      Stop
  | Insn.Guard _ | Insn.Checkpoint _ | Insn.Xstore _ ->
      err ~pc E_type "instrumentation instruction in unverified program"

let check_leak ~pc st =
  match State.leaked st with
  | [] -> ()
  | r :: _ ->
      err ~pc E_leak
        "all copies of held %s (id %d) were lost; the runtime could not \
         release it on cancellation — spill it to the stack"
        r.klass r.id

(* --- fixpoint engine --------------------------------------------------- *)

let widen_threshold = 8

let run ~mode ~contracts ~ctx_size ?heap_size ?(sleepable = false) prog =
  (match heap_size with
  | Some hs ->
      if Int64.logand hs (Int64.sub hs 1L) <> 0L || hs <= 0L then
        invalid_arg "Verify.run: heap_size must be a positive power of two"
  | None -> ());
  let env =
    {
      mode;
      contracts;
      ctx_size;
      heap_size = (match mode with Ebpf -> None | Kflex -> heap_size);
      sleepable;
      min_stack = ref Prog.stack_size;
    }
  in
  try
    let cfg = Cfg.build prog in
    let unbounded = Loopcheck.unbounded_loops prog cfg in
    (match (mode, unbounded) with
    | Ebpf, l :: _ ->
        err ~pc:l.Cfg.back_edge_pc E_loop
          "loop cannot be bounded statically: plain eBPF rejects it (KFlex \
           instruments it with a cancellation point instead)"
    | _ -> ());
    let blocks = Cfg.blocks cfg in
    let nb = Array.length blocks in
    let in_states : State.t option array = Array.make nb None in
    let visits = Array.make nb 0 in
    let accesses = ref [] in
    let workset = Queue.create () in
    let enqueue b = Queue.push b workset in
    in_states.(0) <- Some (State.init ~ctx_nullable:false);
    enqueue 0;
    let merge_into ~from_back_edge succ st =
      match in_states.(succ) with
      | None ->
          in_states.(succ) <- Some st;
          enqueue succ
      | Some old -> (
          match State.join old st with
          | Error msg ->
              let kind = if from_back_edge then E_loop else E_resource in
              let msg =
                if from_back_edge then
                  msg
                  ^ " — kernel resources acquired in a loop iteration must be \
                     released within it (§3.1)"
                else msg
              in
              err ~pc:blocks.(succ).Cfg.first kind "%s" msg
          | Ok joined ->
              (match State.leaked joined with
              | [] -> ()
              | r :: _ ->
                  err ~pc:blocks.(succ).Cfg.first E_leak
                    "held %s (id %d) has no common location across the paths                      joining here — the runtime could not release it on                      cancellation (§4.3; the loader will retry with spilled                      acquisitions)"
                    r.State.klass r.State.id);
              visits.(succ) <- visits.(succ) + 1;
              let joined =
                if visits.(succ) > widen_threshold then
                  State.widen ~prev:old joined
                else joined
              in
              if not (State.equal joined old) then begin
                in_states.(succ) <- Some joined;
                enqueue succ
              end)
    in
    (* execute one block from its entry state, delivering successor states
       via [deliver] and recording accesses only when [record] *)
    let exec_block b st ~deliver =
      let blk = blocks.(b) in
      let st = ref st in
      let continue = ref true in
      for pc = blk.Cfg.first to blk.Cfg.last do
        if !continue then begin
          let insn = Prog.get prog pc in
          (match transfer env accesses ~pc !st insn with
          | Fall s ->
              check_leak ~pc s;
              if pc = blk.Cfg.last then deliver (pc + 1) s else st := s
          | Jump s ->
              check_leak ~pc s;
              (match insn with
              | Insn.Ja off -> deliver (pc + 1 + off) s
              | _ -> assert false);
              continue := false
          | Branch (taken, fall) ->
              let toff =
                match insn with
                | Insn.Jcond (_, _, _, off) -> pc + 1 + off
                | _ -> assert false
              in
              (match taken with
              | Some s ->
                  check_leak ~pc s;
                  deliver toff s
              | None -> ());
              (match fall with
              | Some s ->
                  check_leak ~pc s;
                  deliver (pc + 1) s
              | None -> ());
              continue := false
          | Stop -> continue := false)
        end
      done
    in
    while not (Queue.is_empty workset) do
      let b = Queue.pop workset in
      match in_states.(b) with
      | None -> ()
      | Some st ->
          exec_block b st ~deliver:(fun pc s ->
              let succ = (Cfg.block_of_pc cfg pc).Cfg.id in
              let from_back_edge = Cfg.dominates cfg succ b in
              merge_into ~from_back_edge succ s)
    done;
    (* Final pass: per-pc pre-states for object tables and access reporting.
       Re-run each reachable block once from its fixpoint state, recording
       resource locations before each instruction — plus the semantic facts
       the lint pass consumes: branch verdicts (an edge the abstract
       semantics never delivers a state to is dead) and no-op masks (an
       [And] that provably cannot clear any possibly-set bit). *)
    let res_at = Array.make (Prog.length prog) [] in
    let states_at = Array.make (Prog.length prog) None in
    let verdicts = ref [] in
    let redundant_masks = ref [] in
    accesses := [];
    for b = 0 to nb - 1 do
      match in_states.(b) with
      | None -> ()
      | Some st ->
          let blk = blocks.(b) in
          let stref = ref st in
          let continue = ref true in
          for pc = blk.Cfg.first to blk.Cfg.last do
            if !continue then begin
              states_at.(pc) <- Some !stref;
              res_at.(pc) <-
                List.filter_map
                  (fun (r : State.resource) ->
                    match State.find_obj !stref r.State.id with
                    | Some loc -> Some { res = r; loc }
                    | None -> None)
                  !stref.State.res;
              let insn = Prog.get prog pc in
              (* the compiler materialises mask constants into registers, so
                 accept both immediate and known-constant register operands *)
              (match insn with
              | Insn.Alu (Insn.And, d, src) -> (
                  let mask =
                    match src with
                    | Insn.Imm m -> Some m
                    | Insn.Reg s -> (
                        match State.get !stref s with
                        | Value.Scalar r -> Range.is_const r
                        | _ -> None)
                  in
                  match (mask, State.get !stref d) with
                  | Some m, Value.Scalar r
                    when Tnum.within_mask (Range.bits r) m ->
                      redundant_masks := (pc, m) :: !redundant_masks
                  | _ -> ())
              | _ -> ());
              match transfer env accesses ~pc !stref insn with
              | Fall s -> stref := s
              | Jump _ | Stop -> continue := false
              | Branch (taken, fall) ->
                  (match (taken, fall) with
                  | Some _, None -> verdicts := (pc, Always_taken) :: !verdicts
                  | None, Some _ -> verdicts := (pc, Never_taken) :: !verdicts
                  | _ -> ());
                  (match fall with Some s -> stref := s | None -> ());
                  continue := false
            end
          done
    done;
    let heap_accesses =
      List.sort (fun a b -> Int.compare a.pc b.pc) !accesses
      (* the final pass visits each block exactly once, so no dedup needed *)
    in
    Ok
      {
        prog;
        cfg;
        heap_accesses;
        unbounded = (match mode with Ebpf -> [] | Kflex -> unbounded);
        res_at;
        states_at;
        stack_used = Prog.stack_size - !(env.min_stack);
        insn_count = Prog.length prog;
        reached = Array.map Option.is_some in_states;
        verdicts = List.sort (fun (a, _) (b, _) -> Int.compare a b) !verdicts;
        redundant_masks =
          List.sort (fun (a, _) (b, _) -> Int.compare a b) !redundant_masks;
      }
  with Err e -> Error e
