module Insn = Kflex_bpf.Insn
module Reg = Kflex_bpf.Reg
module Prog = Kflex_bpf.Prog
module Cfg = Kflex_bpf.Cfg

type kind =
  | Leak
  | Double_release
  | Use_after_release
  | Null_deref
  | Lock_hazard
  | Lock_order
  | Chain_unreachable

type finding = {
  kind : kind;
  site : int;
  pc : int;
  witness : int list;
  msg : string;
}

type chain_finding = { index : int; finding : finding }

let kind_name = function
  | Leak -> "leak"
  | Double_release -> "double-release"
  | Use_after_release -> "use-after-release"
  | Null_deref -> "null-deref"
  | Lock_hazard -> "lock-hazard"
  | Lock_order -> "lock-order"
  | Chain_unreachable -> "chain-unreachable"

let pp_kind fmt k = Format.pp_print_string fmt (kind_name k)

let pp_finding fmt f =
  Format.fprintf fmt "pc %d: %s: %s (site pc %d; witness %a)" f.pc
    (kind_name f.kind) f.msg f.site
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Format.pp_print_int)
    f.witness

(* ------------------------------------------------------------------ *)
(* The path domain.

   A fact is a bounded set of abstract paths. Each path tracks, for every
   allocation site it has executed, the lifecycle status of the block, plus
   which cells (registers / aligned stack slots) still hold a pointer to
   it, the spin locks currently held, and the pc trace realising the path
   (findings quote it as their witness). Paths are compared and joined
   ignoring the trace — two paths that agree on all lifecycle state are the
   same abstract path, and the first-seen (shortest) witness is kept, which
   also makes loop bodies converge instead of unrolling. *)

type status = Unchecked | Held | Released

type cell = C_reg of int | C_slot of int

type lock = {
  acq : int;  (** acquisition pc — matches the verifier's object id *)
  ordinal : int;
  addr : int64;  (** constant heap offset of the lock word, or [unknown_addr] *)
}

let unknown_addr = -1L

type path = {
  sites : (int * status) list;  (** sorted by site pc *)
  binds : (cell * int) list;  (** cell -> site pc, sorted *)
  locks : lock list;  (** innermost (most recent) first *)
  tlen : int;
  trace : int list;  (** reversed: most recent pc first *)
}

let max_paths = 64

let max_trace = 4096

let entry_path =
  { sites = []; binds = []; locks = []; tlen = 0; trace = [] }

let key p = (p.sites, p.binds, p.locks)

(* Canonical order: by lifecycle key, ties broken toward the shorter
   witness, which [dedup] then keeps. *)
let compare_path a b =
  match compare (key a) (key b) with
  | 0 -> compare (a.tlen, a.trace) (b.tlen, b.trace)
  | c -> c

let canon paths =
  let sorted = List.sort compare_path paths in
  let rec dedup = function
    | a :: b :: tl when key a = key b -> dedup (a :: tl)
    | a :: tl -> a :: dedup tl
    | [] -> []
  in
  let d = List.sort compare_path (dedup sorted) in
  if List.length d <= max_paths then d else List.filteri (fun i _ -> i < max_paths) d

let join a b = canon (a @ b)

let equal a b =
  List.length a = List.length b && List.for_all2 (fun x y -> key x = key y) a b

(* path helpers *)

let status_of p site = List.assoc_opt site p.sites

let set_status p site st =
  {
    p with
    sites = List.map (fun (s, old) -> if s = site then (s, st) else (s, old)) p.sites;
  }

let drop_site p site =
  {
    p with
    sites = List.remove_assoc site p.sites;
    binds = List.filter (fun (_, s) -> s <> site) p.binds;
  }

let bound p cell = List.assoc_opt cell p.binds

let add_bind p cell site =
  { p with binds = List.sort compare ((cell, site) :: List.remove_assoc cell p.binds) }

let add_site p site =
  let p = drop_site p site (* re-allocation at the same site: fresh block *) in
  { p with sites = List.sort compare ((site, Unchecked) :: p.sites) }

(* ------------------------------------------------------------------ *)
(* Table-driven rules, derived from the contract registry. *)

type rules = {
  contracts : Contract.registry;
  release_arg : (string, int) Hashtbl.t;
      (** destructors of tracked allocators -> index of the released arg *)
}

let build_rules contracts =
  let release_arg = Hashtbl.create 4 in
  List.iter
    (fun name ->
      match Contract.find contracts name with
      | Some c when c.Contract.ret = Contract.R_heap_ptr_or_null -> (
          match c.Contract.destructor with
          | Some d -> (
              match Contract.find contracts d with
              | Some dc ->
                  let idx =
                    let rec go i = function
                      | Contract.A_heap_or_null :: _ | Contract.A_heap_ptr :: _
                        ->
                          i
                      | _ :: tl -> go (i + 1) tl
                      | [] -> 0
                    in
                    go 0 dc.Contract.args
                  in
                  Hashtbl.replace release_arg d idx
              | None -> ())
          | None -> ())
      | _ -> ())
    (Contract.names contracts);
  { contracts; release_arg }

let is_alloc c =
  c.Contract.ret = Contract.R_heap_ptr_or_null && c.Contract.destructor <> None

let is_lock_acquire c =
  c.Contract.eff = Contract.E_acquire && c.Contract.lock_ordinal <> None

(* A lock acquire that can fail ([bpf_map_lock] on a full table): the lock
   is only held on the non-null arm, so the handle in r0 gets a checkable
   site and the null refinement pops the speculative lock again. *)
let is_nullable_lock c =
  is_lock_acquire c
  && match c.Contract.ret with Contract.R_obj_or_null _ -> true | _ -> false

let is_lock_release c =
  match c.Contract.eff with
  | Contract.E_release _ -> c.Contract.lock_ordinal <> None
  | _ -> false

(* A call that can block or park the extension while it runs: sleepable
   helpers, and resource acquisitions that go to the kernel (a lock-ordinal
   acquire is the spin lock itself, which is fine to nest carefully). *)
let is_hazard c =
  c.Contract.sleepable
  || (c.Contract.eff = Contract.E_acquire && c.Contract.lock_ordinal = None)

(* ------------------------------------------------------------------ *)
(* Transfer function.  [step] is used both by the fixpoint (emit = noop)
   and by the deterministic reporting replay over the solved pre-facts. *)

type emitter = kind -> site:int -> pc:int -> path -> string -> unit

let no_emit : emitter = fun _ ~site:_ ~pc:_ _ _ -> ()

let append_trace pc p =
  if p.tlen >= max_trace then p
  else { p with trace = pc :: p.trace; tlen = p.tlen + 1 }

(* Destroy the binding held by [cell]. Losing the last reference to a live
   block is the moment a leak becomes definite on this path. *)
let kill_cell (emit : emitter) ~pc p cell =
  match bound p cell with
  | None -> p
  | Some site ->
      let p' = { p with binds = List.remove_assoc cell p.binds } in
      if List.exists (fun (_, s) -> s = site) p'.binds then p'
      else (
        (match status_of p site with
        | Some (Unchecked | Held) ->
            emit Leak ~site ~pc p
              (Printf.sprintf
                 "last reference to heap block allocated at pc %d is \
                  overwritten without a release"
                 site)
        | _ -> ());
        drop_site p' site)

(* The block escapes the tracked cells (pointer arithmetic, stored to
   non-stack memory, passed to an unrelated helper): stop tracking the
   whole site, silently — it may well be released through the escaped
   copy, and this pass never reports what it cannot witness. *)
let escape p cell =
  match bound p cell with None -> p | Some site -> drop_site p site

let deref (emit : emitter) ~pc p base =
  match bound p (C_reg base) with
  | None -> p
  | Some site -> (
      match status_of p site with
      | Some Unchecked ->
          emit Null_deref ~site ~pc p
            (Printf.sprintf
               "possibly-NULL result of allocation at pc %d dereferenced \
                without a null check"
               site);
          set_status p site Held
      | Some Released ->
          emit Use_after_release ~site ~pc p
            (Printf.sprintf "heap block released after allocation at pc %d is \
                             dereferenced again" site);
          drop_site p site
      | _ -> p)

(* stack slots: byte 0 of the frame is r10 - 512 *)
let frame_size = Prog.stack_size

let nslots = frame_size / 8

let slot_of_full_store disp width =
  let b = frame_size + disp in
  if width = 8 && b >= 0 && b + 8 <= frame_size && b mod 8 = 0 then Some (b / 8)
  else None

let overlapping_slots disp width =
  let b = frame_size + disp in
  let lo = max 0 b and hi = min frame_size (b + width) in
  let rec go s acc =
    if s * 8 >= hi || s >= nslots then List.rev acc
    else go (s + 1) (if ((s + 1) * 8) > lo then s :: acc else acc)
  in
  go (max 0 (lo / 8)) []

let rnum = Reg.to_int

let is_fp r = Reg.equal r Reg.fp

(* Constant heap offset of the lock word passed in r1, from the verifier's
   abstract pre-state at the call. *)
let lock_addr (a : Verify.analysis) pc =
  match a.Verify.states_at.(pc) with
  | None -> unknown_addr
  | Some st -> (
      match State.get st Reg.R1 with
      | Value.Ptr { kind = Value.Heap; off; _ } -> (
          match Range.is_const off with Some v -> v | None -> unknown_addr)
      | _ -> unknown_addr)

(* Which lock a release call releases: the verifier gives the object id of
   the released handle, which is its acquisition pc. *)
let released_lock_id (a : Verify.analysis) pc argi =
  match a.Verify.states_at.(pc) with
  | None -> None
  | Some st -> Value.obj_id (State.get st (Reg.of_int (1 + argi)))

let lock_lt (o1, (a1 : int64)) (o2, a2) =
  o1 < o2 || (o1 = o2 && Int64.unsigned_compare a1 a2 < 0)

let call_step rules (a : Verify.analysis) (emit : emitter) pc name p =
  match Contract.find rules.contracts name with
  | None ->
      (* unknown helper: only the clobbers are certain *)
      List.fold_left (fun p i -> kill_cell emit ~pc p (C_reg i)) p
        [ 0; 1; 2; 3; 4; 5 ]
  | Some c ->
      let arity = List.length c.Contract.args in
      (* blocking call while a spin lock is held *)
      (match (p.locks, is_hazard c) with
      | l :: _, true ->
          emit Lock_hazard ~site:l.acq ~pc p
            (Printf.sprintf
               "%s may block or acquire kernel resources while the spin lock \
                taken at pc %d is held"
               name l.acq)
      | _ -> ());
      (* argument effects on tracked blocks, on the pre-call bindings *)
      let release_idx = Hashtbl.find_opt rules.release_arg name in
      let p =
        List.fold_left
          (fun p i ->
            match bound p (C_reg (1 + i)) with
            | None -> p
            | Some site -> (
                match release_idx with
                | Some idx when idx = i -> (
                    match status_of p site with
                    | Some Released ->
                        emit Double_release ~site ~pc p
                          (Printf.sprintf
                             "heap block allocated at pc %d is released a \
                              second time"
                             site);
                        p
                    | _ -> set_status p site Released)
                | _ -> escape p (C_reg (1 + i))))
          p
          (List.init arity (fun i -> i))
      in
      (* lock stack *)
      let p =
        if is_lock_acquire c then (
          let ord = Option.get c.Contract.lock_ordinal in
          let addr = lock_addr a pc in
          if addr <> unknown_addr then (
            (match
               List.find_opt
                 (fun l -> l.ordinal = ord && l.addr = addr)
                 p.locks
             with
            | Some l ->
                emit Lock_order ~site:l.acq ~pc p
                  (Printf.sprintf
                     "spin lock at heap offset %Ld taken at pc %d is taken \
                      again — self-deadlock"
                     addr l.acq)
            | None -> ());
            match
              List.find_opt
                (fun l ->
                  l.addr <> unknown_addr
                  && lock_lt (ord, addr) (l.ordinal, l.addr))
                p.locks
            with
            | Some l ->
                emit Lock_order ~site:l.acq ~pc p
                  (Printf.sprintf
                     "lock order inversion: lock at heap offset %Ld acquired \
                      while holding the higher-ranked lock taken at pc %d"
                     addr l.acq)
            | None -> ());
          { p with locks = { acq = pc; ordinal = ord; addr } :: p.locks })
        else p
      in
      let p =
        match c.Contract.eff with
        | Contract.E_release i when is_lock_release c -> (
            match released_lock_id a pc i with
            | Some id -> { p with locks = List.filter (fun l -> l.acq <> id) p.locks }
            | None -> (
                (* no abstract id: drop the innermost lock *)
                match p.locks with
                | _ :: tl -> { p with locks = tl }
                | [] -> p))
        | _ -> p
      in
      (* r0–r5 clobbered; then the allocator binds its fresh block to r0 *)
      let p =
        List.fold_left (fun p i -> kill_cell emit ~pc p (C_reg i)) p
          [ 0; 1; 2; 3; 4; 5 ]
      in
      if is_alloc c || is_nullable_lock c then
        add_bind (add_site p pc) (C_reg 0) pc
      else p

let stack_store (emit : emitter) ~pc p disp width (src : Reg.t option) =
  match (src, slot_of_full_store disp width) with
  | Some s, Some slot when bound p (C_reg (rnum s)) <> None ->
      let site = Option.get (bound p (C_reg (rnum s))) in
      add_bind (kill_cell emit ~pc p (C_slot slot)) (C_slot slot) site
  | _, Some slot -> kill_cell emit ~pc p (C_slot slot)
  | _, None ->
      List.fold_left
        (fun p s -> kill_cell emit ~pc p (C_slot s))
        p
        (overlapping_slots disp width)

let step rules (a : Verify.analysis) (emit : emitter) pc insn p =
  let p =
    match insn with
    | Insn.Mov (dst, src) ->
        let src_site =
          match src with
          | Insn.Reg s -> bound p (C_reg (rnum s))
          | Insn.Imm _ -> None
        in
        let p = kill_cell emit ~pc p (C_reg (rnum dst)) in
        (match src_site with
        | Some site -> add_bind p (C_reg (rnum dst)) site
        | None -> p)
    | Insn.Alu (_, dst, _) | Insn.Neg dst | Insn.Guard (_, dst) ->
        (* pointer arithmetic: the derived value may still reach a release,
           so the site escapes rather than leaks *)
        escape p (C_reg (rnum dst))
    | Insn.Ldx (sz, dst, src, off) ->
        if is_fp src then (
          let reload =
            match slot_of_full_store off (Insn.size_bytes sz) with
            | Some slot -> bound p (C_slot slot)
            | None -> None
          in
          let p = kill_cell emit ~pc p (C_reg (rnum dst)) in
          match reload with
          | Some site -> add_bind p (C_reg (rnum dst)) site
          | None -> p)
        else
          let p = deref emit ~pc p (rnum src) in
          kill_cell emit ~pc p (C_reg (rnum dst))
    | Insn.Stx (sz, dst, off, src) | Insn.Xstore (sz, dst, off, src) ->
        if is_fp dst then
          stack_store emit ~pc p off (Insn.size_bytes sz) (Some src)
        else
          let p = deref emit ~pc p (rnum dst) in
          escape p (C_reg (rnum src))
    | Insn.St (sz, dst, off, _) ->
        if is_fp dst then stack_store emit ~pc p off (Insn.size_bytes sz) None
        else deref emit ~pc p (rnum dst)
    | Insn.Atomic (op, sz, dst, off, src) ->
        let p =
          if is_fp dst then
            stack_store emit ~pc p off (Insn.size_bytes sz) None
          else deref emit ~pc p (rnum dst)
        in
        let p = escape p (C_reg (rnum src)) in
        let p =
          match op with
          | Insn.Fetch_add | Insn.Fetch_or | Insn.Fetch_and | Insn.Fetch_xor
          | Insn.Xchg ->
              kill_cell emit ~pc p (C_reg (rnum src))
          | Insn.Cmpxchg -> kill_cell emit ~pc p (C_reg 0)
          | _ -> p
        in
        p
    | Insn.Call name -> call_step rules a emit pc name p
    | Insn.Exit ->
        List.iter
          (fun (site, st) ->
            match st with
            | Unchecked | Held ->
                (* a still-held lock's site is reported by the dedicated
                   lock check below, not as a heap leak *)
                if not (List.exists (fun l -> l.acq = site) p.locks) then
                  emit Leak ~site ~pc p
                    (Printf.sprintf
                       "heap block allocated at pc %d is still live at exit \
                        on this path"
                       site)
            | Released -> ())
          p.sites;
        (match p.locks with
        | l :: _ ->
            emit Lock_hazard ~site:l.acq ~pc p
              (Printf.sprintf "spin lock taken at pc %d still held at exit"
                 l.acq)
        | [] -> ());
        p
    | Insn.Checkpoint _ ->
        (match p.locks with
        | l :: _ ->
            emit Lock_hazard ~site:l.acq ~pc p
              (Printf.sprintf
                 "cancellation point reached while the spin lock taken at pc \
                  %d is held"
                 l.acq)
        | [] -> ());
        p
    | Insn.Ja _ | Insn.Jcond _ -> p
  in
  append_trace pc p

(* Branch refinement: a conditional on a register bound to an [Unchecked]
   site splits the possibly-NULL disjunction — the null outcome drops the
   site (there is no block), the non-null outcome promotes it to [Held]. *)
let refine_path cond (imm : int64) ~taken p site =
  let verdict =
    match (cond, taken) with
    | Insn.Eq, true -> if imm = 0L then `Null else `Nonnull
    | Insn.Eq, false -> if imm = 0L then `Nonnull else `Unknown
    | Insn.Ne, true -> if imm = 0L then `Nonnull else `Unknown
    | Insn.Ne, false -> if imm = 0L then `Null else `Nonnull
    | Insn.Gt, true -> `Nonnull
    | Insn.Le, false -> `Nonnull
    | Insn.Ge, true when Int64.unsigned_compare imm 0L > 0 -> `Nonnull
    | Insn.Lt, false when Int64.unsigned_compare imm 0L > 0 -> `Nonnull
    | _ -> `Unknown
  in
  match verdict with
  | `Null ->
      (* a nullable lock acquire was pushed speculatively — the null arm
         means the lock was never taken *)
      let p = drop_site p site in
      { p with locks = List.filter (fun l -> l.acq <> site) p.locks }
  | `Nonnull -> set_status p site Held
  | `Unknown -> p

let edge (a : Verify.analysis) pc insn ~taken fact =
  (* a register operand whose abstract value is a known constant refines
     exactly like an immediate (compilers love [r2 = 0; if r1 != r2]) *)
  let const_operand = function
    | Insn.Imm imm -> Some imm
    | Insn.Reg r -> (
        match a.Verify.states_at.(pc) with
        | None -> None
        | Some st -> (
            match State.get st r with
            | Value.Scalar rg -> Range.is_const rg
            | _ -> None))
  in
  match insn with
  | Insn.Jcond (cond, r, operand, _) -> (
      match const_operand operand with
      | None -> fact
      | Some imm ->
          canon
            (List.map
               (fun p ->
                 match bound p (C_reg (rnum r)) with
                 | Some site when status_of p site = Some Unchecked ->
                     refine_path cond imm ~taken p site
                 | _ -> p)
               fact))
  | _ -> fact

(* ------------------------------------------------------------------ *)

let kind_rank = function
  | Leak -> 0
  | Double_release -> 1
  | Use_after_release -> 2
  | Null_deref -> 3
  | Lock_hazard -> 4
  | Lock_order -> 5
  | Chain_unreachable -> 6

let dedup_findings fs =
  let cmp a b =
    match compare (a.pc, kind_rank a.kind, a.site) (b.pc, kind_rank b.kind, b.site) with
    | 0 -> compare (List.length a.witness, a.witness) (List.length b.witness, b.witness)
    | c -> c
  in
  let sorted = List.sort cmp fs in
  let rec dedup = function
    | a :: b :: tl when a.kind = b.kind && a.site = b.site && a.pc = b.pc ->
        dedup (a :: tl)
    | a :: tl -> a :: dedup tl
    | [] -> []
  in
  dedup sorted

let run ~contracts (a : Verify.analysis) =
  let rules = build_rules contracts in
  let spec =
    {
      Dataflow.join;
      equal;
      transfer = (fun pc insn f -> canon (List.map (step rules a no_emit pc insn) f));
      edge = Some (edge a);
    }
  in
  match Dataflow.forward a ~init:[ entry_path ] spec with
  | exception Dataflow.Diverged -> []
  | pre ->
      let findings = ref [] in
      let emit kind ~site ~pc p msg =
        findings :=
          { kind; site; pc; witness = List.rev (pc :: p.trace); msg }
          :: !findings
      in
      Array.iteri
        (fun pc fact ->
          match fact with
          | None -> ()
          | Some paths ->
              let insn = Prog.get a.Verify.prog pc in
              List.iter (fun p -> ignore (step rules a emit pc insn p)) paths)
        pre;
      (* cancellation points live on unbounded-loop back edges (§3.3):
         holding a spin lock across one stalls cancellation *)
      List.iter
        (fun (l : Cfg.loop) ->
          let pc = l.Cfg.back_edge_pc in
          if pc >= 0 && pc < Array.length pre then
            match pre.(pc) with
            | Some paths ->
                List.iter
                  (fun p ->
                    match p.locks with
                    | lk :: _ ->
                        emit Lock_hazard ~site:lk.acq ~pc p
                          (Printf.sprintf
                             "unbounded loop back edge (a cancellation point \
                              after instrumentation) crossed while the spin \
                              lock taken at pc %d is held"
                             lk.acq)
                    | [] -> ())
                  paths
            | None -> ())
        a.Verify.unbounded;
      dedup_findings !findings

(* ------------------------------------------------------------------ *)
(* Chain-level composition. *)

let reachable_exits (a : Verify.analysis) =
  let prog = a.Verify.prog in
  let acc = ref [] in
  for pc = Prog.length prog - 1 downto 0 do
    match Prog.get prog pc with
    | Insn.Exit when a.Verify.states_at.(pc) <> None -> acc := pc :: !acc
    | _ -> ()
  done;
  !acc

(* The abstract r0 at every reachable exit excludes [v]: the program can
   never produce that verdict. *)
let excludes_verdict (a : Verify.analysis) v =
  let exits = reachable_exits a in
  exits <> []
  && List.for_all
       (fun pc ->
         match a.Verify.states_at.(pc) with
         | Some st -> (
             match State.get st Reg.R0 with
             | Value.Scalar r ->
                 Int64.unsigned_compare r.Range.umin v > 0
                 || Int64.unsigned_compare r.Range.umax v < 0
                 || not (Tnum.contains r.Range.bits v)
             | _ -> false)
         | None -> false)
       exits

(* Cancellation returns the hook default, not r0 — so a program whose exits
   all exclude the pass verdict can still pass the chain on by cancelling,
   unless it has no cancellation sites at all: no heap accesses, no loops
   (no checkpoints for the watchdog or injection to land on), and no
   spin-lock acquisitions (no stall sites). *)
let cannot_cancel ~contracts (a : Verify.analysis) =
  a.Verify.heap_accesses = []
  && Cfg.loops a.Verify.cfg = []
  &&
  let prog = a.Verify.prog in
  let ok = ref true in
  for pc = 0 to Prog.length prog - 1 do
    match Prog.get prog pc with
    | Insn.Call name -> (
        match Contract.find contracts name with
        | Some c
          when c.Contract.lock_ordinal <> None
               && c.Contract.eff = Contract.E_acquire ->
            ok := false
        | _ -> ())
    | _ -> ()
  done;
  !ok

let run_chain ~contracts ~pass_verdict ?default_ret analyses =
  let default_ret = Option.value ~default:pass_verdict default_ret in
  let per =
    List.concat
      (List.mapi
         (fun index a ->
           List.map (fun finding -> { index; finding }) (run ~contracts a))
         analyses)
  in
  let n = List.length analyses in
  let blocks a =
    excludes_verdict a pass_verdict
    && (default_ret <> pass_verdict || cannot_cancel ~contracts a)
  in
  let blocker =
    let rec go i = function
      | [] -> None
      | a :: tl ->
          if i < n - 1 && blocks a then Some (i, a) else go (i + 1) tl
    in
    go 0 analyses
  in
  let chained =
    match blocker with
    | None -> []
    | Some (i, a) ->
        let exits = reachable_exits a in
        let site = match exits with pc :: _ -> pc | [] -> 0 in
        List.filteri (fun j _ -> j > i) analyses
        |> List.mapi (fun k _ ->
               {
                 index = i + 1 + k;
                 finding =
                   {
                     kind = Chain_unreachable;
                     site;
                     pc = 0;
                     witness = exits;
                     msg =
                       Printf.sprintf
                         "unreachable in the chain: program %d can never \
                          return the pass verdict %Ld, so this program's \
                          effects (including releases) never run"
                         i pass_verdict;
                   };
               })
  in
  List.sort
    (fun a b ->
      compare
        (a.index, a.finding.pc, kind_rank a.finding.kind, a.finding.site)
        (b.index, b.finding.pc, kind_rank b.finding.kind, b.finding.site))
    (per @ chained)
