(** Path-sensitive lifecycle analysis.

    The verifier proves kernel-interface compliance: kernel objects are
    released on every path, memory accesses are SFI-safe. It deliberately
    does {e not} police the extension's own resources — a [kflex_malloc]
    block leaked on one branch, freed twice, or dereferenced while possibly
    NULL is legal as far as the kernel is concerned (the SFI guard makes the
    stray access safe). Those are still bugs in the extension, and exactly
    the classes ROADMAP item 5 gates admission tiers on.

    [Lifecycle] finds them with {e path evidence}. It runs a disjunctive
    forward dataflow pass (on {!Dataflow.forward}) whose facts are sets of
    abstract paths; each path carries the lifecycle status of every
    allocation site it has seen ([Unchecked] = live but possibly NULL,
    [Held] = live and non-NULL, [Released]), which registers/stack slots
    still reference each site, the stack of spin locks currently held, and
    the pc trace that realises the path. All transfer rules are derived from
    the {!Contract} registry (allocator = [R_heap_ptr_or_null] return with a
    declared destructor; lock pairs = [lock_ordinal] metadata), so a new
    helper pattern is a registry entry, not a new traversal.

    The pass is tuned to never flag what it cannot witness: facts only flow
    along edges the verifier found feasible, values that escape the tracked
    cells (pointer arithmetic, stores to the heap, passed to an unrelated
    helper) silently untrack their site, and every finding carries the pc
    trace of a concrete candidate path. The fuzzer's seventh oracle executes
    flagged programs along that witness and fails the analysis if the
    claimed fact is refuted ({!Kflex_fuzz.Oracle}). *)

type kind =
  | Leak  (** an allocation is live on some path reaching [Exit] *)
  | Double_release  (** released again after a release on the same path *)
  | Use_after_release  (** dereferenced after a release on the same path *)
  | Null_deref
      (** a possibly-NULL allocator result dereferenced with no null check
          dominating the access on this path (SFI-safe, still a bug) *)
  | Lock_hazard
      (** a blocking/acquiring helper call, a potential cancellation point
          (unbounded-loop back edge), or program exit while a spin lock is
          held *)
  | Lock_order
      (** nested locks acquired against the global (ordinal, address) order,
          or the same lock taken twice — self-deadlock *)
  | Chain_unreachable
      (** chain composition: an upstream program's exit verdicts make this
          program unreachable, so its effects (including releases) never
          run *)

type finding = {
  kind : kind;
  site : int;
      (** pc of the event the finding is about: the allocation site
          ([Leak]/[Double_release]/[Use_after_release]/[Null_deref]), the
          acquisition pc of the relevant lock ([Lock_hazard]/[Lock_order]),
          or the blocking program's exit pc ([Chain_unreachable]). *)
  pc : int;  (** pc at which the defect manifests *)
  witness : int list;
      (** pc trace of a path from entry that realises the finding, ending at
          [pc]. For [Chain_unreachable]: the blocking program's reachable
          exit pcs (the evidence that none can produce the pass verdict). *)
  msg : string;
}

type chain_finding = {
  index : int;  (** position of the flagged program in the chain *)
  finding : finding;
}

val kind_name : kind -> string
(** Stable machine-readable name ([leak], [double-release], ...) used by
    [kflexc lint --json] — part of the documented schema, do not repurpose. *)

val pp_kind : Format.formatter -> kind -> unit

val pp_finding : Format.formatter -> finding -> unit

val run : contracts:Contract.registry -> Verify.analysis -> finding list
(** Analyse one verified program. Findings are deduplicated by
    [(kind, site, pc)] (keeping the shortest witness) and sorted by
    [(pc, kind, site)]. Returns [[]] if the fixpoint diverges (backstop;
    does not happen on finite programs). *)

val run_chain :
  contracts:Contract.registry ->
  pass_verdict:int64 ->
  ?default_ret:int64 ->
  Verify.analysis list ->
  chain_finding list
(** Analyse an engine chain as a whole: each program individually (findings
    tagged with their chain position), plus cross-program composition — if
    some program's reachable exits all carry an r0 abstract value that
    excludes [pass_verdict], every downstream program is flagged
    [Chain_unreachable] (its releases and effects can never run). Sorted by
    [(index, pc, kind)].

    A cancelled program returns the hook's default verdict instead of its
    own r0, so when [default_ret] (default: [pass_verdict] itself, the XDP
    situation) equals [pass_verdict], the exclusion proof additionally
    requires the blocking program to be uncancellable: no heap accesses
    (cancellation sites), no loops (checkpoints), and no spin-lock
    acquisitions (stall sites). *)
