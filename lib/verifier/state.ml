open Kflex_bpf

type slot = S_empty | S_misc | S_spill of Value.t

type resource = { id : int; klass : string; destructor : string }

type t = {
  regs : Value.t array;
  stack : slot array;
  res : resource list;
  origin : int array;
}

let nslots = Prog.stack_size / 8

let init ~ctx_nullable =
  let regs = Array.make 11 Value.Uninit in
  regs.(1) <-
    Value.Ptr { kind = Value.Ctx; off = Range.const 0L; nullable = ctx_nullable };
  regs.(10) <- Value.Ptr { kind = Value.Stack; off = Range.const 0L; nullable = false };
  {
    regs;
    stack = Array.make nslots S_empty;
    res = [];
    origin = Array.make 11 (-1);
  }

let get st r = st.regs.(Reg.to_int r)

let set st r v =
  let regs = Array.copy st.regs in
  let origin = Array.copy st.origin in
  regs.(Reg.to_int r) <- v;
  origin.(Reg.to_int r) <- -1;
  { st with regs; origin }

let set_from_slot st r v slot =
  let regs = Array.copy st.regs in
  let origin = Array.copy st.origin in
  regs.(Reg.to_int r) <- v;
  origin.(Reg.to_int r) <- slot;
  { st with regs; origin }

let refine_mirrored st r v =
  let regs = Array.copy st.regs in
  regs.(Reg.to_int r) <- v;
  let slot = st.origin.(Reg.to_int r) in
  let stack =
    if slot >= 0 then begin
      let stack = Array.copy st.stack in
      (match stack.(slot) with
      | S_spill _ -> stack.(slot) <- S_spill v
      | _ -> ());
      stack
    end
    else st.stack
  in
  { st with regs; stack }

let write_slot st slot s =
  let stack = Array.copy st.stack in
  stack.(slot) <- s;
  let origin = Array.copy st.origin in
  Array.iteri (fun i o -> if o = slot then origin.(i) <- -1) origin;
  { st with stack; origin }

let slot_equal a b =
  match (a, b) with
  | S_empty, S_empty | S_misc, S_misc -> true
  | S_spill x, S_spill y -> Value.equal x y
  | _ -> false

let res_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (x : resource) y -> x.id = y.id && x.klass = y.klass) a b

let equal a b =
  Array.for_all2 Value.equal a.regs b.regs
  && Array.for_all2 slot_equal a.stack b.stack
  && res_equal a.res b.res
  && a.origin = b.origin

let slot_join a b =
  match (a, b) with
  | S_empty, _ | _, S_empty -> S_empty
  | S_misc, S_misc -> S_misc
  | S_spill x, S_spill y -> (
      match Value.join x y with
      | Value.Uninit -> S_empty
      | v -> S_spill v)
  | S_misc, S_spill v | S_spill v, S_misc -> (
      (* scalar bytes meet a spilled value: survives only as untrusted data *)
      match v with
      | Value.Scalar _ | Value.Unknown -> S_misc
      | _ -> S_empty)

let join a b =
  if not (res_equal a.res b.res) then
    Error
      (Format.asprintf "resource sets differ at join: {%s} vs {%s}"
         (String.concat "," (List.map (fun r -> r.klass) a.res))
         (String.concat "," (List.map (fun r -> r.klass) b.res)))
  else
    Ok
      {
        regs = Array.map2 Value.join a.regs b.regs;
        stack = Array.map2 slot_join a.stack b.stack;
        res = a.res;
        origin = Array.init 11 (fun i -> if a.origin.(i) = b.origin.(i) then a.origin.(i) else -1);
      }

(* Widening drops the interval half (which can keep creeping) but keeps the
   known-bits half: the tnum lattice is finite and only loses bits under
   join, so retaining it cannot prevent termination — and it is exactly
   what preserves alignment facts (index*8 etc.) across loop iterations. *)
let widen_value ~prev v =
  match (prev, v) with
  | Value.Scalar p, Value.Scalar n when not (Range.equal p n) ->
      Value.Scalar (Range.top_with_bits (Range.bits n))
  | Value.Ptr p, Value.Ptr n when p.kind = n.kind && not (Range.equal p.off n.off)
    ->
      Value.Ptr { n with off = Range.top_with_bits (Range.bits n.off) }
  | _ -> v

let widen ~prev st =
  let regs =
    Array.mapi (fun i v -> widen_value ~prev:prev.regs.(i) v) st.regs
  in
  let stack =
    Array.mapi
      (fun i s ->
        match (prev.stack.(i), s) with
        | S_spill p, S_spill n -> S_spill (widen_value ~prev:p n)
        | _ -> s)
      st.stack
  in
  { st with regs; stack }

let add_res st r =
  { st with res = List.sort (fun a b -> Int.compare a.id b.id) (r :: st.res) }

let remove_res st id = { st with res = List.filter (fun r -> r.id <> id) st.res }
let has_res st id = List.exists (fun r -> r.id = id) st.res

type loc = L_reg of Reg.t | L_slot of int

let find_obj st id =
  let found = ref None in
  Array.iteri
    (fun i v ->
      if !found = None && Value.obj_id v = Some id then
        found := Some (L_reg (Reg.of_int i)))
    st.regs;
  if !found = None then
    Array.iteri
      (fun i s ->
        match s with
        | S_spill v when !found = None && Value.obj_id v = Some id ->
            found := Some (L_slot i)
        | _ -> ())
      st.stack;
  !found

let leaked st = List.filter (fun r -> find_obj st r.id = None) st.res

let substitute_obj st ~id v =
  let subst w = if Value.obj_id w = Some id then v else w in
  let regs = Array.map subst st.regs in
  let stack =
    Array.map
      (function
        | S_spill w when Value.obj_id w = Some id -> (
            match v with Value.Uninit -> S_empty | v -> S_spill v)
        | s -> s)
      st.stack
  in
  { st with regs; stack }

let set_nonnull_obj st ~id =
  let subst = function
    | Value.Obj o when o.id = id -> Value.Obj { o with nullable = false }
    | v -> v
  in
  let regs = Array.map subst st.regs in
  let stack =
    Array.map
      (function S_spill w -> S_spill (subst w) | s -> s)
      st.stack
  in
  { st with regs; stack }

let pp ppf st =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i v ->
      if not (Value.equal v Value.Uninit) then
        Format.fprintf ppf "r%d=%a " i Value.pp v)
    st.regs;
  if st.res <> [] then
    Format.fprintf ppf "held:{%s}"
      (String.concat ","
         (List.map (fun r -> Printf.sprintf "%s#%d" r.klass r.id) st.res));
  Format.fprintf ppf "@]"
