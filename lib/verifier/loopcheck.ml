open Kflex_bpf

type verdict = Bounded | Unbounded

let loop_pcs cfg (l : Cfg.loop) =
  let blocks = Cfg.blocks cfg in
  List.concat_map
    (fun bid ->
      let b = blocks.(bid) in
      List.init (b.Cfg.last - b.Cfg.first + 1) (fun i -> b.Cfg.first + i))
    l.Cfg.body

(* Registers written by an instruction (conservatively). *)
let written = function
  | Insn.Alu (_, d, _) | Insn.Neg d | Insn.Mov (d, _) | Insn.Ldx (_, d, _, _) ->
      [ d ]
  | Insn.Atomic (op, _, _, _, s) -> (
      match op with
      | Insn.Fetch_add | Insn.Fetch_or | Insn.Fetch_and | Insn.Fetch_xor
      | Insn.Xchg ->
          [ s ]
      | Insn.Cmpxchg -> [ Reg.R0 ]
      | _ -> [])
  | Insn.Call _ -> Reg.caller_saved
  | Insn.Guard (_, r) -> [ r ]
  | _ -> []

(* The unique [r += k] / [r -= k] step for [r] in the loop, if [r] is written
   exactly once and only by such an instruction. *)
let step_of prog pcs r =
  let steps = ref [] in
  let other_writes = ref false in
  List.iter
    (fun pc ->
      let insn = Prog.get prog pc in
      match insn with
      | Insn.Alu (Insn.Add, d, Insn.Imm k) when Reg.equal d r ->
          steps := k :: !steps
      | Insn.Alu (Insn.Sub, d, Insn.Imm k) when Reg.equal d r ->
          steps := Int64.neg k :: !steps
      | _ -> if List.exists (Reg.equal r) (written insn) then other_writes := true)
    pcs;
  match (!steps, !other_writes) with [ k ], false -> Some k | _ -> None

(* Whether staying in the loop under [cond r, c] with step [k] per iteration
   must eventually fail. The stay condition holds on the in-loop edge. *)
let progresses (stay : Insn.cond) (c : int64) (k : int64) =
  let pos = k > 0L and neg = k < 0L in
  match stay with
  | Insn.Lt | Insn.Le ->
      (* unsigned upward progress; forbid wrap-past-bound *)
      pos && Int64.unsigned_compare c (Int64.sub (-1L) k) <= 0
  | Insn.Slt | Insn.Sle -> pos && c <= Int64.sub Int64.max_int k
  | Insn.Gt | Insn.Ge -> neg && Int64.unsigned_compare c (Int64.neg k) >= 0
  | Insn.Sgt | Insn.Sge -> neg && c >= Int64.sub Int64.min_int k
  | _ -> false

let classify prog cfg (l : Cfg.loop) =
  let pcs = loop_pcs cfg l in
  let in_loop bid = List.mem bid l.Cfg.body in
  let blocks = Cfg.blocks cfg in
  let bounded_exit pc =
    match Prog.get prog pc with
    | Insn.Jcond (cond, r, Insn.Imm c, off) -> (
        let taken = pc + 1 + off and fall = pc + 1 in
        let taken_in = in_loop (Cfg.block_of_pc cfg taken).Cfg.id in
        let fall_in =
          fall < Prog.length prog && in_loop (Cfg.block_of_pc cfg fall).Cfg.id
        in
        match (taken_in, fall_in) with
        | true, false ->
            (* stay condition = cond *)
            (match step_of prog pcs r with
            | Some k -> progresses cond c k
            | None -> false)
        | false, true ->
            (* stay condition = not cond *)
            (match step_of prog pcs r with
            | Some k -> progresses (Range.negate_cond cond) c k
            | None -> false)
        | _ -> false)
    | _ -> false
  in
  let found = ref false in
  List.iter
    (fun bid ->
      let b = blocks.(bid) in
      (* exit branches sit at block terminators *)
      if (not !found) && bounded_exit b.Cfg.last then found := true)
    l.Cfg.body;
  if !found then Bounded else Unbounded

let unbounded_loops prog cfg =
  List.filter (fun l -> classify prog cfg l = Unbounded) (Cfg.loops cfg)
