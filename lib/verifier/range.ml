type t = {
  umin : int64;
  umax : int64;
  smin : int64;
  smax : int64;
  bits : Tnum.t;
}

let u64_max = -1L (* 0xffff...ff as unsigned *)
let ucmp = Int64.unsigned_compare
let umin_ a b = if ucmp a b <= 0 then a else b
let umax_ a b = if ucmp a b >= 0 then a else b
let smin_ = Int64.min
let smax_ = Int64.max

(* The known-bits half of the domain can be switched off to measure what it
   buys (the interval-only vs interval+tnum elision delta in the bench
   ablation). When disabled every value carries Tnum.unknown and the domain
   degenerates to the seed's pure interval analysis. *)
let tnum_enabled = ref true
let set_tnum enabled = tnum_enabled := enabled
let tnum_on () = !tnum_enabled

let top =
  {
    umin = 0L;
    umax = u64_max;
    smin = Int64.min_int;
    smax = Int64.max_int;
    bits = Tnum.unknown;
  }

(* Propagate information between the signed and unsigned views, following the
   same reasoning as the eBPF verifier's __reg_deduce_bounds. *)
let deduce r =
  let r =
    (* Signed bounds with the same sign give unsigned bounds directly. *)
    if r.smin >= 0L then
      { r with umin = umax_ r.umin r.smin; umax = umin_ r.umax r.smax }
    else if r.smax < 0L then
      (* Both negative: as unsigned they keep their order. *)
      { r with umin = umax_ r.umin r.smin; umax = umin_ r.umax r.smax }
    else r
  in
  (* Unsigned bounds that fit in the positive signed half refine the signed
     view; likewise when both are in the negative half. *)
  let r =
    if ucmp r.umax Int64.max_int <= 0 then
      { r with smin = smax_ r.smin r.umin; smax = smin_ r.smax r.umax }
    else if ucmp r.umin Int64.max_int > 0 then
      { r with smin = smax_ r.smin r.umin; smax = smin_ r.smax r.umax }
    else r
  in
  r

let is_empty r = ucmp r.umin r.umax > 0 || r.smin > r.smax

(* Bidirectional bounds synchronisation (the reg_bounds_sync analogue):
   known bits narrow the unsigned interval ([umin >= value],
   [umax <= value lor mask]), then the interval pins high bits back into the
   tnum via tnum_range intersection. A known-bits contradiction is reported
   as an empty interval so callers share one emptiness test. *)
let sync r =
  let r = deduce r in
  if not !tnum_enabled then { r with bits = Tnum.unknown }
  else if is_empty r then r
  else
    let r =
      deduce
        {
          r with
          umin = umax_ r.umin (Tnum.umin r.bits);
          umax = umin_ r.umax (Tnum.umax r.bits);
        }
    in
    if is_empty r then r
    else
      match Tnum.intersect r.bits (Tnum.range r.umin r.umax) with
      | Some bits -> { r with bits }
      | None -> { r with umin = 1L; umax = 0L }

(* For transfer functions: both halves over-approximate the same concrete
   result set, so their intersection cannot be empty — but stay defensive
   and fall back to the interval half alone rather than produce nonsense. *)
let syncd r =
  let r' = sync r in
  if is_empty r' then deduce { r with bits = Tnum.unknown } else r'

let const v =
  {
    umin = v;
    umax = v;
    smin = v;
    smax = v;
    bits = (if !tnum_enabled then Tnum.const v else Tnum.unknown);
  }

let make ?(umin = 0L) ?(umax = u64_max) ?(smin = Int64.min_int)
    ?(smax = Int64.max_int) () =
  let r = sync { umin; umax; smin; smax; bits = Tnum.unknown } in
  if is_empty r then top else r

let unsigned lo hi = make ~umin:lo ~umax:hi ()

let top_with_bits bits = syncd { top with bits }

let is_const r = if r.umin = r.umax then Some r.umin else None

let bits r = r.bits

let equal a b =
  a.umin = b.umin && a.umax = b.umax && a.smin = b.smin && a.smax = b.smax
  && Tnum.equal a.bits b.bits

(* No sync on join: the componentwise bounds keep join a syntactic upper
   bound of both operands (subset a (join a b) holds field by field). *)
let join a b =
  {
    umin = umin_ a.umin b.umin;
    umax = umax_ a.umax b.umax;
    smin = smin_ a.smin b.smin;
    smax = smax_ a.smax b.smax;
    bits = Tnum.union a.bits b.bits;
  }

let subset a b =
  ucmp b.umin a.umin <= 0 && ucmp a.umax b.umax <= 0 && b.smin <= a.smin
  && a.smax <= b.smax
  && Tnum.subset a.bits b.bits

let fits_unsigned r ~lo ~hi = ucmp lo r.umin <= 0 && ucmp r.umax hi <= 0

(* Exact evaluation when both operands are singletons. *)
let try_const2 f a b =
  match (is_const a, is_const b) with
  | Some x, Some y -> Some (const (f x y))
  | _ -> None

let add a b =
  match try_const2 Int64.add a b with
  | Some r -> r
  | None ->
      let uov =
        (* unsigned overflow if umax_a + umax_b wraps *)
        ucmp (Int64.add a.umax b.umax) a.umax < 0
      in
      let umin, umax =
        if uov then (0L, u64_max) else (Int64.add a.umin b.umin, Int64.add a.umax b.umax)
      in
      let sov =
        (* signed overflow detection on both endpoints *)
        let lo = Int64.add a.smin b.smin and hi = Int64.add a.smax b.smax in
        let lo_ov = a.smin < 0L && b.smin < 0L && lo >= 0L in
        let hi_ov = a.smax >= 0L && b.smax >= 0L && hi < 0L in
        lo_ov || hi_ov
      in
      let smin, smax =
        if sov then (Int64.min_int, Int64.max_int)
        else (Int64.add a.smin b.smin, Int64.add a.smax b.smax)
      in
      syncd { umin; umax; smin; smax; bits = Tnum.add a.bits b.bits }

let sub a b =
  match try_const2 Int64.sub a b with
  | Some r -> r
  | None ->
      let umin, umax =
        if ucmp a.umin b.umax >= 0 then (Int64.sub a.umin b.umax, Int64.sub a.umax b.umin)
        else (0L, u64_max)
      in
      let lo = Int64.sub a.smin b.smax and hi = Int64.sub a.smax b.smin in
      let lo_ov = a.smin < 0L && b.smax >= 0L && lo >= 0L in
      let hi_ov = a.smax >= 0L && b.smin < 0L && hi < 0L in
      let smin, smax =
        if lo_ov || hi_ov then (Int64.min_int, Int64.max_int) else (lo, hi)
      in
      syncd { umin; umax; smin; smax; bits = Tnum.sub a.bits b.bits }

let fits_u31 v = ucmp v 0x7fff_ffffL <= 0

let mul a b =
  match try_const2 Int64.mul a b with
  | Some r -> r
  | None ->
      let bits = Tnum.mul a.bits b.bits in
      if fits_u31 a.umax && fits_u31 b.umax then
        let umin = Int64.mul a.umin b.umin and umax = Int64.mul a.umax b.umax in
        syncd { umin; umax; smin = 0L; smax = umax; bits }
      else syncd { top with bits }

let udiv x y = if y = 0L then 0L else Int64.unsigned_div x y
let urem x y = if y = 0L then x else Int64.unsigned_rem x y

let div a b =
  match try_const2 udiv a b with
  | Some r -> r
  | None -> (
      match is_const b with
      | Some c when c <> 0L ->
          syncd { top with umin = udiv a.umin c; umax = udiv a.umax c }
      | _ -> top)

let rem a b =
  match try_const2 urem a b with
  | Some r -> r
  | None -> (
      match is_const b with
      | Some c when c <> 0L ->
          (* result in [0, c-1], and never exceeds the dividend *)
          syncd { top with umin = 0L; umax = umin_ (Int64.sub c 1L) a.umax }
      | _ -> top)

let logand a b =
  match try_const2 Int64.logand a b with
  | Some r -> r
  | None ->
      (* x land y <=u min(x, y) for any operands *)
      syncd
        { top with umin = 0L; umax = umin_ a.umax b.umax;
          bits = Tnum.logand a.bits b.bits }

let logor a b =
  match try_const2 Int64.logor a b with
  | Some r -> r
  | None ->
      (* x lor y >=u max(x, y); upper bound: next power-of-two envelope *)
      let rec pow2_envelope v p =
        if ucmp v p <= 0 || p = u64_max then p
        else pow2_envelope v (Int64.logor (Int64.shift_left p 1) 1L)
      in
      let env = pow2_envelope (umax_ a.umax b.umax) 1L in
      syncd
        { top with umin = umax_ a.umin b.umin; umax = env;
          bits = Tnum.logor a.bits b.bits }

let logxor a b =
  match try_const2 Int64.logxor a b with
  | Some r -> r
  | None ->
      (* intervals say nothing about xor; the known bits often do — this is
         the textbook case where the tnum half carries the analysis *)
      syncd { top with bits = Tnum.logxor a.bits b.bits }

let shl a b =
  match try_const2 (fun x y -> Int64.shift_left x (Int64.to_int y land 63)) a b with
  | Some r -> r
  | None -> (
      let bits = Tnum.shl a.bits b.bits in
      match is_const b with
      | Some k when ucmp k 63L <= 0 ->
          let k = Int64.to_int k in
          if k = 0 then a
          else if ucmp a.umax (Int64.shift_right_logical u64_max k) <= 0 then
            syncd
              { top with umin = Int64.shift_left a.umin k;
                umax = Int64.shift_left a.umax k; bits }
          else syncd { top with bits }
      | _ -> syncd { top with bits })

let lshr a b =
  match
    try_const2 (fun x y -> Int64.shift_right_logical x (Int64.to_int y land 63)) a b
  with
  | Some r -> r
  | None -> (
      let bits = Tnum.lshr a.bits b.bits in
      match is_const b with
      | Some k when ucmp k 63L <= 0 ->
          let k = Int64.to_int k in
          syncd
            { top with umin = Int64.shift_right_logical a.umin k;
              umax = Int64.shift_right_logical a.umax k; bits }
      | _ -> syncd { top with bits })

let ashr a b =
  match
    try_const2 (fun x y -> Int64.shift_right x (Int64.to_int y land 63)) a b
  with
  | Some r -> r
  | None -> (
      let bits = Tnum.ashr a.bits b.bits in
      match is_const b with
      | Some k when ucmp k 63L <= 0 ->
          let k = Int64.to_int k in
          syncd
            { top with smin = Int64.shift_right a.smin k;
              smax = Int64.shift_right a.smax k; bits }
      | _ -> syncd { top with bits })

let neg a =
  match is_const a with
  | Some v -> const (Int64.neg v)
  | None -> syncd { top with bits = Tnum.neg a.bits }

let intersect a b =
  match Tnum.intersect a.bits b.bits with
  | None -> None
  | Some bits ->
      let r =
        {
          umin = umax_ a.umin b.umin;
          umax = umin_ a.umax b.umax;
          smin = smax_ a.smin b.smin;
          smax = smin_ a.smax b.smax;
          bits;
        }
      in
      let r = sync r in
      if is_empty r then None else Some r

let u_pred v = Int64.sub v 1L
let u_succ v = Int64.add v 1L

let check r = let r = sync r in if is_empty r then None else Some r

open Kflex_bpf

let negate_cond : Insn.cond -> Insn.cond = function
  | Insn.Eq -> Insn.Ne
  | Insn.Ne -> Insn.Eq
  | Insn.Lt -> Insn.Ge
  | Insn.Le -> Insn.Gt
  | Insn.Gt -> Insn.Le
  | Insn.Ge -> Insn.Lt
  | Insn.Slt -> Insn.Sge
  | Insn.Sle -> Insn.Sgt
  | Insn.Sgt -> Insn.Sle
  | Insn.Sge -> Insn.Slt
  | Insn.Set -> Insn.Set (* no refinement either way *)

let refine (c : Insn.cond) x y =
  let pair a b =
    match (a, b) with Some a, Some b -> Some (a, b) | _ -> None
  in
  match c with
  | Insn.Eq -> (
      match intersect x y with Some m -> Some (m, m) | None -> None)
  | Insn.Ne -> (
      match (is_const x, is_const y) with
      | Some a, Some b when a = b -> None
      | _, Some b ->
          (* shave singleton endpoints *)
          let x' =
            if x.umin = b && x.umax <> b then { x with umin = u_succ x.umin }
            else if x.umax = b && x.umin <> b then { x with umax = u_pred x.umax }
            else x
          in
          pair (check x') (Some y)
      | _ -> Some (x, y))
  | Insn.Lt ->
      if y.umax = 0L then None
      else
        pair
          (check { x with umax = umin_ x.umax (u_pred y.umax) })
          (check { y with umin = umax_ y.umin (u_succ x.umin) })
  | Insn.Le ->
      pair
        (check { x with umax = umin_ x.umax y.umax })
        (check { y with umin = umax_ y.umin x.umin })
  | Insn.Gt ->
      if x.umax = 0L then None
      else
        pair
          (check { x with umin = umax_ x.umin (u_succ y.umin) })
          (check { y with umax = umin_ y.umax (u_pred x.umax) })
  | Insn.Ge ->
      pair
        (check { x with umin = umax_ x.umin y.umin })
        (check { y with umax = umin_ y.umax x.umax })
  | Insn.Slt ->
      if y.smax = Int64.min_int then None
      else
        pair
          (check { x with smax = smin_ x.smax (Int64.sub y.smax 1L) })
          (check { y with smin = smax_ y.smin (Int64.add x.smin 1L) })
  | Insn.Sle ->
      pair
        (check { x with smax = smin_ x.smax y.smax })
        (check { y with smin = smax_ y.smin x.smin })
  | Insn.Sgt ->
      if x.smax = Int64.min_int then None
      else
        pair
          (check { x with smin = smax_ x.smin (Int64.add y.smin 1L) })
          (check { y with smax = smin_ y.smax (Int64.sub x.smax 1L) })
  | Insn.Sge ->
      pair
        (check { x with smin = smax_ x.smin y.smin })
        (check { y with smax = smin_ y.smax x.smax })
  | Insn.Set -> Some (x, y)

let pp ppf r =
  match is_const r with
  | Some v -> Format.fprintf ppf "{%Ld}" v
  | None ->
      Format.fprintf ppf "{u:[%Lu,%Lu] s:[%Ld,%Ld]" r.umin r.umax r.smin
        r.smax;
      (* print the known bits only when they say more than the interval *)
      if
        (not (Tnum.is_unknown r.bits))
        && not (Tnum.equal r.bits (Tnum.range r.umin r.umax))
      then Format.fprintf ppf " t:%a" Tnum.pp r.bits;
      Format.fprintf ppf "}"
