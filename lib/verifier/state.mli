(** Abstract machine state for verification.

    Tracks the abstract value of each register, the contents of the 512-byte
    extension stack at 8-byte slot granularity, and the set of kernel
    resources currently held (the input to object-table generation, §3.3).

    States form a lattice: {!join} merges the states flowing into a CFG
    block; {!widen} accelerates convergence around loops. *)

type slot =
  | S_empty  (** never written — reads are errors *)
  | S_misc  (** scalar bytes of unknown value *)
  | S_spill of Value.t  (** an aligned 8-byte spill of a tracked value *)

type resource = { id : int; klass : string; destructor : string }

type t = {
  regs : Value.t array;  (** length 11, indexed by register number *)
  stack : slot array;  (** length 64; slot [i] covers bytes [8i..8i+7] of
      the stack frame, byte 0 being [r10 - 512] *)
  res : resource list;  (** held resources, sorted by id *)
  origin : int array;
      (** length 11: the stack slot register [i] was loaded from (and still
          mirrors), or -1. Lets branch refinements on a register narrow the
          spilled copy too — the precision the eBPF verifier keeps for
          spilled registers, and what makes loop-counter-indexed heap
          accesses provably safe (§5.4). *)
}

val nslots : int

val init : ctx_nullable:bool -> t
(** The entry state: [r1] = context pointer, [r10] = frame pointer, all other
    registers uninitialised, empty stack, no resources. *)

val get : t -> Kflex_bpf.Reg.t -> Value.t
val set : t -> Kflex_bpf.Reg.t -> Value.t -> t
(** Write a register (clears its origin). *)

val set_from_slot : t -> Kflex_bpf.Reg.t -> Value.t -> int -> t
(** Like {!set}, recording that the register mirrors a stack slot. *)

val refine_mirrored : t -> Kflex_bpf.Reg.t -> Value.t -> t
(** Narrow a register (after a branch refinement) and, when it mirrors a
    stack slot, narrow the spilled copy too. *)

val write_slot : t -> int -> slot -> t
(** Update a stack slot, invalidating registers that mirrored it. *)

val equal : t -> t -> bool

val join : t -> t -> (t, string) result
(** [Error] when the resource sets differ — a path acquired a resource the
    other did not, which the verifier rejects (it is also the §3.1
    loop-convergence violation when the join point is a loop header). *)

val widen : prev:t -> t -> t
(** Replace, in the new state, every range that grew since [prev] by the
    full range, forcing fixpoints to terminate. *)

val add_res : t -> resource -> t
val remove_res : t -> int -> t
val has_res : t -> int -> bool

(** {2 Resource locations} *)

type loc = L_reg of Kflex_bpf.Reg.t | L_slot of int

val find_obj : t -> int -> loc option
(** Some location (register preferred) currently holding the object with the
    given resource id. *)

val leaked : t -> resource list
(** Held resources with no remaining location — fatal: the runtime could not
    release them on cancellation. *)

val substitute_obj : t -> id:int -> Value.t -> t
(** Replace every copy of object [id] (register and spilled) by the given
    value — used when a resource is released or null-pruned. *)

val set_nonnull_obj : t -> id:int -> t
(** Mark every copy of object [id] as non-null (after a null check). *)

val pp : Format.formatter -> t -> unit
