module Insn = Kflex_bpf.Insn
module Cfg = Kflex_bpf.Cfg
module Prog = Kflex_bpf.Prog

type 'f spec = {
  join : 'f -> 'f -> 'f;
  equal : 'f -> 'f -> bool;
  transfer : int -> Insn.t -> 'f -> 'f;
  edge : (int -> Insn.t -> taken:bool -> 'f -> 'f) option;
}

exception Diverged

(* Out-edges of the instruction at [pc], with the branch outcome that
   selects each ([None] for unconditional flow). Edges the verifier proved
   dead are dropped here, so no client fact ever travels an infeasible
   path. *)
let live_out_edges verdicts pc insn =
  let edges =
    match insn with
    | Insn.Jcond (_, _, _, off) ->
        [ (pc + 1 + off, Some true); (pc + 1, Some false) ]
    | Insn.Ja off -> [ (pc + 1 + off, None) ]
    | i when Insn.falls_through i -> [ (pc + 1, None) ]
    | _ -> []
  in
  match Hashtbl.find_opt verdicts pc with
  | Some Verify.Always_taken ->
      List.filter (fun (_, t) -> t <> Some false) edges
  | Some Verify.Never_taken -> List.filter (fun (_, t) -> t <> Some true) edges
  | None -> edges

let verdict_table (a : Verify.analysis) =
  let h = Hashtbl.create 8 in
  List.iter (fun (pc, v) -> Hashtbl.replace h pc v) a.Verify.verdicts;
  h

(* A block participates when the abstract semantics reached it. *)
let live_blocks (a : Verify.analysis) =
  Cfg.blocks a.Verify.cfg
  |> Array.to_list
  |> List.filter (fun (b : Cfg.block) ->
         b.Cfg.id < Array.length a.Verify.reached && a.Verify.reached.(b.Cfg.id))

let budget nblocks = 64 * (nblocks + 4) * (nblocks + 4)

let forward (a : Verify.analysis) ~init spec =
  let prog = a.Verify.prog in
  let cfg = a.Verify.cfg in
  let verdicts = verdict_table a in
  let blocks = live_blocks a in
  let live = Hashtbl.create 16 in
  List.iter (fun (b : Cfg.block) -> Hashtbl.replace live b.Cfg.id b) blocks;
  (* in-fact per live block id *)
  let in_fact : (int, 'f) Hashtbl.t = Hashtbl.create 16 in
  let entry = Cfg.block_of_pc cfg 0 in
  Hashtbl.replace in_fact entry.Cfg.id init;
  let work = Queue.create () in
  Queue.add entry.Cfg.id work;
  let fuel = ref (budget (List.length blocks)) in
  let block_out (b : Cfg.block) f0 =
    let f = ref f0 in
    for pc = b.Cfg.first to b.Cfg.last do
      f := spec.transfer pc (Prog.get prog pc) !f
    done;
    !f
  in
  while not (Queue.is_empty work) do
    decr fuel;
    if !fuel < 0 then raise Diverged;
    let id = Queue.pop work in
    match (Hashtbl.find_opt live id, Hashtbl.find_opt in_fact id) with
    | Some b, Some f0 ->
        let out = block_out b f0 in
        let last_insn = Prog.get prog b.Cfg.last in
        live_out_edges verdicts b.Cfg.last last_insn
        |> List.iter (fun (tpc, taken) ->
               let sb = Cfg.block_of_pc cfg tpc in
               if Hashtbl.mem live sb.Cfg.id then (
                 let f =
                   match (taken, spec.edge) with
                   | Some taken, Some e -> e b.Cfg.last last_insn ~taken out
                   | _ -> out
                 in
                 let f' =
                   match Hashtbl.find_opt in_fact sb.Cfg.id with
                   | None -> f
                   | Some old -> spec.join old f
                 in
                 match Hashtbl.find_opt in_fact sb.Cfg.id with
                 | Some old when spec.equal old f' -> ()
                 | _ ->
                     Hashtbl.replace in_fact sb.Cfg.id f';
                     Queue.add sb.Cfg.id work))
    | _ -> ()
  done;
  let res = Array.make (Prog.length prog) None in
  List.iter
    (fun (b : Cfg.block) ->
      match Hashtbl.find_opt in_fact b.Cfg.id with
      | None -> ()
      | Some f0 ->
          let f = ref f0 in
          for pc = b.Cfg.first to b.Cfg.last do
            res.(pc) <- Some !f;
            f := spec.transfer pc (Prog.get prog pc) !f
          done)
    blocks;
  res

let backward (a : Verify.analysis) ~exit_fact spec =
  let prog = a.Verify.prog in
  let cfg = a.Verify.cfg in
  let verdicts = verdict_table a in
  let blocks = live_blocks a in
  let live = Hashtbl.create 16 in
  List.iter (fun (b : Cfg.block) -> Hashtbl.replace live b.Cfg.id b) blocks;
  (* Live successor block ids, honouring dead-edge verdicts. *)
  let succs (b : Cfg.block) =
    live_out_edges verdicts b.Cfg.last (Prog.get prog b.Cfg.last)
    |> List.filter_map (fun (tpc, _) ->
           let sb = Cfg.block_of_pc cfg tpc in
           if Hashtbl.mem live sb.Cfg.id then Some sb.Cfg.id else None)
    |> List.sort_uniq compare
  in
  (* in-fact of a block = fact before its first insn (the fixpoint
     variable); out-fact = join of successor in-facts. *)
  let in_fact : (int, 'f) Hashtbl.t = Hashtbl.create 16 in
  let block_in (b : Cfg.block) out =
    let f = ref out in
    for pc = b.Cfg.last downto b.Cfg.first do
      f := spec.transfer pc (Prog.get prog pc) !f
    done;
    !f
  in
  let out_of (b : Cfg.block) =
    match succs b with
    | [] -> Some exit_fact
    | ss ->
        List.fold_left
          (fun acc id ->
            match (acc, Hashtbl.find_opt in_fact id) with
            | None, f | f, None -> f
            | Some x, Some y -> Some (spec.join x y))
          None ss
  in
  let preds_of =
    let h = Hashtbl.create 16 in
    List.iter
      (fun (b : Cfg.block) ->
        List.iter
          (fun s ->
            let old = try Hashtbl.find h s with Not_found -> [] in
            Hashtbl.replace h s (b.Cfg.id :: old))
          (succs b))
      blocks;
    h
  in
  let work = Queue.create () in
  List.iter (fun (b : Cfg.block) -> Queue.add b.Cfg.id work) blocks;
  let fuel = ref (budget (List.length blocks)) in
  while not (Queue.is_empty work) do
    decr fuel;
    if !fuel < 0 then raise Diverged;
    let id = Queue.pop work in
    match Hashtbl.find_opt live id with
    | None -> ()
    | Some b -> (
        match out_of b with
        | None -> ()
        | Some out ->
            let f = block_in b out in
            let changed =
              match Hashtbl.find_opt in_fact id with
              | Some old -> not (spec.equal old f)
              | None -> true
            in
            if changed then (
              Hashtbl.replace in_fact id f;
              List.iter
                (fun p -> Queue.add p work)
                (try Hashtbl.find preds_of id with Not_found -> [])))
  done;
  let res = Array.make (Prog.length prog) None in
  List.iter
    (fun (b : Cfg.block) ->
      match out_of b with
      | None -> ()
      | Some out ->
          (* Walk backward keeping the running pre-fact; the post-fact of
             pc is the fact before transfer was applied at pc. *)
          let post = ref out in
          for pc = b.Cfg.last downto b.Cfg.first do
            res.(pc) <- Some !post;
            post := spec.transfer pc (Prog.get prog pc) !post
          done)
    blocks;
  res
