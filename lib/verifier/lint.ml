open Kflex_bpf

type kind =
  | Unreachable
  | Dead_store
  | Always_taken
  | Never_taken
  | Redundant_guard
  | Ignored_result

type diag = { pc : int; kind : kind; msg : string }

let kind_name = function
  | Unreachable -> "unreachable"
  | Dead_store -> "dead-store"
  | Always_taken -> "always-taken"
  | Never_taken -> "never-taken"
  | Redundant_guard -> "redundant-guard"
  | Ignored_result -> "ignored-result"

let exit_code = function [] -> 0 | _ :: _ -> 1

let pp_diag ppf d =
  Format.fprintf ppf "insn %d: [%s] %s" d.pc (kind_name d.kind) d.msg

(* --- register read/write sets (conservative) ---------------------------- *)

let src_reads = function Insn.Reg r -> [ r ] | Insn.Imm _ -> []

let call_arity contracts name =
  match Contract.find contracts name with
  | Some c -> List.length c.Contract.args
  | None -> 5

let reads contracts (insn : Insn.t) =
  match insn with
  | Insn.Mov (_, s) -> src_reads s
  | Insn.Alu (_, d, s) -> d :: src_reads s
  | Insn.Neg d -> [ d ]
  | Insn.Ldx (_, _, s, _) -> [ s ]
  | Insn.Stx (_, d, _, s) | Insn.Xstore (_, d, _, s) -> [ d; s ]
  | Insn.St (_, d, _, _) -> [ d ]
  | Insn.Atomic (op, _, d, _, s) ->
      if op = Insn.Cmpxchg then [ d; s; Reg.R0 ] else [ d; s ]
  | Insn.Ja _ | Insn.Checkpoint _ -> []
  | Insn.Jcond (_, a, s, _) -> a :: src_reads s
  | Insn.Call name ->
      List.filteri (fun i _ -> i < call_arity contracts name)
        [ Reg.R1; Reg.R2; Reg.R3; Reg.R4; Reg.R5 ]
  | Insn.Exit -> [ Reg.R0 ]
  | Insn.Guard (_, r) -> [ r ]

let writes_r0 (insn : Insn.t) =
  match insn with
  | Insn.Mov (d, _) | Insn.Alu (_, d, _) | Insn.Neg d | Insn.Ldx (_, d, _, _) ->
      Reg.equal d Reg.R0
  | Insn.Atomic (op, _, _, _, s) -> (
      match op with
      | Insn.Cmpxchg -> true
      | Insn.Fetch_add | Insn.Fetch_or | Insn.Fetch_and | Insn.Fetch_xor
      | Insn.Xchg ->
          Reg.equal s Reg.R0
      | _ -> false)
  | Insn.Call _ -> true
  | _ -> false

(* Whether the frame pointer's value escapes into data flow — a copied
   stack address can alias any slot from any register, so dead-store
   tracking must stand down for the whole program. Using fp as a load/store
   base is not an escape; everything else that reads it is. *)
let fp_escapes (insn : Insn.t) =
  let fp = Reg.fp in
  match insn with
  | Insn.Ldx _ -> false
  | Insn.Stx (_, _, _, s) | Insn.Xstore (_, _, _, s) -> Reg.equal s fp
  | Insn.St _ -> false
  | Insn.Mov (_, Insn.Reg s) -> Reg.equal s fp
  | Insn.Alu (_, d, s) ->
      Reg.equal d fp || List.exists (fun r -> Reg.equal r fp) (src_reads s)
  | Insn.Neg d -> Reg.equal d fp
  | Insn.Atomic (_, _, d, _, s) -> Reg.equal d fp || Reg.equal s fp
  | Insn.Jcond (_, a, s, _) ->
      Reg.equal a fp || List.exists (fun r -> Reg.equal r fp) (src_reads s)
  | _ -> false

(* --- per-analysis passes ------------------------------------------------- *)

let unreachable_diags (a : Verify.analysis) =
  let blocks = Cfg.blocks a.Verify.cfg in
  Array.to_list blocks
  |> List.filter_map (fun (b : Cfg.block) ->
         if a.Verify.reached.(b.Cfg.id) then None
         else
           let why =
             if Cfg.reachable a.Verify.cfg b.Cfg.id then
               "every path to it dies on a contradictory branch"
             else "no path from the entry leads here"
           in
           Some
             {
               pc = b.Cfg.first;
               kind = Unreachable;
               msg =
                 Format.sprintf "insns %d..%d are unreachable: %s" b.Cfg.first
                   b.Cfg.last why;
             })

let verdict_diags (a : Verify.analysis) =
  List.map
    (fun (pc, v) ->
      let insn = Prog.get a.Verify.prog pc in
      match v with
      | Verify.Always_taken ->
          {
            pc;
            kind = Always_taken;
            msg =
              Format.asprintf
                "branch `%a` is always taken (fall-through edge is dead)"
                Insn.pp insn;
          }
      | Verify.Never_taken ->
          {
            pc;
            kind = Never_taken;
            msg =
              Format.asprintf "branch `%a` is never taken (taken edge is dead)"
                Insn.pp insn;
          })
    a.Verify.verdicts

let redundant_mask_diags (a : Verify.analysis) =
  List.map
    (fun (pc, m) ->
      {
        pc;
        kind = Redundant_guard;
        msg =
          Format.sprintf
            "mask `and 0x%Lx` is a no-op: all possibly-set bits already lie \
             inside the mask (the sanitisation it performs is proven \
             redundant)"
            m;
      })
    a.Verify.redundant_masks

let slot_of_full_store disp width =
  let byte = disp + Prog.stack_size in
  if width = 8 && byte mod 8 = 0 && byte >= 0 && byte + 8 <= Prog.stack_size
  then Some (byte / 8)
  else None

let overlapping_slots disp width =
  let first = disp + Prog.stack_size and last = disp + Prog.stack_size + width - 1 in
  let lo = max 0 (first / 8) and hi = min (Prog.stack_size / 8 - 1) (last / 8) in
  List.init (max 0 (hi - lo + 1)) (fun i -> lo + i)

(* --- slot liveness on the fixpoint engine --------------------------------

   Dead-store detection is backward liveness over the 64 stack slots: a
   full-slot store whose slot is dead in the post-fact is never read on any
   path. The old block-local pass gave up at every helper call; here the
   contract registry proves most calls cannot read a given slot — only the
   slots covered by an [A_stack_ptr n] argument (at its abstract constant
   offset) are made live, and only a helper whose arguments could carry an
   unannotated stack pointer degrades the fact to "all live". *)

type slot_live = { top : bool; mask : int64 }

let sl_join x y = { top = x.top || y.top; mask = Int64.logor x.mask y.mask }

let sl_equal x y = x.top = y.top && Int64.equal x.mask y.mask

let sl_all = { top = true; mask = -1L }

let sl_none = { top = false; mask = 0L }

let sl_gen f slots =
  if f.top then f
  else
    {
      f with
      mask =
        List.fold_left
          (fun m s -> Int64.logor m (Int64.shift_left 1L s))
          f.mask slots;
    }

let sl_kill f slot =
  if f.top then f
  else { f with mask = Int64.logand f.mask (Int64.lognot (Int64.shift_left 1L slot)) }

let sl_mem f slot =
  f.top || Int64.logand f.mask (Int64.shift_left 1L slot) <> 0L

(* Slots a helper call may read, from its contract and the verifier's
   abstract pre-state at the call; [None] = unknown (all slots live). *)
let call_slot_gen ~contracts (a : Verify.analysis) pc name =
  match Contract.find contracts name with
  | None -> None
  | Some c ->
      let st = a.Verify.states_at.(pc) in
      let arg_val i =
        match st with
        | Some st when i < 5 -> Some (State.get st (Reg.of_int (i + 1)))
        | _ -> None
      in
      let rec go i acc = function
        | [] -> Some acc
        | arg :: tl -> (
            match (arg, arg_val i) with
            | Contract.A_stack_ptr n, Some (Value.Ptr { kind = Value.Stack; off; _ })
              -> (
                match Range.is_const off with
                | Some o ->
                    let byte = Int64.to_int o + Prog.stack_size in
                    let lo = max 0 (byte / 8)
                    and hi = min (Prog.stack_size / 8 - 1) ((byte + n - 1) / 8) in
                    let slots = List.init (max 0 (hi - lo + 1)) (fun k -> lo + k) in
                    go (i + 1) (slots @ acc) tl
                | None -> None)
            | Contract.A_stack_ptr _, _ -> None
            | Contract.A_any, Some (Value.Ptr { kind = Value.Stack; _ }) -> None
            | Contract.A_any, None -> None
            | _ -> go (i + 1) acc tl)
      in
      go 0 [] c.Contract.args

let slot_transfer ~contracts (a : Verify.analysis) pc insn f =
  match insn with
  | Insn.Stx (sz, d, disp, _) | Insn.St (sz, d, disp, _)
    when Reg.equal d Reg.fp -> (
      match slot_of_full_store disp (Insn.size_bytes sz) with
      | Some slot -> sl_kill f slot
      | None -> f (* partial: neither reads nor fully overwrites *))
  | Insn.Ldx (sz, _, s, disp) when Reg.equal s Reg.fp ->
      sl_gen f (overlapping_slots disp (Insn.size_bytes sz))
  | Insn.Atomic (_, sz, d, disp, _) when Reg.equal d Reg.fp ->
      sl_gen f (overlapping_slots disp (Insn.size_bytes sz))
  | Insn.Call name -> (
      match call_slot_gen ~contracts a pc name with
      | Some slots -> sl_gen f slots
      | None -> sl_all)
  | _ -> f

(* Block-local look-ahead for the friendlier half of the message. *)
let overwrite_pc ~contracts (a : Verify.analysis) pc slot =
  let b = Cfg.block_of_pc a.Verify.cfg pc in
  let insns = Prog.insns a.Verify.prog in
  let rec scan pc' =
    if pc' > b.Cfg.last then None
    else
      match insns.(pc') with
      | Insn.Stx (sz, d, disp, _) | Insn.St (sz, d, disp, _)
        when Reg.equal d Reg.fp
             && slot_of_full_store disp (Insn.size_bytes sz) = Some slot ->
          Some pc'
      | insn ->
          (* anything that could read the slot ends the scan *)
          let keeps_looking =
            match insn with
            | Insn.Ldx (sz, _, s, disp) when Reg.equal s Reg.fp ->
                not (List.mem slot (overlapping_slots disp (Insn.size_bytes sz)))
            | Insn.Call name ->
                call_slot_gen ~contracts a pc' name = Some []
            | Insn.Exit -> false
            | _ -> true
          in
          if keeps_looking then scan (pc' + 1) else None
  in
  scan (pc + 1)

let dead_store_diags ~contracts (a : Verify.analysis) =
  let prog = a.Verify.prog in
  let insns = Prog.insns prog in
  if Array.exists fp_escapes insns then []
  else
    let spec =
      {
        Dataflow.join = sl_join;
        equal = sl_equal;
        transfer = slot_transfer ~contracts a;
        edge = None;
      }
    in
    match Dataflow.backward a ~exit_fact:sl_none spec with
    | exception Dataflow.Diverged -> []
    | post ->
        let diags = ref [] in
        Array.iteri
          (fun pc insn ->
            match insn with
            | Insn.Stx (sz, d, disp, _) | Insn.St (sz, d, disp, _)
              when Reg.equal d Reg.fp -> (
                match (slot_of_full_store disp (Insn.size_bytes sz), post.(pc)) with
                | Some slot, Some f when not (sl_mem f slot) ->
                    let where =
                      match overwrite_pc ~contracts a pc slot with
                      | Some opc ->
                          Format.sprintf "overwritten at insn %d before any read"
                            opc
                      | None -> "never read on any path to exit"
                    in
                    diags :=
                      {
                        pc;
                        kind = Dead_store;
                        msg =
                          Format.sprintf
                            "store to stack slot %d (fp%+d) is dead: %s" slot
                            ((slot * 8) - Prog.stack_size)
                            where;
                      }
                      :: !diags
                | _ -> ())
            | _ -> ())
          insns;
        !diags

(* --- r0 liveness on the fixpoint engine ---------------------------------- *)

let ignored_result_diags ~contracts (a : Verify.analysis) =
  let prog = a.Verify.prog in
  let spec =
    {
      Dataflow.join = ( || );
      equal = Bool.equal;
      transfer =
        (fun _pc insn live ->
          List.exists (fun r -> Reg.equal r Reg.R0) (reads contracts insn)
          || (live && not (writes_r0 insn)));
      edge = None;
    }
  in
  match Dataflow.backward a ~exit_fact:false spec with
  | exception Dataflow.Diverged -> []
  | post ->
      let diags = ref [] in
      Array.iteri
        (fun pc insn ->
          match insn with
          | Insn.Call name
            when (match Contract.find contracts name with
                 | Some { Contract.ret = Contract.R_unit; _ } -> false
                 | _ -> true)
                 && post.(pc) = Some false ->
              diags :=
                {
                  pc;
                  kind = Ignored_result;
                  msg =
                    Format.sprintf
                      "result of `call %s` is ignored: r0 is never read on \
                       any path"
                      name;
                }
                :: !diags
          | _ -> ())
        (Prog.insns prog);
      !diags

let run ~contracts (a : Verify.analysis) =
  let diags =
    unreachable_diags a @ verdict_diags a @ redundant_mask_diags a
    @ dead_store_diags ~contracts a
    @ ignored_result_diags ~contracts a
  in
  List.sort
    (fun x y ->
      match Int.compare x.pc y.pc with
      | 0 -> compare x.kind y.kind
      | c -> c)
    diags
