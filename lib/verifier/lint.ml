open Kflex_bpf

type kind =
  | Unreachable
  | Dead_store
  | Always_taken
  | Never_taken
  | Redundant_guard
  | Ignored_result

type diag = { pc : int; kind : kind; msg : string }

let kind_name = function
  | Unreachable -> "unreachable"
  | Dead_store -> "dead-store"
  | Always_taken -> "always-taken"
  | Never_taken -> "never-taken"
  | Redundant_guard -> "redundant-guard"
  | Ignored_result -> "ignored-result"

let exit_code = function [] -> 0 | _ :: _ -> 1

let pp_diag ppf d =
  Format.fprintf ppf "insn %d: [%s] %s" d.pc (kind_name d.kind) d.msg

(* --- register read/write sets (conservative) ---------------------------- *)

let src_reads = function Insn.Reg r -> [ r ] | Insn.Imm _ -> []

let call_arity contracts name =
  match Contract.find contracts name with
  | Some c -> List.length c.Contract.args
  | None -> 5

let reads contracts (insn : Insn.t) =
  match insn with
  | Insn.Mov (_, s) -> src_reads s
  | Insn.Alu (_, d, s) -> d :: src_reads s
  | Insn.Neg d -> [ d ]
  | Insn.Ldx (_, _, s, _) -> [ s ]
  | Insn.Stx (_, d, _, s) | Insn.Xstore (_, d, _, s) -> [ d; s ]
  | Insn.St (_, d, _, _) -> [ d ]
  | Insn.Atomic (op, _, d, _, s) ->
      if op = Insn.Cmpxchg then [ d; s; Reg.R0 ] else [ d; s ]
  | Insn.Ja _ | Insn.Checkpoint _ -> []
  | Insn.Jcond (_, a, s, _) -> a :: src_reads s
  | Insn.Call name ->
      List.filteri (fun i _ -> i < call_arity contracts name)
        [ Reg.R1; Reg.R2; Reg.R3; Reg.R4; Reg.R5 ]
  | Insn.Exit -> [ Reg.R0 ]
  | Insn.Guard (_, r) -> [ r ]

let writes_r0 (insn : Insn.t) =
  match insn with
  | Insn.Mov (d, _) | Insn.Alu (_, d, _) | Insn.Neg d | Insn.Ldx (_, d, _, _) ->
      Reg.equal d Reg.R0
  | Insn.Atomic (op, _, _, _, s) -> (
      match op with
      | Insn.Cmpxchg -> true
      | Insn.Fetch_add | Insn.Fetch_or | Insn.Fetch_and | Insn.Fetch_xor
      | Insn.Xchg ->
          Reg.equal s Reg.R0
      | _ -> false)
  | Insn.Call _ -> true
  | _ -> false

(* Whether the frame pointer's value escapes into data flow — a copied
   stack address can alias any slot from any register, so dead-store
   tracking must stand down for the whole program. Using fp as a load/store
   base is not an escape; everything else that reads it is. *)
let fp_escapes (insn : Insn.t) =
  let fp = Reg.fp in
  match insn with
  | Insn.Ldx _ -> false
  | Insn.Stx (_, _, _, s) | Insn.Xstore (_, _, _, s) -> Reg.equal s fp
  | Insn.St _ -> false
  | Insn.Mov (_, Insn.Reg s) -> Reg.equal s fp
  | Insn.Alu (_, d, s) ->
      Reg.equal d fp || List.exists (fun r -> Reg.equal r fp) (src_reads s)
  | Insn.Neg d -> Reg.equal d fp
  | Insn.Atomic (_, _, d, _, s) -> Reg.equal d fp || Reg.equal s fp
  | Insn.Jcond (_, a, s, _) ->
      Reg.equal a fp || List.exists (fun r -> Reg.equal r fp) (src_reads s)
  | _ -> false

(* --- per-analysis passes ------------------------------------------------- *)

let unreachable_diags (a : Verify.analysis) =
  let blocks = Cfg.blocks a.Verify.cfg in
  Array.to_list blocks
  |> List.filter_map (fun (b : Cfg.block) ->
         if a.Verify.reached.(b.Cfg.id) then None
         else
           let why =
             if Cfg.reachable a.Verify.cfg b.Cfg.id then
               "every path to it dies on a contradictory branch"
             else "no path from the entry leads here"
           in
           Some
             {
               pc = b.Cfg.first;
               kind = Unreachable;
               msg =
                 Format.sprintf "insns %d..%d are unreachable: %s" b.Cfg.first
                   b.Cfg.last why;
             })

let verdict_diags (a : Verify.analysis) =
  List.map
    (fun (pc, v) ->
      let insn = Prog.get a.Verify.prog pc in
      match v with
      | Verify.Always_taken ->
          {
            pc;
            kind = Always_taken;
            msg =
              Format.asprintf
                "branch `%a` is always taken (fall-through edge is dead)"
                Insn.pp insn;
          }
      | Verify.Never_taken ->
          {
            pc;
            kind = Never_taken;
            msg =
              Format.asprintf "branch `%a` is never taken (taken edge is dead)"
                Insn.pp insn;
          })
    a.Verify.verdicts

let redundant_mask_diags (a : Verify.analysis) =
  List.map
    (fun (pc, m) ->
      {
        pc;
        kind = Redundant_guard;
        msg =
          Format.sprintf
            "mask `and 0x%Lx` is a no-op: all possibly-set bits already lie \
             inside the mask (the sanitisation it performs is proven \
             redundant)"
            m;
      })
    a.Verify.redundant_masks

let slot_of_full_store disp width =
  let byte = disp + Prog.stack_size in
  if width = 8 && byte mod 8 = 0 && byte >= 0 && byte + 8 <= Prog.stack_size
  then Some (byte / 8)
  else None

let overlapping_slots disp width =
  let first = disp + Prog.stack_size and last = disp + Prog.stack_size + width - 1 in
  let lo = max 0 (first / 8) and hi = min (Prog.stack_size / 8 - 1) (last / 8) in
  List.init (max 0 (hi - lo + 1)) (fun i -> lo + i)

let dead_store_diags (a : Verify.analysis) =
  let prog = a.Verify.prog in
  let insns = Prog.insns prog in
  if Array.exists fp_escapes insns then []
  else
    let diags = ref [] in
    let blocks = Cfg.blocks a.Verify.cfg in
    Array.iter
      (fun (b : Cfg.block) ->
        if a.Verify.reached.(b.Cfg.id) then begin
          let pending = Hashtbl.create 8 in
          let report slot store_pc overwritten_pc =
            diags :=
              {
                pc = store_pc;
                kind = Dead_store;
                msg =
                  (match overwritten_pc with
                  | Some opc ->
                      Format.sprintf
                        "store to stack slot %d (fp%+d) is dead: overwritten \
                         at insn %d before any read"
                        slot
                        ((slot * 8) - Prog.stack_size)
                        opc
                  | None ->
                      Format.sprintf
                        "store to stack slot %d (fp%+d) is dead: never read \
                         before exit"
                        slot
                        ((slot * 8) - Prog.stack_size));
              }
              :: !diags
          in
          for pc = b.Cfg.first to b.Cfg.last do
            match insns.(pc) with
            | Insn.Stx (sz, d, disp, _) | Insn.St (sz, d, disp, _)
              when Reg.equal d Reg.fp -> (
                let width = Insn.size_bytes sz in
                match slot_of_full_store disp width with
                | Some slot ->
                    (match Hashtbl.find_opt pending slot with
                    | Some old_pc -> report slot old_pc (Some pc)
                    | None -> ());
                    Hashtbl.replace pending slot pc
                | None ->
                    (* partial or unaligned: clobbers without fully proving
                       the prior store dead *)
                    List.iter (Hashtbl.remove pending)
                      (overlapping_slots disp width))
            | Insn.Ldx (sz, _, s, disp) when Reg.equal s Reg.fp ->
                List.iter (Hashtbl.remove pending)
                  (overlapping_slots disp (Insn.size_bytes sz))
            | Insn.Call _ ->
                (* helpers may read stack buffers *)
                Hashtbl.reset pending
            | Insn.Exit ->
                Hashtbl.iter (fun slot store_pc -> report slot store_pc None)
                  pending;
                Hashtbl.reset pending
            | _ -> ()
          done
        end)
      blocks;
    !diags

let ignored_result_diags ~contracts (a : Verify.analysis) =
  let prog = a.Verify.prog in
  let diags = ref [] in
  let blocks = Cfg.blocks a.Verify.cfg in
  Array.iter
    (fun (b : Cfg.block) ->
      if a.Verify.reached.(b.Cfg.id) then begin
        let pending = ref None in
        let report (pc0, name) clobber_pc =
          diags :=
            {
              pc = pc0;
              kind = Ignored_result;
              msg =
                Format.sprintf
                  "result of `call %s` is ignored: r0 is overwritten at insn \
                   %d without being read"
                  name clobber_pc;
            }
            :: !diags
        in
        for pc = b.Cfg.first to b.Cfg.last do
          let insn = Prog.get prog pc in
          let reads_r0 =
            List.exists (fun r -> Reg.equal r Reg.R0) (reads contracts insn)
          in
          if reads_r0 then pending := None
          else if writes_r0 insn then begin
            (match !pending with Some p -> report p pc | None -> ());
            pending := None
          end;
          match insn with
          | Insn.Call name -> (
              match Contract.find contracts name with
              | Some { Contract.ret = Contract.R_unit; _ } -> ()
              | _ -> pending := Some (pc, name))
          | _ -> ()
        done
      end)
    blocks;
  !diags

let run ~contracts (a : Verify.analysis) =
  let diags =
    unreachable_diags a @ verdict_diags a @ redundant_mask_diags a
    @ dead_store_diags a
    @ ignored_result_diags ~contracts a
  in
  List.sort
    (fun x y ->
      match Int.compare x.pc y.pc with
      | 0 -> compare x.kind y.kind
      | c -> c)
    diags
