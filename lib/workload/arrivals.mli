(** Open-loop arrival schedules: Poisson and bursty/heavy-tailed.

    Arrival times are drawn independently of completions, so offered load
    is a free parameter and overload (offered > capacity) is reachable —
    the property the closed loop structurally lacks. *)

type kind =
  | Poisson  (** exponential inter-arrivals at the nominal rate *)
  | Pareto_on_off of { alpha : float; min_burst : float; burst : float }
      (** Pareto-length request bursts (heavy tail, [alpha] < 2) at
          [burst]× the nominal rate, separated by idle gaps that restore
          the long-run average. *)

val default_bursty : kind
(** alpha 1.5, minimum burst 8 requests, 5× in-burst rate. *)

type t

val create : ?kind:kind -> rate:float -> Rng.t -> t
(** [rate] is the long-run average in requests/second. Deterministic in
    the RNG stream. *)

val next : t -> float
(** Absolute time (ns since the schedule origin) of the next arrival;
    strictly increasing across calls. *)
