(** Deterministic pseudo-random numbers (splitmix64).

    All workload generation is seeded so experiment runs are reproducible. *)

type t

val create : seed:int64 -> t
val next : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, n). *)

val split : t -> t
(** Derive an independent child stream. The parent advances by one draw;
    the child's sequence is deterministic in the parent's state at the call.
    Components that must not perturb each other's randomness (fuzz program
    generation, heap-layout randomisation, sim workloads) each take their own
    split. *)

val bool : t -> bool

val int64 : t -> int64
(** Alias for {!next}; reads better at call sites drawing raw values. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
