(** Deterministic pseudo-random numbers (splitmix64).

    All workload generation is seeded so experiment runs are reproducible. *)

type t

val create : seed:int64 -> t
val next : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, n). *)
