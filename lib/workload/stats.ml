(* Latency recording with two regimes:

   - Exact: up to [exact_cap] samples live in a plain array and every
     observable (percentiles included) is computed on the sorted samples,
     exactly as the seed implementation did. Small benchmark runs and the
     existing unit tests see bit-identical behaviour.
   - Bucketed: past [exact_cap] the recorder spills into a log-spaced
     histogram — O(1) [add], constant memory in the sample count — so
     million-request open-loop runs never hold every sample. Buckets are
     geometric with ratio [bucket_ratio]; a percentile answers with the
     geometric midpoint of its bucket, so the relative error is bounded by
     sqrt(bucket_ratio) - 1 (< 1% at ratio 1.02).

   [merge] stays a pure function of the two sample multisets: the result is
   exact iff the combined count fits the exact regime, else both sides are
   bucketed and bucket counts added. Since the regime depends only on the
   total count and bucket tables are multiset-determined, merging remains
   commutative and associative in every observable. *)

let exact_cap = 1024
let bucket_ratio = 1.02
let log_ratio = log bucket_ratio

type t = {
  mutable data : float array; (* exact regime only *)
  mutable n : int; (* total samples *)
  mutable sorted : bool;
  mutable buckets : (int, int) Hashtbl.t option; (* Some = bucketed regime *)
  mutable nonpos : int; (* bucketed samples <= 0 (no log bucket) *)
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let create () =
  {
    data = Array.make 64 0.0;
    n = 0;
    sorted = true;
    buckets = None;
    nonpos = 0;
    sum = 0.0;
    minv = infinity;
    maxv = neg_infinity;
  }

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let min t = if t.n = 0 then 0.0 else t.minv
let max t = if t.n = 0 then 0.0 else t.maxv

let bucket_of v = int_of_float (Float.floor (log v /. log_ratio))
let bucket_rep k = exp ((float_of_int k +. 0.5) *. log_ratio)

let bump h k d =
  let c = try Hashtbl.find h k with Not_found -> 0 in
  Hashtbl.replace h k (c + d)

let add_bucket t v =
  match t.buckets with
  | None -> assert false
  | Some h -> if v <= 0.0 then t.nonpos <- t.nonpos + 1 else bump h (bucket_of v) 1

(* Exact -> bucketed transition: reinsert the retained samples, drop the
   array. One-way; the recorder never returns to the exact regime. *)
let spill t =
  let h = Hashtbl.create 256 in
  t.buckets <- Some h;
  for i = 0 to t.n - 1 do
    let v = t.data.(i) in
    if v <= 0.0 then t.nonpos <- t.nonpos + 1 else bump h (bucket_of v) 1
  done;
  t.data <- [||]

let add t v =
  t.sum <- t.sum +. v;
  if v < t.minv then t.minv <- v;
  if v > t.maxv then t.maxv <- v;
  (match t.buckets with
  | Some _ ->
      t.n <- t.n + 1;
      add_bucket t v
  | None ->
      if t.n = exact_cap then begin
        spill t;
        t.n <- t.n + 1;
        add_bucket t v
      end
      else begin
        if t.n = Array.length t.data then begin
          let bigger = Array.make (Stdlib.max 64 (2 * t.n)) 0.0 in
          Array.blit t.data 0 bigger 0 t.n;
          t.data <- bigger
        end;
        t.data.(t.n) <- v;
        t.n <- t.n + 1;
        t.sorted <- false
      end)

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.n in
    Array.sort Float.compare sub;
    Array.blit sub 0 t.data 0 t.n;
    t.sorted <- true
  end

let rank_of p n =
  Stdlib.max 1 (Stdlib.min n (int_of_float (ceil (p *. float_of_int n))))

let percentile t p =
  if t.n = 0 then 0.0
  else
    match t.buckets with
    | None ->
        ensure_sorted t;
        t.data.(rank_of p t.n - 1)
    | Some h ->
        let r = rank_of p t.n in
        if r <= t.nonpos then t.minv
        else begin
          let keys =
            Hashtbl.fold (fun k _ acc -> k :: acc) h []
            |> List.sort Stdlib.compare
          in
          let cum = ref t.nonpos in
          let ans = ref t.maxv in
          (try
             List.iter
               (fun k ->
                 cum := !cum + Hashtbl.find h k;
                 if !cum >= r then begin
                   ans := Stdlib.min t.maxv (Stdlib.max t.minv (bucket_rep k));
                   raise Exit
                 end)
               keys
           with Exit -> ());
          !ans
        end

(* Per-shard recorders are merged after a run; the result is a fresh
   recorder over the multiset union of the samples (neither argument is
   mutated), so [merge] commutes and associates in every observable — the
   regime is a function of the combined count alone, and bucket tables are
   determined by the sample multiset. *)
let merge a b =
  let t = create () in
  t.n <- a.n + b.n;
  t.sum <- a.sum +. b.sum;
  t.minv <- Stdlib.min a.minv b.minv;
  t.maxv <- Stdlib.max a.maxv b.maxv;
  let exact_side s = s.buckets = None in
  if exact_side a && exact_side b && t.n <= exact_cap then begin
    t.data <- Array.make (Stdlib.max 1 t.n) 0.0;
    Array.blit a.data 0 t.data 0 a.n;
    Array.blit b.data 0 t.data a.n b.n;
    t.sorted <- false
  end
  else begin
    let h = Hashtbl.create 256 in
    t.buckets <- Some h;
    let pour s =
      match s.buckets with
      | Some hs ->
          t.nonpos <- t.nonpos + s.nonpos;
          Hashtbl.iter (fun k c -> bump h k c) hs
      | None ->
          for i = 0 to s.n - 1 do
            let v = s.data.(i) in
            if v <= 0.0 then t.nonpos <- t.nonpos + 1 else bump h (bucket_of v) 1
          done
    in
    pour a;
    pour b
  end;
  t

let is_bucketed t = t.buckets <> None
let relative_error = sqrt bucket_ratio -. 1.0
