type t = {
  mutable data : float array;
  mutable n : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 1024 0.0; n = 0; sorted = true }

let add t v =
  if t.n = Array.length t.data then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.data 0 bigger 0 t.n;
    t.data <- bigger
  end;
  t.data.(t.n) <- v;
  t.n <- t.n + 1;
  t.sorted <- false

let count t = t.n

let mean t =
  if t.n = 0 then 0.0
  else begin
    let s = ref 0.0 in
    for i = 0 to t.n - 1 do
      s := !s +. t.data.(i)
    done;
    !s /. float_of_int t.n
  end

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.n in
    Array.sort Float.compare sub;
    Array.blit sub 0 t.data 0 t.n;
    t.sorted <- true
  end

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    ensure_sorted t;
    let idx = int_of_float (ceil (p *. float_of_int t.n)) - 1 in
    t.data.(Stdlib.max 0 (Stdlib.min (t.n - 1) idx))
  end

let min t = if t.n = 0 then 0.0 else (ensure_sorted t; t.data.(0))
let max t = if t.n = 0 then 0.0 else (ensure_sorted t; t.data.(t.n - 1))

(* Per-shard recorders are merged after a run; the result is a fresh
   recorder over the multiset union of the samples, so [merge] commutes and
   associates up to sample order (which [percentile] normalises away by
   sorting). *)
let merge a b =
  let t = { data = Array.make (Stdlib.max 1 (a.n + b.n)) 0.0; n = a.n + b.n; sorted = false } in
  Array.blit a.data 0 t.data 0 a.n;
  Array.blit b.data 0 t.data a.n b.n;
  t
