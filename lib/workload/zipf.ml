type t = { cdf : float array; pmf : float array }

let build ~s ~n =
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let pmf = Array.map (fun x -> x /. total) w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.0;
  { cdf; pmf }

(* Construction is O(n) (harmonic weights + prefix sums), and open-loop
   generators create a distribution per connection batch — memoize the
   result per (n, s). The tables are immutable after construction, so one
   shared instance serves any number of threads; the cache itself is the
   only mutable state and sits behind a mutex. Bounded so adversarial
   parameter churn cannot grow it without limit. *)
let cache : (int * float, t) Hashtbl.t = Hashtbl.create 8
let cache_m = Mutex.create ()
let builds_count = ref 0
let cache_cap = 64

let create ?(s = 0.99) ~n () =
  if n <= 0 then invalid_arg "Zipf.create";
  Mutex.protect cache_m (fun () ->
      match Hashtbl.find_opt cache (n, s) with
      | Some t -> t
      | None ->
          let t = build ~s ~n in
          incr builds_count;
          if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
          Hashtbl.add cache (n, s) t;
          t)

let builds () = Mutex.protect cache_m (fun () -> !builds_count)

let sample t rng =
  let u = Rng.float rng in
  (* first index with cdf >= u *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let pmf t i = t.pmf.(i)
