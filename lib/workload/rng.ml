type t = { mutable state : int64 }

let create ~seed = { state = seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float t =
  let v = Int64.shift_right_logical (next t) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int n))

(* Derive an independent stream: draw one value from the parent and use it
   as the child's state. splitmix64's output function is a bijection, so
   children seeded from distinct parent draws never collide, and the parent
   advances deterministically — callers get reproducible stream trees. *)
let split t = { state = next t }

let bool t = Int64.logand (next t) 1L = 1L

let int64 t = next t

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose";
  arr.(int t (Array.length arr))
