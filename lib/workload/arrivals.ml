(* Open-loop arrival processes.

   The generator schedules request i at an absolute time drawn from the
   process regardless of completions — queueing delay is real and offered
   load above capacity is representable (the closed loop can never
   overload: each client waits for its reply).

   - Poisson: memoryless, exponential inter-arrivals at [rate].
   - Pareto on-off: bursts whose length (in requests) is Pareto-distributed
     (heavy-tailed, alpha < 2 gives the wild burst sizes measured in
     production request streams); within a burst arrivals are Poisson at
     [burst] times the nominal rate, and bursts are separated by idle gaps
     sized so the long-run average rate is still [rate]. *)

type kind =
  | Poisson
  | Pareto_on_off of { alpha : float; min_burst : float; burst : float }

let default_bursty = Pareto_on_off { alpha = 1.5; min_burst = 8.0; burst = 5.0 }

type t = {
  kind : kind;
  rate : float; (* requests per second *)
  rng : Rng.t;
  mutable now_ns : float;
  mutable burst_left : int; (* Pareto on-off: requests left in the burst *)
}

let create ?(kind = Poisson) ~rate rng =
  if rate <= 0.0 then invalid_arg "Arrivals.create: rate";
  { kind; rate; rng; now_ns = 0.0; burst_left = 0 }

let exp_sample rng ~mean = -.log (1.0 -. Rng.float rng) *. mean

let pareto_sample rng ~alpha ~xm =
  xm /. Float.pow (1.0 -. Rng.float rng) (1.0 /. alpha)

(* Absolute time (ns) of the next arrival. *)
let next t =
  (match t.kind with
  | Poisson -> t.now_ns <- t.now_ns +. exp_sample t.rng ~mean:(1e9 /. t.rate)
  | Pareto_on_off { alpha; min_burst; burst } ->
      if t.burst_left = 0 then begin
        (* draw a new burst; insert the off gap that restores the average
           rate: a burst of b requests takes b/(burst*rate) seconds on, so
           the cycle must last b/rate seconds in total *)
        let b =
          Stdlib.max 1 (int_of_float (pareto_sample t.rng ~alpha ~xm:min_burst))
        in
        t.burst_left <- b;
        let on_s = float_of_int b /. (burst *. t.rate) in
        let cycle_s = float_of_int b /. t.rate in
        let gap_mean = Stdlib.max 0.0 (cycle_s -. on_s) in
        t.now_ns <- t.now_ns +. exp_sample t.rng ~mean:(gap_mean *. 1e9)
      end;
      t.burst_left <- t.burst_left - 1;
      t.now_ns <-
        t.now_ns +. exp_sample t.rng ~mean:(1e9 /. (burst *. t.rate)));
  t.now_ns
