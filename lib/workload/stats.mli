(** Latency/throughput recording for benchmarks.

    Small sample sets (≤ 1024) are kept exactly and percentiles answer on
    the sorted samples. Past that the recorder spills into a log-bucketed
    histogram — O(1) {!add}, memory constant in the sample count — so
    million-request open-loop runs never retain every sample. Bucketed
    percentiles answer with the geometric midpoint of a 2%-wide bucket,
    bounding the relative error below 1% ({!relative_error}). [mean],
    [min], [max] and [count] stay exact in both regimes. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank on the sorted samples (exact
    regime) or the containing bucket's geometric midpoint clamped to
    [[min, max]] (bucketed regime). 0 when empty. *)

val min : t -> float
val max : t -> float

val merge : t -> t -> t
(** A fresh recorder over the multiset union of both sample sets (neither
    argument is mutated). Commutative and associative in every observable —
    the regime depends only on the combined count and bucket tables are
    multiset-determined; the engine's per-shard latency recorders are
    folded with this after a run. *)

val is_bucketed : t -> bool
(** Whether the recorder has spilled into the histogram regime (tests). *)

val relative_error : float
(** Worst-case relative error of a bucketed {!percentile}:
    sqrt(bucket ratio) - 1 < 0.01. *)
