(** Latency/throughput recording for benchmarks. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank on the sorted samples. 0 when
    empty. *)

val min : t -> float
val max : t -> float

val merge : t -> t -> t
(** A fresh recorder over the multiset union of both sample sets (neither
    argument is mutated). Commutative and associative in every observable
    ([count], [percentile], [min], [max]); the engine's per-shard latency
    recorders are folded with this after a run. *)
