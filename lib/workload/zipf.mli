(** Zipfian key popularity.

    The paper's clients generate requests with a Zipfian access pattern at
    s = 0.99 (§5, Testbed) — the standard YCSB skew. Sampling uses a
    precomputed CDF with binary search.

    Construction is O(n), so the precomputed tables are memoized per
    (n, s): repeated {!create} calls with the same parameters (one per
    connection batch in the open-loop generator) return the same shared,
    immutable distribution. *)

type t

val create : ?s:float -> n:int -> unit -> t
(** Distribution over ranks [0, n). [s] defaults to 0.99. Thread-safe;
    returns a cached instance when one exists for (n, s). *)

val sample : t -> Rng.t -> int
(** A rank in [0, n); rank 0 is the most popular. *)

val pmf : t -> int -> float
(** Probability of a rank (tests). *)

val builds : unit -> int
(** Number of O(n) table constructions performed so far — a cache-hit
    returns without incrementing it (tests assert memoization). *)
