(** Zipfian key popularity.

    The paper's clients generate requests with a Zipfian access pattern at
    s = 0.99 (§5, Testbed) — the standard YCSB skew. Sampling uses a
    precomputed CDF with binary search. *)

type t

val create : ?s:float -> n:int -> unit -> t
(** Distribution over ranks [0, n). [s] defaults to 0.99. *)

val sample : t -> Rng.t -> int
(** A rank in [0, n); rank 0 is the most popular. *)

val pmf : t -> int -> float
(** Probability of a rank (tests). *)
