module Rng = Kflex_workload.Rng

type summary = {
  cases : int;
  accepted : int;
  rejected : int;
  invalid : int;
  chained : int;
  shared : int;
  flagged : int;
  failures : int;
  reproducers : string list;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "%d cases: %d accepted, %d rejected, %d invalid, %d chain-checked, %d \
     shared-checked, %d lifecycle-flagged, %d FAILURES"
    s.cases s.accepted s.rejected s.invalid s.chained s.shared s.flagged
    s.failures;
  List.iter (fun p -> Format.fprintf ppf "@.  reproducer: %s" p) s.reproducers

(* Randomised environment layout for one case, drawn from its own stream. *)
let layout_config rng =
  let heap_size = Int64.shift_left 1L (Rng.choose rng [| 12; 14; 16 |]) in
  let kbase =
    Int64.add 0x4000_0000_0000L
      (Int64.shift_left (Int64.of_int (Rng.int rng 256)) 30)
  in
  let npages = Int64.to_int (Int64.div heap_size 4096L) in
  let pages =
    if Rng.bool rng then List.init npages Fun.id
    else List.filter (fun _ -> Rng.int rng 4 < 3) (List.init npages Fun.id)
  in
  let port = 53 in
  let prandom = Rng.int64 rng in
  let payload = String.init 64 (fun _ -> Char.chr (Rng.int rng 256)) in
  let dst_port = if Rng.bool rng then port else 9 in
  {
    Oracle.default_config with
    heap_size;
    kbase;
    pages;
    port;
    prandom;
    payload;
    src_port = 1024 + Rng.int rng 60000;
    dst_port;
  }

let shrink_failure ?backend cfg (f : Oracle.failure) items =
  let check cand =
    match Gen.assemble cand with
    | exception _ -> false
    | prog -> (
        match Oracle.run_case ?backend cfg prog with
        | Oracle.Fail f' -> f'.Oracle.oracle = f.Oracle.oracle
        | _ -> false)
  in
  if check items then Shrink.shrink ~check items else items

(* The chain oracle rides on accepted cases: a second program drawn from the
   continuation of the case's generation stream (the master stream is
   untouched, so single-program cases reproduce exactly as before) forms a
   2-program chain checked engine-vs-facade. Chain failures shrink the
   second program with the first held fixed. *)
let shrink_chain_partner cfg prog1 items2 =
  let check cand =
    match Gen.assemble cand with
    | exception _ -> false
    | p2 -> (
        match Oracle.chain_equiv cfg prog1 p2 with
        | Oracle.Fail _ -> true
        | _ -> false)
  in
  if check items2 then Shrink.shrink ~check items2 else items2

let shrink_shared cfg items =
  let check cand =
    match Gen.assemble cand with
    | exception _ -> false
    | p -> (
        match Oracle.shared_equiv cfg p with
        | Oracle.Fail _ -> true
        | _ -> false)
  in
  if check items then Shrink.shrink ~check items else items

let run ?(out_dir = ".") ?(log = fun _ -> ()) ?backend ?(threaded_shared = false)
    ~seed ~count () =
  if not (Sys.file_exists out_dir) then Unix.mkdir out_dir 0o755;
  let master = Rng.create ~seed in
  let accepted = ref 0
  and rejected = ref 0
  and invalid = ref 0
  and chained = ref 0
  and shared = ref 0
  and flagged = ref 0
  and failures = ref 0
  and repros = ref [] in
  for i = 0 to count - 1 do
    let gen_rng = Rng.split master in
    let layout_rng = Rng.split master in
    let cfg = layout_config layout_rng in
    let items =
      Gen.generate ~rng:gen_rng ~heap_size:cfg.Oracle.heap_size
        ~port:cfg.Oracle.port ()
    in
    match Gen.assemble items with
    | exception e ->
        incr invalid;
        log (Printf.sprintf "case %d: did not assemble: %s" i
               (Printexc.to_string e))
    | prog -> (
        let verdict, nflag = Oracle.run_case_stats ?backend cfg prog in
        flagged := !flagged + nflag;
        match verdict with
        | Oracle.Pass ->
            incr accepted;
            (* both riders draw from the continuation of the case's
               generation stream, in a fixed order, so every case (and its
               reproducers) stays deterministic in (seed, count) *)
            let items2 =
              Gen.generate ~rng:gen_rng ~heap_size:cfg.Oracle.heap_size
                ~port:cfg.Oracle.port ()
            in
            let items_s =
              Gen.generate ~shared:true ~rng:gen_rng
                ~heap_size:cfg.Oracle.heap_size ~port:cfg.Oracle.port ()
            in
            (match Gen.assemble items2 with
            | exception _ -> ()
            | prog2 -> (
                match Oracle.chain_equiv cfg prog prog2 with
                | Oracle.Rejected _ -> ()
                | Oracle.Pass -> incr chained
                | Oracle.Fail f ->
                    incr chained;
                    incr failures;
                    log
                      (Printf.sprintf "case %d: FAIL [%s] %s" i f.Oracle.oracle
                         f.Oracle.detail);
                    let small2 = shrink_chain_partner cfg prog items2 in
                    let path =
                      Filename.concat out_dir
                        (Printf.sprintf "case_%d_chain.kfxr" i)
                    in
                    (match Gen.assemble small2 with
                    | small_prog2 ->
                        Corpus.write path ~oracle:"chain" ~prog2:small_prog2
                          cfg prog
                    | exception _ ->
                        Corpus.write path ~oracle:"chain" ~prog2 cfg prog);
                    repros := path :: !repros;
                    log
                      (Printf.sprintf
                         "case %d: chain partner shrunk %d -> %d items, wrote \
                          %s"
                         i (List.length items2) (List.length small2) path)));
            (match Gen.assemble items_s with
            | exception _ -> ()
            | sprog -> (
                match Oracle.shared_equiv cfg sprog with
                | Oracle.Rejected _ -> ()
                | Oracle.Pass ->
                    incr shared;
                    if threaded_shared then (
                      match Oracle.shared_safety cfg sprog with
                      | Oracle.Pass | Oracle.Rejected _ -> ()
                      | Oracle.Fail f ->
                          incr failures;
                          log
                            (Printf.sprintf "case %d: FAIL [%s] %s" i
                               f.Oracle.oracle f.Oracle.detail);
                          (* interleaving-dependent — keep the unshrunk
                             program, shrinking can't reproduce reliably *)
                          let path =
                            Filename.concat out_dir
                              (Printf.sprintf "case_%d_shared_threaded.kfxr" i)
                          in
                          Corpus.write path ~oracle:"shared" cfg sprog;
                          repros := path :: !repros)
                | Oracle.Fail f ->
                    incr shared;
                    incr failures;
                    log
                      (Printf.sprintf "case %d: FAIL [%s] %s" i f.Oracle.oracle
                         f.Oracle.detail);
                    let small = shrink_shared cfg items_s in
                    let path =
                      Filename.concat out_dir
                        (Printf.sprintf "case_%d_shared.kfxr" i)
                    in
                    (match Gen.assemble small with
                    | small_prog ->
                        Corpus.write path ~oracle:"shared" cfg small_prog
                    | exception _ ->
                        Corpus.write path ~oracle:"shared" cfg sprog);
                    repros := path :: !repros;
                    log
                      (Printf.sprintf
                         "case %d: shared program shrunk %d -> %d items, \
                          wrote %s"
                         i (List.length items_s) (List.length small) path)))
        | Oracle.Rejected _ -> incr rejected
        | Oracle.Fail f ->
            incr failures;
            log (Printf.sprintf "case %d: FAIL [%s] %s" i f.Oracle.oracle
                   f.Oracle.detail);
            let small = shrink_failure ?backend cfg f items in
            let path =
              Filename.concat out_dir
                (Printf.sprintf "case_%d_%s.kfxr" i f.Oracle.oracle)
            in
            (match Gen.assemble small with
            | small_prog ->
                Corpus.write path ~oracle:f.Oracle.oracle cfg small_prog
            | exception _ -> Corpus.write path ~oracle:f.Oracle.oracle cfg prog);
            repros := path :: !repros;
            log (Printf.sprintf "case %d: shrunk %d -> %d items, wrote %s" i
                   (List.length items) (List.length small) path))
  done;
  {
    cases = count;
    accepted = !accepted;
    rejected = !rejected;
    invalid = !invalid;
    chained = !chained;
    shared = !shared;
    flagged = !flagged;
    failures = !failures;
    reproducers = List.rev !repros;
  }
