(** The differential oracle engine.

    Every verifier-accepted program is executed concretely under several
    instrumentation regimes and checked against up to five invariants:

    - {b roundtrip}: [Encode.encode |> Encode.decode] reproduces the program
      instruction for instruction (and the disassembler prints it without
      raising);
    - {b containment}: running the {e uninstrumented} program (the kmod
      baseline, whose pcs coincide with the verifier's), every concrete
      register value lies inside the verifier's final interval for that
      register at that pc and is consistent with its tnum — a
      [reg_bounds_sync] analogue for whole programs;
    - {b elision}: execution with guards elided (the default) is
      observationally identical — outcome, heap pages, packet bytes — to
      execution with every guard forced ({!Kflex_kie.Instrument.forced_guards}),
      and no elided access ever faults outside the heap;
    - {b cancellation}: injecting an asynchronous cancellation at each
      Checkpoint/heap-access site unwinds through the object tables with
      zero leaked resources (ledger and socket refcounts) and the hook's
      default return code;
    - {b backend} (when [~backend:`Compiled] is requested): the
      closure-compiled engine ({!Kflex_runtime.Jit}) is observationally
      identical to the interpreter — outcome, stats counters, heap pages,
      packet bytes.

    All runs are deterministic: fresh heap/kernel state per run, the
    [bpf_get_prandom_u32] stream reseeded from the case's config. *)

type config = {
  heap_size : int64;  (** power of two ≥ 4096 *)
  kbase : int64;  (** randomized heap base, size-aligned *)
  pages : int list;  (** heap pages populated before the run (page 0 — the
      globals — is always populated) *)
  port : int;  (** UDP+TCP listening port for socket lookups *)
  prandom : int64;  (** seed for the in-VM PRNG *)
  payload : string;  (** packet payload *)
  src_port : int;
  dst_port : int;
  quantum : int;  (** watchdog budget (deliberately small, so infinite
      loops cancel quickly) *)
  insn_budget : int;  (** containment-trace instruction budget *)
  inject_cap : int;  (** max cancellation injections per case *)
}

val default_config : config
(** 64 KB heap at the default base, all pages populated, port 53, quantum
    300k, modest budgets — what the corpus replayer uses unless a
    reproducer file overrides it. *)

type failure = {
  oracle : string;  (** ["roundtrip" | "containment" | "elision" | "cancellation" | "backend" | "harness"] *)
  detail : string;
}

type verdict =
  | Pass
  | Rejected of string  (** the verifier refused the program (not a bug) *)
  | Fail of failure

val run_case :
  ?backend:Kflex_runtime.Vm.backend -> config -> Kflex_bpf.Prog.t -> verdict
(** Verify the program, then run the oracles. [backend] (default [`Interp])
    additionally enables the interpreter-vs-compiled equivalence oracle when
    [`Compiled]. Deterministic in [(config, prog, backend)]. *)

val run_case_stats :
  ?backend:Kflex_runtime.Vm.backend ->
  config ->
  Kflex_bpf.Prog.t ->
  verdict * int
(** {!run_case} plus the number of lifecycle findings the static pass
    reported on the program (0 for rejected programs) — the campaign's
    [flagged] counter. *)

val run_case_exn :
  ?backend:Kflex_runtime.Vm.backend -> config -> Kflex_bpf.Prog.t -> verdict
(** Like {!run_case}, but harness exceptions propagate — so a debugger (or a
    test) sees the backtrace instead of a [Fail] with oracle ["harness"]. *)

val chain_equiv : config -> Kflex_bpf.Prog.t -> Kflex_bpf.Prog.t -> verdict
(** The chain oracle: a 2-program chain executed by a one-shard
    {!Kflex_engine.Engine} must be observationally equivalent to running
    the programs sequentially through the facade with tail-call verdict
    composition — composed verdict, per-program outcomes, shared stats,
    heap snapshots, packet bytes — with zero leaked resources on either
    side. [Rejected] when the verifier refuses either program under this
    config. Deterministic in [(config, prog1, prog2)]. *)

val shared_equiv : config -> Kflex_bpf.Prog.t -> verdict
(** The shared-map linearizability oracle (the tenth): the program —
    generated in {!Gen.generate}[ ~shared:true]'s shard-independent dialect
    — is attached heap-less to a 4-shard and a 1-shard deterministic
    engine, both sharing a spin-locked map (fd 3) and an RCU-style map
    (fd 4) via {!Kflex_engine.Engine.share_map}. Both engines apply the
    same 16-event sequence (per-event reseeded PRNG, flow placement spread
    by src_port), and every observable must agree event for event:
    verdicts, outcomes, chain costs, packet bytes, final contents and RCU
    version of both shared maps, merged stats — with zero leaks and no
    lock left held on either side. [Rejected] when heap-less admission
    refuses the program. Deterministic in [(config, prog)]. *)

val shared_safety :
  ?shards:int -> ?events:int -> config -> Kflex_bpf.Prog.t -> verdict
(** The threaded half of the shared-map contract: run [events] (default 64)
    through a [`Threaded] engine with [shards] (default 4) domains and the
    same shared-map layout, then check the safety invariants the scheduler
    cannot excuse — every event executed, zero leaked ledger entries, zero
    socket refs, no spin lock left held (cancellation inside a critical
    section must unwind the lock). Interleaving-dependent observables are
    deliberately not compared. *)

(** Concrete status of one static lifecycle finding (the seventh oracle).

    A finding is [Refuted] — an oracle failure — only when the kmod-baseline
    run followed the finding's full pc witness and the concrete evidence
    contradicts the claim (the "leaked" block was freed, the "released"
    block is live, the lock is not held, ...). [Confirmed] means the run
    followed the witness and the claimed event concretely happened.
    [Unexercised] means the concrete path diverged from the witness before
    its end (the usual case: one run explores one path), so the static
    claim is neither provable nor disprovable by this execution. *)
type lifecycle_status = Confirmed | Unexercised | Refuted

val lifecycle_status_name : lifecycle_status -> string

val lifecycle_report :
  config ->
  Kflex_bpf.Prog.t ->
  ((Kflex_verifier.Lifecycle.finding * lifecycle_status) list, string) result
(** Run the static lifecycle pass, then classify every finding against two
    concrete kmod-baseline executions: the normal run, and — for
    [Null_deref] findings, which live on the allocator's null arm — a run
    with every allocator shadowed to report exhaustion. [Error] when the
    verifier rejects the program. The no-false-positive contract tested by
    the corpus gate and the fuzz property is: no finding is ever [Refuted]. *)

val backend_equiv : config -> Kflex_kie.Instrument.t -> failure option
(** The fifth oracle in isolation: run the instrumented program under both
    execution engines in fresh environments and compare outcome, stats,
    heap pages and packet payload. [None] means they agree. Exposed for the
    qcheck differential suite in the runtime tests. *)

val repr_equiv : config -> Kflex_kie.Instrument.t -> failure option
(** The eighth oracle in isolation: three-way representation differential —
    the kept-boxed reference interpreter ({!Kflex_runtime.Vm.Ref_interp})
    against the unboxed interpreter and the compiled backend, in fresh
    environments, comparing outcome, stats, heap pages and packet payload.
    [None] means all three agree bit-for-bit. Runs on every fuzz case and
    corpus replay via [run_case]; exposed for the qcheck representation
    suite in the runtime tests. *)

val pp_verdict : Format.formatter -> verdict -> unit
