(** Failure minimisation.

    Shrinking operates on assembler item lists — jumps are label-based, so
    deleting instructions never re-targets a branch — and alternates two
    strategies until a fixpoint or the check budget runs out:

    - {b deletion}: ddmin-style chunked removal with halving chunk sizes;
    - {b operand simplification}: immediates toward [0] (halving), memory
      displacements toward [0].

    A candidate is kept only when [check] confirms it still exhibits the
    original failure; [check] is expected to treat programs that no longer
    assemble (dangling labels after deletion) as non-failing. *)

val shrink :
  ?budget:int ->
  check:(Kflex_bpf.Asm.item list -> bool) ->
  Kflex_bpf.Asm.item list ->
  Kflex_bpf.Asm.item list
(** [shrink ~check items] minimises [items] under [check] (which must hold
    for [items] itself). [budget] caps the number of [check] invocations
    (default 300 — each one re-verifies and re-runs all oracles). *)
