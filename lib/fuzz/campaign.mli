(** The fuzzing campaign driver.

    Each case draws two independent streams from the master RNG
    ({!Kflex_workload.Rng.split}): one for program generation, one for
    environment-layout randomisation (heap size and base, populated pages,
    packet bytes, PRNG seed, socket-lookup hit/miss). Failures are shrunk
    and written as reproducer files. Everything is deterministic in
    [(seed, count)] — two runs produce identical summaries, logs and
    reproducers. *)

type summary = {
  cases : int;
  accepted : int;  (** verifier-accepted, all four oracles green *)
  rejected : int;  (** verifier refused (expected for random programs) *)
  invalid : int;  (** did not even assemble (generator bug, kept visible) *)
  chained : int;
      (** accepted cases additionally run as a 2-program chain through the
          engine-vs-facade chain oracle (the partner program comes from the
          continuation of the case's generation stream) *)
  shared : int;
      (** accepted cases additionally checked by the shared-map
          linearizability oracle ({!Oracle.shared_equiv}) on a fresh
          shard-independent program drawn from the same continuation *)
  flagged : int;
      (** total lifecycle findings the static pass reported across all
          verifier-accepted cases — each checked against the concrete
          no-false-positive oracle ({!Oracle.lifecycle_report}) *)
  failures : int;  (** oracle violations — each one is a soundness bug *)
  reproducers : string list;  (** shrunk reproducer files written *)
}

val pp_summary : Format.formatter -> summary -> unit

val run :
  ?out_dir:string ->
  ?log:(string -> unit) ->
  ?backend:Kflex_runtime.Vm.backend ->
  ?threaded_shared:bool ->
  seed:int64 ->
  count:int ->
  unit ->
  summary
(** [run ~seed ~count ()] fuzzes [count] cases. Reproducers go to [out_dir]
    (default ["."], created if missing); [log] receives one line per failure
    and occasional progress lines (default: silent). [backend] (default
    [`Interp]) additionally runs the interpreter-vs-compiled equivalence
    oracle on every accepted case when [`Compiled]. [threaded_shared]
    (default false) escalates every shared-oracle pass to a 4-shard
    [`Threaded] safety run ({!Oracle.shared_safety}) — real cross-domain
    contention; failures are recorded but not shrunk (interleavings are
    scheduler-chosen). *)
