open Kflex_bpf
module Verify = Kflex_verifier.Verify
module State = Kflex_verifier.State
module Value = Kflex_verifier.Value
module Range = Kflex_verifier.Range
module Tnum = Kflex_verifier.Tnum
module Contract = Kflex_verifier.Contract
module Instrument = Kflex_kie.Instrument
module Vm = Kflex_runtime.Vm
module Heap = Kflex_runtime.Heap
module Alloc = Kflex_runtime.Alloc
module Helpers = Kflex_kernel.Helpers
module Hook = Kflex_kernel.Hook
module Packet = Kflex_kernel.Packet
module Socket = Kflex_kernel.Socket
module Map_ = Kflex_kernel.Map

type config = {
  heap_size : int64;
  kbase : int64;
  pages : int list;
  port : int;
  prandom : int64;
  payload : string;
  src_port : int;
  dst_port : int;
  quantum : int;
  insn_budget : int;
  inject_cap : int;
}

let default_config =
  {
    heap_size = 65536L;
    kbase = 0x4000_0000_0000L;
    pages = List.init 16 Fun.id;
    port = 53;
    prandom = 0x1234_5678L;
    payload = String.init 64 (fun i -> Char.chr (i * 7 land 0xff));
    src_port = 40000;
    dst_port = 53;
    quantum = 300_000;
    insn_budget = 150_000;
    inject_cap = 24;
  }

type failure = { oracle : string; detail : string }
type verdict = Pass | Rejected of string | Fail of failure

let pp_verdict ppf = function
  | Pass -> Format.fprintf ppf "pass"
  | Rejected m -> Format.fprintf ppf "rejected (%s)" m
  | Fail f -> Format.fprintf ppf "FAIL [%s] %s" f.oracle f.detail

let fail oracle fmt = Format.kasprintf (fun detail -> { oracle; detail }) fmt

let contracts = Contract.registry Contract.kflex_base

let verify cfg prog =
  Verify.run ~mode:Verify.Kflex ~contracts ~ctx_size:Hook.ctx_size
    ~heap_size:cfg.heap_size ~sleepable:false prog

(* --- oracle 4: encode/decode/disasm round-trip ------------------------- *)

let roundtrip prog =
  let enc = Encode.encode prog in
  match Encode.decode enc with
  | exception e ->
      Some (fail "roundtrip" "decode raised %s" (Printexc.to_string e))
  | dec -> (
      let a = Prog.insns prog and b = Prog.insns dec in
      if Array.length a <> Array.length b then
        Some
          (fail "roundtrip" "length %d re-decoded as %d" (Array.length a)
             (Array.length b))
      else begin
        let bad = ref None in
        Array.iteri
          (fun i ia ->
            if !bad = None && not (Insn.equal ia b.(i)) then bad := Some i)
          a;
        match !bad with
        | Some i ->
            Some
              (fail "roundtrip" "insn %d: %a re-decoded as %a" i Insn.pp a.(i)
                 Insn.pp b.(i))
        | None -> (
            match Format.asprintf "%a" Prog.pp prog with
            | (_ : string) -> None
            | exception e ->
                Some
                  (fail "roundtrip" "disassembler raised %s"
                     (Printexc.to_string e)))
      end)

(* --- execution environments -------------------------------------------- *)

type env = {
  ext : Vm.ext;
  kernel : Helpers.t;
  heap : Heap.t;
  pkt : Packet.t;
  ctx : Bytes.t;
}

(* One map of every shared-capable kind, at deterministic fds the generator
   knows: 3 = hash (the seed corpus's map), 4 = spinlock, 5 = percpu,
   6 = rcu_shared. Every environment an oracle compares must register the
   same spread — a kind mismatch at an fd skews both behaviour and the
   per-kind helper charges. *)
let register_oracle_maps reg =
  ignore (Map_.register reg (Map_.create ~max_entries:64 ()) : int64);
  ignore
    (Map_.register reg (Map_.create ~kind:Map_.Spinlock ~max_entries:64 ())
      : int64);
  ignore
    (Map_.register reg
       (Map_.create ~kind:Map_.Percpu ~cpus:4 ~max_entries:64 ())
      : int64);
  ignore
    (Map_.register reg
       (Map_.create ~kind:Map_.Rcu_shared ~cpus:4 ~max_entries:64 ())
      : int64)

(* Fresh, fully deterministic world per run: zeroed heap with the config's
   base and page layout, fresh socket table / maps / allocator, fresh packet
   bytes (extensions mutate the payload in place). [helpers_shim] lets an
   oracle shadow individual helper implementations (the lifecycle oracle's
   allocation-failure run). *)
let build_env ?(helpers_shim = fun h -> h) cfg kie =
  let heap = Heap.create ~kbase:cfg.kbase ~size:cfg.heap_size () in
  let kernel = Helpers.create () in
  Socket.listen (Helpers.sockets kernel) ~proto:Packet.Udp ~port:cfg.port;
  Socket.listen (Helpers.sockets kernel) ~proto:Packet.Tcp ~port:cfg.port;
  register_oracle_maps (Helpers.maps kernel);
  (* the reserved words and globals (offsets < 64) are always backed *)
  Heap.populate heap ~off:0L ~len:64L;
  let alloc = Alloc.create ~data_start:64L heap in
  List.iter
    (fun p ->
      let off = Int64.mul (Int64.of_int p) 4096L in
      if off >= 0L && off < cfg.heap_size then Heap.populate heap ~off ~len:4096L)
    cfg.pages;
  let pkt =
    Packet.make ~proto:Packet.Udp ~src_port:cfg.src_port ~dst_port:cfg.dst_port
      (Bytes.of_string cfg.payload)
  in
  Helpers.set_packet kernel (Some pkt);
  let ext =
    Vm.create ~heap ~alloc ~quantum:cfg.quantum
      ~default_ret:(Hook.default_ret Hook.Xdp)
      ~helpers:(helpers_shim (Helpers.implementations kernel))
      kie
  in
  { ext; kernel; heap; pkt; ctx = Hook.build_ctx pkt }

exception Trace_stop

let reason_str = function
  | Vm.Page_fault -> "page_fault"
  | Vm.Guard_zone -> "guard_zone"
  | Vm.Wild_access -> "wild_access"
  | Vm.Quantum_expired -> "quantum_expired"
  | Vm.Lock_stall -> "lock_stall"
  | Vm.Ext_cancelled -> "ext_cancelled"

let pp_outcome ppf = function
  | Vm.Finished v -> Format.fprintf ppf "finished(0x%Lx)" v
  | Vm.Cancelled c ->
      Format.fprintf ppf "cancelled(pc=%d,%s,ret=%Ld,released=%d,leaked=%d)"
        c.orig_pc (reason_str c.reason) c.ret (List.length c.released)
        c.ledger_leaked

(* --- oracle 1: abstract containment ------------------------------------ *)

let contained (r : Range.t) v =
  Int64.unsigned_compare r.Range.umin v <= 0
  && Int64.unsigned_compare v r.Range.umax <= 0
  && Int64.compare r.Range.smin v <= 0
  && Int64.compare v r.Range.smax <= 0
  && Tnum.contains r.Range.bits v

let check_regs cfg st regs pc =
  let bad = ref None in
  for i = 0 to 10 do
    if !bad = None then begin
      let v = regs.(i) in
      let mismatch what =
        bad :=
          Some
            (Format.asprintf "pc %d: r%d = 0x%Lx outside abstract %s" pc i v
               what)
      in
      match State.get st (Reg.of_int i) with
      | Value.Uninit | Value.Unknown -> ()
      | Value.Scalar r ->
          if not (contained r v) then
            mismatch (Format.asprintf "scalar %a" Value.pp (Value.Scalar r))
      | Value.Ptr { kind; off; nullable } ->
          if v = 0L then begin
            if not nullable then
              mismatch
                (Format.asprintf "%a (non-nullable, concrete null)"
                   Value.pp_ptr_kind kind)
          end
          else begin
            let base =
              match kind with
              | Value.Ctx -> Vm.ctx_base
              | Value.Stack ->
                  Int64.add Vm.stack_base (Int64.of_int Prog.stack_size)
              | Value.Heap -> cfg.kbase
            in
            if not (contained off (Int64.sub v base)) then
              mismatch
                (Format.asprintf "%a ptr (concrete offset 0x%Lx)"
                   Value.pp_ptr_kind kind (Int64.sub v base))
          end
      | Value.Obj { nullable; klass; _ } ->
          if (not nullable) && v = 0L then
            mismatch (Printf.sprintf "non-null obj %s (concrete null)" klass)
    end
  done;
  !bad

(* Run the kmod baseline — no instrumentation, so instrumented pcs coincide
   with the verifier's — checking every live register against the fixpoint
   pre-state before each instruction. Wild faults end the run safely through
   the normal cancellation machinery; the trace prefix still counts. *)
let containment cfg analysis kie_k =
  let env = build_env cfg kie_k in
  let states = analysis.Verify.states_at in
  let budget = ref cfg.insn_budget in
  let viol = ref None in
  let on_insn pc regs =
    decr budget;
    if !budget <= 0 then raise Trace_stop;
    (match if pc < Array.length states then states.(pc) else None with
    | None ->
        viol :=
          Some
            (Printf.sprintf "pc %d executed but abstractly unreachable" pc)
    | Some st -> viol := check_regs cfg st regs pc);
    if !viol <> None then raise Trace_stop
  in
  Vm.seed_prandom cfg.prandom;
  (try ignore (Vm.exec env.ext ~ctx:env.ctx ~on_insn () : Vm.outcome)
   with Trace_stop -> ());
  Option.map (fun d -> { oracle = "containment"; detail = d }) !viol

(* --- oracle 2: guard-elision equivalence ------------------------------- *)

type obs = {
  outcome : Vm.outcome;
  heap_pages : (int64 * string) list;
  payload_after : string;
  sites : int;
  sock_refs : int;
}

let observe cfg kie =
  let env = build_env cfg kie in
  let sites = ref 0 in
  let budget = ref ((4 * cfg.quantum) + 1_000_000) in
  let on_insn _ _ =
    decr budget;
    if !budget <= 0 then raise Trace_stop
  in
  Vm.seed_prandom cfg.prandom;
  match
    Vm.exec env.ext ~ctx:env.ctx ~on_insn
      ~on_site:(fun () ->
        incr sites;
        false)
      ()
  with
  | exception Trace_stop ->
      Error
        (fail "harness" "execution exceeded the %d-insn safety budget"
           ((4 * cfg.quantum) + 1_000_000))
  | outcome ->
      Ok
        {
          outcome;
          heap_pages = Heap.snapshot env.heap;
          payload_after = Bytes.to_string env.pkt.Packet.payload;
          sites = !sites;
          sock_refs = Socket.total_refs (Helpers.sockets env.kernel);
        }

let default_ret = Hook.default_ret Hook.Xdp

(* Invariants every single run must satisfy, elided or not. *)
let run_invariants mode o =
  match o.outcome with
  | Vm.Finished _ ->
      if o.sock_refs <> 0 then
        Some
          (fail "cancellation" "%s: finished with %d socket refs outstanding"
             mode o.sock_refs)
      else None
  | Vm.Cancelled c ->
      if c.ledger_leaked <> 0 then
        Some
          (fail "cancellation" "%s: %a leaked %d ledger entries" mode
             pp_outcome o.outcome c.ledger_leaked)
      else if c.ret <> default_ret then
        Some
          (fail "cancellation" "%s: cancelled with ret %Ld (default %Ld)" mode
             c.ret default_ret)
      else if o.sock_refs <> 0 then
        Some
          (fail "cancellation" "%s: cancelled with %d socket refs outstanding"
             mode o.sock_refs)
      else None

let first_diff_page a b =
  let rec go = function
    | (ia, pa) :: ra, (ib, pb) :: rb ->
        if ia <> ib then Some (min ia ib)
        else if pa <> pb then Some ia
        else go (ra, rb)
    | (ia, _) :: _, [] | [], (ia, _) :: _ -> Some ia
    | [], [] -> None
  in
  go (a, b)

let elision cfg analysis kie_a kie_b =
  match observe cfg kie_a with
  | Error f -> Error f
  | Ok a -> (
      (* an access the verifier marked elidable must never fault outside
         the heap proper *)
      let elided_fault =
        match a.outcome with
        | Vm.Cancelled { orig_pc; reason = Vm.Guard_zone | Vm.Wild_access; _ }
          ->
            List.exists
              (fun (acc : Verify.heap_access) ->
                acc.Verify.pc = orig_pc && acc.Verify.elidable)
              analysis.Verify.heap_accesses
        | _ -> false
      in
      if elided_fault then
        Error
          (fail "elision" "elidable access faulted outside the heap: %a"
             pp_outcome a.outcome)
      else
        match run_invariants "elided" a with
        | Some f -> Error f
        | None -> (
            match observe cfg kie_b with
            | Error f -> Error f
            | Ok b -> (
                match run_invariants "forced" b with
                | Some f -> Error f
                | None ->
                    let both_quantum =
                      match (a.outcome, b.outcome) with
                      | ( Vm.Cancelled { reason = Vm.Quantum_expired; _ },
                          Vm.Cancelled { reason = Vm.Quantum_expired; _ } ) ->
                          true
                      | _ -> false
                    in
                    if a.sites <> b.sites && not both_quantum then
                      Error
                        (fail "elision"
                           "cancellation sites diverge: %d elided vs %d forced"
                           a.sites b.sites)
                    else if both_quantum then
                      (* guards cost a unit each, so the watchdog fires after
                         different amounts of loop progress; only the
                         unwinding invariants are comparable *)
                      Ok a.sites
                    else if a.outcome <> b.outcome then
                      Error
                        (fail "elision" "outcomes diverge: %a elided vs %a forced"
                           pp_outcome a.outcome pp_outcome b.outcome)
                    else if a.payload_after <> b.payload_after then
                      Error (fail "elision" "packet payloads diverge")
                    else
                      match first_diff_page a.heap_pages b.heap_pages with
                      | Some p ->
                          Error
                            (fail "elision"
                               "heap contents diverge at page %Ld" p)
                      | None -> Ok a.sites)))

(* --- oracle 3: cancellation soundness ---------------------------------- *)

let cancellation cfg kie_a sites =
  if sites = 0 then None
  else begin
    let ks =
      if sites <= cfg.inject_cap then List.init sites Fun.id
      else List.init cfg.inject_cap (fun i -> i * sites / cfg.inject_cap)
    in
    let rec go = function
      | [] -> None
      | k :: rest -> (
          let env = build_env cfg kie_a in
          let n = ref (-1) in
          Vm.seed_prandom cfg.prandom;
          match
            Vm.exec env.ext ~ctx:env.ctx
              ~on_site:(fun () ->
                incr n;
                !n = k)
              ()
          with
          | Vm.Finished v ->
              Some
                (fail "cancellation"
                   "injection at site %d/%d did not cancel (finished 0x%Lx)" k
                   sites v)
          | Vm.Cancelled c ->
              let refs = Socket.total_refs (Helpers.sockets env.kernel) in
              if c.reason <> Vm.Ext_cancelled then
                Some
                  (fail "cancellation"
                   "injection at site %d/%d preempted: %a" k sites pp_outcome
                   (Vm.Cancelled c))
              else if c.ledger_leaked <> 0 then
                Some
                  (fail "cancellation"
                     "injection at site %d/%d leaked %d objects (%a)" k sites
                     c.ledger_leaked pp_outcome (Vm.Cancelled c))
              else if c.ret <> default_ret then
                Some
                  (fail "cancellation"
                     "injection at site %d/%d returned %Ld (default %Ld)" k
                     sites c.ret default_ret)
              else if refs <> 0 then
                Some
                  (fail "cancellation"
                     "injection at site %d/%d left %d socket refs" k sites refs)
              else go rest)
    in
    go ks
  end

(* --- oracle 5: interpreter vs compiled backend -------------------------- *)

(* Observational equivalence of the two execution engines on the
   default-instrumented program: outcome, stats counters, heap pages and
   packet bytes must be bit-identical. The reference interpreter run is
   budget-bounded through [on_insn] (hooks force the interpreter anyway);
   the compiled run relies on the watchdog — instrumented programs carry a
   Checkpoint on every loop back-edge, so the quantum bounds it. *)
let backend_equiv cfg kie =
  let env_i = build_env cfg kie in
  let stats_i = Vm.fresh_stats () in
  let budget = ref ((4 * cfg.quantum) + 1_000_000) in
  let on_insn _ _ =
    decr budget;
    if !budget <= 0 then raise Trace_stop
  in
  Vm.seed_prandom cfg.prandom;
  match Vm.exec env_i.ext ~ctx:env_i.ctx ~stats:stats_i ~on_insn () with
  | exception Trace_stop ->
      Some
        (fail "harness" "execution exceeded the %d-insn safety budget"
           ((4 * cfg.quantum) + 1_000_000))
  | out_i -> (
      let env_c = build_env cfg kie in
      let stats_c = Vm.fresh_stats () in
      Vm.seed_prandom cfg.prandom;
      let out_c =
        Vm.exec env_c.ext ~ctx:env_c.ctx ~stats:stats_c ~backend:`Compiled ()
      in
      if out_i <> out_c then
        Some
          (fail "backend" "outcomes diverge: %a interpreted vs %a compiled"
             pp_outcome out_i pp_outcome out_c)
      else if stats_i <> stats_c then
        Some
          (fail "backend"
             "stats diverge: interpreted (i=%d g=%d c=%d hc=%d cost=%d) vs \
              compiled (i=%d g=%d c=%d hc=%d cost=%d)"
             stats_i.Vm.insns stats_i.Vm.guards stats_i.Vm.checkpoints
             stats_i.Vm.helper_calls stats_i.Vm.helper_cost stats_c.Vm.insns
             stats_c.Vm.guards stats_c.Vm.checkpoints stats_c.Vm.helper_calls
             stats_c.Vm.helper_cost)
      else if
        Bytes.to_string env_i.pkt.Packet.payload
        <> Bytes.to_string env_c.pkt.Packet.payload
      then Some (fail "backend" "packet payloads diverge")
      else
        match first_diff_page (Heap.snapshot env_i.heap) (Heap.snapshot env_c.heap) with
        | Some p -> Some (fail "backend" "heap contents diverge at page %Ld" p)
        | None -> None)

(* --- oracle 8: representation equivalence ------------------------------- *)

(* Three-way differential over the unboxed-representation refactor: the
   kept-boxed reference interpreter ({!Vm.Ref_interp} — [Stdlib.Int64]
   arithmetic over a boxed [int64 array] register file and the generic
   width-dispatched memory path, sharing no ALU/comparison/accessor code
   with the production engines) against the unboxed interpreter and the
   closure-compiled backend. Outcome, stats counters, packet payload and
   heap pages must be bit-identical across all three. The reference and
   interpreter runs are budget-bounded through [on_insn]; the compiled run
   is bounded by the quantum (instrumentation puts a Checkpoint on every
   loop back edge). *)
let repr_equiv cfg kie =
  let budget0 = (4 * cfg.quantum) + 1_000_000 in
  let bounded () =
    let budget = ref budget0 in
    fun _ _ ->
      decr budget;
      if !budget <= 0 then raise Trace_stop
  in
  let env_r = build_env cfg kie in
  let stats_r = Vm.fresh_stats () in
  Vm.seed_prandom cfg.prandom;
  match
    Vm.Ref_interp.exec env_r.ext ~ctx:env_r.ctx ~stats:stats_r
      ~on_insn:(bounded ()) ()
  with
  | exception Trace_stop ->
      Some
        (fail "harness" "execution exceeded the %d-insn safety budget" budget0)
  | out_r -> (
      let check tag (env : env) (stats : Vm.stats) out =
        if out <> out_r then
          Some
            (fail "repr" "%s diverges from boxed reference: %a vs %a" tag
               pp_outcome out pp_outcome out_r)
        else if stats <> stats_r then
          Some
            (fail "repr"
               "%s stats diverge from boxed reference: (i=%d g=%d c=%d hc=%d \
                cost=%d) vs (i=%d g=%d c=%d hc=%d cost=%d)"
               tag stats.Vm.insns stats.Vm.guards stats.Vm.checkpoints
               stats.Vm.helper_calls stats.Vm.helper_cost stats_r.Vm.insns
               stats_r.Vm.guards stats_r.Vm.checkpoints
               stats_r.Vm.helper_calls stats_r.Vm.helper_cost)
        else if
          Bytes.to_string env.pkt.Packet.payload
          <> Bytes.to_string env_r.pkt.Packet.payload
        then Some (fail "repr" "%s packet payload diverges from boxed reference" tag)
        else
          match
            first_diff_page (Heap.snapshot env_r.heap) (Heap.snapshot env.heap)
          with
          | Some p ->
              Some
                (fail "repr"
                   "%s heap diverges from boxed reference at page %Ld" tag p)
          | None -> None
      in
      let env_i = build_env cfg kie in
      let stats_i = Vm.fresh_stats () in
      Vm.seed_prandom cfg.prandom;
      match
        Vm.exec env_i.ext ~ctx:env_i.ctx ~stats:stats_i ~on_insn:(bounded ())
          ()
      with
      | exception Trace_stop ->
          Some
            (fail "harness" "execution exceeded the %d-insn safety budget"
               budget0)
      | out_i -> (
          match check "interpreter" env_i stats_i out_i with
          | Some f -> Some f
          | None ->
              let env_c = build_env cfg kie in
              let stats_c = Vm.fresh_stats () in
              Vm.seed_prandom cfg.prandom;
              let out_c =
                Vm.exec env_c.ext ~ctx:env_c.ctx ~stats:stats_c
                  ~backend:`Compiled ()
              in
              check "compiled" env_c stats_c out_c))

(* --- oracle 7: lifecycle no-false-positive ------------------------------ *)

module Lifecycle = Kflex_verifier.Lifecycle

type lifecycle_status = Confirmed | Unexercised | Refuted

let lifecycle_status_name = function
  | Confirmed -> "confirmed"
  | Unexercised -> "unexercised"
  | Refuted -> "REFUTED"

(* The lifecycle pass claims a finding holds along a specific path — the pc
   witness. Concrete execution follows exactly one path, so whenever the
   kmod-baseline run (pcs coincide with the verifier's) happens to take the
   witnessed path, the claimed event is checkable against ground truth: the
   allocator's live set, the lock depth, the register file at the deref. A
   finding is [Refuted] — an oracle failure — only under a full witness
   prefix match whose concrete evidence contradicts the claim; anything the
   run does not exercise stays [Unexercised]. *)

module Iset = Set.Make (Int)

type lc_obs = {
  trace : int array;  (* first [cap] executed pcs *)
  tlen : int;  (* number of pcs recorded (min of steps and cap) *)
  finished : bool;
  allocs : (int, int64 list) Hashtbl.t;  (* site pc -> non-null results *)
  frees : (int * int, int64 * bool) Hashtbl.t;
      (* (release pc, step) -> (argument address, was a live block) *)
  derefs : (int * int, int64 * bool) Hashtbl.t;
      (* (deref pc, step) -> (base register value, inside a live block) *)
  locks : (int * int, bool) Hashtbl.t;  (* (pc, step) -> depth > 0 *)
  live_at_end : (int64, int) Hashtbl.t;  (* address -> alloc-site pc *)
}

let base_reg_of = function
  | Insn.Ldx (_, _, src, _) -> Some src
  | Insn.Stx (_, dst, _, _) | Insn.St (_, dst, _, _)
  | Insn.Atomic (_, _, dst, _, _) ->
      Some dst
  | _ -> None

let is_allocator name =
  match Contract.find contracts name with
  | Some c -> c.Contract.ret = Contract.R_heap_ptr_or_null && c.Contract.destructor <> None
  | None -> false

let destructor_of name =
  match Contract.find contracts name with
  | Some { Contract.destructor = Some d; _ } -> d
  | _ -> ""

let release_index name =
  match Contract.find contracts name with
  | Some { Contract.eff = Contract.E_release i; _ } -> Some i
  | _ -> None

let is_lock_edge name =
  match Contract.find contracts name with
  | Some c when c.Contract.lock_ordinal <> None -> (
      match c.Contract.eff with
      | Contract.E_acquire -> Some `Acquire
      | Contract.E_release _ -> Some `Release
      | Contract.E_pure -> None)
  | _ -> None

(* Shadow every allocator so it reports exhaustion: the run that exercises
   the paths the verifier only reaches through [R_heap_ptr_or_null]'s null
   arm. Overrides are appended (not mapped) because the allocators are Vm
   builtins, absent from the kernel-helper list. *)
let alloc_fail_shim impls =
  let allocators =
    List.filter_map
      (fun (c : Contract.t) ->
        if is_allocator c.Contract.name then Some c.Contract.name else None)
      Contract.kflex_base
  in
  List.filter (fun (n, _) -> not (List.mem n allocators)) impls
  @ List.map
      (fun n -> (n, fun (_ : Vm.call_ctx) -> ()))
      allocators

let lc_run ?helpers_shim cfg prog (findings : Lifecycle.finding list) kie_k =
  let cap =
    List.fold_left
      (fun m (f : Lifecycle.finding) -> max m (List.length f.Lifecycle.witness))
      1 findings
  in
  let pcs_of k =
    List.fold_left
      (fun s (f : Lifecycle.finding) ->
        if List.mem f.Lifecycle.kind k then Iset.add f.Lifecycle.pc s else s)
      Iset.empty findings
  in
  let deref_pcs = pcs_of [ Lifecycle.Use_after_release; Lifecycle.Null_deref ] in
  let free_pcs = pcs_of [ Lifecycle.Double_release ] in
  let lock_pcs = pcs_of [ Lifecycle.Lock_hazard; Lifecycle.Lock_order ] in
  let trace = Array.make cap (-1) in
  let allocs = Hashtbl.create 8 in
  let frees = Hashtbl.create 8 in
  let derefs = Hashtbl.create 8 in
  let locks = Hashtbl.create 8 in
  (* our own mirror of the allocator's live set: address -> (site, size,
     declared destructor). A release call only evicts blocks whose declared
     destructor is the helper being called — the generator can place a spin
     lock word at an address the allocator also hands out, and unlocking it
     must not count as freeing the colliding heap block. *)
  let live = Hashtbl.create 8 in
  let in_live b =
    Hashtbl.fold
      (fun a (_, sz, _) acc ->
        acc
        || Int64.unsigned_compare a b <= 0
           && Int64.unsigned_compare b (Int64.add a (max 1L sz)) < 0)
      live false
  in
  let step = ref 0 in
  let budget = ref cfg.insn_budget in
  let pending = ref None in
  let depth = ref 0 in
  let on_insn pc regs =
    decr budget;
    if !budget <= 0 then raise Trace_stop;
    (match !pending with
    | Some (site, size, dtor) ->
        pending := None;
        let r0 = regs.(0) in
        if r0 <> 0L then begin
          Hashtbl.replace live r0 (site, size, dtor);
          Hashtbl.replace allocs site
            (r0 :: Option.value ~default:[] (Hashtbl.find_opt allocs site))
        end
    | None -> ());
    let s = !step in
    incr step;
    if s < cap then begin
      trace.(s) <- pc;
      if Iset.mem pc lock_pcs then Hashtbl.replace locks (pc, s) (!depth > 0);
      if Iset.mem pc deref_pcs then begin
        match
          if pc < Prog.length prog then base_reg_of (Prog.get prog pc)
          else None
        with
        | Some r ->
            let b = regs.(Reg.to_int r) in
            Hashtbl.replace derefs (pc, s) (b, in_live b)
        | None -> ()
      end
    end;
    (* the insn's own effect on the tracker (helper calls) *)
    match if pc < Prog.length prog then Prog.get prog pc else Insn.Exit with
    | Insn.Call name -> (
        if is_allocator name then
          pending := Some (pc, regs.(1), destructor_of name);
        (match release_index name with
        | Some i ->
            let addr = regs.(i + 1) in
            let releases =
              match Hashtbl.find_opt live addr with
              | Some (_, _, dtor) -> dtor = name
              | None -> false
            in
            if s < cap && Iset.mem pc free_pcs then
              Hashtbl.replace frees (pc, s) (addr, releases);
            if releases then Hashtbl.remove live addr
        | None -> ());
        match is_lock_edge name with
        | Some `Acquire -> incr depth
        | Some `Release -> decr depth
        | None -> ())
    | _ -> ()
  in
  let env = build_env ?helpers_shim cfg kie_k in
  Vm.seed_prandom cfg.prandom;
  let finished =
    match Vm.exec env.ext ~ctx:env.ctx ~on_insn () with
    | Vm.Finished _ -> true
    | Vm.Cancelled _ -> false
    | exception Trace_stop -> false
  in
  {
    trace;
    tlen = min !step cap;
    finished;
    allocs;
    frees;
    derefs;
    locks;
    live_at_end =
      (let t = Hashtbl.create 8 in
       Hashtbl.iter (fun a (site, _, _) -> Hashtbl.replace t a site) live;
       t);
  }

let lc_prefix_matches o witness =
  let n = List.length witness in
  n > 0 && n <= o.tlen
  && List.for_all2 Int.equal witness
       (Array.to_list (Array.sub o.trace 0 n))

let lc_classify run1 run2 (f : Lifecycle.finding) =
  let w = f.Lifecycle.witness in
  let last = List.length w - 1 in
  match f.Lifecycle.kind with
  | Lifecycle.Leak ->
      if lc_prefix_matches run1 w && run1.finished then
        match Hashtbl.find_opt run1.allocs f.Lifecycle.site with
        | None | Some [] -> Unexercised  (* the acquisition concretely failed *)
        | Some addrs ->
            if List.exists (Hashtbl.mem run1.live_at_end) addrs then Confirmed
            else Refuted
      else Unexercised
  | Lifecycle.Double_release -> (
      match
        (lc_prefix_matches run1 w,
         Hashtbl.find_opt run1.frees (f.Lifecycle.pc, last))
      with
      | true, Some (addr, was_live) ->
          if addr = 0L then Unexercised
          else if was_live then Refuted
          else Confirmed
      | _ -> Unexercised)
  | Lifecycle.Use_after_release -> (
      match
        (lc_prefix_matches run1 w,
         Hashtbl.find_opt run1.derefs (f.Lifecycle.pc, last))
      with
      | true, Some (base, in_live) ->
          if in_live then Refuted
          else if base <> 0L then Confirmed
          else Unexercised
      | _ -> Unexercised)
  | Lifecycle.Null_deref -> (
      (* only the allocation-failure run can take the null arm *)
      match run2 with
      | None -> Unexercised
      | Some r2 -> (
          match
            (lc_prefix_matches r2 w,
             Hashtbl.find_opt r2.derefs (f.Lifecycle.pc, last))
          with
          | true, Some (base, _) -> if base = 0L then Confirmed else Refuted
          | _ -> Unexercised))
  | Lifecycle.Lock_hazard | Lifecycle.Lock_order -> (
      match
        (lc_prefix_matches run1 w,
         Hashtbl.find_opt run1.locks (f.Lifecycle.pc, last))
      with
      | true, Some held -> if held then Confirmed else Refuted
      | _ -> Unexercised)
  | Lifecycle.Chain_unreachable -> Unexercised  (* checked in chain_equiv *)

let lc_statuses cfg prog (findings : Lifecycle.finding list) kie_k =
  let run1 = lc_run cfg prog findings kie_k in
  let run2 =
    if
      List.exists
        (fun (f : Lifecycle.finding) -> f.Lifecycle.kind = Lifecycle.Null_deref)
        findings
    then Some (lc_run ~helpers_shim:alloc_fail_shim cfg prog findings kie_k)
    else None
  in
  List.map (fun f -> (f, lc_classify run1 run2 f)) findings

let lifecycle_report cfg prog =
  match verify cfg prog with
  | Error e -> Error (Format.asprintf "%a" Verify.pp_error e)
  | Ok analysis ->
      let findings = Lifecycle.run ~contracts analysis in
      if findings = [] then Ok []
      else
        let kie_k =
          Instrument.run
            ~options:{ Instrument.default_options with kmod_baseline = true }
            analysis
        in
        Ok (lc_statuses cfg prog findings kie_k)

let lifecycle_failure cfg prog findings kie_k =
  if findings = [] then None
  else
    List.find_map
      (fun ((f : Lifecycle.finding), st) ->
        if st = Refuted then
          Some
            (fail "lifecycle"
               "refuted %s at pc %d (site %d): concrete execution followed \
                the witness path but contradicts the claim: %s"
               (Lifecycle.kind_name f.Lifecycle.kind)
               f.Lifecycle.pc f.Lifecycle.site f.Lifecycle.msg)
        else None)
      (lc_statuses cfg prog findings kie_k)

(* --- oracle 6: chain equivalence ---------------------------------------- *)

module Engine = Kflex_engine.Engine

(* A 2-program chain under a one-shard engine must be observationally
   equivalent to running the programs sequentially through the facade with
   hand-rolled verdict composition: same composed verdict, same per-program
   outcomes and heap snapshots, same packet bytes, same (shared) stats —
   and zero leaked resources on both sides. The facade side uses the global
   PRNG/clock (reseeded), the engine side its shard-0 streams (reseeded
   identically); both consume one combined stream, the way two programs on
   one CPU would. *)
let chain_equiv cfg prog1 prog2 =
  match (verify cfg prog1, verify cfg prog2) with
  | Error e, _ -> Rejected (Format.asprintf "prog1: %a" Verify.pp_error e)
  | _, Error e -> Rejected (Format.asprintf "prog2: %a" Verify.pp_error e)
  | Ok an1, Ok an2 -> (
      let kie1 = Instrument.run ~options:Instrument.default_options an1 in
      let kie2 = Instrument.run ~options:Instrument.default_options an2 in
      (* facade reference: sequential runs, shared packet and stats *)
      let env1 = build_env cfg kie1 in
      let env2 = build_env cfg kie2 in
      let pkt_f =
        Packet.make ~proto:Packet.Udp ~src_port:cfg.src_port
          ~dst_port:cfg.dst_port
          (Bytes.of_string cfg.payload)
      in
      let stats_f = Vm.fresh_stats () in
      Vm.seed_prandom cfg.prandom;
      Vm.set_vtime 0L;
      let run_one env =
        Helpers.set_packet env.kernel (Some pkt_f);
        let o = Vm.exec env.ext ~ctx:(Hook.build_ctx pkt_f) ~stats:stats_f () in
        Helpers.set_packet env.kernel None;
        (* mirror the engine's per-invocation cancel re-arm *)
        if Vm.cancelled env.ext then Vm.reset_cancel env.ext;
        o
      in
      let o1 = run_one env1 in
      let v1 =
        match o1 with Vm.Finished v -> v | Vm.Cancelled { ret; _ } -> ret
      in
      let cont = v1 = Hook.pass_verdict Hook.Xdp in
      (* chain-level lifecycle claims are checkable right here: a
         [Chain_unreachable] for prog2 asserts prog1 can never return the
         pass verdict, so a concrete chain continuation refutes it *)
      let chain_claims_unreachable =
        List.exists
          (fun (cf : Lifecycle.chain_finding) ->
            cf.Lifecycle.index = 1
            && cf.Lifecycle.finding.Lifecycle.kind = Lifecycle.Chain_unreachable)
          (Lifecycle.run_chain ~contracts
             ~pass_verdict:(Hook.pass_verdict Hook.Xdp)
             ~default_ret:(Hook.default_ret Hook.Xdp)
             [ an1; an2 ])
      in
      if chain_claims_unreachable && cont then
        Fail
          (fail "lifecycle"
             "chain analysis claims prog2 is unreachable, but the concrete \
              chain continued past prog1 (verdict %Ld)" v1)
      else
      let o2 = if cont then Some (run_one env2) else None in
      let verdict_f =
        match o2 with
        | None -> v1
        | Some (Vm.Finished v) -> v
        | Some (Vm.Cancelled { ret; _ }) -> ret
      in
      let outcomes_f = o1 :: Option.to_list o2 in
      (* engine: same layout per shard instance, one shard, chained *)
      let eng = Engine.create ~shards:1 ~quantum:cfg.quantum () in
      let configure ~shard:_ kernel heap =
        Socket.listen (Helpers.sockets kernel) ~proto:Packet.Udp ~port:cfg.port;
        Socket.listen (Helpers.sockets kernel) ~proto:Packet.Tcp ~port:cfg.port;
        register_oracle_maps (Helpers.maps kernel);
        match heap with
        | None -> ()
        | Some h ->
            List.iter
              (fun p ->
                let off = Int64.mul (Int64.of_int p) 4096L in
                if off >= 0L && off < cfg.heap_size then
                  Heap.populate h ~off ~len:4096L)
              cfg.pages
      in
      let att prog =
        Engine.attach eng ~options:Instrument.default_options
          ~heap_size:cfg.heap_size ~kbase:cfg.kbase ~quantum:cfg.quantum
          ~configure ~hook:Hook.Xdp prog
      in
      match (att prog1, att prog2) with
      | Error e, _ | _, Error e ->
          Fail
            (fail "chain"
               "engine rejected a facade-accepted program: %a" Verify.pp_error
               e)
      | Ok h1, Ok h2 -> (
          Engine.seed_shard eng ~shard:0 ~vtime:0L cfg.prandom;
          let pkt_e =
            Packet.make ~proto:Packet.Udp ~src_port:cfg.src_port
              ~dst_port:cfg.dst_port
              (Bytes.of_string cfg.payload)
          in
          let r = Engine.run_packet eng pkt_e in
          let heap_of h =
            match (Engine.instance h ~shard:0).Kflex.heap with
            | Some hp -> Heap.snapshot hp
            | None -> []
          in
          let totals = Engine.totals eng in
          if r.Engine.verdict <> verdict_f then
            Fail
              (fail "chain" "verdicts diverge: %Ld facade vs %Ld engine"
                 verdict_f r.Engine.verdict)
          else if r.Engine.outcomes <> outcomes_f then
            Fail
              (fail "chain" "outcomes diverge (%d facade vs %d engine entries)"
                 (List.length outcomes_f)
                 (List.length r.Engine.outcomes))
          else if Engine.shard_stats eng 0 <> stats_f then
            Fail (fail "chain" "stats diverge")
          else if
            Bytes.to_string pkt_e.Packet.payload
            <> Bytes.to_string pkt_f.Packet.payload
          then Fail (fail "chain" "packet payloads diverge")
          else if totals.Engine.leaked <> 0 then
            Fail (fail "chain" "engine leaked %d ledger entries" totals.Engine.leaked)
          else if Engine.socket_refs eng <> 0 then
            Fail
              (fail "chain" "engine left %d socket refs" (Engine.socket_refs eng))
          else
            match
              ( first_diff_page (Heap.snapshot env1.heap) (heap_of h1),
                first_diff_page (Heap.snapshot env2.heap) (heap_of h2) )
            with
            | Some p, _ ->
                Fail (fail "chain" "prog1 heaps diverge at page %Ld" p)
            | _, Some p ->
                Fail (fail "chain" "prog2 heaps diverge at page %Ld" p)
            | None, None -> Pass))

(* --- oracle 10: shared-map linearizability ------------------------------ *)

(* Sharded execution of shared-map programs must {e linearize}: because the
   deterministic engine applies events synchronously in submission order, a
   4-shard engine and a 1-shard reference see the same global sequence of
   critical sections, so every observable — per-event verdicts, outcomes,
   costs, packet bytes, and the final contents of both shared maps — must
   agree event for event. The comparison is only sound for programs whose
   behaviour depends on nothing shard-local: no heap, no sockets, no
   processor id, no per-CPU maps ({!Gen.generate} [~shared:true] emits
   exactly this dialect). Each event reseeds the executing shard's PRNG
   from an event-indexed seed so both placements consume identical
   streams. *)

let shared_nevents = 16

let shared_event_seed cfg i =
  Int64.logxor cfg.prandom
    (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)

(* src_port varies per event so flow placement exercises every shard. *)
let shared_event_packet cfg i =
  Packet.make ~proto:Packet.Udp
    ~src_port:(1 + ((cfg.src_port + (257 * i)) land 0xFFFE))
    ~dst_port:cfg.dst_port
    (Bytes.of_string cfg.payload)

(* One engine with the oracle's two cross-shard maps — fd 3 = spinlock,
   fd 4 = rcu_shared, the layout [Gen] targets in shared mode — and the
   program attached heap-less (shared-mode programs never fetch the heap
   base, and a heap would be per-shard state anyway). *)
let shared_engine cfg ~shards ~mode prog =
  let eng = Engine.create ~shards ~mode ~quantum:cfg.quantum () in
  let spin = Map_.create ~kind:Map_.Spinlock ~max_entries:64 () in
  let rcu =
    Map_.create ~kind:Map_.Rcu_shared ~cpus:shards ~max_entries:64 ()
  in
  ignore (Engine.share_map eng spin : int64);
  ignore (Engine.share_map eng rcu : int64);
  match
    Engine.attach eng ~options:Instrument.default_options ~quantum:cfg.quantum
      ~hook:Hook.Xdp prog
  with
  | Error e ->
      Engine.shutdown eng;
      Error e
  | Ok _ -> Ok (eng, spin, rcu)

let shared_locks_held spin =
  List.filter
    (fun k -> Map_.lock_held spin (Int64.of_int k))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let shared_equiv cfg prog =
  match
    ( shared_engine cfg ~shards:4 ~mode:`Deterministic prog,
      shared_engine cfg ~shards:1 ~mode:`Deterministic prog )
  with
  | Error e, _ ->
      (* heap-less admission is stricter than the facade's (no heap base to
         verify against), so refusal here is policy, not a bug *)
      Rejected (Format.asprintf "%a" Verify.pp_error e)
  | Ok _, Error e ->
      Fail
        (fail "shared"
           "1-shard engine rejected a program the 4-shard engine admitted: %a"
           Verify.pp_error e)
  | Ok (a, spin_a, rcu_a), Ok (b, spin_b, rcu_b) -> (
      let failure = ref None in
      let evfail i fmt =
        Format.kasprintf
          (fun d ->
            if !failure = None then
              failure := Some (fail "shared" "event %d: %s" i d))
          fmt
      in
      for i = 0 to shared_nevents - 1 do
        if !failure = None then begin
          let pa = shared_event_packet cfg i in
          let pb = shared_event_packet cfg i in
          let seed = shared_event_seed cfg i in
          Engine.seed_shard a ~shard:(Engine.shard_of a pa) ~vtime:0L seed;
          Engine.seed_shard b ~shard:0 ~vtime:0L seed;
          let ra = Engine.run_packet a pa in
          let rb = Engine.run_packet b pb in
          if ra.Engine.verdict <> rb.Engine.verdict then
            evfail i "verdicts diverge: %Ld sharded vs %Ld reference"
              ra.Engine.verdict rb.Engine.verdict
          else if ra.Engine.outcomes <> rb.Engine.outcomes then
            evfail i "outcomes diverge"
          else if ra.Engine.cost <> rb.Engine.cost then
            evfail i "costs diverge: %d sharded vs %d reference" ra.Engine.cost
              rb.Engine.cost
          else if
            Bytes.to_string pa.Packet.payload
            <> Bytes.to_string pb.Packet.payload
          then evfail i "packet payloads diverge"
        end
      done;
      match !failure with
      | Some f -> Fail f
      | None -> (
          let ta = Engine.totals a and tb = Engine.totals b in
          let vstats a =
            match Map_.rcu_stats a with Some s -> s.Map_.version | None -> -1
          in
          if Map_.to_list spin_a <> Map_.to_list spin_b then
            Fail (fail "shared" "final spin-locked map contents diverge")
          else if Map_.to_list rcu_a <> Map_.to_list rcu_b then
            Fail (fail "shared" "final rcu map contents diverge")
          else if vstats rcu_a <> vstats rcu_b then
            Fail
              (fail "shared" "rcu versions diverge: %d sharded vs %d reference"
                 (vstats rcu_a) (vstats rcu_b))
          else if ta.Engine.leaked <> 0 || tb.Engine.leaked <> 0 then
            Fail
              (fail "shared" "leaked ledger entries: %d sharded, %d reference"
                 ta.Engine.leaked tb.Engine.leaked)
          else if ta.Engine.stats <> tb.Engine.stats then
            Fail (fail "shared" "merged stats diverge")
          else
            match (shared_locks_held spin_a, shared_locks_held spin_b) with
            | [], [] -> Pass
            | ka, kb ->
                Fail
                  (fail "shared"
                     "locks left held after the run (%d sharded, %d reference)"
                     (List.length ka) (List.length kb))))

(* The threaded variant can't compare against a reference (event
   interleaving is scheduler-chosen), so it checks the safety half of the
   contract: every event executes, nothing leaks, and no spin lock survives
   its critical section — under real cross-domain contention, including
   cancellations landing inside critical sections. *)
let shared_safety ?(shards = 4) ?(events = 64) cfg prog =
  match shared_engine cfg ~shards ~mode:`Threaded prog with
  | Error e -> Rejected (Format.asprintf "%a" Verify.pp_error e)
  | Ok (eng, spin, _rcu) ->
      for i = 0 to events - 1 do
        Engine.submit eng (shared_event_packet cfg i)
      done;
      Engine.drain eng;
      let totals = Engine.totals eng in
      let held = shared_locks_held spin in
      let socket_refs = Engine.socket_refs eng in
      Engine.shutdown eng;
      if totals.Engine.events <> events then
        Fail
          (fail "shared" "threaded: %d of %d events executed"
             totals.Engine.events events)
      else if totals.Engine.leaked <> 0 then
        Fail
          (fail "shared" "threaded: %d leaked ledger entries"
             totals.Engine.leaked)
      else if socket_refs <> 0 then
        Fail (fail "shared" "threaded: %d socket refs outstanding" socket_refs)
      else if held <> [] then
        Fail
          (fail "shared" "threaded: %d spin locks left held"
             (List.length held))
      else Pass

(* --- the full case ------------------------------------------------------ *)

let run_case_stats_exn ?(backend = `Interp) cfg prog =
  match roundtrip prog with
    | Some f -> (Fail f, 0)
    | None -> (
        match verify cfg prog with
        | Error e -> (Rejected (Format.asprintf "%a" Verify.pp_error e), 0)
        | Ok analysis -> (
            let kie_a =
              Instrument.run ~options:Instrument.default_options analysis
            in
            let kie_b =
              Instrument.run ~options:Instrument.forced_guards analysis
            in
            let kie_k =
              Instrument.run
                ~options:
                  { Instrument.default_options with kmod_baseline = true }
                analysis
            in
            let findings = Lifecycle.run ~contracts analysis in
            let flagged = List.length findings in
            match containment cfg analysis kie_k with
            | Some f -> (Fail f, flagged)
            | None -> (
                match elision cfg analysis kie_a kie_b with
                | Error f -> (Fail f, flagged)
                | Ok sites -> (
                    match cancellation cfg kie_a sites with
                    | Some f -> (Fail f, flagged)
                    | None -> (
                        match
                          if backend = `Compiled then backend_equiv cfg kie_a
                          else None
                        with
                        | Some f -> (Fail f, flagged)
                        | None -> (
                            match repr_equiv cfg kie_a with
                            | Some f -> (Fail f, flagged)
                            | None -> (
                                match
                                  lifecycle_failure cfg prog findings kie_k
                                with
                                | Some f -> (Fail f, flagged)
                                | None -> (Pass, flagged))))))))

let run_case_exn ?backend cfg prog = fst (run_case_stats_exn ?backend cfg prog)

let run_case_stats ?backend cfg prog =
  try run_case_stats_exn ?backend cfg prog
  with e ->
    ( Fail (fail "harness" "unexpected exception: %s" (Printexc.to_string e)),
      0 )

let run_case ?backend cfg prog = fst (run_case_stats ?backend cfg prog)
