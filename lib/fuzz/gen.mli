(** Random extension programs for the differential fuzzer.

    Programs are generated as assembler item lists (label-based jumps, so the
    shrinker can delete instructions without re-targeting) and are biased
    toward the constructs that stress the verifier's abstract domains and the
    instrumentation they feed:

    - masking/alignment arithmetic (the tnum half of the range domain);
    - heap loads/stores near the heap bounds (guard-elision verdicts);
    - formation accesses through raw scalars and untrusted heap words;
    - bounded and verifier-unbounded-but-concretely-terminating loops
      (widening, C1 checkpoints);
    - helper acquire/release pairs — sockets and spin locks, optionally
      spilled to the stack across their critical section (object tables).

    Register conventions: [r6] holds the context pointer, [r7] the heap base,
    [r8]/[r9] serve as loop counters, everything else is scratch. Generated
    programs always terminate concretely (loop counters are masked; the rare
    deliberately-infinite loop relies on the quantum watchdog), and they
    never call [bpf_ktime_get_ns], whose global virtual clock would break
    run-to-run determinism. *)

val generate :
  ?shared:bool ->
  rng:Kflex_workload.Rng.t ->
  heap_size:int64 ->
  port:int ->
  unit ->
  Kflex_bpf.Asm.item list
(** One random program. [port] is the UDP port the harness listens on, so
    socket lookups can hit as well as miss. Drawing from the same [rng]
    state yields the identical program.

    [shared] (default false) generates for the shared-map linearizability
    oracle: heap-less programs whose only persistent state is the two
    engine-shared maps (fd 3 = spinlock, fd 4 = rcu_shared) — no sockets,
    no processor id, no [kflex_*] helpers — so running the same event
    sequence on a 4-shard engine and on a 1-shard reference must agree
    event for event. *)

val assemble : Kflex_bpf.Asm.item list -> Kflex_bpf.Prog.t
(** [Asm.assemble] under the fuzzer's fixed program name.
    @raise Kflex_bpf.Asm.Error or [Prog.Malformed] like the assembler. *)
