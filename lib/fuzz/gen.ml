open Kflex_bpf
module Rng = Kflex_workload.Rng

(* Register conventions (see the mli): r6 = ctx, r7 = heap base, r8/r9 loop
   counters, r10 frame pointer. The rest is scratch. *)
let r_ctx = 6
let r_heap = 7

type t = {
  rng : Rng.t;
  heap_size : int64;
  port : int;
  shared : bool;
      (* shared-map mode: the program's only persistent state is the
         engine-shared maps (fd 3 = spinlock, fd 4 = rcu_shared) — no heap,
         no sockets, no processor id — so a sharded run is comparable
         event-by-event against a single-shard reference *)
  mutable rev : Asm.item list; (* program under construction, reversed *)
  mutable nlab : int;
  mutable scalars : int list; (* registers holding initialised scalars *)
  mutable unknowns : int list; (* registers holding untrusted heap words *)
  mutable slots : int list; (* written 8-byte stack slots, as r10-relative
                               byte offsets (negative, multiples of 8) *)
  mutable reserved : int list; (* registers a snippet must not clobber *)
  mutable depth : int; (* loop/branch nesting *)
}

let reg = Reg.of_int
let emit g it = g.rev <- it :: g.rev

let fresh_label g p =
  g.nlab <- g.nlab + 1;
  Printf.sprintf "%s_%d" p g.nlab

(* --- register bookkeeping --------------------------------------------- *)

let forget g r =
  g.scalars <- List.filter (( <> ) r) g.scalars;
  g.unknowns <- List.filter (( <> ) r) g.unknowns

let set_scalar g r =
  forget g r;
  g.scalars <- r :: g.scalars

let set_unknown g r =
  forget g r;
  g.unknowns <- r :: g.unknowns

(* Helper calls clobber r0-r5; the callee-saved half survives. *)
let clobber_caller_saved g =
  g.scalars <- List.filter (fun r -> r > 5) g.scalars;
  g.unknowns <- List.filter (fun r -> r > 5) g.unknowns

let scratch ?(avoid = []) g =
  let cand =
    List.filter
      (fun r -> not (List.mem r g.reserved || List.mem r avoid))
      [ 0; 1; 2; 3; 4; 5; 8; 9 ]
  in
  List.nth cand (Rng.int g.rng (List.length cand))

(* --- operand material -------------------------------------------------- *)

let boundary_consts =
  [|
    0L; 1L; -1L; 2L; 7L; 8L; 15L; 16L; 31L; 63L; 64L; 255L; 256L; 4095L;
    4096L; 0x7fff_ffffL; 0x8000_0000L; 0xffff_ffffL; 0x1_0000_0000L;
    Int64.min_int; Int64.max_int; 0x5555_5555_5555_5555L;
    -0x5555_5555_5555_5556L (* 0xaaaa... *);
  |]

let interesting g =
  match Rng.int g.rng 8 with
  | 0 -> Int64.of_int (Rng.int g.rng 16)
  | 1 -> Rng.int64 g.rng
  | 2 | 3 -> Rng.choose g.rng boundary_consts
  | 4 -> Int64.sub g.heap_size (Int64.of_int (Rng.int g.rng 32))
  | 5 -> Int64.shift_left 1L (Rng.int g.rng 64)
  | 6 -> Int64.sub (Int64.shift_left 1L (Rng.int g.rng 64)) 1L
  | _ -> Int64.neg (Int64.of_int (Rng.int g.rng 65536))

(* A register holding an initialised scalar; materialises a constant into a
   scratch register when none is live (or when asked for a fresh one, as
   inside loop bodies where pre-loop shapes are unreliable at the join). *)
let pick_scalar ?(fresh = false) ?(avoid = []) g =
  let live = List.filter (fun r -> not (List.mem r avoid)) g.scalars in
  if (not fresh) && live <> [] && Rng.int g.rng 4 > 0 then
    List.nth live (Rng.int g.rng (List.length live))
  else begin
    let r = scratch ~avoid g in
    emit g (Asm.movi (reg r) (interesting g));
    set_scalar g r;
    r
  end

let sizes = [| Insn.U8; Insn.U16; Insn.U32; Insn.U64 |]
let alu_ops =
  [|
    Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Mod; Insn.And; Insn.Or;
    Insn.Xor; Insn.Lsh; Insn.Rsh; Insn.Arsh;
  |]
let conds =
  [|
    Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge; Insn.Slt; Insn.Sle;
    Insn.Sgt; Insn.Sge; Insn.Set;
  |]

(* --- snippets ----------------------------------------------------------

   Each snippet emits a small, self-consistent instruction sequence and
   updates the register/slot tracking. Snippets used inside loop bodies must
   be self-contained (initialise what they consume), because shapes tracked
   before a loop may be poisoned at the header join. *)

let gen_const g =
  let d = scratch g in
  emit g (Asm.movi (reg d) (interesting g));
  set_scalar g d

let gen_ctx_load g =
  let sz = Rng.choose g.rng sizes in
  let w = Insn.size_bytes sz in
  let d = scratch g in
  emit g (Asm.ldx sz (reg d) (reg r_ctx) (Rng.int g.rng (64 - w + 1)));
  set_scalar g d

(* Masking/alignment arithmetic — the tnum stress. *)
let gen_mask g =
  let s = pick_scalar g in
  let d = if Rng.bool g.rng then s else scratch g in
  if d <> s then emit g (Asm.mov (reg d) (reg s));
  (match Rng.int g.rng 3 with
  | 0 ->
      (* align down: clear low bits *)
      let k = Rng.int g.rng 12 in
      emit g (Asm.alui Insn.And (reg d) (Int64.lognot (Int64.sub (Int64.shift_left 1L k) 1L)))
  | 1 ->
      (* bound: keep low bits *)
      let k = 1 + Rng.int g.rng 16 in
      emit g (Asm.alui Insn.And (reg d) (Int64.sub (Int64.shift_left 1L k) 1L))
  | _ ->
      (* shift-based alignment *)
      let k = Int64.of_int (1 + Rng.int g.rng 12) in
      emit g (Asm.alui Insn.Rsh (reg d) k);
      emit g (Asm.alui Insn.Lsh (reg d) k));
  set_scalar g d

let gen_alu g =
  let d = pick_scalar g in
  let d =
    (* never rewrite a reserved register in place *)
    if List.mem d g.reserved then begin
      let d' = scratch g in
      emit g (Asm.mov (reg d') (reg d));
      set_scalar g d';
      d'
    end
    else d
  in
  let op = Rng.choose g.rng alu_ops in
  if Rng.bool g.rng then begin
    let imm =
      match op with
      | Insn.Lsh | Insn.Rsh | Insn.Arsh ->
          (* mostly in-range shift amounts, occasionally wild *)
          if Rng.int g.rng 8 = 0 then interesting g
          else Int64.of_int (Rng.int g.rng 64)
      | _ -> interesting g
    in
    emit g (Asm.alui op (reg d) imm)
  end
  else begin
    let s = pick_scalar ~avoid:[ d ] g in
    emit g (Asm.alu op (reg d) (reg s))
  end;
  set_scalar g d

let gen_neg g =
  let s = pick_scalar g in
  let d = if List.mem s g.reserved then scratch g else s in
  if d <> s then emit g (Asm.mov (reg d) (reg s));
  emit g (Asm.I (Insn.Neg (reg d)));
  set_scalar g d

(* Spill a scalar to the stack and (usually) reload it. *)
let gen_stack g =
  let s = pick_scalar g in
  let off = -8 * (1 + Rng.int g.rng 63) in
  emit g (Asm.stx Insn.U64 Reg.fp off (reg s));
  if not (List.mem off g.slots) then g.slots <- off :: g.slots;
  if Rng.bool g.rng then begin
    let d = scratch g in
    emit g (Asm.ldx Insn.U64 (reg d) Reg.fp off);
    set_scalar g d
  end

let gen_stack_reload g =
  match g.slots with
  | [] -> gen_stack g
  | l ->
      let off = List.nth l (Rng.int g.rng (List.length l)) in
      let d = scratch g in
      emit g (Asm.ldx Insn.U64 (reg d) Reg.fp off);
      set_scalar g d

(* An in-bounds heap access through masked arithmetic: the elision oracle's
   bread and butter. The verifier should prove most of these elidable. *)
let gen_heap_masked g =
  let d = scratch g in
  let t = scratch ~avoid:[ d ] g in
  let s = pick_scalar ~avoid:[ d; t ] g in
  emit g (Asm.mov (reg t) (reg s));
  let k = 3 + Rng.int g.rng 10 in
  let mask = Int64.sub (Int64.shift_left 1L k) 1L in
  emit g (Asm.alui Insn.And (reg t) mask);
  emit g (Asm.mov (reg d) (reg r_heap));
  emit g (Asm.alu Insn.Add (reg d) (reg t));
  forget g t;
  let sz = Rng.choose g.rng sizes in
  let disp = Rng.int g.rng 8 in
  (match Rng.int g.rng 4 with
  | 0 ->
      let v = scratch ~avoid:[ d ] g in
      emit g (Asm.ldx sz (reg v) (reg d) disp);
      if sz = Insn.U64 then set_unknown g v else set_scalar g v
  | 1 ->
      let v = pick_scalar ~avoid:[ d ] g in
      emit g (Asm.stx sz (reg d) disp (reg v))
  | 2 -> emit g (Asm.sti sz (reg d) disp (interesting g))
  | _ ->
      let v = pick_scalar ~avoid:[ d ] g in
      let sz = if Rng.bool g.rng then Insn.U32 else Insn.U64 in
      let op =
        Rng.choose g.rng
          [|
            Insn.Atomic_add; Insn.Atomic_or; Insn.Atomic_and; Insn.Atomic_xor;
            Insn.Fetch_add; Insn.Fetch_xor; Insn.Xchg;
          |]
      in
      emit g (Asm.I (Insn.Atomic (op, sz, reg d, disp, reg v)));
      (match op with
      | Insn.Fetch_add | Insn.Fetch_or | Insn.Fetch_and | Insn.Fetch_xor
      | Insn.Xchg ->
          set_unknown g v
      | _ -> ()));
  forget g d

(* An access sitting right at (or just past) the heap edge: off-by-one
   territory for the elision verdict, and guard-wrap territory at runtime. *)
let gen_heap_near_bound g =
  let d = scratch g in
  let sz = Rng.choose g.rng sizes in
  let w = Insn.size_bytes sz in
  let delta = Rng.int g.rng 12 - 3 in
  let off = Int64.sub g.heap_size (Int64.of_int (w + delta)) in
  emit g (Asm.mov (reg d) (reg r_heap));
  emit g (Asm.alui Insn.Add (reg d) off);
  if Rng.bool g.rng then begin
    let v = pick_scalar ~avoid:[ d ] g in
    emit g (Asm.stx sz (reg d) 0 (reg v))
  end
  else begin
    let v = scratch ~avoid:[ d ] g in
    emit g (Asm.ldx sz (reg v) (reg d) 0);
    if sz = Insn.U64 then set_unknown g v else set_scalar g v
  end;
  forget g d

(* Dereference a raw scalar or an untrusted heap word: a formation access
   whose guard can never be elided. *)
let gen_heap_formation g =
  let src =
    match g.unknowns with
    | u :: _ when Rng.bool g.rng -> u
    | _ -> pick_scalar g
  in
  let d = if List.mem src g.reserved then scratch g else src in
  if d <> src then emit g (Asm.mov (reg d) (reg src));
  let sz = Rng.choose g.rng sizes in
  if Rng.bool g.rng then begin
    let v = scratch ~avoid:[ d ] g in
    emit g (Asm.ldx sz (reg v) (reg d) 0);
    if sz = Insn.U64 then set_unknown g v else set_scalar g v
  end
  else emit g (Asm.sti sz (reg d) 0 (interesting g));
  forget g d

(* kflex_malloc / access / maybe kflex_free. Heap pointers may be nullable
   in KFlex mode (any dereference is guarded), so the null check itself is
   optional. *)
let gen_malloc g =
  let size = Rng.choose g.rng [| 8L; 16L; 48L; 64L; 200L; 1000L; 4000L |] in
  emit g (Asm.movi (reg 1) size);
  emit g (Asm.call "kflex_malloc");
  clobber_caller_saved g;
  let checked = Rng.bool g.rng in
  let l_null = fresh_label g "null" in
  if checked then emit g (Asm.jmpi Insn.Eq (reg 0) 0L l_null);
  let disp = Rng.int g.rng 16 in
  (* within the smallest requested size, so usually elidable when checked *)
  let disp = min disp (Int64.to_int size - 8) in
  emit g (Asm.sti Insn.U64 (reg 0) disp (interesting g));
  if Rng.bool g.rng then begin
    emit g (Asm.mov (reg 1) (reg 0));
    emit g (Asm.call "kflex_free");
    clobber_caller_saved g;
    set_scalar g 0 (* R_unit: r0 = 0 *)
  end;
  if checked then emit g (Asm.label l_null);
  forget g 0

(* Spin-lock critical section over a word in the globals area (page 0 is
   always populated). The held handle lives in r0 or is spilled to the
   stack, putting an L_slot entry in the object tables. *)
let rec gen_lock g =
  let lock_off = Int64.of_int (64 + (8 * Rng.int g.rng 8)) in
  emit g (Asm.mov (reg 1) (reg r_heap));
  emit g (Asm.alui Insn.Add (reg 1) lock_off);
  emit g (Asm.call "kflex_spin_lock");
  clobber_caller_saved g;
  let spill = Rng.bool g.rng in
  let slot_off = -8 * (50 + Rng.int g.rng 14) in
  if spill then begin
    emit g (Asm.stx Insn.U64 Reg.fp slot_off (reg 0));
    if not (List.mem slot_off g.slots) then g.slots <- slot_off :: g.slots
  end;
  (* critical section: r0 (or the spill slot) must survive *)
  let saved = g.reserved in
  g.reserved <- (if spill then saved else 0 :: saved);
  let n = Rng.int g.rng 3 in
  for _ = 1 to n do
    gen_snippet ~in_body:true g
  done;
  g.reserved <- saved;
  if spill then emit g (Asm.ldx Insn.U64 (reg 1) Reg.fp slot_off)
  else emit g (Asm.mov (reg 1) (reg 0));
  emit g (Asm.call "kflex_spin_unlock");
  clobber_caller_saved g;
  set_scalar g 0

(* Socket lookup: the canonical acquire/release pair. Hits when it draws the
   harness's listening port, misses otherwise. *)
and gen_sk_lookup g =
  let port =
    if Rng.bool g.rng then Int64.of_int g.port
    else Int64.of_int (Rng.int g.rng 65536)
  in
  (* 16-byte lookup tuple on the stack, port in the first word *)
  emit g (Asm.sti Insn.U64 Reg.fp (-16) port);
  emit g (Asm.sti Insn.U64 Reg.fp (-8) 0L);
  g.slots <- List.filter (fun o -> o <> -16 && o <> -8) g.slots;
  g.slots <- -16 :: -8 :: g.slots;
  emit g (Asm.mov (reg 1) (reg r_ctx));
  emit g (Asm.mov (reg 2) Reg.fp);
  emit g (Asm.alui Insn.Add (reg 2) (-16L));
  emit g (Asm.movi (reg 3) 0L);
  emit g (Asm.movi (reg 4) 0L);
  emit g (Asm.movi (reg 5) 0L);
  emit g
    (Asm.call
       (if Rng.bool g.rng then "bpf_sk_lookup_udp" else "bpf_sk_lookup_tcp"));
  clobber_caller_saved g;
  let l_miss = fresh_label g "miss" in
  emit g (Asm.jmpi Insn.Eq (reg 0) 0L l_miss);
  let spill = Rng.bool g.rng in
  let slot_off = -8 * (34 + Rng.int g.rng 14) in
  if spill then begin
    emit g (Asm.stx Insn.U64 Reg.fp slot_off (reg 0));
    if not (List.mem slot_off g.slots) then g.slots <- slot_off :: g.slots
  end;
  let saved = g.reserved in
  g.reserved <- (if spill then saved else 0 :: saved);
  let n = Rng.int g.rng 3 in
  for _ = 1 to n do
    gen_snippet ~in_body:true g
  done;
  g.reserved <- saved;
  if spill then emit g (Asm.ldx Insn.U64 (reg 1) Reg.fp slot_off)
  else emit g (Asm.mov (reg 1) (reg 0));
  emit g (Asm.call "bpf_sk_release");
  clobber_caller_saved g;
  emit g (Asm.label l_miss);
  forget g 0

and gen_pkt g =
  let off = pick_scalar g in
  emit g (Asm.mov (reg 1) (reg r_ctx));
  if Rng.bool g.rng then begin
    emit g (Asm.mov (reg 2) (reg off));
    emit g
      (Asm.call
         (Rng.choose g.rng
            [| "pkt_read_u8"; "pkt_read_u16"; "pkt_read_u32"; "pkt_read_u64"; "pkt_len" |]))
  end
  else begin
    emit g (Asm.movi (reg 2) (Int64.of_int (Rng.int g.rng 80)));
    let v = pick_scalar g in
    emit g (Asm.mov (reg 3) (reg v));
    emit g
      (Asm.call
         (Rng.choose g.rng
            [| "pkt_write_u8"; "pkt_write_u16"; "pkt_write_u32"; "pkt_write_u64" |]))
  end;
  clobber_caller_saved g;
  set_scalar g 0

and gen_map g =
  let key_off = -8 * (18 + Rng.int g.rng 4) in
  let val_off = key_off - 8 in
  emit g (Asm.sti Insn.U64 Reg.fp key_off (Int64.of_int (Rng.int g.rng 8)));
  emit g (Asm.sti Insn.U64 Reg.fp val_off (interesting g));
  List.iter
    (fun o -> if not (List.mem o g.slots) then g.slots <- o :: g.slots)
    [ key_off; val_off ];
  (* the harness registers one map of each shared-capable kind: 3 = hash,
     4 = spinlock, 5 = percpu, 6 = rcu_shared (mostly the hash one, so the
     seed corpus's shapes stay common). Shared mode has only the two
     engine-shared maps — 3 = spinlock, 4 = rcu_shared — and restricts
     bpf_map_sum to the rcu fd (merged reads on a spinlock map ignore the
     holder cpu, which is exactly the shard-dependence the mode forbids). *)
  let fd, allow_sum =
    if g.shared then if Rng.bool g.rng then (3L, false) else (4L, true)
    else
      match Rng.int g.rng 6 with
      | 0 -> (4L, true)
      | 1 -> (5L, true)
      | 2 -> (6L, true)
      | _ -> (3L, true)
  in
  emit g (Asm.movi (reg 1) fd);
  emit g (Asm.mov (reg 2) Reg.fp);
  emit g (Asm.alui Insn.Add (reg 2) (Int64.of_int key_off));
  let op = Rng.int g.rng (if allow_sum then 4 else 3) in
  if op <> 2 then begin
    emit g (Asm.mov (reg 3) Reg.fp);
    emit g (Asm.alui Insn.Add (reg 3) (Int64.of_int val_off))
  end;
  emit g
    (Asm.call
       (match op with
       | 0 -> "bpf_map_lookup"
       | 1 -> "bpf_map_update"
       | 2 -> "bpf_map_delete"
       | _ -> "bpf_map_sum"));
  clobber_caller_saved g;
  set_scalar g 0;
  if (op = 0 || op = 3) && Rng.bool g.rng then begin
    let d = scratch g in
    emit g (Asm.ldx Insn.U64 (reg d) Reg.fp val_off);
    set_scalar g d
  end

(* Spin-locked map value: lock the slot (NULL-able handle forces the
   0-check), mutate under the lock, unlock through the handle. The held
   handle mirrors gen_lock/gen_sk_lookup: live in r0 (call-free body) or
   spilled to the stack (an L_slot object-table entry — and the shape the
   cancellation oracle unwinds through mid-critical-section). *)
and gen_map_lock g =
  let key_off = -8 * (24 + Rng.int g.rng 4) in
  let val_off = key_off - 32 in
  emit g (Asm.sti Insn.U64 Reg.fp key_off (Int64.of_int (Rng.int g.rng 4)));
  if not (List.mem key_off g.slots) then g.slots <- key_off :: g.slots;
  let spin_fd = if g.shared then 3L else 4L in
  emit g (Asm.movi (reg 1) spin_fd);
  emit g (Asm.mov (reg 2) Reg.fp);
  emit g (Asm.alui Insn.Add (reg 2) (Int64.of_int key_off));
  emit g (Asm.call "bpf_map_lock");
  clobber_caller_saved g;
  let l_miss = fresh_label g "nolock" in
  emit g (Asm.jmpi Insn.Eq (reg 0) 0L l_miss);
  let spill = Rng.bool g.rng in
  let slot_off = -8 * (30 + Rng.int g.rng 4) in
  if spill then begin
    emit g (Asm.stx Insn.U64 Reg.fp slot_off (reg 0));
    if not (List.mem slot_off g.slots) then g.slots <- slot_off :: g.slots
  end;
  let saved = g.reserved in
  g.reserved <- (if spill then saved else 0 :: saved);
  let n = Rng.int g.rng 3 in
  for _ = 1 to n do
    gen_snippet ~in_body:true g
  done;
  if spill && Rng.bool g.rng then begin
    (* a write the lock protects: update the same key while holding it *)
    emit g (Asm.sti Insn.U64 Reg.fp val_off (interesting g));
    if not (List.mem val_off g.slots) then g.slots <- val_off :: g.slots;
    emit g (Asm.movi (reg 1) spin_fd);
    emit g (Asm.mov (reg 2) Reg.fp);
    emit g (Asm.alui Insn.Add (reg 2) (Int64.of_int key_off));
    emit g (Asm.mov (reg 3) Reg.fp);
    emit g (Asm.alui Insn.Add (reg 3) (Int64.of_int val_off));
    emit g (Asm.call "bpf_map_update");
    clobber_caller_saved g
  end;
  g.reserved <- saved;
  if spill then emit g (Asm.ldx Insn.U64 (reg 1) Reg.fp slot_off)
  else emit g (Asm.mov (reg 1) (reg 0));
  emit g (Asm.call "bpf_map_unlock");
  clobber_caller_saved g;
  emit g (Asm.label l_miss);
  forget g 0

and gen_misc_call g =
  (* the processor id is exactly the shard-dependence shared mode forbids *)
  emit g
    (Asm.call
       (if g.shared || Rng.bool g.rng then "bpf_get_prandom_u32"
        else "bpf_get_smp_processor_id"));
  clobber_caller_saved g;
  set_scalar g 0

(* A two-armed branch. Registers initialised on only one arm are dropped
   from tracking at the join (their abstract join is unusable anyway). *)
and gen_branch g =
  let a = pick_scalar g in
  let c = Rng.choose g.rng conds in
  let l_then = fresh_label g "then" in
  let l_join = fresh_label g "join" in
  if Rng.bool g.rng then
    emit g (Asm.jmpi c (reg a) (interesting g) l_then)
  else begin
    let b = pick_scalar g in
    emit g (Asm.jmp c (reg a) (reg b) l_then)
  end;
  let snap_sc = g.scalars and snap_un = g.unknowns and snap_sl = g.slots in
  g.depth <- g.depth + 1;
  let n = Rng.int g.rng 3 in
  for _ = 1 to n do
    gen_snippet ~in_body:true g
  done;
  let else_sc = g.scalars and else_un = g.unknowns and else_sl = g.slots in
  emit g (Asm.ja l_join);
  emit g (Asm.label l_then);
  g.scalars <- snap_sc;
  g.unknowns <- snap_un;
  g.slots <- snap_sl;
  let n = Rng.int g.rng 3 in
  for _ = 1 to n do
    gen_snippet ~in_body:true g
  done;
  g.depth <- g.depth - 1;
  emit g (Asm.label l_join);
  let inter l l' = List.filter (fun x -> List.mem x l') l in
  g.scalars <- inter g.scalars else_sc;
  g.unknowns <- inter g.unknowns else_un;
  g.slots <- inter g.slots else_sl

(* A counted loop the verifier can bound. The §5.4 stress variant indexes
   the heap with the (masked, shifted) counter, so widening at the header
   must preserve alignment/bound facts for the access to stay elidable. *)
and gen_loop_bounded g =
  match List.filter (fun r -> not (List.mem r g.reserved)) [ 8; 9 ] with
  | [] -> gen_alu g
  | counters ->
      let rc = List.nth counters (Rng.int g.rng (List.length counters)) in
      let n = 1 + Rng.int g.rng 32 in
      let l_head = fresh_label g "loop" in
      emit g (Asm.movi (reg rc) 0L);
      forget g rc;
      let saved = g.reserved in
      g.reserved <- rc :: saved;
      g.depth <- g.depth + 1;
      emit g (Asm.label l_head);
      let body = 1 + Rng.int g.rng 2 in
      for _ = 1 to body do
        gen_snippet ~in_body:true g
      done;
      if (not g.shared) && Rng.bool g.rng then begin
        (* counter-indexed heap store: mov t rc; t &= 63; t <<= 3 *)
        let t = scratch g in
        let d = scratch ~avoid:[ t ] g in
        emit g (Asm.mov (reg t) (reg rc));
        emit g (Asm.alui Insn.And (reg t) 63L);
        emit g (Asm.alui Insn.Lsh (reg t) 3L);
        emit g (Asm.mov (reg d) (reg r_heap));
        emit g (Asm.alu Insn.Add (reg d) (reg t));
        emit g (Asm.stx Insn.U64 (reg d) 0 (reg rc));
        forget g t;
        forget g d
      end;
      emit g (Asm.alui Insn.Add (reg rc) 1L);
      emit g (Asm.jmpi Insn.Lt (reg rc) (Int64.of_int n) l_head);
      g.depth <- g.depth - 1;
      g.reserved <- saved;
      set_scalar g rc

(* A loop the verifier cannot bound — each iteration re-rolls the exit
   condition from bpf_get_prandom_u32 — but which terminates concretely
   with probability 1 (expected iterations: mask + 1). Gets a C1
   checkpoint at its back edge. *)
and gen_loop_unbounded g =
  let l_head = fresh_label g "uloop" in
  let mask = Rng.choose g.rng [| 1L; 3L; 7L; 15L |] in
  g.depth <- g.depth + 1;
  emit g (Asm.label l_head);
  let body = 1 + Rng.int g.rng 2 in
  for _ = 1 to body do
    gen_snippet ~in_body:true g
  done;
  emit g (Asm.call "bpf_get_prandom_u32");
  clobber_caller_saved g;
  emit g (Asm.alui Insn.And (reg 0) mask);
  emit g (Asm.jmpi Insn.Ne (reg 0) 0L l_head);
  g.depth <- g.depth - 1;
  set_scalar g 0

(* A deliberately endless loop: only the quantum watchdog (via the C1
   checkpoint) ends it. Rare, because each one costs a full quantum. *)
and gen_loop_infinite g =
  let l_head = fresh_label g "iloop" in
  g.depth <- g.depth + 1;
  emit g (Asm.label l_head);
  gen_snippet ~in_body:true g;
  emit g (Asm.ja l_head);
  g.depth <- g.depth - 1

and gen_snippet ~in_body g =
  let pick =
    if g.shared then begin
      (* shared-map mode: no heap, no sockets, no processor id — every
         effect lands in the packet, the return value, or the shared maps *)
      let no_calls = List.mem 0 g.reserved in
      let lim = if no_calls then 14 else if in_body && g.depth >= 2 then 17 else 20 in
      match Rng.int g.rng lim with
      | 0 | 1 -> gen_const
      | 2 | 3 -> gen_ctx_load
      | 4 | 5 -> gen_mask
      | 6 | 7 -> gen_alu
      | 8 -> gen_neg
      | 9 | 10 -> gen_stack
      | 11 -> gen_stack_reload
      | 12 | 13 -> gen_branch
      | 14 -> gen_pkt
      | 15 -> gen_misc_call
      | 16 | 17 -> gen_map
      | 18 -> gen_map_lock
      | _ -> if in_body then gen_map else gen_loop_bounded
    end
    else if in_body then begin
      (* Self-contained snippets only (pre-loop register shapes are
         unreliable at the header join). While an object is held in r0 —
         an unspilled critical section — helper calls would clobber its
         only copy, so those bodies stay call-free. Deep nesting tapers. *)
      let no_calls = List.mem 0 g.reserved in
      let lim = if no_calls then 19 else if g.depth >= 2 then 22 else 28 in
      match Rng.int g.rng lim with
      | 0 | 1 -> gen_const
      | 2 | 3 -> gen_ctx_load
      | 4 | 5 -> gen_mask
      | 6 | 7 -> gen_alu
      | 8 -> gen_neg
      | 9 | 10 | 11 -> gen_heap_masked
      | 12 | 13 -> gen_heap_near_bound
      | 14 | 15 -> gen_heap_formation
      | 16 -> gen_stack
      | 17 | 18 -> gen_branch
      | 19 -> gen_pkt
      | 20 -> gen_misc_call
      | 21 -> gen_map
      | 22 -> gen_loop_bounded
      | 23 -> gen_malloc
      | 24 -> gen_lock
      | 25 -> gen_sk_lookup
      | 26 -> gen_map_lock
      | _ -> gen_misc_call
    end
    else
      match Rng.int g.rng 31 with
      | 0 | 1 -> gen_const
      | 2 -> gen_ctx_load
      | 3 | 4 | 5 -> gen_mask
      | 6 | 7 -> gen_alu
      | 8 -> gen_neg
      | 9 | 10 | 11 -> gen_heap_masked
      | 12 | 13 -> gen_heap_near_bound
      | 14 | 15 -> gen_heap_formation
      | 16 -> gen_stack
      | 17 -> gen_stack_reload
      | 18 | 19 -> gen_branch
      | 20 | 21 -> gen_loop_bounded
      | 22 | 23 -> gen_loop_unbounded
      | 24 -> gen_malloc
      | 25 -> gen_lock
      | 26 -> gen_sk_lookup
      | 27 -> gen_pkt
      | 28 -> gen_map
      | 29 -> gen_map_lock
      | _ ->
          if Rng.int g.rng 12 = 0 then gen_loop_infinite else gen_misc_call
  in
  pick g

(* --- whole programs ---------------------------------------------------- *)

let generate ?(shared = false) ~rng ~heap_size ~port () =
  let g =
    {
      rng;
      heap_size;
      port;
      shared;
      rev = [];
      nlab = 0;
      scalars = [];
      unknowns = [];
      slots = [];
      reserved = [];
      depth = 0;
    }
  in
  (* prologue: stash ctx, fetch the heap base (r0 stays a heap pointer —
     deliberately untracked). Shared-mode programs run heap-less. *)
  emit g (Asm.mov (reg r_ctx) (reg 1));
  if not shared then begin
    emit g (Asm.call "kflex_heap_base");
    emit g (Asm.mov (reg r_heap) (reg 0))
  end;
  let n = 3 + Rng.int g.rng 10 in
  for _ = 1 to n do
    gen_snippet ~in_body:false g
  done;
  (* epilogue: r0 must be a scalar *)
  (match List.filter (fun r -> r <> 0) g.scalars with
  | r :: _ when Rng.bool g.rng -> emit g (Asm.mov (reg 0) (reg r))
  | _ -> emit g (Asm.movi (reg 0) (interesting g)));
  emit g Asm.exit_;
  List.rev g.rev

let assemble items = Asm.assemble ~name:"fuzz" items
