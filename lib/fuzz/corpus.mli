(** Reproducer files.

    A reproducer captures everything a failing case depends on — the full
    oracle configuration (heap geometry, page layout, packet, PRNG seed,
    budgets) and the encoded program — in a line-oriented text format
    ([kflex-fuzz-repro v1]) friendly to [git diff]. The fuzzer writes one
    per shrunk failure; [test/corpus/*.kfxr] replays them in [dune runtest]
    as regression tests. *)

type t = {
  oracle : string option;
      (** which oracle failed when the file was written; [replay] does not
          restrict itself to it — any failure on a corpus file is a bug *)
  config : Oracle.config;
  prog : Kflex_bpf.Prog.t;
  prog2 : Kflex_bpf.Prog.t option;
      (** chain-oracle reproducers carry the second chain program *)
}

val write :
  string ->
  ?oracle:string ->
  ?prog2:Kflex_bpf.Prog.t ->
  Oracle.config ->
  Kflex_bpf.Prog.t ->
  unit
(** [write path ?oracle config prog] saves a reproducer; [prog2] makes it a
    chain-oracle pair. *)

val read : string -> t
(** @raise Failure on malformed files. *)

val replay : ?backend:Kflex_runtime.Vm.backend -> t -> Oracle.verdict
(** [Oracle.run_case] under the reproducer's own config; [~backend:`Compiled]
    additionally checks interpreter-vs-compiled equivalence. Pair files
    replay through {!Oracle.chain_equiv} instead; files whose recorded
    oracle is ["shared"] run {!Oracle.shared_equiv} first, then the
    single-program oracles. *)
