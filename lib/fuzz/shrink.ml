open Kflex_bpf

let remove_range l i k =
  List.filteri (fun j _ -> j < i || j >= i + k) l

(* Simpler variants of one item, most aggressive first. *)
let variants = function
  | Asm.I insn ->
      let vs =
        match insn with
        | Insn.Mov (d, Insn.Imm v) when v <> 0L ->
            Insn.Mov (d, Insn.Imm 0L)
            :: (if Int64.div v 2L <> v then
                  [ Insn.Mov (d, Insn.Imm (Int64.div v 2L)) ]
                else [])
        | Insn.Alu (op, d, Insn.Imm v) when v <> 0L ->
            Insn.Alu (op, d, Insn.Imm 0L)
            :: (if Int64.div v 2L <> v then
                  [ Insn.Alu (op, d, Insn.Imm (Int64.div v 2L)) ]
                else [])
        | Insn.Ldx (sz, d, s, off) when off <> 0 ->
            [ Insn.Ldx (sz, d, s, 0) ]
        | Insn.Stx (sz, d, off, s) when off <> 0 ->
            [ Insn.Stx (sz, d, 0, s) ]
        | Insn.St (sz, d, off, v) ->
            (if v <> 0L then [ Insn.St (sz, d, off, 0L) ] else [])
            @ if off <> 0 then [ Insn.St (sz, d, 0, v) ] else []
        | Insn.Atomic (op, sz, d, off, s) when off <> 0 ->
            [ Insn.Atomic (op, sz, d, 0, s) ]
        | _ -> []
      in
      List.map (fun i -> Asm.I i) vs
  | Asm.Jcond_l (c, d, Insn.Imm v, l) when v <> 0L ->
      [ Asm.Jcond_l (c, d, Insn.Imm 0L, l) ]
  | Asm.L _ | Asm.Ja_l _ | Asm.Jcond_l _ -> []

let shrink ?(budget = 300) ~check items =
  let left = ref budget in
  let check cand =
    if !left <= 0 then false
    else begin
      decr left;
      check cand
    end
  in
  (* one full deletion sweep with halving chunk sizes *)
  let delete items =
    let rec pass k items =
      if k < 1 then items
      else begin
        let rec scan i cur =
          if i >= List.length cur then cur
          else begin
            let cand = remove_range cur i k in
            if cand <> [] && check cand then scan i cand else scan (i + k) cur
          end
        in
        pass (k / 2) (scan 0 items)
      end
    in
    let n = List.length items in
    pass (max 1 (n / 2)) items
  in
  (* one operand-simplification sweep; variants are recomputed from the
     current item so independent simplifications (offset and immediate of
     the same store) compose *)
  let simplify items =
    let arr = Array.of_list items in
    let try_variant i v =
      if v <> arr.(i) && !left > 0 then begin
        let save = arr.(i) in
        arr.(i) <- v;
        if check (Array.to_list arr) then true
        else begin
          arr.(i) <- save;
          false
        end
      end
      else false
    in
    Array.iteri
      (fun i _ ->
        let rec improve () =
          if List.exists (try_variant i) (variants arr.(i)) then improve ()
        in
        improve ())
      arr;
    Array.to_list arr
  in
  let rec fix items =
    let items' = simplify (delete items) in
    if !left > 0 && List.length items' < List.length items then fix items'
    else items'
  in
  fix items
