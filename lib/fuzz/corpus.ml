open Kflex_bpf

type t = {
  oracle : string option;
  config : Oracle.config;
  prog : Prog.t;
  prog2 : Prog.t option;
}

let magic = "kflex-fuzz-repro v1"

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  if String.length s mod 2 <> 0 then failwith "corpus: odd hex length";
  String.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let write path ?oracle ?prog2 (cfg : Oracle.config) prog =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "%s\n" magic;
  (match oracle with Some o -> pr "oracle %s\n" o | None -> ());
  pr "heap_size 0x%Lx\n" cfg.heap_size;
  pr "kbase 0x%Lx\n" cfg.kbase;
  pr "pages %s\n" (String.concat "," (List.map string_of_int cfg.pages));
  pr "port %d\n" cfg.port;
  pr "prandom 0x%Lx\n" cfg.prandom;
  pr "src_port %d\n" cfg.src_port;
  pr "dst_port %d\n" cfg.dst_port;
  pr "quantum %d\n" cfg.quantum;
  pr "insn_budget %d\n" cfg.insn_budget;
  pr "inject_cap %d\n" cfg.inject_cap;
  pr "payload %s\n" (to_hex cfg.payload);
  pr "prog %s\n" (to_hex (Encode.encode prog));
  (match prog2 with
  | Some p -> pr "prog2 %s\n" (to_hex (Encode.encode p))
  | None -> ());
  close_out oc

let read path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines =
    List.rev !lines |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | m :: rest when String.trim m = magic ->
      let oracle = ref None
      and cfg = ref Oracle.default_config
      and prog = ref None
      and prog2 = ref None in
      List.iter
        (fun line ->
          match String.index_opt line ' ' with
          | None -> failwith ("corpus: bad line in " ^ path ^ ": " ^ line)
          | Some i -> (
              let k = String.sub line 0 i in
              let v =
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              match k with
              | "oracle" -> oracle := Some v
              | "heap_size" -> cfg := { !cfg with heap_size = Int64.of_string v }
              | "kbase" -> cfg := { !cfg with kbase = Int64.of_string v }
              | "pages" ->
                  let pages =
                    if v = "" then []
                    else
                      String.split_on_char ',' v |> List.map int_of_string
                  in
                  cfg := { !cfg with pages }
              | "port" -> cfg := { !cfg with port = int_of_string v }
              | "prandom" -> cfg := { !cfg with prandom = Int64.of_string v }
              | "src_port" -> cfg := { !cfg with src_port = int_of_string v }
              | "dst_port" -> cfg := { !cfg with dst_port = int_of_string v }
              | "quantum" -> cfg := { !cfg with quantum = int_of_string v }
              | "insn_budget" ->
                  cfg := { !cfg with insn_budget = int_of_string v }
              | "inject_cap" ->
                  cfg := { !cfg with inject_cap = int_of_string v }
              | "payload" -> cfg := { !cfg with payload = of_hex v }
              | "prog" -> prog := Some (Encode.decode (of_hex v))
              | "prog2" -> prog2 := Some (Encode.decode (of_hex v))
              | _ -> failwith ("corpus: unknown key in " ^ path ^ ": " ^ k)))
        rest;
      let prog =
        match !prog with
        | Some p -> p
        | None -> failwith ("corpus: missing prog in " ^ path)
      in
      { oracle = !oracle; config = !cfg; prog; prog2 = !prog2 }
  | _ -> failwith ("corpus: bad magic in " ^ path)

let replay ?backend t =
  match (t.oracle, t.prog2) with
  | _, Some p2 -> Oracle.chain_equiv t.config t.prog p2
  | Some "shared", None -> (
      (* shared-oracle reproducers replay through the sharded-vs-reference
         comparison first, then the ordinary single-program oracles *)
      match Oracle.shared_equiv t.config t.prog with
      | Oracle.Pass | Oracle.Rejected _ ->
          Oracle.run_case ?backend t.config t.prog
      | fail -> fail)
  | _, None -> Oracle.run_case ?backend t.config t.prog
