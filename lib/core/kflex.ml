open Kflex_runtime

type loaded = {
  ext : Vm.ext;
  kie : Kflex_kie.Instrument.t;
  analysis : Kflex_verifier.Verify.analysis;
  heap : Heap.t option;
  alloc : Alloc.t option;
  kernel : Kflex_kernel.Helpers.t;
  hook : Kflex_kernel.Hook.kind;
  backend : Vm.backend;
}

type admitted = {
  a_kie : Kflex_kie.Instrument.t;
  a_analysis : Kflex_verifier.Verify.analysis;
  a_hook : Kflex_kernel.Hook.kind;
}

(* --- compiled-program cache -------------------------------------------- *)

(* Attach/run paths and the fuzz oracles load the same instrumented program
   repeatedly; compile it once. Keyed by a digest of the instruction stream
   (instrumentation options are already baked into the stream, so programs
   differing in options hash apart).

   The cache is LRU-bounded: entries carry a logical-clock stamp bumped on
   every hit, and an insert past capacity evicts the stalest entry. The
   capacity is small (an engine attaches a handful of distinct programs, a
   fuzz campaign churns through thousands — exactly the workload an
   unbounded table grows without limit under), and eviction is O(capacity),
   which at these sizes is cheaper than maintaining an intrusive list. *)

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  capacity : int;
}

let jit_cache : (string, Jit.t * int ref) Hashtbl.t = Hashtbl.create 16
let jit_hits = ref 0
let jit_misses = ref 0
let jit_evictions = ref 0
let jit_capacity = ref 64
let jit_clock = ref 0

let jit_cache_mutex = Mutex.create ()
(* threaded-engine shards race attach-time compiles through here *)

let evict_one () =
  let victim = ref None in
  Hashtbl.iter
    (fun k (_, stamp) ->
      match !victim with
      | Some (_, s) when s <= !stamp -> ()
      | _ -> victim := Some (k, !stamp))
    jit_cache;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove jit_cache k;
      incr jit_evictions
  | None -> ()

let jit_cache_stats () =
  Mutex.protect jit_cache_mutex (fun () ->
      {
        hits = !jit_hits;
        misses = !jit_misses;
        entries = Hashtbl.length jit_cache;
        evictions = !jit_evictions;
        capacity = !jit_capacity;
      })

let set_jit_cache_capacity n =
  if n < 1 then invalid_arg "Kflex.set_jit_cache_capacity";
  Mutex.protect jit_cache_mutex (fun () ->
      jit_capacity := n;
      while Hashtbl.length jit_cache > n do
        evict_one ()
      done)

let compiled_for kie =
  let prog = kie.Kflex_kie.Instrument.prog in
  let key = Digest.string (Marshal.to_string (Kflex_bpf.Prog.insns prog) []) in
  Mutex.protect jit_cache_mutex (fun () ->
      incr jit_clock;
      match Hashtbl.find_opt jit_cache key with
      | Some (t, stamp) ->
          incr jit_hits;
          stamp := !jit_clock;
          t
      | None ->
          incr jit_misses;
          let t = Jit.compile prog in
          if Hashtbl.length jit_cache >= !jit_capacity then evict_one ();
          Hashtbl.replace jit_cache key (t, ref !jit_clock);
          t)

let contracts = Kflex_verifier.Contract.registry Kflex_verifier.Contract.kflex_base

let globals_base = 64L

(* --- admission ---------------------------------------------------------- *)

(* Kops-style admission policy: the loader decides which helpers (and so
   which map kinds) an extension may touch; a denied call is an admission
   error, not a verification failure of the program text. *)
let denied_call ~deny_helpers prog =
  if deny_helpers = [] then None
  else
    let hit = ref None in
    Array.iteri
      (fun pc (i : Kflex_bpf.Insn.t) ->
        match i with
        | Kflex_bpf.Insn.Call name
          when !hit = None && List.mem name deny_helpers ->
            hit := Some (pc, name)
        | _ -> ())
      (Kflex_bpf.Prog.insns prog);
    !hit

let admit ?(mode = Kflex_verifier.Verify.Kflex) ?options ?heap_size
    ?(extra_contracts = []) ?(deny_helpers = []) ?(backend = `Interp) ~hook
    prog =
  let contracts =
    if extra_contracts = [] then contracts
    else
      Kflex_verifier.Contract.registry
        (Kflex_verifier.Contract.kflex_base @ extra_contracts)
  in
  let verify p =
    Kflex_verifier.Verify.run ~mode ~contracts
      ~ctx_size:Kflex_kernel.Hook.ctx_size ?heap_size
      ~sleepable:(Kflex_kernel.Hook.sleepable hook)
      p
  in
  let result =
    match verify prog with
    | Ok a -> Ok a
    | Error ({ Kflex_verifier.Verify.kind = Kflex_verifier.Verify.E_leak; _ } as e)
      -> (
        (* §4.3: conflicting object-table locations — retry with acquired
           resources spilled to unique stack slots *)
        match Kflex_kie.Spill.mitigate ~contracts prog with
        | None -> Error e
        | Some prog' -> ( match verify prog' with Ok a -> Ok a | Error _ -> Error e))
    | Error e -> Error e
  in
  let result =
    match (result, denied_call ~deny_helpers prog) with
    | Ok _, Some (pc, name) ->
        Error
          {
            Kflex_verifier.Verify.pc = Some pc;
            kind = Kflex_verifier.Verify.E_helper;
            msg = Printf.sprintf "helper %s denied by admission policy" name;
          }
    | r, _ -> r
  in
  match result with
  | Error e -> Error e
  | Ok analysis ->
      let options =
        match options with
        | Some o -> o
        | None ->
            {
              Kflex_kie.Instrument.performance_mode = false;
              translate_on_store = false;
              kmod_baseline = false;
              no_elision = false;
            }
      in
      let kie = Kflex_kie.Instrument.run ~options analysis in
      (* the admission-time compile: chain reloads and sibling-shard
         instantiations hit the cache and share the compiled form *)
      if backend = `Compiled then ignore (compiled_for kie : Jit.t);
      Ok { a_kie = kie; a_analysis = analysis; a_hook = hook }

let instantiate ?heap ?(globals_size = 0L) ?quantum ?on_cancel
    ?(extra_helpers = []) ?(backend = `Interp) ~kernel a =
  let alloc =
    Option.map
      (fun h ->
        let data_start = Int64.add globals_base globals_size in
        (* globals live on always-populated pages *)
        Heap.populate h ~off:0L ~len:data_start;
        Alloc.create ~data_start h)
      heap
  in
  let helpers = Kflex_kernel.Helpers.implementations kernel @ extra_helpers in
  let ext =
    Vm.create ?heap ?alloc ?quantum
      ~default_ret:(Kflex_kernel.Hook.default_ret a.a_hook)
      ?on_cancel ~helpers a.a_kie
  in
  if backend = `Compiled then Vm.set_compiled ext (compiled_for a.a_kie);
  {
    ext;
    kie = a.a_kie;
    analysis = a.a_analysis;
    heap;
    alloc;
    kernel;
    hook = a.a_hook;
    backend;
  }

let load ?mode ?options ?heap ?globals_size ?quantum ?on_cancel
    ?extra_contracts ?extra_helpers ?(backend = `Interp) ~kernel ~hook prog =
  let options =
    match options with
    | Some o -> Some o
    | None ->
        (* the facade defaults translate-on-store from the heap it is handed;
           [admit] alone cannot (the heap only exists at instantiation) *)
        Option.map
          (fun h ->
            {
              Kflex_kie.Instrument.performance_mode = false;
              translate_on_store = Heap.is_shared h;
              kmod_baseline = false;
              no_elision = false;
            })
          heap
  in
  let heap_size = Option.map Heap.size heap in
  match admit ?mode ?options ?heap_size ?extra_contracts ~backend ~hook prog with
  | Error e -> Error e
  | Ok a ->
      Ok
        (instantiate ?heap ?globals_size ?quantum ?on_cancel ?extra_helpers
           ~backend ~kernel a)

(* A run may select [`Compiled] on an extension loaded interpreted; route
   the lazy compilation through the facade cache rather than Vm's per-ext
   fallback. *)
let ensure_backend t backend =
  if backend = `Compiled && not (Vm.has_compiled t.ext) then
    Vm.set_compiled t.ext (compiled_for t.kie)

let run_raw t ?cpu ?stats ?backend ~ctx () =
  let backend = match backend with Some b -> b | None -> t.backend in
  ensure_backend t backend;
  Vm.exec t.ext ~ctx ?cpu ?stats ~backend ()

let run_packet t ?cpu ?stats ?backend pkt =
  let backend = match backend with Some b -> b | None -> t.backend in
  ensure_backend t backend;
  Kflex_kernel.Helpers.set_packet t.kernel (Some pkt);
  let ctx = Kflex_kernel.Hook.build_ctx pkt in
  let outcome = Vm.exec t.ext ~ctx ?cpu ?stats ~backend () in
  Kflex_kernel.Helpers.set_packet t.kernel None;
  outcome
