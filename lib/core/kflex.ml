open Kflex_runtime

type loaded = {
  ext : Vm.ext;
  kie : Kflex_kie.Instrument.t;
  analysis : Kflex_verifier.Verify.analysis;
  heap : Heap.t option;
  alloc : Alloc.t option;
  kernel : Kflex_kernel.Helpers.t;
  hook : Kflex_kernel.Hook.kind;
  backend : Vm.backend;
}

(* Compiled-program cache: attach/run paths and the fuzz oracles load the
   same instrumented program repeatedly; compile it once. Keyed by a digest
   of the instruction stream (instrumentation options are already baked into
   the stream, so programs differing in options hash apart). *)
let jit_cache : (string, Jit.t) Hashtbl.t = Hashtbl.create 16
let jit_hits = ref 0
let jit_misses = ref 0

let jit_cache_stats () =
  (!jit_hits, !jit_misses, Hashtbl.length jit_cache)

let compiled_for kie =
  let prog = kie.Kflex_kie.Instrument.prog in
  let key = Digest.string (Marshal.to_string (Kflex_bpf.Prog.insns prog) []) in
  match Hashtbl.find_opt jit_cache key with
  | Some t ->
      incr jit_hits;
      t
  | None ->
      incr jit_misses;
      let t = Jit.compile prog in
      Hashtbl.replace jit_cache key t;
      t

let contracts = Kflex_verifier.Contract.registry Kflex_verifier.Contract.kflex_base

let globals_base = 64L

let load ?(mode = Kflex_verifier.Verify.Kflex) ?options ?heap
    ?(globals_size = 0L) ?quantum ?on_cancel ?(extra_contracts = [])
    ?(extra_helpers = []) ?(backend = `Interp) ~kernel ~hook prog =
  let contracts =
    if extra_contracts = [] then contracts
    else
      Kflex_verifier.Contract.registry
        (Kflex_verifier.Contract.kflex_base @ extra_contracts)
  in
  let heap_size = Option.map Heap.size heap in
  let verify p =
    Kflex_verifier.Verify.run ~mode ~contracts
      ~ctx_size:Kflex_kernel.Hook.ctx_size ?heap_size
      ~sleepable:(Kflex_kernel.Hook.sleepable hook)
      p
  in
  let result =
    match verify prog with
    | Ok a -> Ok a
    | Error ({ Kflex_verifier.Verify.kind = Kflex_verifier.Verify.E_leak; _ } as e)
      -> (
        (* §4.3: conflicting object-table locations — retry with acquired
           resources spilled to unique stack slots *)
        match Kflex_kie.Spill.mitigate ~contracts prog with
        | None -> Error e
        | Some prog' -> ( match verify prog' with Ok a -> Ok a | Error _ -> Error e))
    | Error e -> Error e
  in
  match result with
  | Error e -> Error e
  | Ok analysis ->
      let options =
        match options with
        | Some o -> o
        | None ->
            {
              Kflex_kie.Instrument.performance_mode = false;
              translate_on_store =
                (match heap with Some h -> Heap.is_shared h | None -> false);
              kmod_baseline = false;
              no_elision = false;
            }
      in
      let kie = Kflex_kie.Instrument.run ~options analysis in
      let alloc =
        Option.map
          (fun h ->
            let data_start = Int64.add globals_base globals_size in
            (* globals live on always-populated pages *)
            Heap.populate h ~off:0L ~len:data_start;
            Alloc.create ~data_start h)
          heap
      in
      let helpers = Kflex_kernel.Helpers.implementations kernel @ extra_helpers in
      let ext =
        Vm.create ?heap ?alloc ?quantum
          ~default_ret:(Kflex_kernel.Hook.default_ret hook)
          ?on_cancel ~helpers kie
      in
      if backend = `Compiled then Vm.set_compiled ext (compiled_for kie);
      Ok { ext; kie; analysis; heap; alloc; kernel; hook; backend }

(* A run may select [`Compiled] on an extension loaded interpreted; route
   the lazy compilation through the facade cache rather than Vm's per-ext
   fallback. *)
let ensure_backend t backend =
  if backend = `Compiled && not (Vm.has_compiled t.ext) then
    Vm.set_compiled t.ext (compiled_for t.kie)

let run_raw t ?cpu ?stats ?backend ~ctx () =
  let backend = match backend with Some b -> b | None -> t.backend in
  ensure_backend t backend;
  Vm.exec t.ext ~ctx ?cpu ?stats ~backend ()

let run_packet t ?cpu ?stats ?backend pkt =
  let backend = match backend with Some b -> b | None -> t.backend in
  ensure_backend t backend;
  Kflex_kernel.Helpers.set_packet t.kernel (Some pkt);
  let ctx = Kflex_kernel.Hook.build_ctx pkt in
  let outcome = Vm.exec t.ext ~ctx ?cpu ?stats ~backend () in
  Kflex_kernel.Helpers.set_packet t.kernel None;
  outcome
