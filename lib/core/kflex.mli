(** KFlex — the public facade.

    Ties the whole pipeline of Figure 1 together: a bytecode extension is
    {e verified} for kernel-interface compliance (step 1, {!Kflex_verifier}),
    {e instrumented} by Kie with SFI guards and cancellation points (step 2,
    {!Kflex_kie}), and handed to the {e runtime} that executes it with
    memory safety and safe termination enforced (step 3, {!Kflex_runtime}).

    {[
      let kernel = Kflex_kernel.Helpers.create () in
      let heap = Kflex_runtime.Heap.create ~size:(1 lsl 20 |> Int64.of_int) () in
      match Kflex.load ~kernel ~heap ~hook:Kflex_kernel.Hook.Xdp prog with
      | Error e -> (* rejected by the verifier *)
      | Ok ext ->
          let outcome = Kflex.run_packet ext packet in
          ...
    ]} *)

type loaded = {
  ext : Kflex_runtime.Vm.ext;
  kie : Kflex_kie.Instrument.t;
  analysis : Kflex_verifier.Verify.analysis;
  heap : Kflex_runtime.Heap.t option;
  alloc : Kflex_runtime.Alloc.t option;
  kernel : Kflex_kernel.Helpers.t;
  hook : Kflex_kernel.Hook.kind;
  backend : Kflex_runtime.Vm.backend;  (** default engine for run calls *)
}

type admitted
(** A verified, instrumented (and, for the compiled backend, JIT-compiled)
    program — the output of the admission pipeline, ready to be instantiated
    any number of times (once per engine shard) without re-verifying. *)

val contracts : Kflex_verifier.Contract.registry
(** The default helper contracts ({!Kflex_verifier.Contract.kflex_base}). *)

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
  capacity : int;
}

val jit_cache_stats : unit -> cache_stats
(** Compiled-program cache counters. The cache is keyed by a digest of the
    instrumented instruction stream, so reloading the same program (fuzz
    oracles, repeated attaches, per-shard instantiation) compiles once — and
    it is LRU-bounded at [capacity] entries, with [evictions] counting
    programs dropped to stay under it. *)

val set_jit_cache_capacity : int -> unit
(** Change the cache bound (default 64), evicting stalest-first down to the
    new capacity if needed. Raises [Invalid_argument] for < 1. *)

val admit :
  ?mode:Kflex_verifier.Verify.mode ->
  ?options:Kflex_kie.Instrument.options ->
  ?heap_size:int64 ->
  ?extra_contracts:Kflex_verifier.Contract.t list ->
  ?deny_helpers:string list ->
  ?backend:Kflex_runtime.Vm.backend ->
  hook:Kflex_kernel.Hook.kind ->
  Kflex_bpf.Prog.t ->
  (admitted, Kflex_verifier.Verify.error) result
(** The once-per-program half of {!load}: verify (with the §4.3 spill-retry
    on [E_leak]), instrument, and — when [backend] is [`Compiled] — compile
    through the shared cache. [options] defaults to the standard
    instrumentation with translate-on-store {e off}; callers instantiating
    over shared heaps must pass options explicitly (as {!load} does).
    [heap_size] bounds the verifier's heap-pointer ranges exactly as an
    attached heap of that size would. [deny_helpers] is the Kops-style
    per-tenant admission policy: a program calling a denied helper is
    rejected with [E_helper] at the offending pc (the loader decides which
    map kinds an extension may touch). *)

val instantiate :
  ?heap:Kflex_runtime.Heap.t ->
  ?globals_size:int64 ->
  ?quantum:int ->
  ?on_cancel:(int64 -> int64) ->
  ?extra_helpers:(string * Kflex_runtime.Vm.helper) list ->
  ?backend:Kflex_runtime.Vm.backend ->
  kernel:Kflex_kernel.Helpers.t ->
  admitted ->
  loaded
(** The per-instance half of {!load}: build the heap allocator, link helpers
    and create the VM extension over an already-admitted program. O(1) per
    shard — the engine calls this once per (attachment, shard) with the
    shard's own heap, kernel state and helper overrides; the compiled form
    is shared via the cache. *)

val load :
  ?mode:Kflex_verifier.Verify.mode ->
  ?options:Kflex_kie.Instrument.options ->
  ?heap:Kflex_runtime.Heap.t ->
  ?globals_size:int64 ->
  ?quantum:int ->
  ?on_cancel:(int64 -> int64) ->
  ?extra_contracts:Kflex_verifier.Contract.t list ->
  ?extra_helpers:(string * Kflex_runtime.Vm.helper) list ->
  ?backend:Kflex_runtime.Vm.backend ->
  kernel:Kflex_kernel.Helpers.t ->
  hook:Kflex_kernel.Hook.kind ->
  Kflex_bpf.Prog.t ->
  (loaded, Kflex_verifier.Verify.error) result
(** Verify, instrument and prepare an extension.

    - [mode] defaults to [Kflex]; pass [Ebpf] to get stock-eBPF behaviour
      (no heap, unbounded loops rejected) for baselines like BMC.
    - [heap] attaches an extension heap (§3.1); an allocator is created over
      it with [globals_size] bytes reserved past the runtime words, and
      translate-on-store is enabled automatically for shared heaps unless
      [options] overrides it.
    - [quantum] is the watchdog budget in cost units (§4.3).
    - [on_cancel] is the §4.3 return-code callback.

    When verification fails because an acquired resource has no single
    location at a join (the §4.3 object-table corner case), the loader
    retries with {!Kflex_kie.Spill.mitigate} applied — acquisitions spilled
    to unique stack slots — and loads the rewritten program on success. *)

val run_packet :
  loaded ->
  ?cpu:int ->
  ?stats:Kflex_runtime.Vm.stats ->
  ?backend:Kflex_runtime.Vm.backend ->
  Kflex_kernel.Packet.t ->
  Kflex_runtime.Vm.outcome
(** Deliver one packet to the extension at its hook: installs the packet in
    the kernel helper state, builds the hook context and executes.
    [backend] overrides the load-time default for this invocation. *)

val run_raw :
  loaded ->
  ?cpu:int ->
  ?stats:Kflex_runtime.Vm.stats ->
  ?backend:Kflex_runtime.Vm.backend ->
  ctx:Bytes.t ->
  unit ->
  Kflex_runtime.Vm.outcome
(** Execute with an arbitrary context block (non-network hooks, tests). *)

val globals_base : int64
(** Heap offset where extension globals start (64; offsets 0–63 are reserved
    for the runtime, including the [*terminate] word at 0). *)
