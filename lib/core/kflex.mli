(** KFlex — the public facade.

    Ties the whole pipeline of Figure 1 together: a bytecode extension is
    {e verified} for kernel-interface compliance (step 1, {!Kflex_verifier}),
    {e instrumented} by Kie with SFI guards and cancellation points (step 2,
    {!Kflex_kie}), and handed to the {e runtime} that executes it with
    memory safety and safe termination enforced (step 3, {!Kflex_runtime}).

    {[
      let kernel = Kflex_kernel.Helpers.create () in
      let heap = Kflex_runtime.Heap.create ~size:(1 lsl 20 |> Int64.of_int) () in
      match Kflex.load ~kernel ~heap ~hook:Kflex_kernel.Hook.Xdp prog with
      | Error e -> (* rejected by the verifier *)
      | Ok ext ->
          let outcome = Kflex.run_packet ext packet in
          ...
    ]} *)

type loaded = {
  ext : Kflex_runtime.Vm.ext;
  kie : Kflex_kie.Instrument.t;
  analysis : Kflex_verifier.Verify.analysis;
  heap : Kflex_runtime.Heap.t option;
  alloc : Kflex_runtime.Alloc.t option;
  kernel : Kflex_kernel.Helpers.t;
  hook : Kflex_kernel.Hook.kind;
  backend : Kflex_runtime.Vm.backend;  (** default engine for run calls *)
}

val contracts : Kflex_verifier.Contract.registry
(** The default helper contracts ({!Kflex_verifier.Contract.kflex_base}). *)

val jit_cache_stats : unit -> int * int * int
(** Compiled-program cache counters: [(hits, misses, entries)]. The cache is
    keyed by a digest of the instrumented instruction stream, so reloading
    the same program (fuzz oracles, repeated attaches) compiles once. *)

val load :
  ?mode:Kflex_verifier.Verify.mode ->
  ?options:Kflex_kie.Instrument.options ->
  ?heap:Kflex_runtime.Heap.t ->
  ?globals_size:int64 ->
  ?quantum:int ->
  ?on_cancel:(int64 -> int64) ->
  ?extra_contracts:Kflex_verifier.Contract.t list ->
  ?extra_helpers:(string * Kflex_runtime.Vm.helper) list ->
  ?backend:Kflex_runtime.Vm.backend ->
  kernel:Kflex_kernel.Helpers.t ->
  hook:Kflex_kernel.Hook.kind ->
  Kflex_bpf.Prog.t ->
  (loaded, Kflex_verifier.Verify.error) result
(** Verify, instrument and prepare an extension.

    - [mode] defaults to [Kflex]; pass [Ebpf] to get stock-eBPF behaviour
      (no heap, unbounded loops rejected) for baselines like BMC.
    - [heap] attaches an extension heap (§3.1); an allocator is created over
      it with [globals_size] bytes reserved past the runtime words, and
      translate-on-store is enabled automatically for shared heaps unless
      [options] overrides it.
    - [quantum] is the watchdog budget in cost units (§4.3).
    - [on_cancel] is the §4.3 return-code callback.

    When verification fails because an acquired resource has no single
    location at a join (the §4.3 object-table corner case), the loader
    retries with {!Kflex_kie.Spill.mitigate} applied — acquisitions spilled
    to unique stack slots — and loads the rewritten program on success. *)

val run_packet :
  loaded ->
  ?cpu:int ->
  ?stats:Kflex_runtime.Vm.stats ->
  ?backend:Kflex_runtime.Vm.backend ->
  Kflex_kernel.Packet.t ->
  Kflex_runtime.Vm.outcome
(** Deliver one packet to the extension at its hook: installs the packet in
    the kernel helper state, builds the hook context and executes.
    [backend] overrides the load-time default for this invocation. *)

val run_raw :
  loaded ->
  ?cpu:int ->
  ?stats:Kflex_runtime.Vm.stats ->
  ?backend:Kflex_runtime.Vm.backend ->
  ctx:Bytes.t ->
  unit ->
  Kflex_runtime.Vm.outcome
(** Execute with an arbitrary context block (non-network hooks, tests). *)

val globals_base : int64
(** Heap offset where extension globals start (64; offsets 0–63 are reserved
    for the runtime, including the [*terminate] word at 0). *)
