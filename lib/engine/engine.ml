module Vm = Kflex_runtime.Vm
module Heap = Kflex_runtime.Heap
module Hook = Kflex_kernel.Hook
module Packet = Kflex_kernel.Packet
module Helpers = Kflex_kernel.Helpers
module Socket = Kflex_kernel.Socket
module Cost = Kflex_kernel.Cost
module Map_ = Kflex_kernel.Map

type mode = [ `Deterministic | `Threaded ]

type handle = {
  aid : int;
  aname : string;
  ahook : Hook.kind;
  instances : Kflex.loaded array; (* one per shard *)
}

type run_result = {
  verdict : int64;
  executed : int;
  cancelled : int;
  cost : int;
  outcomes : Vm.outcome list;
}

type shard = {
  sid : int;
  prandom : Kflex_runtime.U64.cell; (* per-shard bpf_get_prandom_u32 stream *)
  clock : Kflex_runtime.U64.cell; (* per-shard bpf_ktime_get_ns virtual clock *)
  stats : Vm.stats; (* per-shard; only this shard writes it *)
  mutable events : int;
  mutable cancelled : int;
  mutable leaked : int;
  verdicts : (int64, int) Hashtbl.t;
  mutable vclock_ns : float; (* cost-derived timeline for the reaper *)
  seen_gen : int Atomic.t; (* last registry generation this shard observed *)
  (* threaded mode *)
  queue : (Hook.kind * Packet.t * (run_result -> unit) option) Queue.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable busy : bool;
  mutable domain : unit Domain.t option;
}

type t = {
  nshards : int;
  mode : mode;
  quantum : int option; (* default per-invocation cost quantum *)
  deadline_ns : float option; (* reaper deadline per invocation *)
  shards : shard array;
  reaper : Reaper.t;
  reg_m : Mutex.t; (* serialises attach/detach/replace *)
  snapshot : handle Chain.t Atomic.t; (* what shards execute *)
  mutable next_aid : int;
  running : bool Atomic.t;
  mutable reaper_domain : unit Domain.t option;
  mutable shared : Map_.t list;
      (* engine-owned cross-shard maps, in share order; every subsequent
         attach registers them (fds 3, 4, …) before the tenant's own
         [configure] runs. Appended under [reg_m]. *)
}

(* splitmix64 finaliser: decorrelate per-shard streams drawn from one seed *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make_shard ~seed sid =
  {
    sid;
    prandom =
      Kflex_runtime.U64.cell
        (Int64.logor (mix64 (Int64.add seed (Int64.of_int (sid + 1)))) 1L);
    clock = Kflex_runtime.U64.cell 0L;
    stats = Vm.fresh_stats ();
    events = 0;
    cancelled = 0;
    leaked = 0;
    verdicts = Hashtbl.create 8;
    vclock_ns = 0.0;
    seen_gen = Atomic.make 0;
    queue = Queue.create ();
    m = Mutex.create ();
    cv = Condition.create ();
    busy = false;
    domain = None;
  }

(* --- event execution --------------------------------------------------- *)

let record_verdict shard v =
  let n = try Hashtbl.find shard.verdicts v with Not_found -> 0 in
  Hashtbl.replace shard.verdicts v (n + 1)

(* Run one chain entry on a shard, under whichever watchdog regime the
   engine was built with. Deterministic + deadline: the shard itself polls
   the reaper from the VM's cancellation-site hook, with "now" derived from
   cost charged so far — byte-identical schedules across runs. Threaded +
   deadline: the reaper domain scans on the wall clock and flips the
   extension's cancel flag asynchronously, like a sibling CPU would. *)
let exec_entry t shard (inst : Kflex.loaded) pkt =
  let start_cost = Vm.total_cost shard.stats in
  let outcome =
    match (t.deadline_ns, t.mode) with
    | Some dl, `Deterministic ->
        let hit = ref false in
        let tok =
          Reaper.start_exec t.reaper ~now:shard.vclock_ns ~deadline_ns:dl
            ~cancel:(fun () -> hit := true)
        in
        let on_site () =
          let spent =
            float_of_int (Vm.total_cost shard.stats - start_cost)
          in
          Reaper.scan t.reaper ~now:(shard.vclock_ns +. (spent *. Cost.insn_ns));
          !hit
        in
        Helpers.set_packet inst.Kflex.kernel (Some pkt);
        let ctx = Hook.build_ctx pkt in
        let o =
          Vm.exec inst.Kflex.ext ~ctx ~cpu:shard.sid ~stats:shard.stats
            ~on_site ()
        in
        Helpers.set_packet inst.Kflex.kernel None;
        Reaper.end_exec t.reaper tok;
        o
    | Some dl, `Threaded ->
        let tok =
          Reaper.start_exec t.reaper
            ~now:(Unix.gettimeofday () *. 1e9)
            ~deadline_ns:dl
            ~cancel:(fun () -> Vm.cancel inst.Kflex.ext)
        in
        let o = Kflex.run_packet inst ~cpu:shard.sid ~stats:shard.stats pkt in
        Reaper.end_exec t.reaper tok;
        o
    | None, _ -> Kflex.run_packet inst ~cpu:shard.sid ~stats:shard.stats pkt
  in
  let cost = Vm.total_cost shard.stats - start_cost in
  shard.vclock_ns <- shard.vclock_ns +. (float_of_int cost *. Cost.insn_ns);
  (* Re-arm after any cancellation (the facade leaves the flag set and the
     paper's runtime unloads the extension; a multi-tenant engine instead
     treats cancellation as per-invocation). Also absorbs the benign race
     where the threaded reaper fires just after an invocation completed. *)
  if Vm.cancelled inst.Kflex.ext then Vm.reset_cancel inst.Kflex.ext;
  (outcome, cost)

let exec_event t shard snap ~hook pkt =
  let chain = Chain.get snap hook in
  let verdict = ref (Hook.pass_verdict hook) in
  let executed = ref 0 in
  let cancelled = ref 0 in
  let cost = ref 0 in
  let outcomes = ref [] in
  let n = Array.length chain in
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ && !i < n do
    let inst = chain.(!i).instances.(shard.sid) in
    let outcome, c = exec_entry t shard inst pkt in
    incr executed;
    cost := !cost + c;
    outcomes := outcome :: !outcomes;
    (match outcome with
    | Vm.Finished v -> verdict := v
    | Vm.Cancelled { ledger_leaked; ret; _ } ->
        incr cancelled;
        shard.cancelled <- shard.cancelled + 1;
        shard.leaked <- shard.leaked + ledger_leaked;
        verdict := ret);
    continue_ := Chain.continue_on hook !verdict;
    incr i
  done;
  shard.events <- shard.events + 1;
  (* Event boundary = quiescent state: this shard holds no reference into
     any shared RCU snapshot between events, so announce the epoch and let
     the map reclaim retired versions every CPU has moved past. *)
  List.iter
    (fun m ->
      if Map_.kind m = Map_.Rcu_shared then
        Map_.rcu_quiesce m ~cpu:shard.sid)
    t.shared;
  record_verdict shard !verdict;
  {
    verdict = !verdict;
    executed = !executed;
    cancelled = !cancelled;
    cost = !cost;
    outcomes = List.rev !outcomes;
  }

(* --- threaded workers --------------------------------------------------- *)

let worker t shard =
  let rec loop () =
    Mutex.lock shard.m;
    while Queue.is_empty shard.queue && Atomic.get t.running do
      Condition.wait shard.cv shard.m
    done;
    match Queue.take_opt shard.queue with
    | None ->
        (* shutting down with an empty queue *)
        Mutex.unlock shard.m
    | Some (hook, pkt, on_done) ->
        shard.busy <- true;
        Mutex.unlock shard.m;
        let snap = Atomic.get t.snapshot in
        Atomic.set shard.seen_gen (Chain.generation snap);
        let r = exec_event t shard snap ~hook pkt in
        (match on_done with Some f -> f r | None -> ());
        Mutex.lock shard.m;
        shard.busy <- false;
        Mutex.unlock shard.m;
        loop ()
  in
  loop ()

let reaper_loop t =
  while Atomic.get t.running do
    Unix.sleepf 0.0005;
    Reaper.scan t.reaper ~now:(Unix.gettimeofday () *. 1e9)
  done

(* --- lifecycle ---------------------------------------------------------- *)

let create ?(shards = 1) ?(mode = `Deterministic) ?quantum ?deadline_ns
    ?(seed = 0x6b666c6578L) () =
  if shards < 1 then invalid_arg "Engine.create: shards < 1";
  let t =
    {
      nshards = shards;
      mode;
      quantum;
      deadline_ns;
      shards = Array.init shards (make_shard ~seed);
      reaper = Reaper.create ();
      reg_m = Mutex.create ();
      snapshot = Atomic.make Chain.empty;
      next_aid = 0;
      running = Atomic.make true;
      reaper_domain = None;
      shared = [];
    }
  in
  (match mode with
  | `Deterministic -> ()
  | `Threaded ->
      Array.iter
        (fun s -> s.domain <- Some (Domain.spawn (fun () -> worker t s)))
        t.shards;
      if deadline_ns <> None then
        t.reaper_domain <- Some (Domain.spawn (fun () -> reaper_loop t)));
  t

let shards t = t.nshards
let mode t = t.mode
let reaper t = t.reaper
let epoch t = Chain.generation (Atomic.get t.snapshot)
let chain_length t hook = Chain.length (Atomic.get t.snapshot) hook

let shard_helpers shard =
  [
    ("bpf_get_prandom_u32", Vm.prandom_helper shard.prandom);
    ("bpf_ktime_get_ns", Vm.ktime_helper shard.clock);
  ]

let seed_shard t ~shard ?(vtime = 0L) prandom =
  let s = t.shards.(shard) in
  Kflex_runtime.U64.cell_set s.prandom (Int64.logor prandom 1L);
  Kflex_runtime.U64.cell_set s.clock vtime

(* Quiescence: an attach/detach/replace publishes generation [g]; an old
   snapshot can only be in use by a shard mid-event. Deterministic mode runs
   events synchronously inside run_packet/run_on, so publication alone is
   quiescence. Threaded mode waits until every shard has either observed
   [g] or is provably idle (empty queue, not executing) — it will read the
   new snapshot before its next event. *)
let quiesce t g =
  (match t.mode with
  | `Deterministic ->
      Array.iter (fun s -> Atomic.set s.seen_gen g) t.shards
  | `Threaded ->
      Array.iter
        (fun s ->
          let rec wait () =
            if Atomic.get s.seen_gen >= g then ()
            else begin
              let idle =
                Mutex.protect s.m (fun () ->
                    Queue.is_empty s.queue && not s.busy)
              in
              if idle then ()
              else begin
                Unix.sleepf 0.0002;
                wait ()
              end
            end
          in
          wait ())
        t.shards);
  (* Registry quiescence doubles as an RCU grace period: once every shard
     has observed generation [g] (or is idle), no reader still holds a
     snapshot retired before the publication — reclaim them all. *)
  List.iter Map_.rcu_synchronize t.shared

(* Engine-owned shared maps.  Sharing must precede the attaches that use
   the map: every later attach registers the shared maps — in share order,
   so they get the same fds (3, 4, …) on every shard — into the instance's
   per-shard registry before the tenant's own [configure] runs.  The
   returned fd is what programs pass to the map helpers. *)
let share_map t m =
  Mutex.protect t.reg_m (fun () ->
      let fd = Int64.of_int (3 + List.length t.shared) in
      t.shared <- t.shared @ [ m ];
      fd)

let shared_maps t = t.shared

let build_handle t ?name ?mode ?options ?globals_size ?quantum ?heap_size
    ?kbase ?backend ?deny_helpers ?configure ~hook prog =
  match Kflex.admit ?mode ?options ?heap_size ?deny_helpers ?backend ~hook prog with
  | Error e -> Error e
  | Ok admitted ->
      let aid = t.next_aid in
      t.next_aid <- t.next_aid + 1;
      let aname =
        match name with Some n -> n | None -> Printf.sprintf "ext%d" aid
      in
      let quantum = match quantum with Some q -> Some q | None -> t.quantum in
      let instances =
        Array.map
          (fun shard ->
            let heap =
              Option.map (fun size -> Heap.create ?kbase ~size ()) heap_size
            in
            let kernel = Helpers.create () in
            List.iter
              (fun m ->
                ignore (Map_.register (Helpers.maps kernel) m : int64))
              t.shared;
            let inst =
              Kflex.instantiate ?heap ?globals_size ?quantum ?backend
                ~extra_helpers:(shard_helpers shard) ~kernel admitted
            in
            (match configure with
            | Some f -> f ~shard:shard.sid kernel heap
            | None -> ());
            inst)
          t.shards
      in
      Ok { aid; aname; ahook = hook; instances }

let attach t ?name ?mode ?options ?globals_size ?quantum ?heap_size ?kbase
    ?backend ?deny_helpers ?configure ~hook prog =
  Mutex.protect t.reg_m (fun () ->
      match
        build_handle t ?name ?mode ?options ?globals_size ?quantum ?heap_size
          ?kbase ?backend ?deny_helpers ?configure ~hook prog
      with
      | Error e -> Error e
      | Ok h ->
          let snap = Chain.attach (Atomic.get t.snapshot) hook h in
          Atomic.set t.snapshot snap;
          quiesce t (Chain.generation snap);
          Ok h)

let detach t h =
  Mutex.protect t.reg_m (fun () ->
      let snap, removed =
        Chain.detach (Atomic.get t.snapshot) h.ahook (fun a -> a.aid = h.aid)
      in
      if removed <> [] then begin
        Atomic.set t.snapshot snap;
        (* the epoch wait: no shard still executes against the departed
           heap once every shard passed the new generation *)
        quiesce t (Chain.generation snap)
      end)

let replace t h ?name ?mode ?options ?globals_size ?quantum ?heap_size ?kbase
    ?backend ?deny_helpers ?configure prog =
  Mutex.protect t.reg_m (fun () ->
      match
        build_handle t ?name ?mode ?options ?globals_size ?quantum ?heap_size
          ?kbase ?backend ?deny_helpers ?configure ~hook:h.ahook prog
      with
      | Error e -> Error e
      | Ok h' -> (
          let snap, old =
            Chain.replace (Atomic.get t.snapshot) h.ahook
              (fun a -> a.aid = h.aid)
              h'
          in
          match old with
          | None -> invalid_arg "Engine.replace: handle not attached"
          | Some _ ->
              Atomic.set t.snapshot snap;
              quiesce t (Chain.generation snap);
              Ok h'))

let handle_name h = h.aname
let handle_hook h = h.ahook
let instance h ~shard = h.instances.(shard)

(* --- event delivery ----------------------------------------------------- *)

(* Flow hash: same 5-tuple-ish mix every run, so a flow's events always land
   on the same shard (per-flow state lives in that shard's heaps) and shard
   placement is reproducible. *)
let shard_of t (pkt : Packet.t) =
  let h =
    (pkt.Packet.src_port * 0x9e3779b1)
    lxor (pkt.Packet.dst_port * 0x85ebca77)
    lxor (Int64.to_int (Packet.proto_code pkt.Packet.proto) * 0xc2b2ae35)
  in
  (h land max_int) mod t.nshards

let run_on t ~shard ?(hook = Hook.Xdp) pkt =
  if t.mode <> `Deterministic then
    invalid_arg "Engine.run_on: deterministic mode only (use submit)";
  let snap = Atomic.get t.snapshot in
  let s = t.shards.(shard) in
  Atomic.set s.seen_gen (Chain.generation snap);
  exec_event t s snap ~hook pkt

let run_packet t ?hook pkt = run_on t ~shard:(shard_of t pkt) ?hook pkt

let submit t ?(hook = Hook.Xdp) ?on_done pkt =
  if t.mode <> `Threaded then
    invalid_arg "Engine.submit: threaded mode only (use run_packet)";
  let s = t.shards.(shard_of t pkt) in
  Mutex.protect s.m (fun () ->
      Queue.push (hook, pkt, on_done) s.queue;
      Condition.signal s.cv)

let drain t =
  match t.mode with
  | `Deterministic -> ()
  | `Threaded ->
      Array.iter
        (fun s ->
          let rec wait () =
            let idle =
              Mutex.protect s.m (fun () -> Queue.is_empty s.queue && not s.busy)
            in
            if not idle then begin
              Unix.sleepf 0.0002;
              wait ()
            end
          in
          wait ())
        t.shards

let shutdown t =
  if Atomic.get t.running then begin
    drain t;
    Atomic.set t.running false;
    Array.iter
      (fun s ->
        Mutex.protect s.m (fun () -> Condition.broadcast s.cv);
        match s.domain with
        | Some d ->
            Domain.join d;
            s.domain <- None
        | None -> ())
      t.shards;
    match t.reaper_domain with
    | Some d ->
        Domain.join d;
        t.reaper_domain <- None
    | None -> ()
  end

(* --- observation -------------------------------------------------------- *)

type totals = {
  events : int;
  cancelled : int;
  leaked : int;
  verdicts : (int64 * int) list; (* sorted by verdict *)
  stats : Vm.stats; (* merged across shards *)
}

let shard_stats t shard = t.shards.(shard).stats
let shard_events t shard = t.shards.(shard).events
let shard_cancelled t shard = t.shards.(shard).cancelled

let shard_verdicts t shard =
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) t.shards.(shard).verdicts []
  |> List.sort compare

(* Aggregation is read-side only: shards mutate nothing but their own
   records on the hot path; totals fold copies after a drain. *)
let totals t =
  let stats = Vm.fresh_stats () in
  let verdicts = Hashtbl.create 8 in
  let events = ref 0 and cancelled = ref 0 and leaked = ref 0 in
  Array.iter
    (fun (s : shard) ->
      events := !events + s.events;
      cancelled := !cancelled + s.cancelled;
      leaked := !leaked + s.leaked;
      stats.Vm.insns <- stats.Vm.insns + s.stats.Vm.insns;
      stats.Vm.guards <- stats.Vm.guards + s.stats.Vm.guards;
      stats.Vm.checkpoints <- stats.Vm.checkpoints + s.stats.Vm.checkpoints;
      stats.Vm.helper_calls <- stats.Vm.helper_calls + s.stats.Vm.helper_calls;
      stats.Vm.helper_cost <- stats.Vm.helper_cost + s.stats.Vm.helper_cost;
      Hashtbl.iter
        (fun v n ->
          let c = try Hashtbl.find verdicts v with Not_found -> 0 in
          Hashtbl.replace verdicts v (c + n))
        s.verdicts)
    t.shards;
  {
    events = !events;
    cancelled = !cancelled;
    leaked = !leaked;
    verdicts =
      Hashtbl.fold (fun v n acc -> (v, n) :: acc) verdicts []
      |> List.sort compare;
    stats;
  }

let socket_refs t =
  let snap = Atomic.get t.snapshot in
  let sum = ref 0 in
  List.iter
    (fun hook ->
      Array.iter
        (fun h ->
          Array.iter
            (fun (inst : Kflex.loaded) ->
              sum :=
                !sum + Socket.total_refs (Helpers.sockets inst.Kflex.kernel))
            h.instances)
        (Chain.get snap hook))
    [ Hook.Xdp; Hook.Sk_skb; Hook.Lsm ];
  !sum
