(** Hook chains: the registry mapping each {!Kflex_kernel.Hook.kind} to an
    ordered chain of attachments.

    A value is immutable and generation-stamped: every lifecycle operation
    returns a new registry with [gen] bumped. The engine publishes the
    current registry through one [Atomic.t] — shards read a consistent
    snapshot with a single load (no locks on the hot path), and detach
    quiesces by waiting for every shard to observe (or be idle past) the
    new generation, the epoch scheme of RCU-style reclamation. *)

type 'a t

val empty : 'a t

val generation : 'a t -> int
(** Monotonic epoch; bumped by {!attach}, {!detach} and {!replace}. *)

val get : 'a t -> Kflex_kernel.Hook.kind -> 'a array
(** The chain at a hook, in attach order. *)

val length : 'a t -> Kflex_kernel.Hook.kind -> int

val attach : 'a t -> Kflex_kernel.Hook.kind -> 'a -> 'a t
(** Append to the hook's chain (new programs run last, like
    [BPF_F_LINK] multi-prog attachment). *)

val detach : 'a t -> Kflex_kernel.Hook.kind -> ('a -> bool) -> 'a t * 'a list
(** Remove every attachment matching the predicate; returns the removals
    (for the caller to tear down {e after} quiescence). The generation is
    unchanged when nothing matched. *)

val replace :
  'a t -> Kflex_kernel.Hook.kind -> ('a -> bool) -> 'a -> 'a t * 'a option
(** Swap the first match in place — chain position preserved, one epoch.
    [None] when nothing matched (registry unchanged). *)

val continue_on : Kflex_kernel.Hook.kind -> int64 -> bool
(** Tail-call verdict composition: [true] iff the verdict is the hook's
    {!Kflex_kernel.Hook.pass_verdict}, i.e. the event falls through to the
    next program in the chain. First drop/tx/deny wins. *)
