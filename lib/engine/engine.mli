(** The multi-tenant extension engine.

    Lifts the one-program facade ({!Kflex.load} / {!Kflex.run_packet}) to
    the shape the paper evaluates (§5): N per-CPU {e shards}, each owning
    its own heaps, kernel helper state, {!Kflex_runtime.Vm.stats} and
    PRNG/clock streams; per-hook {e chains} of attached extensions with
    tail-call verdict composition; an {e admission pipeline}
    (verify → instrument → compile, via {!Kflex.admit} and the shared
    compiled-program cache) run once per attach; and a central cancellation
    {e reaper} ({!Reaper}) that injects cancellation into invocations past
    their deadline.

    Two execution modes:
    - [`Deterministic] (default): events run synchronously on their flow
      shard in the caller's thread — single-shard runs are bit-identical to
      the facade; the sim and tests use this.
    - [`Threaded]: one OCaml 5 domain per shard consuming a per-shard queue,
      plus a reaper domain scanning on the wall clock when a deadline is
      configured.

    Chain registry updates are epoch-quiesced: mutations publish an
    immutable generation-stamped snapshot ({!Chain}) through one atomic,
    and detach/replace wait until every shard has observed the new
    generation (or is idle), so teardown never races a heap still in use. *)

type t

type mode = [ `Deterministic | `Threaded ]

type handle
(** An attachment: one admitted program instantiated on every shard. *)

val create :
  ?shards:int ->
  ?mode:mode ->
  ?quantum:int ->
  ?deadline_ns:float ->
  ?seed:int64 ->
  unit ->
  t
(** [shards] defaults to 1; [quantum] is the default per-invocation cost
    budget for attached programs (unset = the VM default); [deadline_ns]
    arms the reaper with a per-invocation deadline in (virtual or wall)
    nanoseconds; [seed] derives each shard's [bpf_get_prandom_u32] stream.
    Threaded engines spawn their domains here — call {!shutdown} when
    done. *)

val attach :
  t ->
  ?name:string ->
  ?mode:Kflex_verifier.Verify.mode ->
  ?options:Kflex_kie.Instrument.options ->
  ?globals_size:int64 ->
  ?quantum:int ->
  ?heap_size:int64 ->
  ?kbase:int64 ->
  ?backend:Kflex_runtime.Vm.backend ->
  ?deny_helpers:string list ->
  ?configure:
    (shard:int -> Kflex_kernel.Helpers.t -> Kflex_runtime.Heap.t option -> unit) ->
  hook:Kflex_kernel.Hook.kind ->
  Kflex_bpf.Prog.t ->
  (handle, Kflex_verifier.Verify.error) result
(** Admit the program once ({!Kflex.admit}: verify with the §4.3
    spill-retry, instrument, compile through the shared cache when
    [backend] is [`Compiled]), then instantiate it on every shard —
    [heap_size] gives each shard its own private heap (at [kbase] if
    supplied), and each instance gets fresh kernel helper state plus the
    shard's PRNG/clock helper overrides. [deny_helpers] is the per-tenant
    admission policy ({!Kflex.admit}) — e.g. deny [bpf_map_lock] to a
    tenant that must not touch spin-locked shared values. [configure] runs
    once per shard after instantiation (listen on sockets, populate heap
    pages, …); engine-shared maps ({!share_map}) are registered first, so
    tenant-private maps get fds after theirs. The new program is appended
    to [hook]'s chain. *)

val detach : t -> handle -> unit
(** Remove from the chain and wait for epoch quiescence; idempotent. *)

val replace :
  t ->
  handle ->
  ?name:string ->
  ?mode:Kflex_verifier.Verify.mode ->
  ?options:Kflex_kie.Instrument.options ->
  ?globals_size:int64 ->
  ?quantum:int ->
  ?heap_size:int64 ->
  ?kbase:int64 ->
  ?backend:Kflex_runtime.Vm.backend ->
  ?deny_helpers:string list ->
  ?configure:
    (shard:int -> Kflex_kernel.Helpers.t -> Kflex_runtime.Heap.t option -> unit) ->
  Kflex_bpf.Prog.t ->
  (handle, Kflex_verifier.Verify.error) result
(** Atomically swap a live attachment for a freshly admitted program at the
    same chain position (one epoch, O(1) chain work — admission is cached).
    The replacement is instantiated fresh: private maps registered by the
    old attachment's [configure] do not survive (their fds go stale), while
    engine-shared maps ({!share_map}) persist and are re-registered at the
    same fds. *)

(** {2 Shared maps} *)

val share_map : t -> Kflex_kernel.Map.t -> int64
(** Hand the engine a cross-shard map. Every {e subsequent} attach/replace
    registers it into each instance's per-shard registry — in share order,
    before the tenant's [configure] — so the returned fd (3, 4, … in share
    order) is valid for every later attachment on every shard. Create
    Percpu/Rcu_shared maps with [~cpus] ≥ the engine's shard count. The
    engine announces a per-shard RCU quiescent state after every event and
    a full grace period at each registry quiescence (attach/detach/replace),
    reclaiming retired snapshots. *)

val shared_maps : t -> Kflex_kernel.Map.t list
(** The maps handed to {!share_map}, in share (= fd) order. *)

type run_result = {
  verdict : int64;  (** composed chain verdict *)
  executed : int;  (** chain entries that ran *)
  cancelled : int;  (** entries cancelled during this event *)
  cost : int;  (** cost units charged across the chain *)
  outcomes : Kflex_runtime.Vm.outcome list;  (** per entry, chain order *)
}

val shard_of : t -> Kflex_kernel.Packet.t -> int
(** The flow hash: deterministic shard placement by (proto, ports). *)

val run_packet :
  t -> ?hook:Kflex_kernel.Hook.kind -> Kflex_kernel.Packet.t -> run_result
(** Deliver one event to its flow shard's chain (default hook [Xdp]),
    synchronously. Deterministic mode only. *)

val run_on :
  t ->
  shard:int ->
  ?hook:Kflex_kernel.Hook.kind ->
  Kflex_kernel.Packet.t ->
  run_result
(** Like {!run_packet} on an explicit shard — the DES closed loop routes
    placement itself. Deterministic mode only. *)

val submit :
  t ->
  ?hook:Kflex_kernel.Hook.kind ->
  ?on_done:(run_result -> unit) ->
  Kflex_kernel.Packet.t ->
  unit
(** Threaded mode: enqueue an event on its flow shard. [on_done] runs on
    the shard's domain immediately after the chain executes — the
    open-loop server records per-request completion timestamps with it
    (shard-local, so callbacks for one shard never race each other). *)

val drain : t -> unit
(** Block until every shard queue is empty and no event is executing. *)

val shutdown : t -> unit
(** Drain, then stop and join worker/reaper domains. Idempotent; a
    deterministic engine needs no shutdown but tolerates one. *)

(** {2 Observation} *)

type totals = {
  events : int;
  cancelled : int;
  leaked : int;  (** ledger entries leaked by cancellations — invariantly 0 *)
  verdicts : (int64 * int) list;  (** verdict histogram, sorted *)
  stats : Kflex_runtime.Vm.stats;  (** merged across shards *)
}

val totals : t -> totals
(** Fold the per-shard records (read-side aggregation — the hot path only
    ever touches shard-local state). Call after {!drain} in threaded mode. *)

val shards : t -> int
val mode : t -> mode
val shard_stats : t -> int -> Kflex_runtime.Vm.stats
val shard_events : t -> int -> int
val shard_cancelled : t -> int -> int
val shard_verdicts : t -> int -> (int64 * int) list

val socket_refs : t -> int
(** Outstanding socket references across every live instance — 0 between
    events (cancellation unwinding guarantees it). *)

val reaper : t -> Reaper.t
(** The engine's reaper — tests register §4.4 time-slices on it. *)

val epoch : t -> int
(** Current registry generation. *)

val chain_length : t -> Kflex_kernel.Hook.kind -> int

val seed_shard : t -> shard:int -> ?vtime:int64 -> int64 -> unit
(** Reset a shard's PRNG (as {!Kflex_runtime.Vm.seed_prandom} would) and
    virtual clock — differential tests align shard 0 with the facade's
    global streams. *)

val handle_name : handle -> string
val handle_hook : handle -> Kflex_kernel.Hook.kind

val instance : handle -> shard:int -> Kflex.loaded
(** The per-shard instantiation behind an attachment (tests inspect heaps
    and kernels through it). *)
