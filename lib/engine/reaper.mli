(** The central cancellation reaper (§4.3 done the way the kernel does it).

    Per-invocation cost quanta catch runaway loops from {e inside} the VM;
    the reaper is the complementary {e outside} watchdog: every in-flight
    invocation registers with a wall/virtual-time deadline, and a periodic
    scan injects cancellation — via each invocation's [cancel] closure,
    which flips the extension's cancel flag so the next cancellation point
    faults and unwinds through the static object table — into any that
    overstayed. It also watches {!Kflex_runtime.Timeslice} values for §4.4
    lock holders owing a preemption, force-preempting each at most once.

    In the engine's threaded mode a dedicated domain calls {!scan} on the
    wall clock; in deterministic mode the executing shard calls it from the
    VM's cancellation-site hook with cost-derived virtual time, so tests
    and the fuzzer replay byte-identical schedules. *)

type t

type token
(** One registered in-flight invocation. *)

val create : unit -> t

val start_exec :
  t -> now:float -> deadline_ns:float -> cancel:(unit -> unit) -> token
(** Register an invocation starting at [now] whose deadline is
    [now +. deadline_ns]. [cancel] is invoked (under the reaper lock, at
    most once) when a scan finds the deadline passed. *)

val end_exec : t -> token -> unit
(** Deregister on completion; a token never fires after [end_exec]. *)

val watch : t -> Kflex_runtime.Timeslice.t -> unit
(** Watch a §4.4 time-slice: scans {!Kflex_runtime.Timeslice.force_preempt}
    it (once) as soon as [should_preempt] holds. *)

val unwatch : t -> Kflex_runtime.Timeslice.t -> unit

val scan : t -> now:float -> unit
(** One watchdog pass at time [now] (ns). *)

val cancellations : t -> int
(** Total cancellations injected. *)

val preemptions : t -> int
(** Total time-slice force-preemptions issued. *)
