module Hook = Kflex_kernel.Hook

type 'a t = {
  gen : int;
  xdp : 'a array;
  sk_skb : 'a array;
  lsm : 'a array;
}

let empty = { gen = 0; xdp = [||]; sk_skb = [||]; lsm = [||] }

let get t = function
  | Hook.Xdp -> t.xdp
  | Hook.Sk_skb -> t.sk_skb
  | Hook.Lsm -> t.lsm

let set t kind chain =
  let t = { t with gen = t.gen + 1 } in
  match kind with
  | Hook.Xdp -> { t with xdp = chain }
  | Hook.Sk_skb -> { t with sk_skb = chain }
  | Hook.Lsm -> { t with lsm = chain }

let generation t = t.gen
let length t kind = Array.length (get t kind)

let attach t kind a = set t kind (Array.append (get t kind) [| a |])

let detach t kind pred =
  let chain = get t kind in
  let removed = Array.to_list (Array.of_seq (Seq.filter pred (Array.to_seq chain))) in
  if removed = [] then (t, [])
  else
    ( set t kind
        (Array.of_seq (Seq.filter (fun a -> not (pred a)) (Array.to_seq chain))),
      removed )

let replace t kind pred a' =
  let chain = get t kind in
  let old = ref None in
  let chain' =
    Array.map
      (fun a ->
        if !old = None && pred a then begin
          old := Some a;
          a'
        end
        else a)
      chain
  in
  match !old with None -> (t, None) | Some o -> (set t kind chain', Some o)

let continue_on kind verdict = verdict = Hook.pass_verdict kind
