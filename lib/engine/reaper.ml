module Timeslice = Kflex_runtime.Timeslice

type token = {
  deadline : float;
  cancel : unit -> unit;
  mutable live : bool;
}

type watched = { ts : Timeslice.t; mutable forced : bool }

type t = {
  m : Mutex.t;
  mutable execs : token list;
  mutable watches : watched list;
  mutable cancellations : int;
  mutable preemptions : int;
}

let create () =
  {
    m = Mutex.create ();
    execs = [];
    watches = [];
    cancellations = 0;
    preemptions = 0;
  }

let start_exec t ~now ~deadline_ns ~cancel =
  let tok = { deadline = now +. deadline_ns; cancel; live = true } in
  Mutex.protect t.m (fun () -> t.execs <- tok :: t.execs);
  tok

let end_exec t tok =
  Mutex.protect t.m (fun () ->
      tok.live <- false;
      t.execs <- List.filter (fun e -> e.live) t.execs)

let watch t ts =
  Mutex.protect t.m (fun () -> t.watches <- { ts; forced = false } :: t.watches)

let unwatch t ts =
  Mutex.protect t.m (fun () ->
      t.watches <- List.filter (fun w -> w.ts != ts) t.watches)

let scan t ~now =
  Mutex.protect t.m (fun () ->
      (* §4.4: a lock holder past its time slice is preempted once — the
         extension spinning on its lock then stalls until the watchdog
         cancels it below *)
      List.iter
        (fun w ->
          if (not w.forced) && Timeslice.should_preempt w.ts ~now then begin
            ignore (Timeslice.force_preempt w.ts : Timeslice.t);
            w.forced <- true;
            t.preemptions <- t.preemptions + 1
          end)
        t.watches;
      (* §4.3: invocations past their deadline get cancellation injected;
         the extension faults at its next cancellation point and unwinds
         through the static object table *)
      List.iter
        (fun e ->
          if e.live && now > e.deadline then begin
            e.live <- false;
            t.cancellations <- t.cancellations + 1;
            e.cancel ()
          end)
        t.execs;
      t.execs <- List.filter (fun e -> e.live) t.execs)

let cancellations t = Mutex.protect t.m (fun () -> t.cancellations)
let preemptions t = Mutex.protect t.m (fun () -> t.preemptions)
