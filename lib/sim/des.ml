type t = {
  q : (unit -> unit) Heapq.t;
  mutable now : float;
  mutable processed : int;
}

let create () = { q = Heapq.create (); now = 0.0; processed = 0 }
let now t = t.now

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Des.schedule: negative delay";
  Heapq.push t.q (t.now +. delay) f

let run ?until t =
  let continue = ref true in
  while !continue do
    match Heapq.pop t.q with
    | None -> continue := false
    | Some (time, f) -> (
        match until with
        | Some u when time > u ->
            t.now <- u;
            continue := false
        | _ ->
            t.now <- time;
            t.processed <- t.processed + 1;
            f ())
  done

let events_processed t = t.processed
