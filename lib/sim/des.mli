(** A small discrete-event simulation engine.

    Plays the role of the paper's RFC 2544 testbed (§5): virtual time in
    nanoseconds, an event loop, and nothing else — the closed-loop
    client/server model is built on top in {!Closed_loop}. *)

type t

val create : unit -> t
val now : t -> float
(** Current virtual time in ns. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a thunk [delay] ns from now (events at equal times run in schedule
    order). *)

val run : ?until:float -> t -> unit
(** Drain the event queue, optionally stopping once virtual time would
    exceed [until]. *)

val events_processed : t -> int
