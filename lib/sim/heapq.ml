type 'a entry = { key : float; seq : int; v : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable n : int;
  mutable seq : int;
}

let create () = { arr = [||]; n = 0; seq = 0 }

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let push t key v =
  if t.n = Array.length t.arr then begin
    let cap = if t.n = 0 then 64 else 2 * t.n in
    let bigger = Array.make cap { key; seq = 0; v } in
    Array.blit t.arr 0 bigger 0 t.n;
    t.arr <- bigger
  end;
  let e = { key; seq = t.seq; v } in
  t.seq <- t.seq + 1;
  t.arr.(t.n) <- e;
  t.n <- t.n + 1;
  (* sift up *)
  let i = ref (t.n - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t.arr.(!i) t.arr.(parent) then begin
      let tmp = t.arr.(parent) in
      t.arr.(parent) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.arr.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.arr.(0) <- t.arr.(t.n);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.n && less t.arr.(l) t.arr.(!smallest) then smallest := l;
        if r < t.n && less t.arr.(r) t.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.arr.(!smallest) in
          t.arr.(!smallest) <- t.arr.(!i);
          t.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.key, top.v)
  end

let size t = t.n
let is_empty t = t.n = 0
