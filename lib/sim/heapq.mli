(** Binary min-heap priority queue for the event loop. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Smallest key first; FIFO among equal keys. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
