(** Open-loop engine runner in virtual time.

    Unlike {!Closed_loop}, arrivals follow a pre-drawn schedule that never
    waits for completions, so offered load is a free parameter and
    overload (offered > capacity) is reachable. Shards are independent
    FIFO lanes: each event starts at [max arrival lane_free] and occupies
    the lane for [ns_of_cost cost] with the chain's real executed cost.

    Latency is measured from the {e scheduled} arrival time — including
    queueing delay — which avoids the coordinated-omission bug of
    measuring from dequeue. *)

type event = {
  at_ns : float;  (** scheduled arrival (generation) time *)
  hook : Kflex_kernel.Hook.kind;
  pkt : Kflex_kernel.Packet.t;
}

type result = {
  throughput_mops : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  completed : int;
  cancelled : int;  (** chain entries cancelled by the reaper *)
  span_ns : float;  (** first arrival to last completion, virtual ns *)
  digest : int64;
      (** order-sensitive fold of every (index, verdict, cancelled) —
          bit-equal across deterministic same-seed runs *)
}

val mix : int64 -> int64 -> int64
(** The digest step (splitmix64 finalizer over [h xor x]); exposed so
    wall-clock harnesses fold the same stream. *)

val run_engine :
  ns_of_cost:(int -> float) ->
  Kflex_engine.Engine.t ->
  event array ->
  result
(** One pass over [events] (must be sorted by [at_ns]; raises
    [Invalid_argument] otherwise) against a [`Deterministic] engine.
    Placement uses the engine's flow hash. *)
