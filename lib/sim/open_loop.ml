(* The open-loop counterpart of {!Closed_loop.run_engine}.

   The closed loop regulates itself: a client only issues its next request
   after the previous reply lands, so offered load can never exceed
   capacity and overload is unreachable. The open loop severs that
   feedback — every request carries an arrival time drawn from the
   generator's schedule ({!Kflex_workload.Arrivals}), independent of when
   (or whether) earlier requests completed. Above capacity the per-shard
   queues grow without bound and latency diverges: exactly the regime the
   paper's §5 tail-latency experiments probe.

   Virtual-time service model: shards are independent FIFO lanes. Events
   arrive pre-sorted by schedule time; a shard starts each event at
   [max arrival free_at] and holds the lane for [ns_of_cost cost], where
   cost is the real instruction cost of executing the chain
   ([Engine.run_on], deterministic mode). Because FIFO order within a
   shard equals global arrival order, no event heap is needed — one pass
   suffices.

   Latency is charged from the request's {e scheduled} arrival time, not
   from when the shard dequeued it. Measuring from dequeue would silently
   excuse queueing delay — the coordinated-omission bug — and overload
   would look flat instead of divergent.

   The verdict digest folds (index, verdict, cancelled) of every event
   through a splitmix64-style mixer, in arrival order. Two runs of the
   same seeded schedule on deterministic engines must produce bit-equal
   digests — the serve subsystem's determinism battery asserts this. *)

type event = {
  at_ns : float;  (** scheduled arrival (generation) time *)
  hook : Kflex_kernel.Hook.kind;
  pkt : Kflex_kernel.Packet.t;
}

type result = {
  throughput_mops : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  completed : int;
  cancelled : int;
  span_ns : float;
  digest : int64;
}

let mix h x =
  let open Int64 in
  let z = add (logxor h x) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let run_engine ~ns_of_cost eng (events : event array) =
  let nshards = Kflex_engine.Engine.shards eng in
  let free_at = Array.make nshards 0.0 in
  let lat = Array.init nshards (fun _ -> Kflex_workload.Stats.create ()) in
  let digest = ref 0x6b5f5a3f2c9d1e47L in
  let cancelled = ref 0 in
  let t0 = ref infinity and t_end = ref 0.0 in
  let prev_at = ref neg_infinity in
  Array.iteri
    (fun idx ev ->
      if ev.at_ns < !prev_at then
        invalid_arg "Open_loop.run_engine: events not sorted by at_ns";
      prev_at := ev.at_ns;
      let sh = Kflex_engine.Engine.shard_of eng ev.pkt in
      let start = Float.max ev.at_ns free_at.(sh) in
      let r = Kflex_engine.Engine.run_on eng ~shard:sh ~hook:ev.hook ev.pkt in
      let fin = start +. ns_of_cost r.Kflex_engine.Engine.cost in
      free_at.(sh) <- fin;
      if ev.at_ns < !t0 then t0 := ev.at_ns;
      if fin > !t_end then t_end := fin;
      Kflex_workload.Stats.add lat.(sh) ((fin -. ev.at_ns) /. 1000.0);
      cancelled := !cancelled + r.Kflex_engine.Engine.cancelled;
      digest := mix !digest (Int64.of_int idx);
      digest := mix !digest r.Kflex_engine.Engine.verdict;
      digest := mix !digest (Int64.of_int r.Kflex_engine.Engine.cancelled))
    events;
  let merged =
    Array.fold_left Kflex_workload.Stats.merge
      (Kflex_workload.Stats.create ())
      lat
  in
  let completed = Kflex_workload.Stats.count merged in
  let span_ns = if completed > 0 then !t_end -. !t0 else 0.0 in
  {
    throughput_mops =
      (if span_ns > 0.0 then float_of_int completed /. span_ns *. 1000.0
       else 0.0);
    mean_us = Kflex_workload.Stats.mean merged;
    p50_us = Kflex_workload.Stats.percentile merged 0.50;
    p99_us = Kflex_workload.Stats.percentile merged 0.99;
    p999_us = Kflex_workload.Stats.percentile merged 0.999;
    completed;
    cancelled = !cancelled;
    span_ns;
    digest = !digest;
  }
