type 'req config = {
  clients : int;
  workers : int;
  rtt_ns : float;
  requests : int;
  warmup_frac : float;
  gen : int -> 'req;
  service_ns : 'req -> float;
  gc : (float * float) option;
}

type result = {
  throughput_mops : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  completed : int;
}

type 'req job = { req : 'req; issue : float; idx : int }

let run (cfg : 'req config) =
  if cfg.clients <= 0 || cfg.workers <= 0 || cfg.requests <= 0 then
    invalid_arg "Closed_loop.run";
  let des = Des.create () in
  let lat = Kflex_workload.Stats.create () in
  let warmup = int_of_float (cfg.warmup_frac *. float_of_int cfg.requests) in
  let issued = ref 0 in
  let completed = ref 0 in
  let t_first = ref nan and t_last = ref 0.0 in
  let queue : 'req job Queue.t = Queue.create () in
  let free = ref cfg.workers in
  (* per-worker GC deadlines; workers are anonymous, so track the [gc]
     pauses as a pool-wide token bucket: one pause per worker per period *)
  let next_gc = Array.make cfg.workers infinity in
  (match cfg.gc with
  | Some (period, _) ->
      Array.iteri (fun i _ -> next_gc.(i) <- period *. (1.0 +. (float_of_int i /. float_of_int cfg.workers))) next_gc
  | None -> ());
  let rec issue_next () =
    if !issued < cfg.requests then begin
      let idx = !issued in
      incr issued;
      let req = cfg.gen idx in
      let issue = Des.now des in
      Des.schedule des ~delay:(cfg.rtt_ns /. 2.0) (fun () ->
          arrival { req; issue; idx })
    end
  and arrival job =
    if !free > 0 then begin
      decr free;
      start_service job
    end
    else Queue.push job queue
  and start_service job =
    (* find a worker owing a GC pause *)
    let gc_delay =
      match cfg.gc with
      | None -> 0.0
      | Some (period, pause) ->
          let now = Des.now des in
          let due = ref (-1) in
          Array.iteri (fun i t -> if !due < 0 && t <= now then due := i) next_gc;
          if !due >= 0 then begin
            next_gc.(!due) <- now +. period;
            pause
          end
          else 0.0
    in
    let s = cfg.service_ns job.req in
    Des.schedule des ~delay:(gc_delay +. s) (fun () -> complete job)
  and complete job =
    (* response travels back; worker picks up queued work immediately *)
    (match Queue.take_opt queue with
    | Some next -> start_service next
    | None -> incr free);
    Des.schedule des ~delay:(cfg.rtt_ns /. 2.0) (fun () ->
        let now = Des.now des in
        incr completed;
        if job.idx >= warmup then begin
          if Float.is_nan !t_first then t_first := now;
          t_last := now;
          Kflex_workload.Stats.add lat ((now -. job.issue) /. 1000.0)
        end;
        issue_next ())
  in
  for _ = 1 to cfg.clients do
    Des.schedule des ~delay:0.0 issue_next
  done;
  Des.run des;
  let span_ns = !t_last -. !t_first in
  let counted = Kflex_workload.Stats.count lat in
  {
    throughput_mops =
      (if span_ns > 0.0 then float_of_int (counted - 1) /. span_ns *. 1000.0
       else 0.0);
    mean_us = Kflex_workload.Stats.mean lat;
    p50_us = Kflex_workload.Stats.percentile lat 0.50;
    p99_us = Kflex_workload.Stats.percentile lat 0.99;
    completed = !completed;
  }

(* The engine-driven closed loop: same client population and FIFO law, but
   the server side is the engine's shard array rather than an anonymous
   worker pool — one service lane per shard, placement by the engine's flow
   hash, per-shard FIFO queues. Service work really executes the chain
   ([Engine.run_on], deterministic mode) and its cost converts to virtual
   time through [ns_of_cost], so the scaling curve reflects the actual
   per-event instruction mix. Latency is recorded into per-shard recorders
   and folded with [Stats.merge] at the end, mirroring how the engine keeps
   its own hot-path stats shard-local. *)
let run_engine ~clients ~rtt_ns ~requests ?(warmup_frac = 0.1)
    ?(hook = Kflex_kernel.Hook.Xdp) ~gen ~ns_of_cost eng =
  if clients <= 0 || requests <= 0 then invalid_arg "Closed_loop.run_engine";
  let nshards = Kflex_engine.Engine.shards eng in
  let des = Des.create () in
  let lat = Array.init nshards (fun _ -> Kflex_workload.Stats.create ()) in
  let warmup = int_of_float (warmup_frac *. float_of_int requests) in
  let issued = ref 0 in
  let completed = ref 0 in
  let t_first = ref nan and t_last = ref 0.0 in
  let queues :
      Kflex_kernel.Packet.t job Queue.t array =
    Array.init nshards (fun _ -> Queue.create ())
  in
  let busy = Array.make nshards false in
  let rec issue_next () =
    if !issued < requests then begin
      let idx = !issued in
      incr issued;
      let req = gen idx in
      let issue = Des.now des in
      Des.schedule des ~delay:(rtt_ns /. 2.0) (fun () ->
          arrival { req; issue; idx })
    end
  and arrival job =
    let sh = Kflex_engine.Engine.shard_of eng job.req in
    if busy.(sh) then Queue.push job queues.(sh)
    else begin
      busy.(sh) <- true;
      start_service sh job
    end
  and start_service sh job =
    let r = Kflex_engine.Engine.run_on eng ~shard:sh ~hook job.req in
    Des.schedule des
      ~delay:(ns_of_cost r.Kflex_engine.Engine.cost)
      (fun () -> complete sh job)
  and complete sh job =
    (match Queue.take_opt queues.(sh) with
    | Some next -> start_service sh next
    | None -> busy.(sh) <- false);
    Des.schedule des ~delay:(rtt_ns /. 2.0) (fun () ->
        let now = Des.now des in
        incr completed;
        if job.idx >= warmup then begin
          if Float.is_nan !t_first then t_first := now;
          t_last := now;
          Kflex_workload.Stats.add lat.(sh) ((now -. job.issue) /. 1000.0)
        end;
        issue_next ())
  in
  for _ = 1 to clients do
    Des.schedule des ~delay:0.0 issue_next
  done;
  Des.run des;
  let merged =
    Array.fold_left Kflex_workload.Stats.merge
      (Kflex_workload.Stats.create ())
      lat
  in
  let span_ns = !t_last -. !t_first in
  let counted = Kflex_workload.Stats.count merged in
  {
    throughput_mops =
      (if span_ns > 0.0 then float_of_int (counted - 1) /. span_ns *. 1000.0
       else 0.0);
    mean_us = Kflex_workload.Stats.mean merged;
    p50_us = Kflex_workload.Stats.percentile merged 0.50;
    p99_us = Kflex_workload.Stats.percentile merged 0.99;
    completed = !completed;
  }
