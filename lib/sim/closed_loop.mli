(** Closed-loop load generation over the DES (the paper's testbed shape,
    §5): a fixed population of clients each keeps exactly one request
    outstanding; the server runs a fixed number of worker threads; requests
    queue FIFO when all workers are busy.

    The [service_ns] callback is expected to {e actually execute} the
    request against the system under test (run the extension in the VM, or
    the native user-space server) and return the modelled service time in
    ns — so simulated results reflect real per-request work, cache
    behaviour included.

    [gc] optionally models the co-designed auxiliary slow path of §5.3: per
    worker, every [period] ns the worker stalls for [pause] ns (the
    user-space garbage collector contending with the fast path). *)

type 'req config = {
  clients : int;
  workers : int;
  rtt_ns : float;
  requests : int;  (** total requests to issue *)
  warmup_frac : float;  (** fraction of early completions discarded (0.1) *)
  gen : int -> 'req;
  service_ns : 'req -> float;
  gc : (float * float) option;  (** (period_ns, pause_ns) *)
}

type result = {
  throughput_mops : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  completed : int;
}

val run : 'req config -> result

val run_engine :
  clients:int ->
  rtt_ns:float ->
  requests:int ->
  ?warmup_frac:float ->
  ?hook:Kflex_kernel.Hook.kind ->
  gen:(int -> Kflex_kernel.Packet.t) ->
  ns_of_cost:(int -> float) ->
  Kflex_engine.Engine.t ->
  result
(** Closed loop over a (deterministic-mode) engine: one service lane per
    shard with its own FIFO queue, events placed by the engine's flow hash,
    and {!Kflex_engine.Engine.run_on} as the service function — the charged
    chain cost becomes service time via [ns_of_cost]. Shards serve their
    queues concurrently in virtual time, which is what the scaling-curve
    benchmark measures; latency is folded across shards with
    {!Kflex_workload.Stats.merge}. *)
