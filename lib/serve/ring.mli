(** MPSC byte ring: the in-process model of a connection's socket buffer.

    Multiple producers (mutex-serialized) append byte runs; one consumer
    drains them in order. Capacity rounds up to a power of two. *)

type t

val create : int -> t
(** [create capacity] — rounded up to the next power of two. *)

val capacity : t -> int

val length : t -> int
(** Bytes currently buffered. *)

val write : t -> Bytes.t -> int -> int -> bool
(** [write t src pos len] appends [len] bytes; [false] (and nothing
    written) if the ring lacks space for the whole run — frames are never
    half-committed. *)

val read : t -> Bytes.t -> int -> int -> int
(** [read t dst pos len] drains up to [len] buffered bytes into [dst];
    returns the count actually read (0 when empty). Single consumer. *)
