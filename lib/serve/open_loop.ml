(* The open-loop serving front end.

   Ties the pieces into the §5 serving shape: an open-loop generator
   draws request times from {!Kflex_workload.Arrivals} (offered load is a
   free parameter — overload is reachable) and Zipfian keys from
   {!Kflex_workload.Zipf}; each request is {e encoded to real protocol
   bytes} ({!Wire}), torn into arbitrary fragments, pushed through the
   per-connection byte ring ({!Ring}) and parsed back incrementally —
   the engine only ever sees operations that survived wire framing.
   Parsed operations become app-model packets multiplexed onto the
   engine's shards by its flow hash (the connection id rides in the
   source port).

   Latency accounting avoids coordinated omission: every request is
   stamped with its {e scheduled generation time}, and latency runs from
   that stamp to the verdict — queueing delay during overload counts, it
   is the phenomenon under measurement. Measuring from dequeue would
   flatten the overload curve into a lie.

   Two drive modes share one generated schedule:
   - deterministic/virtual time ({!run_deterministic}): shards as FIFO
     lanes, service = the chain's real executed cost × {!Cost.insn_ns};
     bit-identical across runs — the verdict-stream digest is the repo's
     ninth determinism check.
   - threaded/wall clock ({!run_threaded}): requests submitted to the
     engine's shard domains when the wall clock reaches their scheduled
     time, completion stamped in the shard's [on_done] callback.

   A "burner" tenant rides ahead of the cache extension on ~1/256 of
   keys ((k0 & 255) == 7) and loops far past the engine's reaper
   deadline, so cancellation latency is visible in the measured tail —
   the §4.3 story under load, not in a microbenchmark. *)

open Kflex_kernel
module Engine = Kflex_engine.Engine
module Stats = Kflex_workload.Stats
module Rng = Kflex_workload.Rng

type request = { gen_ns : float; hook : Hook.kind; pkt : Packet.t }

type config = {
  proto : Wire.proto;
  rate : float;  (* offered load, requests/second *)
  conns : int;  (* simulated connections *)
  requests : int;
  keyspace : int;
  zipf_s : float;
  set_frac : float;  (* fraction of writes (SET, and ZADD on Redis) *)
  arrival : Kflex_workload.Arrivals.kind;
  seed : int64;
  max_frag : int;  (* largest wire fragment pushed at once *)
  ring_bytes : int;  (* per-connection ring capacity *)
  burn : bool;  (* attach the over-deadline burner tenant *)
  burn_iters : int;
  deadline_us : float;  (* engine reaper deadline *)
  guard : bool;  (* attach the shared-map guard tenants ahead of the cache *)
  guard_capacity : int;  (* bucket tokens per key class per window *)
  guard_window_us : float;  (* bucket refill window *)
}

let default =
  {
    proto = Wire.Memcached;
    rate = 150_000.0;
    conns = 512;
    requests = 50_000;
    keyspace = 65_536;
    zipf_s = 0.99;
    set_frac = 0.1;
    arrival = Kflex_workload.Arrivals.Poisson;
    seed = 42L;
    max_frag = 17;
    ring_bytes = 1024;
    burn = true;
    burn_iters = 120_000;
    deadline_us = 200.0;
    guard = false;
    guard_capacity = 4096;
    guard_window_us = 1_000.0;
  }

(* --- the generator: arrivals -> wire bytes -> ring -> parser -> packets -- *)

let generate cfg =
  if cfg.requests <= 0 || cfg.conns <= 0 then invalid_arg "Open_loop.generate";
  let rng = Rng.create ~seed:cfg.seed in
  let arr = Kflex_workload.Arrivals.create ~kind:cfg.arrival ~rate:cfg.rate (Rng.split rng) in
  let zipf = Kflex_workload.Zipf.create ~s:cfg.zipf_s ~n:cfg.keyspace () in
  let hook = Wire.hook_of cfg.proto in
  let rings = Array.init cfg.conns (fun _ -> Ring.create cfg.ring_bytes) in
  let decs = Array.init cfg.conns (fun _ -> Wire.decoder cfg.proto) in
  (* generation stamps of frames written to conn c but not yet parsed;
     ring order = parse order, so FIFO pairing is exact *)
  let times = Array.init cfg.conns (fun _ -> Queue.create ()) in
  let src_port c = 1024 + (c mod 64000) in
  let dummy =
    Packet.make ~proto:Packet.Udp ~src_port:0 ~dst_port:0 Bytes.empty
  in
  let out = Array.make cfg.requests { gen_ns = 0.0; hook; pkt = dummy } in
  let emitted = ref 0 in
  let tmp = Bytes.create 512 in
  let drain c =
    let rec pull () =
      let n = Ring.read rings.(c) tmp 0 (Bytes.length tmp) in
      if n > 0 then begin
        Wire.feed decs.(c) tmp 0 n;
        pull ()
      end
    in
    pull ();
    let rec parse () =
      match Wire.next decs.(c) with
      | Some op ->
          let t = Queue.pop times.(c) in
          out.(!emitted) <-
            {
              gen_ns = t;
              hook;
              pkt = Wire.packet_of_op ~src_port:(src_port c) cfg.proto op;
            };
          incr emitted;
          parse ()
      | None -> ()
    in
    parse ()
  in
  (* Write one frame in random-sized fragments; the ring drains on
     pressure and, sometimes, mid-frame — the parser sees torn streams
     on every run, not just in the framing tests. *)
  let push c frame t =
    Queue.push t times.(c);
    let len = Bytes.length frame in
    let pos = ref 0 in
    while !pos < len do
      let fl = Stdlib.min (len - !pos) (1 + Rng.int rng cfg.max_frag) in
      while not (Ring.write rings.(c) frame !pos fl) do
        drain c
      done;
      pos := !pos + fl;
      if Rng.float rng < 0.15 then drain c
    done
  in
  for i = 0 to cfg.requests - 1 do
    let t = Kflex_workload.Arrivals.next arr in
    let c = Rng.int rng cfg.conns in
    let rank = Kflex_workload.Zipf.sample zipf rng in
    let cmd =
      if Rng.float rng < cfg.set_frac then
        match cfg.proto with
        | Wire.Memcached -> Wire.Set
        | Wire.Redis ->
            if Rng.bool rng then Wire.Set
            else
              Wire.Zadd
                ( Int64.of_int (Rng.int rng 1_000_000),
                  Int64.logand (Rng.next rng) 0xffff_ffffL )
      else Wire.Get
    in
    let op = Wire.op_of_rank ~cmd ~rank ~opaque:(Int32.of_int (i land 0x3fff_ffff)) in
    push c (Wire.encode cfg.proto op) t;
    (* pipelining: often several frames sit in a ring before a drain *)
    if Queue.length times.(c) >= 6 || Rng.float rng < 0.7 then drain c
  done;
  for c = 0 to cfg.conns - 1 do
    drain c
  done;
  if !emitted <> cfg.requests then
    Format.kasprintf failwith "Open_loop.generate: emitted %d of %d requests"
      !emitted cfg.requests;
  (* drains interleave across connections, so emission order is not
     arrival order — restore the schedule (stamps are strictly
     increasing, so the order is total) *)
  Array.sort (fun a b -> Float.compare a.gen_ns b.gen_ns) out;
  out

(* --- tenants ------------------------------------------------------------- *)

(* Runs ahead of the cache on ~1/256 of keys and loops far past the
   reaper deadline; its cancellation (default_ret = the hook's pass
   verdict) lets the chain continue, so the cache still answers — the
   request is late, not lost. *)
let burner_source ~pass ~iters =
  Printf.sprintf
    {|
fn prog(c: ctx) -> u64 {
  var k0: u64 = pkt_read_u64(c, 1);
  if ((k0 & 255) == 7) {
    var acc: u64 = k0;
    var i: u64 = 0;
    while (i < %d) {
      acc = (acc * 1099511628211) ^ (acc >> 29);
      i = i + 1;
    }
    if (acc == 0) { pkt_write_u8(c, 64, 1); }
  }
  return %Ld;
}
|}
    iters pass

let attach_src eng ~name ~hook ?heap_bits src =
  let c = Kflex_eclang.Compile.compile_string ~name src in
  let heap_size = Option.map (fun b -> Int64.shift_left 1L b) heap_bits in
  match
    Engine.attach eng ~name
      ~globals_size:c.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
      ~quantum:1_000_000_000 ?heap_size ~backend:`Compiled ~hook
      c.Kflex_eclang.Compile.prog
  with
  | Ok h -> h
  | Error e ->
      Format.kasprintf failwith "serve: tenant %s rejected: %a" name
        Kflex_verifier.Verify.pp_error e

let attach_tenants cfg eng =
  let hook = Wire.hook_of cfg.proto in
  if cfg.guard then begin
    (* engine-shared maps first, so fds 3/4 are valid for every tenant;
       drop = any non-pass verdict (terminal for the chain) *)
    let spin, rcu = Kflex_apps.Ratelimit.make_maps ~shards:(Engine.shards eng) in
    ignore (Engine.share_map eng spin);
    ignore (Engine.share_map eng rcu);
    let pass = Hook.pass_verdict hook in
    let drop = if Int64.equal pass 1L then 0L else 1L in
    ignore
      (attach_src eng ~name:"ratelimit" ~hook ~heap_bits:12
         (Kflex_apps.Ratelimit.bucket_source ~pass ~drop
            ~capacity:cfg.guard_capacity
            ~window_ns:(Int64.of_float (cfg.guard_window_us *. 1e3))));
    ignore
      (attach_src eng ~name:"conntrack" ~hook ~heap_bits:12
         (Kflex_apps.Ratelimit.conntrack_source ~pass ~drop))
  end;
  if cfg.burn then
    (* heap_bits 12: even a loop-only program needs a page for the
       instrumentation's terminate word *)
    ignore
      (attach_src eng ~name:"burner" ~hook ~heap_bits:12
         (burner_source ~pass:(Hook.pass_verdict hook) ~iters:cfg.burn_iters));
  match cfg.proto with
  | Wire.Memcached ->
      ignore
        (attach_src eng ~name:"kflex-memcached" ~hook ~heap_bits:24
           Kflex_apps.Memcached.kflex_source)
  | Wire.Redis ->
      ignore
        (attach_src eng ~name:"kflex-redis" ~hook ~heap_bits:24
           Kflex_apps.Redis.source)

let make_engine cfg ~mode ~shards =
  let eng =
    Engine.create ~shards ~mode
      ~deadline_ns:(cfg.deadline_us *. 1e3)
      ~seed:cfg.seed ()
  in
  attach_tenants cfg eng;
  eng

(* --- results ------------------------------------------------------------- *)

type outcome = {
  offered_rps : float;
  achieved_rps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  completed : int;
  cancelled : int;  (* chain entries reaped past the deadline *)
  leaked : int;
  digest : int64;  (* 0 for wall-clock runs *)
  span_s : float;
}

let ns_of_cost c = float_of_int c *. Cost.insn_ns

let run_deterministic ?(shards = 1) cfg =
  let reqs = generate cfg in
  let events =
    Array.map
      (fun r ->
        { Kflex_sim.Open_loop.at_ns = r.gen_ns; hook = r.hook; pkt = r.pkt })
      reqs
  in
  let eng = make_engine cfg ~mode:`Deterministic ~shards in
  let r = Kflex_sim.Open_loop.run_engine ~ns_of_cost eng events in
  let t = Engine.totals eng in
  Engine.shutdown eng;
  {
    offered_rps = cfg.rate;
    achieved_rps = r.Kflex_sim.Open_loop.throughput_mops *. 1e6;
    mean_us = r.Kflex_sim.Open_loop.mean_us;
    p50_us = r.Kflex_sim.Open_loop.p50_us;
    p99_us = r.Kflex_sim.Open_loop.p99_us;
    p999_us = r.Kflex_sim.Open_loop.p999_us;
    completed = r.Kflex_sim.Open_loop.completed;
    cancelled = t.Engine.cancelled;
    leaked = t.Engine.leaked;
    digest = r.Kflex_sim.Open_loop.digest;
    span_s = r.Kflex_sim.Open_loop.span_ns /. 1e9;
  }

let run_threaded ?(shards = 1) cfg =
  let reqs = generate cfg in
  let eng = make_engine cfg ~mode:`Threaded ~shards in
  let n = Engine.shards eng in
  (* per-shard recorders: each is touched only by its shard's domain
     (completion callbacks for one shard never run concurrently) *)
  let lat = Array.init n (fun _ -> Stats.create ()) in
  let t0 = Unix.gettimeofday () *. 1e9 in
  Array.iter
    (fun r ->
      let target = t0 +. r.gen_ns in
      let rec wait () =
        let now = Unix.gettimeofday () *. 1e9 in
        if now < target then begin
          let gap_s = (target -. now) /. 1e9 in
          if gap_s > 5e-5 then Unix.sleepf (Float.min gap_s 0.001);
          wait ()
        end
      in
      wait ();
      let sh = Engine.shard_of eng r.pkt in
      Engine.submit eng ~hook:r.hook
        ~on_done:(fun _ ->
          let now = Unix.gettimeofday () *. 1e9 in
          Stats.add lat.(sh) ((now -. target) /. 1000.0))
        r.pkt)
    reqs;
  Engine.drain eng;
  let t_end = Unix.gettimeofday () *. 1e9 in
  let t = Engine.totals eng in
  Engine.shutdown eng;
  let merged = Array.fold_left Stats.merge (Stats.create ()) lat in
  let span_s = (t_end -. t0) /. 1e9 in
  {
    offered_rps = cfg.rate;
    achieved_rps =
      (if span_s > 0.0 then float_of_int (Stats.count merged) /. span_s
       else 0.0);
    mean_us = Stats.mean merged;
    p50_us = Stats.percentile merged 0.50;
    p99_us = Stats.percentile merged 0.99;
    p999_us = Stats.percentile merged 0.999;
    completed = Stats.count merged;
    cancelled = t.Engine.cancelled;
    leaked = t.Engine.leaked;
    digest = 0L;
    span_s;
  }

let determinism_check ?(shards = 2) cfg =
  let a = run_deterministic ~shards cfg in
  let b = run_deterministic ~shards cfg in
  ( Int64.equal a.digest b.digest && a.leaked = 0 && b.leaked = 0
    && a.completed = b.completed,
    a.digest,
    b.digest )
