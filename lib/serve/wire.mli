(** Wire-protocol framing: Memcached binary and Redis RESP.

    Incremental parsers turn arbitrarily fragmented byte streams (off a
    connection's {!Ring}) into operations; a frame is consumed only once
    every byte of it has arrived, so torn and pipelined frames both
    round-trip exactly. Parsed operations map 1:1 onto the §5.1 app-model
    packet payloads ({!Kflex_apps.Memcached} / {!Kflex_apps.Redis}). *)

exception Protocol_error of string
(** Malformed bytes (bad magic, unknown opcode/command, length lies).
    Incomplete frames are {e not} errors — {!next} just returns [None]. *)

type proto = Memcached | Redis

type cmd = Get | Set | Zadd of int64 * int64  (** (score, member) *)

type op = {
  cmd : cmd;
  key : string;  (** exactly 32 bytes, raw binary *)
  value : string;  (** exactly 32 bytes; all-zero when the op carries none *)
  opaque : int32;  (** Memcached binary opaque; 0 over RESP *)
}

val key_len : int
val zero_value : string

val key_of_rank : int -> string
(** The app models' deterministic 32-byte key for a popularity rank. *)

val value_of_rank : int -> string
val op_of_rank : cmd:cmd -> rank:int -> opaque:int32 -> op

val encode : proto -> op -> Bytes.t
(** One complete request frame. Memcached: 24-byte binary header +
    [extras ++ key ++ value]. Redis: RESP array of bulk strings. *)

(** {2 Streaming decoder} *)

type decoder

val decoder : proto -> decoder

val feed : decoder -> Bytes.t -> int -> int -> unit
(** Append [len] bytes at [pos] — any fragmentation is fine. *)

val next : decoder -> op option
(** Parse one complete frame if buffered; [None] until the torn tail
    arrives. @raise Protocol_error on malformed input. *)

val pending : decoder -> int
(** Bytes buffered but not yet consumed by a complete frame. *)

(** {2 Bridging to the app models} *)

val hook_of : proto -> Kflex_kernel.Hook.kind
(** [Xdp] for Memcached (§5.1), [Sk_skb] for Redis. *)

val packet_of_op : ?src_port:int -> proto -> op -> Kflex_kernel.Packet.t
(** The 66-byte app-model payload packet for a parsed op; [src_port]
    carries the connection identity into the engine's flow hash. *)
