(* A multi-producer single-consumer byte ring — the in-process stand-in
   for a connection's socket buffer.

   Positions are monotonically increasing ints (head = consumer, tail =
   producer); the physical index is [pos land mask], so fullness is just
   [tail - head] and the empty/full ambiguity of wrapped indices never
   arises. Producers serialize on a mutex (the generator's connection
   multiplexer may write from several domains); the single consumer reads
   lock-free against the atomically published tail. *)

type t = {
  buf : Bytes.t;
  mask : int;
  head : int Atomic.t; (* consumer position, monotonic *)
  tail : int Atomic.t; (* producer position, monotonic *)
  m : Mutex.t; (* serializes producers *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap lsl 1
  done;
  {
    buf = Bytes.create !cap;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    m = Mutex.create ();
  }

let capacity t = Bytes.length t.buf
let length t = Atomic.get t.tail - Atomic.get t.head

let write t src pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Ring.write";
  Mutex.protect t.m (fun () ->
      let tail = Atomic.get t.tail in
      let used = tail - Atomic.get t.head in
      if capacity t - used < len then false
      else begin
        for i = 0 to len - 1 do
          Bytes.unsafe_set t.buf
            ((tail + i) land t.mask)
            (Bytes.unsafe_get src (pos + i))
        done;
        Atomic.set t.tail (tail + len);
        true
      end)

let read t dst pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length dst then
    invalid_arg "Ring.read";
  let head = Atomic.get t.head in
  let avail = Atomic.get t.tail - head in
  let n = Stdlib.min len avail in
  for i = 0 to n - 1 do
    Bytes.unsafe_set dst (pos + i)
      (Bytes.unsafe_get t.buf ((head + i) land t.mask))
  done;
  Atomic.set t.head (head + n);
  n
