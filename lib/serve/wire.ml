(* Wire protocols: real request bytes in, app-model packets out.

   The serving front end does not hand the engine pre-parsed operations —
   it speaks the protocols the paper's workloads speak on the wire and
   parses them incrementally off each connection's byte ring:

   - Memcached binary protocol: 24-byte request header
       magic 0x80 @0, opcode @1 (0x00 GET / 0x01 SET), key length BE16 @2,
       extras length u8 @4, data type @5, vbucket BE16 @6, total body
       BE32 @8, opaque BE32 @12, cas u64 @16
     followed by [extras ++ key ++ value]. SETs carry the standard 8-byte
     flags/expiry extras block.
   - Redis RESP: an array of bulk strings,
       *N\r\n ($len\r\n bytes \r\n){N}
     for GET key / SET key value / ZADD key score member. Keys and values
     are raw 32-byte binary (they may contain \r\n — bulk strings are
     length-prefixed precisely so that framing survives binary payloads).

   Parsers are incremental: bytes arrive in arbitrary fragments (a frame
   may be torn at any byte, or several frames may share one fragment) and
   a frame is only consumed once every byte of it is buffered. Malformed
   input raises {!Protocol_error}; a frame that merely hasn't fully
   arrived yet is not an error.

   A parsed operation maps 1:1 onto the §5.1 app-model payload
   ({!Kflex_apps.Memcached}, {!Kflex_apps.Redis}): u8 op @0, 32-byte key
   @1, 32-byte value @33 (score @33 / member @41 for ZADD), hit flag @65. *)

open Kflex_kernel

exception Protocol_error of string

let err fmt = Format.kasprintf (fun s -> raise (Protocol_error s)) fmt

type proto = Memcached | Redis

type cmd = Get | Set | Zadd of int64 * int64

type op = {
  cmd : cmd;
  key : string;  (* exactly 32 bytes *)
  value : string;  (* exactly 32 bytes; all-zero when the op carries none *)
  opaque : int32;  (* Memcached binary opaque; 0 over RESP *)
}

let key_len = 32
let zero_value = String.make key_len '\000'

(* --- key/value material (shared with the app models) -------------------- *)

let key_of_rank = Kflex_apps.Memcached.User.key_of_rank

let value_of_rank rank =
  let b = Bytes.create key_len in
  Array.iteri
    (fun i w -> Bytes.set_int64_le b (8 * i) w)
    (Kflex_apps.Memcached.value_words rank);
  Bytes.to_string b

let op_of_rank ~cmd ~rank ~opaque =
  let value = match cmd with Set -> value_of_rank rank | _ -> zero_value in
  { cmd; key = key_of_rank rank; value; opaque }

(* --- encoding ------------------------------------------------------------ *)

let mc_header_len = 24
let mc_extras_len = 8 (* flags u32 + expiry u32, the standard SET extras *)

let encode_memcached op =
  let opcode, extras, vlen =
    match op.cmd with
    | Get -> (0x00, 0, 0)
    | Set -> (0x01, mc_extras_len, key_len)
    | Zadd _ -> invalid_arg "Wire.encode: ZADD is not a Memcached op"
  in
  let body = extras + key_len + vlen in
  let b = Bytes.make (mc_header_len + body) '\000' in
  Bytes.set_uint8 b 0 0x80;
  Bytes.set_uint8 b 1 opcode;
  Bytes.set_uint16_be b 2 key_len;
  Bytes.set_uint8 b 4 extras;
  Bytes.set_int32_be b 8 (Int32.of_int body);
  Bytes.set_int32_be b 12 op.opaque;
  Bytes.blit_string op.key 0 b (mc_header_len + extras) key_len;
  if vlen > 0 then
    Bytes.blit_string op.value 0 b (mc_header_len + extras + key_len) vlen;
  b

let encode_resp op =
  let buf = Buffer.create 96 in
  let bulk s =
    Buffer.add_char buf '$';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_string buf "\r\n";
    Buffer.add_string buf s;
    Buffer.add_string buf "\r\n"
  in
  (match op.cmd with
  | Get ->
      Buffer.add_string buf "*2\r\n";
      bulk "GET";
      bulk op.key
  | Set ->
      Buffer.add_string buf "*3\r\n";
      bulk "SET";
      bulk op.key;
      bulk op.value
  | Zadd (score, member) ->
      Buffer.add_string buf "*4\r\n";
      bulk "ZADD";
      bulk op.key;
      bulk (Printf.sprintf "%Ld" score);
      bulk (Printf.sprintf "%Ld" member));
  Buffer.to_bytes buf

let encode proto op =
  match proto with Memcached -> encode_memcached op | Redis -> encode_resp op

(* --- incremental decoding ------------------------------------------------ *)

exception Incomplete

(* Memcached binary: returns (op, next absolute position). *)
let parse_memcached buf start limit =
  if limit - start < mc_header_len then raise Incomplete;
  if Bytes.get_uint8 buf start <> 0x80 then
    err "memcached: bad magic 0x%02x" (Bytes.get_uint8 buf start);
  let opcode = Bytes.get_uint8 buf (start + 1) in
  let klen = Bytes.get_uint16_be buf (start + 2) in
  let extras = Bytes.get_uint8 buf (start + 4) in
  let body = Int32.to_int (Bytes.get_int32_be buf (start + 8)) in
  let opaque = Bytes.get_int32_be buf (start + 12) in
  if body < 0 || body > 1 lsl 20 then err "memcached: body length %d" body;
  if limit - start < mc_header_len + body then raise Incomplete;
  if klen <> key_len then err "memcached: key length %d" klen;
  if extras + klen > body then err "memcached: extras %d overflow body" extras;
  let key =
    Bytes.sub_string buf (start + mc_header_len + extras) key_len
  in
  let vlen = body - extras - klen in
  let cmd, value =
    match opcode with
    | 0x00 ->
        if vlen <> 0 then err "memcached: GET with %d value bytes" vlen;
        (Get, zero_value)
    | 0x01 ->
        if vlen <> key_len then err "memcached: SET value length %d" vlen;
        ( Set,
          Bytes.sub_string buf (start + mc_header_len + extras + key_len) vlen
        )
    | o -> err "memcached: opcode 0x%02x" o
  in
  ({ cmd; key; value; opaque }, start + mc_header_len + body)

(* One RESP line "<tag><payload>\r\n" from [pos]; returns (payload, next). *)
let resp_line buf pos limit ~tag =
  if pos >= limit then raise Incomplete;
  let c = Bytes.get buf pos in
  if c <> tag then err "resp: expected %c, got %c" tag c;
  let j = ref (pos + 1) in
  while !j < limit && Bytes.get buf !j <> '\r' do
    incr j
  done;
  if !j + 1 >= limit then raise Incomplete;
  if Bytes.get buf (!j + 1) <> '\n' then err "resp: bare CR in line";
  (Bytes.sub_string buf (pos + 1) (!j - pos - 1), !j + 2)

let resp_int s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> err "resp: bad integer %S" s

(* One bulk string "$len\r\n<bytes>\r\n"; returns (bytes, next). *)
let resp_bulk buf pos limit =
  let lens, p = resp_line buf pos limit ~tag:'$' in
  let len = resp_int lens in
  if len < 0 || len > 1 lsl 20 then err "resp: bulk length %d" len;
  if limit - p < len + 2 then raise Incomplete;
  if Bytes.get buf (p + len) <> '\r' || Bytes.get buf (p + len + 1) <> '\n'
  then err "resp: bulk missing terminator";
  (Bytes.sub_string buf p len, p + len + 2)

let resp_i64 s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> err "resp: bad int64 %S" s

let check_key k =
  if String.length k <> key_len then
    err "resp: key length %d" (String.length k);
  k

let parse_resp buf start limit =
  let ns, p = resp_line buf start limit ~tag:'*' in
  let n = resp_int ns in
  if n < 1 || n > 4 then err "resp: array of %d" n;
  let args = Array.make n "" in
  let p = ref p in
  for i = 0 to n - 1 do
    let a, p' = resp_bulk buf !p limit in
    args.(i) <- a;
    p := p'
  done;
  let op =
    match (args.(0), n) with
    | "GET", 2 ->
        { cmd = Get; key = check_key args.(1); value = zero_value; opaque = 0l }
    | "SET", 3 ->
        if String.length args.(2) <> key_len then
          err "resp: value length %d" (String.length args.(2));
        { cmd = Set; key = check_key args.(1); value = args.(2); opaque = 0l }
    | "ZADD", 4 ->
        {
          cmd = Zadd (resp_i64 args.(2), resp_i64 args.(3));
          key = check_key args.(1);
          value = zero_value;
          opaque = 0l;
        }
    | (c, _) -> err "resp: unknown command %S/%d" c n
  in
  (op, !p)

(* --- streaming decoder --------------------------------------------------- *)

type decoder = {
  dproto : proto;
  mutable buf : Bytes.t;
  mutable start : int;
  mutable fill : int;
}

let decoder proto =
  { dproto = proto; buf = Bytes.create 256; start = 0; fill = 0 }

let pending d = d.fill - d.start

let feed d src pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Wire.feed";
  if d.fill + len > Bytes.length d.buf then begin
    let live = d.fill - d.start in
    if live + len <= Bytes.length d.buf then
      Bytes.blit d.buf d.start d.buf 0 live
    else begin
      let cap = ref (Bytes.length d.buf) in
      while live + len > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit d.buf d.start nb 0 live;
      d.buf <- nb
    end;
    d.start <- 0;
    d.fill <- live
  end;
  Bytes.blit src pos d.buf d.fill len;
  d.fill <- d.fill + len

let next d =
  let parse =
    match d.dproto with Memcached -> parse_memcached | Redis -> parse_resp
  in
  match parse d.buf d.start d.fill with
  | op, pos ->
      d.start <- pos;
      if d.start = d.fill then begin
        d.start <- 0;
        d.fill <- 0
      end;
      Some op
  | exception Incomplete -> None

(* --- bridging to the app models ------------------------------------------ *)

let hook_of = function Memcached -> Hook.Xdp | Redis -> Hook.Sk_skb

let packet_of_op ?(src_port = 40000) proto op =
  let b = Bytes.make 66 '\000' in
  Bytes.blit_string op.key 0 b 1 key_len;
  (match op.cmd with
  | Get -> Bytes.set b 0 '\000'
  | Set ->
      Bytes.set b 0 '\001';
      Bytes.blit_string op.value 0 b 33 key_len
  | Zadd (score, member) ->
      if proto = Memcached then
        invalid_arg "Wire.packet_of_op: ZADD is not a Memcached op";
      Bytes.set b 0 '\002';
      Bytes.set_int64_le b 33 score;
      Bytes.set_int64_le b 41 member);
  match proto with
  | Memcached ->
      let tproto = match op.cmd with Get -> Packet.Udp | _ -> Packet.Tcp in
      Packet.make ~proto:tproto ~src_port ~dst_port:11211 b
  | Redis -> Packet.make ~proto:Packet.Tcp ~src_port ~dst_port:6379 b
