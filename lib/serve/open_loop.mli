(** The open-loop serving front end (§5 serving shape).

    Generates Zipfian requests on an {!Kflex_workload.Arrivals} schedule,
    encodes them to real Memcached-binary / RESP bytes, tears the bytes
    into fragments through per-connection {!Ring}s, parses them back with
    {!Wire}'s incremental decoders, and multiplexes the resulting
    app-model packets onto a multi-tenant {!Kflex_engine.Engine}.

    Latency runs from each request's {e scheduled generation time} to its
    verdict — queueing delay under overload is measured, not silently
    excused (coordinated-omission avoidance). *)

type request = {
  gen_ns : float;  (** scheduled generation time (schedule origin = 0) *)
  hook : Kflex_kernel.Hook.kind;
  pkt : Kflex_kernel.Packet.t;
}

type config = {
  proto : Wire.proto;
  rate : float;  (** offered load, requests/second *)
  conns : int;  (** simulated connections (ring + decoder each) *)
  requests : int;
  keyspace : int;
  zipf_s : float;
  set_frac : float;  (** write fraction (SET; split with ZADD on Redis) *)
  arrival : Kflex_workload.Arrivals.kind;
  seed : int64;
  max_frag : int;  (** largest wire fragment written at once *)
  ring_bytes : int;  (** per-connection ring capacity *)
  burn : bool;  (** attach the over-deadline burner tenant *)
  burn_iters : int;
  deadline_us : float;  (** engine reaper deadline *)
  guard : bool;
      (** attach the {!Kflex_apps.Ratelimit} guard tenants (token-bucket
          rate limiter over the engine-shared Spinlock map, conntrack over
          the shared RCU map) ahead of the burner and the cache *)
  guard_capacity : int;  (** bucket tokens per key class per window *)
  guard_window_us : float;  (** bucket refill window *)
}

val default : config

val generate : config -> request array
(** The full wire pipeline, deterministically in [seed]: every emitted
    request survived encode → fragment → ring → incremental parse.
    Returns exactly [requests] records sorted by [gen_ns]. *)

val attach_tenants : config -> Kflex_engine.Engine.t -> unit
(** Attach, in chain order: the guard tenants over engine-shared maps
    (when [guard] — sharing the maps first, so they sit at fds 3/4 for
    every tenant), the burner (when [burn]), then the §5.1 cache
    extension for [proto]; all compiled backend, at the protocol's hook.
    The shared maps are reachable afterwards via
    [Engine.shared_maps]. *)

val make_engine :
  config -> mode:Kflex_engine.Engine.mode -> shards:int -> Kflex_engine.Engine.t
(** [create] with the config's reaper deadline + {!attach_tenants}. *)

type outcome = {
  offered_rps : float;
  achieved_rps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  completed : int;
  cancelled : int;  (** chain entries reaped past the deadline *)
  leaked : int;  (** invariantly 0 *)
  digest : int64;  (** verdict-stream digest; 0 for wall-clock runs *)
  span_s : float;
}

val ns_of_cost : int -> float

val run_deterministic : ?shards:int -> config -> outcome
(** Virtual-time run via {!Kflex_sim.Open_loop.run_engine}: same seed ⇒
    bit-identical outcome, digest included. *)

val run_threaded : ?shards:int -> config -> outcome
(** Wall-clock run: requests submitted to shard domains when the clock
    reaches their scheduled time; completion stamped in [on_done]. *)

val determinism_check : ?shards:int -> config -> bool * int64 * int64
(** Two independent deterministic runs of the same config: [(ok, d1, d2)]
    where [ok] = digests bit-equal, zero leaks, equal completion counts —
    the repo's ninth determinism check. *)
