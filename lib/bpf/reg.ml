type t = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10

let to_int = function
  | R0 -> 0
  | R1 -> 1
  | R2 -> 2
  | R3 -> 3
  | R4 -> 4
  | R5 -> 5
  | R6 -> 6
  | R7 -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10

let of_int = function
  | 0 -> R0
  | 1 -> R1
  | 2 -> R2
  | 3 -> R3
  | 4 -> R4
  | 5 -> R5
  | 6 -> R6
  | 7 -> R7
  | 8 -> R8
  | 9 -> R9
  | 10 -> R10
  | n -> invalid_arg (Printf.sprintf "Reg.of_int: %d" n)

let equal a b = to_int a = to_int b
let compare a b = Int.compare (to_int a) (to_int b)
let all = [ R0; R1; R2; R3; R4; R5; R6; R7; R8; R9; R10 ]
let caller_saved = [ R0; R1; R2; R3; R4; R5 ]
let callee_saved = [ R6; R7; R8; R9 ]
let fp = R10
let pp ppf r = Format.fprintf ppf "r%d" (to_int r)
