(** Bytecode programs.

    A program is a named, immutable sequence of instructions. [create]
    performs the structural well-formedness checks that precede verification
    proper: jump targets in range, memory offsets encodable in a signed
    16-bit field, no fall-off-the-end paths, and (for un-instrumented input
    programs) the absence of Kie-only instructions. *)

type t

exception Malformed of string
(** Raised by [create] with a human-readable reason. *)

val create : ?allow_instrumentation:bool -> name:string -> Insn.t array -> t
(** [create ~name insns] validates and wraps [insns].
    @param allow_instrumentation accept [Guard]/[Checkpoint] instructions
    (used for Kie output); defaults to [false].
    @raise Malformed if the program is structurally invalid. *)

val name : t -> string

val insns : t -> Insn.t array
(** The instruction sequence. Callers must not mutate the result. *)

val length : t -> int

val get : t -> int -> Insn.t
(** [get p pc] is the instruction at [pc].
    @raise Invalid_argument if [pc] is out of range. *)

val is_instrumented : t -> bool
(** Whether the program contains Kie instrumentation. *)

val pp : Format.formatter -> t -> unit
(** Full disassembly listing with pcs. *)

val pp_with_notes :
  notes:(int -> string option) -> Format.formatter -> t -> unit
(** Like {!pp}, but appends [; note] after any instruction for which
    [notes pc] is [Some note] — used by [kflexc report] to annotate heap
    accesses with the analysis evidence (offset ranges, known bits) behind
    each guard-elision decision. *)

val stack_size : int
(** Size in bytes of the per-invocation extension stack (512, as in eBPF). *)

val max_insns : int
(** Maximum program length accepted by [create] (1,000,000, matching the
    post-5.2 eBPF limit for privileged loads). *)
