exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let magic = "KFLX"
let version = 2

(* Tag bytes. *)
let t_alu = 0x01
let t_neg = 0x02
let t_mov_reg = 0x03
let t_mov_imm = 0x04
let t_ldx = 0x05
let t_stx = 0x06
let t_st = 0x07
let t_atomic = 0x08
let t_ja = 0x09
let t_jcond_reg = 0x0a
let t_jcond_imm = 0x0b
let t_call = 0x0c
let t_exit = 0x0d
let t_guard_r = 0x0e
let t_guard_w = 0x0f
let t_checkpoint = 0x10
let t_xstore = 0x11

let alu_code = function
  | Insn.Add -> 0
  | Insn.Sub -> 1
  | Insn.Mul -> 2
  | Insn.Div -> 3
  | Insn.Mod -> 4
  | Insn.And -> 5
  | Insn.Or -> 6
  | Insn.Xor -> 7
  | Insn.Lsh -> 8
  | Insn.Rsh -> 9
  | Insn.Arsh -> 10

let alu_of_code = function
  | 0 -> Insn.Add
  | 1 -> Insn.Sub
  | 2 -> Insn.Mul
  | 3 -> Insn.Div
  | 4 -> Insn.Mod
  | 5 -> Insn.And
  | 6 -> Insn.Or
  | 7 -> Insn.Xor
  | 8 -> Insn.Lsh
  | 9 -> Insn.Rsh
  | 10 -> Insn.Arsh
  | c -> fail "bad alu code %d" c

let cond_code = function
  | Insn.Eq -> 0
  | Insn.Ne -> 1
  | Insn.Lt -> 2
  | Insn.Le -> 3
  | Insn.Gt -> 4
  | Insn.Ge -> 5
  | Insn.Slt -> 6
  | Insn.Sle -> 7
  | Insn.Sgt -> 8
  | Insn.Sge -> 9
  | Insn.Set -> 10

let cond_of_code = function
  | 0 -> Insn.Eq
  | 1 -> Insn.Ne
  | 2 -> Insn.Lt
  | 3 -> Insn.Le
  | 4 -> Insn.Gt
  | 5 -> Insn.Ge
  | 6 -> Insn.Slt
  | 7 -> Insn.Sle
  | 8 -> Insn.Sgt
  | 9 -> Insn.Sge
  | 10 -> Insn.Set
  | c -> fail "bad cond code %d" c

let size_code = function Insn.U8 -> 0 | Insn.U16 -> 1 | Insn.U32 -> 2 | Insn.U64 -> 3

let size_of_code = function
  | 0 -> Insn.U8
  | 1 -> Insn.U16
  | 2 -> Insn.U32
  | 3 -> Insn.U64
  | c -> fail "bad size code %d" c

let atomic_code = function
  | Insn.Atomic_add -> 0
  | Insn.Atomic_or -> 1
  | Insn.Atomic_and -> 2
  | Insn.Atomic_xor -> 3
  | Insn.Fetch_add -> 4
  | Insn.Fetch_or -> 5
  | Insn.Fetch_and -> 6
  | Insn.Fetch_xor -> 7
  | Insn.Xchg -> 8
  | Insn.Cmpxchg -> 9

let atomic_of_code = function
  | 0 -> Insn.Atomic_add
  | 1 -> Insn.Atomic_or
  | 2 -> Insn.Atomic_and
  | 3 -> Insn.Atomic_xor
  | 4 -> Insn.Fetch_add
  | 5 -> Insn.Fetch_or
  | 6 -> Insn.Fetch_and
  | 7 -> Insn.Fetch_xor
  | 8 -> Insn.Xchg
  | 9 -> Insn.Cmpxchg
  | c -> fail "bad atomic code %d" c

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let put_reg b r = put_u8 b (Reg.to_int r)

let put_i32 b v =
  for i = 0 to 3 do
    put_u8 b ((v lsr (8 * i)) land 0xff)
  done

let put_i64 b (v : int64) =
  for i = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let put_str b s =
  put_i32 b (String.length s);
  Buffer.add_string b s

let encode_insn b insn =
  match insn with
  | Insn.Alu (op, d, Insn.Reg s) ->
      put_u8 b t_alu; put_u8 b (alu_code op); put_reg b d; put_u8 b 0; put_reg b s
  | Insn.Alu (op, d, Insn.Imm i) ->
      put_u8 b t_alu; put_u8 b (alu_code op); put_reg b d; put_u8 b 1; put_i64 b i
  | Insn.Neg d -> put_u8 b t_neg; put_reg b d
  | Insn.Mov (d, Insn.Reg s) -> put_u8 b t_mov_reg; put_reg b d; put_reg b s
  | Insn.Mov (d, Insn.Imm i) -> put_u8 b t_mov_imm; put_reg b d; put_i64 b i
  | Insn.Ldx (sz, d, s, off) ->
      put_u8 b t_ldx; put_u8 b (size_code sz); put_reg b d; put_reg b s;
      put_i32 b (off land 0xffff_ffff)
  | Insn.Stx (sz, d, off, s) ->
      put_u8 b t_stx; put_u8 b (size_code sz); put_reg b d; put_reg b s;
      put_i32 b (off land 0xffff_ffff)
  | Insn.St (sz, d, off, imm) ->
      put_u8 b t_st; put_u8 b (size_code sz); put_reg b d;
      put_i32 b (off land 0xffff_ffff); put_i64 b imm
  | Insn.Atomic (op, sz, d, off, s) ->
      put_u8 b t_atomic; put_u8 b (atomic_code op); put_u8 b (size_code sz);
      put_reg b d; put_reg b s; put_i32 b (off land 0xffff_ffff)
  | Insn.Ja off -> put_u8 b t_ja; put_i32 b (off land 0xffff_ffff)
  | Insn.Jcond (c, d, Insn.Reg s, off) ->
      put_u8 b t_jcond_reg; put_u8 b (cond_code c); put_reg b d; put_reg b s;
      put_i32 b (off land 0xffff_ffff)
  | Insn.Jcond (c, d, Insn.Imm i, off) ->
      put_u8 b t_jcond_imm; put_u8 b (cond_code c); put_reg b d; put_i64 b i;
      put_i32 b (off land 0xffff_ffff)
  | Insn.Call h -> put_u8 b t_call; put_str b h
  | Insn.Exit -> put_u8 b t_exit
  | Insn.Guard (Insn.Gread, r) -> put_u8 b t_guard_r; put_reg b r
  | Insn.Guard (Insn.Gwrite, r) -> put_u8 b t_guard_w; put_reg b r
  | Insn.Checkpoint id -> put_u8 b t_checkpoint; put_i32 b id
  | Insn.Xstore (sz, d, off, s) ->
      put_u8 b t_xstore; put_u8 b (size_code sz); put_reg b d; put_reg b s;
      put_i32 b (off land 0xffff_ffff)

let get_u8 s off =
  if off >= String.length s then fail "truncated at %d" off
  else (Char.code s.[off], off + 1)

let get_reg s off =
  let v, off = get_u8 s off in
  if v > 10 then fail "bad register %d" v else (Reg.of_int v, off)

let get_i32 s off =
  let v = ref 0 in
  let off' = ref off in
  for i = 0 to 3 do
    let b, o = get_u8 s !off' in
    v := !v lor (b lsl (8 * i));
    off' := o
  done;
  (* sign-extend from 32 bits *)
  let v = !v in
  let v = if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v in
  (v, !off')

let get_i64 s off =
  let v = ref 0L in
  let off' = ref off in
  for i = 0 to 7 do
    let b, o = get_u8 s !off' in
    v := Int64.logor !v (Int64.shift_left (Int64.of_int b) (8 * i));
    off' := o
  done;
  (!v, !off')

let get_str s off =
  let n, off = get_i32 s off in
  if n < 0 || off + n > String.length s then fail "bad string length %d" n;
  (String.sub s off n, off + n)

let decoded_size s off =
  let tag, off = get_u8 s off in
  if tag = t_alu then begin
    let op, off = get_u8 s off in
    let d, off = get_reg s off in
    let kind, off = get_u8 s off in
    if kind = 0 then
      let r, off = get_reg s off in
      (Insn.Alu (alu_of_code op, d, Insn.Reg r), off)
    else
      let i, off = get_i64 s off in
      (Insn.Alu (alu_of_code op, d, Insn.Imm i), off)
  end
  else if tag = t_neg then
    let d, off = get_reg s off in
    (Insn.Neg d, off)
  else if tag = t_mov_reg then begin
    let d, off = get_reg s off in
    let r, off = get_reg s off in
    (Insn.Mov (d, Insn.Reg r), off)
  end
  else if tag = t_mov_imm then begin
    let d, off = get_reg s off in
    let i, off = get_i64 s off in
    (Insn.Mov (d, Insn.Imm i), off)
  end
  else if tag = t_ldx then begin
    let sz, off = get_u8 s off in
    let d, off = get_reg s off in
    let src, off = get_reg s off in
    let o, off = get_i32 s off in
    (Insn.Ldx (size_of_code sz, d, src, o), off)
  end
  else if tag = t_stx then begin
    let sz, off = get_u8 s off in
    let d, off = get_reg s off in
    let src, off = get_reg s off in
    let o, off = get_i32 s off in
    (Insn.Stx (size_of_code sz, d, o, src), off)
  end
  else if tag = t_st then begin
    let sz, off = get_u8 s off in
    let d, off = get_reg s off in
    let o, off = get_i32 s off in
    let i, off = get_i64 s off in
    (Insn.St (size_of_code sz, d, o, i), off)
  end
  else if tag = t_atomic then begin
    let op, off = get_u8 s off in
    let sz, off = get_u8 s off in
    let d, off = get_reg s off in
    let src, off = get_reg s off in
    let o, off = get_i32 s off in
    (Insn.Atomic (atomic_of_code op, size_of_code sz, d, o, src), off)
  end
  else if tag = t_ja then
    let o, off = get_i32 s off in
    (Insn.Ja o, off)
  else if tag = t_jcond_reg then begin
    let c, off = get_u8 s off in
    let d, off = get_reg s off in
    let src, off = get_reg s off in
    let o, off = get_i32 s off in
    (Insn.Jcond (cond_of_code c, d, Insn.Reg src, o), off)
  end
  else if tag = t_jcond_imm then begin
    let c, off = get_u8 s off in
    let d, off = get_reg s off in
    let i, off = get_i64 s off in
    let o, off = get_i32 s off in
    (Insn.Jcond (cond_of_code c, d, Insn.Imm i, o), off)
  end
  else if tag = t_call then
    let h, off = get_str s off in
    (Insn.Call h, off)
  else if tag = t_exit then (Insn.Exit, off)
  else if tag = t_guard_r then
    let r, off = get_reg s off in
    (Insn.Guard (Insn.Gread, r), off)
  else if tag = t_guard_w then
    let r, off = get_reg s off in
    (Insn.Guard (Insn.Gwrite, r), off)
  else if tag = t_checkpoint then
    let id, off = get_i32 s off in
    (Insn.Checkpoint id, off)
  else if tag = t_xstore then begin
    let sz, off = get_u8 s off in
    let d, off = get_reg s off in
    let src, off = get_reg s off in
    let o, off = get_i32 s off in
    (Insn.Xstore (size_of_code sz, d, o, src), off)
  end
  else fail "bad instruction tag 0x%02x" tag

let encode prog =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  put_u8 b version;
  put_u8 b (if Prog.is_instrumented prog then 1 else 0);
  put_str b (Prog.name prog);
  put_i32 b (Prog.length prog);
  Array.iter (encode_insn b) (Prog.insns prog);
  Buffer.contents b

let decode s =
  let ml = String.length magic in
  if String.length s < ml + 2 || String.sub s 0 ml <> magic then
    fail "bad magic";
  let v, off = get_u8 s ml in
  if v <> version then fail "unsupported version %d" v;
  let instr, off = get_u8 s off in
  let name, off = get_str s off in
  let n, off = get_i32 s off in
  if n < 0 then fail "bad instruction count %d" n;
  let off = ref off in
  let insns =
    Array.init n (fun _ ->
        let insn, o = decoded_size s !off in
        off := o;
        insn)
  in
  Prog.create ~allow_instrumentation:(instr = 1) ~name insns
