type item =
  | I of Insn.t
  | L of string
  | Ja_l of string
  | Jcond_l of Insn.cond * Reg.t * Insn.src * string

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let assemble ?allow_instrumentation ~name items =
  let labels = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (fun item ->
      match item with
      | L l ->
          if Hashtbl.mem labels l then fail "duplicate label %s" l;
          Hashtbl.replace labels l !pc
      | I _ | Ja_l _ | Jcond_l _ -> incr pc)
    items;
  let resolve pc l =
    match Hashtbl.find_opt labels l with
    | Some target -> target - pc - 1
    | None -> fail "undefined label %s" l
  in
  let insns = ref [] in
  let pc = ref 0 in
  List.iter
    (fun item ->
      let emit i =
        insns := i :: !insns;
        incr pc
      in
      match item with
      | L _ -> ()
      | I i -> emit i
      | Ja_l l -> emit (Insn.Ja (resolve !pc l))
      | Jcond_l (c, r, s, l) -> emit (Insn.Jcond (c, r, s, resolve !pc l)))
    items;
  let insns = Array.of_list (List.rev !insns) in
  Prog.create ?allow_instrumentation ~name insns

let mov d s = I (Insn.Mov (d, Insn.Reg s))
let movi d i = I (Insn.Mov (d, Insn.Imm i))
let alu op d s = I (Insn.Alu (op, d, Insn.Reg s))
let alui op d i = I (Insn.Alu (op, d, Insn.Imm i))
let ldx sz d s off = I (Insn.Ldx (sz, d, s, off))
let stx sz d off s = I (Insn.Stx (sz, d, off, s))
let sti sz d off i = I (Insn.St (sz, d, off, i))
let call h = I (Insn.Call h)
let exit_ = I Insn.Exit
let label l = L l
let ja l = Ja_l l
let jmp c a b l = Jcond_l (c, a, Insn.Reg b, l)
let jmpi c a i l = Jcond_l (c, a, Insn.Imm i, l)
