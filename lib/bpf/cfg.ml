type block = { id : int; first : int; last : int; succs : int list }

type t = {
  blocks : block array;
  pc_block : int array;  (* pc -> block id, or -1 *)
  preds : int list array;
  (* dom.(b) = sorted list of dominator block ids; [] for unreachable b <> 0 *)
  dom : int list array;
  reach : bool array;
}

type loop = {
  header : int;
  back_edge_src : int;
  back_edge_pc : int;
  body : int list;
}

let successors_of_pc insns pc =
  let insn = insns.(pc) in
  let t = Insn.jump_targets pc insn in
  if Insn.falls_through insn then (pc + 1) :: t else t

let build prog =
  let insns = Prog.insns prog in
  let n = Array.length insns in
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun pc insn ->
      match insn with
      | Insn.Ja _ | Insn.Jcond _ | Insn.Exit ->
          List.iter (fun t -> leader.(t) <- true) (Insn.jump_targets pc insn);
          if pc + 1 < n then leader.(pc + 1) <- true
      | _ -> ())
    insns;
  let starts = ref [] in
  for pc = n - 1 downto 0 do
    if leader.(pc) then starts := pc :: !starts
  done;
  let starts = Array.of_list !starts in
  let nb = Array.length starts in
  let pc_block = Array.make n (-1) in
  let bounds =
    Array.mapi
      (fun i first ->
        let last = if i + 1 < nb then starts.(i + 1) - 1 else n - 1 in
        for pc = first to last do
          pc_block.(pc) <- i
        done;
        (first, last))
      starts
  in
  let blocks =
    Array.mapi
      (fun i (first, last) ->
        let succ_pcs = successors_of_pc insns last in
        let succs = List.sort_uniq Int.compare (List.map (fun pc -> pc_block.(pc)) succ_pcs) in
        { id = i; first; last; succs })
      bounds
  in
  let preds = Array.make nb [] in
  Array.iter
    (fun b -> List.iter (fun s -> preds.(s) <- b.id :: preds.(s)) b.succs)
    blocks;
  (* Reachability from entry. *)
  let reach = Array.make nb false in
  let rec dfs b =
    if not reach.(b) then (
      reach.(b) <- true;
      List.iter dfs blocks.(b).succs)
  in
  dfs 0;
  (* Iterative dominator computation over bitsets encoded as bool arrays. *)
  let full = Array.make nb true in
  let dom = Array.init nb (fun i -> if i = 0 then Array.make nb false else Array.copy full) in
  dom.(0).(0) <- true;
  if nb > 0 then
    for i = 1 to nb - 1 do
      if not reach.(i) then dom.(i) <- Array.make nb false
    done;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to nb - 1 do
      if reach.(b) then begin
        let inter = Array.make nb true in
        let has_pred = ref false in
        List.iter
          (fun p ->
            if reach.(p) then begin
              has_pred := true;
              for j = 0 to nb - 1 do
                inter.(j) <- inter.(j) && dom.(p).(j)
              done
            end)
          preds.(b);
        if not !has_pred then Array.fill inter 0 nb false;
        inter.(b) <- true;
        if inter <> dom.(b) then begin
          dom.(b) <- inter;
          changed := true
        end
      end
    done
  done;
  let dom_lists =
    Array.mapi
      (fun b bits ->
        if (not reach.(b)) && b <> 0 then []
        else
          let l = ref [] in
          for j = nb - 1 downto 0 do
            if bits.(j) then l := j :: !l
          done;
          !l)
      dom
  in
  { blocks; pc_block; preds; dom = dom_lists; reach }

let blocks g = g.blocks

let block_of_pc g pc =
  if pc < 0 || pc >= Array.length g.pc_block || g.pc_block.(pc) < 0 then
    invalid_arg (Printf.sprintf "Cfg.block_of_pc: %d" pc)
  else g.blocks.(g.pc_block.(pc))

let preds g b = g.preds.(b)
let dominators g b = g.dom.(b)
let dominates g a b = List.mem a g.dom.(b)
let reachable g b = g.reach.(b)

let natural_loop g ~header ~src =
  (* Nodes that reach [src] without passing through [header], plus both. *)
  let nb = Array.length g.blocks in
  let in_loop = Array.make nb false in
  in_loop.(header) <- true;
  let rec add b =
    if not in_loop.(b) then begin
      in_loop.(b) <- true;
      List.iter add g.preds.(b)
    end
  in
  add src;
  let body = ref [] in
  for b = nb - 1 downto 0 do
    if in_loop.(b) then body := b :: !body
  done;
  !body

let loops g =
  let ls = ref [] in
  Array.iter
    (fun b ->
      if g.reach.(b.id) then
        List.iter
          (fun s -> if dominates g s b.id then
              let body = natural_loop g ~header:s ~src:b.id in
              ls :=
                { header = s; back_edge_src = b.id; back_edge_pc = b.last; body }
                :: !ls)
          b.succs)
    g.blocks;
  (* innermost first: sort by body size ascending *)
  List.sort (fun a b -> Int.compare (List.length a.body) (List.length b.body)) !ls

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun b ->
      Format.fprintf ppf "B%d [%d..%d] -> %a%s@," b.id b.first b.last
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        b.succs
        (if g.reach.(b.id) then "" else " (unreachable)"))
    g.blocks;
  Format.fprintf ppf "@]"
