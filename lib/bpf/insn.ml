type size = U8 | U16 | U32 | U64

let size_bytes = function U8 -> 1 | U16 -> 2 | U32 -> 4 | U64 -> 8

type alu_op = Add | Sub | Mul | Div | Mod | And | Or | Xor | Lsh | Rsh | Arsh

type cond = Eq | Ne | Lt | Le | Gt | Ge | Slt | Sle | Sgt | Sge | Set

type src = Reg of Reg.t | Imm of int64

type atomic_op =
  | Atomic_add
  | Atomic_or
  | Atomic_and
  | Atomic_xor
  | Fetch_add
  | Fetch_or
  | Fetch_and
  | Fetch_xor
  | Xchg
  | Cmpxchg

type guard_kind = Gread | Gwrite

type t =
  | Alu of alu_op * Reg.t * src
  | Neg of Reg.t
  | Mov of Reg.t * src
  | Ldx of size * Reg.t * Reg.t * int
  | Stx of size * Reg.t * int * Reg.t
  | St of size * Reg.t * int * int64
  | Atomic of atomic_op * size * Reg.t * int * Reg.t
  | Ja of int
  | Jcond of cond * Reg.t * src * int
  | Call of string
  | Exit
  | Guard of guard_kind * Reg.t
  | Checkpoint of int
  | Xstore of size * Reg.t * int * Reg.t

let is_instrumentation = function
  | Guard _ | Checkpoint _ | Xstore _ -> true
  | _ -> false

let jump_targets pc = function
  | Ja off -> [ pc + 1 + off ]
  | Jcond (_, _, _, off) -> [ pc + 1 + off ]
  | _ -> []

let falls_through = function Ja _ | Exit -> false | _ -> true

let pp_size ppf s =
  Format.pp_print_string ppf
    (match s with U8 -> "u8" | U16 -> "u16" | U32 -> "u32" | U64 -> "u64")

let pp_alu_op ppf op =
  Format.pp_print_string ppf
    (match op with
    | Add -> "+="
    | Sub -> "-="
    | Mul -> "*="
    | Div -> "/="
    | Mod -> "%="
    | And -> "&="
    | Or -> "|="
    | Xor -> "^="
    | Lsh -> "<<="
    | Rsh -> ">>="
    | Arsh -> "s>>=")

let pp_cond ppf c =
  Format.pp_print_string ppf
    (match c with
    | Eq -> "=="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | Slt -> "s<"
    | Sle -> "s<="
    | Sgt -> "s>"
    | Sge -> "s>="
    | Set -> "&")

let pp_src ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Format.fprintf ppf "%Ld" i

let atomic_name = function
  | Atomic_add -> "add"
  | Atomic_or -> "or"
  | Atomic_and -> "and"
  | Atomic_xor -> "xor"
  | Fetch_add -> "fetch_add"
  | Fetch_or -> "fetch_or"
  | Fetch_and -> "fetch_and"
  | Fetch_xor -> "fetch_xor"
  | Xchg -> "xchg"
  | Cmpxchg -> "cmpxchg"

let pp ppf = function
  | Alu (op, d, s) -> Format.fprintf ppf "%a %a %a" Reg.pp d pp_alu_op op pp_src s
  | Neg d -> Format.fprintf ppf "%a = -%a" Reg.pp d Reg.pp d
  | Mov (d, s) -> Format.fprintf ppf "%a = %a" Reg.pp d pp_src s
  | Ldx (sz, d, s, off) ->
      Format.fprintf ppf "%a = *(%a *)(%a %+d)" Reg.pp d pp_size sz Reg.pp s off
  | Stx (sz, d, off, s) ->
      Format.fprintf ppf "*(%a *)(%a %+d) = %a" pp_size sz Reg.pp d off Reg.pp s
  | St (sz, d, off, imm) ->
      Format.fprintf ppf "*(%a *)(%a %+d) = %Ld" pp_size sz Reg.pp d off imm
  | Atomic (op, sz, d, off, s) ->
      Format.fprintf ppf "%s.%a *(%a %+d), %a" (atomic_name op) pp_size sz
        Reg.pp d off Reg.pp s
  | Ja off -> Format.fprintf ppf "goto %+d" off
  | Jcond (c, d, s, off) ->
      Format.fprintf ppf "if %a %a %a goto %+d" Reg.pp d pp_cond c pp_src s off
  | Call h -> Format.fprintf ppf "call %s" h
  | Exit -> Format.pp_print_string ppf "exit"
  | Guard (Gread, r) -> Format.fprintf ppf "guard.r %a" Reg.pp r
  | Guard (Gwrite, r) -> Format.fprintf ppf "guard.w %a" Reg.pp r
  | Checkpoint id -> Format.fprintf ppf "checkpoint #%d" id
  | Xstore (sz, d, off, s) ->
      Format.fprintf ppf "*(%a *)(%a %+d) = xlate %a" pp_size sz Reg.pp d off
        Reg.pp s

let equal (a : t) (b : t) = a = b
