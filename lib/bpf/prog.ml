type t = { name : string; insns : Insn.t array; instrumented : bool }

exception Malformed of string

let stack_size = 512
let max_insns = 1_000_000

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let check_off_16 pc off =
  if off < -32768 || off > 32767 then
    fail "insn %d: memory offset %d exceeds signed 16 bits" pc off

let validate ~allow_instrumentation insns =
  let n = Array.length insns in
  if n = 0 then fail "empty program";
  if n > max_insns then fail "program too long: %d insns" n;
  let check_target pc t =
    if t < 0 || t >= n then fail "insn %d: jump target %d out of range" pc t
  in
  Array.iteri
    (fun pc insn ->
      (match insn with
      | Insn.Ldx (_, _, _, off)
      | Insn.Stx (_, _, off, _)
      | Insn.St (_, _, off, _)
      | Insn.Xstore (_, _, off, _) ->
          check_off_16 pc off
      | Insn.Atomic (_, sz, _, off, _) ->
          check_off_16 pc off;
          if sz = Insn.U8 || sz = Insn.U16 then
            fail "insn %d: atomic access must be u32 or u64" pc
      | _ -> ());
      (match insn with
      | Insn.Mov (d, _) | Insn.Alu (_, d, _) | Insn.Neg d | Insn.Ldx (_, d, _, _)
        ->
          if Reg.equal d Reg.fp then fail "insn %d: write to frame pointer" pc
      | _ -> ());
      if (not allow_instrumentation) && Insn.is_instrumentation insn then
        fail "insn %d: instrumentation instruction in input program" pc;
      List.iter (check_target pc) (Insn.jump_targets pc insn);
      if Insn.falls_through insn && pc = n - 1 then
        fail "insn %d: control falls off the end of the program" pc)
    insns

let create ?(allow_instrumentation = false) ~name insns =
  validate ~allow_instrumentation insns;
  let instrumented = Array.exists Insn.is_instrumentation insns in
  { name; insns = Array.copy insns; instrumented }

let name p = p.name
let insns p = p.insns
let length p = Array.length p.insns

let get p pc =
  if pc < 0 || pc >= Array.length p.insns then
    invalid_arg (Printf.sprintf "Prog.get: pc %d" pc)
  else p.insns.(pc)

let is_instrumented p = p.instrumented

let pp_with_notes ~notes ppf p =
  Format.fprintf ppf "@[<v>; program %s (%d insns)@," p.name
    (Array.length p.insns);
  Array.iteri
    (fun pc insn ->
      match notes pc with
      | None -> Format.fprintf ppf "%4d: %a@," pc Insn.pp insn
      | Some note ->
          Format.fprintf ppf "%4d: %-32s ; %s@," pc
            (Format.asprintf "%a" Insn.pp insn)
            note)
    p.insns;
  Format.fprintf ppf "@]"

let pp ppf p = pp_with_notes ~notes:(fun _ -> None) ppf p
