(** Control-flow graphs, dominators and natural loops.

    Used by the verifier's loop analysis (bounded vs unbounded
    classification) and by Kie to locate the back edges where C1
    cancellation points must be inserted (§3.3 of the paper). *)

type block = {
  id : int;  (** index into {!blocks} *)
  first : int;  (** pc of the first instruction *)
  last : int;  (** pc of the last instruction (inclusive) *)
  succs : int list;  (** successor block ids *)
}

type t

type loop = {
  header : int;  (** block id of the loop header *)
  back_edge_src : int;  (** block id of the back-edge source *)
  back_edge_pc : int;  (** pc of the branch instruction forming the edge *)
  body : int list;  (** block ids of the natural loop, header included *)
}

val build : Prog.t -> t

val blocks : t -> block array

val block_of_pc : t -> int -> block
(** The block containing a given pc.
    @raise Invalid_argument for an unreachable or out-of-range pc. *)

val preds : t -> int -> int list
(** Predecessor block ids. *)

val dominators : t -> int -> int list
(** [dominators g b] is the list of block ids dominating block [b]
    (including [b] itself). Unreachable blocks dominate nothing. *)

val dominates : t -> int -> int -> bool
(** [dominates g a b] holds when every path from the entry to [b] passes
    through [a]. *)

val loops : t -> loop list
(** Natural loops, one per back edge, innermost first. *)

val reachable : t -> int -> bool
(** Whether a block is reachable from the entry. *)

val pp : Format.formatter -> t -> unit
