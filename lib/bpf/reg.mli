(** Registers of the KFlex bytecode machine.

    The register file mirrors eBPF: [R0] holds return values of helper calls
    and of the extension itself, [R1]–[R5] carry helper-call arguments and are
    clobbered across calls, [R6]–[R9] are callee-saved, and [R10] is the
    read-only frame pointer into the extension stack. *)

type t = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10

val to_int : t -> int
(** [to_int r] is the register number, 0–10. *)

val of_int : int -> t
(** [of_int n] is the register numbered [n].
    @raise Invalid_argument if [n] is outside 0–10. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val all : t list
(** All registers in numeric order. *)

val caller_saved : t list
(** [R0]–[R5]: clobbered by helper calls. *)

val callee_saved : t list
(** [R6]–[R9]: preserved across helper calls. *)

val fp : t
(** The frame pointer, [R10]. *)

val pp : Format.formatter -> t -> unit
(** Prints in eBPF style, e.g. [r3]. *)
