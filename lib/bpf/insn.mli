(** Instructions of the KFlex bytecode machine.

    The instruction set mirrors the eBPF ISA (64-bit ALU, sized memory
    accesses with signed 16-bit offsets, conditional jumps with relative
    targets, helper calls, atomics), plus two instrumentation instructions
    that only the Kie instrumentation engine may emit:

    - [Guard]: SFI address sanitisation, [rd <- heap_base + (rd land mask)].
      Modelled as a single instruction, matching the one-[AND]-plus-indexed-
      addressing sequence KFlex's JIT emits on x86 (§4.2 of the paper).
    - [Checkpoint]: a cancellation point — semantically a load from the
      extension heap's [*terminate] slot (§3.3). Faults when the runtime has
      requested cancellation.

    The verifier rejects input programs containing either; they exist only in
    instrumented programs. *)

type size = U8 | U16 | U32 | U64

val size_bytes : size -> int
(** Width of a sized access in bytes: 1, 2, 4 or 8. *)

(** Binary ALU operations; all operate on the full 64-bit register.
    [Div] and [Mod] are unsigned, as in eBPF; division by zero yields 0
    (matching the behaviour mandated since ISA v4). *)
type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Lsh
  | Rsh
  | Arsh

(** Jump conditions. [Lt]/[Le]/[Gt]/[Ge] compare unsigned, the [S]-prefixed
    forms compare signed, and [Set] tests [dst land src <> 0]. *)
type cond =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Slt
  | Sle
  | Sgt
  | Sge
  | Set

(** Second operand of ALU and jump instructions. *)
type src = Reg of Reg.t | Imm of int64

(** Atomic read-modify-write operations on heap memory. [Fetch_add] etc.
    return the old value in the source register; [Xchg] swaps; [Cmpxchg]
    compares against [R0] and writes the old value back to [R0], as in
    eBPF. *)
type atomic_op =
  | Atomic_add
  | Atomic_or
  | Atomic_and
  | Atomic_xor
  | Fetch_add
  | Fetch_or
  | Fetch_and
  | Fetch_xor
  | Xchg
  | Cmpxchg

(** Whether a guard sanitises an address about to be read or written;
    performance mode elides [Gread] guards (§3.2). *)
type guard_kind = Gread | Gwrite

type t =
  | Alu of alu_op * Reg.t * src  (** [dst <- dst op src] *)
  | Neg of Reg.t  (** [dst <- -dst] *)
  | Mov of Reg.t * src  (** [dst <- src] (64-bit; [Imm] covers lddw) *)
  | Ldx of size * Reg.t * Reg.t * int  (** [dst <- M[src + off]] *)
  | Stx of size * Reg.t * int * Reg.t  (** [M[dst + off] <- src] *)
  | St of size * Reg.t * int * int64  (** [M[dst + off] <- imm] *)
  | Atomic of atomic_op * size * Reg.t * int * Reg.t
      (** [Atomic (op, sz, dst, off, src)]: RMW on [M[dst + off]] with
          operand [src]. Only [U32]/[U64] widths are valid. *)
  | Ja of int  (** unconditional jump, [pc <- pc + 1 + off] *)
  | Jcond of cond * Reg.t * src * int
      (** conditional jump, [pc <- pc + 1 + off] when the condition holds *)
  | Call of string  (** call a kernel helper; args r1–r5, result r0 *)
  | Exit  (** return from the extension with the value in r0 *)
  | Guard of guard_kind * Reg.t  (** Kie-only: sanitise a heap address *)
  | Checkpoint of int  (** Kie-only: cancellation point with its id *)
  | Xstore of size * Reg.t * int * Reg.t
      (** Kie-only: [M[dst + off] <- translate(src)] — store a heap pointer
          rewritten to its user-space mapping ("translate on store", §3.4).
          The source register itself is not modified. *)

val is_instrumentation : t -> bool
(** [true] exactly for [Guard] and [Checkpoint]. *)

val jump_targets : int -> t -> int list
(** [jump_targets pc insn] lists the pcs control may flow to from [insn] at
    [pc], excluding fall-through for unconditional transfers. [Exit] has no
    targets. *)

val falls_through : t -> bool
(** Whether control can continue to [pc + 1] after this instruction. *)

val pp : Format.formatter -> t -> unit

val pp_size : Format.formatter -> size -> unit

val pp_cond : Format.formatter -> cond -> unit

val pp_alu_op : Format.formatter -> alu_op -> unit

val equal : t -> t -> bool
