(** Binary (de)serialisation of programs.

    This is the on-disk/wire format in which extensions are handed to the
    loader, playing the role of eBPF's instruction encoding. The format is
    self-contained (helper names are inlined, length-prefixed) and
    versioned; [decode] re-validates through {!Prog.create}, so a decoded
    program is structurally well-formed by construction. *)

exception Decode_error of string

val encode : Prog.t -> string
(** Serialise a program, including its name and instrumentation flag. *)

val decode : string -> Prog.t
(** Inverse of [encode].
    @raise Decode_error on truncated or corrupt input.
    @raise Prog.Malformed if the decoded body fails validation. *)

val encode_insn : Buffer.t -> Insn.t -> unit
val decoded_size : string -> int -> Insn.t * int
(** [decoded_size s off] decodes one instruction at byte offset [off],
    returning it with the offset just past it. Exposed for tests. *)
