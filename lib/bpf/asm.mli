(** Label-based assembler.

    Programs are written as a list of items mixing instructions and symbolic
    labels; [assemble] resolves labels to relative jump offsets and produces a
    validated {!Prog.t}. This is the target of the eclang code generator and
    the convenient way to write extensions by hand in tests and examples. *)

type item =
  | I of Insn.t  (** a concrete instruction *)
  | L of string  (** a label definition *)
  | Ja_l of string  (** unconditional jump to a label *)
  | Jcond_l of Insn.cond * Reg.t * Insn.src * string
      (** conditional jump to a label *)

exception Error of string

val assemble : ?allow_instrumentation:bool -> name:string -> item list -> Prog.t
(** Resolve labels and validate.
    @raise Error on duplicate or undefined labels.
    @raise Prog.Malformed if the resolved program is invalid. *)

(** Convenience constructors, so assembly reads close to eBPF mnemonics. *)

val mov : Reg.t -> Reg.t -> item
val movi : Reg.t -> int64 -> item
val alu : Insn.alu_op -> Reg.t -> Reg.t -> item
val alui : Insn.alu_op -> Reg.t -> int64 -> item
val ldx : Insn.size -> Reg.t -> Reg.t -> int -> item
val stx : Insn.size -> Reg.t -> int -> Reg.t -> item
val sti : Insn.size -> Reg.t -> int -> int64 -> item
val call : string -> item
val exit_ : item
val label : string -> item
val ja : string -> item
val jmp : Insn.cond -> Reg.t -> Reg.t -> string -> item
val jmpi : Insn.cond -> Reg.t -> int64 -> string -> item
