(** Abstract syntax of eclang.

    eclang is the small C-like language our extensions are written in,
    standing in for the paper's C → LLVM → eBPF toolchain. It compiles to
    KFlex bytecode and exercises exactly the programming model of §3.1:
    extension-defined structs living in the extension heap, dynamic
    allocation ([new]/[free]), unbounded [while] loops, spin locks, and
    helper calls into the kernel interface.

    All scalar values are unsigned 64-bit. Pointers are typed by the struct
    they reference; struct fields may be narrower integers, pointers, or
    fixed-size arrays. Globals live at fixed heap offsets; locals live in
    the extension stack frame. *)

type field_ty =
  | Fu8
  | Fu16
  | Fu32
  | Fu64
  | Fptr of string  (** pointer to a named struct *)
  | Farr of field_ty * int  (** fixed-size array (not of arrays) *)

type ty =
  | Tu64
  | Tptr of string
  | Tctx  (** the hook context handle; only the entry parameter has it *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | BAnd | BOr | BXor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne  (** unsigned comparisons *)
  | SLt | SLe | SGt | SGe  (** signed comparisons *)
  | LAnd | LOr  (** short-circuit *)

type unop = Neg | LNot | BNot

type expr =
  | E_int of int64
  | E_null
  | E_var of string
  | E_unop of unop * expr
  | E_binop of binop * expr * expr
  | E_field of expr * string  (** [p.f] where [p : ptr<S>] *)
  | E_index of expr * expr  (** [a[i]] where [a] is an array lvalue path *)
  | E_addr of string  (** [&g]: heap address of a global, or stack address
      of a local buffer *)
  | E_call of string * expr list  (** helper or user function call *)
  | E_new of string  (** [new S] = [kflex_malloc (sizeof S)], typed *)

type lvalue =
  | L_var of string
  | L_field of expr * string
  | L_index of expr * expr

type stmt =
  | S_var of string * ty option * expr  (** [var x: t = e;] *)
  | S_buf of string * int  (** [var buf: bytes[N];] — stack buffer *)
  | S_assign of lvalue * expr
  | S_if of expr * stmt list * stmt list
  | S_while of expr * stmt list
  | S_for of stmt * expr * stmt * stmt list
      (** [for (init; cond; step) body] — [continue] jumps to [step] *)
  | S_return of expr option
  | S_break
  | S_continue
  | S_expr of expr
  | S_free of expr  (** [free e;] = [kflex_free] *)

type struct_decl = { sname : string; sfields : (string * field_ty) list }

type global_decl = { gname : string; gty : field_ty }

type fn_decl = {
  fname : string;
  params : (string * ty) list;
  ret : bool;  (** whether the function returns a value *)
  body : stmt list;
}

type program = {
  structs : struct_decl list;
  globals : global_decl list;
  fns : fn_decl list;
}
