type field_ty =
  | Fu8
  | Fu16
  | Fu32
  | Fu64
  | Fptr of string
  | Farr of field_ty * int

type ty = Tu64 | Tptr of string | Tctx

type binop =
  | Add | Sub | Mul | Div | Mod
  | BAnd | BOr | BXor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | SLt | SLe | SGt | SGe
  | LAnd | LOr

type unop = Neg | LNot | BNot

type expr =
  | E_int of int64
  | E_null
  | E_var of string
  | E_unop of unop * expr
  | E_binop of binop * expr * expr
  | E_field of expr * string
  | E_index of expr * expr
  | E_addr of string
  | E_call of string * expr list
  | E_new of string

type lvalue =
  | L_var of string
  | L_field of expr * string
  | L_index of expr * expr

type stmt =
  | S_var of string * ty option * expr
  | S_buf of string * int
  | S_assign of lvalue * expr
  | S_if of expr * stmt list * stmt list
  | S_while of expr * stmt list
  | S_for of stmt * expr * stmt * stmt list
      (** [for (init; cond; step) body] — [continue] jumps to [step] *)
  | S_return of expr option
  | S_break
  | S_continue
  | S_expr of expr
  | S_free of expr

type struct_decl = { sname : string; sfields : (string * field_ty) list }

type global_decl = { gname : string; gty : field_ty }

type fn_decl = {
  fname : string;
  params : (string * ty) list;
  ret : bool;
  body : stmt list;
}

type program = {
  structs : struct_decl list;
  globals : global_decl list;
  fns : fn_decl list;
}
