(** Recursive-descent parser for eclang.

    Grammar sketch:
    {v
    program  := (struct | global | fn)*
    struct   := "struct" IDENT "{" (IDENT ":" fieldty ";")* "}"
    global   := "global" IDENT ":" fieldty ";"
    fn       := "fn" IDENT "(" params ")" ("->" "u64")? block
    fieldty  := "u8" | "u16" | "u32" | "u64" | "ptr" "<" IDENT ">"
              | "[" fieldty ";" INT "]"
    ty       := "u64" | "ptr" "<" IDENT ">" | "ctx"
    stmt     := "var" IDENT (":" ty)? "=" expr ";"
              | "var" IDENT ":" "bytes" "[" INT "]" ";"
              | lvalue ("=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&="
                        | "|=" | "^=" | "<<=" | ">>=") expr ";"
              | "if" ... | "while" (expr) block
              | "for" "(" init ";" expr ";" step ")" block
              | "return" expr? ";" | "break;" | "continue;"
              | "free" expr ";" | expr ";"
    expr     := precedence-climbing over ||, &&, |, ^, &, ==/!=,
                </<=/>/>=, <</>>, +/-, * / %, unary, postfix (.f, [i],
                calls), atoms (INT, IDENT, null, new S, &IDENT, (e))
    v}

    Signed comparisons are exposed as builtin calls [slt]/[sle]/[sgt]/[sge]
    rather than operators. *)

exception Error of { line : int; msg : string }

val parse : string -> Ast.program
(** @raise Error on syntax errors (with source line).
    @raise Lexer.Error on lexical errors. *)
