type token = INT of int64 | IDENT of string | KW of string | PUNCT of string | EOF

type t = { tok : token; line : int }

exception Error of { line : int; msg : string }

let keywords =
  [ "struct"; "global"; "fn"; "var"; "if"; "else"; "while"; "for"; "return";
    "break"; "continue"; "null"; "new"; "free"; "bytes" ]

let puncts =
  (* longest first *)
  [ "<<="; ">>="; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^=";
    "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "->";
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "=";
    "("; ")"; "{"; "}"; "["; "]"; ";"; ":"; ","; "." ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let pp_token ppf = function
  | INT i -> Format.fprintf ppf "%Ld" i
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | PUNCT s -> Format.fprintf ppf "'%s'" s
  | EOF -> Format.pp_print_string ppf "end of input"

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let i = ref 0 in
  let fail msg = raise (Error { line = !line; msg }) in
  let push tok = toks := { tok; line = !line } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let closed = ref false in
      i := !i + 2;
      while not !closed do
        if !i + 1 >= n then fail "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else begin
          if src.[!i] = '\n' then incr line;
          incr i
        end
      done
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
      then begin
        i := !i + 2;
        while !i < n && (is_hex src.[!i] || src.[!i] = '_') do incr i done;
        let s = String.sub src start (!i - start) in
        let s = String.concat "" (String.split_on_char '_' s) in
        match Int64.of_string_opt s with
        | Some v -> push (INT v)
        | None -> fail ("bad hex literal " ^ s)
      end
      else begin
        while !i < n && (is_digit src.[!i] || src.[!i] = '_') do incr i done;
        let s = String.sub src start (!i - start) in
        let s = String.concat "" (String.split_on_char '_' s) in
        match Int64.of_string_opt s with
        | Some v -> push (INT v)
        | None -> fail ("bad integer literal " ^ s)
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then push (KW s) else push (IDENT s)
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let l = String.length p in
            !i + l <= n && String.sub src !i l = p)
          puncts
      in
      match matched with
      | Some p ->
          push (PUNCT p);
          i := !i + String.length p
      | None -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  push EOF;
  List.rev !toks
