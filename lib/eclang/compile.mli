(** The eclang compiler: typed AST → KFlex bytecode.

    Calling convention and register use:
    - [r6] holds the hook context for the whole program;
    - [r9] holds the extension heap base (fetched once via
      [kflex_heap_base]), so global accesses compile to one load/store with
      a constant offset — which the verifier's range analysis then proves
      in-bounds, eliding their SFI guards (§5.4);
    - locals live in 8-byte stack-frame slots; expressions evaluate in the
      register pool r1–r5/r7/r8, spilling around helper calls;
    - user functions are inlined (the ISA has no calls between extension
      functions), with recursion rejected.

    Builtins beyond the kernel helper interface: [ld8/ld16/ld32/ld64 (addr,
    const_off)] and [st8/st16/st32/st64 (addr, const_off, v)] raw accesses,
    [new S] / [free p] for the KFlex allocator, and signed comparison
    functions [slt]/[sle]/[sgt]/[sge]. *)

exception Error of string

type layout = {
  globals : (string * (int64 * Ast.field_ty)) list;
      (** heap offset and type per global, offsets relative to heap start *)
  globals_size : int64;  (** bytes to reserve past {!Kflex.globals_base} *)
  struct_layouts : (string * ((string * (int * Ast.field_ty)) list * int)) list;
      (** per struct: field offsets/types, and total size *)
}

type compiled = { prog : Kflex_bpf.Prog.t; layout : layout }

val compile :
  ?entry:string -> ?use_heap:bool -> ?name:string -> Ast.program -> compiled
(** Compile a parsed program. [entry] (default ["prog"]) names the handler
    function, which must take a single [ctx] parameter. [use_heap] (default
    [true]) — set [false] for plain-eBPF extensions (heap constructs then
    become compile errors).
    @raise Error on type or codegen errors. *)

val compile_string :
  ?entry:string -> ?use_heap:bool -> ?name:string -> string -> compiled
(** Parse and compile.
    @raise Parser.Error / Lexer.Error / Error accordingly. *)

val global_offset : compiled -> string -> int64
(** Heap offset of a global, relative to the heap base (i.e. already
    including {!Kflex.globals_base}).
    @raise Not_found for unknown globals. *)

val field_offset : compiled -> struct_:string -> string -> int * Ast.field_ty
(** Offset and type of a struct field (host-side heap inspection).
    @raise Not_found for unknown structs/fields. *)

val sizeof : compiled -> string -> int
(** Size of a struct in bytes. @raise Not_found. *)
