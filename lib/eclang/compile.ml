open Ast
open Kflex_bpf

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type layout = {
  globals : (string * (int64 * field_ty)) list;
  globals_size : int64;
  struct_layouts : (string * ((string * (int * field_ty)) list * int)) list;
}

type compiled = { prog : Prog.t; layout : layout }

(* --- sizes and layout --------------------------------------------------- *)

let globals_base = 64

let rec fty_size structs = function
  | Fu8 -> 1
  | Fu16 -> 2
  | Fu32 -> 4
  | Fu64 | Fptr _ -> 8
  | Farr (elt, n) -> fty_size structs elt * n

let fty_align structs = function
  | Fu8 -> 1
  | Fu16 -> 2
  | Fu32 -> 4
  | Fu64 | Fptr _ -> 8
  | Farr (elt, _) -> fty_size structs elt |> fun s -> min 8 (max 1 s)

let align_up v a = (v + a - 1) / a * a

let layout_struct structs (sd : struct_decl) =
  let off = ref 0 in
  let fields =
    List.map
      (fun (f, t) ->
        let a = fty_align structs t in
        off := align_up !off a;
        let o = !off in
        off := !off + fty_size structs t;
        (f, (o, t)))
      sd.sfields
  in
  (fields, align_up !off 8)

(* --- compiler state ------------------------------------------------------ *)

type binding =
  | B_local of int * ty  (** byte offset below fp (address r10 - off), type *)
  | B_buf of int * int  (** stack buffer: offset below fp, size *)
  | B_ctx

type ret_target = R_entry | R_inline of { slot : int option; end_lbl : string }

type cg = {
  mutable items : Asm.item list;  (** reversed *)
  mutable pool : Reg.t list;  (** free registers *)
  mutable live : Reg.t list;  (** allocated registers *)
  mutable next_slot : int;  (** next free byte offset below fp (multiple of 8) *)
  mutable labelc : int;
  structs : (string, (string * (int * field_ty)) list * int) Hashtbl.t;
  globals : (string, int * field_ty) Hashtbl.t;
  fns : (string, fn_decl) Hashtbl.t;
  use_heap : bool;
  mutable inline_stack : string list;
}

let all_pool = [ Reg.R1; Reg.R2; Reg.R3; Reg.R4; Reg.R5; Reg.R7; Reg.R8 ]

let emit cg i = cg.items <- i :: cg.items
let emiti cg insn = emit cg (Asm.I insn)

let fresh_label cg prefix =
  cg.labelc <- cg.labelc + 1;
  Printf.sprintf "%s_%d" prefix cg.labelc

let alloc_reg cg =
  match cg.pool with
  | r :: rest ->
      cg.pool <- rest;
      cg.live <- r :: cg.live;
      r
  | [] -> fail "expression too deep: out of registers"

let free_reg cg r =
  if List.exists (Reg.equal r) cg.live then begin
    cg.live <- List.filter (fun x -> not (Reg.equal x r)) cg.live;
    cg.pool <- r :: cg.pool
  end

let alloc_slot cg =
  let s = cg.next_slot in
  cg.next_slot <- cg.next_slot + 8;
  if cg.next_slot > Prog.stack_size then fail "stack frame overflow (512 bytes)";
  s + 8 (* slot addressed as r10 - (s+8) *)

let alloc_bytes cg n =
  let n = align_up n 8 in
  let s = cg.next_slot in
  cg.next_slot <- cg.next_slot + n;
  if cg.next_slot > Prog.stack_size then fail "stack frame overflow (512 bytes)";
  s + n (* buffer occupies [r10 - (s+n), r10 - s) *)

(* temps inside one statement: save/restore the slot watermark *)
let with_watermark cg f =
  let saved = cg.next_slot in
  let r = f () in
  cg.next_slot <- saved;
  r

let size_insn = function
  | 1 -> Insn.U8
  | 2 -> Insn.U16
  | 4 -> Insn.U32
  | 8 -> Insn.U64
  | _ -> assert false

let width_of_fty = function
  | Fu8 -> 1
  | Fu16 -> 2
  | Fu32 -> 4
  | Fu64 | Fptr _ -> 8
  | Farr _ -> fail "array field used as a scalar"

let ty_of_fty = function
  | Fptr s -> Tptr s
  | Farr _ -> fail "array field used as a scalar"
  | _ -> Tu64

(* --- helper signatures --------------------------------------------------- *)

type hkind = K_ctx | K_u64

let helper_sigs : (string * (hkind list * bool)) list =
  [
    ("pkt_len", ([ K_ctx ], true));
    ("pkt_read_u8", ([ K_ctx; K_u64 ], true));
    ("pkt_read_u16", ([ K_ctx; K_u64 ], true));
    ("pkt_read_u32", ([ K_ctx; K_u64 ], true));
    ("pkt_read_u64", ([ K_ctx; K_u64 ], true));
    ("pkt_write_u8", ([ K_ctx; K_u64; K_u64 ], false));
    ("pkt_write_u16", ([ K_ctx; K_u64; K_u64 ], false));
    ("pkt_write_u32", ([ K_ctx; K_u64; K_u64 ], false));
    ("pkt_write_u64", ([ K_ctx; K_u64; K_u64 ], false));
    ("bpf_sk_lookup_udp", ([ K_ctx; K_u64; K_u64; K_u64; K_u64 ], true));
    ("bpf_sk_lookup_tcp", ([ K_ctx; K_u64; K_u64; K_u64; K_u64 ], true));
    ("bpf_sk_release", ([ K_u64 ], false));
    ("kflex_malloc", ([ K_u64 ], true));
    ("kflex_free", ([ K_u64 ], false));
    ("kflex_spin_lock", ([ K_u64 ], true));
    ("kflex_spin_unlock", ([ K_u64 ], false));
    ("kflex_heap_base", ([], true));
    ("bpf_ktime_get_ns", ([], true));
    ("bpf_get_prandom_u32", ([], true));
    ("bpf_get_smp_processor_id", ([], true));
    ("bpf_map_lookup", ([ K_u64; K_u64; K_u64 ], true));
    ("bpf_map_update", ([ K_u64; K_u64; K_u64 ], true));
    ("bpf_map_delete", ([ K_u64; K_u64 ], true));
    ("bpf_map_lock", ([ K_u64; K_u64 ], true));
    ("bpf_map_unlock", ([ K_u64 ], false));
    ("bpf_map_sum", ([ K_u64; K_u64; K_u64 ], true));
  ]

let heap_helpers =
  [ "kflex_malloc"; "kflex_free"; "kflex_spin_lock"; "kflex_spin_unlock";
    "kflex_heap_base" ]

(* --- expression compilation ---------------------------------------------- *)

type env = (string * binding) list

let lookup_binding env n = List.assoc_opt n env

let load_global_addr cg rd off =
  if not cg.use_heap then fail "global used in a heap-less (eBPF-mode) program";
  emit cg (Asm.mov rd Reg.R9);
  if off <> 0 then emit cg (Asm.alui Insn.Add rd (Int64.of_int off))

let emit_mem_load cg rd rbase off width =
  if off >= -32768 && off <= 32767 then
    emit cg (Asm.ldx (size_insn width) rd rbase off)
  else begin
    if not (Reg.equal rd rbase) then emit cg (Asm.mov rd rbase)
    else ();
    emit cg (Asm.alui Insn.Add rd (Int64.of_int off));
    emit cg (Asm.ldx (size_insn width) rd rd 0)
  end

let binop_alu = function
  | Add -> Some Insn.Add
  | Sub -> Some Insn.Sub
  | Mul -> Some Insn.Mul
  | Div -> Some Insn.Div
  | Mod -> Some Insn.Mod
  | BAnd -> Some Insn.And
  | BOr -> Some Insn.Or
  | BXor -> Some Insn.Xor
  | Shl -> Some Insn.Lsh
  | Shr -> Some Insn.Rsh
  | _ -> None

let binop_cond = function
  | Lt -> Some Insn.Lt
  | Le -> Some Insn.Le
  | Gt -> Some Insn.Gt
  | Ge -> Some Insn.Ge
  | Eq -> Some Insn.Eq
  | Ne -> Some Insn.Ne
  | SLt -> Some Insn.Slt
  | SLe -> Some Insn.Sle
  | SGt -> Some Insn.Sgt
  | SGe -> Some Insn.Sge
  | _ -> None

let signed_builtins =
  [ ("slt", SLt); ("sle", SLe); ("sgt", SGt); ("sge", SGe) ]

let mem_builtins =
  [ ("ld8", (1, false)); ("ld16", (2, false)); ("ld32", (4, false));
    ("ld64", (8, false)); ("st8", (1, true)); ("st16", (2, true));
    ("st32", (4, true)); ("st64", (8, true)) ]

let rec eval cg env e : Reg.t * ty =
  match e with
  | E_int i ->
      let rd = alloc_reg cg in
      emit cg (Asm.movi rd i);
      (rd, Tu64)
  | E_null ->
      let rd = alloc_reg cg in
      emit cg (Asm.movi rd 0L);
      (rd, Tu64)
  | E_var n -> (
      match lookup_binding env n with
      | Some (B_local (slot, t)) ->
          let rd = alloc_reg cg in
          emit cg (Asm.ldx Insn.U64 rd Reg.R10 (-slot));
          (rd, t)
      | Some B_ctx -> (Reg.R6, Tctx)
      | Some (B_buf _) -> fail "buffer %s used as a value (use &%s)" n n
      | None -> (
          match Hashtbl.find_opt cg.globals n with
          | Some (off, fty) -> (
              match fty with
              | Farr _ -> fail "global array %s used without an index" n
              | _ ->
                  let rd = alloc_reg cg in
                  if not cg.use_heap then
                    fail "global %s in a heap-less program" n;
                  emit_mem_load cg rd Reg.R9 off (width_of_fty fty);
                  (rd, ty_of_fty fty))
          | None -> fail "unbound variable %s" n))
  | E_unop (Neg, e) ->
      let r, t = eval_scalar cg env e in
      emiti cg (Insn.Neg r);
      (r, t)
  | E_unop (BNot, e) ->
      let r, _ = eval_scalar cg env e in
      emit cg (Asm.alui Insn.Xor r (-1L));
      (r, Tu64)
  | E_unop (LNot, e) ->
      let r, _ = eval_scalar cg env e in
      let l = fresh_label cg "lnot" in
      let rd = alloc_reg cg in
      emit cg (Asm.movi rd 1L);
      emit cg (Asm.jmpi Insn.Eq r 0L l);
      emit cg (Asm.movi rd 0L);
      emit cg (Asm.label l);
      free_reg cg r;
      (rd, Tu64)
  | E_binop ((LAnd | LOr), _, _) ->
      (* value context: materialise 0/1 through branches *)
      let l_false = fresh_label cg "bfalse" in
      let l_end = fresh_label cg "bend" in
      branch_false cg env e l_false;
      let rd = alloc_reg cg in
      emit cg (Asm.movi rd 1L);
      emit cg (Asm.ja l_end);
      emit cg (Asm.label l_false);
      emit cg (Asm.movi rd 0L);
      emit cg (Asm.label l_end);
      (rd, Tu64)
  | E_binop (op, a, b) -> (
      match binop_alu op with
      | Some alu ->
          let ra, ta = eval cg env a in
          let ra = own cg ra in
          let rb, tb = eval cg env b in
          emit cg (Asm.alu alu ra rb);
          free_reg cg rb;
          let t =
            match (ta, tb, op) with
            | Tptr s, _, (Add | Sub) -> Tptr s
            | _, Tptr s, Add -> Tptr s
            | _ -> Tu64
          in
          (ra, t)
      | None -> (
          match binop_cond op with
          | Some c ->
              let ra, _ = eval cg env a in
              let ra = own cg ra in
              let rb, _ = eval cg env b in
              let l = fresh_label cg "cmp" in
              let rd = alloc_reg cg in
              emit cg (Asm.movi rd 1L);
              emit cg (Asm.jmp c ra rb l);
              emit cg (Asm.movi rd 0L);
              emit cg (Asm.label l);
              free_reg cg ra;
              free_reg cg rb;
              (rd, Tu64)
          | None -> assert false))
  | E_field (p, f) ->
      let rp, tp = eval cg env p in
      let rp = own cg rp in
      let off, fty = field_of cg tp f in
      (match fty with Farr _ -> fail "array field %s needs an index" f | _ -> ());
      emit_mem_load cg rp rp off (width_of_fty fty);
      (rp, ty_of_fty fty)
  | E_index (base, idx) ->
      let addr, fty = eval_index_addr cg env base idx in
      (match fty with
      | Farr _ -> fail "nested arrays are not supported"
      | _ -> ());
      emit cg (Asm.ldx (size_insn (width_of_fty fty)) addr addr 0);
      (addr, ty_of_fty fty)
  | E_addr n -> (
      match lookup_binding env n with
      | Some (B_local (slot, _)) ->
          let rd = alloc_reg cg in
          emit cg (Asm.mov rd Reg.R10);
          emit cg (Asm.alui Insn.Add rd (Int64.of_int (-slot)));
          (rd, Tu64)
      | Some (B_buf (bytes_end, _)) ->
          let rd = alloc_reg cg in
          emit cg (Asm.mov rd Reg.R10);
          emit cg (Asm.alui Insn.Add rd (Int64.of_int (-bytes_end)));
          (rd, Tu64)
      | Some B_ctx -> fail "cannot take the address of the context"
      | None -> (
          match Hashtbl.find_opt cg.globals n with
          | Some (off, _) ->
              let rd = alloc_reg cg in
              load_global_addr cg rd off;
              (rd, Tu64)
          | None -> fail "unbound variable %s in &%s" n n))
  | E_new s ->
      let _, size = struct_of cg s in
      let r, _ = emit_helper_call cg env "kflex_malloc" [ E_int (Int64.of_int size) ] in
      (r, Tptr s)
  | E_call (name, args) -> eval_call cg env name args

and eval_scalar cg env e =
  let r, t = eval cg env e in
  let r = own cg r in
  (r, t)

(* ensure the result register is pool-owned and writable (r6 is shared) *)
and own cg r =
  if Reg.equal r Reg.R6 then begin
    let rd = alloc_reg cg in
    emit cg (Asm.mov rd Reg.R6);
    rd
  end
  else r

and field_of cg tp f =
  match tp with
  | Tptr s ->
      let fields, _ = struct_of cg s in
      (match List.assoc_opt f fields with
      | Some (off, fty) -> (off, fty)
      | None -> fail "struct %s has no field %s" s f)
  | Tu64 -> fail "field access .%s on a non-pointer value" f
  | Tctx -> fail "field access on the context (use pkt_* helpers)"

and struct_of cg s =
  match Hashtbl.find_opt cg.structs s with
  | Some x -> x
  | None -> fail "unknown struct %s" s

(* address of an indexed element; returns (reg holding address, element ty) *)
and eval_index_addr cg env base idx =
  let elt_addr rbase base_off elt_fty =
    let esize = fty_size cg.structs elt_fty in
    (match idx with
    | E_int i ->
        (* constant index: fold into one offset *)
        let off = base_off + (Int64.to_int i * esize) in
        if off <> 0 then emit cg (Asm.alui Insn.Add rbase (Int64.of_int off))
    | _ ->
        if base_off <> 0 then
          emit cg (Asm.alui Insn.Add rbase (Int64.of_int base_off));
        let ri, _ = eval cg env idx in
        let ri = own cg ri in
        let rec log2 n k = if n = 1 then Some k else if n land 1 = 1 then None else log2 (n / 2) (k + 1) in
        (match log2 esize 0 with
        | Some 0 -> ()
        | Some k -> emit cg (Asm.alui Insn.Lsh ri (Int64.of_int k))
        | None -> emit cg (Asm.alui Insn.Mul ri (Int64.of_int esize)));
        emit cg (Asm.alu Insn.Add rbase ri);
        free_reg cg ri);
    (rbase, elt_fty)
  in
  match base with
  | E_var n -> (
      match lookup_binding env n with
      | Some (B_buf (bytes_end, size)) ->
          (* stack buffer: constant index required (verified stack access) *)
          (match idx with
          | E_int i ->
              let i = Int64.to_int i in
              if i < 0 || i >= size then fail "buffer index %d out of bounds" i;
              let rd = alloc_reg cg in
              emit cg (Asm.mov rd Reg.R10);
              emit cg (Asm.alui Insn.Add rd (Int64.of_int (-bytes_end + i)));
              (rd, Fu8)
          | _ -> fail "stack buffer %s requires a constant index" n)
      | Some _ -> fail "%s is not indexable" n
      | None -> (
          match Hashtbl.find_opt cg.globals n with
          | Some (off, Farr (elt, _)) ->
              let rd = alloc_reg cg in
              load_global_addr cg rd 0;
              elt_addr rd off elt
          | Some _ -> fail "global %s is not an array" n
          | None -> fail "unbound variable %s" n))
  | E_field (p, f) -> (
      let rp, tp = eval cg env p in
      let rp = own cg rp in
      let off, fty = field_of cg tp f in
      match fty with
      | Farr (elt, _) -> elt_addr rp off elt
      | _ -> fail "field %s is not an array" f)
  | _ -> fail "only globals, buffers and struct fields can be indexed"

and eval_call cg env name args =
  match List.assoc_opt name signed_builtins with
  | Some op -> eval cg env (E_binop (op, List.nth args 0, List.nth args 1))
  | None -> (
      match List.assoc_opt name mem_builtins with
      | Some (width, is_store) ->
          let nargs = if is_store then 3 else 2 in
          if List.length args <> nargs then
            fail "%s expects %d arguments" name nargs;
          let off =
            match List.nth args 1 with
            | E_int i -> Int64.to_int i
            | _ -> fail "%s offset must be a constant" name
          in
          let ra, _ = eval cg env (List.nth args 0) in
          let ra = own cg ra in
          if is_store then begin
            let rv, _ = eval cg env (List.nth args 2) in
            emit cg (Asm.stx (size_insn width) ra off rv);
            free_reg cg rv;
            emit cg (Asm.movi ra 0L);
            (ra, Tu64)
          end
          else begin
            emit cg (Asm.ldx (size_insn width) ra ra off);
            (ra, Tu64)
          end
      | None -> (
          match List.assoc_opt name helper_sigs with
          | Some _ -> emit_helper_call cg env name args
          | None -> (
              match Hashtbl.find_opt cg.fns name with
              | Some fn -> inline_call cg env fn args
              | None -> fail "unknown function or helper %s" name)))

and emit_helper_call cg env name args =
  let kinds, _has_ret =
    match List.assoc_opt name helper_sigs with
    | Some s -> s
    | None -> fail "unknown helper %s" name
  in
  if (not cg.use_heap) && List.mem name heap_helpers then
    fail "%s requires a KFlex heap (eBPF-mode program)" name;
  if List.length args <> List.length kinds then
    fail "%s expects %d arguments, got %d" name (List.length kinds)
      (List.length args);
  (* evaluate non-ctx args into temp slots *)
  let prepared =
    List.map2
      (fun kind arg ->
        match kind with
        | K_ctx -> (
            match arg with
            | E_var n when lookup_binding env n = Some B_ctx -> `Ctx
            | _ -> fail "%s: this argument must be the context" name)
        | K_u64 ->
            let r, _ = eval cg env arg in
            let slot = alloc_slot cg in
            emit cg (Asm.stx Insn.U64 Reg.R10 (-slot) r);
            free_reg cg r;
            `Slot slot)
      kinds args
  in
  (* spill live registers *)
  let spilled =
    List.map
      (fun r ->
        let slot = alloc_slot cg in
        emit cg (Asm.stx Insn.U64 Reg.R10 (-slot) r);
        (r, slot))
      cg.live
  in
  (* load arguments *)
  List.iteri
    (fun i p ->
      let dst = Reg.of_int (i + 1) in
      match p with
      | `Ctx -> emit cg (Asm.mov dst Reg.R6)
      | `Slot s -> emit cg (Asm.ldx Insn.U64 dst Reg.R10 (-s)))
    prepared;
  emit cg (Asm.call name);
  let rd = alloc_reg cg in
  emit cg (Asm.mov rd Reg.R0);
  (* restore spilled *)
  List.iter
    (fun (r, slot) -> emit cg (Asm.ldx Insn.U64 r Reg.R10 (-slot)))
    spilled;
  (rd, Tu64)

and inline_call cg env fn args =
  if List.mem fn.fname cg.inline_stack then
    fail "recursive call to %s cannot be inlined" fn.fname;
  if List.length args <> List.length fn.params then
    fail "%s expects %d arguments, got %d" fn.fname (List.length fn.params)
      (List.length args);
  cg.inline_stack <- fn.fname :: cg.inline_stack;
  let saved_slot = cg.next_slot in
  (* bind parameters (argument expressions run in the caller's context) *)
  let callee_env =
    List.map2
      (fun (pname, pty) arg ->
        match pty with
        | Tctx -> (
            match arg with
            | E_var n when lookup_binding env n = Some B_ctx -> (pname, B_ctx)
            | _ -> fail "%s: parameter %s must receive the context" fn.fname pname)
        | _ ->
            let r, _ = eval cg env arg in
            let slot = alloc_slot cg in
            emit cg (Asm.stx Insn.U64 Reg.R10 (-slot) r);
            free_reg cg r;
            (pname, B_local (slot, pty)))
      fn.params args
  in
  let ret_slot = if fn.ret then Some (alloc_slot cg) else None in
  let end_lbl = fresh_label cg ("end_" ^ fn.fname) in
  (* default return value 0 *)
  (match ret_slot with
  | Some s -> emit cg (Asm.sti Insn.U64 Reg.R10 (-s) 0L)
  | None -> ());
  (* The inlined body manages the register pool statement by statement, so
     live caller registers must survive in stack slots across it. *)
  let spilled =
    List.map
      (fun r ->
        let slot = alloc_slot cg in
        emit cg (Asm.stx Insn.U64 Reg.R10 (-slot) r);
        (r, slot))
      cg.live
  in
  let saved_pool = cg.pool and saved_live = cg.live in
  cg.pool <- all_pool;
  cg.live <- [];
  compile_block cg callee_env ~ret:(R_inline { slot = ret_slot; end_lbl })
    ~brk:None ~cont:None fn.body;
  emit cg (Asm.label end_lbl);
  cg.pool <- saved_pool;
  cg.live <- saved_live;
  List.iter
    (fun (r, slot) -> emit cg (Asm.ldx Insn.U64 r Reg.R10 (-slot)))
    spilled;
  let rd = alloc_reg cg in
  (match ret_slot with
  | Some s -> emit cg (Asm.ldx Insn.U64 rd Reg.R10 (-s))
  | None -> emit cg (Asm.movi rd 0L));
  cg.next_slot <- saved_slot;
  cg.inline_stack <- List.tl cg.inline_stack;
  (rd, if fn.ret then Tu64 else Tu64)

(* --- conditions ----------------------------------------------------------- *)

and branch_false cg env e lbl =
  match e with
  | E_binop (LAnd, a, b) ->
      branch_false cg env a lbl;
      branch_false cg env b lbl
  | E_binop (LOr, a, b) ->
      let l_true = fresh_label cg "or_true" in
      branch_true cg env a l_true;
      branch_false cg env b lbl;
      emit cg (Asm.label l_true)
  | E_unop (LNot, e) -> branch_true cg env e lbl
  | E_binop (op, a, b) when binop_cond op <> None ->
      let c = Option.get (binop_cond op) in
      let neg = Kflex_verifier.Range.negate_cond c in
      let ra, _ = eval cg env a in
      let ra = own cg ra in
      let rb, _ = eval cg env b in
      emit cg (Asm.jmp neg ra rb lbl);
      free_reg cg ra;
      free_reg cg rb
  | _ ->
      let r, _ = eval cg env e in
      let r = own cg r in
      emit cg (Asm.jmpi Insn.Eq r 0L lbl);
      free_reg cg r

and branch_true cg env e lbl =
  match e with
  | E_binop (LOr, a, b) ->
      branch_true cg env a lbl;
      branch_true cg env b lbl
  | E_binop (LAnd, a, b) ->
      let l_false = fresh_label cg "and_false" in
      branch_false cg env a l_false;
      branch_true cg env b lbl;
      emit cg (Asm.label l_false)
  | E_unop (LNot, e) -> branch_false cg env e lbl
  | E_binop (op, a, b) when binop_cond op <> None ->
      let c = Option.get (binop_cond op) in
      let ra, _ = eval cg env a in
      let ra = own cg ra in
      let rb, _ = eval cg env b in
      emit cg (Asm.jmp c ra rb lbl);
      free_reg cg ra;
      free_reg cg rb
  | _ ->
      let r, _ = eval cg env e in
      let r = own cg r in
      emit cg (Asm.jmpi Insn.Ne r 0L lbl);
      free_reg cg r

(* --- statements ------------------------------------------------------------ *)

and compile_stmt cg env ~ret ~brk ~cont stmt : env =
  let reset_regs () =
    cg.pool <- all_pool;
    cg.live <- []
  in
  match stmt with
  | S_var (n, ty, e) ->
      let slot = alloc_slot cg in
      let inferred = ref Tu64 in
      with_watermark cg (fun () ->
          let r, t = eval cg env e in
          inferred := t;
          emit cg (Asm.stx Insn.U64 Reg.R10 (-slot) r));
      reset_regs ();
      let t = match ty with Some t -> t | None -> !inferred in
      (n, B_local (slot, t)) :: env
  | S_buf (n, size) ->
      let bytes_end = alloc_bytes cg size in
      (* zero-initialise so the verifier sees defined stack bytes *)
      let words = align_up size 8 / 8 in
      for i = 0 to words - 1 do
        emit cg (Asm.sti Insn.U64 Reg.R10 (-bytes_end + (8 * i)) 0L)
      done;
      (n, B_buf (bytes_end, size)) :: env
  | S_assign (lv, e) ->
      with_watermark cg (fun () ->
          (match lv with
          | L_var n -> (
              match lookup_binding env n with
              | Some (B_local (slot, _)) ->
                  let r, _ = eval cg env e in
                  emit cg (Asm.stx Insn.U64 Reg.R10 (-slot) r)
              | Some B_ctx -> fail "cannot assign to the context"
              | Some (B_buf _) -> fail "cannot assign to a buffer (use st8)"
              | None -> (
                  match Hashtbl.find_opt cg.globals n with
                  | Some (off, fty) ->
                      if not cg.use_heap then
                        fail "global %s in a heap-less program" n;
                      let r, _ = eval cg env e in
                      let r = own cg r in
                      if off >= -32768 && off <= 32767 then
                        emit cg (Asm.stx (size_insn (width_of_fty fty)) Reg.R9 off r)
                      else begin
                        let ra = alloc_reg cg in
                        load_global_addr cg ra off;
                        emit cg (Asm.stx (size_insn (width_of_fty fty)) ra 0 r);
                        free_reg cg ra
                      end
                  | None -> fail "unbound variable %s" n))
          | L_field (p, f) ->
              let rp, tp = eval cg env p in
              let rp = own cg rp in
              let off, fty = field_of cg tp f in
              let rv, _ = eval cg env e in
              emit cg (Asm.stx (size_insn (width_of_fty fty)) rp off rv)
          | L_index (base, idx) ->
              let addr, fty = eval_index_addr cg env base idx in
              let rv, _ = eval cg env e in
              emit cg (Asm.stx (size_insn (width_of_fty fty)) addr 0 rv)));
      reset_regs ();
      env
  | S_if (c, then_, else_) ->
      let l_else = fresh_label cg "else" in
      let l_end = fresh_label cg "endif" in
      with_watermark cg (fun () -> branch_false cg env c l_else);
      reset_regs ();
      compile_block cg env ~ret ~brk ~cont then_;
      emit cg (Asm.ja l_end);
      emit cg (Asm.label l_else);
      compile_block cg env ~ret ~brk ~cont else_;
      emit cg (Asm.label l_end);
      env
  | S_while (c, body) ->
      let l_head = fresh_label cg "while" in
      let l_end = fresh_label cg "wend" in
      emit cg (Asm.label l_head);
      with_watermark cg (fun () -> branch_false cg env c l_end);
      reset_regs ();
      compile_block cg env ~ret ~brk:(Some l_end) ~cont:(Some l_head) body;
      emit cg (Asm.ja l_head);
      emit cg (Asm.label l_end);
      env
  | S_for (init, c, step, body) ->
      (* the induction variable scopes over the loop only *)
      let saved_slot = cg.next_slot in
      let env' = compile_stmt cg env ~ret ~brk:None ~cont:None init in
      let l_head = fresh_label cg "for" in
      let l_step = fresh_label cg "fstep" in
      let l_end = fresh_label cg "fend" in
      emit cg (Asm.label l_head);
      with_watermark cg (fun () -> branch_false cg env' c l_end);
      reset_regs ();
      compile_block cg env' ~ret ~brk:(Some l_end) ~cont:(Some l_step) body;
      emit cg (Asm.label l_step);
      ignore (compile_stmt cg env' ~ret ~brk:None ~cont:None step);
      emit cg (Asm.ja l_head);
      emit cg (Asm.label l_end);
      cg.next_slot <- saved_slot;
      env
  | S_return eo ->
      with_watermark cg (fun () ->
          match ret with
          | R_entry ->
              (match eo with
              | Some e ->
                  let r, _ = eval cg env e in
                  emit cg (Asm.mov Reg.R0 r)
              | None -> emit cg (Asm.movi Reg.R0 0L));
              emit cg Asm.exit_
          | R_inline { slot; end_lbl } ->
              (match (eo, slot) with
              | Some e, Some s ->
                  let r, _ = eval cg env e in
                  emit cg (Asm.stx Insn.U64 Reg.R10 (-s) r)
              | None, _ -> ()
              | Some _, None -> fail "return with a value in a void function");
              emit cg (Asm.ja end_lbl));
      reset_regs ();
      env
  | S_break -> (
      match brk with
      | Some l ->
          emit cg (Asm.ja l);
          env
      | None -> fail "break outside a loop")
  | S_continue -> (
      match cont with
      | Some l ->
          emit cg (Asm.ja l);
          env
      | None -> fail "continue outside a loop")
  | S_expr e ->
      with_watermark cg (fun () -> ignore (eval cg env e));
      reset_regs ();
      env
  | S_free e ->
      with_watermark cg (fun () ->
          ignore (emit_helper_call cg env "kflex_free" [ e ]));
      reset_regs ();
      env

and compile_block cg env ~ret ~brk ~cont stmts =
  ignore
    (List.fold_left
       (fun env s -> compile_stmt cg env ~ret ~brk ~cont s)
       env stmts)

(* --- top level -------------------------------------------------------------- *)

let compile ?(entry = "prog") ?(use_heap = true) ?name (p : program) =
  let structs = Hashtbl.create 16 in
  List.iter
    (fun sd ->
      if Hashtbl.mem structs sd.sname then fail "duplicate struct %s" sd.sname;
      Hashtbl.replace structs sd.sname (layout_struct structs sd))
    p.structs;
  let globals = Hashtbl.create 16 in
  let goff = ref globals_base in
  let glist =
    List.map
      (fun g ->
        if Hashtbl.mem globals g.gname then fail "duplicate global %s" g.gname;
        goff := align_up !goff 8;
        let off = !goff in
        goff := !goff + align_up (fty_size structs g.gty) 8;
        Hashtbl.replace globals g.gname (off, g.gty);
        (g.gname, (Int64.of_int off, g.gty)))
      p.globals
  in
  let fns = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem fns f.fname then fail "duplicate function %s" f.fname;
      Hashtbl.replace fns f.fname f)
    p.fns;
  let entry_fn =
    match Hashtbl.find_opt fns entry with
    | Some f -> f
    | None -> fail "entry function %s not found" entry
  in
  let cg =
    {
      items = [];
      pool = all_pool;
      live = [];
      next_slot = 0;
      labelc = 0;
      structs;
      globals;
      fns;
      use_heap;
      inline_stack = [ entry ];
    }
  in
  (* prologue *)
  let env =
    match entry_fn.params with
    | [ (n, Tctx) ] ->
        emit cg (Asm.mov Reg.R6 Reg.R1);
        [ (n, B_ctx) ]
    | [] -> []
    | _ -> fail "entry %s must take a single ctx parameter (or none)" entry
  in
  if use_heap then begin
    emit cg (Asm.call "kflex_heap_base");
    emit cg (Asm.mov Reg.R9 Reg.R0)
  end;
  compile_block cg env ~ret:R_entry ~brk:None ~cont:None entry_fn.body;
  emit cg (Asm.movi Reg.R0 0L);
  emit cg Asm.exit_;
  let name = match name with Some n -> n | None -> entry in
  let prog = Asm.assemble ~name (List.rev cg.items) in
  let layout =
    {
      globals = glist;
      globals_size = Int64.of_int (!goff - globals_base);
      struct_layouts =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) structs []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    }
  in
  { prog; layout }

let compile_string ?entry ?use_heap ?name src =
  compile ?entry ?use_heap ?name (Parser.parse src)

let global_offset c n =
  match List.assoc_opt n c.layout.globals with
  | Some (off, _) -> off
  | None -> raise Not_found

let field_offset c ~struct_ f =
  match List.assoc_opt struct_ c.layout.struct_layouts with
  | Some (fields, _) -> (
      match List.assoc_opt f fields with
      | Some x -> x
      | None -> raise Not_found)
  | None -> raise Not_found

let sizeof c s =
  match List.assoc_opt s c.layout.struct_layouts with
  | Some (_, size) -> size
  | None -> raise Not_found
