open Ast

exception Error of { line : int; msg : string }

type st = { mutable toks : Lexer.t list }

let fail st fmt =
  let line = match st.toks with { Lexer.line; _ } :: _ -> line | [] -> 0 in
  Format.kasprintf (fun msg -> raise (Error { line; msg })) fmt

let peek st =
  match st.toks with { Lexer.tok; _ } :: _ -> tok | [] -> Lexer.EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat st tok =
  if peek st = tok then advance st
  else fail st "expected %a, found %a" Lexer.pp_token tok Lexer.pp_token (peek st)

let eat_punct st p = eat st (Lexer.PUNCT p)

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> fail st "expected identifier, found %a" Lexer.pp_token t

let int_lit st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      i
  | t -> fail st "expected integer, found %a" Lexer.pp_token t

(* --- types ------------------------------------------------------------ *)

let rec field_ty st =
  match peek st with
  | Lexer.IDENT "u8" -> advance st; Fu8
  | Lexer.IDENT "u16" -> advance st; Fu16
  | Lexer.IDENT "u32" -> advance st; Fu32
  | Lexer.IDENT "u64" -> advance st; Fu64
  | Lexer.IDENT "ptr" ->
      advance st;
      eat_punct st "<";
      let s = ident st in
      eat_punct st ">";
      Fptr s
  | Lexer.PUNCT "[" ->
      advance st;
      let elt = field_ty st in
      (match elt with
      | Farr _ -> fail st "arrays of arrays are not supported"
      | _ -> ());
      eat_punct st ";";
      let n = Int64.to_int (int_lit st) in
      if n <= 0 then fail st "array size must be positive";
      eat_punct st "]";
      Farr (elt, n)
  | t -> fail st "expected a field type, found %a" Lexer.pp_token t

let ty st =
  match peek st with
  | Lexer.IDENT "u64" -> advance st; Tu64
  | Lexer.IDENT "ctx" -> advance st; Tctx
  | Lexer.IDENT "ptr" ->
      advance st;
      eat_punct st "<";
      let s = ident st in
      eat_punct st ">";
      Tptr s
  | t -> fail st "expected a type, found %a" Lexer.pp_token t

(* --- expressions ------------------------------------------------------ *)

let binop_of_punct = function
  | "||" -> Some (LOr, 1)
  | "&&" -> Some (LAnd, 2)
  | "|" -> Some (BOr, 3)
  | "^" -> Some (BXor, 4)
  | "&" -> Some (BAnd, 5)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Mod, 10)
  | _ -> None

let rec expr st = binary st 1

and binary st min_prec =
  let lhs = ref (unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT p -> (
        match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
            advance st;
            let rhs = binary st (prec + 1) in
            lhs := E_binop (op, !lhs, rhs)
        | _ -> continue := false)
    | _ -> continue := false
  done;
  !lhs

and unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
      advance st;
      E_unop (Neg, unary st)
  | Lexer.PUNCT "!" ->
      advance st;
      E_unop (LNot, unary st)
  | Lexer.PUNCT "~" ->
      advance st;
      E_unop (BNot, unary st)
  | Lexer.PUNCT "&" ->
      advance st;
      E_addr (ident st)
  | _ -> postfix st

and postfix st =
  let e = ref (atom st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT "." ->
        advance st;
        let f = ident st in
        e := E_field (!e, f)
    | Lexer.PUNCT "[" ->
        advance st;
        let idx = expr st in
        eat_punct st "]";
        e := E_index (!e, idx)
    | _ -> continue := false
  done;
  !e

and atom st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      E_int i
  | Lexer.KW "null" ->
      advance st;
      E_null
  | Lexer.KW "new" ->
      advance st;
      E_new (ident st)
  | Lexer.PUNCT "(" ->
      advance st;
      let e = expr st in
      eat_punct st ")";
      e
  | Lexer.IDENT name -> (
      advance st;
      match peek st with
      | Lexer.PUNCT "(" ->
          advance st;
          let args = ref [] in
          if peek st <> Lexer.PUNCT ")" then begin
            args := [ expr st ];
            while peek st = Lexer.PUNCT "," do
              advance st;
              args := expr st :: !args
            done
          end;
          eat_punct st ")";
          E_call (name, List.rev !args)
      | _ -> E_var name)
  | t -> fail st "expected an expression, found %a" Lexer.pp_token t

(* --- statements ------------------------------------------------------- *)

let compound_ops =
  [ ("+=", Add); ("-=", Sub); ("*=", Mul); ("/=", Div); ("%=", Mod);
    ("&=", BAnd); ("|=", BOr); ("^=", BXor); ("<<=", Shl); (">>=", Shr) ]

let expr_of_lvalue = function
  | L_var v -> E_var v
  | L_field (e, f) -> E_field (e, f)
  | L_index (e, i) -> E_index (e, i)

let lvalue_of_expr st = function
  | E_var v -> L_var v
  | E_field (e, f) -> L_field (e, f)
  | E_index (e, i) -> L_index (e, i)
  | _ -> fail st "invalid assignment target"

let rec stmt st =
  match peek st with
  | Lexer.KW "var" -> (
      advance st;
      let name = ident st in
      match peek st with
      | Lexer.PUNCT ":" -> (
          advance st;
          match peek st with
          | Lexer.KW "bytes" ->
              advance st;
              eat_punct st "[";
              let n = Int64.to_int (int_lit st) in
              eat_punct st "]";
              eat_punct st ";";
              S_buf (name, n)
          | _ ->
              let t = ty st in
              eat_punct st "=";
              let e = expr st in
              eat_punct st ";";
              S_var (name, Some t, e))
      | _ ->
          eat_punct st "=";
          let e = expr st in
          eat_punct st ";";
          S_var (name, None, e))
  | Lexer.KW "if" ->
      advance st;
      eat_punct st "(";
      let c = expr st in
      eat_punct st ")";
      let then_ = block st in
      let else_ =
        if peek st = Lexer.KW "else" then begin
          advance st;
          if peek st = Lexer.KW "if" then [ stmt st ] else block st
        end
        else []
      in
      S_if (c, then_, else_)
  | Lexer.KW "while" ->
      advance st;
      eat_punct st "(";
      let c = expr st in
      eat_punct st ")";
      let body = block st in
      S_while (c, body)
  | Lexer.KW "for" ->
      advance st;
      eat_punct st "(";
      let init = stmt st in
      (match init with
      | S_var _ | S_assign _ -> ()
      | _ -> fail st "for-loop initialiser must be a declaration or assignment");
      let c = expr st in
      eat_punct st ";";
      (* the step has no trailing semicolon *)
      let e = expr st in
      let step =
        match peek st with
        | Lexer.PUNCT "=" ->
            let lv = lvalue_of_expr st e in
            advance st;
            S_assign (lv, expr st)
        | Lexer.PUNCT p when List.mem_assoc p compound_ops ->
            let lv = lvalue_of_expr st e in
            advance st;
            S_assign (lv, E_binop (List.assoc p compound_ops, expr_of_lvalue lv, expr st))
        | _ -> S_expr e
      in
      eat_punct st ")";
      let body = block st in
      S_for (init, c, step, body)
  | Lexer.KW "return" ->
      advance st;
      if peek st = Lexer.PUNCT ";" then begin
        advance st;
        S_return None
      end
      else begin
        let e = expr st in
        eat_punct st ";";
        S_return (Some e)
      end
  | Lexer.KW "break" ->
      advance st;
      eat_punct st ";";
      S_break
  | Lexer.KW "continue" ->
      advance st;
      eat_punct st ";";
      S_continue
  | Lexer.KW "free" ->
      advance st;
      let e = expr st in
      eat_punct st ";";
      S_free e
  | _ -> (
      let e = expr st in
      match peek st with
      | Lexer.PUNCT "=" ->
          let lv = lvalue_of_expr st e in
          advance st;
          let rhs = expr st in
          eat_punct st ";";
          S_assign (lv, rhs)
      | Lexer.PUNCT p when List.mem_assoc p compound_ops ->
          let lv = lvalue_of_expr st e in
          advance st;
          let rhs = expr st in
          eat_punct st ";";
          (* x op= e desugars to x = x op e (the lvalue base is
             re-evaluated; bases with side effects are the author's
             problem, as in C macros) *)
          S_assign (lv, E_binop (List.assoc p compound_ops, expr_of_lvalue lv, rhs))
      | _ ->
          eat_punct st ";";
          S_expr e)

and block st =
  eat_punct st "{";
  let stmts = ref [] in
  while peek st <> Lexer.PUNCT "}" do
    stmts := stmt st :: !stmts
  done;
  advance st;
  List.rev !stmts

(* --- declarations ------------------------------------------------------ *)

let struct_decl st =
  eat st (Lexer.KW "struct");
  let sname = ident st in
  eat_punct st "{";
  let fields = ref [] in
  while peek st <> Lexer.PUNCT "}" do
    let f = ident st in
    eat_punct st ":";
    let t = field_ty st in
    eat_punct st ";";
    fields := (f, t) :: !fields
  done;
  advance st;
  { sname; sfields = List.rev !fields }

let global_decl st =
  eat st (Lexer.KW "global");
  let gname = ident st in
  eat_punct st ":";
  let t = field_ty st in
  eat_punct st ";";
  { gname; gty = t }

let fn_decl st =
  eat st (Lexer.KW "fn");
  let fname = ident st in
  eat_punct st "(";
  let params = ref [] in
  if peek st <> Lexer.PUNCT ")" then begin
    let param () =
      let n = ident st in
      eat_punct st ":";
      let t = ty st in
      (n, t)
    in
    params := [ param () ];
    while peek st = Lexer.PUNCT "," do
      advance st;
      params := param () :: !params
    done
  end;
  eat_punct st ")";
  let ret =
    if peek st = Lexer.PUNCT "->" then begin
      advance st;
      (match peek st with
      | Lexer.IDENT "u64" -> advance st
      | Lexer.IDENT "ptr" ->
          advance st;
          eat_punct st "<";
          ignore (ident st);
          eat_punct st ">"
      | t -> fail st "expected return type, found %a" Lexer.pp_token t);
      true
    end
    else false
  in
  let body = block st in
  { fname; params = List.rev !params; ret; body }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let structs = ref [] and globals = ref [] and fns = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.EOF -> continue := false
    | Lexer.KW "struct" -> structs := struct_decl st :: !structs
    | Lexer.KW "global" -> globals := global_decl st :: !globals
    | Lexer.KW "fn" -> fns := fn_decl st :: !fns
    | t -> fail st "expected a declaration, found %a" Lexer.pp_token t
  done;
  {
    structs = List.rev !structs;
    globals = List.rev !globals;
    fns = List.rev !fns;
  }
