(** Lexer for eclang. *)

type token =
  | INT of int64
  | IDENT of string
  | KW of string  (** struct global fn var if else while return break
      continue null new free bytes *)
  | PUNCT of string  (** operators and delimiters, longest-match *)
  | EOF

type t = { tok : token; line : int }

exception Error of { line : int; msg : string }

val tokenize : string -> t list
(** @raise Error on malformed input (bad character, unterminated comment). *)

val pp_token : Format.formatter -> token -> unit
