(* Workload generation tests: deterministic RNG, Zipf distribution, latency
   statistics. *)
open Kflex_workload

let t_rng_deterministic () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create ~seed:2L in
  Alcotest.(check bool) "different seed" true (Rng.next a <> Rng.next c)

let t_rng_ranges () =
  let r = Rng.create ~seed:3L in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Rng.int r 17 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 17)
  done

let t_zipf_pmf () =
  let z = Zipf.create ~n:100 () in
  let total = ref 0.0 in
  let mono = ref true in
  for i = 0 to 99 do
    total := !total +. Zipf.pmf z i;
    if i > 0 && Zipf.pmf z i > Zipf.pmf z (i - 1) then mono := false
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total;
  Alcotest.(check bool) "monotone" true !mono

let t_zipf_sampling () =
  let z = Zipf.create ~n:1000 () in
  let rng = Rng.create ~seed:5L in
  let counts = Array.make 1000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* empirical frequency of the head ranks tracks the pmf *)
  List.iter
    (fun i ->
      let emp = float_of_int counts.(i) /. float_of_int n in
      let exp = Zipf.pmf z i in
      Alcotest.(check bool)
        (Printf.sprintf "rank %d within 20%%" i)
        true
        (abs_float (emp -. exp) /. exp < 0.2))
    [ 0; 1; 2; 5; 10 ];
  (* skew: top-10 ranks carry far more than uniform *)
  let top10 = Array.fold_left ( + ) 0 (Array.sub counts 0 10) in
  Alcotest.(check bool) "skewed" true (float_of_int top10 /. float_of_int n > 0.3)

let t_stats () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Stats.percentile s 0.99);
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile s 0.5);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.percentile s 0.99);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 1.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Stats.max s);
  (* interleave add and percentile: sorting must not lose samples *)
  Stats.add s 1000.0;
  Alcotest.(check (float 1e-9)) "new max" 1000.0 (Stats.max s);
  Alcotest.(check int) "count" 101 (Stats.count s)

(* Stats.merge is the read-side fold of per-shard latency recorders: the
   result must be the recorder of the multiset union, so merging is
   commutative and associative in every observable (count, extremes,
   nearest-rank percentiles are all order-free once sorted). *)
let prop_merge_assoc_comm =
  QCheck.Test.make ~count:200 ~name:"Stats.merge associative + commutative"
    QCheck.(
      triple
        (list (int_bound 1000))
        (list (int_bound 1000))
        (list (int_bound 1000)))
    (fun (xs, ys, zs) ->
      let mk l =
        let s = Stats.create () in
        List.iter (fun i -> Stats.add s (float_of_int i)) l;
        s
      in
      let obs s =
        ( Stats.count s,
          Stats.min s,
          Stats.max s,
          List.map
            (fun p -> Stats.percentile s p)
            [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ] )
      in
      let a = mk xs and b = mk ys and c = mk zs in
      obs (Stats.merge a b) = obs (Stats.merge b a)
      && obs (Stats.merge (Stats.merge a b) c)
         = obs (Stats.merge a (Stats.merge b c))
      && obs (Stats.merge a b) = obs (mk (xs @ ys))
      && Stats.count (Stats.merge a b) = Stats.count a + Stats.count b)

let t_zipf_memoized () =
  let b0 = Zipf.builds () in
  let z1 = Zipf.create ~s:0.95 ~n:777 () in
  let b1 = Zipf.builds () in
  Alcotest.(check int) "first create builds" (b0 + 1) b1;
  let z2 = Zipf.create ~s:0.95 ~n:777 () in
  Alcotest.(check int) "second create is a cache hit" b1 (Zipf.builds ());
  (* cached instance behaves identically *)
  let seq z seed =
    let r = Rng.create ~seed in
    List.init 200 (fun _ -> Zipf.sample z r)
  in
  Alcotest.(check bool) "same distribution" true (seq z1 3L = seq z2 3L);
  (* a different (n, s) is a different table *)
  let _ = Zipf.create ~s:0.95 ~n:778 () in
  Alcotest.(check int) "new params build" (b1 + 1) (Zipf.builds ())

(* nearest-rank percentile over an explicit sorted list — the reference
   the bucketed histogram must stay within 1% of *)
let exact_percentile l p =
  let a = Array.of_list l in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else
    let rank =
      Stdlib.max 1 (Stdlib.min n (int_of_float (ceil (p *. float_of_int n))))
    in
    a.(rank - 1)

let t_stats_spill () =
  let s = Stats.create () in
  for i = 1 to 1024 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check bool) "exact while small" false (Stats.is_bucketed s);
  Alcotest.(check (float 1e-9)) "exact p50" 512.0 (Stats.percentile s 0.5);
  Stats.add s 1025.0;
  Alcotest.(check bool) "spills past the cap" true (Stats.is_bucketed s);
  Alcotest.(check int) "count preserved" 1025 (Stats.count s);
  Alcotest.(check (float 1e-9)) "exact min survives" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "exact max survives" 1025.0 (Stats.max s);
  let p50 = Stats.percentile s 0.5 in
  Alcotest.(check bool) "bucketed p50 within 1%" true
    (abs_float (p50 -. 513.0) /. 513.0 <= Stats.relative_error +. 1e-9);
  (* non-positive samples: counted, reported at the recorded minimum *)
  let s = Stats.create () in
  for _ = 1 to 2000 do
    Stats.add s 5.0
  done;
  Stats.add s 0.0;
  Alcotest.(check int) "nonpos counted" 2001 (Stats.count s);
  Alcotest.(check (float 1e-9)) "nonpos is the min" 0.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "p0 answers min" 0.0 (Stats.percentile s 0.0)

(* Histogram-vs-exact parity: past the exact cap the log-bucketed
   histogram must answer every percentile within its advertised relative
   error, across magnitudes. *)
let prop_hist_parity =
  QCheck.Test.make ~count:100 ~name:"bucketed percentiles within 1% of exact"
    QCheck.(
      list_of_size
        Gen.(1100 -- 2500)
        (map (fun (m, e) -> (0.5 +. m) *. (10.0 ** float_of_int e))
           (pair (float_bound_exclusive 1.0) (int_range (-3) 6))))
    (fun l ->
      let s = Stats.create () in
      List.iter (Stats.add s) l;
      QCheck.assume (Stats.is_bucketed s);
      List.for_all
        (fun p ->
          let ex = exact_percentile l p in
          let got = Stats.percentile s p in
          abs_float (got -. ex) /. ex <= Stats.relative_error +. 1e-9)
        [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999; 1.0 ])

(* merging must preserve the exact regime only when the union still fits
   the cap, and bucket-sum merging must not drift the percentiles *)
let t_stats_merge_regimes () =
  let mk n base =
    let s = Stats.create () in
    for i = 1 to n do
      Stats.add s (base +. float_of_int i)
    done;
    s
  in
  let m = Stats.merge (mk 400 0.0) (mk 400 400.0) in
  Alcotest.(check bool) "small union stays exact" false (Stats.is_bucketed m);
  Alcotest.(check (float 1e-9)) "exact merged p50" 400.0
    (Stats.percentile m 0.5);
  let big = Stats.merge (mk 900 0.0) (mk 900 900.0) in
  Alcotest.(check bool) "large union buckets" true (Stats.is_bucketed big);
  Alcotest.(check int) "merged count" 1800 (Stats.count big);
  let p50 = Stats.percentile big 0.5 in
  Alcotest.(check bool) "merged p50 within 1%" true
    (abs_float (p50 -. 900.0) /. 900.0 <= Stats.relative_error +. 1e-9)

let t_arrivals () =
  let open Arrivals in
  let mean_rate kind =
    let rng = Rng.create ~seed:11L in
    let a = create ~kind ~rate:50_000.0 rng in
    let n = 200_000 in
    let last = ref 0.0 in
    let mono = ref true in
    for _ = 1 to n do
      let t = next a in
      if t <= !last then mono := false;
      last := t
    done;
    Alcotest.(check bool) "strictly increasing" true !mono;
    float_of_int n /. (!last /. 1e9)
  in
  let r_poisson = mean_rate Poisson in
  Alcotest.(check bool)
    (Printf.sprintf "poisson long-run rate %.0f" r_poisson)
    true
    (abs_float (r_poisson -. 50_000.0) /. 50_000.0 < 0.05);
  let r_bursty = mean_rate default_bursty in
  (* heavy-tailed burst lengths converge slowly; accept a loose band *)
  Alcotest.(check bool)
    (Printf.sprintf "bursty long-run rate %.0f" r_bursty)
    true
    (r_bursty > 25_000.0 && r_bursty < 100_000.0)

let t_rng_split () =
  (* splitting is deterministic in the parent's state *)
  let child seed = Rng.split (Rng.create ~seed) in
  let seq r = List.init 20 (fun _ -> Rng.next r) in
  Alcotest.(check bool) "same parent, same child" true
    (seq (child 9L) = seq (child 9L));
  (* the parent advances exactly one draw per split: two successive splits
     yield distinct children *)
  let p = Rng.create ~seed:9L in
  let c1 = Rng.split p and c2 = Rng.split p in
  Alcotest.(check bool) "siblings differ" true (seq c1 <> seq c2);
  (* child streams are insulated from each other: draining one never
     perturbs the other's sequence *)
  let p = Rng.create ~seed:9L in
  let c1 = Rng.split p in
  let c2 = Rng.split p in
  for _ = 1 to 1000 do
    ignore (Rng.next c1)
  done;
  let p' = Rng.create ~seed:9L in
  let _ = Rng.split p' in
  let c2' = Rng.split p' in
  Alcotest.(check bool) "independent" true (seq c2 = seq c2');
  (* and the child does not mirror the parent's own stream *)
  let p = Rng.create ~seed:9L in
  let c = Rng.split p in
  Alcotest.(check bool) "child <> parent" true (seq c <> seq p)

let t_rng_derived_draws () =
  let r = Rng.create ~seed:13L in
  (* bool is roughly balanced *)
  let heads = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r then incr heads
  done;
  Alcotest.(check bool) "bool balanced" true (!heads > 400 && !heads < 600);
  (* choose covers the array and only the array *)
  let arr = [| 1; 2; 3; 4; 5 |] in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let v = Rng.choose r arr in
    Alcotest.(check bool) "in array" true (v >= 1 && v <= 5);
    seen.(v - 1) <- true
  done;
  Alcotest.(check bool) "all reachable" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Rng.choose")
    (fun () -> ignore (Rng.choose r [||]));
  (* int64 is the raw stream *)
  let a = Rng.create ~seed:5L and b = Rng.create ~seed:5L in
  Alcotest.(check int64) "int64 = next" (Rng.next a) (Rng.int64 b)

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          Alcotest.test_case "rng deterministic" `Quick t_rng_deterministic;
          Alcotest.test_case "rng ranges" `Quick t_rng_ranges;
          Alcotest.test_case "rng split" `Quick t_rng_split;
          Alcotest.test_case "rng derived draws" `Quick t_rng_derived_draws;
          Alcotest.test_case "zipf pmf" `Quick t_zipf_pmf;
          Alcotest.test_case "zipf sampling" `Quick t_zipf_sampling;
          Alcotest.test_case "zipf memoized" `Quick t_zipf_memoized;
          Alcotest.test_case "stats" `Quick t_stats;
          Alcotest.test_case "stats spill" `Quick t_stats_spill;
          Alcotest.test_case "stats merge regimes" `Quick
            t_stats_merge_regimes;
          Alcotest.test_case "arrivals" `Quick t_arrivals;
          QCheck_alcotest.to_alcotest prop_merge_assoc_comm;
          QCheck_alcotest.to_alcotest prop_hist_parity;
        ] );
    ]
