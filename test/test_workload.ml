(* Workload generation tests: deterministic RNG, Zipf distribution, latency
   statistics. *)
open Kflex_workload

let t_rng_deterministic () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create ~seed:2L in
  Alcotest.(check bool) "different seed" true (Rng.next a <> Rng.next c)

let t_rng_ranges () =
  let r = Rng.create ~seed:3L in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Rng.int r 17 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 17)
  done

let t_zipf_pmf () =
  let z = Zipf.create ~n:100 () in
  let total = ref 0.0 in
  let mono = ref true in
  for i = 0 to 99 do
    total := !total +. Zipf.pmf z i;
    if i > 0 && Zipf.pmf z i > Zipf.pmf z (i - 1) then mono := false
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total;
  Alcotest.(check bool) "monotone" true !mono

let t_zipf_sampling () =
  let z = Zipf.create ~n:1000 () in
  let rng = Rng.create ~seed:5L in
  let counts = Array.make 1000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* empirical frequency of the head ranks tracks the pmf *)
  List.iter
    (fun i ->
      let emp = float_of_int counts.(i) /. float_of_int n in
      let exp = Zipf.pmf z i in
      Alcotest.(check bool)
        (Printf.sprintf "rank %d within 20%%" i)
        true
        (abs_float (emp -. exp) /. exp < 0.2))
    [ 0; 1; 2; 5; 10 ];
  (* skew: top-10 ranks carry far more than uniform *)
  let top10 = Array.fold_left ( + ) 0 (Array.sub counts 0 10) in
  Alcotest.(check bool) "skewed" true (float_of_int top10 /. float_of_int n > 0.3)

let t_stats () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Stats.percentile s 0.99);
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile s 0.5);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.percentile s 0.99);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 1.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Stats.max s);
  (* interleave add and percentile: sorting must not lose samples *)
  Stats.add s 1000.0;
  Alcotest.(check (float 1e-9)) "new max" 1000.0 (Stats.max s);
  Alcotest.(check int) "count" 101 (Stats.count s)

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          Alcotest.test_case "rng deterministic" `Quick t_rng_deterministic;
          Alcotest.test_case "rng ranges" `Quick t_rng_ranges;
          Alcotest.test_case "zipf pmf" `Quick t_zipf_pmf;
          Alcotest.test_case "zipf sampling" `Quick t_zipf_sampling;
          Alcotest.test_case "stats" `Quick t_stats;
        ] );
    ]
