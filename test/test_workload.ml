(* Workload generation tests: deterministic RNG, Zipf distribution, latency
   statistics. *)
open Kflex_workload

let t_rng_deterministic () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create ~seed:2L in
  Alcotest.(check bool) "different seed" true (Rng.next a <> Rng.next c)

let t_rng_ranges () =
  let r = Rng.create ~seed:3L in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Rng.int r 17 in
    Alcotest.(check bool) "int in range" true (i >= 0 && i < 17)
  done

let t_zipf_pmf () =
  let z = Zipf.create ~n:100 () in
  let total = ref 0.0 in
  let mono = ref true in
  for i = 0 to 99 do
    total := !total +. Zipf.pmf z i;
    if i > 0 && Zipf.pmf z i > Zipf.pmf z (i - 1) then mono := false
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total;
  Alcotest.(check bool) "monotone" true !mono

let t_zipf_sampling () =
  let z = Zipf.create ~n:1000 () in
  let rng = Rng.create ~seed:5L in
  let counts = Array.make 1000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  (* empirical frequency of the head ranks tracks the pmf *)
  List.iter
    (fun i ->
      let emp = float_of_int counts.(i) /. float_of_int n in
      let exp = Zipf.pmf z i in
      Alcotest.(check bool)
        (Printf.sprintf "rank %d within 20%%" i)
        true
        (abs_float (emp -. exp) /. exp < 0.2))
    [ 0; 1; 2; 5; 10 ];
  (* skew: top-10 ranks carry far more than uniform *)
  let top10 = Array.fold_left ( + ) 0 (Array.sub counts 0 10) in
  Alcotest.(check bool) "skewed" true (float_of_int top10 /. float_of_int n > 0.3)

let t_stats () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Stats.percentile s 0.99);
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile s 0.5);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.percentile s 0.99);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 1.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Stats.max s);
  (* interleave add and percentile: sorting must not lose samples *)
  Stats.add s 1000.0;
  Alcotest.(check (float 1e-9)) "new max" 1000.0 (Stats.max s);
  Alcotest.(check int) "count" 101 (Stats.count s)

(* Stats.merge is the read-side fold of per-shard latency recorders: the
   result must be the recorder of the multiset union, so merging is
   commutative and associative in every observable (count, extremes,
   nearest-rank percentiles are all order-free once sorted). *)
let prop_merge_assoc_comm =
  QCheck.Test.make ~count:200 ~name:"Stats.merge associative + commutative"
    QCheck.(
      triple
        (list (int_bound 1000))
        (list (int_bound 1000))
        (list (int_bound 1000)))
    (fun (xs, ys, zs) ->
      let mk l =
        let s = Stats.create () in
        List.iter (fun i -> Stats.add s (float_of_int i)) l;
        s
      in
      let obs s =
        ( Stats.count s,
          Stats.min s,
          Stats.max s,
          List.map
            (fun p -> Stats.percentile s p)
            [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ] )
      in
      let a = mk xs and b = mk ys and c = mk zs in
      obs (Stats.merge a b) = obs (Stats.merge b a)
      && obs (Stats.merge (Stats.merge a b) c)
         = obs (Stats.merge a (Stats.merge b c))
      && obs (Stats.merge a b) = obs (mk (xs @ ys))
      && Stats.count (Stats.merge a b) = Stats.count a + Stats.count b)

let t_rng_split () =
  (* splitting is deterministic in the parent's state *)
  let child seed = Rng.split (Rng.create ~seed) in
  let seq r = List.init 20 (fun _ -> Rng.next r) in
  Alcotest.(check bool) "same parent, same child" true
    (seq (child 9L) = seq (child 9L));
  (* the parent advances exactly one draw per split: two successive splits
     yield distinct children *)
  let p = Rng.create ~seed:9L in
  let c1 = Rng.split p and c2 = Rng.split p in
  Alcotest.(check bool) "siblings differ" true (seq c1 <> seq c2);
  (* child streams are insulated from each other: draining one never
     perturbs the other's sequence *)
  let p = Rng.create ~seed:9L in
  let c1 = Rng.split p in
  let c2 = Rng.split p in
  for _ = 1 to 1000 do
    ignore (Rng.next c1)
  done;
  let p' = Rng.create ~seed:9L in
  let _ = Rng.split p' in
  let c2' = Rng.split p' in
  Alcotest.(check bool) "independent" true (seq c2 = seq c2');
  (* and the child does not mirror the parent's own stream *)
  let p = Rng.create ~seed:9L in
  let c = Rng.split p in
  Alcotest.(check bool) "child <> parent" true (seq c <> seq p)

let t_rng_derived_draws () =
  let r = Rng.create ~seed:13L in
  (* bool is roughly balanced *)
  let heads = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r then incr heads
  done;
  Alcotest.(check bool) "bool balanced" true (!heads > 400 && !heads < 600);
  (* choose covers the array and only the array *)
  let arr = [| 1; 2; 3; 4; 5 |] in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let v = Rng.choose r arr in
    Alcotest.(check bool) "in array" true (v >= 1 && v <= 5);
    seen.(v - 1) <- true
  done;
  Alcotest.(check bool) "all reachable" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Rng.choose")
    (fun () -> ignore (Rng.choose r [||]));
  (* int64 is the raw stream *)
  let a = Rng.create ~seed:5L and b = Rng.create ~seed:5L in
  Alcotest.(check int64) "int64 = next" (Rng.next a) (Rng.int64 b)

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          Alcotest.test_case "rng deterministic" `Quick t_rng_deterministic;
          Alcotest.test_case "rng ranges" `Quick t_rng_ranges;
          Alcotest.test_case "rng split" `Quick t_rng_split;
          Alcotest.test_case "rng derived draws" `Quick t_rng_derived_draws;
          Alcotest.test_case "zipf pmf" `Quick t_zipf_pmf;
          Alcotest.test_case "zipf sampling" `Quick t_zipf_sampling;
          Alcotest.test_case "stats" `Quick t_stats;
          QCheck_alcotest.to_alcotest prop_merge_assoc_comm;
        ] );
    ]
