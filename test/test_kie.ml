(* Kie instrumentation tests: guard insertion/elision, checkpoint placement,
   jump fixups, translate-on-store, object tables, mode switches. *)
open Kflex_bpf
open Kflex_verifier
open Kflex_kie

let contracts = Contract.registry Contract.kflex_base

let analyse ?(heap_size = 65536L) items =
  let prog = Asm.assemble ~name:"t" items in
  match
    Verify.run ~mode:Verify.Kflex ~contracts ~ctx_size:64 ~heap_size prog
  with
  | Ok a -> a
  | Error e -> Alcotest.failf "verify failed: %a" Verify.pp_error e

let opts ?(pm = false) ?(xlate = false) ?(kmod = false) ?(noelide = false) () =
  {
    Instrument.performance_mode = pm;
    translate_on_store = xlate;
    kmod_baseline = kmod;
    no_elision = noelide;
  }

open Asm
open Reg

let unsafe_rw =
  (* one unguardable read and one unguardable write *)
  [
    ldx Insn.U32 R2 R1 0;
    ldx Insn.U64 R3 R2 0;
    stx Insn.U64 R2 0 R3;
    movi R0 0L;
    exit_;
  ]

let t_guard_insertion () =
  let k = Instrument.run ~options:(opts ()) (analyse unsafe_rw) in
  let r = k.Instrument.report in
  Alcotest.(check int) "formation guards" 2 r.Report.formation;
  Alcotest.(check int) "counted" 0 r.Report.counted_sites;
  let guards =
    Array.to_list (Prog.insns k.Instrument.prog)
    |> List.filter (function Insn.Guard _ -> true | _ -> false)
  in
  Alcotest.(check int) "2 guards emitted" 2 (List.length guards)

let t_perf_mode_reads_unguarded () =
  let k = Instrument.run ~options:(opts ~pm:true ()) (analyse unsafe_rw) in
  let r = k.Instrument.report in
  Alcotest.(check int) "read dropped" 1 r.Report.reads_unguarded;
  let guards =
    Array.to_list (Prog.insns k.Instrument.prog)
    |> List.filter (function Insn.Guard _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check int) "only the write guard" 1 guards

let t_kmod_no_instrumentation () =
  let k = Instrument.run ~options:(opts ~kmod:true ()) (analyse unsafe_rw) in
  Alcotest.(check bool) "no instrumentation" false
    (Prog.is_instrumented k.Instrument.prog);
  Alcotest.(check int) "same length" (List.length unsafe_rw)
    (Prog.length k.Instrument.prog)

let t_elided_guard_not_emitted () =
  let a =
    analyse
      [ call "kflex_heap_base"; ldx Insn.U64 R0 R0 8; movi R0 0L; exit_ ]
  in
  let k = Instrument.run ~options:(opts ()) a in
  let r = k.Instrument.report in
  Alcotest.(check int) "1 site" 1 r.Report.counted_sites;
  Alcotest.(check int) "1 elided" 1 r.Report.elided;
  Alcotest.(check int) "0 emitted" 0 r.Report.emitted

let unbounded =
  [
    movi R1 1024L;
    label "loop";
    ldx Insn.U64 R1 R1 0;
    jmpi Insn.Ne R1 0L "loop";
    movi R0 0L;
    exit_;
  ]

let t_checkpoint_at_back_edge () =
  let k = Instrument.run ~options:(opts ()) (analyse unbounded) in
  Alcotest.(check int) "1 checkpoint" 1 k.Instrument.report.Report.checkpoints;
  (* the checkpoint must sit immediately before the back-edge branch *)
  let insns = Prog.insns k.Instrument.prog in
  let cp_pos = ref (-1) in
  Array.iteri
    (fun i x -> match x with Insn.Checkpoint _ -> cp_pos := i | _ -> ())
    insns;
  Alcotest.(check bool) "found" true (!cp_pos >= 0);
  (match insns.(!cp_pos + 1) with
  | Insn.Jcond (_, _, _, off) ->
      Alcotest.(check bool) "backward" true (off < 0)
  | i -> Alcotest.failf "expected back edge after checkpoint, got %a" Insn.pp i)

let t_jump_fixup_semantics () =
  (* instrumented and uninstrumented programs must compute the same result *)
  let items =
    [
      call "kflex_heap_base";
      mov R6 R0;
      sti Insn.U64 R6 64 0L;
      movi R7 0L;
      label "loop";
      ldx Insn.U64 R2 R6 64;
      alui Insn.Add R2 3L;
      stx Insn.U64 R6 64 R2;
      alui Insn.Add R7 1L;
      jmpi Insn.Lt R7 10L "loop";
      ldx Insn.U64 R0 R6 64;
      exit_;
    ]
  in
  let run options =
    let k = Instrument.run ~options (analyse items) in
    let heap = Kflex_runtime.Heap.create ~size:65536L () in
    Kflex_runtime.Heap.populate heap ~off:0L ~len:4096L;
    let ext = Kflex_runtime.Vm.create ~heap ~helpers:[] k in
    match Kflex_runtime.Vm.exec ext ~ctx:(Bytes.make 64 '\000') () with
    | Kflex_runtime.Vm.Finished v -> v
    | Kflex_runtime.Vm.Cancelled _ -> Alcotest.fail "unexpected cancellation"
  in
  Alcotest.(check int64) "kflex = 30" 30L (run (opts ()));
  Alcotest.(check int64) "kmod = 30" 30L (run (opts ~kmod:true ()));
  Alcotest.(check int64) "pm = 30" 30L (run (opts ~pm:true ()))

let t_xstore_rewrite () =
  let items =
    [
      call "kflex_heap_base";
      mov R2 R0;
      stx Insn.U64 R2 64 R0;
      movi R0 0L;
      exit_;
    ]
  in
  let k = Instrument.run ~options:(opts ~xlate:true ()) (analyse items) in
  Alcotest.(check int) "1 xlate" 1 k.Instrument.report.Report.xlate_stores;
  let has_xstore =
    Array.exists
      (function Insn.Xstore _ -> true | _ -> false)
      (Prog.insns k.Instrument.prog)
  in
  Alcotest.(check bool) "xstore present" true has_xstore;
  (* without the option the store is untouched *)
  let k2 = Instrument.run ~options:(opts ()) (analyse items) in
  Alcotest.(check int) "0 xlate" 0 k2.Instrument.report.Report.xlate_stores

let t_object_table_c2 () =
  (* a heap access while holding a lock: its C2 table names the lock *)
  let items =
    [
      call "kflex_heap_base";
      mov R6 R0;
      mov R1 R6;
      call "kflex_spin_lock";
      mov R7 R0;
      ldx Insn.U64 R2 R6 128;
      mov R1 R7;
      call "kflex_spin_unlock";
      movi R0 0L;
      exit_;
    ]
  in
  let k = Instrument.run ~options:(opts ()) (analyse items) in
  let c2s =
    Array.to_list k.Instrument.cps
    |> List.filter (fun c -> c.Instrument.kind = Instrument.C2)
  in
  match c2s with
  | [ cp ] -> (
      match cp.Instrument.table with
      | [ e ] ->
          Alcotest.(check string) "lock" "kflex_lock" e.Instrument.klass;
          Alcotest.(check string) "destructor" "kflex_spin_unlock"
            e.Instrument.destructor
      | t -> Alcotest.failf "expected 1 entry, got %d" (List.length t))
  | l -> Alcotest.failf "expected 1 C2 cp, got %d" (List.length l)

let t_pc_maps_consistent () =
  let k = Instrument.run ~options:(opts ()) (analyse unsafe_rw) in
  let n = Prog.length k.Instrument.prog in
  Array.iteri
    (fun orig newpc ->
      Alcotest.(check bool) "in range" true (newpc >= 0 && newpc < n);
      Alcotest.(check int) "roundtrip" orig
        k.Instrument.orig_of_new.(newpc))
    k.Instrument.pc_map

let t_spill_mitigation () =
  (* §4.3 corner case: the socket lands in r7 on one path and r8 on the
     other — no single object-table location. Raw verification rejects it;
     the spill rewrite gives it a canonical stack slot and it verifies. *)
  let items =
    [
      mov R6 R1;
      ldx Insn.U32 R2 R1 0;
      sti Insn.U64 R10 (-16) 0L;
      sti Insn.U64 R10 (-8) 0L;
      stx Insn.U64 R10 (-24) R2;
      mov R2 R10;
      alui Insn.Add R2 (-16L);
      movi R3 16L;
      movi R4 0L;
      movi R5 0L;
      mov R1 R6;
      call "bpf_sk_lookup_udp";
      jmpi Insn.Ne R0 0L "got";
      movi R0 0L;
      exit_;
      label "got";
      ldx Insn.U64 R2 R10 (-24);
      jmpi Insn.Eq R2 0L "left";
      mov R7 R0;
      movi R8 0L;
      movi R0 0L;
      ja "merge";
      label "left";
      mov R8 R0;
      movi R7 0L;
      movi R0 0L;
      label "merge";
      (* neither r7 nor r8 survives the join as the tracked copy *)
      alu Insn.Or R7 R8;
      mov R1 R7;
      call "bpf_sk_release";
      movi R0 0L;
      exit_;
    ]
  in
  let prog = Asm.assemble ~name:"conflict" items in
  (match
     Verify.run ~mode:Verify.Kflex ~contracts ~ctx_size:64 ~heap_size:65536L
       prog
   with
  | Error { Verify.kind = Verify.E_leak; _ } -> ()
  | Error e -> Alcotest.failf "expected leak, got %a" Verify.pp_error e
  | Ok _ -> Alcotest.fail "raw program should be rejected");
  match Spill.mitigate ~contracts prog with
  | None -> Alcotest.fail "mitigation should apply"
  | Some prog' -> (
      (* The spill resolves the object-table conflict at the join: the
         resource now has a canonical stack location on every path, so the
         analysis no longer reports a leak there. (Our join-based verifier
         is stricter than the paper's path-sensitive one: the joined
         register values are still unusable downstream, so this program's
         later use of r7 remains invalid — but the cancellation table is
         whole, which is what §4.3 is about.) *)
      match
        Verify.run ~mode:Verify.Kflex ~contracts ~ctx_size:64
          ~heap_size:65536L prog'
      with
      | Ok _ -> ()
      | Error { Verify.kind = Verify.E_leak; _ } ->
          Alcotest.fail "mitigation must resolve the table conflict"
      | Error { Verify.kind = Verify.E_uninit; _ } -> ()
      | Error e -> Alcotest.failf "unexpected error: %a" Verify.pp_error e)

let t_spill_semantics_preserved () =
  (* the spill rewrite must not change program behaviour *)
  let items =
    [
      call "kflex_heap_base";
      mov R6 R0;
      mov R1 R6;
      call "kflex_spin_lock";
      mov R7 R0;
      movi R8 0L;
      label "loop";
      alui Insn.Add R8 7L;
      jmpi Insn.Lt R8 70L "loop";
      mov R1 R7;
      call "kflex_spin_unlock";
      mov R0 R8;
      exit_;
    ]
  in
  let prog = Asm.assemble ~name:"sem" items in
  let run p =
    match
      Verify.run ~mode:Verify.Kflex ~contracts ~ctx_size:64 ~heap_size:65536L p
    with
    | Error e -> Alcotest.failf "verify: %a" Verify.pp_error e
    | Ok a ->
        let k = Instrument.run a in
        let heap = Kflex_runtime.Heap.create ~size:65536L () in
        Kflex_runtime.Heap.populate heap ~off:0L ~len:4096L;
        let ext = Kflex_runtime.Vm.create ~heap ~helpers:[] k in
        (match Kflex_runtime.Vm.exec ext ~ctx:(Bytes.make 64 ' ') () with
        | Kflex_runtime.Vm.Finished v -> v
        | Kflex_runtime.Vm.Cancelled _ -> Alcotest.fail "cancelled")
  in
  let base = run prog in
  let spilled =
    match Spill.mitigate ~contracts prog with
    | Some p -> p
    | None -> Alcotest.fail "lock acquisition should trigger a spill"
  in
  Alcotest.(check int64) "same result" base (run spilled)

let t_spill_no_acquires () =
  let prog = Asm.assemble ~name:"plain" [ movi R0 0L; exit_ ] in
  Alcotest.(check bool) "nothing to do" true
    (Spill.mitigate ~contracts prog = None)

let t_no_elision_ablation () =
  let a =
    analyse
      [ call "kflex_heap_base"; ldx Insn.U64 R0 R0 8; movi R0 0L; exit_ ]
  in
  let k = Instrument.run ~options:(opts ~noelide:true ()) a in
  Alcotest.(check int) "guard emitted despite proof" 1
    k.Instrument.report.Report.emitted;
  Alcotest.(check int) "none elided" 0 k.Instrument.report.Report.elided

let t_elision_ratio () =
  Alcotest.(check (float 0.001)) "empty = 1.0" 1.0
    (Kflex_kie.Report.elision_ratio Kflex_kie.Report.zero)

let () =
  Alcotest.run "kie"
    [
      ( "instrument",
        [
          Alcotest.test_case "guard insertion" `Quick t_guard_insertion;
          Alcotest.test_case "performance mode" `Quick t_perf_mode_reads_unguarded;
          Alcotest.test_case "kmod baseline" `Quick t_kmod_no_instrumentation;
          Alcotest.test_case "elided not emitted" `Quick t_elided_guard_not_emitted;
          Alcotest.test_case "checkpoint placement" `Quick t_checkpoint_at_back_edge;
          Alcotest.test_case "jump fixup semantics" `Quick t_jump_fixup_semantics;
          Alcotest.test_case "translate-on-store" `Quick t_xstore_rewrite;
          Alcotest.test_case "C2 object table" `Quick t_object_table_c2;
          Alcotest.test_case "pc maps" `Quick t_pc_maps_consistent;
          Alcotest.test_case "elision ratio" `Quick t_elision_ratio;
          Alcotest.test_case "no-elision ablation" `Quick t_no_elision_ablation;
          Alcotest.test_case "spill mitigation (4.3)" `Quick t_spill_mitigation;
          Alcotest.test_case "spill preserves semantics" `Quick
            t_spill_semantics_preserved;
          Alcotest.test_case "spill no-op" `Quick t_spill_no_acquires;
        ] );
    ]
