(* Regenerates the hand-written corpus entries in test/corpus/.

   These are near-miss cases aimed at the boundaries the random generator
   only hits occasionally: exact off-by-one heap bounds, join-point tnum
   widening, loop-invariant resource sets, formation guards, malloc block
   edges, and resources held across cancellation sites. Each file replays
   green; a future soundness regression in the verifier, the instrumenter or
   the runtime shows up as a red corpus replay without any fuzzing.

     dune exec test/gen_corpus.exe -- test/corpus *)

open Kflex_bpf
module Gen = Kflex_fuzz.Gen
module Corpus = Kflex_fuzz.Corpus
module Oracle = Kflex_fuzz.Oracle

let r0 = Reg.R0
let r1 = Reg.R1
let r2 = Reg.R2
let r3 = Reg.R3
let r4 = Reg.R4
let r5 = Reg.R5
let r6 = Reg.R6
let r7 = Reg.R7
let r8 = Reg.R8

(* r6 = ctx, r7 = heap base: the fuzzer's register conventions. *)
let prologue =
  [ Asm.mov r6 r1; Asm.call "kflex_heap_base"; Asm.mov r7 r0 ]

let epilogue = [ Asm.movi r0 0L; Asm.exit_ ]

let hs = Oracle.default_config.Oracle.heap_size (* 64 KiB *)

(* Loads hugging both sides of the heap edge: [size-8] (the last elidable
   u64), [size-4] (u32 ending exactly at the edge), then [size-7] (one byte
   past — a guarded access that must fault in the guard zone identically
   with and without elision). *)
let off_by_one_heap =
  let at off w d =
    [
      Asm.movi r1 off;
      Asm.mov r2 r7;
      Asm.alu Insn.Add r2 r1;
      Asm.ldx w d r2 0;
    ]
  in
  prologue
  @ at (Int64.sub hs 8L) Insn.U64 r3
  @ at (Int64.sub hs 4L) Insn.U32 r4
  @ at (Int64.sub hs 7L) Insn.U64 r5
  @ epilogue

(* Two branch arms materialise 0 and 8; the join's tnum must still prove
   the subsequent masked heap access elidable. *)
let tnum_join_widen =
  prologue
  @ [
      Asm.ldx Insn.U32 r1 r6 0;
      Asm.jmpi Insn.Ne r1 64L "else_";
      Asm.movi r2 0L;
      Asm.ja "join";
      Asm.label "else_";
      Asm.movi r2 8L;
      Asm.label "join";
      Asm.alui Insn.And r2 8L;
      Asm.mov r3 r7;
      Asm.alu Insn.Add r3 r2;
      Asm.ldx Insn.U64 r4 r3 0;
    ]
  @ epilogue

(* A bounded loop whose resource set is loop-invariant: every iteration
   acquires and releases the same spin lock. Cancellation injected inside
   the critical section must release it through the object table. *)
let loop_resource =
  prologue
  @ [
      Asm.movi r8 0L;
      Asm.label "head";
      Asm.mov r1 r7;
      Asm.call "kflex_spin_lock";
      Asm.mov r1 r0;
      Asm.call "kflex_spin_unlock";
      Asm.alui Insn.Add r8 1L;
      Asm.jmpi Insn.Lt r8 4L "head";
    ]
  @ epilogue

(* A formation access: dereferencing a raw scalar. Never elidable; the
   guard must drag the address into the heap on both runs. *)
let formation_guard =
  prologue
  @ [ Asm.movi r3 0x1_2345_6789L; Asm.ldx Insn.U64 r4 r3 0 ]
  @ epilogue

(* Store to the last word of a malloc'd block, then free it. *)
let malloc_bounds =
  prologue
  @ [
      Asm.movi r1 64L;
      Asm.call "kflex_malloc";
      Asm.jmpi Insn.Eq r0 0L "out";
      Asm.sti Insn.U64 r0 56 7L;
      Asm.mov r1 r0;
      Asm.call "kflex_free";
      Asm.label "out";
    ]
  @ epilogue

(* §5.4's pattern: a loop-counter-indexed masked heap store the verifier
   proves in-bounds (so elidable) from the counter's range alone. *)
let counter_indexed_store =
  prologue
  @ [
      Asm.movi r8 0L;
      Asm.label "head";
      Asm.mov r2 r8;
      Asm.alui Insn.And r2 63L;
      Asm.alui Insn.Lsh r2 3L;
      Asm.mov r3 r7;
      Asm.alu Insn.Add r3 r2;
      Asm.stx Insn.U64 r3 0 r8;
      Asm.alui Insn.Add r8 1L;
      Asm.jmpi Insn.Lt r8 16L "head";
    ]
  @ epilogue

(* A socket reference held across heap stores (cancellation sites): the
   injection oracle must see bpf_sk_release run during unwinding. *)
let cancel_socket =
  prologue
  @ [
      Asm.sti Insn.U64 Reg.R10 (-16) 53L;
      Asm.sti Insn.U64 Reg.R10 (-8) 0L;
      Asm.mov r1 r6;
      Asm.mov r2 Reg.R10;
      Asm.alui Insn.Add r2 (-16L);
      Asm.movi r3 0L;
      Asm.movi r4 0L;
      Asm.movi r5 0L;
      Asm.call "bpf_sk_lookup_udp";
      Asm.jmpi Insn.Eq r0 0L "out";
      Asm.movi r2 128L;
      Asm.mov r3 r7;
      Asm.alu Insn.Add r3 r2;
      Asm.sti Insn.U64 r3 0 1L;
      Asm.sti Insn.U64 r3 8 2L;
      Asm.mov r1 r0;
      Asm.call "bpf_sk_release";
      Asm.label "out";
    ]
  @ epilogue

let cases =
  [
    ("off_by_one_heap", off_by_one_heap);
    ("tnum_join_widen", tnum_join_widen);
    ("loop_resource", loop_resource);
    ("formation_guard", formation_guard);
    ("malloc_bounds", malloc_bounds);
    ("counter_indexed_store", counter_indexed_store);
    ("cancel_socket", cancel_socket);
  ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/corpus" in
  List.iter
    (fun (name, items) ->
      let prog = Gen.assemble items in
      let cfg = Oracle.default_config in
      (match Oracle.run_case cfg prog with
      | Oracle.Pass -> ()
      | v ->
          Format.eprintf "gen_corpus: %s does not pass: %a@." name
            Oracle.pp_verdict v;
          exit 1);
      let path = Filename.concat dir (name ^ ".kfxr") in
      Corpus.write path cfg prog;
      Format.printf "wrote %s (%d insns)@." path (Prog.length prog))
    cases
