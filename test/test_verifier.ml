(* Verifier tests: kernel-interface compliance checks, reference tracking,
   loop analysis, and the analysis facts (guard elision, object tables)
   that Kie consumes. *)
open Kflex_bpf
open Kflex_verifier

let contracts = Contract.registry Contract.kflex_base

let verify ?(mode = Verify.Kflex) ?(heap = true) items =
  let prog = Asm.assemble ~name:"t" items in
  Verify.run ~mode ~contracts ~ctx_size:64
    ?heap_size:(if heap then Some 65536L else None)
    prog

let expect_ok ?mode ?heap items =
  match verify ?mode ?heap items with
  | Ok a -> a
  | Error e -> Alcotest.failf "expected OK, got %a" Verify.pp_error e

let expect_err ?mode ?heap kind items =
  match verify ?mode ?heap items with
  | Ok _ -> Alcotest.fail "expected a verification error"
  | Error e ->
      if e.Verify.kind <> kind then
        Alcotest.failf "wrong error kind: %a" Verify.pp_error e

let ek = Verify.E_uninit
and eb = Verify.E_bounds
and et = Verify.E_type
and eh = Verify.E_helper
and el = Verify.E_leak
and eo = Verify.E_loop
and er = Verify.E_resource

open Asm
open Reg

(* --- basic register/memory discipline ------------------------------------ *)

let t_uninit_use () = expect_err ek [ mov R0 R3; exit_ ]

let t_uninit_branch () =
  expect_err ek [ jmpi Insn.Eq R5 0L "x"; label "x"; movi R0 0L; exit_ ]

let t_ctx_read_ok () = ignore (expect_ok [ ldx Insn.U32 R0 R1 8; exit_ ])

let t_ctx_oob () = expect_err eb [ ldx Insn.U64 R0 R1 60; exit_ ]

let t_ctx_neg () = expect_err eb [ ldx Insn.U8 R0 R1 (-1); exit_ ]

let t_ctx_write () = expect_err et [ sti Insn.U32 R1 0 0L; movi R0 0L; exit_ ]

let t_ctx_bounded_variable_offset () =
  (* offset refined by masking: ctx + (x & 31) is provably in bounds *)
  ignore
    (expect_ok
       [
         ldx Insn.U32 R2 R1 0;
         alui Insn.And R2 31L;
         mov R3 R1;
         alu Insn.Add R3 R2;
         ldx Insn.U8 R0 R3 0;
         exit_;
       ])

let t_stack_rw () =
  ignore (expect_ok [ sti Insn.U64 R10 (-8) 42L; ldx Insn.U64 R0 R10 (-8); exit_ ])

let t_stack_oob () =
  expect_err eb [ sti Insn.U64 R10 (-520) 0L; movi R0 0L; exit_ ]

let t_stack_above_fp () =
  expect_err eb [ sti Insn.U64 R10 8 0L; movi R0 0L; exit_ ]

let t_stack_uninit_read () = expect_err ek [ ldx Insn.U64 R0 R10 (-16); exit_ ]

let t_stack_var_offset () =
  expect_err eb
    [
      ldx Insn.U32 R2 R1 0;
      mov R3 R10;
      alu Insn.Sub R3 R2;
      ldx Insn.U64 R0 R3 0;
      exit_;
    ]

let t_exit_needs_scalar_r0 () = expect_err et [ mov R0 R1; exit_ ]

(* --- heap / SFI delegation ------------------------------------------------ *)

let t_heap_requires_kflex () =
  expect_err ~mode:Verify.Ebpf ~heap:false et
    [ movi R1 4096L; ldx Insn.U64 R0 R1 0; exit_ ]

let t_heap_scalar_deref_ok_kflex () =
  let a = expect_ok [ movi R1 4096L; ldx Insn.U64 R0 R1 0; exit_ ] in
  match a.Verify.heap_accesses with
  | [ acc ] ->
      Alcotest.(check bool) "formation" true acc.Verify.formation;
      Alcotest.(check bool) "not elidable" false acc.Verify.elidable
  | _ -> Alcotest.fail "expected one heap access"

let t_heap_base_elidable () =
  let a =
    expect_ok
      [ call "kflex_heap_base"; ldx Insn.U64 R0 R0 128; movi R0 0L; exit_ ]
  in
  match a.Verify.heap_accesses with
  | [ acc ] ->
      Alcotest.(check bool) "elidable" true acc.Verify.elidable;
      Alcotest.(check bool) "not formation" false acc.Verify.formation
  | _ -> Alcotest.fail "expected one heap access"

let t_heap_base_offset_too_far () =
  let a =
    expect_ok
      [
        call "kflex_heap_base";
        alui Insn.Add R0 65536L;
        ldx Insn.U64 R0 R0 0;
        movi R0 0L;
        exit_;
      ]
  in
  match a.Verify.heap_accesses with
  | [ acc ] -> Alcotest.(check bool) "not elidable" false acc.Verify.elidable
  | _ -> Alcotest.fail "expected one heap access"

let t_malloc_sized_elidable () =
  let a =
    expect_ok
      [
        movi R1 64L;
        call "kflex_malloc";
        jmpi Insn.Ne R0 0L "ok";
        movi R0 0L;
        exit_;
        label "ok";
        sti Insn.U64 R0 56 1L;
        movi R0 0L;
        exit_;
      ]
  in
  match a.Verify.heap_accesses with
  | [ acc ] -> Alcotest.(check bool) "elidable" true acc.Verify.elidable
  | _ -> Alcotest.fail "expected one heap access"

let t_stored_heap_ptr_flagged () =
  let a =
    expect_ok
      [
        call "kflex_heap_base";
        mov R2 R0;
        stx Insn.U64 R2 0 R0;
        movi R0 0L;
        exit_;
      ]
  in
  match a.Verify.heap_accesses with
  | [ acc ] -> Alcotest.(check bool) "stored_ptr" true acc.Verify.stored_ptr
  | _ -> Alcotest.fail "expected one heap access"

let t_kernel_ptr_leak_to_heap () =
  expect_err er
    [ call "kflex_heap_base"; stx Insn.U64 R0 0 R10; movi R0 0L; exit_ ]

let t_atomic_outside_heap () =
  expect_err et
    [
      sti Insn.U64 R10 (-8) 0L;
      mov R2 R10;
      alui Insn.Add R2 (-8L);
      movi R3 1L;
      I (Insn.Atomic (Insn.Atomic_add, Insn.U64, R2, 0, R3));
      movi R0 0L;
      exit_;
    ]

(* --- helpers and references ------------------------------------------------ *)

let sk_prologue =
  [
    mov R6 R1;
    sti Insn.U64 R10 (-16) 0L;
    sti Insn.U64 R10 (-8) 0L;
    mov R2 R10;
    alui Insn.Add R2 (-16L);
    movi R3 16L;
    movi R4 0L;
    movi R5 0L;
    mov R1 R6;
    call "bpf_sk_lookup_udp";
  ]

let t_unknown_helper () = expect_err eh [ call "frobnicate"; exit_ ]

let t_helper_bad_arg () = expect_err eh [ movi R1 0L; call "pkt_len"; exit_ ]

let t_helper_uninit_stack_buffer () =
  expect_err eh
    [
      mov R6 R1;
      mov R2 R10;
      alui Insn.Add R2 (-16L);
      movi R3 16L;
      movi R4 0L;
      movi R5 0L;
      mov R1 R6;
      call "bpf_sk_lookup_udp";
      movi R0 0L;
      exit_;
    ]

let t_acquire_release_ok () =
  ignore
    (expect_ok ~mode:Verify.Ebpf ~heap:false
       (sk_prologue
       @ [
           jmpi Insn.Eq R0 0L "out";
           mov R1 R0;
           call "bpf_sk_release";
           label "out";
           movi R0 0L;
           exit_;
         ]))

let t_leak_at_exit () =
  expect_err er
    (sk_prologue
    @ [
        jmpi Insn.Eq R0 0L "out";
        mov R7 R0;
        ja "out2";
        label "out";
        movi R0 0L;
        exit_;
        label "out2";
        movi R0 0L;
        exit_;
      ])

let t_leak_by_clobber () = expect_err el (sk_prologue @ [ movi R0 0L; exit_ ])

let t_release_without_nullcheck () =
  expect_err eh
    (sk_prologue @ [ mov R1 R0; call "bpf_sk_release"; movi R0 0L; exit_ ])

let t_double_release () =
  expect_err ek
    (sk_prologue
    @ [
        jmpi Insn.Eq R0 0L "out";
        mov R7 R0;
        mov R1 R7;
        call "bpf_sk_release";
        mov R1 R7;
        call "bpf_sk_release";
        label "out";
        movi R0 0L;
        exit_;
      ])

let t_obj_arithmetic () =
  expect_err et
    (sk_prologue
    @ [
        jmpi Insn.Eq R0 0L "out";
        alui Insn.Add R0 8L;
        label "out";
        movi R0 0L;
        exit_;
      ])

let t_obj_deref () =
  expect_err et
    (sk_prologue
    @ [
        jmpi Insn.Eq R0 0L "out";
        ldx Insn.U64 R0 R0 0;
        label "out";
        movi R0 0L;
        exit_;
      ])

let t_spill_reload_obj () =
  ignore
    (expect_ok
       (sk_prologue
       @ [
           jmpi Insn.Eq R0 0L "out";
           stx Insn.U64 R10 (-24) R0;
           movi R2 7L;
           ldx Insn.U64 R1 R10 (-24);
           call "bpf_sk_release";
           label "out";
           movi R0 0L;
           exit_;
         ]))

let t_partial_overwrite_spilled_obj () =
  expect_err er
    (sk_prologue
    @ [
        jmpi Insn.Eq R0 0L "out";
        stx Insn.U64 R10 (-24) R0;
        sti Insn.U8 R10 (-24) 0L;
        label "out";
        movi R0 0L;
        exit_;
      ])

(* --- loops ------------------------------------------------------------------ *)

let bounded_loop =
  [
    movi R1 0L;
    label "loop";
    alui Insn.Add R1 1L;
    jmpi Insn.Lt R1 100L "loop";
    movi R0 0L;
    exit_;
  ]

let unbounded_loop =
  [
    movi R1 1024L;
    label "loop";
    ldx Insn.U64 R1 R1 0;
    jmpi Insn.Ne R1 0L "loop";
    movi R0 0L;
    exit_;
  ]

let t_bounded_ebpf_ok () =
  let a = expect_ok ~mode:Verify.Ebpf ~heap:false bounded_loop in
  Alcotest.(check int) "no unbounded" 0 (List.length a.Verify.unbounded)

let t_unbounded_ebpf_rejected () =
  expect_err ~mode:Verify.Ebpf ~heap:false eo unbounded_loop

let t_unbounded_kflex_reported () =
  let a = expect_ok unbounded_loop in
  Alcotest.(check int) "one unbounded" 1 (List.length a.Verify.unbounded)

let t_loop_counter_clobbered_by_call () =
  let p =
    [
      movi R6 0L;
      movi R1 0L;
      label "loop";
      call "bpf_ktime_get_ns";
      alui Insn.Add R1 1L;
      jmpi Insn.Lt R1 100L "loop";
      movi R0 0L;
      exit_;
    ]
  in
  expect_err ~mode:Verify.Ebpf ~heap:false eo p

let t_loop_resource_convergence () =
  let p =
    [
      call "kflex_heap_base";
      mov R6 R0;
      movi R7 0L;
      label "loop";
      mov R1 R6;
      call "kflex_spin_lock";
      stx Insn.U64 R10 (-8) R0;
      alui Insn.Add R7 1L;
      jmpi Insn.Ne R7 0L "loop";
      movi R0 0L;
      exit_;
    ]
  in
  match verify p with
  | Ok _ -> Alcotest.fail "expected loop-convergence rejection"
  | Error e ->
      Alcotest.(check bool) "loop or resource error" true
        (e.Verify.kind = eo || e.Verify.kind = er)

let t_lock_balanced_in_loop () =
  ignore
    (expect_ok
       [
         call "kflex_heap_base";
         mov R6 R0;
         movi R7 0L;
         label "loop";
         mov R1 R6;
         call "kflex_spin_lock";
         mov R1 R0;
         call "kflex_spin_unlock";
         alui Insn.Add R7 1L;
         jmpi Insn.Lt R7 10L "loop";
         movi R0 0L;
         exit_;
       ])

let t_multiple_locks () =
  ignore
    (expect_ok
       [
         call "kflex_heap_base";
         mov R6 R0;
         mov R1 R6;
         call "kflex_spin_lock";
         mov R7 R0;
         mov R1 R6;
         alui Insn.Add R1 64L;
         call "kflex_spin_lock";
         mov R8 R0;
         mov R1 R8;
         call "kflex_spin_unlock";
         mov R1 R7;
         call "kflex_spin_unlock";
         movi R0 0L;
         exit_;
       ])

(* --- bpf_map_lock / bpf_map_unlock pairing ------------------------------- *)

(* Stack key at fp-8, lock fd 3: the [bpf_map_lock] calling convention. *)
let map_lock_prologue =
  [
    sti Insn.U64 R10 (-8) 1L;
    movi R1 3L;
    mov R2 R10;
    alui Insn.Add R2 (-8L);
    call "bpf_map_lock";
  ]

let t_map_lock_paired () =
  (* the happy path: null-checked handle, unlock on the held path only —
     the miss arm exits without a release and that is fine *)
  ignore
    (expect_ok ~heap:false
       (map_lock_prologue
       @ [
           jmpi Insn.Eq R0 0L "miss";
           mov R1 R0;
           call "bpf_map_unlock";
           label "miss";
           movi R0 0L;
           exit_;
         ]))

let t_map_lock_missing_unlock () =
  (* exiting while the lock is held is a resource error, not a warning *)
  expect_err ~heap:false er
    (map_lock_prologue
    @ [
        jmpi Insn.Eq R0 0L "miss";
        label "miss";
        movi R0 0L;
        exit_;
      ])

let t_map_lock_one_path_leaks () =
  (* balanced on one branch, leaked on the other: still rejected *)
  expect_err ~heap:false er
    ((ldx Insn.U32 R6 R1 0 :: map_lock_prologue)
    @ [
        jmpi Insn.Eq R0 0L "miss";
        jmpi Insn.Eq R6 7L "skip";
        mov R1 R0;
        call "bpf_map_unlock";
        label "skip";
        label "miss";
        movi R0 0L;
        exit_;
      ])

let t_map_lock_spill_reload () =
  (* the handle survives a spill, a clobbering helper, and a reload *)
  ignore
    (expect_ok ~heap:false
       (map_lock_prologue
       @ [
           jmpi Insn.Eq R0 0L "miss";
           stx Insn.U64 R10 (-16) R0;
           call "bpf_ktime_get_ns";
           ldx Insn.U64 R1 R10 (-16);
           call "bpf_map_unlock";
           label "miss";
           movi R0 0L;
           exit_;
         ]))

let t_map_unlock_scalar () =
  (* unlocking something that is not a held handle *)
  (match
     verify ~heap:false [ movi R1 42L; call "bpf_map_unlock"; movi R0 0L; exit_ ]
   with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error _ -> ());
  (* and unlocking an un-null-checked handle (may be zero) *)
  match
    verify ~heap:false
      (map_lock_prologue @ [ mov R1 R0; call "bpf_map_unlock"; movi R0 0L; exit_ ])
  with
  | Ok _ -> Alcotest.fail "expected null-able handle rejection"
  | Error _ -> ()

(* --- analysis facts ----------------------------------------------------------- *)

let t_res_at_locations () =
  let a =
    expect_ok
      (sk_prologue
      @ [
          jmpi Insn.Eq R0 0L "out";
          mov R7 R0;
          call "kflex_heap_base";
          ldx Insn.U64 R2 R0 0;
          mov R1 R7;
          call "bpf_sk_release";
          label "out";
          movi R0 0L;
          exit_;
        ])
  in
  match a.Verify.heap_accesses with
  | [ access ] -> (
      match a.Verify.res_at.(access.Verify.pc) with
      | [ { Verify.res; loc } ] -> (
          Alcotest.(check string) "klass" "sock" res.State.klass;
          match loc with
          | State.L_reg r -> Alcotest.(check int) "in r7" 7 (Reg.to_int r)
          | State.L_slot _ -> Alcotest.fail "expected register location")
      | l -> Alcotest.failf "expected 1 held resource, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 heap access, got %d" (List.length l)

let t_origin_tracking_elision () =
  let a =
    expect_ok
      [
        call "kflex_heap_base";
        mov R6 R0;
        sti Insn.U64 R10 (-8) 0L;
        label "loop";
        ldx Insn.U64 R2 R10 (-8);
        jmpi Insn.Ge R2 8L "done";
        ldx Insn.U64 R3 R10 (-8);
        alui Insn.Lsh R3 3L;
        mov R4 R6;
        alu Insn.Add R4 R3;
        ldx Insn.U64 R5 R4 0;
        ldx Insn.U64 R2 R10 (-8);
        alui Insn.Add R2 1L;
        stx Insn.U64 R10 (-8) R2;
        ja "loop";
        label "done";
        movi R0 0L;
        exit_;
      ]
  in
  match a.Verify.heap_accesses with
  | [ acc ] ->
      Alcotest.(check bool) "elidable via origin" true acc.Verify.elidable
  | l -> Alcotest.failf "expected 1 heap access, got %d" (List.length l)

let t_widening_terminates () =
  (* a loop whose counter range keeps growing must still reach a fixpoint
     quickly thanks to widening *)
  let t0 = Unix.gettimeofday () in
  ignore
    (expect_ok
       [
         movi R1 0L;
         movi R2 0L;
         label "loop";
         alui Insn.Add R1 3L;
         alui Insn.Add R2 5L;
         alu Insn.Add R1 R2;
         ldx Insn.U64 R3 R1 0;
         jmpi Insn.Ne R3 0L "loop";
         movi R0 0L;
         exit_;
       ]);
  Alcotest.(check bool) "fast fixpoint" true (Unix.gettimeofday () -. t0 < 1.0)

let t_mixed_provenance_join () =
  (* a value that is a stack pointer on one path and a scalar on the other
     is unusable after the join *)
  expect_err ek
    [
      ldx Insn.U32 R2 R1 0;
      jmpi Insn.Eq R2 0L "a";
      mov R3 R10;
      ja "m";
      label "a";
      movi R3 64L;
      label "m";
      ldx Insn.U64 R0 R3 (-8);
      exit_;
    ]

let t_heap_scalar_join_is_unknown () =
  (* heap pointer on one path, scalar on the other: usable, but guarded *)
  let a =
    expect_ok
      [
        ldx Insn.U32 R2 R1 0;
        jmpi Insn.Eq R2 0L "a";
        call "kflex_heap_base";
        mov R3 R0;
        ja "m";
        label "a";
        movi R3 4096L;
        label "m";
        ldx Insn.U64 R0 R3 0;
        exit_;
      ]
  in
  match a.Verify.heap_accesses with
  | [ acc ] -> Alcotest.(check bool) "formation guard" true acc.Verify.formation
  | _ -> Alcotest.fail "expected one heap access"

let t_sleepable_rejected_on_xdp () =
  let contracts' =
    Contract.registry
      (Contract.kflex_base
      @ [
          Contract.make ~name:"might_sleep" ~args:[] ~ret:Contract.R_scalar
            ~sleepable:true ();
        ])
  in
  let prog = Asm.assemble ~name:"sleepy" [ call "might_sleep"; exit_ ] in
  (match
     Verify.run ~mode:Verify.Kflex ~contracts:contracts' ~ctx_size:64
       ~sleepable:false prog
   with
  | Error { Verify.kind = Verify.E_helper; _ } -> ()
  | _ -> Alcotest.fail "sleepable helper must be rejected at a non-sleepable hook");
  match
    Verify.run ~mode:Verify.Kflex ~contracts:contracts' ~ctx_size:64
      ~sleepable:true prog
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sleepable hook should accept: %a" Verify.pp_error e

let t_dead_branch_not_explored () =
  (* on the dead edge of [if 5 == 5] the invalid access is unreachable *)
  ignore
    (expect_ok
       [
         movi R2 5L;
         jmpi Insn.Eq R2 5L "ok";
         mov R0 R7;
         (* would be uninit, but this edge is dead *)
         exit_;
         label "ok";
         movi R0 0L;
         exit_;
       ])

let t_stack_used () =
  let a =
    expect_ok [ sti Insn.U64 R10 (-48) 1L; ldx Insn.U64 R0 R10 (-48); exit_ ]
  in
  Alcotest.(check int) "stack_used" 48 a.Verify.stack_used

(* Robustness fuzz: the verifier must accept or reject every structurally
   valid program — never raise, never hang. *)
let prop_verifier_total =
  let open QCheck in
  let insn_gen rng =
    let reg () = Reg.of_int (Gen.int_bound 9 rng) in
    let any_reg () = Reg.of_int (Gen.int_bound 10 rng) in
    let imm () = Int64.of_int (Gen.int_range (-1024) 1024 rng) in
    match Gen.int_bound 9 rng with
    | 0 -> Insn.Mov (reg (), Insn.Imm (imm ()))
    | 1 -> Insn.Mov (reg (), Insn.Reg (any_reg ()))
    | 2 ->
        Insn.Alu
          ( List.nth
              [ Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.And; Insn.Or;
                Insn.Lsh; Insn.Rsh ]
              (Gen.int_bound 7 rng),
            reg (),
            Insn.Imm (imm ()) )
    | 3 -> Insn.Ldx (Insn.U64, reg (), any_reg (), Gen.int_range (-64) 64 rng)
    | 4 -> Insn.Stx (Insn.U64, any_reg (), Gen.int_range (-64) 64 rng, any_reg ())
    | 5 -> Insn.St (Insn.U32, any_reg (), Gen.int_range (-64) 64 rng, imm ())
    | 6 ->
        Insn.Call
          (List.nth
             [ "kflex_heap_base"; "kflex_malloc"; "bpf_ktime_get_ns";
               "bpf_get_prandom_u32"; "pkt_len" ]
             (Gen.int_bound 4 rng))
    | 7 -> Insn.Neg (reg ())
    | _ -> Insn.Mov (Reg.R0, Insn.Imm 0L)
  in
  let prog_gen rng =
    let n = 1 + Gen.int_bound 20 rng in
    let body = Array.init n (fun _ -> insn_gen rng) in
    (* add a few random forward/backward jumps with in-range targets *)
    let with_jumps =
      Array.mapi
        (fun i insn ->
          if Gen.int_bound 6 rng = 0 && n > 1 then begin
            let target = Gen.int_bound n rng in
            let off = target - i - 1 in
            if target <> i + 1 && target >= 0 && target <= n then
              Insn.Jcond
                ( (if Gen.bool rng then Insn.Eq else Insn.Lt),
                  Reg.of_int (Gen.int_bound 10 rng),
                  Insn.Imm 0L,
                  off )
            else insn
          end
          else insn)
        body
    in
    Array.append with_jumps [| Insn.Mov (Reg.R0, Insn.Imm 0L); Insn.Exit |]
  in
  QCheck.Test.make ~count:400 ~name:"verifier is total on valid programs"
    (QCheck.make prog_gen)
    (fun insns ->
      match Prog.create ~name:"fuzz" insns with
      | exception Prog.Malformed _ -> true (* structurally invalid: fine *)
      | prog -> (
          match
            Verify.run ~mode:Verify.Kflex ~contracts ~ctx_size:64
              ~heap_size:65536L prog
          with
          | Ok _ | Error _ -> true))

(* --- known bits (tnum) and guard elision --------------------------------- *)

(* Interval analysis is blind through xor: after [x & 0xff ^ 0x3c] the seed
   domain knows nothing, but the known-bits half still proves the value fits
   in 8 bits — so the heap access below is elidable only with tnum. *)
let xor_masked_access =
  [
    ldx Insn.U32 R6 R1 0;
    alui Insn.And R6 255L;
    alui Insn.Xor R6 60L;
    call "kflex_heap_base";
    alu Insn.Add R0 R6;
    ldx Insn.U64 R3 R0 0;
    movi R0 0L;
    exit_;
  ]

let interval_only f =
  Range.set_tnum false;
  Fun.protect ~finally:(fun () -> Range.set_tnum true) f

let t_tnum_elision_gain () =
  let elidable () =
    let a = expect_ok xor_masked_access in
    match a.Verify.heap_accesses with
    | [ acc ] ->
        Alcotest.(check bool) "not formation" false acc.Verify.formation;
        acc.Verify.elidable
    | l -> Alcotest.failf "expected 1 heap access, got %d" (List.length l)
  in
  Alcotest.(check bool) "interval+tnum elides" true (elidable ());
  Alcotest.(check bool) "interval-only cannot elide" false
    (interval_only elidable)

(* Switching the tnum domain on must never lose an elision anywhere on the
   data-structure corpus, and must gain at least one. *)
let t_corpus_elision_non_decrease () =
  let total_gain = ref 0 in
  List.iter
    (fun kind ->
      List.iter
        (fun (opname, op) ->
          let name = Kflex_apps.Datastructs.name kind ^ "_" ^ opname in
          let compiled =
            Kflex_eclang.Compile.compile_string ~name
              (Kflex_apps.Datastructs.op_source kind op)
          in
          let count () =
            match
              Verify.run ~mode:Verify.Kflex ~contracts:Kflex.contracts
                ~ctx_size:Kflex_kernel.Hook.ctx_size
                ~heap_size:(Int64.shift_left 1L 24)
                compiled.Kflex_eclang.Compile.prog
            with
            | Error e -> Alcotest.failf "%s rejected: %a" name Verify.pp_error e
            | Ok a ->
                List.length
                  (List.filter
                     (fun (x : Verify.heap_access) ->
                       x.Verify.elidable && not x.Verify.formation)
                     a.Verify.heap_accesses)
          in
          let n_int = interval_only count in
          let n_tnum = count () in
          if n_tnum < n_int then
            Alcotest.failf "%s: elision decreased %d -> %d" name n_int n_tnum;
          total_gain := !total_gain + (n_tnum - n_int))
        [ ("update", `Update); ("lookup", `Lookup); ("delete", `Delete) ])
    Kflex_apps.Datastructs.all;
  Alcotest.(check bool) "tnum gains at least one elision" true (!total_gain >= 1)

(* --- lint ----------------------------------------------------------------- *)

let lint items = Lint.run ~contracts (expect_ok items)

let kinds_of diags =
  List.sort_uniq Stdlib.compare
    (List.map (fun (d : Lint.diag) -> d.Lint.kind) diags)

let pcs_of kind diags =
  List.filter_map
    (fun (d : Lint.diag) -> if d.Lint.kind = kind then Some d.Lint.pc else None)
    diags

let t_lint_clean () =
  let diags = lint [ movi R0 0L; exit_ ] in
  Alcotest.(check int) "no findings" 0 (List.length diags);
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code diags)

let t_lint_unreachable_structural () =
  let diags = lint [ movi R0 0L; exit_; movi R0 1L; exit_ ] in
  Alcotest.(check (list int)) "block at pc 2" [ 2 ]
    (pcs_of Lint.Unreachable diags);
  Alcotest.(check int) "exit 1" 1 (Lint.exit_code diags)

let t_lint_always_taken () =
  let diags =
    lint
      [
        movi R2 5L;
        jmpi Insn.Eq R2 5L "ok";
        mov R0 R7;
        exit_;
        label "ok";
        movi R0 0L;
        exit_;
      ]
  in
  Alcotest.(check (list int)) "branch at pc 1" [ 1 ]
    (pcs_of Lint.Always_taken diags);
  (* the dead fall-through block is also reported as unreachable *)
  Alcotest.(check (list int)) "dead block at pc 2" [ 2 ]
    (pcs_of Lint.Unreachable diags)

let t_lint_never_taken () =
  let diags =
    lint
      [
        movi R2 3L;
        jmpi Insn.Eq R2 5L "x";
        movi R0 0L;
        exit_;
        label "x";
        movi R0 1L;
        exit_;
      ]
  in
  Alcotest.(check (list int)) "branch at pc 1" [ 1 ]
    (pcs_of Lint.Never_taken diags);
  Alcotest.(check (list int)) "dead block at pc 4" [ 4 ]
    (pcs_of Lint.Unreachable diags)

let t_lint_dead_store_overwrite () =
  let diags =
    lint
      [
        sti Insn.U64 R10 (-8) 1L;
        sti Insn.U64 R10 (-8) 2L;
        ldx Insn.U64 R0 R10 (-8);
        exit_;
      ]
  in
  Alcotest.(check (list int)) "first store dead" [ 0 ]
    (pcs_of Lint.Dead_store diags)

let t_lint_dead_store_at_exit () =
  let diags = lint [ sti Insn.U64 R10 (-16) 7L; movi R0 0L; exit_ ] in
  Alcotest.(check (list int)) "unread store dead" [ 0 ]
    (pcs_of Lint.Dead_store diags)

let t_lint_dead_store_conservative () =
  (* a load between the stores keeps the first one live; a partial overwrite
     does not prove the first store dead either *)
  let diags =
    lint
      [
        sti Insn.U64 R10 (-8) 1L;
        ldx Insn.U64 R3 R10 (-8);
        sti Insn.U64 R10 (-8) 2L;
        sti Insn.U8 R10 (-8) 3L;
        ldx Insn.U64 R0 R10 (-8);
        exit_;
      ]
  in
  Alcotest.(check (list int)) "no dead stores" []
    (pcs_of Lint.Dead_store diags)

let t_lint_dead_store_past_call () =
  (* pkt_len's contract has no stack-pointer argument, so the call provably
     cannot read slot fp-8 — the first store is dead across it *)
  let diags =
    lint
      [
        sti Insn.U64 R10 (-8) 1L;
        call "pkt_len";
        sti Insn.U64 R10 (-8) 2L;
        ldx Insn.U64 R0 R10 (-8);
        exit_;
      ]
  in
  Alcotest.(check (list int)) "dead across the call" [ 0 ]
    (pcs_of Lint.Dead_store diags)

let t_lint_store_read_by_helper_live () =
  (* bpf_map_lookup reads its key/value buffers via A_stack_ptr args: the
     stores feeding them must stay live *)
  let diags =
    lint
      [
        sti Insn.U64 R10 (-8) 1L;
        sti Insn.U64 R10 (-16) 0L;
        movi R1 0L;
        mov R2 R10;
        alui Insn.Add R2 (-8L);
        mov R3 R10;
        alui Insn.Add R3 (-16L);
        call "bpf_map_lookup";
        movi R0 0L;
        exit_;
      ]
  in
  Alcotest.(check (list int)) "no dead stores" []
    (pcs_of Lint.Dead_store diags)

let t_lint_dead_store_cross_block () =
  (* both branch arms overwrite the slot before any read — only whole-CFG
     liveness sees this *)
  let diags =
    lint
      [
        sti Insn.U64 R10 (-8) 1L;
        ldx Insn.U32 R2 R1 0;
        jmpi Insn.Eq R2 0L "a";
        sti Insn.U64 R10 (-8) 2L;
        ja "b";
        label "a";
        sti Insn.U64 R10 (-8) 3L;
        label "b";
        ldx Insn.U64 R0 R10 (-8);
        exit_;
      ]
  in
  Alcotest.(check (list int)) "store before the branch is dead" [ 0 ]
    (pcs_of Lint.Dead_store diags)

let t_lint_ignored_result_cross_block () =
  let diags =
    lint
      [
        mov R6 R1;
        call "bpf_ktime_get_ns";
        ldx Insn.U32 R2 R6 0;
        jmpi Insn.Eq R2 0L "a";
        movi R0 0L;
        exit_;
        label "a";
        movi R0 1L;
        exit_;
      ]
  in
  Alcotest.(check (list int)) "ignored on every arm" [ 1 ]
    (pcs_of Lint.Ignored_result diags)

let t_lint_redundant_guard () =
  let diags =
    lint
      [
        ldx Insn.U32 R2 R1 0;
        alui Insn.And R2 255L;
        alui Insn.And R2 255L;
        movi R0 0L;
        exit_;
      ]
  in
  (* only the second mask is provably a no-op *)
  Alcotest.(check (list int)) "second mask redundant" [ 2 ]
    (pcs_of Lint.Redundant_guard diags);
  (* the compiler materialises masks into registers; those count too *)
  let diags =
    lint
      [
        ldx Insn.U32 R2 R1 0;
        alui Insn.And R2 255L;
        movi R3 255L;
        alu Insn.And R2 R3;
        movi R0 0L;
        exit_;
      ]
  in
  Alcotest.(check (list int)) "register-operand mask redundant" [ 3 ]
    (pcs_of Lint.Redundant_guard diags)

let t_lint_ignored_result () =
  let diags =
    lint [ call "bpf_ktime_get_ns"; call "bpf_ktime_get_ns"; exit_ ]
  in
  Alcotest.(check (list int)) "first call ignored" [ 0 ]
    (pcs_of Lint.Ignored_result diags)

let t_lint_result_used_not_flagged () =
  let diags =
    lint
      [
        call "bpf_ktime_get_ns";
        mov R6 R0;
        call "bpf_ktime_get_ns";
        alu Insn.Add R0 R6;
        exit_;
      ]
  in
  Alcotest.(check (list Alcotest.int)) "nothing flagged" []
    (pcs_of Lint.Ignored_result diags);
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code diags)

let t_lint_kinds_cover () =
  (* one program exercising several diagnostic kinds at once; sorted by pc *)
  let diags =
    lint
      [
        sti Insn.U64 R10 (-8) 1L;
        sti Insn.U64 R10 (-8) 2L;
        movi R2 5L;
        jmpi Insn.Eq R2 5L "ok";
        mov R0 R7;
        exit_;
        label "ok";
        ldx Insn.U64 R0 R10 (-8);
        exit_;
      ]
  in
  Alcotest.(check bool) "dead store found" true
    (List.mem Lint.Dead_store (kinds_of diags));
  Alcotest.(check bool) "always-taken found" true
    (List.mem Lint.Always_taken (kinds_of diags));
  Alcotest.(check bool) "unreachable found" true
    (List.mem Lint.Unreachable (kinds_of diags));
  let pcs = List.map (fun (d : Lint.diag) -> d.Lint.pc) diags in
  Alcotest.(check (list int)) "sorted by pc" (List.sort Int.compare pcs) pcs

(* --- lifecycle analysis --------------------------------------------------- *)

let lifecycle items = Lifecycle.run ~contracts (expect_ok items)

let lc_kinds fs = List.map (fun (f : Lifecycle.finding) -> f.Lifecycle.kind) fs

let check_lc name expected fs =
  Alcotest.(check (list string))
    name
    (List.map Lifecycle.kind_name expected)
    (List.map Lifecycle.kind_name (lc_kinds fs))

let t_lc_conditional_leak () =
  let fs =
    lifecycle
      [
        mov R6 R1;
        movi R1 16L;
        call "kflex_malloc";
        jmpi Insn.Eq R0 0L "out";
        mov R7 R0;
        ldx Insn.U32 R2 R6 0;
        jmpi Insn.Eq R2 0L "skip";
        mov R1 R7;
        call "kflex_free";
        label "skip";
        label "out";
        movi R0 0L;
        exit_;
      ]
  in
  check_lc "conditional leak" [ Lifecycle.Leak ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "site = malloc pc" 2 f.Lifecycle.site;
  Alcotest.(check int) "manifests at exit" 10 f.Lifecycle.pc;
  (* the witness is the branch-skipping path, in execution order *)
  Alcotest.(check (list int))
    "path witness" [ 0; 1; 2; 3; 4; 5; 6; 9; 10 ] f.Lifecycle.witness

let t_lc_leak_by_overwrite () =
  let fs =
    lifecycle
      [
        movi R1 8L;
        call "kflex_malloc";
        jmpi Insn.Eq R0 0L "out";
        movi R0 0L;
        label "out";
        movi R0 0L;
        exit_;
      ]
  in
  check_lc "overwrite leak" [ Lifecycle.Leak ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "site" 1 f.Lifecycle.site;
  Alcotest.(check int) "pc = overwriting insn" 3 f.Lifecycle.pc;
  Alcotest.(check (list int)) "witness" [ 0; 1; 2; 3 ] f.Lifecycle.witness

let t_lc_double_free () =
  let fs =
    lifecycle
      [
        movi R1 16L;
        call "kflex_malloc";
        jmpi Insn.Eq R0 0L "out";
        mov R7 R0;
        mov R1 R7;
        call "kflex_free";
        mov R1 R7;
        call "kflex_free";
        label "out";
        movi R0 0L;
        exit_;
      ]
  in
  check_lc "double free" [ Lifecycle.Double_release ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "site" 1 f.Lifecycle.site;
  Alcotest.(check int) "second free pc" 7 f.Lifecycle.pc

let t_lc_use_after_free () =
  let fs =
    lifecycle
      [
        movi R1 8L;
        call "kflex_malloc";
        jmpi Insn.Eq R0 0L "out";
        mov R7 R0;
        mov R1 R7;
        call "kflex_free";
        ldx Insn.U64 R3 R7 0;
        label "out";
        movi R0 0L;
        exit_;
      ]
  in
  check_lc "use after free" [ Lifecycle.Use_after_release ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "site" 1 f.Lifecycle.site;
  Alcotest.(check int) "deref pc" 6 f.Lifecycle.pc

let t_lc_null_deref () =
  let fs =
    lifecycle
      [
        movi R1 8L;
        call "kflex_malloc";
        sti Insn.U32 R0 0 5L;
        mov R1 R0;
        call "kflex_free";
        movi R0 0L;
        exit_;
      ]
  in
  check_lc "null deref" [ Lifecycle.Null_deref ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "site" 1 f.Lifecycle.site;
  Alcotest.(check int) "deref pc" 2 f.Lifecycle.pc;
  Alcotest.(check (list int)) "witness" [ 0; 1; 2 ] f.Lifecycle.witness

let t_lc_clean_checked () =
  check_lc "checked and freed: clean" []
    (lifecycle
       [
         movi R1 8L;
         call "kflex_malloc";
         jmpi Insn.Eq R0 0L "out";
         sti Insn.U32 R0 0 1L;
         mov R1 R0;
         call "kflex_free";
         label "out";
         movi R0 0L;
         exit_;
       ])

let t_lc_spill_reload_clean () =
  (* the binding survives a spill, a clobbering helper call the contract
     registry knows cannot free the block, and a reload *)
  check_lc "spill/reload: clean" []
    (lifecycle
       [
         movi R1 8L;
         call "kflex_malloc";
         jmpi Insn.Eq R0 0L "out";
         stx Insn.U64 R10 (-8) R0;
         call "bpf_ktime_get_ns";
         mov R6 R0;
         ldx Insn.U64 R1 R10 (-8);
         call "kflex_free";
         label "out";
         movi R0 0L;
         exit_;
       ])

let t_lc_escape_untracks () =
  (* pointer arithmetic and heap stores escape the block: never reported *)
  check_lc "escaped block: silent" []
    (lifecycle
       [
         movi R1 8L;
         call "kflex_malloc";
         jmpi Insn.Eq R0 0L "out";
         alui Insn.Add R0 4L;
         label "out";
         movi R0 0L;
         exit_;
       ])

let t_lc_lock_hazard () =
  let fs =
    lifecycle
      ([
         mov R6 R1;
         call "kflex_heap_base";
         mov R7 R0;
         mov R1 R7;
         call "kflex_spin_lock";
         mov R8 R0;
         sti Insn.U64 R10 (-16) 0L;
         sti Insn.U64 R10 (-8) 0L;
         mov R2 R10;
         alui Insn.Add R2 (-16L);
         movi R3 16L;
         movi R4 0L;
         movi R5 0L;
         mov R1 R6;
         call "bpf_sk_lookup_udp";
       ]
      @ [
          jmpi Insn.Eq R0 0L "nosock";
          mov R1 R0;
          call "bpf_sk_release";
          label "nosock";
          mov R1 R8;
          call "kflex_spin_unlock";
          movi R0 0L;
          exit_;
        ])
  in
  check_lc "acquiring helper under spin lock" [ Lifecycle.Lock_hazard ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "site = lock acquisition" 4 f.Lifecycle.site;
  Alcotest.(check int) "hazard at the lookup call" 14 f.Lifecycle.pc

let t_lc_lock_order_inversion () =
  let fs =
    lifecycle
      [
        call "kflex_heap_base";
        mov R6 R0;
        mov R1 R6;
        alui Insn.Add R1 128L;
        call "kflex_spin_lock";
        mov R7 R0;
        mov R1 R6;
        alui Insn.Add R1 64L;
        call "kflex_spin_lock";
        mov R8 R0;
        mov R1 R8;
        call "kflex_spin_unlock";
        mov R1 R7;
        call "kflex_spin_unlock";
        movi R0 0L;
        exit_;
      ]
  in
  check_lc "order inversion" [ Lifecycle.Lock_order ] fs;
  let f = List.hd fs in
  Alcotest.(check int) "site = outer lock" 4 f.Lifecycle.site;
  Alcotest.(check int) "inversion at inner lock" 8 f.Lifecycle.pc

let t_lc_lock_self_deadlock () =
  let fs =
    lifecycle
      [
        call "kflex_heap_base";
        mov R6 R0;
        mov R1 R6;
        alui Insn.Add R1 64L;
        call "kflex_spin_lock";
        mov R7 R0;
        mov R1 R6;
        alui Insn.Add R1 64L;
        call "kflex_spin_lock";
        mov R8 R0;
        mov R1 R8;
        call "kflex_spin_unlock";
        mov R1 R7;
        call "kflex_spin_unlock";
        movi R0 0L;
        exit_;
      ]
  in
  check_lc "self deadlock" [ Lifecycle.Lock_order ] fs;
  Alcotest.(check int) "re-acquisition pc" 8 (List.hd fs).Lifecycle.pc

let t_lc_locks_ordered_clean () =
  check_lc "increasing order: clean" []
    (lifecycle
       [
         call "kflex_heap_base";
         mov R6 R0;
         mov R1 R6;
         call "kflex_spin_lock";
         mov R7 R0;
         mov R1 R6;
         alui Insn.Add R1 64L;
         call "kflex_spin_lock";
         mov R8 R0;
         mov R1 R8;
         call "kflex_spin_unlock";
         mov R1 R7;
         call "kflex_spin_unlock";
         movi R0 0L;
         exit_;
       ])

let t_lc_lock_in_unbounded_loop () =
  (* holding a spin lock across an unbounded-loop back edge stalls the
     cancellation point Kie will place there *)
  let fs =
    lifecycle
      [
        call "kflex_heap_base";
        mov R6 R0;
        mov R1 R6;
        call "kflex_spin_lock";
        mov R7 R0;
        ldx Insn.U64 R8 R6 8;
        label "loop";
        alui Insn.Add R8 1L;
        jmpi Insn.Ne R8 0L "loop";
        mov R1 R7;
        call "kflex_spin_unlock";
        movi R0 0L;
        exit_;
      ]
  in
  Alcotest.(check bool) "hazard reported" true
    (List.mem Lifecycle.Lock_hazard (lc_kinds fs))

let t_lc_chain_unreachable () =
  let an items =
    expect_ok items
  in
  let blocker =
    an [ movi R0 1L; exit_ ] (* always XDP_DROP; never the pass verdict *)
  in
  let downstream =
    an
      [
        movi R1 8L;
        call "kflex_malloc";
        jmpi Insn.Eq R0 0L "out";
        mov R1 R0;
        call "kflex_free";
        label "out";
        movi R0 2L;
        exit_;
      ]
  in
  let pass = Kflex_kernel.Hook.pass_verdict Kflex_kernel.Hook.Xdp in
  let cfs = Lifecycle.run_chain ~contracts ~pass_verdict:pass [ blocker; downstream ] in
  match cfs with
  | [ { Lifecycle.index = 1; finding } ] ->
      Alcotest.(check string)
        "kind" "chain-unreachable"
        (Lifecycle.kind_name finding.Lifecycle.kind);
      Alcotest.(check (list int))
        "witness = blocker exits" [ 1 ] finding.Lifecycle.witness
  | fs ->
      Alcotest.failf "expected exactly one chain finding, got %d" (List.length fs)

let t_lc_chain_reachable_clean () =
  let cond =
    expect_ok
      [
        ldx Insn.U32 R2 R1 0;
        jmpi Insn.Eq R2 0L "drop";
        movi R0 2L;
        exit_;
        label "drop";
        movi R0 1L;
        exit_;
      ]
  in
  let plain = expect_ok [ movi R0 2L; exit_ ] in
  let pass = Kflex_kernel.Hook.pass_verdict Kflex_kernel.Hook.Xdp in
  Alcotest.(check int) "no chain findings" 0
    (List.length (Lifecycle.run_chain ~contracts ~pass_verdict:pass [ cond; plain ]))

(* --- contract registry invariants ---------------------------------------- *)

let t_contract_base_well_formed () =
  Alcotest.(check (list string)) "no violations" []
    (Contract.invariant_errors contracts)

let t_contract_acquire_needs_destructor () =
  let reg =
    Contract.registry
      [
        Contract.make ~name:"acq" ~args:[] ~ret:(Contract.R_obj "x")
          ~eff:Contract.E_acquire ();
      ]
  in
  Alcotest.(check bool) "violation reported" true
    (Contract.invariant_errors reg <> [])

let t_contract_ordinal_mismatch () =
  let reg =
    Contract.registry
      [
        Contract.make ~name:"lk" ~args:[ Contract.A_heap_ptr ]
          ~ret:(Contract.R_obj "l") ~eff:Contract.E_acquire ~destructor:"ulk"
          ~lock_ordinal:0 ();
        Contract.make ~name:"ulk" ~args:[ Contract.A_obj "l" ]
          ~ret:Contract.R_unit ~eff:(Contract.E_release 0) ~lock_ordinal:1 ();
      ]
  in
  Alcotest.(check bool) "ordinal disagreement reported" true
    (List.exists
       (fun m -> String.length m > 0 && String.index_opt m ':' <> None)
       (Contract.invariant_errors reg)
    && Contract.invariant_errors reg <> [])

let t_contract_release_arg_shape () =
  let reg =
    Contract.registry
      [
        Contract.make ~name:"rel" ~args:[ Contract.A_scalar ]
          ~ret:Contract.R_unit ~eff:(Contract.E_release 0) ();
      ]
  in
  Alcotest.(check bool) "release arg must be A_obj" true
    (Contract.invariant_errors reg <> [])

(* Guard semantics: sanitisation is idempotent and lands in-heap. *)
let prop_sanitize_idempotent =
  QCheck.Test.make ~count:500 ~name:"sanitize is idempotent and in-heap"
    QCheck.(map Int64.of_int int)
    (fun addr ->
      let h = Kflex_runtime.Heap.create ~size:65536L () in
      let s1 = Kflex_runtime.Heap.sanitize h addr in
      let s2 = Kflex_runtime.Heap.sanitize h s1 in
      s1 = s2
      &&
      match Kflex_runtime.Heap.offset_of_addr h s1 with
      | Some off -> off >= 0L && off < 65536L
      | None -> false)

let () =
  Alcotest.run "verifier"
    [
      ( "memory",
        [
          Alcotest.test_case "uninit use" `Quick t_uninit_use;
          Alcotest.test_case "uninit branch" `Quick t_uninit_branch;
          Alcotest.test_case "ctx read ok" `Quick t_ctx_read_ok;
          Alcotest.test_case "ctx oob" `Quick t_ctx_oob;
          Alcotest.test_case "ctx negative" `Quick t_ctx_neg;
          Alcotest.test_case "ctx write" `Quick t_ctx_write;
          Alcotest.test_case "ctx masked var offset" `Quick
            t_ctx_bounded_variable_offset;
          Alcotest.test_case "stack rw" `Quick t_stack_rw;
          Alcotest.test_case "stack oob" `Quick t_stack_oob;
          Alcotest.test_case "stack above fp" `Quick t_stack_above_fp;
          Alcotest.test_case "stack uninit read" `Quick t_stack_uninit_read;
          Alcotest.test_case "stack var offset" `Quick t_stack_var_offset;
          Alcotest.test_case "exit non-scalar" `Quick t_exit_needs_scalar_r0;
        ] );
      ( "heap",
        [
          Alcotest.test_case "heap needs kflex" `Quick t_heap_requires_kflex;
          Alcotest.test_case "scalar deref = formation" `Quick
            t_heap_scalar_deref_ok_kflex;
          Alcotest.test_case "heap_base elidable" `Quick t_heap_base_elidable;
          Alcotest.test_case "offset too far" `Quick t_heap_base_offset_too_far;
          Alcotest.test_case "malloc sized elidable" `Quick
            t_malloc_sized_elidable;
          Alcotest.test_case "stored ptr flag" `Quick t_stored_heap_ptr_flagged;
          Alcotest.test_case "kernel ptr leak" `Quick t_kernel_ptr_leak_to_heap;
          Alcotest.test_case "atomic outside heap" `Quick t_atomic_outside_heap;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "unknown helper" `Quick t_unknown_helper;
          Alcotest.test_case "bad ctx arg" `Quick t_helper_bad_arg;
          Alcotest.test_case "uninit buffer" `Quick t_helper_uninit_stack_buffer;
          Alcotest.test_case "acquire/release" `Quick t_acquire_release_ok;
          Alcotest.test_case "leak at exit" `Quick t_leak_at_exit;
          Alcotest.test_case "leak by clobber" `Quick t_leak_by_clobber;
          Alcotest.test_case "release w/o null check" `Quick
            t_release_without_nullcheck;
          Alcotest.test_case "double release" `Quick t_double_release;
          Alcotest.test_case "obj arithmetic" `Quick t_obj_arithmetic;
          Alcotest.test_case "obj deref" `Quick t_obj_deref;
          Alcotest.test_case "spill/reload obj" `Quick t_spill_reload_obj;
          Alcotest.test_case "partial overwrite obj" `Quick
            t_partial_overwrite_spilled_obj;
        ] );
      ( "loops",
        [
          Alcotest.test_case "bounded ebpf ok" `Quick t_bounded_ebpf_ok;
          Alcotest.test_case "unbounded ebpf rejected" `Quick
            t_unbounded_ebpf_rejected;
          Alcotest.test_case "unbounded kflex reported" `Quick
            t_unbounded_kflex_reported;
          Alcotest.test_case "counter clobbered" `Quick
            t_loop_counter_clobbered_by_call;
          Alcotest.test_case "resource convergence" `Quick
            t_loop_resource_convergence;
          Alcotest.test_case "balanced lock in loop" `Quick
            t_lock_balanced_in_loop;
          Alcotest.test_case "multiple locks" `Quick t_multiple_locks;
          Alcotest.test_case "map lock paired" `Quick t_map_lock_paired;
          Alcotest.test_case "map lock missing unlock" `Quick
            t_map_lock_missing_unlock;
          Alcotest.test_case "map lock one path leaks" `Quick
            t_map_lock_one_path_leaks;
          Alcotest.test_case "map lock spill reload" `Quick
            t_map_lock_spill_reload;
          Alcotest.test_case "map unlock misuse" `Quick t_map_unlock_scalar;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "object table locations" `Quick t_res_at_locations;
          Alcotest.test_case "origin-tracked elision" `Quick
            t_origin_tracking_elision;
          Alcotest.test_case "stack_used" `Quick t_stack_used;
          Alcotest.test_case "widening terminates" `Quick t_widening_terminates;
          Alcotest.test_case "mixed provenance join" `Quick
            t_mixed_provenance_join;
          Alcotest.test_case "heap/scalar join" `Quick
            t_heap_scalar_join_is_unknown;
          Alcotest.test_case "sleepable hooks" `Quick t_sleepable_rejected_on_xdp;
          Alcotest.test_case "dead branch" `Quick t_dead_branch_not_explored;
          QCheck_alcotest.to_alcotest prop_verifier_total;
          QCheck_alcotest.to_alcotest prop_sanitize_idempotent;
        ] );
      ( "tnum elision",
        [
          Alcotest.test_case "xor-masked access needs tnum" `Quick
            t_tnum_elision_gain;
          Alcotest.test_case "corpus never loses elisions" `Quick
            t_corpus_elision_non_decrease;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean program" `Quick t_lint_clean;
          Alcotest.test_case "unreachable (structural)" `Quick
            t_lint_unreachable_structural;
          Alcotest.test_case "always-taken branch" `Quick t_lint_always_taken;
          Alcotest.test_case "never-taken branch" `Quick t_lint_never_taken;
          Alcotest.test_case "dead store (overwrite)" `Quick
            t_lint_dead_store_overwrite;
          Alcotest.test_case "dead store (at exit)" `Quick
            t_lint_dead_store_at_exit;
          Alcotest.test_case "dead store conservatism" `Quick
            t_lint_dead_store_conservative;
          Alcotest.test_case "dead store past call" `Quick
            t_lint_dead_store_past_call;
          Alcotest.test_case "helper-read store live" `Quick
            t_lint_store_read_by_helper_live;
          Alcotest.test_case "dead store cross-block" `Quick
            t_lint_dead_store_cross_block;
          Alcotest.test_case "ignored result cross-block" `Quick
            t_lint_ignored_result_cross_block;
          Alcotest.test_case "redundant guard" `Quick t_lint_redundant_guard;
          Alcotest.test_case "ignored helper result" `Quick
            t_lint_ignored_result;
          Alcotest.test_case "used result not flagged" `Quick
            t_lint_result_used_not_flagged;
          Alcotest.test_case "kind coverage + ordering" `Quick
            t_lint_kinds_cover;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "conditional leak" `Quick t_lc_conditional_leak;
          Alcotest.test_case "leak by overwrite" `Quick t_lc_leak_by_overwrite;
          Alcotest.test_case "double free" `Quick t_lc_double_free;
          Alcotest.test_case "use after free" `Quick t_lc_use_after_free;
          Alcotest.test_case "null deref" `Quick t_lc_null_deref;
          Alcotest.test_case "checked+freed clean" `Quick t_lc_clean_checked;
          Alcotest.test_case "spill/reload clean" `Quick
            t_lc_spill_reload_clean;
          Alcotest.test_case "escape untracks" `Quick t_lc_escape_untracks;
          Alcotest.test_case "lookup under lock" `Quick t_lc_lock_hazard;
          Alcotest.test_case "lock order inversion" `Quick
            t_lc_lock_order_inversion;
          Alcotest.test_case "self deadlock" `Quick t_lc_lock_self_deadlock;
          Alcotest.test_case "ordered locks clean" `Quick
            t_lc_locks_ordered_clean;
          Alcotest.test_case "lock across back edge" `Quick
            t_lc_lock_in_unbounded_loop;
          Alcotest.test_case "chain unreachable" `Quick t_lc_chain_unreachable;
          Alcotest.test_case "chain reachable clean" `Quick
            t_lc_chain_reachable_clean;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "base registry well-formed" `Quick
            t_contract_base_well_formed;
          Alcotest.test_case "acquire needs destructor" `Quick
            t_contract_acquire_needs_destructor;
          Alcotest.test_case "ordinal mismatch" `Quick t_contract_ordinal_mismatch;
          Alcotest.test_case "release arg shape" `Quick
            t_contract_release_arg_shape;
        ] );
    ]
