(* Integration and fault-injection tests.

   The property under test is the paper's core safety claim: no matter what
   an extension does to its own memory — including when the host corrupts
   the heap under it — the KERNEL stays safe: execution always ends
   (Finished or Cancelled, never a runaway or an interpreter crash), every
   acquired kernel resource is released, and the hook receives a valid
   return code. Extension-level correctness may be destroyed; kernel safety
   may not. *)

open Kflex_runtime
open Kflex_kernel

(* Listing 1 of the paper, end to end. *)
let listing1_src = {|
struct elem { key: u64; value: u64; next: ptr<elem>; prev: ptr<elem>; }
global head: ptr<elem>;
global lock: u64;

fn prog(c: ctx) -> u64 {
  var key: u64 = pkt_read_u64(c, 0);
  var op: u64 = pkt_read_u8(c, 8);
  var tup: bytes[16];
  st16(&tup, 0, 11211);
  var h: u64 = kflex_spin_lock(&lock);
  if (op == 2) {
    var n: ptr<elem> = new elem;
    if (n == null) { kflex_spin_unlock(h); return 1; }
    n.key = key;
    n.value = pkt_read_u64(c, 9);
    n.next = head;
    if (head != null) { head.prev = n; }
    head = n;
    kflex_spin_unlock(h);
    return 1;
  }
  var e: ptr<elem> = head;
  while (e != null) {
    if (e.key != key) { e = e.next; continue; }
    var sk: u64 = bpf_sk_lookup_udp(c, &tup, 16, 0, 0);
    if (sk == 0) { break; }
    if (op == 0) { e.value = pkt_read_u64(c, 9); }
    else {
      if (e.prev != null) { e.prev.next = e.next; } else { head = e.next; }
      if (e.next != null) { e.next.prev = e.prev; }
      free e;
    }
    bpf_sk_release(sk);
    break;
  }
  kflex_spin_unlock(h);
  return 1;
}
|}

let mk_pkt ~key ~op ~value =
  let b = Bytes.make 32 '\000' in
  Bytes.set_int64_le b 0 key;
  Bytes.set b 8 (Char.chr op);
  Bytes.set_int64_le b 9 value;
  Packet.make ~proto:Packet.Udp ~src_port:5555 ~dst_port:11211 b

let load_listing1 ?(quantum = 200_000) () =
  let compiled = Kflex_eclang.Compile.compile_string ~name:"listing1" listing1_src in
  let kernel = Helpers.create () in
  Socket.listen (Helpers.sockets kernel) ~proto:Packet.Udp ~port:11211;
  let heap = Heap.create ~size:(Int64.shift_left 1L 20) () in
  match
    Kflex.load ~kernel ~heap ~quantum
      ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
      ~hook:Hook.Xdp compiled.Kflex_eclang.Compile.prog
  with
  | Ok l -> (l, compiled, heap, kernel)
  | Error e ->
      Alcotest.failf "listing1 rejected: %a" Kflex_verifier.Verify.pp_error e

let t_listing1_scenario () =
  let loaded, compiled, heap, kernel = load_listing1 () in
  let run pkt = Kflex.run_packet loaded pkt in
  ignore (run (mk_pkt ~key:7L ~op:2 ~value:42L));
  ignore (run (mk_pkt ~key:9L ~op:2 ~value:43L));
  ignore (run (mk_pkt ~key:7L ~op:0 ~value:100L));
  ignore (run (mk_pkt ~key:9L ~op:1 ~value:0L));
  let head_off = Kflex_eclang.Compile.global_offset compiled "head" in
  let head = Heap.read_off heap ~width:8 head_off in
  let off = Option.get (Heap.offset_of_addr heap head) in
  let voff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"elem" "value" in
  Alcotest.(check int64) "key 7 remains" 7L (Heap.read_off heap ~width:8 off);
  Alcotest.(check int64) "value updated" 100L
    (Heap.read_off heap ~width:8 (Int64.add off (Int64.of_int voff)));
  Alcotest.(check int) "no socket refs" 0 (Socket.total_refs (Helpers.sockets kernel));
  match loaded.Kflex.alloc with
  | Some a -> Alcotest.(check int) "one live block" 1 (Alloc.live_blocks a)
  | None -> Alcotest.fail "no allocator"

let t_cycle_cancellation_releases_lock () =
  let loaded, compiled, heap, kernel = load_listing1 () in
  ignore (Kflex.run_packet loaded (mk_pkt ~key:1L ~op:2 ~value:1L));
  (* corrupt: make the list circular *)
  let head_off = Kflex_eclang.Compile.global_offset compiled "head" in
  let head = Heap.read_off heap ~width:8 head_off in
  let off = Option.get (Heap.offset_of_addr heap head) in
  let noff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"elem" "next" in
  Heap.write_off heap ~width:8 (Int64.add off (Int64.of_int noff)) head;
  (match Kflex.run_packet loaded (mk_pkt ~key:999L ~op:0 ~value:0L) with
  | Vm.Cancelled { reason = Vm.Quantum_expired; released; ret; ledger_leaked; _ } ->
      Alcotest.(check (list string)) "lock released" [ "kflex_lock" ]
        (List.map fst released);
      Alcotest.(check int64) "default ret" Hook.xdp_pass ret;
      Alcotest.(check int) "ledger clean" 0 ledger_leaked
  | Vm.Cancelled _ -> Alcotest.fail "wrong cancellation reason"
  | Vm.Finished _ -> Alcotest.fail "must cancel");
  Alcotest.(check int64) "lock word free" 0L
    (Heap.read_off heap ~width:8 (Kflex_eclang.Compile.global_offset compiled "lock"));
  Alcotest.(check int) "no socket refs" 0 (Socket.total_refs (Helpers.sockets kernel))

(* Fault injection: random ops interleaved with random heap corruption.
   Kernel-safety invariants must hold on every single run. *)
let t_fault_injection () =
  let loaded, compiled, heap, kernel = load_listing1 ~quantum:60_000 () in
  let rng = Kflex_workload.Rng.create ~seed:4242L in
  let globals = compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size in
  ignore globals;
  let cancels = ref 0 and finishes = ref 0 in
  for i = 1 to 400 do
    (* corruption every few ops: write junk somewhere in the heap *)
    if i mod 4 = 0 then begin
      let off = Int64.of_int (64 + Kflex_workload.Rng.int rng 8192) in
      Heap.populate heap ~off ~len:8L;
      Heap.write_off heap ~width:8 off (Kflex_workload.Rng.next rng)
    end;
    let key = Int64.of_int (Kflex_workload.Rng.int rng 40) in
    let op = Kflex_workload.Rng.int rng 3 in
    let pkt = mk_pkt ~key ~op ~value:(Kflex_workload.Rng.next rng) in
    (match Kflex.run_packet loaded pkt with
    | Vm.Finished _ -> incr finishes
    | Vm.Cancelled { ledger_leaked; ret; _ } ->
        incr cancels;
        Alcotest.(check int) "ledger clean" 0 ledger_leaked;
        Alcotest.(check int64) "default ret" Hook.xdp_pass ret;
        (* §4.3: cancellation poisons the extension; reload for the test *)
        Vm.reset_cancel loaded.Kflex.ext;
        (* free the lock like the unwinder did; corruption may have left
           garbage in the lock word itself *)
        Heap.write_off heap ~width:8
          (Kflex_eclang.Compile.global_offset compiled "lock") 0L);
    Alcotest.(check int) "socket refs always return to 0" 0
      (Socket.total_refs (Helpers.sockets kernel))
  done;
  Alcotest.(check bool) "ran to completion" true (!cancels + !finishes = 400)

(* The §4.3 cross-CPU policy: one CPU's cancellation cancels the extension
   everywhere; the heap survives for user space (§3.4). *)
let t_cancellation_scope () =
  let loaded, compiled, heap, _ = load_listing1 ~quantum:20_000 () in
  ignore (Kflex.run_packet loaded (mk_pkt ~key:1L ~op:2 ~value:7L));
  let head_off = Kflex_eclang.Compile.global_offset compiled "head" in
  let head = Heap.read_off heap ~width:8 head_off in
  let off = Option.get (Heap.offset_of_addr heap head) in
  let noff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"elem" "next" in
  Heap.write_off heap ~width:8 (Int64.add off (Int64.of_int noff)) head;
  (match Kflex.run_packet loaded ~cpu:0 (mk_pkt ~key:99L ~op:0 ~value:0L) with
  | Vm.Cancelled _ -> ()
  | Vm.Finished _ -> Alcotest.fail "must cancel");
  (* a later invocation on another CPU reaches its first checkpoint and is
     cancelled too *)
  (match Kflex.run_packet loaded ~cpu:3 (mk_pkt ~key:99L ~op:0 ~value:0L) with
  | Vm.Cancelled { reason = Vm.Ext_cancelled; _ } -> ()
  | Vm.Cancelled _ -> Alcotest.fail "expected ext-wide cancellation"
  | Vm.Finished _ -> Alcotest.fail "other CPUs must be cancelled too");
  (* the heap is NOT destroyed: user-visible state is intact (§3.4) *)
  Alcotest.(check int64) "entry still readable" 1L (Heap.read_off heap ~width:8 off)

(* Serialisation: a program survives an encode/decode trip through the
   loader and still runs. *)
let t_encode_load_roundtrip () =
  let compiled = Kflex_eclang.Compile.compile_string ~name:"rt" listing1_src in
  let blob = Kflex_bpf.Encode.encode compiled.Kflex_eclang.Compile.prog in
  let prog = Kflex_bpf.Encode.decode blob in
  let kernel = Helpers.create () in
  Socket.listen (Helpers.sockets kernel) ~proto:Packet.Udp ~port:11211;
  let heap = Heap.create ~size:(Int64.shift_left 1L 20) () in
  match
    Kflex.load ~kernel ~heap
      ~globals_size:compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
      ~hook:Hook.Xdp prog
  with
  | Error e -> Alcotest.failf "decoded program rejected: %a" Kflex_verifier.Verify.pp_error e
  | Ok loaded -> (
      match Kflex.run_packet loaded (mk_pkt ~key:3L ~op:2 ~value:4L) with
      | Vm.Finished v -> Alcotest.(check int64) "runs" 1L v
      | Vm.Cancelled _ -> Alcotest.fail "cancelled")

(* Backward compatibility (§3): a stock eBPF extension (BMC) loads in Ebpf
   mode and also, unmodified, in Kflex mode. *)
let t_backward_compat () =
  let compiled =
    Kflex_eclang.Compile.compile_string ~name:"bmc" ~use_heap:false
      Kflex_apps.Memcached.bmc_source
  in
  let kernel = Helpers.create () in
  (match
     Kflex.load ~mode:Kflex_verifier.Verify.Ebpf ~kernel ~hook:Hook.Xdp
       compiled.Kflex_eclang.Compile.prog
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "ebpf load: %a" Kflex_verifier.Verify.pp_error e);
  match
    Kflex.load ~mode:Kflex_verifier.Verify.Kflex ~kernel ~hook:Hook.Xdp
      compiled.Kflex_eclang.Compile.prog
  with
  | Ok loaded ->
      Alcotest.(check int) "no instrumentation needed" 0
        loaded.Kflex.kie.Kflex_kie.Instrument.report.Kflex_kie.Report.emitted
  | Error e -> Alcotest.failf "kflex load: %a" Kflex_verifier.Verify.pp_error e

let () =
  Alcotest.run "integration"
    [
      ( "integration",
        [
          Alcotest.test_case "listing 1 scenario" `Quick t_listing1_scenario;
          Alcotest.test_case "cycle cancellation" `Quick
            t_cycle_cancellation_releases_lock;
          Alcotest.test_case "fault injection" `Slow t_fault_injection;
          Alcotest.test_case "cancellation scope" `Quick t_cancellation_scope;
          Alcotest.test_case "encode/load roundtrip" `Quick
            t_encode_load_roundtrip;
          Alcotest.test_case "backward compatibility" `Quick t_backward_compat;
        ] );
    ]
