(* Application tests: differential testing of the offloaded data structures
   against native models, Memcached (KFlex/BMC/user), Redis incl. ZADD, and
   the co-designed shared-heap GC. *)

module D = Kflex_apps.Datastructs
module M = Kflex_apps.Memcached
module R = Kflex_apps.Redis

let kv_kinds = [ D.Hashmap; D.Linked_list; D.Rbtree; D.Skiplist ]

let differential kind mode () =
  let inst = D.create ~mode kind in
  let model = Hashtbl.create 64 in
  let rng = Kflex_workload.Rng.create ~seed:17L in
  let errors = ref 0 in
  for _ = 1 to 800 do
    let key = Int64.of_int (Kflex_workload.Rng.int rng 120) in
    match Kflex_workload.Rng.int rng 3 with
    | 0 ->
        let v = Int64.logand (Kflex_workload.Rng.next rng) 0xffffffL in
        let r, _ = D.update inst ~key ~value:v in
        if r <> 1L then incr errors;
        Hashtbl.replace model key v
    | 1 ->
        let r, _ = D.lookup inst ~key in
        let e = Option.value ~default:0L (Hashtbl.find_opt model key) in
        if r <> e then incr errors
    | _ ->
        let r, _ = D.delete inst ~key in
        if kind <> D.Linked_list then begin
          let e = if Hashtbl.mem model key then 1L else 0L in
          if r <> e then incr errors
        end
        else begin
          let rec drain () =
            let r, _ = D.delete inst ~key in
            if r = 1L then drain ()
          in
          drain ()
        end;
        Hashtbl.remove model key
  done;
  Hashtbl.iter
    (fun k v ->
      let r, _ = D.lookup inst ~key:k in
      if r <> v then incr errors)
    model;
  Alcotest.(check int) (D.name kind ^ " mismatches") 0 !errors

let t_rbtree_sorted_property () =
  (* after many inserts/deletes the tree answers exactly like a map; keys
     hit a narrow range to force rotations and fixups *)
  let inst = D.create D.Rbtree in
  let rng = Kflex_workload.Rng.create ~seed:23L in
  let model = Hashtbl.create 64 in
  for i = 0 to 2000 do
    let key = Int64.of_int (Kflex_workload.Rng.int rng 50) in
    if i mod 3 = 2 then begin
      ignore (D.delete inst ~key);
      Hashtbl.remove model key
    end
    else begin
      ignore (D.update inst ~key ~value:(Int64.of_int i));
      Hashtbl.replace model key (Int64.of_int i)
    end
  done;
  for k = 0 to 49 do
    let key = Int64.of_int k in
    let r, _ = D.lookup inst ~key in
    let e = Option.value ~default:0L (Hashtbl.find_opt model key) in
    Alcotest.(check int64) (Printf.sprintf "key %d" k) e r
  done

let t_sketch_accuracy () =
  (* count-min overestimates but never underestimates *)
  let cm = D.create D.Countmin in
  let truth = Hashtbl.create 32 in
  let rng = Kflex_workload.Rng.create ~seed:31L in
  for _ = 1 to 2000 do
    let k = Int64.of_int (Kflex_workload.Rng.int rng 64) in
    let v = Int64.of_int (1 + Kflex_workload.Rng.int rng 5) in
    ignore (D.update cm ~key:k ~value:v);
    Hashtbl.replace truth k
      (Int64.add v (Option.value ~default:0L (Hashtbl.find_opt truth k)))
  done;
  Hashtbl.iter
    (fun k v ->
      let est, _ = D.lookup cm ~key:k in
      Alcotest.(check bool)
        (Printf.sprintf "cm key %Ld overestimates" k)
        true
        (Int64.compare est v >= 0))
    truth

let t_countsketch_unbiasedish () =
  let cs = D.create D.Countsketch in
  for i = 0 to 63 do
    ignore (D.update cs ~key:(Int64.of_int i) ~value:100L)
  done;
  (* per-key estimates should be near 100 (within the sketch error) *)
  let bad = ref 0 in
  for i = 0 to 63 do
    let est, _ = D.lookup cs ~key:(Int64.of_int i) in
    if Int64.abs (Int64.sub est 100L) > 50L then incr bad
  done;
  Alcotest.(check bool) "most estimates near truth" true (!bad <= 3)

let t_kflex_modes_agree () =
  (* kmod / perf / kflex run the same logic: results must be identical *)
  List.iter
    (fun kind ->
      let a = D.create ~mode:D.M_kmod kind in
      let b = D.create ~mode:D.M_perf kind in
      let c = D.create ~mode:D.M_kflex kind in
      let rng = Kflex_workload.Rng.create ~seed:37L in
      for _ = 1 to 300 do
        let key = Int64.of_int (Kflex_workload.Rng.int rng 60) in
        let op = Kflex_workload.Rng.int rng 3 in
        let v = Int64.of_int (Kflex_workload.Rng.int rng 1000) in
        let r1, _ = D.exec_op a ~op ~key ~value:v in
        let r2, _ = D.exec_op b ~op ~key ~value:v in
        let r3, _ = D.exec_op c ~op ~key ~value:v in
        Alcotest.(check int64) "kmod=perf" r1 r2;
        Alcotest.(check int64) "kmod=kflex" r1 r3
      done)
    [ D.Hashmap; D.Rbtree ]

let t_instrumentation_overhead_ordering () =
  (* cost: kmod <= perf <= kflex, and the gap is small (§5.2) *)
  let cost mode =
    let inst = D.create ~mode D.Hashmap in
    for i = 0 to 999 do
      ignore (D.update inst ~key:(Int64.of_int i) ~value:1L)
    done;
    let total = ref 0 in
    for i = 0 to 999 do
      let _, c = D.lookup inst ~key:(Int64.of_int i) in
      total := !total + c
    done;
    float_of_int !total
  in
  let kmod = cost D.M_kmod and perf = cost D.M_perf and kflex = cost D.M_kflex in
  Alcotest.(check bool) "kmod <= perf" true (kmod <= perf);
  Alcotest.(check bool) "perf <= kflex" true (perf <= kflex);
  Alcotest.(check bool) "overhead < 60%" true (kflex /. kmod < 1.6)

(* --- Memcached -------------------------------------------------------------- *)

let t_memcached_kflex () =
  let t = M.create_kflex () in
  (* GET before SET misses *)
  let p = M.op_packet ~op:M.Get ~rank:5 in
  let ret, _ = M.exec_kflex t p in
  Alcotest.(check int64) "tx" 3L ret;
  Alcotest.(check int64) "miss flag" 0L (Kflex_kernel.Packet.read p ~width:1 65);
  (* SET then GET returns the value *)
  ignore (M.exec_kflex t (M.op_packet ~op:M.Set ~rank:5));
  let p = M.op_packet ~op:M.Get ~rank:5 in
  ignore (M.exec_kflex t p);
  Alcotest.(check int64) "hit flag" 1L (Kflex_kernel.Packet.read p ~width:1 65);
  let vw = M.value_words 5 in
  Alcotest.(check int64) "value word 0" vw.(0)
    (Kflex_kernel.Packet.read p ~width:8 33);
  Alcotest.(check int64) "value word 3" vw.(3)
    (Kflex_kernel.Packet.read p ~width:8 57)

let t_memcached_overwrite () =
  let t = M.create_kflex () in
  ignore (M.exec_kflex t (M.op_packet ~op:M.Set ~rank:9));
  ignore (M.exec_kflex t (M.op_packet ~op:M.Set ~rank:9));
  (* still exactly one entry for the key: a GET hits and allocator holds 1 *)
  let p = M.op_packet ~op:M.Get ~rank:9 in
  ignore (M.exec_kflex t p);
  Alcotest.(check int64) "hit" 1L (Kflex_kernel.Packet.read p ~width:1 65);
  match t.M.loaded.Kflex.alloc with
  | Some a -> Alcotest.(check int) "one block" 1 (Kflex_runtime.Alloc.live_blocks a)
  | None -> Alcotest.fail "allocator missing"

let t_bmc_protocol () =
  let t = M.create_bmc () in
  (match M.exec_bmc t ~op:M.Get ~rank:1 with
  | `Pass _ -> ()
  | `Hit _ -> Alcotest.fail "cold cache cannot hit");
  (match M.exec_bmc t ~op:M.Get ~rank:1 with
  | `Hit _ -> ()
  | `Pass _ -> Alcotest.fail "warm cache must hit");
  (* SET passes to user space and invalidates *)
  (match M.exec_bmc t ~op:M.Set ~rank:1 with
  | `Pass _ -> ()
  | `Hit _ -> Alcotest.fail "BMC cannot serve SETs");
  match M.exec_bmc t ~op:M.Get ~rank:1 with
  | `Pass _ -> ()
  | `Hit _ -> Alcotest.fail "invalidation must force a miss"

let t_user_memcached () =
  let u = M.User.create () in
  Alcotest.(check bool) "miss" true (M.User.get u ~rank:3 = None);
  M.User.set u ~rank:3;
  Alcotest.(check bool) "hit" true (M.User.get u ~rank:3 <> None)

(* --- Redis ------------------------------------------------------------------ *)

let t_redis_get_set () =
  let t = R.create () in
  let p = R.op_packet ~op:R.Get ~rank:7 in
  ignore (R.exec t p);
  Alcotest.(check int64) "miss" 0L (Kflex_kernel.Packet.read p ~width:1 65);
  ignore (R.exec t (R.op_packet ~op:R.Set ~rank:7));
  let p = R.op_packet ~op:R.Get ~rank:7 in
  ignore (R.exec t p);
  Alcotest.(check int64) "hit" 1L (Kflex_kernel.Packet.read p ~width:1 65)

let t_redis_zadd () =
  let t = R.create () in
  let model = R.User.create () in
  let rng = Kflex_workload.Rng.create ~seed:41L in
  for _ = 1 to 500 do
    let rank = Kflex_workload.Rng.int rng 4 in
    let score = Int64.of_int (Kflex_workload.Rng.int rng 50) in
    let member = Int64.of_int (Kflex_workload.Rng.int rng 100) in
    let hit, _ = R.exec t (R.op_packet ~op:(R.Zadd (score, member)) ~rank) in
    Alcotest.(check int64) "zadd ok" 1L hit;
    R.User.zadd model ~rank ~score ~member
  done;
  (* cardinality agrees with the model via host-side heap inspection *)
  let zlen rank =
    let compiled = t.R.compiled in
    let heap = t.R.heap in
    let boff = Kflex_eclang.Compile.global_offset compiled "buckets" in
    let noff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"entry" "next" in
    let zoff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"entry" "zs" in
    let lenoff, _ = Kflex_eclang.Compile.field_offset compiled ~struct_:"zset" "len" in
    let kw = M.key_words rank in
    (* scan all buckets for our entry (host-side, we do not know the hash) *)
    let found = ref 0L in
    for b = 0 to 4095 do
      let rec walk addr =
        if addr <> 0L then begin
          let off =
            match Kflex_runtime.Heap.offset_of_addr heap addr with
            | Some o -> o
            | None -> Alcotest.fail "bad pointer"
          in
          let k0 = Kflex_runtime.Heap.read_off heap ~width:8 off in
          if k0 = kw.(0) then begin
            let z = Kflex_runtime.Heap.read_off heap ~width:8 (Int64.add off (Int64.of_int zoff)) in
            if z <> 0L then begin
              let zo =
                match Kflex_runtime.Heap.offset_of_addr heap z with
                | Some o -> o
                | None -> Alcotest.fail "bad zset pointer"
              in
              found := Kflex_runtime.Heap.read_off heap ~width:8 (Int64.add zo (Int64.of_int lenoff))
            end
          end;
          walk (Kflex_runtime.Heap.read_off heap ~width:8 (Int64.add off (Int64.of_int noff)))
        end
      in
      walk (Kflex_runtime.Heap.read_off heap ~width:8 (Int64.add boff (Int64.of_int (8 * b))))
    done;
    Int64.to_int !found
  in
  for rank = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "zset %d cardinality" rank)
      (R.User.zcard model ~rank) (zlen rank)
  done

(* --- co-design ---------------------------------------------------------------- *)

let t_codesign_gc () =
  let t = Kflex_apps.Codesign.create () in
  for rank = 0 to 199 do
    ignore (Kflex_apps.Codesign.exec t (M.op_packet ~op:M.Set ~rank))
  done;
  (match Kflex_apps.Codesign.gc_pass t ~now:0.0 with
  | Some (seen, freed) ->
      Alcotest.(check int) "sees all entries" 200 seen;
      Alcotest.(check int) "frees none" 0 freed
  | None -> Alcotest.fail "lock should be free");
  (* expire half (odd v0), kernel loses exactly those *)
  (match
     Kflex_apps.Codesign.gc_pass ~expired:(fun v -> Int64.rem v 2L = 1L) t
       ~now:0.0
   with
  | Some (_, freed) -> Alcotest.(check bool) "freed some" true (freed > 0)
  | None -> Alcotest.fail "lock should be free");
  let hits = ref 0 in
  for rank = 0 to 199 do
    let p = M.op_packet ~op:M.Get ~rank in
    ignore (Kflex_apps.Codesign.exec t p);
    if Kflex_kernel.Packet.read p ~width:1 65 = 1L then incr hits
  done;
  Alcotest.(check bool) "some survive" true (!hits > 0 && !hits < 200)

let t_codesign_lock_contention () =
  let t = Kflex_apps.Codesign.create () in
  (* a user thread holding the lock blocks the GC of another *)
  let umap =
    Kflex_runtime.Usermap.attach
      (Kflex_apps.Codesign.memcached t).M.heap
  in
  let compiled = (Kflex_apps.Codesign.memcached t).M.compiled in
  let lock_off = Kflex_eclang.Compile.global_offset compiled "lock" in
  let ts = Kflex_runtime.Timeslice.create () in
  Alcotest.(check bool) "user locks" true
    (Kflex_runtime.Usermap.try_lock umap ~off:lock_off ~slice:ts ~now:0.0);
  (match Kflex_apps.Codesign.gc_pass t ~now:0.0 with
  | None -> ()
  | Some _ -> Alcotest.fail "gc must not run under a held lock");
  (* and the kernel extension spinning on it gets cancelled, releasing
     nothing but returning the hook default *)
  (match Kflex_apps.Codesign.exec t (M.op_packet ~op:M.Get ~rank:0) with
  | _ -> Alcotest.fail "expected stall cancellation"
  | exception Failure _ -> ());
  Kflex_runtime.Usermap.unlock umap ~off:lock_off ~slice:ts;
  ignore (Kflex_runtime.Vm.reset_cancel (Kflex_apps.Codesign.memcached t).M.loaded.Kflex.ext;
          ())

let t_bmc_capacity_eviction () =
  (* a cache smaller than the key set keeps serving, just with misses *)
  let t = M.create_bmc ~cache_entries:8 () in
  for rank = 0 to 63 do
    ignore (M.exec_bmc t ~op:M.Get ~rank)
  done;
  let hits = ref 0 in
  for rank = 0 to 63 do
    match M.exec_bmc t ~op:M.Get ~rank with
    | `Hit _ -> incr hits
    | `Pass _ -> ()
  done;
  Alcotest.(check bool) "some hits" true (!hits > 0);
  Alcotest.(check bool) "bounded by capacity" true (!hits <= 16)

let prop_key_material_distinct =
  QCheck.Test.make ~count:200 ~name:"key material distinct across ranks"
    QCheck.(pair (int_bound 10000) (int_bound 10000))
    (fun (a, b) -> a = b || M.key_words a <> M.key_words b)

let t_e2e_headline_ordering () =
  (* the paper's headline, as a regression test: for a mixed workload,
     KFlex-Memcached beats BMC beats nothing, and beats user space *)
  let cells = Kflex_apps.E2e.fig_memcached ~workers:4 ~requests:4000 () in
  List.iter
    (fun (label, rows) ->
      let find name =
        (List.find (fun (r : Kflex_apps.E2e.row) -> r.Kflex_apps.E2e.system = name) rows)
          .Kflex_apps.E2e.throughput_mops
      in
      let kflex = find "KFlex" and user = find "User space" in
      Alcotest.(check bool) (label ^ ": kflex beats user") true (kflex > 1.5 *. user);
      let p99 name =
        (List.find (fun (r : Kflex_apps.E2e.row) -> r.Kflex_apps.E2e.system = name) rows)
          .Kflex_apps.E2e.p99_us
      in
      Alcotest.(check bool) (label ^ ": kflex lower p99") true
        (p99 "KFlex" < p99 "User space"))
    cells

(* --- rate limiter + conntrack guards ------------------------------------- *)

module RL = Kflex_apps.Ratelimit
module Map = Kflex_kernel.Map
module Helpers = Kflex_kernel.Helpers

(* load one guard source on the facade with the shared maps at fds 3/4 *)
let load_guard src =
  let c = Kflex_eclang.Compile.compile_string ~name:"guard" ~use_heap:false src in
  let kernel = Helpers.create () in
  let spin, rcu = RL.make_maps ~shards:1 in
  assert (Map.register (Helpers.maps kernel) spin = 3L);
  assert (Map.register (Helpers.maps kernel) rcu = 4L);
  match
    Kflex.load ~kernel ~hook:Kflex_kernel.Hook.Xdp c.Kflex_eclang.Compile.prog
  with
  | Ok loaded -> (loaded, spin, rcu)
  | Error e ->
      Alcotest.failf "guard rejected: %a" Kflex_verifier.Verify.pp_error e

let run_guard loaded p =
  match Kflex.run_packet loaded p with
  | Kflex_runtime.Vm.Finished v -> v
  | Kflex_runtime.Vm.Cancelled _ -> Alcotest.fail "guard cancelled"

let t_ratelimit_vs_model () =
  (* a window far past any virtual clock value: the model and the VM both
     sit in window 0, so the comparison is exact *)
  let capacity = 3 and window_ns = Int64.shift_left 1L 50 in
  let loaded, spin, _ =
    load_guard (RL.bucket_source ~pass:2L ~drop:1L ~capacity ~window_ns)
  in
  let m = RL.model () in
  let rng = Kflex_workload.Rng.create ~seed:5L in
  for i = 0 to 599 do
    let key = Int64.of_int (Kflex_workload.Rng.int rng 200) in
    let expect =
      if RL.model_admit m ~capacity ~window_ns ~now_ns:0L key then 2L else 1L
    in
    let got = run_guard loaded (RL.guard_packet key) in
    Alcotest.(check int64) (Printf.sprintf "event %d key %Ld" i key) expect got
  done;
  Alcotest.(check bool) "no lock left held" true
    (List.for_all (fun (k, _) -> not (Map.lock_held spin k)) (Map.to_list spin))

let t_conntrack_read_mostly () =
  let loaded, _, rcu = load_guard (RL.conntrack_source ~pass:2L ~drop:1L) in
  let version () = (Option.get (Map.rcu_stats rcu)).Map.version in
  Alcotest.(check int64) "first packet passes" 2L
    (run_guard loaded (RL.guard_packet 77L));
  let v1 = version () in
  Alcotest.(check bool) "first packet published" true (v1 > 0);
  (* a known flow is a pure read: no new snapshot version *)
  for _ = 1 to 10 do
    Alcotest.(check int64) "known flow passes" 2L
      (run_guard loaded (RL.guard_packet 77L))
  done;
  Alcotest.(check int) "read-mostly: no writes for known flows" v1 (version ());
  (* distinct flows land distinct entries *)
  Alcotest.(check int64) "second flow" 2L (run_guard loaded (RL.guard_packet 78L));
  Alcotest.(check bool) "both tracked" true
    (Map.merged rcu 77L <> None && Map.merged rcu 78L <> None)

let () =
  Alcotest.run "apps"
    [
      ( "datastructs",
        List.map
          (fun kind ->
            Alcotest.test_case (D.name kind ^ " differential") `Quick
              (differential kind D.M_kflex))
          kv_kinds
        @ [
            Alcotest.test_case "rbtree dense keys" `Quick t_rbtree_sorted_property;
            Alcotest.test_case "countmin accuracy" `Quick t_sketch_accuracy;
            Alcotest.test_case "countsketch accuracy" `Quick
              t_countsketch_unbiasedish;
            Alcotest.test_case "modes agree" `Quick t_kflex_modes_agree;
            Alcotest.test_case "overhead ordering" `Quick
              t_instrumentation_overhead_ordering;
          ] );
      ( "memcached",
        [
          Alcotest.test_case "kflex get/set" `Quick t_memcached_kflex;
          Alcotest.test_case "overwrite" `Quick t_memcached_overwrite;
          Alcotest.test_case "bmc protocol" `Quick t_bmc_protocol;
          Alcotest.test_case "bmc capacity" `Quick t_bmc_capacity_eviction;
          QCheck_alcotest.to_alcotest prop_key_material_distinct;
          Alcotest.test_case "user baseline" `Quick t_user_memcached;
        ] );
      ( "redis",
        [
          Alcotest.test_case "get/set" `Quick t_redis_get_set;
          Alcotest.test_case "zadd vs model" `Quick t_redis_zadd;
        ] );
      ( "guards",
        [
          Alcotest.test_case "ratelimit vs model" `Quick t_ratelimit_vs_model;
          Alcotest.test_case "conntrack read-mostly" `Quick
            t_conntrack_read_mostly;
        ] );
      ( "codesign",
        [
          Alcotest.test_case "gc via shared heap" `Quick t_codesign_gc;
          Alcotest.test_case "lock contention" `Quick t_codesign_lock_contention;
        ] );
      ( "e2e",
        [ Alcotest.test_case "headline ordering" `Slow t_e2e_headline_ordering ] );
    ]
