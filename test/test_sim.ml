(* Discrete-event simulator tests: priority queue, event ordering, and the
   closed-loop model's queueing behaviour. *)
open Kflex_sim

let prop_heapq_sorted =
  QCheck.Test.make ~count:200 ~name:"heapq pops in key order"
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_nat))
    (fun items ->
      let h = Heapq.create () in
      List.iter (fun (k, v) -> Heapq.push h k v) items;
      let rec drain last acc =
        match Heapq.pop h with
        | None -> List.rev acc
        | Some (k, _) ->
            if k < last then raise Exit;
            drain k (k :: acc)
      in
      match drain neg_infinity [] with
      | popped -> List.length popped = List.length items
      | exception Exit -> false)

let t_heapq_fifo_ties () =
  let h = Heapq.create () in
  List.iter (fun v -> Heapq.push h 1.0 v) [ 1; 2; 3 ];
  let order = List.init 3 (fun _ -> snd (Option.get (Heapq.pop h))) in
  Alcotest.(check (list int)) "fifo among equal keys" [ 1; 2; 3 ] order

let t_des_ordering () =
  let des = Des.create () in
  let log = ref [] in
  Des.schedule des ~delay:5.0 (fun () -> log := 5 :: !log);
  Des.schedule des ~delay:1.0 (fun () ->
      log := 1 :: !log;
      (* events scheduled during the run still execute in time order *)
      Des.schedule des ~delay:2.0 (fun () -> log := 3 :: !log));
  Des.run des;
  Alcotest.(check (list int)) "order" [ 1; 3; 5 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 5.0 (Des.now des)

let t_des_until () =
  let des = Des.create () in
  let fired = ref 0 in
  Des.schedule des ~delay:1.0 (fun () -> incr fired);
  Des.schedule des ~delay:10.0 (fun () -> incr fired);
  Des.run ~until:5.0 des;
  Alcotest.(check int) "only the early event" 1 !fired

let run_cl ?(clients = 64) ?(workers = 4) ?(gc = None) ~service requests =
  Closed_loop.run
    {
      Closed_loop.clients;
      workers;
      rtt_ns = 1000.0;
      requests;
      warmup_frac = 0.1;
      gen = (fun i -> i);
      service_ns = (fun _ -> service);
      gc;
    }

let t_closed_loop_throughput () =
  (* saturated: throughput ~ workers / service *)
  let r = run_cl ~workers:4 ~service:1000.0 20_000 in
  let expect = 4.0 /. 1000.0 *. 1000.0 (* MOps *) in
  Alcotest.(check bool) "within 10%" true
    (abs_float (r.Closed_loop.throughput_mops -. expect) /. expect < 0.1);
  Alcotest.(check int) "all completed" 20_000 r.Closed_loop.completed

let t_closed_loop_latency_queueing () =
  (* more clients than capacity: p99 reflects queueing, not service *)
  let light = run_cl ~clients:2 ~workers:4 ~service:1000.0 5_000 in
  let heavy = run_cl ~clients:256 ~workers:4 ~service:1000.0 5_000 in
  Alcotest.(check bool) "light is fast" true (light.Closed_loop.p99_us < 3.0);
  Alcotest.(check bool) "heavy queues" true
    (heavy.Closed_loop.p99_us > 10.0 *. light.Closed_loop.p99_us)

let t_closed_loop_gc_pauses () =
  let without = run_cl ~workers:2 ~service:1000.0 30_000 in
  let with_gc =
    run_cl ~workers:2 ~gc:(Some (1_000_000.0, 100_000.0)) ~service:1000.0
      30_000
  in
  Alcotest.(check bool) "gc hurts p99" true
    (with_gc.Closed_loop.p99_us > without.Closed_loop.p99_us);
  Alcotest.(check bool) "gc hurts throughput" true
    (with_gc.Closed_loop.throughput_mops < without.Closed_loop.throughput_mops)

(* --- determinism ------------------------------------------------------- *)

(* The DES must replay identically: same schedule of events (including ones
   whose delays come from a seeded RNG) ⇒ identical event trace and clock. *)
let t_des_deterministic_trace () =
  let trace seed =
    let rng = Kflex_workload.Rng.create ~seed in
    let des = Des.create () in
    let log = ref [] in
    let rec arrival i =
      if i < 200 then
        Des.schedule des
          ~delay:(Kflex_workload.Rng.float rng *. 10.0)
          (fun () ->
            log := (i, Des.now des) :: !log;
            arrival (i + 1))
    in
    arrival 0;
    Des.run des;
    (List.rev !log, Des.now des)
  in
  let a = trace 11L and b = trace 11L in
  Alcotest.(check bool) "identical trace" true (a = b);
  let c = trace 12L in
  Alcotest.(check bool) "seed matters" true (a <> c)

(* The closed-loop model on top: same config twice ⇒ bit-identical result
   record, including when per-request service times are RNG-driven. *)
let t_closed_loop_deterministic () =
  let result seed =
    let rng = Kflex_workload.Rng.create ~seed in
    Closed_loop.run
      {
        Closed_loop.clients = 32;
        workers = 4;
        rtt_ns = 1000.0;
        requests = 5_000;
        warmup_frac = 0.1;
        gen = (fun i -> i);
        service_ns =
          (fun _ -> 500.0 +. (Kflex_workload.Rng.float rng *. 1500.0));
        gc = None;
      }
  in
  Alcotest.(check bool) "identical results" true (result 3L = result 3L);
  Alcotest.(check bool) "seed matters" true (result 3L <> result 4L)

(* Split streams: giving the service-time and generation processes their own
   Rng.split children must not entangle them — replacing one stream's
   consumer leaves the other stream's draws unchanged. *)
let t_closed_loop_split_streams () =
  let streams seed ~drain =
    let parent = Kflex_workload.Rng.create ~seed in
    let svc = Kflex_workload.Rng.split parent in
    let gen = Kflex_workload.Rng.split parent in
    for _ = 1 to drain do
      ignore (Kflex_workload.Rng.next svc)
    done;
    ( List.init 50 (fun _ -> Kflex_workload.Rng.next svc),
      List.init 50 (fun _ -> Kflex_workload.Rng.next gen) )
  in
  let _, gen_a = streams 21L ~drain:0 in
  let _, gen_b = streams 21L ~drain:500 in
  (* the generation stream is untouched by how much the service stream
     consumed — the property that lets sim workloads, fuzz generation and
     layout randomisation coexist on one master seed *)
  Alcotest.(check bool) "gen stream independent of svc usage" true
    (gen_a = gen_b);
  let svc_a, gen_a = streams 21L ~drain:0 in
  Alcotest.(check bool) "streams differ" true (svc_a <> gen_a)

let t_closed_loop_faster_service_wins () =
  let slow = run_cl ~service:5000.0 10_000 in
  let fast = run_cl ~service:1000.0 10_000 in
  Alcotest.(check bool) "throughput" true
    (fast.Closed_loop.throughput_mops > 3.0 *. slow.Closed_loop.throughput_mops);
  Alcotest.(check bool) "latency" true
    (fast.Closed_loop.p99_us < slow.Closed_loop.p99_us)

let () =
  Alcotest.run "sim"
    [
      ( "heapq",
        [
          QCheck_alcotest.to_alcotest prop_heapq_sorted;
          Alcotest.test_case "fifo ties" `Quick t_heapq_fifo_ties;
        ] );
      ( "des",
        [
          Alcotest.test_case "ordering" `Quick t_des_ordering;
          Alcotest.test_case "until" `Quick t_des_until;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "des trace" `Quick t_des_deterministic_trace;
          Alcotest.test_case "closed-loop replay" `Quick
            t_closed_loop_deterministic;
          Alcotest.test_case "split streams" `Quick
            t_closed_loop_split_streams;
        ] );
      ( "closed-loop",
        [
          Alcotest.test_case "saturation throughput" `Quick
            t_closed_loop_throughput;
          Alcotest.test_case "queueing latency" `Quick
            t_closed_loop_latency_queueing;
          Alcotest.test_case "gc pauses" `Quick t_closed_loop_gc_pauses;
          Alcotest.test_case "service ordering" `Quick
            t_closed_loop_faster_service_wins;
        ] );
    ]
