(* eclang tests: lexer, parser, and compiled-program semantics (executed
   through the full verify -> Kie -> VM pipeline). *)
open Kflex_eclang

(* --- lexer ----------------------------------------------------------------- *)

let t_lexer_tokens () =
  let toks = Lexer.tokenize "fn f() { return 0x10 + 2_000; } // c" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  Alcotest.(check bool) "kw fn" true (List.mem (Lexer.KW "fn") kinds);
  Alcotest.(check bool) "hex" true (List.mem (Lexer.INT 16L) kinds);
  Alcotest.(check bool) "underscore" true (List.mem (Lexer.INT 2000L) kinds);
  Alcotest.(check bool) "eof" true (List.mem Lexer.EOF kinds)

let t_lexer_comments () =
  let toks = Lexer.tokenize "/* multi \n line */ 1 // eol\n 2" in
  let ints =
    List.filter_map
      (fun t -> match t.Lexer.tok with Lexer.INT i -> Some i | _ -> None)
      toks
  in
  Alcotest.(check (list int64)) "ints" [ 1L; 2L ] ints

let t_lexer_line_numbers () =
  let toks = Lexer.tokenize "1\n2\n3" in
  let lines =
    List.filter_map
      (fun t -> match t.Lexer.tok with Lexer.INT _ -> Some t.Lexer.line | _ -> None)
      toks
  in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3 ] lines

let t_lexer_errors () =
  (match Lexer.tokenize "@" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "bad char");
  match Lexer.tokenize "/* unterminated" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "unterminated comment"

(* --- parser ----------------------------------------------------------------- *)

let t_parser_precedence () =
  let p = Parser.parse "fn prog() -> u64 { return 2 + 3 * 4; }" in
  match (List.hd p.Ast.fns).Ast.body with
  | [ Ast.S_return (Some (Ast.E_binop (Ast.Add, Ast.E_int 2L, Ast.E_binop (Ast.Mul, Ast.E_int 3L, Ast.E_int 4L)))) ] ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let t_parser_else_if () =
  let p =
    Parser.parse
      "fn prog() -> u64 { if (1) { return 1; } else if (2) { return 2; } \
       return 3; }"
  in
  match (List.hd p.Ast.fns).Ast.body with
  | [ Ast.S_if (_, _, [ Ast.S_if _ ]); Ast.S_return _ ] -> ()
  | _ -> Alcotest.fail "else-if shape wrong"

let t_parser_struct () =
  let p = Parser.parse "struct s { a: u8; b: ptr<s>; c: [u64; 4]; }" in
  match p.Ast.structs with
  | [ { Ast.sname = "s"; sfields = [ ("a", Ast.Fu8); ("b", Ast.Fptr "s"); ("c", Ast.Farr (Ast.Fu64, 4)) ] } ] ->
      ()
  | _ -> Alcotest.fail "struct shape wrong"

let t_parser_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | exception Parser.Error _ -> ()
      | exception Lexer.Error _ -> ()
      | _ -> Alcotest.failf "should not parse: %s" src)
    [
      "fn f( { }";
      "struct s { a }";
      "fn f() { var x = ; }";
      "global g;";
      "fn f() { 1 + ; }";
      "fn f() { if 1 { } }";
    ]

(* --- compile + execute -------------------------------------------------------- *)

let run_src ?(payload = Bytes.create 0) src =
  let compiled = Compile.compile_string src in
  let kernel = Kflex_kernel.Helpers.create () in
  let heap = Kflex_runtime.Heap.create ~size:(Int64.shift_left 1L 20) () in
  let loaded =
    match
      Kflex.load ~kernel ~heap
        ~globals_size:compiled.Compile.layout.Compile.globals_size
        ~hook:Kflex_kernel.Hook.Xdp compiled.Compile.prog
    with
    | Ok l -> l
    | Error e ->
        Alcotest.failf "verify: %a" Kflex_verifier.Verify.pp_error e
  in
  let pkt =
    Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp ~src_port:1
      ~dst_port:2 payload
  in
  match Kflex.run_packet loaded pkt with
  | Kflex_runtime.Vm.Finished v -> v
  | Kflex_runtime.Vm.Cancelled _ -> Alcotest.fail "cancelled"

let check_ret name src expected =
  Alcotest.(check int64) name expected (run_src src)

let t_arith () =
  check_ret "arith" "fn prog(c: ctx) -> u64 { return (2 + 3) * 4 - 6 / 2; }" 17L;
  check_ret "mod" "fn prog(c: ctx) -> u64 { return 17 % 5; }" 2L;
  check_ret "bits" "fn prog(c: ctx) -> u64 { return (0xf0 | 0x0f) & 0x3c ^ 1; }" 0x3dL;
  check_ret "shift" "fn prog(c: ctx) -> u64 { return (1 << 10) >> 2; }" 256L;
  check_ret "neg" "fn prog(c: ctx) -> u64 { return 0 - (-5); }" 5L;
  check_ret "bnot" "fn prog(c: ctx) -> u64 { return ~0 >> 60; }" 15L

let t_compare () =
  check_ret "lt" "fn prog(c: ctx) -> u64 { return 3 < 4; }" 1L;
  check_ret "unsigned" "fn prog(c: ctx) -> u64 { return (0 - 1) > 100; }" 1L;
  check_ret "signed" "fn prog(c: ctx) -> u64 { return slt(0 - 1, 100); }" 1L;
  check_ret "lnot" "fn prog(c: ctx) -> u64 { return !(3 == 3); }" 0L

let t_short_circuit () =
  (* the right operand must not run when the left decides: division by zero
     yields 0 in the ISA, so use a global side effect instead *)
  check_ret "and-short"
    {|
global hits: u64;
fn bump() -> u64 { hits = hits + 1; return 1; }
fn prog(c: ctx) -> u64 {
  if (0 == 1 && bump() == 1) { return 99; }
  return hits;
}
|}
    0L;
  check_ret "or-short"
    {|
global hits: u64;
fn bump() -> u64 { hits = hits + 1; return 1; }
fn prog(c: ctx) -> u64 {
  if (1 == 1 || bump() == 1) { return hits; }
  return 99;
}
|}
    0L

let t_while_break_continue () =
  check_ret "sum"
    {|
fn prog(c: ctx) -> u64 {
  var s: u64 = 0;
  var i: u64 = 0;
  while (i < 10) {
    i = i + 1;
    if (i == 3) { continue; }
    if (i == 8) { break; }
    s = s + i;
  }
  return s;
}
|}
    (* 1+2+4+5+6+7 = 25 *)
    25L

let t_functions_inline () =
  check_ret "fib-iter"
    {|
fn fib(n: u64) -> u64 {
  var a: u64 = 0;
  var b: u64 = 1;
  var i: u64 = 0;
  while (i < n) {
    var t: u64 = a + b;
    a = b;
    b = t;
    i = i + 1;
  }
  return a;
}
fn prog(c: ctx) -> u64 { return fib(10) + fib(5); }
|}
    60L

let t_recursion_rejected () =
  match Compile.compile_string "fn prog(c: ctx) -> u64 { return prog(c); }" with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "recursion must be rejected"

let t_structs_and_heap () =
  check_ret "nodes"
    {|
struct pair { a: u64; b: u32; next: ptr<pair>; }
fn prog(c: ctx) -> u64 {
  var p: ptr<pair> = new pair;
  if (p == null) { return 0; }
  var q: ptr<pair> = new pair;
  if (q == null) { return 0; }
  p.a = 100;
  p.b = 0x1FFFFFFFF;   // truncated to u32
  p.next = q;
  q.a = 11;
  var r: u64 = p.a + p.b + p.next.a;
  free q;
  free p;
  return r;
}
|}
    (Int64.add 100L (Int64.add 0xFFFFFFFFL 11L))

let t_global_arrays () =
  check_ret "garr"
    {|
global tab: [u64; 32];
fn prog(c: ctx) -> u64 {
  var i: u64 = 0;
  while (i < 32) { tab[i] = i * i; i = i + 1; }
  return tab[7] + tab[31];
}
|}
    (Int64.of_int ((7 * 7) + (31 * 31)))

let t_struct_array_fields () =
  check_ret "sarr"
    {|
struct row { vals: [u32; 8]; sum: u64; }
fn prog(c: ctx) -> u64 {
  var r: ptr<row> = new row;
  if (r == null) { return 0; }
  var i: u64 = 0;
  while (i < 8) { r.vals[i] = i + 1; i = i + 1; }
  i = 0;
  while (i < 8) { r.sum = r.sum + r.vals[i]; i = i + 1; }
  return r.sum;
}
|}
    36L

let t_buffers () =
  check_ret "buf"
    {|
fn prog(c: ctx) -> u64 {
  var buf: bytes[16];
  st16(&buf, 0, 0xBEEF);
  st32(&buf, 4, 0xCAFE);
  st64(&buf, 8, 7);
  return ld16(&buf, 0) + ld32(&buf, 4) + ld64(&buf, 8);
}
|}
    (Int64.of_int (0xBEEF + 0xCAFE + 7))

let t_big_globals () =
  (* global offsets past the signed-16-bit insn field use the fallback
     address computation *)
  check_ret "big global array"
    {|
global big: [u64; 8192];
fn prog(c: ctx) -> u64 {
  big[8000] = 1234;
  big[0] = 1;
  return big[8000] + big[0];
}
|}
    1235L

let t_nested_while () =
  check_ret "nested"
    {|
fn prog(c: ctx) -> u64 {
  var total: u64 = 0;
  var i: u64 = 0;
  while (i < 5) {
    var j: u64 = 0;
    while (j < 4) {
      total = total + (i * 4 + j);
      j = j + 1;
    }
    i = i + 1;
  }
  return total;
}
|}
    190L

let t_fn_in_loop_condition () =
  check_ret "call in condition"
    {|
global n: u64;
fn next() -> u64 { n = n + 1; return n; }
fn prog(c: ctx) -> u64 {
  while (next() < 5) { }
  return n;
}
|}
    5L

let t_for_loop () =
  check_ret "for sum"
    {|
fn prog(c: ctx) -> u64 {
  var s: u64 = 0;
  for (var i = 0; i < 10; i = i + 1) { s += i; }
  return s;
}
|}
    45L;
  (* continue must execute the step (C semantics) *)
  check_ret "for continue"
    {|
fn prog(c: ctx) -> u64 {
  var s: u64 = 0;
  for (var i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    s += i;
  }
  return s;
}
|}
    25L;
  check_ret "for break"
    {|
fn prog(c: ctx) -> u64 {
  var s: u64 = 0;
  for (var i = 0; i < 100; i = i + 1) {
    if (i == 5) { break; }
    s += 1;
  }
  return s;
}
|}
    5L

let t_compound_assign () =
  check_ret "compound ops"
    {|
struct cell { v: u64; }
global g: u64;
fn prog(c: ctx) -> u64 {
  var x: u64 = 10;
  x += 5;      // 15
  x -= 3;      // 12
  x *= 4;      // 48
  x /= 6;      // 8
  x %= 5;      // 3
  x <<= 4;     // 48
  x >>= 2;     // 12
  x |= 1;      // 13
  x &= 14;     // 12
  x ^= 5;      // 9
  g += x;
  var p: ptr<cell> = new cell;
  if (p == null) { return 0; }
  p.v += 33;
  return g + p.v;
}
|}
    42L

let t_pkt_helpers () =
  let payload = Bytes.make 16 '\000' in
  Bytes.set_int64_le payload 0 123L;
  let v =
    run_src ~payload
      "fn prog(c: ctx) -> u64 { return pkt_read_u64(c, 0) + pkt_len(c); }"
  in
  Alcotest.(check int64) "pkt" 139L v

let t_compile_errors () =
  List.iter
    (fun (name, src) ->
      match Compile.compile_string src with
      | exception Compile.Error _ -> ()
      | _ -> Alcotest.failf "%s should not compile" name)
    [
      ("unbound var", "fn prog(c: ctx) -> u64 { return x; }");
      ("unknown struct", "fn prog(c: ctx) -> u64 { var p: ptr<nope> = new nope; return 0; }");
      ("field on scalar", "fn prog(c: ctx) -> u64 { var x: u64 = 1; return x.f; }");
      ("unknown field", "struct s { a: u64; } fn prog(c: ctx) -> u64 { var p: ptr<s> = new s; return p.b; }");
      ("break outside loop", "fn prog(c: ctx) -> u64 { break; return 0; }");
      ("unknown fn", "fn prog(c: ctx) -> u64 { return nope(); }");
      ("bad arity", "fn f(a: u64) -> u64 { return a; } fn prog(c: ctx) -> u64 { return f(1, 2); }");
      ("variable buffer index", "fn prog(c: ctx) -> u64 { var b: bytes[8]; var i: u64 = 1; return b[i]; }");
      ("no entry", "fn other() -> u64 { return 0; }");
    ]

let t_heapless_mode_error () =
  (match
     Compile.compile_string ~use_heap:false
       "fn prog(c: ctx) -> u64 { var p: u64 = kflex_malloc(8); return 0; }"
   with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "heap helper in eBPF-mode program must fail");
  match
    Compile.compile_string ~use_heap:false
      "global g: u64; fn prog(c: ctx) -> u64 { return g; }"
  with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "global in eBPF-mode program must fail"

let t_layout_queries () =
  let c =
    Compile.compile_string
      "struct s { a: u8; b: u64; c: u16; } global g1: u64; global g2: [u64; 4]; fn prog(c: ctx) -> u64 { return g1; }"
  in
  Alcotest.(check int) "sizeof padded" 24 (Compile.sizeof c "s");
  let boff, _ = Compile.field_offset c ~struct_:"s" "b" in
  Alcotest.(check int) "b aligned" 8 boff;
  let g1 = Compile.global_offset c "g1" in
  let g2 = Compile.global_offset c "g2" in
  Alcotest.(check int64) "g1 at base" 64L g1;
  Alcotest.(check int64) "g2 next" 72L g2

(* Differential property: random expression trees evaluated by the compiled
   extension in the VM must match direct evaluation in OCaml. Covers the
   whole codegen/ISA/interpreter chain for arithmetic. *)
let prop_random_expressions =
  let open QCheck in
  let leaf rng = 1 + Gen.int_bound 200 rng in
  let rec gen_expr depth rng =
    if depth = 0 then `Int (leaf rng)
    else
      match Gen.int_bound 12 rng with
      | 0 -> `Int (leaf rng)
      | 1 -> `Bin ("+", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
      | 2 -> `Bin ("-", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
      | 3 -> `Bin ("*", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
      | 4 -> `Bin ("/", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
      | 5 -> `Bin ("%", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
      | 6 -> `Bin ("&", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
      | 7 -> `Bin ("|", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
      | 8 -> `Bin ("^", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
      | 9 -> `Bin ("<<", gen_expr (depth - 1) rng, `Int (Gen.int_bound 8 rng))
      | 10 -> `Bin (">>", gen_expr (depth - 1) rng, `Int (Gen.int_bound 8 rng))
      | 11 -> `Bin ("<", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
      | _ -> `Bin ("==", gen_expr (depth - 1) rng, gen_expr (depth - 1) rng)
  in
  let rec to_src = function
    | `Int i -> string_of_int i
    | `Bin (op, a, b) -> "(" ^ to_src a ^ " " ^ op ^ " " ^ to_src b ^ ")"
  in
  let rec eval = function
    | `Int i -> Int64.of_int i
    | `Bin (op, a, b) -> (
        let x = eval a and y = eval b in
        match op with
        | "+" -> Int64.add x y
        | "-" -> Int64.sub x y
        | "*" -> Int64.mul x y
        | "/" -> if y = 0L then 0L else Int64.unsigned_div x y
        | "%" -> if y = 0L then x else Int64.unsigned_rem x y
        | "&" -> Int64.logand x y
        | "|" -> Int64.logor x y
        | "^" -> Int64.logxor x y
        | "<<" -> Int64.shift_left x (Int64.to_int y land 63)
        | ">>" -> Int64.shift_right_logical x (Int64.to_int y land 63)
        | "<" -> if Int64.unsigned_compare x y < 0 then 1L else 0L
        | "==" -> if Int64.equal x y then 1L else 0L
        | _ -> assert false)
  in
  let arb =
    make
      ~print:(fun e -> to_src e)
      (fun rng -> gen_expr 4 rng)
  in
  QCheck.Test.make ~count:120 ~name:"random expressions: VM = OCaml" arb
    (fun e ->
      let src = "fn prog(c: ctx) -> u64 { return " ^ to_src e ^ "; }" in
      run_src src = eval e)

let t_deep_expression_error () =
  (* expressions too deep for the register pool must fail cleanly *)
  let deep = String.concat " + " (List.init 40 (fun _ -> "(1 + 2)")) in
  let src = "fn prog(c: ctx) -> u64 { return " ^ deep ^ "; }" in
  match Compile.compile_string src with
  | exception Compile.Error _ -> ()
  | _ -> () (* left-associative chains stay shallow: also acceptable *)

let () =
  Alcotest.run "eclang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick t_lexer_tokens;
          Alcotest.test_case "comments" `Quick t_lexer_comments;
          Alcotest.test_case "line numbers" `Quick t_lexer_line_numbers;
          Alcotest.test_case "errors" `Quick t_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick t_parser_precedence;
          Alcotest.test_case "else-if" `Quick t_parser_else_if;
          Alcotest.test_case "struct" `Quick t_parser_struct;
          Alcotest.test_case "errors" `Quick t_parser_errors;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick t_arith;
          Alcotest.test_case "comparisons" `Quick t_compare;
          Alcotest.test_case "short circuit" `Quick t_short_circuit;
          Alcotest.test_case "while/break/continue" `Quick t_while_break_continue;
          Alcotest.test_case "inlined functions" `Quick t_functions_inline;
          Alcotest.test_case "recursion rejected" `Quick t_recursion_rejected;
          Alcotest.test_case "structs + heap" `Quick t_structs_and_heap;
          Alcotest.test_case "global arrays" `Quick t_global_arrays;
          Alcotest.test_case "struct array fields" `Quick t_struct_array_fields;
          Alcotest.test_case "stack buffers" `Quick t_buffers;
          Alcotest.test_case "packet helpers" `Quick t_pkt_helpers;
          Alcotest.test_case "big globals" `Quick t_big_globals;
          Alcotest.test_case "nested while" `Quick t_nested_while;
          Alcotest.test_case "call in loop condition" `Quick
            t_fn_in_loop_condition;
          Alcotest.test_case "for loops" `Quick t_for_loop;
          Alcotest.test_case "compound assignment" `Quick t_compound_assign;
        ] );
      ( "errors",
        [
          Alcotest.test_case "compile errors" `Quick t_compile_errors;
          Alcotest.test_case "heapless mode" `Quick t_heapless_mode_error;
          Alcotest.test_case "layout queries" `Quick t_layout_queries;
          Alcotest.test_case "deep expression" `Quick t_deep_expression_error;
          QCheck_alcotest.to_alcotest prop_random_expressions;
        ] );
    ]
