(* The serving front end: MPSC byte ring, incremental wire-protocol
   framing (fragmented / pipelined / torn streams), the generator's
   encode→ring→parse pipeline, the open-loop determinism digest and the
   threaded wall-clock path. *)

open Kflex_serve
module Engine = Kflex_engine.Engine
module Packet = Kflex_kernel.Packet

(* --- ring ---------------------------------------------------------------- *)

let t_ring_basic () =
  let r = Ring.create 64 in
  Alcotest.(check int) "pow2 capacity" 64 (Ring.capacity r);
  let src = Bytes.of_string "hello, ring" in
  Alcotest.(check bool) "write" true (Ring.write r src 0 (Bytes.length src));
  Alcotest.(check int) "length" (Bytes.length src) (Ring.length r);
  let dst = Bytes.create 64 in
  let n = Ring.read r dst 0 64 in
  Alcotest.(check int) "read all" (Bytes.length src) n;
  Alcotest.(check string) "content" "hello, ring" (Bytes.sub_string dst 0 n);
  Alcotest.(check int) "empty" 0 (Ring.read r dst 0 64)

let t_ring_wrap () =
  let r = Ring.create 16 in
  let src = Bytes.of_string "0123456789ab" in
  let dst = Bytes.create 16 in
  (* drive the positions far past the physical size to cross the wrap
     point many times *)
  for round = 0 to 99 do
    Alcotest.(check bool)
      (Printf.sprintf "write %d" round)
      true
      (Ring.write r src 0 12);
    (* a full ring rejects the next frame whole — never half-commits *)
    Alcotest.(check bool) "reject full" false (Ring.write r src 0 12);
    let n = Ring.read r dst 0 16 in
    Alcotest.(check int) "drain" 12 n;
    Alcotest.(check string) "round-trips" "0123456789ab"
      (Bytes.sub_string dst 0 12)
  done

let t_ring_cross_domain () =
  let r = Ring.create 256 in
  let total = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        let b = Bytes.create 1 in
        for i = 0 to total - 1 do
          Bytes.set_uint8 b 0 (i land 0xff);
          while not (Ring.write r b 0 1) do
            Domain.cpu_relax ()
          done
        done)
  in
  let dst = Bytes.create 64 in
  let seen = ref 0 in
  let ok = ref true in
  while !seen < total do
    let n = Ring.read r dst 0 64 in
    for i = 0 to n - 1 do
      if Bytes.get_uint8 dst i <> (!seen + i) land 0xff then ok := false
    done;
    seen := !seen + n
  done;
  Domain.join producer;
  Alcotest.(check bool) "bytes in order across domains" true !ok

(* --- wire framing -------------------------------------------------------- *)

let ops_equal a b =
  a.Wire.cmd = b.Wire.cmd && String.equal a.Wire.key b.Wire.key
  && String.equal a.Wire.value b.Wire.value

let sample_ops proto =
  let zadd = Wire.Zadd (123456L, -42L) in
  let cmds =
    match proto with
    | Wire.Memcached -> [ Wire.Get; Wire.Set ]
    | Wire.Redis -> [ Wire.Get; Wire.Set; zadd ]
  in
  List.concat_map
    (fun cmd ->
      List.map
        (fun rank -> Wire.op_of_rank ~cmd ~rank ~opaque:(Int32.of_int rank))
        [ 0; 1; 7; 4095 ])
    cmds

let t_wire_roundtrip () =
  List.iter
    (fun proto ->
      List.iter
        (fun op ->
          let frame = Wire.encode proto op in
          let d = Wire.decoder proto in
          Wire.feed d frame 0 (Bytes.length frame);
          match Wire.next d with
          | Some op' ->
              Alcotest.(check bool) "op round-trips" true (ops_equal op op');
              Alcotest.(check int) "no residue" 0 (Wire.pending d);
              Alcotest.(check (option reject)) "no phantom frame" None
                (Wire.next d)
          | None -> Alcotest.fail "complete frame did not parse")
        (sample_ops proto))
    [ Wire.Memcached; Wire.Redis ]

(* a parsed op must produce the exact payload bytes the app models emit *)
let t_wire_matches_app_models () =
  List.iter
    (fun rank ->
      List.iter
        (fun (cmd, app_op) ->
          let op = Wire.op_of_rank ~cmd ~rank ~opaque:0l in
          let pkt = Wire.packet_of_op Wire.Memcached op in
          let ref_pkt = Kflex_apps.Memcached.op_packet ~op:app_op ~rank in
          Alcotest.(check bytes) "memcached payload" ref_pkt.Packet.payload
            pkt.Packet.payload;
          Alcotest.(check bool) "transport" true
            (pkt.Packet.proto = ref_pkt.Packet.proto
            && pkt.Packet.dst_port = ref_pkt.Packet.dst_port))
        [ (Wire.Get, Kflex_apps.Memcached.Get);
          (Wire.Set, Kflex_apps.Memcached.Set) ];
      List.iter
        (fun (cmd, app_op) ->
          let op = Wire.op_of_rank ~cmd ~rank ~opaque:0l in
          let pkt = Wire.packet_of_op Wire.Redis op in
          let ref_pkt = Kflex_apps.Redis.op_packet ~op:app_op ~rank in
          Alcotest.(check bytes) "redis payload" ref_pkt.Packet.payload
            pkt.Packet.payload)
        [ (Wire.Get, Kflex_apps.Redis.Get);
          (Wire.Set, Kflex_apps.Redis.Set);
          (Wire.Zadd (7L, 9L), Kflex_apps.Redis.Zadd (7L, 9L)) ])
    [ 0; 3; 511 ]

let t_wire_byte_by_byte () =
  List.iter
    (fun proto ->
      let ops = sample_ops proto in
      let d = Wire.decoder proto in
      let parsed = ref [] in
      List.iter
        (fun op ->
          let frame = Wire.encode proto op in
          for i = 0 to Bytes.length frame - 1 do
            Wire.feed d frame i 1;
            match Wire.next d with
            | Some op' -> parsed := op' :: !parsed
            | None -> ()
          done)
        ops;
      let parsed = List.rev !parsed in
      Alcotest.(check int) "all frames parsed" (List.length ops)
        (List.length parsed);
      List.iter2
        (fun a b -> Alcotest.(check bool) "torn op equal" true (ops_equal a b))
        ops parsed)
    [ Wire.Memcached; Wire.Redis ]

(* every split point of every frame: prefix alone is incomplete (never an
   error), prefix + rest parses to the original op. The interesting
   offsets — mid-header, mid-length-field, between \r and \n, one byte
   short of the end — are all visited because we sweep them all. *)
let t_wire_adversarial_splits () =
  List.iter
    (fun proto ->
      List.iter
        (fun op ->
          let frame = Wire.encode proto op in
          let len = Bytes.length frame in
          for s = 0 to len - 1 do
            let d = Wire.decoder proto in
            Wire.feed d frame 0 s;
            (match Wire.next d with
            | None -> ()
            | Some _ -> Alcotest.failf "phantom frame at split %d/%d" s len);
            Wire.feed d frame s (len - s);
            match Wire.next d with
            | Some op' ->
                Alcotest.(check bool)
                  (Printf.sprintf "split %d/%d" s len)
                  true (ops_equal op op')
            | None -> Alcotest.failf "lost frame at split %d/%d" s len
          done)
        (sample_ops proto))
    [ Wire.Memcached; Wire.Redis ]

let t_wire_malformed () =
  let expect_error name proto bytes =
    let d = Wire.decoder proto in
    Wire.feed d bytes 0 (Bytes.length bytes);
    match Wire.next d with
    | exception Wire.Protocol_error _ -> ()
    | _ -> Alcotest.failf "%s: malformed bytes accepted" name
  in
  (* bad magic *)
  let f = Wire.encode Wire.Memcached (Wire.op_of_rank ~cmd:Wire.Get ~rank:0 ~opaque:0l) in
  let bad = Bytes.copy f in
  Bytes.set_uint8 bad 0 0x81;
  expect_error "magic" Wire.Memcached bad;
  (* unknown opcode *)
  let bad = Bytes.copy f in
  Bytes.set_uint8 bad 1 0x0a;
  expect_error "opcode" Wire.Memcached bad;
  (* key-length lie *)
  let bad = Bytes.copy f in
  Bytes.set_uint16_be bad 2 16;
  expect_error "keylen" Wire.Memcached bad;
  (* RESP: unknown command, bare CR, bad bulk terminator *)
  expect_error "resp cmd" Wire.Redis (Bytes.of_string "*1\r\n$4\r\nPING\r\n");
  expect_error "resp int" Wire.Redis (Bytes.of_string "*x\r\n");
  let g = Wire.encode Wire.Redis (Wire.op_of_rank ~cmd:Wire.Get ~rank:0 ~opaque:0l) in
  let bad = Bytes.copy g in
  Bytes.set bad (Bytes.length bad - 1) 'X';
  expect_error "bulk term" Wire.Redis bad

let prop_random_fragmentation =
  QCheck.Test.make ~count:200 ~name:"random fragmentation round-trips"
    QCheck.(
      pair (pair bool (int_bound 9999)) (list_of_size Gen.(1 -- 12) (int_bound 4095)))
    (fun ((redis, fragseed), ranks) ->
      let proto = if redis then Wire.Redis else Wire.Memcached in
      let rng = Kflex_workload.Rng.create ~seed:(Int64.of_int (fragseed + 1)) in
      let ops =
        List.mapi
          (fun i rank ->
            let cmd =
              match (proto, i mod 3) with
              | _, 0 -> Wire.Get
              | _, 1 -> Wire.Set
              | Wire.Redis, _ -> Wire.Zadd (Int64.of_int rank, Int64.of_int i)
              | Wire.Memcached, _ -> Wire.Get
            in
            Wire.op_of_rank ~cmd ~rank ~opaque:(Int32.of_int i))
          ranks
      in
      (* pipeline all frames into one stream, then tear it randomly *)
      let stream = Buffer.create 1024 in
      List.iter (fun op -> Buffer.add_bytes stream (Wire.encode proto op)) ops;
      let bytes = Buffer.to_bytes stream in
      let d = Wire.decoder proto in
      let parsed = ref [] in
      let pos = ref 0 in
      let len = Bytes.length bytes in
      while !pos < len do
        let fl = Stdlib.min (len - !pos) (1 + Kflex_workload.Rng.int rng 23) in
        Wire.feed d bytes !pos fl;
        pos := !pos + fl;
        let rec pull () =
          match Wire.next d with
          | Some op ->
              parsed := op :: !parsed;
              pull ()
          | None -> ()
        in
        pull ()
      done;
      let parsed = List.rev !parsed in
      List.length parsed = List.length ops
      && List.for_all2 ops_equal ops parsed
      && Wire.pending d = 0)

(* --- the generator ------------------------------------------------------- *)

let small_cfg =
  {
    Open_loop.default with
    Open_loop.requests = 4000;
    conns = 64;
    rate = 400_000.0;
    keyspace = 4096;
  }

let t_generate () =
  let reqs = Open_loop.generate small_cfg in
  Alcotest.(check int) "exact count" small_cfg.Open_loop.requests
    (Array.length reqs);
  let sorted = ref true and prev = ref neg_infinity in
  Array.iter
    (fun r ->
      if r.Open_loop.gen_ns < !prev then sorted := false;
      prev := r.Open_loop.gen_ns)
    reqs;
  Alcotest.(check bool) "sorted by schedule" true !sorted;
  Array.iter
    (fun r ->
      Alcotest.(check int) "app payload size" 66
        (Bytes.length r.Open_loop.pkt.Packet.payload))
    reqs;
  (* deterministic in the seed *)
  let reqs' = Open_loop.generate small_cfg in
  Alcotest.(check bool) "same schedule" true
    (Array.for_all2
       (fun a b ->
         a.Open_loop.gen_ns = b.Open_loop.gen_ns
         && Bytes.equal a.Open_loop.pkt.Packet.payload
              b.Open_loop.pkt.Packet.payload)
       reqs reqs')

(* --- burner + reaper ----------------------------------------------------- *)

(* a rank whose first key word has (k0 & 255) = 7 triggers the burner *)
let burner_rank () =
  let rec find r =
    if r > 100_000 then Alcotest.fail "no burner rank found"
    else if
      Int64.logand (Kflex_apps.Memcached.key_words r).(0) 255L = 7L
    then r
    else find (r + 1)
  in
  find 0

let t_burner_reaped () =
  let cfg = { small_cfg with Open_loop.deadline_us = 100.0 } in
  let eng = Open_loop.make_engine cfg ~mode:`Deterministic ~shards:1 in
  let rank = burner_rank () in
  let op = Wire.op_of_rank ~cmd:Wire.Get ~rank ~opaque:0l in
  let pkt = Wire.packet_of_op Wire.Memcached op in
  let r = Engine.run_packet eng ~hook:(Wire.hook_of Wire.Memcached) pkt in
  Alcotest.(check int) "burner reaped" 1 r.Engine.cancelled;
  Alcotest.(check int) "chain continued to the cache" 2 r.Engine.executed;
  (* the cache still answered: a GET miss replies XDP_TX with hit=0 *)
  Alcotest.(check int64) "verdict from the cache" Kflex_kernel.Hook.xdp_tx
    r.Engine.verdict;
  let t = Engine.totals eng in
  Alcotest.(check int) "no leaks across cancellation" 0 t.Engine.leaked;
  Engine.shutdown eng

(* --- determinism (the ninth check) --------------------------------------- *)

let t_deterministic_digest () =
  let cfg = { small_cfg with Open_loop.requests = 3000 } in
  let ok, d1, d2 = Open_loop.determinism_check ~shards:2 cfg in
  Alcotest.(check bool)
    (Printf.sprintf "digests %Lx vs %Lx" d1 d2)
    true ok;
  (* the digest is sensitive to the schedule: a different seed diverges *)
  let cfg' = { cfg with Open_loop.seed = 43L } in
  let o = Open_loop.run_deterministic ~shards:2 cfg' in
  Alcotest.(check bool) "different seed, different stream" true
    (not (Int64.equal o.Open_loop.digest d1))

let t_open_loop_overload () =
  (* far above virtual capacity: the open loop must show queueing —
     p99 latency well above service time — and still complete everything *)
  let cfg =
    { small_cfg with Open_loop.rate = 10_000_000.0; requests = 3000 }
  in
  let o = Open_loop.run_deterministic ~shards:1 cfg in
  Alcotest.(check int) "all requests measured" 3000 o.Open_loop.completed;
  Alcotest.(check int) "no leaks" 0 o.Open_loop.leaked;
  (* in overload the backlog grows without bound, so even the median sits
     far above any service time *)
  Alcotest.(check bool) "queueing dominates" true (o.Open_loop.p50_us > 100.0);
  let light =
    Open_loop.run_deterministic ~shards:1
      { cfg with Open_loop.rate = 1000.0 }
  in
  Alcotest.(check bool) "light load is far below the overload median" true
    (light.Open_loop.p99_us < o.Open_loop.p50_us)

(* --- shared-map guard tenants -------------------------------------------- *)

let t_guard_tenants () =
  (* guard chain ahead of the cache: ratelimit (shared Spinlock buckets) →
     conntrack (shared RCU flow table) → kflex-memcached. A tiny bucket
     capacity under a Zipfian stream must shed the hot classes. *)
  let cfg =
    {
      small_cfg with
      Open_loop.requests = 2500;
      burn = false;
      guard = true;
      guard_capacity = 4;
      guard_window_us = 50.0;
    }
  in
  let eng = Open_loop.make_engine cfg ~mode:`Deterministic ~shards:2 in
  Alcotest.(check int) "guards + cache attached" 3
    (Engine.chain_length eng (Wire.hook_of cfg.Open_loop.proto));
  let spin, rcu =
    match Engine.shared_maps eng with
    | [ s; r ] -> (s, r)
    | l -> Alcotest.failf "expected 2 shared maps, got %d" (List.length l)
  in
  let reqs = Open_loop.generate cfg in
  let dropped = ref 0 and served = ref 0 in
  Array.iter
    (fun r ->
      let res = Engine.run_packet eng ~hook:r.Open_loop.hook r.Open_loop.pkt in
      if res.Engine.executed = 1 then incr dropped
      else if Int64.equal res.Engine.verdict Kflex_kernel.Hook.xdp_tx then
        incr served)
    reqs;
  let t = Engine.totals eng in
  Engine.shutdown eng;
  Alcotest.(check int) "all events ran" cfg.Open_loop.requests t.Engine.events;
  Alcotest.(check int) "no leaks" 0 t.Engine.leaked;
  Alcotest.(check bool) "hot classes shed" true (!dropped > 0);
  Alcotest.(check bool) "cold traffic still served" true (!served > 0);
  Alcotest.(check bool) "flows tracked in the shared RCU map" true
    (Kflex_kernel.Map.entries rcu > 0);
  Alcotest.(check bool) "no bucket lock left held" true
    (List.for_all
       (fun (k, _) -> not (Kflex_kernel.Map.lock_held spin k))
       (Kflex_kernel.Map.to_list spin))

let t_guard_determinism () =
  (* the ninth check still holds with the guard chain in front *)
  let cfg =
    {
      small_cfg with
      Open_loop.requests = 2000;
      guard = true;
      guard_capacity = 8;
      guard_window_us = 100.0;
    }
  in
  let ok, d1, d2 = Open_loop.determinism_check ~shards:2 cfg in
  Alcotest.(check bool)
    (Printf.sprintf "digests %Lx vs %Lx" d1 d2)
    true ok

(* --- threaded wall-clock path -------------------------------------------- *)

let t_threaded_smoke () =
  let cfg =
    {
      small_cfg with
      Open_loop.requests = 2000;
      rate = 200_000.0;
      burn_iters = 400_000;
    }
  in
  let o = Open_loop.run_threaded ~shards:2 cfg in
  Alcotest.(check int) "all completions observed" 2000 o.Open_loop.completed;
  Alcotest.(check int) "no leaks" 0 o.Open_loop.leaked;
  Alcotest.(check bool) "nonzero throughput" true (o.Open_loop.achieved_rps > 0.0);
  Alcotest.(check bool) "finite tail" true
    (Float.is_finite o.Open_loop.p999_us && o.Open_loop.p999_us > 0.0)

let () =
  Alcotest.run "serve"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick t_ring_basic;
          Alcotest.test_case "wrap" `Quick t_ring_wrap;
          Alcotest.test_case "cross-domain" `Quick t_ring_cross_domain;
        ] );
      ( "wire",
        [
          Alcotest.test_case "round-trip" `Quick t_wire_roundtrip;
          Alcotest.test_case "matches app models" `Quick
            t_wire_matches_app_models;
          Alcotest.test_case "byte-by-byte" `Quick t_wire_byte_by_byte;
          Alcotest.test_case "adversarial splits" `Quick
            t_wire_adversarial_splits;
          Alcotest.test_case "malformed" `Quick t_wire_malformed;
          QCheck_alcotest.to_alcotest prop_random_fragmentation;
        ] );
      ( "open-loop",
        [
          Alcotest.test_case "generate" `Quick t_generate;
          Alcotest.test_case "burner reaped" `Quick t_burner_reaped;
          Alcotest.test_case "deterministic digest" `Quick
            t_deterministic_digest;
          Alcotest.test_case "overload" `Quick t_open_loop_overload;
          Alcotest.test_case "guard tenants" `Quick t_guard_tenants;
          Alcotest.test_case "guard determinism" `Quick t_guard_determinism;
          Alcotest.test_case "threaded smoke" `Quick t_threaded_smoke;
        ] );
    ]
