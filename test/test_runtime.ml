(* Runtime tests: heap (demand paging, guard zones, SFI arithmetic),
   allocator, ledger, time slices, user mapping, and the VM (ALU semantics,
   cancellation variants, object-table unwinding). *)
open Kflex_runtime
open Kflex_bpf

(* --- heap ---------------------------------------------------------------- *)

let t_heap_create_validation () =
  List.iter
    (fun size ->
      match Heap.create ~size () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "size %Ld should be rejected" size)
    [ 0L; 100L; 4095L; 6000L; Int64.shift_left 1L 41 ]

let t_heap_sanitize () =
  let h = Heap.create ~size:65536L () in
  let kbase = Heap.kbase h in
  (* in-heap addresses are fixed points *)
  Alcotest.(check int64) "fixpoint" (Int64.add kbase 100L)
    (Heap.sanitize h (Int64.add kbase 100L));
  (* wild addresses land in the heap *)
  Alcotest.(check int64) "wild" (Int64.add kbase 0xbeefL)
    (Heap.sanitize h 0xdead_beefL);
  (* user-view addresses map to the same offset in kernel view *)
  let hs = Heap.create ~shared:true ~size:65536L () in
  let u = Heap.translate_user hs (Int64.add (Heap.kbase hs) 4242L) in
  Alcotest.(check int64) "translate+sanitize" (Int64.add (Heap.kbase hs) 4242L)
    (Heap.sanitize hs u)

let t_heap_not_shared () =
  let h = Heap.create ~size:4096L () in
  Alcotest.(check bool) "no ubase" true (Heap.ubase h = None);
  match Heap.translate_user h 0L with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "translate_user should fail"

let t_heap_demand_paging () =
  let h = Heap.create ~size:65536L () in
  Alcotest.(check int64) "empty" 0L (Heap.populated_bytes h);
  (match Heap.read h ~width:8 (Heap.kbase h) with
  | exception Heap.Fault { reason; _ } ->
      Alcotest.(check string) "unpopulated" "unpopulated heap page" reason
  | _ -> Alcotest.fail "expected fault");
  Heap.populate h ~off:0L ~len:1L;
  Alcotest.(check int64) "one page" 4096L (Heap.populated_bytes h);
  Alcotest.(check int64) "read zero" 0L (Heap.read h ~width:8 (Heap.kbase h))

let t_heap_guard_zone () =
  let h = Heap.create ~size:4096L () in
  Heap.populate h ~off:0L ~len:4096L;
  (* just past the heap end but within the guard zone: Fault, not escape *)
  (match Heap.read h ~width:8 (Int64.add (Heap.kbase h) 4096L) with
  | exception Heap.Fault { reason; _ } ->
      Alcotest.(check string) "guard" "guard zone access" reason
  | _ -> Alcotest.fail "expected guard-zone fault");
  (match Heap.read h ~width:8 (Int64.sub (Heap.kbase h) 8L) with
  | exception Heap.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault below heap");
  (* a straddling access at the boundary *)
  match Heap.read h ~width:8 (Int64.add (Heap.kbase h) 4092L) with
  | exception Heap.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault on straddle"

let t_heap_wild () =
  let h = Heap.create ~size:4096L () in
  match Heap.write h ~width:8 0x1234L 1L with
  | exception Heap.Fault { reason; _ } ->
      Alcotest.(check string) "wild" "access outside any heap mapping" reason
  | _ -> Alcotest.fail "expected wild fault"

let prop_heap_rw_roundtrip =
  QCheck.Test.make ~count:300 ~name:"heap read/write roundtrip"
    QCheck.(pair (int_bound 65000) (pair (int_bound 3) (map Int64.of_int int)))
    (fun (off, (wsel, v)) ->
      let h = Heap.create ~size:65536L () in
      let width = [| 1; 2; 4; 8 |].(wsel) in
      let off = Int64.of_int (min off (65536 - width)) in
      Heap.write_off h ~width off v;
      let mask =
        if width = 8 then -1L
        else Int64.sub (Int64.shift_left 1L (8 * width)) 1L
      in
      Heap.read_off h ~width off = Int64.logand v mask)

let t_heap_straddle_pages () =
  let h = Heap.create ~size:65536L () in
  (* write across the page 0 / page 1 boundary *)
  Heap.write_off h ~width:8 4092L 0x1122334455667788L;
  Alcotest.(check int64) "straddle" 0x1122334455667788L
    (Heap.read_off h ~width:8 4092L)

(* --- allocator -------------------------------------------------------------- *)

let t_alloc_basic () =
  let h = Heap.create ~size:65536L () in
  let a = Alloc.create ~ncpu:2 h in
  let b1 = Option.get (Alloc.alloc a ~cpu:0 64L) in
  let b2 = Option.get (Alloc.alloc a ~cpu:0 64L) in
  Alcotest.(check bool) "distinct" true (b1 <> b2);
  Alcotest.(check int) "live" 2 (Alloc.live_blocks a);
  Alcotest.(check bool) "free" true (Alloc.free a ~cpu:0 b1);
  Alcotest.(check bool) "double free" false (Alloc.free a ~cpu:0 b1);
  Alcotest.(check int) "live" 1 (Alloc.live_blocks a)

let t_alloc_zeroed () =
  let h = Heap.create ~size:65536L () in
  let a = Alloc.create h in
  let b = Option.get (Alloc.alloc a ~cpu:0 64L) in
  Heap.write_off h ~width:8 b 0xffffL;
  Alcotest.(check bool) "freed" true (Alloc.free a ~cpu:0 b);
  let b2 = Option.get (Alloc.alloc a ~cpu:0 64L) in
  (* reuse of the same class must come back zeroed *)
  Alcotest.(check int64) "zeroed" 0L (Heap.read_off h ~width:8 b2)

let t_alloc_too_big () =
  let h = Heap.create ~size:65536L () in
  let a = Alloc.create h in
  Alcotest.(check bool) "huge" true (Alloc.alloc a ~cpu:0 1_000_000L = None)

let t_alloc_exhaustion () =
  let h = Heap.create ~size:4096L () in
  let a = Alloc.create h in
  let count = ref 0 in
  (try
     while !count < 10_000 do
       match Alloc.alloc a ~cpu:0 512L with
       | Some _ -> incr count
       | None -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "exhausted eventually" true (!count > 0 && !count < 10);
  Alcotest.(check bool) "stays exhausted" true (Alloc.alloc a ~cpu:0 512L = None)

let prop_alloc_no_overlap =
  QCheck.Test.make ~count:50 ~name:"live allocations never overlap"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 80) (int_bound 500))
    (fun sizes ->
      let h = Heap.create ~size:(Int64.shift_left 1L 20) () in
      let a = Alloc.create h in
      let live = ref [] in
      List.iter
        (fun sz ->
          match Alloc.alloc a ~cpu:0 (Int64.of_int (max 1 sz)) with
          | Some off -> live := (off, max 1 sz) :: !live
          | None -> ())
        sizes;
      let rec no_overlap = function
        | [] -> true
        | (o1, s1) :: rest ->
            List.for_all
              (fun (o2, s2) ->
                Int64.add o1 (Int64.of_int s1) <= o2
                || Int64.add o2 (Int64.of_int s2) <= o1)
              rest
            && no_overlap rest
      in
      no_overlap !live)

let t_alloc_populates_pages () =
  (* §4.1: physical pages appear as the allocator hands memory out, and are
     accounted (the cgroup analogue) *)
  let h = Heap.create ~size:(Int64.shift_left 1L 20) () in
  let a = Alloc.create h in
  let before = Heap.populated_bytes h in
  ignore (Option.get (Alloc.alloc a ~cpu:0 4096L));
  Alcotest.(check bool) "pages appeared" true (Heap.populated_bytes h > before)

let t_alloc_class_reuse () =
  (* freeing a big block and allocating a small one must not alias *)
  let h = Heap.create ~size:(Int64.shift_left 1L 20) () in
  let a = Alloc.create h in
  let big = Option.get (Alloc.alloc a ~cpu:0 1024L) in
  ignore (Alloc.free a ~cpu:0 big);
  let small1 = Option.get (Alloc.alloc a ~cpu:0 16L) in
  let small2 = Option.get (Alloc.alloc a ~cpu:0 16L) in
  Alcotest.(check bool) "distinct small blocks" true (small1 <> small2)

let t_alloc_per_cpu_cache () =
  let h = Heap.create ~size:(Int64.shift_left 1L 20) () in
  let a = Alloc.create ~ncpu:4 h in
  let b = Option.get (Alloc.alloc a ~cpu:1 64L) in
  Alcotest.(check bool) "cpu1 cache warmed" true (Alloc.cache_occupancy a ~cpu:1 > 0);
  Alcotest.(check int) "cpu2 cold" 0 (Alloc.cache_occupancy a ~cpu:2);
  ignore (Alloc.free a ~cpu:2 b);
  Alcotest.(check bool) "freed into cpu2" true (Alloc.cache_occupancy a ~cpu:2 > 0)

(* --- ledger / timeslice / usermap -------------------------------------------- *)

let t_ledger () =
  let l = Ledger.create () in
  Ledger.acquire l ~handle:42L ~destructor:"d";
  Alcotest.(check int) "one" 1 (Ledger.count l);
  Alcotest.(check bool) "release" true (Ledger.release l ~handle:42L);
  Alcotest.(check bool) "again" false (Ledger.release l ~handle:42L);
  Alcotest.(check int) "empty" 0 (Ledger.count l)

let t_timeslice () =
  let ts = Timeslice.create () in
  Alcotest.(check bool) "fresh" false (Timeslice.should_preempt ts ~now:0.0);
  Timeslice.lock_acquired ts ~now:0.0;
  Alcotest.(check bool) "within slice" false
    (Timeslice.should_preempt ts ~now:(Timeslice.slice_ns /. 2.));
  Alcotest.(check bool) "expired" true
    (Timeslice.should_preempt ts ~now:(Timeslice.slice_ns *. 2.));
  (* nesting: inner lock does not extend the slice *)
  Timeslice.lock_acquired ts ~now:(Timeslice.slice_ns *. 2.);
  Alcotest.(check int) "nested" 2 (Timeslice.nesting ts);
  Timeslice.lock_released ts;
  Timeslice.lock_released ts;
  Alcotest.(check bool) "disarmed" false
    (Timeslice.should_preempt ts ~now:(Timeslice.slice_ns *. 10.))

let t_usermap () =
  let h = Heap.create ~shared:true ~size:65536L () in
  Heap.populate h ~off:0L ~len:4096L;
  let u = Usermap.attach h in
  let addr = Usermap.addr_of_off u 128L in
  Usermap.write u ~width:8 addr 7L;
  Alcotest.(check int64) "user write visible at kernel offset" 7L
    (Heap.read_off h ~width:8 128L);
  Alcotest.(check bool) "heap addr" true (Usermap.is_heap_addr u addr);
  Alcotest.(check bool) "wild addr" false (Usermap.is_heap_addr u 0x1234L);
  let ts = Timeslice.create () in
  Alcotest.(check bool) "lock" true (Usermap.try_lock u ~off:8L ~slice:ts ~now:0.0);
  Alcotest.(check bool) "contended" false
    (Usermap.try_lock u ~off:8L ~slice:ts ~now:0.0);
  Usermap.unlock u ~off:8L ~slice:ts;
  Alcotest.(check int) "nesting back to 0" 0 (Timeslice.nesting ts)

(* --- VM ------------------------------------------------------------------------ *)

let contracts = Kflex_verifier.Contract.registry Kflex_verifier.Contract.kflex_base

let load ?heap ?alloc ?quantum items =
  let prog = Asm.assemble ~name:"t" items in
  let analysis =
    match
      Kflex_verifier.Verify.run ~mode:Kflex_verifier.Verify.Kflex ~contracts
        ~ctx_size:64
        ?heap_size:(Option.map Heap.size heap)
        prog
    with
    | Ok a -> a
    | Error e -> Alcotest.failf "verify: %a" Kflex_verifier.Verify.pp_error e
  in
  let kie = Kflex_kie.Instrument.run analysis in
  Vm.create ?heap ?alloc ?quantum ~helpers:[] kie

let run ?(ctx = Bytes.make 64 '\000') ext =
  Vm.exec ext ~ctx ()

let expect_ret items expected =
  match run (load items) with
  | Vm.Finished v -> Alcotest.(check int64) "ret" expected v
  | Vm.Cancelled _ -> Alcotest.fail "unexpected cancellation"

open Asm
open Reg

let t_alu_semantics () =
  expect_ret [ movi R0 6L; alui Insn.Mul R0 7L; exit_ ] 42L;
  expect_ret [ movi R0 7L; alui Insn.Div R0 0L; exit_ ] 0L (* div-by-0 = 0 *);
  expect_ret [ movi R0 7L; alui Insn.Mod R0 0L; exit_ ] 7L;
  expect_ret [ movi R0 (-1L); alui Insn.Rsh R0 32L; exit_ ] 0xffff_ffffL;
  expect_ret [ movi R0 (-8L); alui Insn.Arsh R0 2L; exit_ ] (-2L);
  expect_ret [ movi R0 1L; alui Insn.Lsh R0 63L; exit_ ] Int64.min_int;
  expect_ret [ movi R0 5L; I (Insn.Neg R0); exit_ ] (-5L)

let t_unsigned_compare () =
  (* -1 is the largest unsigned value *)
  expect_ret
    [
      movi R1 (-1L);
      movi R0 0L;
      jmpi Insn.Gt R1 5L "big";
      exit_;
      label "big";
      movi R0 1L;
      exit_;
    ]
    1L;
  expect_ret
    [
      movi R1 (-1L);
      movi R0 0L;
      jmpi Insn.Sgt R1 5L "big";
      exit_;
      label "big";
      movi R0 1L;
      exit_;
    ]
    0L

let t_ctx_read () =
  let ctx = Bytes.make 64 '\000' in
  Bytes.set_int32_le ctx 8 77l;
  match run ~ctx (load [ ldx Insn.U32 R0 R1 8; exit_ ]) with
  | Vm.Finished v -> Alcotest.(check int64) "ctx" 77L v
  | Vm.Cancelled _ -> Alcotest.fail "cancelled"

let with_heap ?quantum items =
  let heap = Heap.create ~size:65536L () in
  Heap.populate heap ~off:0L ~len:4096L;
  let alloc = Alloc.create ~data_start:256L heap in
  (heap, load ~heap ~alloc ?quantum items)

let t_atomics () =
  let heap, ext =
    with_heap
      [
        call "kflex_heap_base";
        mov R6 R0;
        sti Insn.U64 R6 64 10L;
        movi R2 5L;
        I (Insn.Atomic (Insn.Fetch_add, Insn.U64, R6, 64, R2));
        (* r2 = old (10), heap[64] = 15 *)
        movi R3 100L;
        I (Insn.Atomic (Insn.Xchg, Insn.U64, R6, 64, R3));
        (* r3 = 15, heap[64] = 100 *)
        movi R0 100L;
        movi R4 222L;
        I (Insn.Atomic (Insn.Cmpxchg, Insn.U64, R6, 64, R4));
        (* success: heap[64] = 222, r0 = 100 *)
        alu Insn.Add R0 R2;
        alu Insn.Add R0 R3;
        exit_;
      ]
  in
  (match run ext with
  | Vm.Finished v -> Alcotest.(check int64) "fetch results" 125L v
  | Vm.Cancelled _ -> Alcotest.fail "cancelled");
  Alcotest.(check int64) "cmpxchg stored" 222L (Heap.read_off heap ~width:8 64L)

let t_malloc_free_via_vm () =
  let _, ext =
    with_heap
      [
        movi R1 48L;
        call "kflex_malloc";
        jmpi Insn.Ne R0 0L "ok";
        movi R0 0L;
        exit_;
        label "ok";
        mov R6 R0;
        sti Insn.U64 R6 0 1234L;
        ldx Insn.U64 R7 R6 0;
        mov R1 R6;
        call "kflex_free";
        mov R0 R7;
        exit_;
      ]
  in
  match run ext with
  | Vm.Finished v -> Alcotest.(check int64) "roundtrip" 1234L v
  | Vm.Cancelled _ -> Alcotest.fail "cancelled"

let t_quantum_cancellation () =
  let heap, ext =
    with_heap ~quantum:5_000
      [
        call "kflex_heap_base";
        mov R1 R0;
        alui Insn.Add R1 64L;
        stx Insn.U64 R1 0 R1;
        label "loop";
        ldx Insn.U64 R1 R1 0;
        jmpi Insn.Ne R1 0L "loop";
        movi R0 0L;
        exit_;
      ]
  in
  ignore heap;
  match run ext with
  | Vm.Cancelled { reason = Vm.Quantum_expired; _ } ->
      Alcotest.(check bool) "ext-wide cancel flag" true (Vm.cancelled ext)
  | Vm.Cancelled { reason; _ } ->
      Alcotest.failf "wrong reason %s"
        (match reason with Vm.Page_fault -> "page" | _ -> "other")
  | Vm.Finished _ -> Alcotest.fail "should have been cancelled"

(* §4.4 through the engine's central reaper: a user-space thread holds a
   lock past its extended time slice while an extension spins waiting for
   it. The reaper must (a) forcibly preempt the holder once the slice
   expires ([should_preempt]/[force_preempt]) and (b) inject cancellation
   into the spinning extension at its deadline — kernel forward progress
   beats waiting out a faulty application. *)
let t_engine_reaper_contention () =
  let module Engine = Kflex_engine.Engine in
  let module Reaper = Kflex_engine.Reaper in
  let src = {|
global lock: u64;

fn prog(c: ctx) -> u64 {
  var spins: u64 = 0;
  while (lock != 0) {
    spins = spins + 1;
  }
  return 2;
}
|}
  in
  let compiled = Kflex_eclang.Compile.compile_string ~name:"spinner" src in
  let lock_off = Kflex_eclang.Compile.global_offset compiled "lock" in
  (* deadline chosen past the 50 us slice: the holder is preempted first,
     the spinner is reaped after *)
  let eng = Engine.create ~shards:1 ~deadline_ns:150_000.0 () in
  let ts = Timeslice.create () in
  Timeslice.lock_acquired ts ~now:0.0;
  Reaper.watch (Engine.reaper eng) ts;
  let configure ~shard:_ _kernel heap =
    match heap with
    | Some h -> Heap.write h ~width:8 (Int64.add (Heap.kbase h) lock_off) 1L
    | None -> Alcotest.fail "spinner has no heap"
  in
  (match
     Engine.attach eng ~name:"spinner"
       ~globals_size:
         compiled.Kflex_eclang.Compile.layout.Kflex_eclang.Compile.globals_size
       ~heap_size:(Int64.shift_left 1L 16)
       ~configure ~hook:Kflex_kernel.Hook.Xdp
       compiled.Kflex_eclang.Compile.prog
   with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "spinner rejected: %a" Kflex_verifier.Verify.pp_error e);
  let pkt =
    Kflex_kernel.Packet.make ~proto:Kflex_kernel.Packet.Udp ~src_port:1
      ~dst_port:2 (Bytes.make 16 '\000')
  in
  let r = Engine.run_packet eng pkt in
  (match r.Engine.outcomes with
  | [ Vm.Cancelled { reason = Vm.Ext_cancelled; _ } ] -> ()
  | [ Vm.Cancelled { reason = _; _ } ] ->
      Alcotest.fail "cancelled, but not by the reaper's injection"
  | _ -> Alcotest.fail "spinning extension was not cancelled");
  Alcotest.(check int) "event counted cancelled" 1 r.Engine.cancelled;
  Alcotest.(check int) "holder force-preempted once" 1
    (Reaper.preemptions (Engine.reaper eng));
  Alcotest.(check bool) "reaper injected the cancel" true
    (Reaper.cancellations (Engine.reaper eng) >= 1);
  let t = Engine.totals eng in
  Alcotest.(check int) "no leaked resources" 0 t.Engine.leaked;
  (* a second event on the same (still-contended) chain is reaped again:
     the cancel flag was rearmed, not left sticky *)
  let r2 = Engine.run_packet eng pkt in
  Alcotest.(check int) "second event reaped too" 1 r2.Engine.cancelled;
  Reaper.unwatch (Engine.reaper eng) ts

let t_cancel_cross_cpu () =
  let _, ext = with_heap [ movi R0 7L; exit_ ] in
  Vm.cancel ext;
  (* no checkpoints in this program: it still finishes *)
  (match run ext with
  | Vm.Finished v -> Alcotest.(check int64) "ret" 7L v
  | Vm.Cancelled _ -> Alcotest.fail "no cp to cancel at");
  Vm.reset_cancel ext;
  Alcotest.(check bool) "reset" false (Vm.cancelled ext)

let t_on_cancel_callback () =
  let heap = Heap.create ~size:65536L () in
  let prog =
    Asm.assemble ~name:"t" [ movi R1 8192L; ldx Insn.U64 R0 R1 0; exit_ ]
  in
  let analysis =
    match
      Kflex_verifier.Verify.run ~mode:Kflex_verifier.Verify.Kflex ~contracts
        ~ctx_size:64 ~heap_size:65536L prog
    with
    | Ok a -> a
    | Error e -> Alcotest.failf "verify: %a" Kflex_verifier.Verify.pp_error e
  in
  let kie = Kflex_kie.Instrument.run analysis in
  let ext =
    Vm.create ~heap ~default_ret:2L ~on_cancel:(fun d -> Int64.add d 40L)
      ~helpers:[] kie
  in
  match Vm.exec ext ~ctx:(Bytes.make 64 '\000') () with
  | Vm.Cancelled { ret; reason = Vm.Page_fault; _ } ->
      Alcotest.(check int64) "callback adjusted" 42L ret
  | _ -> Alcotest.fail "expected page-fault cancellation"

let t_stats_accounting () =
  let stats = Vm.fresh_stats () in
  let _, ext = with_heap [ movi R1 2048L; ldx Insn.U64 R0 R1 0; exit_ ] in
  (match Vm.exec ext ~ctx:(Bytes.make 64 '\000') ~stats () with
  | Vm.Finished _ -> ()
  | Vm.Cancelled _ -> Alcotest.fail "page 0 is populated");
  Alcotest.(check bool) "insns counted" true (stats.Vm.insns >= 3);
  Alcotest.(check int) "one guard" 1 stats.Vm.guards

(* --- compiled backend (Jit) ---------------------------------------------- *)

let stats_tuple (s : Vm.stats) =
  (s.Vm.insns, s.Vm.guards, s.Vm.checkpoints, s.Vm.helper_calls,
   s.Vm.helper_cost)

(* Run the same program under both engines, each in a fresh environment,
   and return outcome plus the full cost-accounting tuple. *)
let both_backends ?quantum items =
  let go backend =
    let _, ext = with_heap ?quantum items in
    let stats = Vm.fresh_stats () in
    let o = Vm.exec ext ~ctx:(Bytes.make 64 '\000') ~stats ~backend () in
    (o, stats_tuple stats)
  in
  (go `Interp, go `Compiled)

let check_stats (a, b, c, d, e) (a', b', c', d', e') =
  Alcotest.(check int) "insns" a a';
  Alcotest.(check int) "guards" b b';
  Alcotest.(check int) "checkpoints" c c';
  Alcotest.(check int) "helper calls" d d';
  Alcotest.(check int) "helper cost" e e'

(* A program mixing frame slots, guarded heap traffic, ALU chains and a
   branch — the constructs the compiler specializes and fuses — must produce
   the identical outcome and identical stats on both backends. *)
let t_jit_parity () =
  let items =
    [
      call "kflex_heap_base";
      mov R6 R0;
      movi R1 0x1234_5678_9abc_def0L;
      stx Insn.U64 R10 (-8) R1;
      ldx Insn.U32 R2 R10 (-8);
      stx Insn.U64 R6 128 R2;
      ldx Insn.U64 R3 R6 128;
      alui Insn.Mul R3 3L;
      jmpi Insn.Gt R3 0L "big";
      movi R3 7L;
      label "big";
      mov R0 R3;
      exit_;
    ]
  in
  let (oi, si), (oc, sc) = both_backends items in
  (match (oi, oc) with
  | Vm.Finished a, Vm.Finished b ->
      Alcotest.(check int64) "ret" a b;
      Alcotest.(check int64) "value" (Int64.mul 0x9abc_def0L 3L) b
  | _ -> Alcotest.fail "expected Finished on both backends");
  check_stats si sc

(* Quantum expiry fires at a checkpoint; the compiled backend must cancel
   with the same reason after exactly the same number of instructions. *)
let t_jit_quantum_parity () =
  let items =
    [
      call "kflex_heap_base";
      mov R1 R0;
      alui Insn.Add R1 64L;
      stx Insn.U64 R1 0 R1;
      label "loop";
      ldx Insn.U64 R1 R1 0;
      jmpi Insn.Ne R1 0L "loop";
      movi R0 0L;
      exit_;
    ]
  in
  let (oi, si), (oc, sc) = both_backends ~quantum:5_000 items in
  (match (oi, oc) with
  | ( Vm.Cancelled { reason = Vm.Quantum_expired; _ },
      Vm.Cancelled { reason = Vm.Quantum_expired; _ } ) ->
      ()
  | _ -> Alcotest.fail "expected quantum cancellation on both backends");
  check_stats si sc

(* A wild pointer is sanitized by the fused Guard+Ldx superinstruction into
   the heap window; here it lands on an unpopulated page, so both backends
   must page-fault with identical accounting. *)
let t_jit_fused_fault_parity () =
  let items = [ movi R1 0xdead_beefL; ldx Insn.U64 R0 R1 0; exit_ ] in
  let (oi, si), (oc, sc) = both_backends items in
  (match (oi, oc) with
  | ( Vm.Cancelled { reason = Vm.Page_fault; _ },
      Vm.Cancelled { reason = Vm.Page_fault; _ } ) ->
      ()
  | _ -> Alcotest.fail "expected page fault on both backends");
  check_stats si sc

(* Repeated runs reuse the pooled execution state; the persistent heap must
   accumulate identically under either engine. *)
let t_jit_state_reuse () =
  let items =
    [
      call "kflex_heap_base";
      mov R6 R0;
      ldx Insn.U64 R1 R6 200;
      mov R0 R1;
      alui Insn.Add R1 1L;
      stx Insn.U64 R6 200 R1;
      exit_;
    ]
  in
  let go ext backend =
    match Vm.exec ext ~ctx:(Bytes.make 64 '\000') ~backend () with
    | Vm.Finished v -> v
    | Vm.Cancelled _ -> Alcotest.fail "unexpected cancellation"
  in
  let _, ei = with_heap items in
  let _, ec = with_heap items in
  List.iter
    (fun expect ->
      Alcotest.(check int64) "interp counter" expect (go ei `Interp);
      Alcotest.(check int64) "compiled counter" expect (go ec `Compiled))
    [ 0L; 1L; 2L ]

(* Random verifier-accepted programs: the interpreter and the compiled
   engine must agree on outcome, stats, heap pages and packet bytes — the
   fifth oracle applied as a qcheck property. *)
let prop_jit_differential =
  QCheck.Test.make ~name:"interp/compiled differential (random programs)"
    ~count:60
    QCheck.(map Int64.of_int small_int)
    (fun seed ->
      let rng = Kflex_workload.Rng.create ~seed in
      let cfg = Kflex_fuzz.Oracle.default_config in
      let items =
        Kflex_fuzz.Gen.generate ~rng ~heap_size:cfg.Kflex_fuzz.Oracle.heap_size
          ~port:cfg.Kflex_fuzz.Oracle.port ()
      in
      let prog = Kflex_fuzz.Gen.assemble items in
      match
        Kflex_verifier.Verify.run ~mode:Kflex_verifier.Verify.Kflex ~contracts
          ~ctx_size:64 ~heap_size:cfg.Kflex_fuzz.Oracle.heap_size
          ~sleepable:false prog
      with
      | Error _ -> true (* rejection is not a backend question *)
      | Ok analysis -> (
          let kie = Kflex_kie.Instrument.run analysis in
          match Kflex_fuzz.Oracle.backend_equiv cfg kie with
          | None -> true
          | Some f ->
              QCheck.Test.fail_reportf "[%s] %s" f.Kflex_fuzz.Oracle.oracle
                f.Kflex_fuzz.Oracle.detail))

(* --- representation edge cases ------------------------------------------- *)

(* An independent Stdlib.Int64 reference for one ALU step — deliberately not
   shared with any engine, so a wraparound or unsigned-division bug in the
   unboxed representation cannot cancel out. *)
let alu_ref op a b =
  match op with
  | Insn.Add -> Int64.add a b
  | Insn.Sub -> Int64.sub a b
  | Insn.Mul -> Int64.mul a b
  | Insn.Div -> if b = 0L then 0L else Int64.unsigned_div a b
  | Insn.Mod -> if b = 0L then a else Int64.unsigned_rem a b
  | Insn.And -> Int64.logand a b
  | Insn.Or -> Int64.logor a b
  | Insn.Xor -> Int64.logxor a b
  | Insn.Lsh -> Int64.shift_left a (Int64.to_int b land 63)
  | Insn.Rsh -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Insn.Arsh -> Int64.shift_right a (Int64.to_int b land 63)

(* Corner-heavy 64-bit scalars: the wraparound boundaries, the sign bit,
   bit patterns that are float NaNs/infinities when misread, plus noise. *)
let corner_i64 =
  QCheck.make ~print:(Printf.sprintf "0x%Lx")
    QCheck.Gen.(
      oneof
        [
          oneofl
            [
              0L; 1L; -1L; 2L; Int64.min_int; Int64.max_int;
              0x8000_0000L; 0xffff_ffffL; 0x1_0000_0000L;
              0x7ff0_0000_0000_0001L; 0xfff8_0000_0000_0000L;
              0x0102_0304_0506_0708L; 0x8070_6050_4030_2010L;
            ];
          map Int64.of_int int;
        ])

let both_ret items =
  let go backend =
    let _, ext = with_heap items in
    match Vm.exec ext ~ctx:(Bytes.make 64 '\000') ~backend () with
    | Vm.Finished v -> v
    | Vm.Cancelled _ -> QCheck.Test.fail_report "unexpected cancellation"
  in
  let i = go `Interp and c = go `Compiled in
  if i <> c then
    QCheck.Test.fail_reportf "backends diverge: 0x%Lx interp vs 0x%Lx compiled"
      i c;
  i

let check_alu op a b =
  let expect = alu_ref op a b in
  let reg =
    both_ret [ movi R1 a; movi R2 b; alu op R1 R2; mov R0 R1; exit_ ]
  in
  if reg <> expect then
    QCheck.Test.fail_reportf "%s(reg) 0x%Lx 0x%Lx = 0x%Lx, want 0x%Lx"
      (Format.asprintf "%a" Insn.pp_alu_op op) a b reg expect;
  let imm = both_ret [ movi R1 a; alui op R1 b; mov R0 R1; exit_ ] in
  if imm <> expect then
    QCheck.Test.fail_reportf "%s(imm) 0x%Lx 0x%Lx = 0x%Lx, want 0x%Lx"
      (Format.asprintf "%a" Insn.pp_alu_op op) a b imm expect;
  true

let prop_repr_wraparound =
  QCheck.Test.make ~name:"repr: add/sub/mul wrap at 64 bits" ~count:40
    QCheck.(pair corner_i64 corner_i64)
    (fun (a, b) ->
      List.for_all (fun op -> check_alu op a b) [ Insn.Add; Insn.Sub; Insn.Mul ])

let prop_repr_divmod =
  QCheck.Test.make ~name:"repr: unsigned div/mod incl. min_int and zero"
    ~count:40
    QCheck.(pair corner_i64 corner_i64)
    (fun (a, b) ->
      List.for_all (fun op -> check_alu op a b) [ Insn.Div; Insn.Mod ])

let prop_repr_shifts =
  QCheck.Test.make ~name:"repr: lsh/rsh/arsh mask shift counts to 6 bits"
    ~count:40
    QCheck.(pair corner_i64 (int_bound 130))
    (fun (a, s) ->
      let b = Int64.of_int s in
      List.for_all
        (fun op -> check_alu op a b)
        [ Insn.Lsh; Insn.Rsh; Insn.Arsh ])

(* Sub-word stores truncate and sub-word loads zero-extend: store the value
   at a frame slot pre-filled with all-ones, reload the full word, and check
   exactly the low bytes changed (little-endian); then reload at the narrow
   width and check zero-extension. *)
let prop_repr_subword =
  let widths =
    [ (Insn.U8, 0xffL); (Insn.U16, 0xffffL); (Insn.U32, 0xffff_ffffL);
      (Insn.U64, -1L) ]
  in
  QCheck.Test.make ~name:"repr: sub-word store truncation / load extension"
    ~count:30 corner_i64
    (fun v ->
      List.for_all
        (fun (w, mask) ->
          let stored =
            both_ret
              [
                movi R1 (-1L);
                stx Insn.U64 R10 (-16) R1;
                movi R2 v;
                stx w R10 (-16) R2;
                ldx Insn.U64 R0 R10 (-16);
                exit_;
              ]
          in
          let expect_stored =
            Int64.logor (Int64.logand v mask) (Int64.logand (-1L) (Int64.lognot mask))
          in
          if stored <> expect_stored then
            QCheck.Test.fail_reportf
              "store %Ld-mask: got 0x%Lx, want 0x%Lx" mask stored expect_stored;
          let loaded =
            both_ret
              [
                movi R1 v;
                stx Insn.U64 R10 (-8) R1;
                ldx w R0 R10 (-8);
                exit_;
              ]
          in
          let expect_loaded = Int64.logand v mask in
          if loaded <> expect_loaded then
            QCheck.Test.fail_reportf "load %Ld-mask: got 0x%Lx, want 0x%Lx"
              mask loaded expect_loaded;
          true)
        widths)

(* Regression for the polymorphic-array miscompile the Bigarray register
   bank replaced: a generic [Array.unsafe_get] on a weakly-typed register
   file can be compiled through the float-dispatching accessor, which would
   launder values through a float load/store and corrupt NaN bit patterns.
   Round-trip signalling-NaN and quiet-NaN patterns through moves, frame
   spills and identity ALU ops on both backends — bits must survive
   exactly. *)
let t_nan_bit_roundtrip () =
  List.iter
    (fun v ->
      let out =
        both_ret
          [
            movi R1 v;
            mov R2 R1;
            stx Insn.U64 R10 (-8) R2;
            ldx Insn.U64 R3 R10 (-8);
            alui Insn.Xor R3 0L;
            alui Insn.Or R3 0L;
            mov R0 R3;
            exit_;
          ]
      in
      Alcotest.(check int64) "bits survive" v out)
    [
      0x7ff0_0000_0000_0001L; (* signalling NaN *)
      0x7ff8_0000_0000_0000L; (* quiet NaN *)
      0xfff0_0000_0000_0000L; (* -inf *)
      0x7ff0_0000_0000_0000L; (* +inf *)
      0x8000_0000_0000_0000L; (* -0.0 *)
    ]

(* --- allocation regression (unboxed hot path) ----------------------------- *)

(* The compiled hook-free hot path must allocate nothing per retired
   instruction: registers live in a Bigarray bank, ALU results stay in
   native registers, and stack/heap accesses go through monomorphic byte
   externals. A regression — a boxed intermediate, a run-time closure, a
   polymorphic compare — makes minor-heap words scale with iteration count.
   The differential form (words at 2N minus words at N) cancels the
   constant per-exec cost (outcome constructor, pooled-state lookup) and
   must come out exactly zero. *)
let minor_words_once iters =
  let items =
    [
      call "kflex_heap_base";
      mov R6 R0;
      movi R7 (Int64.of_int iters);
      label "loop";
      stx Insn.U64 R10 (-8) R7;
      ldx Insn.U64 R1 R10 (-8);
      alui Insn.And R1 0xffL;
      alui Insn.Mul R1 8L;
      mov R2 R6;
      alu Insn.Add R2 R1;
      stx Insn.U64 R2 64 R7;
      ldx Insn.U64 R3 R2 64;
      alu Insn.Xor R3 R7;
      alui Insn.Sub R7 1L;
      jmpi Insn.Ne R7 0L "loop";
      mov R0 R3;
      exit_;
    ]
  in
  let _, ext = with_heap ~quantum:max_int items in
  let ctx = Bytes.make 64 '\000' in
  let go () =
    match Vm.exec ext ~ctx ~backend:`Compiled () with
    | Vm.Finished _ -> ()
    | Vm.Cancelled _ -> Alcotest.fail "unexpected cancellation"
  in
  (* first run compiles the program and warms the pooled state *)
  go ();
  let w0 = Gc.minor_words () in
  go ();
  Gc.minor_words () -. w0

let t_hot_path_allocation_free () =
  let n = 20_000 in
  let at_n = minor_words_once n in
  let at_2n = minor_words_once (2 * n) in
  Alcotest.(check (float 0.))
    "per-iteration minor words" 0. (at_2n -. at_n)

let () =
  Alcotest.run "runtime"
    [
      ( "heap",
        [
          Alcotest.test_case "create validation" `Quick t_heap_create_validation;
          Alcotest.test_case "sanitize" `Quick t_heap_sanitize;
          Alcotest.test_case "not shared" `Quick t_heap_not_shared;
          Alcotest.test_case "demand paging" `Quick t_heap_demand_paging;
          Alcotest.test_case "guard zone" `Quick t_heap_guard_zone;
          Alcotest.test_case "wild access" `Quick t_heap_wild;
          Alcotest.test_case "straddle pages" `Quick t_heap_straddle_pages;
          QCheck_alcotest.to_alcotest prop_heap_rw_roundtrip;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "basic" `Quick t_alloc_basic;
          Alcotest.test_case "zeroed" `Quick t_alloc_zeroed;
          Alcotest.test_case "too big" `Quick t_alloc_too_big;
          Alcotest.test_case "exhaustion" `Quick t_alloc_exhaustion;
          Alcotest.test_case "per-cpu caches" `Quick t_alloc_per_cpu_cache;
          Alcotest.test_case "pages on demand" `Quick t_alloc_populates_pages;
          Alcotest.test_case "class reuse" `Quick t_alloc_class_reuse;
          QCheck_alcotest.to_alcotest prop_alloc_no_overlap;
        ] );
      ( "user",
        [
          Alcotest.test_case "ledger" `Quick t_ledger;
          Alcotest.test_case "timeslice" `Quick t_timeslice;
          Alcotest.test_case "usermap" `Quick t_usermap;
        ] );
      ( "vm",
        [
          Alcotest.test_case "alu semantics" `Quick t_alu_semantics;
          Alcotest.test_case "unsigned compare" `Quick t_unsigned_compare;
          Alcotest.test_case "ctx read" `Quick t_ctx_read;
          Alcotest.test_case "atomics" `Quick t_atomics;
          Alcotest.test_case "malloc/free" `Quick t_malloc_free_via_vm;
          Alcotest.test_case "quantum cancellation" `Quick t_quantum_cancellation;
          Alcotest.test_case "engine reaper contention" `Quick
            t_engine_reaper_contention;
          Alcotest.test_case "cross-cpu cancel" `Quick t_cancel_cross_cpu;
          Alcotest.test_case "on_cancel callback" `Quick t_on_cancel_callback;
          Alcotest.test_case "stats" `Quick t_stats_accounting;
        ] );
      ( "jit",
        [
          Alcotest.test_case "backend parity" `Quick t_jit_parity;
          Alcotest.test_case "quantum parity" `Quick t_jit_quantum_parity;
          Alcotest.test_case "fused fault parity" `Quick
            t_jit_fused_fault_parity;
          Alcotest.test_case "state reuse" `Quick t_jit_state_reuse;
          QCheck_alcotest.to_alcotest prop_jit_differential;
        ] );
      ( "repr",
        [
          QCheck_alcotest.to_alcotest prop_repr_wraparound;
          QCheck_alcotest.to_alcotest prop_repr_divmod;
          QCheck_alcotest.to_alcotest prop_repr_shifts;
          QCheck_alcotest.to_alcotest prop_repr_subword;
          Alcotest.test_case "nan bit round-trip" `Quick t_nan_bit_roundtrip;
          Alcotest.test_case "hot path allocation-free" `Quick
            t_hot_path_allocation_free;
        ] );
    ]
